package omflp

// bench_test.go is the benchmark harness required by DESIGN.md §4: one
// BenchmarkExp_* per paper artifact (each regenerates the artifact's tables
// in Quick mode, so `go test -bench .` re-derives every figure/theorem
// reproduction), plus throughput benchmarks of the core algorithms across
// the problem dimensions the paper's bounds depend on (n and |S|).

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/lowerbound"
	"repro/internal/metric"
	"repro/internal/sim"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	// Workers: 0 = GOMAXPROCS — the default parallel harness configuration.
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunByID(id, sim.Config{Seed: 1, Quick: true}); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkHarnessWorkers pins the worker-pool win on a repetition-heavy
// experiment: the same quick thm2 run sequential vs fanned out.
func BenchmarkHarnessWorkers(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = fmt.Sprintf("workers=GOMAXPROCS(%d)", runtime.GOMAXPROCS(0))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunByID("thm2", sim.Config{Seed: 1, Quick: true, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// One benchmark per reproduced artifact (figures and theorem-scale tables).
func BenchmarkExp_fig1(b *testing.B)                { benchExperiment(b, "fig1") }
func BenchmarkExp_fig2(b *testing.B)                { benchExperiment(b, "fig2") }
func BenchmarkExp_fig3(b *testing.B)                { benchExperiment(b, "fig3") }
func BenchmarkExp_thm2(b *testing.B)                { benchExperiment(b, "thm2") }
func BenchmarkExp_cor3(b *testing.B)                { benchExperiment(b, "cor3") }
func BenchmarkExp_thm4(b *testing.B)                { benchExperiment(b, "thm4") }
func BenchmarkExp_thm18(b *testing.B)               { benchExperiment(b, "thm18") }
func BenchmarkExp_thm19(b *testing.B)               { benchExperiment(b, "thm19") }
func BenchmarkExp_lem12(b *testing.B)               { benchExperiment(b, "lem12") }
func BenchmarkExp_dual(b *testing.B)                { benchExperiment(b, "dual") }
func BenchmarkExp_ablation_pred(b *testing.B)       { benchExperiment(b, "ablation_pred") }
func BenchmarkExp_ablation_candidates(b *testing.B) { benchExperiment(b, "ablation_candidates") }
func BenchmarkExp_ablation_heavy(b *testing.B)      { benchExperiment(b, "ablation_heavy") }
func BenchmarkExp_ablation_reassign(b *testing.B)   { benchExperiment(b, "ablation_reassign") }
func BenchmarkExp_lpgap(b *testing.B)               { benchExperiment(b, "lpgap") }
func BenchmarkExp_lem14(b *testing.B)               { benchExperiment(b, "lem14") }
func BenchmarkExp_perf(b *testing.B)                { benchExperiment(b, "perf") }
func BenchmarkExp_ext_order(b *testing.B)           { benchExperiment(b, "ext_order") }
func BenchmarkExp_ext_split(b *testing.B)           { benchExperiment(b, "ext_split") }

// benchWorkload builds a reusable uniform workload.
func benchWorkload(n, u, points int) *workload.Trace {
	rng := rand.New(rand.NewSource(1))
	space := metric.RandomEuclidean(rng, points, 2, 100)
	return workload.Uniform(rng, space, cost.PowerLaw(u, 1, 2), n, u/2+1)
}

// BenchmarkPDOnlineThroughput measures full-sequence processing for
// PD-OMFLP across n (fixed |S|) — the log n axis of Theorem 4.
func BenchmarkPDOnlineThroughput(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		tr := benchWorkload(n, 8, 25)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pd := core.NewPDOMFLP(tr.Instance.Space, tr.Instance.Costs, core.Options{})
				for _, r := range tr.Instance.Requests {
					pd.Serve(r)
				}
			}
		})
	}
}

// BenchmarkPDBidAccounting compares the three PD serve-loop
// implementations across n: the event-driven loop (production), the
// pre-refactor incremental loop (per-event candidate rescans) and the naive
// reference (bids rebuilt from the full history). Run with benchstat to
// verify the ≥2× event-vs-incremental serve-throughput claim at n ≥ 2000
// (the perf experiment's BENCH_pd.json reports the same comparison
// machine-readably).
func BenchmarkPDBidAccounting(b *testing.B) {
	newByMode := map[string]func(*workload.Trace) *core.PDOMFLP{
		"event": func(tr *workload.Trace) *core.PDOMFLP {
			return core.NewPDOMFLP(tr.Instance.Space, tr.Instance.Costs, core.Options{})
		},
		"incremental": func(tr *workload.Trace) *core.PDOMFLP {
			return core.NewPDLoopReference(tr.Instance.Space, tr.Instance.Costs, core.Options{})
		},
		"naive": func(tr *workload.Trace) *core.PDOMFLP {
			return core.NewPDReference(tr.Instance.Space, tr.Instance.Costs, core.Options{})
		},
	}
	for _, n := range []int{500, 2000} {
		tr := benchWorkload(n, 8, 25)
		for _, mode := range []string{"event", "incremental", "naive"} {
			construct := newByMode[mode]
			b.Run(fmt.Sprintf("mode=%s/n=%d", mode, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					pd := construct(tr)
					for _, r := range tr.Instance.Requests {
						pd.Serve(r)
					}
				}
			})
		}
	}
}

// BenchmarkPDUniverseScaling sweeps |S| (fixed n) — the √|S| axis.
func BenchmarkPDUniverseScaling(b *testing.B) {
	for _, u := range []int{4, 16, 64} {
		tr := benchWorkload(80, u, 20)
		b.Run(fmt.Sprintf("S=%d", u), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pd := core.NewPDOMFLP(tr.Instance.Space, tr.Instance.Costs, core.Options{})
				for _, r := range tr.Instance.Requests {
					pd.Serve(r)
				}
			}
		})
	}
}

// BenchmarkRandOnlineThroughput: RAND-OMFLP across n.
func BenchmarkRandOnlineThroughput(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		tr := benchWorkload(n, 8, 25)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ra := core.NewRandOMFLP(tr.Instance.Space, tr.Instance.Costs, core.Options{},
					rand.New(rand.NewSource(int64(i))))
				for _, r := range tr.Instance.Requests {
					ra.Serve(r)
				}
			}
		})
	}
}

// BenchmarkGameScaling: the Theorem 2 adversary across |S|.
func BenchmarkGameScaling(b *testing.B) {
	for _, u := range []int{64, 256, 1024} {
		g, err := lowerbound.NewTheorem2Game(u)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("S=%d", u), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = g.Play(core.PDFactory(core.Options{}), rng, int64(i))
			}
		})
	}
}

// BenchmarkSingleServe: latency of one PD arrival against a warm state.
func BenchmarkSingleServe(b *testing.B) {
	tr := benchWorkload(200, 16, 30)
	pd := core.NewPDOMFLP(tr.Instance.Space, tr.Instance.Costs, core.Options{})
	for _, r := range tr.Instance.Requests {
		pd.Serve(r)
	}
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd.Serve(instance.Request{
			Point:   rng.Intn(tr.Instance.Space.Len()),
			Demands: commodity.RandomSubset(rng, 16, 4),
		})
	}
}
