package baseline

import (
	"math"
	"sort"

	"repro/internal/commodity"
	"repro/internal/instance"
	"repro/internal/par"
)

// OfflineResult is a complete offline solution with its cost.
type OfflineResult struct {
	Solution *instance.Solution
	Cost     float64
	Name     string
}

// configFamily builds the candidate configurations offline algorithms
// consider at each point: all singletons, the full set, every distinct
// request demand set, and unions of demand-set pairs (capped). For small
// universes (≤ maxFull commodities) it returns every non-empty subset, which
// makes ExactSmall exact.
func configFamily(in *instance.Instance, maxFull int) []commodity.Set {
	u := in.Universe()
	if u <= maxFull {
		return commodity.AllSubsets(u)
	}
	seen := map[string]commodity.Set{}
	add := func(s commodity.Set) {
		if !s.IsEmpty() {
			seen[s.Key()] = s
		}
	}
	for e := 0; e < u; e++ {
		add(commodity.New(e))
	}
	add(commodity.Full(u))
	var demands []commodity.Set
	var allDemands commodity.Set
	for _, r := range in.Requests {
		add(r.Demands)
		demands = append(demands, r.Demands)
		allDemands = allDemands.Union(r.Demands)
	}
	// The union of every demand (the "total catalog actually requested")
	// and its prefix unions in arrival order — cheap, and they capture the
	// bundles an optimal solution actually needs.
	add(allDemands)
	var prefix commodity.Set
	for _, d := range demands {
		prefix = prefix.Union(d)
		add(prefix)
	}
	// Pairwise unions of distinct demand sets, capped to keep the family
	// polynomial.
	const unionCap = 256
	for i := 0; i < len(demands) && len(seen) < unionCap; i++ {
		for j := i + 1; j < len(demands) && len(seen) < unionCap; j++ {
			add(demands[i].Union(demands[j]))
		}
	}
	var out []commodity.Set
	for _, s := range seen { //omflp:orderinvariant — commodity.Sorted below canonicalizes the order
		out = append(out, s)
	}
	return commodity.Sorted(out)
}

// candidateFacilities enumerates (point, config) pairs over the instance's
// points and the config family, deterministically stride-sampled down to
// maxCands when the cross product explodes (large spaces × rich families).
// Request demand sets at request points are always retained, so a feasible
// solution survives sampling.
func candidateFacilities(in *instance.Instance, maxFull, maxCands int) []instance.Facility {
	configs := configFamily(in, maxFull)
	var cands []instance.Facility
	for m := 0; m < in.Space.Len(); m++ {
		for _, cfg := range configs {
			cands = append(cands, instance.Facility{Point: m, Config: cfg})
		}
	}
	if maxCands <= 0 || len(cands) <= maxCands {
		return cands
	}
	keep := make([]instance.Facility, 0, maxCands+len(in.Requests))
	stride := len(cands) / maxCands
	for i := 0; i < len(cands); i += stride {
		keep = append(keep, cands[i])
	}
	for _, r := range in.Requests {
		keep = append(keep, instance.Facility{Point: r.Point, Config: r.Demands.Clone()})
	}
	return keep
}

// proxyMaxCands caps the candidate list of the heuristic OPT proxies; the
// exact solver never samples.
const proxyMaxCands = 600

// proxyScanCap caps how many candidates one local-search scan evaluates.
const proxyScanCap = 150

// reqPair is one (request, commodity) coverage unit of the star greedy.
type reqPair struct{ r, e int }

// starRG is one request's contribution to a candidate star: its index, how
// many uncovered demanded commodities the candidate's config would newly
// cover, and its distance to the candidate.
type starRG struct {
	ri   int
	gain int
	d    float64
}

// starRequests lists the requests a candidate star could newly cover,
// sorted by distance per gain — a pure function of (instance, candidate,
// uncovered), evaluated identically by the sequential and parallel scans.
func starRequests(in *instance.Instance, f instance.Facility, uncovered map[reqPair]bool) []starRG {
	var rgs []starRG
	for ri, r := range in.Requests {
		gain := 0
		r.Demands.Intersect(f.Config).ForEach(func(e int) {
			if uncovered[reqPair{ri, e}] {
				gain++
			}
		})
		if gain > 0 {
			rgs = append(rgs, starRG{ri: ri, gain: gain, d: in.Space.Distance(r.Point, f.Point)})
		}
	}
	sort.Slice(rgs, func(i, j int) bool {
		return rgs[i].d*float64(rgs[j].gain) < rgs[j].d*float64(rgs[i].gain)
	})
	return rgs
}

// evalStar scores one candidate: the minimal (construction + connection) per
// newly covered pair over request prefixes, and the shortest prefix
// attaining it (k = 0 when the candidate covers nothing). The float
// accumulation order matches the original sequential scan exactly, so the
// winning star — chosen by strict-< reduction in candidate order — is
// byte-identical to the pre-parallel implementation for every worker count.
func evalStar(in *instance.Instance, f instance.Facility, uncovered map[reqPair]bool) (ratio float64, k int, rgs []starRG) {
	rgs = starRequests(in, f, uncovered)
	ratio = math.Inf(1)
	cum, gains := in.Costs.Cost(f.Point, f.Config), 0
	for i, x := range rgs {
		cum += x.d
		gains += x.gain
		if r := cum / float64(gains); r < ratio {
			ratio = r
			k = i + 1
		}
	}
	return ratio, k, rgs
}

// StarGreedy is an offline greedy in the spirit of Ravi–Sinha: repeatedly
// pick the "star" — a candidate facility plus a set of requests connected to
// it — minimizing (construction + connection) per newly covered
// (request, commodity) pair, until all pairs are covered. Finally requests
// are re-assigned optimally against the chosen facilities. The per-round
// candidate scan fans out across GOMAXPROCS goroutines; use
// StarGreedyParallel to control the worker count (1 = fully sequential).
func StarGreedy(in *instance.Instance) OfflineResult {
	return StarGreedyParallel(in, 0)
}

// StarGreedyParallel is StarGreedy with an explicit worker count for the
// candidate-star scans (< 1 means GOMAXPROCS). Each candidate's evaluation
// is a pure function of the current uncovered set, and the reduction picks
// the first candidate (in list order) attaining the minimal ratio — exactly
// the sequential scan's strict-improvement winner — so results are
// byte-identical for every worker count.
func StarGreedyParallel(in *instance.Instance, workers int) OfflineResult {
	uncovered := map[reqPair]bool{}
	for ri, r := range in.Requests {
		r.Demands.ForEach(func(e int) {
			uncovered[reqPair{ri, e}] = true
		})
	}
	cands := candidateFacilities(in, 5, proxyMaxCands)
	var chosen []instance.Facility

	type starEval struct {
		ratio float64
		k     int
	}
	for len(uncovered) > 0 {
		evals, _ := par.Map(workers, len(cands), func(ci int) (starEval, error) {
			ratio, k, _ := evalStar(in, cands[ci], uncovered)
			return starEval{ratio: ratio, k: k}, nil
		})
		bestRatio, bestIdx := math.Inf(1), -1
		for ci, ev := range evals {
			if ev.k > 0 && ev.ratio < bestRatio {
				bestRatio, bestIdx = ev.ratio, ci
			}
		}
		if bestIdx < 0 {
			panic("baseline: StarGreedy made no progress")
		}
		// Re-materialize the winner's covered pairs (cheaper than keeping
		// every candidate's request list alive across the fan-out).
		f := cands[bestIdx]
		_, k, rgs := evalStar(in, f, uncovered)
		for _, y := range rgs[:k] {
			in.Requests[y.ri].Demands.Intersect(f.Config).ForEach(func(e int) {
				delete(uncovered, reqPair{y.ri, e})
			})
		}
		chosen = append(chosen, f)
	}

	sol, c := instance.AssignAll(in, chosen)
	return OfflineResult{Solution: sol, Cost: c, Name: "offline-star-greedy"}
}

// LocalSearch improves a starting solution by add / drop / swap moves over
// the candidate facility list, re-assigning requests optimally after each
// tentative move, until no move improves the cost or the move budget is
// exhausted. Move evaluation fans out across GOMAXPROCS goroutines; use
// LocalSearchParallel to control the worker count (1 = fully sequential).
func LocalSearch(in *instance.Instance, start []instance.Facility, maxMoves int) OfflineResult {
	return LocalSearchParallel(in, start, maxMoves, 0)
}

// firstImproving evaluates the n trial solutions produced by trial(i) and
// returns the index of the first one beating best (with its cost), or
// (-1, best). The scan is first-improvement by index: with several workers
// every trial is evaluated concurrently and the lowest improving index wins,
// so the chosen move — and therefore the whole search trajectory — is
// byte-identical to a sequential scan for every worker count. A sequential
// scan (workers resolving to 1) keeps the early exit.
func firstImproving(in *instance.Instance, workers, n int, best float64, trial func(i int) []instance.Facility) (int, float64) {
	if par.Workers(workers, n) == 1 {
		for i := 0; i < n; i++ {
			if _, c := instance.AssignAll(in, trial(i)); c < best-1e-12 {
				return i, c
			}
		}
		return -1, best
	}
	costs, _ := par.Map(workers, n, func(i int) (float64, error) {
		_, c := instance.AssignAll(in, trial(i))
		return c, nil
	})
	for i, c := range costs {
		if c < best-1e-12 {
			return i, c
		}
	}
	return -1, best
}

// LocalSearchParallel is LocalSearch with an explicit worker count for the
// move-evaluation scans (< 1 means GOMAXPROCS). Results are byte-identical
// for every worker count: each scan applies the first improving move in
// candidate order, exactly as the sequential search would.
func LocalSearchParallel(in *instance.Instance, start []instance.Facility, maxMoves, workers int) OfflineResult {
	cands := candidateFacilities(in, 5, proxyMaxCands)
	// Cap scan width: sample the candidate list for add/swap scans.
	scan := cands
	if len(scan) > proxyScanCap {
		scan = make([]instance.Facility, 0, proxyScanCap)
		stride := len(cands) / proxyScanCap
		for i := 0; i < len(cands); i += stride {
			scan = append(scan, cands[i])
		}
	}
	current := append([]instance.Facility(nil), start...)
	_, best := instance.AssignAll(in, current)

	// One scan = at most one applied move, so the sequential budget checks
	// (which only ever change on an applied move) reduce to the outer
	// condition.
	improved := true
	moves := 0
	for improved && moves < maxMoves {
		improved = false

		// Drop moves.
		drop := func(i int) []instance.Facility {
			return append(append([]instance.Facility(nil), current[:i]...), current[i+1:]...)
		}
		if i, c := firstImproving(in, workers, len(current), best, drop); i >= 0 {
			current, best = drop(i), c
			improved = true
			moves++
			continue
		}
		// Add moves.
		add := func(i int) []instance.Facility {
			return append(append([]instance.Facility(nil), current...), scan[i])
		}
		if i, c := firstImproving(in, workers, len(scan), best, add); i >= 0 {
			current, best = add(i), c
			improved = true
			moves++
			continue
		}
		// Swap moves (replace one chosen facility by one candidate), in
		// (facility, candidate) row-major order like the sequential scan.
		swap := func(i int) []instance.Facility {
			trial := append([]instance.Facility(nil), current...)
			trial[i/len(scan)] = scan[i%len(scan)]
			return trial
		}
		if len(scan) > 0 && len(current) > 0 {
			if i, c := firstImproving(in, workers, len(current)*len(scan), best, swap); i >= 0 {
				current, best = swap(i), c
				improved = true
				moves++
			}
		}
	}

	sol, c := instance.AssignAll(in, current)
	return OfflineResult{Solution: sol, Cost: c, Name: "offline-local-search"}
}

// BestOffline runs StarGreedy followed by LocalSearch refinement and returns
// the better result — the standard OPT proxy for instances too large for
// ExactSmall. Move evaluation is parallel (GOMAXPROCS); BestOfflineParallel
// takes an explicit worker count.
func BestOffline(in *instance.Instance, maxMoves int) OfflineResult {
	return BestOfflineParallel(in, maxMoves, 0)
}

// BestOfflineParallel is BestOffline with an explicit worker count for both
// the star-greedy candidate scans and the local-search move scans; results
// are byte-identical for every count.
func BestOfflineParallel(in *instance.Instance, maxMoves, workers int) OfflineResult {
	greedy := StarGreedyParallel(in, workers)
	ls := LocalSearchParallel(in, greedy.Solution.Facilities, maxMoves, workers)
	if ls.Cost <= greedy.Cost {
		ls.Name = "offline-best(greedy+ls)"
		return ls
	}
	greedy.Name = "offline-best(greedy+ls)"
	return greedy
}

// ExactSmall computes the exact offline optimum by branch-and-bound over the
// candidate facility list. It is exponential in the number of candidates:
// intended for instances with ≤ ~4 points, ≤ ~4 commodities (the config
// family is all subsets when |S| ≤ maxFullEnum) and a handful of requests.
// The bound combines the construction cost committed so far with a
// connection lower bound (each request's cheapest cover if every remaining
// candidate were free).
func ExactSmall(in *instance.Instance, maxFacilities int) OfflineResult {
	cands := candidateFacilities(in, maxFullEnum, 0)
	best := math.Inf(1)
	var bestSet []instance.Facility

	// Seed the incumbent with the greedy solution to sharpen pruning.
	seed := StarGreedy(in)
	if seed.Cost < best {
		best = seed.Cost
		bestSet = seed.Solution.Facilities
	}

	var rec func(idx int, open []instance.Facility, consCost float64)
	rec = func(idx int, open []instance.Facility, consCost float64) {
		// Bound: committed construction + optimal assignment against every
		// candidate from idx on being free is a valid lower bound.
		pool := append(append([]instance.Facility(nil), open...), cands[idx:]...)
		var lb float64
		for _, r := range in.Requests {
			_, c := instance.BestAssignment(in.Space, pool, r)
			lb += c
		}
		if consCost+lb >= best-1e-12 {
			return
		}
		if idx == len(cands) {
			if _, c := instance.AssignAll(in, open); c < best {
				best = c
				bestSet = append([]instance.Facility(nil), open...)
			}
			return
		}
		// Evaluate the current open set as a complete solution as well
		// (pruning works best when incumbents appear early).
		if _, c := instance.AssignAll(in, open); c < best {
			best = c
			bestSet = append([]instance.Facility(nil), open...)
		}
		// Branch: include cands[idx] (if budget allows), then exclude.
		if len(open) < maxFacilities {
			f := cands[idx]
			rec(idx+1, append(open, f), consCost+in.Costs.Cost(f.Point, f.Config))
		}
		rec(idx+1, open, consCost)
	}
	rec(0, nil, 0)

	sol, c := instance.AssignAll(in, bestSet)
	return OfflineResult{Solution: sol, Cost: c, Name: "offline-exact"}
}

// maxFullEnum is the universe size up to which the config family enumerates
// every subset, making ExactSmall exact rather than restricted.
const maxFullEnum = 6

// SinglePointOPT returns the exact offline optimum for instances whose
// requests all sit on one point with a subadditive cost model: one facility
// configured with the union of all demands (assignment cost 0). The second
// return value is false if the precondition fails.
func SinglePointOPT(in *instance.Instance) (float64, bool) {
	if len(in.Requests) == 0 {
		return 0, true
	}
	p := in.Requests[0].Point
	var union commodity.Set
	for _, r := range in.Requests {
		if r.Point != p {
			return 0, false
		}
		union = union.Union(r.Demands)
	}
	// With subadditive costs a single facility with the union is optimal;
	// still take the min over facility locations (relevant when costs are
	// point-scaled: a facility elsewhere costs distance per request).
	best := in.Costs.Cost(p, union)
	for m := 0; m < in.Space.Len(); m++ {
		c := in.Costs.Cost(m, union) + float64(len(in.Requests))*in.Space.Distance(p, m)
		if c < best {
			best = c
		}
	}
	return best, true
}
