package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

func TestLPRoundFeasibleAndNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		in := &instance.Instance{
			Space: metric.RandomLine(rng, 3, 8),
			Costs: cost.PowerLaw(3, 1, 1+rng.Float64()),
		}
		for i := 0; i < 5; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(in.Space.Len()),
				Demands: commodity.RandomSubset(rng, 3, 1+rng.Intn(3)),
			})
		}
		res, err := LPRound(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Solution.Verify(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		exact := ExactSmall(in, 4)
		if res.Cost < exact.Cost-1e-9 {
			t.Errorf("trial %d: LP round %g below exact OPT %g", trial, res.Cost, exact.Cost)
		}
		// LP rounding on integral LPs should land close to OPT.
		if res.Cost > exact.Cost*2+1e-9 {
			t.Errorf("trial %d: LP round %g more than 2x exact OPT %g", trial, res.Cost, exact.Cost)
		}
	}
}

func TestLPRoundFallsBackOnLargeUniverse(t *testing.T) {
	in := &instance.Instance{
		Space: metric.SinglePoint(),
		Costs: cost.PowerLaw(12, 1, 1), // > maxFullEnum: restricted family
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0, 7)},
		},
	}
	res, err := LPRound(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "offline-lp-round(greedy-fallback)" {
		t.Errorf("expected greedy fallback, got %q", res.Name)
	}
	if err := res.Solution.Verify(in); err != nil {
		t.Fatal(err)
	}
}

func TestLPRoundOnIntegralInstance(t *testing.T) {
	// Instance where the LP is integral and OPT obvious: one request,
	// sqrt cost → single facility with the demand set at the point.
	in := &instance.Instance{
		Space: metric.SinglePoint(),
		Costs: cost.PowerLaw(3, 1, 2),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0, 1, 2)},
		},
	}
	res, err := LPRound(in)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Sqrt(3)
	if math.Abs(res.Cost-want) > 1e-6 {
		t.Errorf("LP round cost %g, want %g", res.Cost, want)
	}
}
