package baseline

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

func randomInstance(rng *rand.Rand, points, u, n int) *instance.Instance {
	in := &instance.Instance{
		Space: metric.RandomEuclidean(rng, points, 2, 10),
		Costs: cost.PowerLaw(u, 1, 1+rng.Float64()),
	}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, instance.Request{
			Point:   rng.Intn(points),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
	}
	return in
}

func TestPerCommodityPDFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 6, 4, 15)
		sol, c, err := online.Run(PerCommodityPDFactory(nil), in, 1, true)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if c <= 0 {
			t.Errorf("cost = %g", c)
		}
		for _, f := range sol.Facilities {
			if f.Config.Len() != 1 {
				t.Errorf("per-commodity opened config %v", f.Config)
			}
		}
	}
}

func TestPerCommodityMeyersonFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 6, 4, 15)
		if _, _, err := online.Run(PerCommodityMeyersonFactory(nil), in, int64(trial), true); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPerCommodityIndependence(t *testing.T) {
	// Requests for different commodities must not share facilities even
	// when bundling would be cheaper — that is the point of the baseline.
	space := metric.SinglePoint()
	costs := cost.PowerLaw(4, 1, 1)
	pc := NewPerCommodityPD(space, costs, []int{0})
	pc.Serve(instance.Request{Point: 0, Demands: commodity.Full(4)})
	sol := pc.Solution()
	if len(sol.Facilities) != 4 {
		t.Errorf("opened %d facilities, want 4 singletons", len(sol.Facilities))
	}
	if len(sol.Assign[0]) != 4 {
		t.Errorf("links = %v, want 4", sol.Assign[0])
	}
}

func TestNoPredictionOnGamePaysLinear(t *testing.T) {
	// Theorem 2 game: |S|=16, g=⌈k/4⌉. OPT=1; no-prediction pays |S'|·g(1)
	// = 4 (one singleton per distinct requested commodity).
	u := 16
	space := metric.SinglePoint()
	costs := cost.CeilSqrt(u)
	in := &instance.Instance{Space: space, Costs: costs}
	for _, e := range []int{3, 7, 11, 15} {
		in.Requests = append(in.Requests, instance.Request{Point: 0, Demands: commodity.New(e)})
	}
	sol, c, err := online.Run(NoPredictionFactory(nil), in, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if c != 4 {
		t.Errorf("cost = %g, want 4 singleton facilities", c)
	}
	if len(sol.Facilities) != 4 {
		t.Errorf("facilities = %d", len(sol.Facilities))
	}
}

func TestNoPredictionConnectsWhenCheaper(t *testing.T) {
	space := metric.NewLine([]float64{0, 1})
	costs := cost.Linear(1, 10)
	np := NewNoPrediction(space, costs, nil)
	np.Serve(instance.Request{Point: 0, Demands: commodity.New(0)})
	np.Serve(instance.Request{Point: 1, Demands: commodity.New(0)}) // d=1 < 10
	sol := np.Solution()
	if len(sol.Facilities) != 1 {
		t.Errorf("facilities = %d, want 1", len(sol.Facilities))
	}
}

func TestStarGreedyFeasibleAndReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(rng, 5, 4, 10)
		res := StarGreedy(in)
		if err := res.Solution.Verify(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Sanity: never worse than one large facility per request point.
		var trivial float64
		full := commodity.Full(in.Universe())
		for _, r := range in.Requests {
			trivial += in.Costs.Cost(r.Point, full)
		}
		if res.Cost > trivial+1e-9 {
			t.Errorf("trial %d: greedy %g worse than trivial %g", trial, res.Cost, trivial)
		}
	}
}

func TestLocalSearchNeverWorseThanStart(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(rng, 4, 3, 8)
		greedy := StarGreedy(in)
		ls := LocalSearch(in, greedy.Solution.Facilities, 50)
		if err := ls.Solution.Verify(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ls.Cost > greedy.Cost+1e-9 {
			t.Errorf("trial %d: local search %g worse than greedy %g", trial, ls.Cost, greedy.Cost)
		}
	}
}

func TestExactSmallOnKnownInstance(t *testing.T) {
	// Two co-located requests for {0} and {1}; sqrt cost: one facility
	// {0,1} at the point costs √2 < 1+1. OPT = √2.
	space := metric.SinglePoint()
	costs := cost.PowerLaw(2, 1, 1)
	in := &instance.Instance{Space: space, Costs: costs, Requests: []instance.Request{
		{Point: 0, Demands: commodity.New(0)},
		{Point: 0, Demands: commodity.New(1)},
	}}
	res := ExactSmall(in, 3)
	if err := res.Solution.Verify(in); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-math.Sqrt2) > 1e-9 {
		t.Errorf("exact = %g, want √2", res.Cost)
	}
}

func TestExactSmallMatchesBruteForceIntuition(t *testing.T) {
	// Line 0—10, linear costs: requests on both ends demand {0}; facility
	// cost 2 each. OPT opens two singleton facilities (4) rather than one
	// plus distance 10.
	space := metric.NewLine([]float64{0, 10})
	costs := cost.Linear(1, 2)
	in := &instance.Instance{Space: space, Costs: costs, Requests: []instance.Request{
		{Point: 0, Demands: commodity.New(0)},
		{Point: 1, Demands: commodity.New(0)},
	}}
	res := ExactSmall(in, 4)
	if math.Abs(res.Cost-4) > 1e-9 {
		t.Errorf("exact = %g, want 4", res.Cost)
	}
	if len(res.Solution.Facilities) != 2 {
		t.Errorf("facilities = %+v", res.Solution.Facilities)
	}
}

func TestExactSmallLowerBoundsProxies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		in := randomInstance(rng, 3, 3, 5)
		exact := ExactSmall(in, 4)
		proxy := BestOffline(in, 30)
		if err := exact.Solution.Verify(in); err != nil {
			t.Fatal(err)
		}
		if exact.Cost > proxy.Cost+1e-9 {
			t.Errorf("trial %d: exact %g above proxy %g", trial, exact.Cost, proxy.Cost)
		}
	}
}

func TestSinglePointOPT(t *testing.T) {
	space := metric.SinglePoint()
	costs := cost.CeilSqrt(16)
	in := &instance.Instance{Space: space, Costs: costs}
	for _, e := range []int{1, 2, 3, 4} {
		in.Requests = append(in.Requests, instance.Request{Point: 0, Demands: commodity.New(e)})
	}
	opt, ok := SinglePointOPT(in)
	if !ok || opt != 1 {
		t.Errorf("single point OPT = %g ok=%v, want 1", opt, ok)
	}
	// Multi-point instances are rejected.
	in2 := &instance.Instance{Space: metric.NewLine([]float64{0, 1}), Costs: costs, Requests: []instance.Request{
		{Point: 0, Demands: commodity.New(0)},
		{Point: 1, Demands: commodity.New(1)},
	}}
	if _, ok := SinglePointOPT(in2); ok {
		t.Error("multi-point accepted")
	}
	// Empty instance: OPT 0.
	if opt, ok := SinglePointOPT(&instance.Instance{Space: space, Costs: costs}); !ok || opt != 0 {
		t.Errorf("empty OPT = %g ok=%v", opt, ok)
	}
}

func TestSinglePointOPTAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5; trial++ {
		u := 2 + rng.Intn(3)
		in := &instance.Instance{
			Space: metric.SinglePoint(),
			Costs: cost.PowerLaw(u, 1, 1),
		}
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   0,
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		sp, ok := SinglePointOPT(in)
		if !ok {
			t.Fatal("single point rejected")
		}
		exact := ExactSmall(in, 4)
		if math.Abs(sp-exact.Cost) > 1e-9 {
			t.Errorf("trial %d: analytic %g vs exact %g", trial, sp, exact.Cost)
		}
	}
}

func TestConfigFamilyLargeUniverse(t *testing.T) {
	in := &instance.Instance{
		Space: metric.SinglePoint(),
		Costs: cost.PowerLaw(20, 1, 1),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0, 5)},
			{Point: 0, Demands: commodity.New(7)},
		},
	}
	fam := configFamily(in, 6)
	// Must contain all singletons, the full set, the demand sets and
	// their union.
	keys := map[string]bool{}
	for _, s := range fam {
		keys[s.Key()] = true
	}
	for e := 0; e < 20; e++ {
		if !keys[commodity.New(e).Key()] {
			t.Errorf("family missing singleton {%d}", e)
		}
	}
	for _, want := range []commodity.Set{
		commodity.Full(20),
		commodity.New(0, 5),
		commodity.New(7),
		commodity.New(0, 5, 7),
	} {
		if !keys[want.Key()] {
			t.Errorf("family missing %v", want)
		}
	}
}

// Property: every offline proxy produces a feasible solution, and local
// search never increases cost.
func TestQuickOfflinePipeline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 4, 3, 6)
		greedy := StarGreedy(in)
		if greedy.Solution.Verify(in) != nil {
			return false
		}
		ls := LocalSearch(in, greedy.Solution.Facilities, 20)
		if ls.Solution.Verify(in) != nil {
			return false
		}
		return ls.Cost <= greedy.Cost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStarGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randomInstance(rng, 8, 5, 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = StarGreedy(in)
	}
}

func BenchmarkPerCommodityServe(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randomInstance(rng, 20, 8, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := NewPerCommodityPD(in.Space, in.Costs, candidateList(in.Space, nil))
		for _, r := range in.Requests {
			pc.Serve(r)
		}
	}
}

// TestLocalSearchParallelIdentical is the parallel local-search contract:
// every worker count must walk the exact same move trajectory — identical
// final cost, facility list and assignments (and therefore byte-identical
// experiment tables downstream).
func TestLocalSearchParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(rng, 8, 5, 25)
		greedy := StarGreedy(in)
		ref := LocalSearchParallel(in, greedy.Solution.Facilities, 30, 1)
		for _, workers := range []int{2, 3, 8} {
			got := LocalSearchParallel(in, greedy.Solution.Facilities, 30, workers)
			if got.Cost != ref.Cost {
				t.Fatalf("trial %d workers=%d: cost %g, sequential %g", trial, workers, got.Cost, ref.Cost)
			}
			if len(got.Solution.Facilities) != len(ref.Solution.Facilities) {
				t.Fatalf("trial %d workers=%d: %d facilities, sequential %d",
					trial, workers, len(got.Solution.Facilities), len(ref.Solution.Facilities))
			}
			for i, f := range got.Solution.Facilities {
				rf := ref.Solution.Facilities[i]
				if f.Point != rf.Point || f.Config.Key() != rf.Config.Key() {
					t.Fatalf("trial %d workers=%d: facility %d = %v, sequential %v", trial, workers, i, f, rf)
				}
			}
		}
		// BestOffline must agree too (it wraps the same scans).
		a := BestOfflineParallel(in, 30, 1)
		b := BestOfflineParallel(in, 30, 4)
		if a.Cost != b.Cost || a.Name != b.Name {
			t.Fatalf("trial %d: BestOffline diverges across workers: %g/%s vs %g/%s",
				trial, a.Cost, a.Name, b.Cost, b.Name)
		}
	}
}

// TestLocalSearchMatchesLegacySequential pins the refactored scan order to
// the original nested-loop semantics on a brute-force reimplementation.
func TestLocalSearchMatchesLegacySequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(rng, 7, 4, 18)
		start := StarGreedy(in).Solution.Facilities
		got := LocalSearchParallel(in, start, 25, 4)
		want := legacyLocalSearch(in, start, 25)
		if got.Cost != want.Cost || len(got.Solution.Facilities) != len(want.Solution.Facilities) {
			t.Fatalf("trial %d: refactored %g (%d facilities), legacy %g (%d)", trial,
				got.Cost, len(got.Solution.Facilities), want.Cost, len(want.Solution.Facilities))
		}
	}
}

// legacyLocalSearch is the pre-parallel implementation, kept verbatim in the
// tests as the semantic reference for the scan order.
func legacyLocalSearch(in *instance.Instance, start []instance.Facility, maxMoves int) OfflineResult {
	cands := candidateFacilities(in, 5, proxyMaxCands)
	scan := cands
	if len(scan) > proxyScanCap {
		scan = make([]instance.Facility, 0, proxyScanCap)
		stride := len(cands) / proxyScanCap
		for i := 0; i < len(cands); i += stride {
			scan = append(scan, cands[i])
		}
	}
	current := append([]instance.Facility(nil), start...)
	_, best := instance.AssignAll(in, current)
	improved := true
	moves := 0
	for improved && moves < maxMoves {
		improved = false
		for i := 0; i < len(current) && moves < maxMoves; i++ {
			trial := append(append([]instance.Facility(nil), current[:i]...), current[i+1:]...)
			if _, c := instance.AssignAll(in, trial); c < best-1e-12 {
				current, best = trial, c
				improved = true
				moves++
				break
			}
		}
		if improved {
			continue
		}
		for _, f := range scan {
			if moves >= maxMoves {
				break
			}
			trial := append(append([]instance.Facility(nil), current...), f)
			if _, c := instance.AssignAll(in, trial); c < best-1e-12 {
				current, best = trial, c
				improved = true
				moves++
				break
			}
		}
		if improved {
			continue
		}
		for i := 0; i < len(current) && !improved; i++ {
			for _, f := range scan {
				if moves >= maxMoves {
					break
				}
				trial := append([]instance.Facility(nil), current...)
				trial[i] = f
				if _, c := instance.AssignAll(in, trial); c < best-1e-12 {
					current, best = trial, c
					improved = true
					moves++
					break
				}
			}
		}
	}
	sol, c := instance.AssignAll(in, current)
	return OfflineResult{Solution: sol, Cost: c, Name: "offline-local-search"}
}

// TestStarGreedyParallelIdentical is the parallel star-greedy contract:
// every worker count must choose the exact same star sequence — identical
// final cost, facility list and assignments.
func TestStarGreedyParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(rng, 9, 5, 30)
		ref := StarGreedyParallel(in, 1)
		for _, workers := range []int{2, 3, 8} {
			got := StarGreedyParallel(in, workers)
			if got.Cost != ref.Cost {
				t.Fatalf("trial %d workers=%d: cost %g, sequential %g", trial, workers, got.Cost, ref.Cost)
			}
			if len(got.Solution.Facilities) != len(ref.Solution.Facilities) {
				t.Fatalf("trial %d workers=%d: %d facilities, sequential %d",
					trial, workers, len(got.Solution.Facilities), len(ref.Solution.Facilities))
			}
			for i, f := range got.Solution.Facilities {
				rf := ref.Solution.Facilities[i]
				if f.Point != rf.Point || f.Config.Key() != rf.Config.Key() {
					t.Fatalf("trial %d workers=%d: facility %d = %v, sequential %v", trial, workers, i, f, rf)
				}
			}
		}
	}
}

// TestStarGreedyMatchesLegacySequential pins the fan-out refactor to the
// original strict-improvement nested scan, kept verbatim below.
func TestStarGreedyMatchesLegacySequential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(rng, 8, 5, 26)
		got := StarGreedyParallel(in, 4)
		want := legacyStarGreedy(in)
		if got.Cost != want.Cost || len(got.Solution.Facilities) != len(want.Solution.Facilities) {
			t.Fatalf("trial %d: refactored %g (%d facilities), legacy %g (%d)", trial,
				got.Cost, len(got.Solution.Facilities), want.Cost, len(want.Solution.Facilities))
		}
		for i, f := range got.Solution.Facilities {
			wf := want.Solution.Facilities[i]
			if f.Point != wf.Point || f.Config.Key() != wf.Config.Key() {
				t.Fatalf("trial %d: facility %d = %v, legacy %v", trial, i, f, wf)
			}
		}
	}
}

// legacyStarGreedy is the pre-parallel implementation, kept verbatim as the
// semantic reference for the star selection order.
func legacyStarGreedy(in *instance.Instance) OfflineResult {
	type pair struct{ r, e int }
	uncovered := map[pair]bool{}
	for ri, r := range in.Requests {
		r.Demands.ForEach(func(e int) {
			uncovered[pair{ri, e}] = true
		})
	}
	cands := candidateFacilities(in, 5, proxyMaxCands)
	var chosen []instance.Facility

	for len(uncovered) > 0 {
		bestRatio := math.Inf(1)
		var bestFac instance.Facility
		var bestCover []pair
		for _, f := range cands {
			type rg struct {
				ri   int
				gain int
				d    float64
			}
			var rgs []rg
			for ri, r := range in.Requests {
				gain := 0
				r.Demands.Intersect(f.Config).ForEach(func(e int) {
					if uncovered[pair{ri, e}] {
						gain++
					}
				})
				if gain > 0 {
					rgs = append(rgs, rg{ri: ri, gain: gain, d: in.Space.Distance(r.Point, f.Point)})
				}
			}
			if len(rgs) == 0 {
				continue
			}
			sort.Slice(rgs, func(i, j int) bool {
				return rgs[i].d*float64(rgs[j].gain) < rgs[j].d*float64(rgs[i].gain)
			})
			fCost := in.Costs.Cost(f.Point, f.Config)
			cum, gains := fCost, 0
			for k, x := range rgs {
				cum += x.d
				gains += x.gain
				ratio := cum / float64(gains)
				if ratio < bestRatio {
					bestRatio = ratio
					bestFac = f
					bestCover = bestCover[:0]
					for _, y := range rgs[:k+1] {
						in.Requests[y.ri].Demands.Intersect(f.Config).ForEach(func(e int) {
							if uncovered[pair{y.ri, e}] {
								bestCover = append(bestCover, pair{y.ri, e})
							}
						})
					}
				}
			}
		}
		if len(bestCover) == 0 {
			panic("baseline: StarGreedy made no progress")
		}
		chosen = append(chosen, bestFac)
		for _, pr := range bestCover {
			delete(uncovered, pr)
		}
	}

	sol, c := instance.AssignAll(in, chosen)
	return OfflineResult{Solution: sol, Cost: c, Name: "offline-star-greedy"}
}
