package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

// baselineStateRig is the shared workload for the baseline state tests.
type baselineStateRig struct {
	space    metric.Space
	costs    cost.Model
	u        int
	requests []instance.Request
}

func newBaselineRig(seed int64, n int) *baselineStateRig {
	rng := rand.New(rand.NewSource(seed))
	u := 2 + rng.Intn(5)
	space := metric.RandomEuclidean(rng, 6+rng.Intn(10), 2, 50)
	rig := &baselineStateRig{space: space, costs: cost.PowerLaw(u, 1, 1+rng.Float64()*2), u: u}
	for i := 0; i < n; i++ {
		rig.requests = append(rig.requests, instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
	}
	return rig
}

// roundTripSuffix marshals orig at cut, restores into a fresh clone and
// requires bit-identical solutions over the suffix.
func roundTripSuffix(t *testing.T, rig *baselineStateRig, cut int, orig online.Algorithm, fresh func() online.Algorithm) {
	t.Helper()
	for _, r := range rig.requests[:cut] {
		orig.Serve(r)
	}
	blob, err := orig.(online.StateCodec).MarshalState()
	if err != nil {
		t.Fatalf("cut %d: marshal: %v", cut, err)
	}
	restored := fresh()
	if err := restored.(online.StateCodec).UnmarshalState(blob); err != nil {
		t.Fatalf("cut %d: unmarshal: %v", cut, err)
	}
	for i, r := range rig.requests[cut:] {
		orig.Serve(r)
		restored.Serve(r)
		if !reflect.DeepEqual(orig.Solution(), restored.Solution()) {
			t.Fatalf("cut %d: solutions diverge at suffix arrival %d", cut, i)
		}
	}
}

func TestPerCommodityPDStateSuffixIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rig := newBaselineRig(seed, 40)
		for _, cut := range []int{0, 15, 40} {
			roundTripSuffix(t, rig, cut,
				NewPerCommodityPD(rig.space, rig.costs, candidateList(rig.space, nil)),
				func() online.Algorithm { return NewPerCommodityPD(rig.space, rig.costs, candidateList(rig.space, nil)) })
		}
	}
}

func TestPerCommodityMeyersonStateSuffixIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rig := newBaselineRig(seed, 40)
		for _, cut := range []int{0, 15, 40} {
			// The constructor consumes one parent-rng draw per commodity;
			// identical parent seeds give identical substrate streams.
			roundTripSuffix(t, rig, cut,
				NewPerCommodityMeyerson(rig.space, rig.costs, candidateList(rig.space, nil), rand.New(rand.NewSource(seed*13))),
				func() online.Algorithm {
					return NewPerCommodityMeyerson(rig.space, rig.costs, candidateList(rig.space, nil), rand.New(rand.NewSource(seed*13)))
				})
		}
	}
}

func TestNoPredictionStateSuffixIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rig := newBaselineRig(seed, 40)
		for _, cut := range []int{0, 15, 40} {
			roundTripSuffix(t, rig, cut,
				NewNoPrediction(rig.space, rig.costs, nil),
				func() online.Algorithm { return NewNoPrediction(rig.space, rig.costs, nil) })
		}
	}
}

func TestBaselineStateRestoreErrors(t *testing.T) {
	rig := newBaselineRig(4, 10)
	pc := NewPerCommodityPD(rig.space, rig.costs, candidateList(rig.space, nil))
	for _, r := range rig.requests {
		pc.Serve(r)
	}
	blob, err := pc.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.UnmarshalState(blob); err == nil {
		t.Error("per-commodity restore onto a non-fresh instance succeeded")
	}
	if err := NewPerCommodityPD(rig.space, cost.PowerLaw(rig.u+1, 1, 1), candidateList(rig.space, nil)).UnmarshalState(blob); err == nil {
		t.Error("per-commodity restore under a different universe succeeded")
	}
	np := NewNoPrediction(rig.space, rig.costs, nil)
	np.Serve(rig.requests[0])
	nb, err := np.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := np.UnmarshalState(nb); err == nil {
		t.Error("no-prediction restore onto a non-fresh instance succeeded")
	}
	if err := NewNoPrediction(rig.space, cost.PowerLaw(rig.u+2, 1, 1), nil).UnmarshalState(nb); err == nil {
		t.Error("no-prediction restore under a different universe succeeded")
	}
}
