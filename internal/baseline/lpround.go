package baseline

import (
	"sort"

	"repro/internal/instance"
	"repro/internal/lp"
)

// LPRound solves the Section 1.1 LP relaxation and rounds it: facility
// candidates are ranked by their fractional opening mass y_m^σ (ties by
// cheaper cost), then greedily accepted while they reduce the total cost of
// the optimally re-assigned solution; a final feasibility pass adds the
// cheapest cover for any request the accepted set misses. This mirrors the
// flavour of the offline LP-based O(log |S|) approximations (Ravi–Sinha)
// without reproducing their full filtering argument; in practice it is a
// strong OPT proxy on the small instances the LP can solve.
func LPRound(in *instance.Instance) (OfflineResult, error) {
	relax, err := lp.OMFLPRelaxation(in)
	if err != nil {
		return OfflineResult{}, err
	}

	// Recover the y variables: they were added first, grouped per point
	// over the same configuration family the relaxation used. Rebuild that
	// family association by re-deriving it through the relaxation's config
	// count.
	cands := candidateFacilities(in, maxFullEnum, 0)
	// The relaxation's variable layout is y[point][config] in family order;
	// candidateFacilities enumerates the same (point-major) order when the
	// family is complete. For restricted families the layouts may differ,
	// so fall back to greedy when counts mismatch.
	type weighted struct {
		fac instance.Facility
		y   float64
	}
	var ws []weighted
	if relax.Exact && len(cands) == relax.Configs*in.Space.Len() {
		// Complete family: candidateFacilities and the relaxation share
		// the identical point-major × AllSubsets layout.
		for i, f := range cands {
			ws = append(ws, weighted{fac: f, y: relax.Solution.X[i]})
		}
	} else {
		res := StarGreedy(in)
		res.Name = "offline-lp-round(greedy-fallback)"
		return res, nil
	}

	sort.SliceStable(ws, func(a, b int) bool {
		if ws[a].y != ws[b].y { //omflp:floatexact — sort comparator; exact comparison of stored values keeps the order strict-weak
			return ws[a].y > ws[b].y
		}
		ca := in.Costs.Cost(ws[a].fac.Point, ws[a].fac.Config)
		cb := in.Costs.Cost(ws[b].fac.Point, ws[b].fac.Config)
		return ca < cb
	})

	var chosen []instance.Facility
	bestCost := 0.0
	first := true
	for _, w := range ws {
		if w.y <= 1e-9 {
			break
		}
		trial := append(append([]instance.Facility(nil), chosen...), w.fac)
		_, c := instance.AssignAll(in, trial)
		if first || c < bestCost {
			chosen, bestCost, first = trial, c, false
		}
	}
	// Feasibility pass: cover anything still missing with the per-request
	// demand set at its own point.
	sol, c := instance.AssignAll(in, chosen)
	for ri, links := range sol.Assign {
		if links == nil {
			chosen = append(chosen, instance.Facility{
				Point:  in.Requests[ri].Point,
				Config: in.Requests[ri].Demands.Clone(),
			})
		}
	}
	sol, c = instance.AssignAll(in, chosen)
	return OfflineResult{Solution: sol, Cost: c, Name: "offline-lp-round"}, nil
}
