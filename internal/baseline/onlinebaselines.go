// Package baseline provides the comparison algorithms the reproduction
// measures PD-OMFLP and RAND-OMFLP against:
//
// Online baselines
//   - PerCommodity: the trivial algorithm from Section 1.3 — one independent
//     single-commodity Online Facility Location instance per commodity
//     (Fotakis-style deterministic PD or Meyerson), giving
//     O(|S|·log n/log log n) competitiveness but no bundling.
//   - NoPrediction: a greedy that never opens a facility for a commodity
//     that was not requested; the Theorem 2 game forces it into Ω(|S|).
//
// Offline OPT proxies
//   - ExactSmall: branch-and-bound exact solver for small instances.
//   - StarGreedy: Ravi–Sinha-flavoured greedy over (point, config, request
//     prefix) stars.
//   - LocalSearch: add/drop/swap local search seeded by StarGreedy.
package baseline

import (
	"math/rand"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/ofl"
	"repro/internal/online"
)

// PerCommodity runs an independent single-commodity OFL algorithm per
// commodity. All its facilities are singletons, so requests connect to one
// facility per demanded commodity.
type PerCommodity struct {
	space metric.Space //omflp:nostate — constructor parameter; restore requires an identically constructed instance
	u     int
	algs  []ofl.Algorithm
	sol   *instance.Solution
	// facIdx maps (commodity, point) to the global facility index.
	facIdx map[[2]int]int
	name   string
}

// NewPerCommodityPD builds the baseline on the deterministic Fotakis-style
// substrate.
func NewPerCommodityPD(space metric.Space, costs cost.Model, candidates []int) *PerCommodity {
	u := costs.Universe()
	pc := newPerCommodity(space, u, "per-commodity(pd)")
	for e := 0; e < u; e++ {
		cfg := commodity.New(e)
		fc := func(m int) float64 { return costs.Cost(m, cfg) }
		pc.algs[e] = ofl.NewFotakisPD(space, fc, candidates)
	}
	return pc
}

// NewPerCommodityMeyerson builds the baseline on Meyerson's randomized
// substrate. Each commodity gets its own RNG stream derived from rng.
func NewPerCommodityMeyerson(space metric.Space, costs cost.Model, candidates []int, rng *rand.Rand) *PerCommodity {
	u := costs.Universe()
	pc := newPerCommodity(space, u, "per-commodity(meyerson)")
	for e := 0; e < u; e++ {
		cfg := commodity.New(e)
		fc := func(m int) float64 { return costs.Cost(m, cfg) }
		pc.algs[e] = ofl.NewMeyerson(space, fc, candidates, rand.New(rand.NewSource(rng.Int63())))
	}
	return pc
}

func newPerCommodity(space metric.Space, u int, name string) *PerCommodity {
	return &PerCommodity{
		space:  space,
		u:      u,
		algs:   make([]ofl.Algorithm, u),
		sol:    &instance.Solution{},
		facIdx: map[[2]int]int{},
		name:   name,
	}
}

// Name implements online.Algorithm.
func (pc *PerCommodity) Name() string { return pc.name }

// Solution implements online.Algorithm.
func (pc *PerCommodity) Solution() *instance.Solution { return pc.sol }

// Serve implements online.Algorithm.
func (pc *PerCommodity) Serve(r instance.Request) {
	var links []int
	seen := map[int]bool{}
	r.Demands.ForEach(func(e int) {
		connect, opened := pc.algs[e].Place(r.Point)
		for _, m := range opened {
			key := [2]int{e, m}
			if _, ok := pc.facIdx[key]; !ok {
				pc.facIdx[key] = len(pc.sol.Facilities)
				pc.sol.Facilities = append(pc.sol.Facilities, instance.Facility{
					Point:  m,
					Config: commodity.New(e),
				})
			}
		}
		idx, ok := pc.facIdx[[2]int{e, connect}]
		if !ok {
			panic("baseline: per-commodity connected to an untracked facility")
		}
		if !seen[idx] {
			seen[idx] = true
			links = append(links, idx)
		}
	})
	pc.sol.Assign = append(pc.sol.Assign, links)
}

// PerCommodityPDFactory returns the deterministic per-commodity baseline
// factory. candidates == nil means all points.
func PerCommodityPDFactory(candidates []int) online.Factory {
	return online.Factory{
		Name: "per-commodity(pd)",
		New: func(space metric.Space, costs cost.Model, seed int64) online.Algorithm {
			return NewPerCommodityPD(space, costs, candidateList(space, candidates))
		},
	}
}

// PerCommodityMeyersonFactory returns the randomized per-commodity baseline
// factory.
func PerCommodityMeyersonFactory(candidates []int) online.Factory {
	return online.Factory{
		Name: "per-commodity(meyerson)",
		New: func(space metric.Space, costs cost.Model, seed int64) online.Algorithm {
			return NewPerCommodityMeyerson(space, costs, candidateList(space, candidates), rand.New(rand.NewSource(seed)))
		},
	}
}

func candidateList(space metric.Space, candidates []int) []int {
	if candidates != nil {
		return candidates
	}
	all := make([]int, space.Len())
	for i := range all {
		all[i] = i
	}
	return all
}

// NoPrediction is the strawman the Theorem 2 discussion rules out: on each
// request it serves every demanded commodity greedily — connect to the
// nearest facility already offering it, unless opening the cheapest
// singleton facility (cost + distance) is cheaper — and never offers a
// commodity that was not requested.
type NoPrediction struct {
	space metric.Space //omflp:nostate — constructor parameter; restore requires an identically constructed instance
	costs cost.Model   //omflp:nostate — constructor parameter, ditto
	cands []int        //omflp:nostate — constructor parameter, ditto
	sol   *instance.Solution
	byE   [][]int // facility indices per commodity
}

// NewNoPrediction builds the strawman baseline.
func NewNoPrediction(space metric.Space, costs cost.Model, candidates []int) *NoPrediction {
	return &NoPrediction{
		space: space,
		costs: costs,
		cands: candidateList(space, candidates),
		sol:   &instance.Solution{},
		byE:   make([][]int, costs.Universe()),
	}
}

// Name implements online.Algorithm.
func (np *NoPrediction) Name() string { return "no-prediction-greedy" }

// Solution implements online.Algorithm.
func (np *NoPrediction) Solution() *instance.Solution { return np.sol }

// Serve implements online.Algorithm.
func (np *NoPrediction) Serve(r instance.Request) {
	var links []int
	seen := map[int]bool{}
	r.Demands.ForEach(func(e int) {
		// Existing option.
		bestIdx, bestD := -1, 0.0
		first := true
		for _, idx := range np.byE[e] {
			d := np.space.Distance(r.Point, np.sol.Facilities[idx].Point)
			if first || d < bestD {
				bestIdx, bestD, first = idx, d, false
			}
		}
		// Opening option.
		cfg := commodity.New(e)
		openM, openCost := -1, 0.0
		for _, m := range np.cands {
			c := np.costs.Cost(m, cfg) + np.space.Distance(r.Point, m)
			if openM < 0 || c < openCost {
				openM, openCost = m, c
			}
		}
		if bestIdx < 0 || openCost < bestD {
			idx := len(np.sol.Facilities)
			np.sol.Facilities = append(np.sol.Facilities, instance.Facility{Point: openM, Config: cfg})
			np.byE[e] = append(np.byE[e], idx)
			bestIdx = idx
		}
		if !seen[bestIdx] {
			seen[bestIdx] = true
			links = append(links, bestIdx)
		}
	})
	np.sol.Assign = append(np.sol.Assign, links)
}

// NoPredictionFactory returns the strawman baseline factory.
func NoPredictionFactory(candidates []int) online.Factory {
	return online.Factory{
		Name: "no-prediction-greedy",
		New: func(space metric.Space, costs cost.Model, seed int64) online.Algorithm {
			return NewNoPrediction(space, costs, candidates)
		},
	}
}
