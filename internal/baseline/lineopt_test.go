package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

func lineFLInstance(rng *rand.Rand, n, points int, fcost float64) *instance.Instance {
	in := &instance.Instance{
		Space: metric.RandomLine(rng, points, 20),
		Costs: cost.Constant(1, fcost),
	}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, instance.Request{
			Point:   rng.Intn(points),
			Demands: commodity.New(0),
		})
	}
	return in
}

func TestLineExactFLKnownCases(t *testing.T) {
	// Two requests at the ends of a long segment, cheap facilities: open
	// two facilities (2·f) rather than pay the distance.
	in := &instance.Instance{
		Space: metric.NewLine([]float64{0, 100}),
		Costs: cost.Constant(1, 3),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0)},
			{Point: 1, Demands: commodity.New(0)},
		},
	}
	opt, err := LineExactFL(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 6 {
		t.Errorf("OPT = %g, want 6", opt)
	}
	// Expensive facilities (f = 150): one facility + distance 100 = 250
	// beats two facilities at 300.
	in.Costs = cost.Constant(1, 150)
	opt, err = LineExactFL(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 250 {
		t.Errorf("OPT = %g, want 250", opt)
	}
}

func TestLineExactFLEmptyAndErrors(t *testing.T) {
	empty := &instance.Instance{Space: metric.NewLine([]float64{0}), Costs: cost.Constant(1, 1)}
	if opt, err := LineExactFL(empty); err != nil || opt != 0 {
		t.Errorf("empty: %g %v", opt, err)
	}
	multi := &instance.Instance{
		Space: metric.NewLine([]float64{0}),
		Costs: cost.Constant(2, 1),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(1)},
		},
	}
	if _, err := LineExactFL(multi); err == nil {
		t.Error("multi-commodity accepted")
	}
	notLine := &instance.Instance{
		Space: metric.NewUniform(2, 1),
		Costs: cost.Constant(1, 1),
	}
	if _, err := LineExactFL(notLine); err == nil {
		t.Error("non-line metric accepted")
	}
}

func TestLineExactFLMatchesExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 8; trial++ {
		in := lineFLInstance(rng, 3+rng.Intn(3), 3, 1+rng.Float64()*4)
		dpOpt, err := LineExactFL(in)
		if err != nil {
			t.Fatal(err)
		}
		bb := ExactSmall(in, 6)
		if math.Abs(dpOpt-bb.Cost) > 1e-9 {
			t.Errorf("trial %d: line DP %g vs branch-and-bound %g", trial, dpOpt, bb.Cost)
		}
	}
}

// Property: the line DP never exceeds any feasible solution's cost
// (spot-checked against the offline greedy) and is never negative.
func TestQuickLineExactFLLowerBoundsGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := lineFLInstance(rng, 2+rng.Intn(6), 4, 0.5+rng.Float64()*3)
		dpOpt, err := LineExactFL(in)
		if err != nil {
			return false
		}
		greedy := StarGreedy(in)
		return dpOpt >= 0 && dpOpt <= greedy.Cost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLineExactFL(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := lineFLInstance(rng, 60, 20, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LineExactFL(in); err != nil {
			b.Fatal(err)
		}
	}
}
