package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/commodity"
	"repro/internal/instance"
	"repro/internal/metric"
)

// LineExactFL computes the exact offline optimum of a *single-commodity*
// facility location instance on a line metric in O(n²·|M|) time, using the
// classic interval DP: on a line there is an optimal solution in which each
// facility serves a contiguous (by position) block of requests, so
//
//	dp[i] = min_{j<i} dp[j] + min_m ( f(m) + Σ_{k=j+1..i} d(r_k, m) )
//
// over requests sorted by position. It returns an error if the instance has
// more than one commodity or the space is not a *metric.Line. The exact
// optimum replaces the single-facility proxy when evaluating the line
// adversary of Corollary 3.
func LineExactFL(in *instance.Instance) (float64, error) {
	line, ok := in.Space.(*metric.Line)
	if !ok {
		return 0, fmt.Errorf("baseline: LineExactFL requires a line metric, got %s", in.Space.Name())
	}
	if in.Universe() != 1 {
		return 0, fmt.Errorf("baseline: LineExactFL requires |S| = 1, got %d", in.Universe())
	}
	n := len(in.Requests)
	if n == 0 {
		return 0, nil
	}
	single := commodity.New(0)
	for ri, r := range in.Requests {
		if !r.Demands.Equal(single) {
			return 0, fmt.Errorf("baseline: request %d demands %v, want {0}", ri, r.Demands)
		}
	}

	// Sort request positions.
	pos := make([]float64, n)
	for i, r := range in.Requests {
		pos[i] = line.Position(r.Point)
	}
	sort.Float64s(pos)
	// Prefix sums for O(1) interval assignment cost at a fixed point.
	prefix := make([]float64, n+1)
	for i, p := range pos {
		prefix[i+1] = prefix[i] + p
	}
	// sumDist(j, i, x) = Σ_{k=j..i-1} |pos[k] − x| via binary search.
	sumDist := func(j, i int, x float64) float64 {
		lo := sort.SearchFloat64s(pos[j:i], x) + j
		left := x*float64(lo-j) - (prefix[lo] - prefix[j])
		right := (prefix[i] - prefix[lo]) - x*float64(i-lo)
		return left + right
	}

	m := in.Space.Len()
	facPos := make([]float64, m)
	facCost := make([]float64, m)
	for p := 0; p < m; p++ {
		facPos[p] = line.Position(p)
		facCost[p] = in.Costs.Cost(p, single)
	}

	dp := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		dp[i] = math.Inf(1)
		for j := 0; j < i; j++ {
			// Best facility for block (j, i].
			best := math.Inf(1)
			for p := 0; p < m; p++ {
				if c := facCost[p] + sumDist(j, i, facPos[p]); c < best {
					best = c
				}
			}
			if v := dp[j] + best; v < dp[i] {
				dp[i] = v
			}
		}
	}
	return dp[n], nil
}
