package baseline

import (
	"encoding/json"
	"fmt"

	"repro/internal/commodity"
	"repro/internal/instance"
	"repro/internal/online"
)

// State serialization for the online baselines, implementing the
// online.StateCodec contract: state restored onto a freshly constructed
// instance with the same parameters (and seed, for the Meyerson substrate)
// serves any suffix identically.

// baselineStateSchema versions the layouts below.
const baselineStateSchema = 1

// Interface conformance (compile-time).
var (
	_ online.StateCodec = (*PerCommodity)(nil)
	_ online.StateCodec = (*NoPrediction)(nil)
)

// pcFacilityState is one opened singleton facility: commodity + point.
type pcFacilityState struct {
	E     int `json:"e"`
	Point int `json:"p"`
}

// pcState is PerCommodity's serialized state: one sub-state per commodity
// (in commodity order) plus the global facility list and assignments. The
// (commodity, point) → index map is derived from the facility list.
type pcState struct {
	Schema     int               `json:"schema"`
	Universe   int               `json:"universe"`
	Subs       []json.RawMessage `json:"subs"`
	Facilities []pcFacilityState `json:"facilities"`
	Assign     [][]int           `json:"assign"`
}

// MarshalState implements online.StateCodec.
func (pc *PerCommodity) MarshalState() ([]byte, error) {
	st := pcState{
		Schema:     baselineStateSchema,
		Universe:   pc.u,
		Subs:       make([]json.RawMessage, pc.u),
		Facilities: make([]pcFacilityState, len(pc.sol.Facilities)),
		Assign:     pc.sol.Assign,
	}
	for e, alg := range pc.algs {
		sc, ok := alg.(online.StateCodec)
		if !ok {
			return nil, fmt.Errorf("baseline: %s substrate for commodity %d is not state-serializable", pc.name, e)
		}
		data, err := sc.MarshalState()
		if err != nil {
			return nil, err
		}
		st.Subs[e] = data
	}
	for i, f := range pc.sol.Facilities {
		st.Facilities[i] = pcFacilityState{E: f.Config.IDs()[0], Point: f.Point}
	}
	return json.Marshal(&st)
}

// UnmarshalState implements online.StateCodec; the receiver must be freshly
// constructed with the same parameters (and, for the Meyerson substrate, the
// same seed) as the marshaled instance.
func (pc *PerCommodity) UnmarshalState(data []byte) error {
	if len(pc.sol.Facilities) != 0 || len(pc.sol.Assign) != 0 {
		return fmt.Errorf("baseline: %s state restore needs a fresh instance", pc.name)
	}
	var st pcState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("baseline: %s state: %v", pc.name, err)
	}
	if st.Schema != baselineStateSchema {
		return fmt.Errorf("baseline: %s state schema %d, want %d", pc.name, st.Schema, baselineStateSchema)
	}
	if st.Universe != pc.u || len(st.Subs) != pc.u {
		return fmt.Errorf("baseline: %s state universe %d (%d substates), want %d", pc.name, st.Universe, len(st.Subs), pc.u)
	}
	for e, alg := range pc.algs {
		sc, ok := alg.(online.StateCodec)
		if !ok {
			return fmt.Errorf("baseline: %s substrate for commodity %d is not state-serializable", pc.name, e)
		}
		if err := sc.UnmarshalState(st.Subs[e]); err != nil {
			return err
		}
	}
	for i, f := range st.Facilities {
		pc.sol.Facilities = append(pc.sol.Facilities, instance.Facility{Point: f.Point, Config: commodity.New(f.E)})
		pc.facIdx[[2]int{f.E, f.Point}] = i
	}
	pc.sol.Assign = st.Assign
	return nil
}

// npState is NoPrediction's serialized state; the per-commodity facility
// index lists are derived from the facility list.
type npState struct {
	Schema     int               `json:"schema"`
	Universe   int               `json:"universe"`
	Facilities []pcFacilityState `json:"facilities"`
	Assign     [][]int           `json:"assign"`
}

// MarshalState implements online.StateCodec.
func (np *NoPrediction) MarshalState() ([]byte, error) {
	st := npState{
		Schema:     baselineStateSchema,
		Universe:   len(np.byE),
		Facilities: make([]pcFacilityState, len(np.sol.Facilities)),
		Assign:     np.sol.Assign,
	}
	for i, f := range np.sol.Facilities {
		st.Facilities[i] = pcFacilityState{E: f.Config.IDs()[0], Point: f.Point}
	}
	return json.Marshal(&st)
}

// UnmarshalState implements online.StateCodec; the receiver must be freshly
// constructed with the same parameters as the marshaled instance.
func (np *NoPrediction) UnmarshalState(data []byte) error {
	if len(np.sol.Facilities) != 0 || len(np.sol.Assign) != 0 {
		return fmt.Errorf("baseline: no-prediction state restore needs a fresh instance")
	}
	var st npState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("baseline: no-prediction state: %v", err)
	}
	if st.Schema != baselineStateSchema {
		return fmt.Errorf("baseline: no-prediction state schema %d, want %d", st.Schema, baselineStateSchema)
	}
	if st.Universe != len(np.byE) {
		return fmt.Errorf("baseline: no-prediction state universe %d, want %d", st.Universe, len(np.byE))
	}
	for i, f := range st.Facilities {
		if f.E < 0 || f.E >= len(np.byE) {
			return fmt.Errorf("baseline: no-prediction state facility for commodity %d outside universe", f.E)
		}
		np.sol.Facilities = append(np.sol.Facilities, instance.Facility{Point: f.Point, Config: commodity.New(f.E)})
		np.byE[f.E] = append(np.byE[f.E], i)
	}
	np.sol.Assign = st.Assign
	return nil
}
