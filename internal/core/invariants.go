//go:build invariants

// Runtime assertion layer, enabled with `go test -tags invariants ./...`.
// After every served arrival it re-derives the two properties the PD
// implementation leans on and panics on the first violation:
//
//  1. Credit invariant: every recorded credit is at most the distance from
//     its request point to the nearest open facility that offers it
//     (small-for-its-commodity or large for Constraint (3) credits, large
//     for Constraint (4) credits). Credits are recorded as min{dual, d} and
//     only ever lowered to a new, smaller distance, so the invariant holds
//     by construction — it is exactly what lets the event-driven loop skip
//     the unconditional credit sweep of the pre-refactor implementation,
//     which is why a violation must crash instead of silently degrading the
//     competitive ratio.
//  2. Bid-accumulator consistency: the incremental Constraint (3)/(4) bid
//     rows (bidSmall, bidLarge) must agree with a from-scratch recomputation
//     over the full credit history (naiveSmallBids, naiveLargeBids) to
//     within accumulation tolerance.
//
// Both checks rescan the credit history, so arrivals past the first
// invariantsFullWindow are checked on a stride — dense coverage early (where
// differential tests live), bounded overhead on long workloads.
package core

import (
	"fmt"
	"math"
)

// invariantsEnabled gates the runtime assertion layer; see invariants_off.go
// for the default build.
const invariantsEnabled = true

// invariantsFullWindow is the arrival count up to which every arrival is
// checked; past it, checks run every invariantsStride-th arrival.
const (
	invariantsFullWindow = 256
	invariantsStride     = 16
)

// invariantsEps bounds the allowed drift between the incremental bid
// accumulators and their naive recomputation. Looser than pdEps: the
// incremental rows take one add and at most one subtract per (credit,
// candidate) pair, so cancellation error grows with history length.
const invariantsEps = 1e-6

func (pd *PDOMFLP) assertInvariants() {
	n := len(pd.points)
	if n > invariantsFullWindow && n%invariantsStride != 0 {
		return
	}
	pd.assertCreditInvariant()
	pd.assertBidConsistency()
}

// assertCreditInvariant checks property 1. Distances are recomputed by a
// direct scan over the open facilities rather than through facilityIndex, so
// the assertion cannot mask a stale nearest-cache by reading through it.
func (pd *PDOMFLP) assertCreditInvariant() {
	for e, credits := range pd.creditSmall {
		for j, cr := range credits {
			d := pd.scanNearestOffering(e, cr.point)
			if cr.credit > d+pdEps*(1+d) {
				panic(fmt.Sprintf(
					"core: invariant violation: small credit %d of commodity %d at point %d is %g > %g (distance to nearest offering facility)",
					j, e, cr.point, cr.credit, d))
			}
		}
	}
	for j, cr := range pd.creditLarge {
		d := pd.scanNearestLarge(cr.point)
		if cr.credit > d+pdEps*(1+d) {
			panic(fmt.Sprintf(
				"core: invariant violation: large credit %d at point %d is %g > %g (distance to nearest large facility)",
				j, cr.point, cr.credit, d))
		}
	}
}

// assertBidConsistency checks property 2: incremental accumulators against
// the naive reference rows. Naive-bids instances have nothing to check —
// they recompute the rows from scratch each arrival and never maintain the
// accumulators.
func (pd *PDOMFLP) assertBidConsistency() {
	if pd.naiveBids {
		return
	}
	for e, row := range pd.bidSmall {
		if row == nil {
			if len(pd.creditSmall[e]) != 0 {
				panic(fmt.Sprintf("core: invariant violation: commodity %d has %d credits but no bid row",
					e, len(pd.creditSmall[e])))
			}
			continue
		}
		assertBidRow("small", e, row, pd.naiveSmallBids(e))
	}
	assertBidRow("large", -1, pd.bidLarge, pd.naiveLargeBids())
}

func assertBidRow(kind string, e int, got, want []float64) {
	for ci := range want {
		if diff := math.Abs(got[ci] - want[ci]); diff > invariantsEps*(1+math.Abs(want[ci])) {
			panic(fmt.Sprintf(
				"core: invariant violation: %s bid row (commodity %d) candidate %d: incremental %g vs naive %g (diff %g)",
				kind, e, ci, got[ci], want[ci], diff))
		}
	}
}

// scanNearestOffering is the assertion-layer counterpart of
// facilityIndex.nearestOffering: a full scan with no cache reads or writes.
func (pd *PDOMFLP) scanNearestOffering(e, p int) float64 {
	best := pd.scanNearestLarge(p)
	for _, idx := range pd.fx.smallBy[e] {
		if d := pd.space.Distance(p, pd.fx.sol.Facilities[idx].Point); d < best {
			best = d
		}
	}
	return best
}

// scanNearestLarge is the cache-free counterpart of
// facilityIndex.nearestLarge.
func (pd *PDOMFLP) scanNearestLarge(p int) float64 {
	best := infinity
	for _, idx := range pd.fx.large {
		if d := pd.space.Distance(p, pd.fx.sol.Facilities[idx].Point); d < best {
			best = d
		}
	}
	return best
}
