package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// TestCoveringInstanceFromExecution closes the loop between Algorithm 1 and
// its analysis: the A/B partition extracted from an actual PD run must form
// a valid c-ordered covering instance (Definition 9), and the constructive
// covering must respect the 2c·H_n bound — the exact argument of Lemma 14.
func TestCoveringInstanceFromExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 6; trial++ {
		u := 2 + rng.Intn(3)
		space := metric.RandomLine(rng, 4, 10)
		costs := cost.PowerLaw(u, 1, 1+rng.Float64())
		pd := NewPDOMFLP(space, costs, Options{TraceAnalysis: true})
		n := 8 + rng.Intn(8)
		for i := 0; i < n; i++ {
			pd.Serve(instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		for e := 0; e < u; e++ {
			for m := 0; m < space.Len(); m++ {
				inst, ok := pd.CoveringInstance(e, m)
				if !ok {
					continue
				}
				if err := inst.Validate(); err != nil {
					t.Fatalf("trial %d e=%d m=%d: execution-derived instance invalid: %v",
						trial, e, m, err)
				}
				res := inst.Cover()
				if !res.Covered(inst.N()) {
					t.Fatalf("trial %d e=%d m=%d: covering incomplete", trial, e, m)
				}
				if res.Weight > inst.Bound()+1e-9 {
					t.Errorf("trial %d e=%d m=%d: weight %g exceeds 2cH_n %g",
						trial, e, m, res.Weight, inst.Bound())
				}
			}
		}
	}
}

// Property: for arbitrary seeds, extracted B sets are monotone (the
// Definition 9 property the proof depends on).
func TestQuickExecutionBSetsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := 2 + rng.Intn(3)
		space := metric.RandomLine(rng, 3, 8)
		pd := NewPDOMFLP(space, cost.PowerLaw(u, 1, 1), Options{TraceAnalysis: true})
		for i := 0; i < 10; i++ {
			pd.Serve(instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		for e := 0; e < u; e++ {
			inst, ok := pd.CoveringInstance(e, 0)
			if !ok {
				continue
			}
			if inst.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCoveringInstanceRequiresTracing(t *testing.T) {
	space := metric.SinglePoint()
	pd := NewPDOMFLP(space, cost.PowerLaw(2, 1, 1), Options{})
	pd.Serve(instance.Request{Point: 0, Demands: commodity.New(0)})
	if _, ok := pd.CoveringInstance(0, 0); ok {
		t.Error("CoveringInstance available without TraceAnalysis")
	}
	// With tracing but no request for the commodity: not available either.
	pd2 := NewPDOMFLP(space, cost.PowerLaw(2, 1, 1), Options{TraceAnalysis: true})
	pd2.Serve(instance.Request{Point: 0, Demands: commodity.New(0)})
	if _, ok := pd2.CoveringInstance(1, 0); ok {
		t.Error("CoveringInstance for an unrequested commodity")
	}
	if _, ok := pd2.CoveringInstance(0, 0); !ok {
		t.Error("CoveringInstance unavailable despite tracing")
	}
}
