package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// Property: opening facilities can only shrink RAND's budgets — X(r,e) and
// Z(r) are minima over a growing option set.
func TestQuickBudgetsMonotoneUnderPlanting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := 2 + rng.Intn(4)
		space := metric.RandomLine(rng, 5, 10)
		ra := NewRandOMFLP(space, cost.PowerLaw(u, 1, 2), Options{}, rng)
		r := instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		}
		per0, x0, z0 := ra.Budgets(r)
		ra.PlantSmall(r.Demands.Min(), rng.Intn(space.Len()))
		ra.PlantLarge(rng.Intn(space.Len()))
		per1, x1, z1 := ra.Budgets(r)
		if x1 > x0+1e-9 || z1 > z0+1e-9 {
			return false
		}
		for i := range per0 {
			if per1[i] > per0[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Budgets must agree with the facility index: with a planted large facility
// at distance d, Z(r) ≤ d; with small facilities covering e at distance d,
// X(r,e) ≤ d.
func TestBudgetsMatchFacilityState(t *testing.T) {
	space := metric.NewLine([]float64{0, 3, 7})
	costs := cost.PowerLaw(3, 1, 100) // expensive: budgets dominated by distances
	ra := NewRandOMFLP(space, costs, Options{}, rand.New(rand.NewSource(1)))
	ra.PlantLarge(1)    // distance 3 from point 0
	ra.PlantSmall(0, 2) // distance 7 from point 0
	per, x, z := ra.Budgets(instance.Request{Point: 0, Demands: commodity.New(0)})
	if z != 3 {
		t.Errorf("Z = %g, want 3 (planted large at distance 3)", z)
	}
	// F(0) includes both the small at 7 and the large at 3 → nearest 3.
	if per[0] != 3 || x != 3 {
		t.Errorf("X(r,0) = %g, X = %g, want 3", per[0], x)
	}
}

// Budgets with no facilities equal the cheapest class option.
func TestBudgetsColdStart(t *testing.T) {
	space := metric.SinglePoint()
	costs := cost.PowerLaw(2, 1, 4) // singleton 4, pair 4√2
	ra := NewRandOMFLP(space, costs, Options{}, rand.New(rand.NewSource(1)))
	per, x, z := ra.Budgets(instance.Request{Point: 0, Demands: commodity.Full(2)})
	// Class value of cost 4 is 4 (power of two); distance 0.
	if per[0] != 4 || per[1] != 4 || x != 8 {
		t.Errorf("cold budgets: per=%v x=%g", per, x)
	}
	// Large: f^S = 4√2 ≈ 5.66 → class 4; Z = 4.
	if z != 4 {
		t.Errorf("Z = %g, want 4", z)
	}
	if math.IsInf(z, 1) {
		t.Error("Z infinite despite candidates")
	}
}

// A long mixed stream keeps every PD invariant and stays feasible — the
// stress version of the unit tests.
func TestPDLongStreamStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	u := 6
	space := metric.RandomEuclidean(rng, 12, 2, 40)
	costs := cost.NewPointScaled(cost.PowerLaw(u, 1, 2), cost.RandomFactors(rng, 12, 0.5, 2))
	pd := NewPDOMFLP(space, costs, Options{})
	in := &instance.Instance{Space: space, Costs: costs}
	const n = 300
	for i := 0; i < n; i++ {
		r := instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		}
		pd.Serve(r)
		in.Requests = append(in.Requests, r)
	}
	if err := pd.Solution().Verify(in); err != nil {
		t.Fatal(err)
	}
	if c := pd.Solution().Cost(in); c > 3*pd.DualTotal()+1e-6 {
		t.Errorf("Corollary 8 violated on long stream: %g > 3·%g", c, pd.DualTotal())
	}
	checkPDInvariants(t, pd)
	small, large := pd.FacilityCounts()
	if small+large == 0 || small+large > n {
		t.Errorf("suspicious facility count: %d small, %d large over %d requests", small, large, n)
	}
}
