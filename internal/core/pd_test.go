package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

// checkPDInvariants verifies the invariants Algorithm 1 maintains. Raw
// Constraints (1)/(2) only hold at freeze time (facilities opened later —
// including the request's own — shrink d(F(e), r) below the frozen dual);
// what survives is their consequence, Lemma 5: each request's connection
// cost is bounded by its dual sum. Constraints (3)/(4) hold at all times via
// the min-capped credits, which we check directly.
func checkPDInvariants(t *testing.T, pd *PDOMFLP) {
	t.Helper()
	const tol = 1e-6
	ids, duals, points := pd.Duals()
	sol := pd.Solution()
	for ri := range ids {
		p := points[ri]
		var sum float64
		for i := range ids[ri] {
			sum += duals[ri][i]
		}
		// Lemma 5: Σ_{linked facilities} d(p, facility) ≤ Σ_e a_re.
		var conn float64
		for _, fi := range sol.Assign[ri] {
			conn += pd.space.Distance(p, sol.Facilities[fi].Point)
		}
		if conn > sum+tol {
			t.Errorf("req %d: connection cost %g exceeds dual sum %g (Lemma 5)", ri, conn, sum)
		}
	}
	// Constraints (3) and (4) via the live credits.
	for ci, m := range pd.ct.cands {
		for e := 0; e < pd.u; e++ {
			var lhs float64
			for _, cr := range pd.creditSmall[e] {
				if b := cr.credit - pd.space.Distance(m, cr.point); b > 0 {
					lhs += b
				}
			}
			if lhs > pd.ct.single[e][ci]+tol {
				t.Errorf("constraint (3) violated at m=%d e=%d: %g > %g", m, e, lhs, pd.ct.single[e][ci])
			}
		}
		if !pd.opts.DisablePrediction {
			var lhs float64
			for _, cr := range pd.creditLarge {
				if b := cr.credit - pd.space.Distance(m, cr.point); b > 0 {
					lhs += b
				}
			}
			if lhs > pd.ct.full[ci]+tol {
				t.Errorf("constraint (4) violated at m=%d: %g > %g", m, lhs, pd.ct.full[ci])
			}
		}
	}
}

func TestPDSingleRequestOpensSmallFacility(t *testing.T) {
	space := metric.SinglePoint()
	costs := cost.PowerLaw(4, 1, 1) // g(k)=sqrt(k): g(1)=1, g(4)=2
	pd := NewPDOMFLP(space, costs, Options{})
	pd.Serve(instance.Request{Point: 0, Demands: commodity.New(2)})
	sol := pd.Solution()
	if len(sol.Facilities) != 1 {
		t.Fatalf("facilities = %+v", sol.Facilities)
	}
	f := sol.Facilities[0]
	if !f.Config.Equal(commodity.New(2)) {
		t.Errorf("config = %v, want {2}", f.Config)
	}
	if len(sol.Assign) != 1 || len(sol.Assign[0]) != 1 || sol.Assign[0][0] != 0 {
		t.Errorf("assign = %v", sol.Assign)
	}
	checkPDInvariants(t, pd)
}

func TestPDFullDemandOpensLargeFacility(t *testing.T) {
	// One request demanding all of S with a strictly subadditive cost:
	// Constraint (4) (slope |S|) reaches f^S before each singleton
	// constraint (slope 1) reaches f^{e}: 4·Δ = g(4)=2 at Δ=0.5 while
	// (3) needs Δ=1. So a large facility must open.
	space := metric.SinglePoint()
	costs := cost.PowerLaw(4, 1, 1)
	pd := NewPDOMFLP(space, costs, Options{})
	pd.Serve(instance.Request{Point: 0, Demands: commodity.Full(4)})
	sol := pd.Solution()
	if len(sol.Facilities) != 1 {
		t.Fatalf("facilities = %+v", sol.Facilities)
	}
	if !sol.Facilities[0].Config.Equal(commodity.Full(4)) {
		t.Errorf("config = %v, want full", sol.Facilities[0].Config)
	}
	if got := sol.Cost(&instance.Instance{Space: space, Costs: costs, Requests: []instance.Request{{Point: 0, Demands: commodity.Full(4)}}}); math.Abs(got-2) > 1e-9 {
		t.Errorf("cost = %g, want g(4)=2", got)
	}
	checkPDInvariants(t, pd)
}

func TestPDSecondRequestConnectsForFree(t *testing.T) {
	// After a facility serves commodity 0 at the point, an identical
	// request connects with dual 0 and no new facility.
	space := metric.SinglePoint()
	costs := cost.Linear(3, 2)
	pd := NewPDOMFLP(space, costs, Options{})
	r := instance.Request{Point: 0, Demands: commodity.New(0)}
	pd.Serve(r)
	nf := len(pd.Solution().Facilities)
	pd.Serve(r)
	if len(pd.Solution().Facilities) != nf {
		t.Errorf("second identical request opened facilities: %d -> %d", nf, len(pd.Solution().Facilities))
	}
	_, duals, _ := pd.Duals()
	if duals[1][0] != 0 {
		t.Errorf("second dual = %g, want 0", duals[1][0])
	}
	checkPDInvariants(t, pd)
}

func TestPDLowerBoundGameSwitchesToLarge(t *testing.T) {
	// The Theorem 2 situation: |S|=16, g(k)=⌈k/4⌉, singleton requests at
	// one point for distinct commodities. Small facilities cost 1 each;
	// the large facility costs g(16)=4. Constraint (4) accumulates the
	// credits of earlier singletons, so after a handful of rounds the
	// algorithm must predict (open a large facility) instead of buying
	// singletons forever.
	u := 16
	space := metric.SinglePoint()
	costs := cost.CeilSqrt(u)
	pd := NewPDOMFLP(space, costs, Options{})
	for e := 0; e < u; e++ {
		pd.Serve(instance.Request{Point: 0, Demands: commodity.New(e)})
	}
	sol := pd.Solution()
	var large, small int
	for _, f := range sol.Facilities {
		if f.Config.Len() == u {
			large++
		} else {
			small++
		}
	}
	if large == 0 {
		t.Fatalf("never opened a large facility: %d small facilities", small)
	}
	if small > u/2 {
		t.Errorf("opened %d small facilities before predicting; expected ≈ √|S|", small)
	}
	// Once the large facility exists, total cost is bounded well below
	// the no-prediction cost of u singletons.
	in := &instance.Instance{Space: space, Costs: costs}
	for e := 0; e < u; e++ {
		in.Requests = append(in.Requests, instance.Request{Point: 0, Demands: commodity.New(e)})
	}
	if err := sol.Verify(in); err != nil {
		t.Fatal(err)
	}
	if c := sol.Cost(in); c >= float64(u) {
		t.Errorf("cost %g not better than no-prediction %d", c, u)
	}
	checkPDInvariants(t, pd)
}

func TestPDNoPredictionAblationBuysOnlySingletons(t *testing.T) {
	u := 16
	space := metric.SinglePoint()
	costs := cost.CeilSqrt(u)
	pd := NewPDOMFLP(space, costs, Options{DisablePrediction: true})
	for e := 0; e < u; e++ {
		pd.Serve(instance.Request{Point: 0, Demands: commodity.New(e)})
	}
	sol := pd.Solution()
	if len(sol.Facilities) != u {
		t.Errorf("facilities = %d, want %d singletons", len(sol.Facilities), u)
	}
	for _, f := range sol.Facilities {
		if f.Config.Len() != 1 {
			t.Errorf("ablation opened non-singleton config %v", f.Config)
		}
	}
	checkPDInvariants(t, pd)
}

func TestPDDistantRequestOpensLocalFacility(t *testing.T) {
	// Facility at 0 serving commodity 0; a far-away request must open its
	// own facility (dual rises to f + 0 = 1 < distance 100).
	space := metric.NewLine([]float64{0, 100})
	costs := cost.Linear(2, 1)
	pd := NewPDOMFLP(space, costs, Options{})
	pd.Serve(instance.Request{Point: 0, Demands: commodity.New(0)})
	pd.Serve(instance.Request{Point: 1, Demands: commodity.New(0)})
	sol := pd.Solution()
	if len(sol.Facilities) != 2 {
		t.Fatalf("facilities = %+v", sol.Facilities)
	}
	if sol.Facilities[1].Point != 1 {
		t.Errorf("second facility at %d, want 1", sol.Facilities[1].Point)
	}
	checkPDInvariants(t, pd)
}

func TestPDNearbyRequestPrefersConnecting(t *testing.T) {
	// Expensive facilities, short distances: the second request's dual
	// should hit Constraint (1) (distance 1) before paying cost 50.
	space := metric.NewLine([]float64{0, 1})
	costs := cost.Linear(2, 50)
	pd := NewPDOMFLP(space, costs, Options{})
	pd.Serve(instance.Request{Point: 0, Demands: commodity.New(0)})
	pd.Serve(instance.Request{Point: 1, Demands: commodity.New(0)})
	sol := pd.Solution()
	if len(sol.Facilities) != 1 {
		t.Fatalf("facilities = %+v", sol.Facilities)
	}
	if got := sol.Assign[1]; len(got) != 1 || got[0] != 0 {
		t.Errorf("assign[1] = %v", got)
	}
	checkPDInvariants(t, pd)
}

func TestPDSolutionsAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		u := 2 + rng.Intn(6)
		space := metric.RandomEuclidean(rng, 8, 2, 20)
		costs := cost.PowerLaw(u, rng.Float64()*2, 0.5+rng.Float64()*3)
		in := &instance.Instance{Space: space, Costs: costs}
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		sol, algCost, err := online.Run(PDFactory(Options{}), in, 1, true)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if algCost <= 0 {
			t.Errorf("trial %d: non-positive cost %g", trial, algCost)
		}
		if len(sol.Facilities) == 0 {
			t.Errorf("trial %d: no facilities", trial)
		}
	}
}

func TestPDInvariantsOnRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		u := 2 + rng.Intn(4)
		space := metric.RandomLine(rng, 6, 15)
		costs := cost.PowerLaw(u, 1, 1+rng.Float64())
		pd := NewPDOMFLP(space, costs, Options{})
		for i := 0; i < 12; i++ {
			pd.Serve(instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		checkPDInvariants(t, pd)
	}
}

func TestPDDualBoundsCost(t *testing.T) {
	// Corollary 8: cost(ALG) ≤ 3·Σ_r Σ_e a_re.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		u := 2 + rng.Intn(5)
		space := metric.RandomEuclidean(rng, 6, 2, 10)
		costs := cost.PowerLaw(u, 1, 1)
		in := &instance.Instance{Space: space, Costs: costs}
		for i := 0; i < 15; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		pd := NewPDOMFLP(space, costs, Options{})
		for _, r := range in.Requests {
			pd.Serve(r)
		}
		sol := pd.Solution()
		if err := sol.Verify(in); err != nil {
			t.Fatal(err)
		}
		algCost := sol.Cost(in)
		dual := pd.DualTotal()
		if algCost > 3*dual+1e-6 {
			t.Errorf("trial %d: cost %g exceeds 3·dual %g", trial, algCost, 3*dual)
		}
	}
}

func TestPDScaledDualFeasibility(t *testing.T) {
	// Corollary 17: duals scaled by γ = 1/(5√|S|·H_n) are dual-feasible.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 6; trial++ {
		u := 2 + rng.Intn(4)
		space := metric.RandomLine(rng, 5, 12)
		costs := cost.PowerLaw(u, 1, 1)
		pd := NewPDOMFLP(space, costs, Options{})
		n := 10
		for i := 0; i < n; i++ {
			pd.Serve(instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		rep := pd.CheckScaledDuals(Gamma(u, n), 8, 0, nil)
		if !rep.Feasible(1e-9) {
			t.Errorf("trial %d: scaled duals infeasible, max violation %g", trial, rep.MaxViolation)
		}
		if rep.Checked == 0 {
			t.Error("no constraints checked")
		}
	}
}

func TestPDCandidateRestriction(t *testing.T) {
	// Only point 1 may host facilities.
	space := metric.NewLine([]float64{0, 3, 50})
	costs := cost.Linear(2, 1)
	pd := NewPDOMFLP(space, costs, Options{Candidates: []int{1}})
	pd.Serve(instance.Request{Point: 0, Demands: commodity.New(0)})
	pd.Serve(instance.Request{Point: 2, Demands: commodity.New(1)})
	for _, f := range pd.Solution().Facilities {
		if f.Point != 1 {
			t.Errorf("facility at %d despite candidate restriction", f.Point)
		}
	}
}

func TestPDZeroDistanceTies(t *testing.T) {
	// Multiple co-located points (uniform distance 0 collapses them):
	// exercise Δ = 0 events.
	space := metric.NewUniform(3, 0)
	costs := cost.Linear(2, 1)
	pd := NewPDOMFLP(space, costs, Options{})
	pd.Serve(instance.Request{Point: 0, Demands: commodity.New(0, 1)})
	pd.Serve(instance.Request{Point: 1, Demands: commodity.New(0, 1)})
	pd.Serve(instance.Request{Point: 2, Demands: commodity.New(1)})
	in := &instance.Instance{Space: space, Costs: costs, Requests: []instance.Request{
		{Point: 0, Demands: commodity.New(0, 1)},
		{Point: 1, Demands: commodity.New(0, 1)},
		{Point: 2, Demands: commodity.New(1)},
	}}
	if err := pd.Solution().Verify(in); err != nil {
		t.Fatal(err)
	}
	// Everything is at distance 0: the first request pays the facilities,
	// the rest connect for free.
	want := pd.Solution().ConstructionCost(in)
	if got := pd.Solution().Cost(in); math.Abs(got-want) > 1e-9 {
		t.Errorf("assignment cost should be 0, total %g construction %g", got, want)
	}
	checkPDInvariants(t, pd)
}

// Property: PD solutions are feasible and cost ≤ 3·dual on arbitrary seeds
// (Corollary 8 as an executable property).
func TestQuickPDCorollary8(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := 2 + rng.Intn(4)
		space := metric.RandomEuclidean(rng, 5, 2, 8)
		costs := cost.PowerLaw(u, rng.Float64()*2, 1)
		in := &instance.Instance{Space: space, Costs: costs}
		for i := 0; i < 10; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		pd := NewPDOMFLP(space, costs, Options{})
		for _, r := range in.Requests {
			pd.Serve(r)
		}
		if err := pd.Solution().Verify(in); err != nil {
			return false
		}
		return pd.Solution().Cost(in) <= 3*pd.DualTotal()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPDServe(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u := 16
	space := metric.RandomEuclidean(rng, 50, 2, 100)
	costs := cost.PowerLaw(u, 1, 2)
	reqs := make([]instance.Request, 200)
	for i := range reqs {
		reqs[i] = instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(4)),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd := NewPDOMFLP(space, costs, Options{})
		for _, r := range reqs {
			pd.Serve(r)
		}
	}
}
