package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// This file pins the event-driven serve loop (per-arrival T3/T4 threshold
// precomputation + scalar event loop + candidate-indexed credit refresh)
// against the pre-refactor reference loop. The contract is byte-identity,
// not tolerance: NewPDLoopReference runs the original candidate-rescanning
// event loop over the same incremental bid accumulators, so every facility,
// assignment link, dual value and credit must be EXACTLY equal — any ulp of
// divergence in a freeze decision would eventually open different
// facilities. NewPDReference (naive bids) is additionally diffed with the
// usual float tolerance, since its bid sums associate differently.

// comparePDExact asserts byte-identical solutions, duals and credit ledgers
// between the event-driven instance and the pre-refactor loop reference.
func comparePDExact(t *testing.T, label string, step int, ev, ref *PDOMFLP) {
	t.Helper()
	evSol, refSol := ev.Solution(), ref.Solution()
	if len(evSol.Facilities) != len(refSol.Facilities) {
		t.Fatalf("%s step %d: %d facilities vs reference %d",
			label, step, len(evSol.Facilities), len(refSol.Facilities))
	}
	for fi := range evSol.Facilities {
		a, b := evSol.Facilities[fi], refSol.Facilities[fi]
		if a.Point != b.Point || !a.Config.Equal(b.Config) {
			t.Fatalf("%s step %d: facility %d = (%d,%v) vs reference (%d,%v)",
				label, step, fi, a.Point, a.Config, b.Point, b.Config)
		}
	}
	la, lb := evSol.Assign[step], refSol.Assign[step]
	if len(la) != len(lb) {
		t.Fatalf("%s step %d: links %v vs reference %v", label, step, la, lb)
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("%s step %d: links %v vs reference %v", label, step, la, lb)
		}
	}
	for i, d := range ev.duals[step] {
		if d != ref.duals[step][i] {
			t.Fatalf("%s step %d: dual[%d] = %v vs reference %v (must be bit-identical)",
				label, step, i, d, ref.duals[step][i])
		}
	}
	for e := range ev.creditSmall {
		if len(ev.creditSmall[e]) != len(ref.creditSmall[e]) {
			t.Fatalf("%s step %d: commodity %d has %d credits vs reference %d",
				label, step, e, len(ev.creditSmall[e]), len(ref.creditSmall[e]))
		}
		for j := range ev.creditSmall[e] {
			if ev.creditSmall[e][j] != ref.creditSmall[e][j] {
				t.Fatalf("%s step %d: creditSmall[%d][%d] = %+v vs reference %+v",
					label, step, e, j, ev.creditSmall[e][j], ref.creditSmall[e][j])
			}
		}
	}
	for j := range ev.creditLarge {
		if ev.creditLarge[j] != ref.creditLarge[j] {
			t.Fatalf("%s step %d: creditLarge[%d] = %+v vs reference %+v",
				label, step, j, ev.creditLarge[j], ref.creditLarge[j])
		}
	}
	if !ev.naiveBids {
		for e := range ev.bidSmall {
			for ci := range ev.bidSmall[e] {
				if ev.bidSmall[e][ci] != ref.bidSmall[e][ci] {
					t.Fatalf("%s step %d: bidSmall[%d][%d] = %v vs reference %v",
						label, step, e, ci, ev.bidSmall[e][ci], ref.bidSmall[e][ci])
				}
			}
		}
		for ci := range ev.bidLarge {
			if ev.bidLarge[ci] != ref.bidLarge[ci] {
				t.Fatalf("%s step %d: bidLarge[%d] = %v vs reference %v",
					label, step, ci, ev.bidLarge[ci], ref.bidLarge[ci])
			}
		}
	}
}

// runExactDiff replays one request sequence through the event-driven loop
// and the pre-refactor loop reference, asserting exact equality per arrival.
func runExactDiff(t *testing.T, label string, space metric.Space, costs cost.Model, opts Options, reqs []instance.Request) {
	t.Helper()
	ev := NewPDOMFLP(space, costs, opts)
	ref := NewPDLoopReference(space, costs, opts)
	if ev.refLoop || !ref.refLoop || ref.naiveBids {
		t.Fatal("event/loop-reference modes mis-wired")
	}
	for i, r := range reqs {
		ev.Serve(r)
		ref.Serve(r)
		comparePDExact(t, label, i, ev, ref)
	}
	if ev.DualTotal() != ref.DualTotal() {
		t.Errorf("%s: DualTotal %v vs reference %v", label, ev.DualTotal(), ref.DualTotal())
	}
}

func randomRequests(rng *rand.Rand, space metric.Space, u, n int) []instance.Request {
	reqs := make([]instance.Request, n)
	for i := range reqs {
		reqs[i] = instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		}
	}
	return reqs
}

// TestPDEventMatchesLoopReferenceDeep drives long random workloads — deep
// enough for large facilities to open, credits to be lowered repeatedly and
// the Constraint (2) sweep-skip to trigger many times — through both loops.
func TestPDEventMatchesLoopReferenceDeep(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		u := 2 + rng.Intn(10)
		space := metric.RandomEuclidean(rng, 5+rng.Intn(25), 2, 80)
		costs := cost.PowerLaw(u, rng.Float64()*2, 0.5+rng.Float64()*3)
		runExactDiff(t, "deep", space, costs, Options{},
			randomRequests(rng, space, u, 300))
	}
}

func TestPDEventMatchesLoopReferenceNoPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	u := 5
	space := metric.RandomLine(rng, 14, 40)
	costs := cost.PowerLaw(u, 1.2, 2)
	runExactDiff(t, "no-prediction", space, costs, Options{DisablePrediction: true},
		randomRequests(rng, space, u, 120))
}

// TestPDEventZeroCostTies forces Δ=0 events on every arrival: all opening
// costs are zero, so Constraint (3) (and (4)) are tight immediately for
// every candidate at distance 0, and the tie-break (nearest candidate,
// lowest index on equal distance) decides everything.
func TestPDEventZeroCostTies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := 4
	// NewSizeCost skips the positivity validation of the public
	// constructors: zero opening costs are exactly the degenerate tie the
	// event loop must survive.
	costs := cost.NewSizeCost(u, func(int) float64 { return 0 }, "zero")
	// Colocated points: a matrix metric where points {0,1} and {2,3}
	// coincide — zero distances off the diagonal, so several candidates are
	// tight at the same Δ=0 event with equal dCand.
	d := [][]float64{
		{0, 0, 5, 5},
		{0, 0, 5, 5},
		{5, 5, 0, 0},
		{5, 5, 0, 0},
	}
	space := metric.NewMatrix(d)
	runExactDiff(t, "zero-cost", space, costs, Options{},
		randomRequests(rng, space, u, 80))
}

// TestPDEventColocatedCandidates restricts candidates to duplicated points
// so the freeze-time nearest-tight-candidate scan has genuine distance ties
// that only the candidate-index order breaks.
func TestPDEventColocatedCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := 3
	pts := [][]float64{{0, 0}, {0, 0}, {3, 4}, {3, 4}, {6, 0}}
	space := metric.NewEuclidean(pts)
	costs := cost.PowerLaw(u, 1, 1)
	for _, cands := range [][]int{nil, {1, 0, 3, 2}, {4, 1}} {
		runExactDiff(t, "colocated", space, costs, Options{Candidates: cands},
			randomRequests(rng, space, u, 120))
	}
}

// TestPDEventSingletonUniverse exercises |S|=1, where a large facility's
// configuration equals the singleton's and Constraints (2)/(4) compete with
// (1)/(3) on every event (sum slope == single slope).
func TestPDEventSingletonUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	space := metric.RandomEuclidean(rng, 10, 2, 30)
	costs := cost.PowerLaw(1, 1.5, 2)
	reqs := make([]instance.Request, 150)
	for i := range reqs {
		reqs[i] = instance.Request{Point: rng.Intn(space.Len()), Demands: commodity.New(0)}
	}
	runExactDiff(t, "singleton", space, costs, Options{}, reqs)
}

// TestPDEventToleranceEdges plants thresholds a hair apart — well inside
// the pdEps*(1+sumA) freeze window but separated by far more than the
// pdMarginEps prefilter slack — so several candidates sit inside the tol
// window at the freezing event and the exact pre-refactor scan must pick
// among them identically in both loops.
func TestPDEventToleranceEdges(t *testing.T) {
	u := 2
	// A line where candidate distances differ by ~1e-11: inside tol for
	// moderate sums, so the tol window holds several candidates at once.
	pos := []float64{0, 1e-11, 2e-11, 1, 1 + 1e-11}
	space := metric.NewLine(pos)
	costs := cost.PowerLaw(u, 1, 1)
	rng := rand.New(rand.NewSource(17))
	runExactDiff(t, "tol-edges", space, costs, Options{},
		randomRequests(rng, space, u, 100))

	// And against the naive reference with the usual tolerance, closing the
	// three-way diff (event loop + incremental bids vs naive everything).
	rng = rand.New(rand.NewSource(17))
	ev := NewPDOMFLP(space, costs, Options{})
	naive := NewPDReference(space, costs, Options{})
	for i, r := range randomRequests(rng, space, u, 100) {
		ev.Serve(r)
		naive.Serve(r)
		compareStates(t, 17, i, ev, naive)
		if t.Failed() {
			t.Fatalf("three-way diff diverged at step %d", i)
		}
	}
}

// TestPDEventUniformZeroDistance collapses the whole space to a single
// location (uniform metric with d=0): every constraint for every candidate
// goes tight at the same instant, the ultimate Δ=0 stress.
func TestPDEventUniformZeroDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	u := 3
	space := metric.NewUniform(4, 0)
	costs := cost.PowerLaw(u, 0.7, 1)
	runExactDiff(t, "uniform-zero", space, costs, Options{},
		randomRequests(rng, space, u, 60))
}

// TestPDEventRestoredInstanceServesIdentically restores mid-stream state
// into a fresh event-driven instance (rebuilding the derived liveSmall list
// in ascending order rather than first-credit order) and asserts the suffix
// still matches the loop reference exactly — the derived-state rebuild
// cannot perturb the sweep results.
func TestPDEventRestoredInstanceServesIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	u := 6
	space := metric.RandomEuclidean(rng, 15, 2, 60)
	costs := cost.PowerLaw(u, 1, 2)
	reqs := randomRequests(rng, space, u, 200)

	ev := NewPDOMFLP(space, costs, Options{})
	ref := NewPDLoopReference(space, costs, Options{})
	for _, r := range reqs[:120] {
		ev.Serve(r)
		ref.Serve(r)
	}
	state, err := ev.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewPDOMFLP(space, costs, Options{})
	if err := restored.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs[120:] {
		restored.Serve(r)
		ref.Serve(r)
		comparePDExact(t, "restored", 120+i, restored, ref)
	}
}

// TestPDEventDualsFinite guards the scratch reuse: duals rows appended to
// the history must be copies, not aliases of the reusable scratch buffer.
func TestPDEventDualsFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	u := 4
	space := metric.RandomEuclidean(rng, 12, 2, 50)
	costs := cost.PowerLaw(u, 1, 2)
	pd := NewPDOMFLP(space, costs, Options{})
	var rows [][]float64
	var want [][]float64
	for i := 0; i < 50; i++ {
		pd.Serve(instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
		_, duals, _ := pd.Duals()
		row := duals[len(duals)-1]
		rows = append(rows, row)
		want = append(want, append([]float64(nil), row...))
	}
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != want[i][j] || math.IsNaN(rows[i][j]) {
				t.Fatalf("dual row %d mutated after later arrivals: %v, recorded %v",
					i, rows[i], want[i])
			}
		}
	}
}
