package core

import (
	"math/rand"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// TestThresholdCacheMatchesOracle drives a workload and, after every
// arrival, re-queries the cache for every (live commodity, point) pair and
// compares bit-for-bit against the full oracle scan. Long runs on a small
// candidate set force log compactions; facility openings force lowerBid
// invalidations — both fallback paths are exercised alongside the fold.
func TestThresholdCacheMatchesOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		u := 2 + rng.Intn(4)
		space := metric.RandomEuclidean(rng, 4+rng.Intn(6), 2, 20)
		pd := NewPDOMFLP(space, cost.PowerLaw(u, 1, 1.5), Options{})
		for i := 0; i < 120; i++ {
			pd.Serve(instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
			if pd.thr == nil {
				t.Fatal("event path did not build the threshold cache")
			}
			p := rng.Intn(space.Len())
			dCand := pd.ct.distTo(p)
			for e := 0; e < u; e++ {
				row := pd.bidSmall[e]
				if row == nil {
					row = pd.zeroBids
				}
				gotT, gotM := pd.thr.small[e].query(pd.ct.single[e], row, dCand, p, pd.thr.nPts)
				wantT, wantM := pdScanThresholds(pd.ct.single[e], row, dCand)
				if gotT != wantT || gotM != wantM {
					t.Fatalf("seed %d arrival %d: small[%d] at point %d = (%v,%v), oracle (%v,%v)",
						seed, i, e, p, gotT, gotM, wantT, wantM)
				}
			}
			gotT, gotM := pd.thr.large.query(pd.ct.full, pd.bidLarge, dCand, p, pd.thr.nPts)
			wantT, wantM := pdScanThresholds(pd.ct.full, pd.bidLarge, dCand)
			if gotT != wantT || gotM != wantM {
				t.Fatalf("seed %d arrival %d: large at point %d = (%v,%v), oracle (%v,%v)",
					seed, i, p, gotT, gotM, wantT, wantM)
			}
		}
	}
}

// TestThresholdCacheSurvivesRestore marshals an event instance mid-run,
// restores into a fresh instance (which drops the cache), continues both,
// and requires bit-identical facilities, duals and credits — the restored
// instance rebuilds its cache lazily against the restored bid rows.
func TestThresholdCacheSurvivesRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	u := 3
	space := metric.RandomEuclidean(rng, 8, 2, 30)
	costs := cost.PowerLaw(u, 1, 1.5)
	reqs := make([]instance.Request, 80)
	for i := range reqs {
		reqs[i] = instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		}
	}

	full := NewPDOMFLP(space, costs, Options{})
	for _, r := range reqs {
		full.Serve(r)
	}

	half := NewPDOMFLP(space, costs, Options{})
	for _, r := range reqs[:40] {
		half.Serve(r)
	}
	blob, err := half.MarshalState()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resumed := NewPDOMFLP(space, costs, Options{})
	if err := resumed.UnmarshalState(blob); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if resumed.thr != nil {
		t.Fatal("restore left a stale threshold cache")
	}
	for _, r := range reqs[40:] {
		resumed.Serve(r)
	}
	comparePDExact(t, "restored", len(reqs)-1, full, resumed)
}
