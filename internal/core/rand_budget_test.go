package core

import (
	"math/rand"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// TestBudgetsCachedMatchesReference interleaves serving, planting and budget
// queries and checks the per-point class-minima cache agrees exactly — value,
// class and point — with the naive per-call recompute, under both uniform and
// point-scaled cost models (the latter spreads candidates across classes).
func TestBudgetsCachedMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 11} {
		rng := rand.New(rand.NewSource(seed))
		u := 2 + rng.Intn(5)
		n := 5 + rng.Intn(10)
		space := metric.RandomEuclidean(rng, n, 2, 30)
		var costs cost.Model = cost.PowerLaw(u, 1, 2)
		if seed%2 == 0 {
			costs = cost.NewPointScaled(costs, cost.RandomFactors(rng, n, 0.5, 4))
		}
		ra := NewRandOMFLP(space, costs, Options{}, rng)
		for step := 0; step < 200; step++ {
			p := rng.Intn(n)
			e := rng.Intn(u)
			switch rng.Intn(5) {
			case 0:
				ra.Serve(instance.Request{
					Point:   p,
					Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
				})
				continue
			case 1:
				ra.PlantSmall(e, rng.Intn(n))
			case 2:
				ra.PlantLarge(rng.Intn(n))
			}
			x, xc, xp := ra.budgetSmall(e, p)
			rx, rxc, rxp := ra.budgetSmallRef(e, p)
			if x != rx || xc != rxc || xp != rxp {
				t.Fatalf("seed %d step %d: budgetSmall(%d,%d) = (%g,%d,%d), reference (%g,%d,%d)",
					seed, step, e, p, x, xc, xp, rx, rxc, rxp)
			}
			z, zc, zp := ra.budgetLarge(p)
			rz, rzc, rzp := ra.budgetLargeRef(p)
			if z != rz || zc != rzc || zp != rzp {
				t.Fatalf("seed %d step %d: budgetLarge(%d) = (%g,%d,%d), reference (%g,%d,%d)",
					seed, step, p, z, zc, zp, rz, rzc, rzp)
			}
		}
	}
}

// TestTauPointCacheMatchesNearest pins the cached per-class nearest lists
// against metric.Nearest over the cumulative candidate lists.
func TestTauPointCacheMatchesNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	space := metric.RandomEuclidean(rng, 12, 2, 50)
	costs := cost.NewPointScaled(cost.PowerLaw(4, 1, 2), cost.RandomFactors(rng, 12, 0.25, 8))
	ra := NewRandOMFLP(space, costs, Options{}, rng)
	for _, tc := range append([]tauClasses{ra.largeClasses}, ra.smallClasses...) {
		tc := tc
		for p := 0; p < space.Len(); p++ {
			c := tc.at(space, p)
			for i := range tc.values {
				wantPt, wantD := tc.nearest(space, i, p)
				if c.nearPt[i] != wantPt || c.nearD[i] != wantD {
					t.Fatalf("class %d from point %d: cache (%d,%g), nearest (%d,%g)",
						i, p, c.nearPt[i], c.nearD[i], wantPt, wantD)
				}
			}
		}
	}
}
