package core

import (
	"math/rand"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

func TestServeLogModes(t *testing.T) {
	// Scripted scenario covering all four modes.
	space := metric.NewLine([]float64{0, 100})
	costs := cost.PowerLaw(4, 1, 2) // singleton 2, full 4
	pd := NewPDOMFLP(space, costs, Options{})

	// Request 1: full demand at 0 → Constraint (4) fires (4Δ hits f^S=4
	// at Δ=1 before singletons at Δ=2): new large facility.
	pd.Serve(instance.Request{Point: 0, Demands: commodity.Full(4)})
	// Request 2: full demand at the same point → Constraint (2): existing
	// large at distance 0.
	pd.Serve(instance.Request{Point: 0, Demands: commodity.Full(4)})
	// Request 3: singleton at the same point → Constraint (1): connects to
	// the existing large facility (it offers everything).
	pd.Serve(instance.Request{Point: 0, Demands: commodity.New(1)})
	// Request 4: singleton far away → new small facility (Constraint (3):
	// dual would hit f^{e}=2 long before the distance 100).
	pd.Serve(instance.Request{Point: 1, Demands: commodity.New(2)})

	log := pd.ServeLog()
	byReq := map[int][]ServeEvent{}
	for _, ev := range log {
		byReq[ev.Request] = append(byReq[ev.Request], ev)
	}
	if len(byReq[0]) != 4 {
		t.Fatalf("request 0 events: %v", byReq[0])
	}
	for _, ev := range byReq[0] {
		if ev.Mode != ServedNewLarge {
			t.Errorf("request 0 commodity %d mode %v, want new-large", ev.Commodity, ev.Mode)
		}
	}
	for _, ev := range byReq[1] {
		if ev.Mode != ServedExistingLarge {
			t.Errorf("request 1 commodity %d mode %v, want existing-large", ev.Commodity, ev.Mode)
		}
	}
	// Request 2 connects to the large facility: with one link that is
	// still "existing large" from the log's perspective.
	if got := byReq[2][0].Mode; got != ServedExistingLarge && got != ServedExisting {
		t.Errorf("request 2 mode %v", got)
	}
	if got := byReq[3][0].Mode; got != ServedNewSmall {
		t.Errorf("request 3 mode %v, want new-small", got)
	}
	// Dual values recorded.
	if byReq[0][0].Dual <= 0 {
		t.Error("request 0 dual not recorded")
	}
	// Facility indices valid.
	for _, ev := range log {
		if ev.Facility < 0 || ev.Facility >= len(pd.Solution().Facilities) {
			t.Errorf("event %+v has invalid facility", ev)
		}
	}
}

func TestServeLogCompleteOnRandomRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := 4
	space := metric.RandomEuclidean(rng, 6, 2, 10)
	pd := NewPDOMFLP(space, cost.PowerLaw(u, 1, 1), Options{})
	total := 0
	for i := 0; i < 20; i++ {
		d := commodity.RandomSubset(rng, u, 1+rng.Intn(u))
		total += d.Len()
		pd.Serve(instance.Request{Point: rng.Intn(space.Len()), Demands: d})
	}
	log := pd.ServeLog()
	if len(log) != total {
		t.Errorf("log has %d events, want %d (one per demanded commodity)", len(log), total)
	}
	for _, ev := range log {
		if ev.Mode < ServedExisting || ev.Mode > ServedNewLarge {
			t.Errorf("invalid mode in %+v", ev)
		}
		// The named facility must actually offer the commodity.
		if !pd.Solution().Facilities[ev.Facility].Config.Contains(ev.Commodity) {
			t.Errorf("event %+v: facility does not offer the commodity", ev)
		}
	}
	if ServedNewSmall.String() == "" || ServeMode(99).String() == "" {
		t.Error("ServeMode.String broken")
	}
}
