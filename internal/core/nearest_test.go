package core

import (
	"math/rand"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// bruteNearest is the pre-cache reference: a full scan over a facility list.
func bruteNearest(fx *facilityIndex, list []int, p int) (int, float64) {
	best, bestD := -1, infinity
	for _, idx := range list {
		if d := fx.space.Distance(p, fx.sol.Facilities[idx].Point); d < bestD {
			best, bestD = idx, d
		}
	}
	return best, bestD
}

// bruteNearestOffering mirrors the original nearestOffering semantics: start
// from the nearest large facility, then let a small facility win only if
// strictly closer.
func bruteNearestOffering(fx *facilityIndex, e, p int) (int, float64) {
	best, bestD := bruteNearest(fx, fx.large, p)
	if sb, sd := bruteNearest(fx, fx.smallBy[e], p); sd < bestD {
		best, bestD = sb, sd
	}
	return best, bestD
}

// TestNearestCacheMatchesBruteForce interleaves random openings with queries
// from random points and checks the incremental caches agree with a full
// rescan on every query — including the tie-breaking facility index.
func TestNearestCacheMatchesBruteForce(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		u := 2 + rng.Intn(5)
		space := metric.RandomEuclidean(rng, 4+rng.Intn(12), 2, 10)
		fx := newFacilityIndex(space, u)
		for step := 0; step < 400; step++ {
			switch rng.Intn(4) {
			case 0:
				fx.openSmall(rng.Intn(u), rng.Intn(space.Len()))
			case 1:
				if rng.Intn(3) == 0 {
					fx.openLarge(rng.Intn(space.Len()))
				}
			default:
				p := rng.Intn(space.Len())
				e := rng.Intn(u)
				gotF, gotD := fx.nearestOffering(e, p)
				wantF, wantD := bruteNearestOffering(fx, e, p)
				if gotF != wantF || gotD != wantD {
					t.Fatalf("seed %d step %d: nearestOffering(%d,%d) = (%d,%g), brute force (%d,%g)",
						seed, step, e, p, gotF, gotD, wantF, wantD)
				}
				gotF, gotD = fx.nearestLarge(p)
				wantF, wantD = bruteNearest(fx, fx.large, p)
				if gotF != wantF || gotD != wantD {
					t.Fatalf("seed %d step %d: nearestLarge(%d) = (%d,%g), brute force (%d,%g)",
						seed, step, p, gotF, gotD, wantF, wantD)
				}
			}
		}
	}
}

// TestNearestCacheEmptyIndex pins the no-facility behaviour: (-1, +Inf).
func TestNearestCacheEmptyIndex(t *testing.T) {
	fx := newFacilityIndex(metric.NewLine([]float64{0, 1, 2}), 3)
	if f, d := fx.nearestOffering(1, 2); f != -1 || d != infinity {
		t.Errorf("empty index: nearestOffering = (%d, %g)", f, d)
	}
	if f, d := fx.nearestLarge(0); f != -1 || d != infinity {
		t.Errorf("empty index: nearestLarge = (%d, %g)", f, d)
	}
}

// TestPDSolutionsUnchangedByNearestCache replays a mixed workload through
// PD-OMFLP and checks the full solution remains feasible and identical to the
// naive-bid reference (which exercises the same facility index) — the
// end-to-end guard that the query caches never change algorithmic decisions.
func TestPDSolutionsUnchangedByNearestCache(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := 5
	space := metric.RandomEuclidean(rng, 14, 2, 60)
	costs := cost.PowerLaw(u, 1, 2)
	fast := NewPDOMFLP(space, costs, Options{})
	ref := NewPDReference(space, costs, Options{})
	in := &instance.Instance{Space: space, Costs: costs}
	for i := 0; i < 250; i++ {
		r := instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		}
		in.Requests = append(in.Requests, r)
		fast.Serve(r)
		ref.Serve(r)
	}
	if err := fast.Solution().Verify(in); err != nil {
		t.Fatal(err)
	}
	fs, rs := fast.Solution(), ref.Solution()
	if len(fs.Facilities) != len(rs.Facilities) {
		t.Fatalf("facility count: fast %d, reference %d", len(fs.Facilities), len(rs.Facilities))
	}
	for i := range fs.Facilities {
		if fs.Facilities[i].Point != rs.Facilities[i].Point ||
			!fs.Facilities[i].Config.Equal(rs.Facilities[i].Config) {
			t.Fatalf("facility %d differs: %+v vs %+v", i, fs.Facilities[i], rs.Facilities[i])
		}
	}
	if fast.Solution().Cost(in) != ref.Solution().Cost(in) {
		t.Errorf("cost differs: %g vs %g", fast.Solution().Cost(in), ref.Solution().Cost(in))
	}
}
