package core

import "math"

// pdThrCache maintains the event loop's per-arrival threshold minima
// incrementally across arrivals (ROADMAP item 5a). serveEvent needs, per
// demanded commodity e and arrival point p,
//
//	t3 = min_ci (single[e][ci] − bids_e[ci] + dCand_p[ci])
//	m3 = max_ci (|single[e][ci]| + |bids_e[ci]| + dCand_p[ci])
//
// (and the Constraint (4) analogue t4/m4 over the large bid row). The
// candidate costs and distance rows are static; only the bid rows move. So
// instead of rescanning all candidates every arrival, each bid row keeps an
// append-only log of the candidate indices whose bid value changed, and
// each (row, point) pair caches its last computed (t, m) plus a cursor into
// that log. A query folds only the candidates logged since its cursor:
// O(changed) instead of O(|cands|) on mostly-idle candidate sets.
//
// Byte-exactness. The fold is bit-identical to a fresh full scan — not
// merely close — because min/max selection returns an element of its input
// set (no accumulation, so no association-dependent rounding) and the two
// update directions are monotone in floating point:
//
//   - addBid only raises bids, and x − bids + y is non-increasing in bids
//     under round-to-nearest, so every logged candidate's threshold moved
//     down (and its magnitude term up). min(cachedMin, changed-current)
//     therefore equals the full min over current values: if the argmin is
//     unlogged its value is bit-unchanged and already ≤-dominated the
//     cached min; if logged, its current value is folded directly.
//   - lowerBid can raise thresholds, which breaks the fold, so it bumps the
//     row's epoch instead: every cached entry goes stale and the next query
//     per point falls back to the full scan — the exact per-arrival
//     precompute this cache replaces, kept verbatim in pdScanThresholds as
//     the differential oracle (the invariants build cross-checks every
//     query against it; see serveEvent).
//
// The cache is pure derived state: rebuilt lazily after UnmarshalState,
// never serialized, and never read by the reference loops (naive-bids and
// refLoop instances keep addBid's log parameter nil).
type pdThrCache struct {
	nPts  int
	small []pdThrRow // [e]; per-point entries allocated on first query
	large pdThrRow
}

// pdThrRow is the cache's view of one bid row: the change log, the epoch
// (bumped whenever the monotone-fold story breaks — a lowerBid or a log
// compaction), and the per-point cached minima.
type pdThrRow struct {
	log   []int32
	epoch uint64
	at    []pdThrEntry // [point]; nil until the row's first query
}

// pdThrEntry is one point's cached (t, m) with the log cursor and epoch it
// was computed at. The zero value (epoch 0) never matches a live row epoch
// (rows start at epoch 1), so untouched entries always full-scan first.
type pdThrEntry struct {
	t, m   float64
	cursor int32
	epoch  uint64
}

// pdThrMaxLogFactor bounds the change log at maxLogFactor·|cands| entries;
// past it the log is compacted (epoch bump), trading full rescans for
// bounded memory. Points that query often carry high cursors and rarely
// hit the bound; points that query rarely would have folded a log longer
// than a scan anyway.
const pdThrMaxLogFactor = 4

func newPDThrCache(u, nPts int) *pdThrCache {
	c := &pdThrCache{nPts: nPts, small: make([]pdThrRow, u)}
	for e := range c.small {
		c.small[e].epoch = 1
	}
	c.large.epoch = 1
	return c
}

// query returns (t, m) for this row at point p against the current base
// (static candidate costs), bids, and dCand vectors, folding the log tail
// or falling back to the oracle scan when stale or when folding would cost
// at least a scan.
func (r *pdThrRow) query(base, bids, dCand []float64, p, nPts int) (float64, float64) {
	if r.at == nil {
		r.at = make([]pdThrEntry, nPts)
	}
	en := &r.at[p]
	if en.epoch != r.epoch || len(r.log)-int(en.cursor) >= len(base) {
		t, m := pdScanThresholds(base, bids, dCand)
		*en = pdThrEntry{t: t, m: m, cursor: int32(len(r.log)), epoch: r.epoch}
		return t, m
	}
	if int(en.cursor) < len(r.log) {
		t, m := en.t, en.m
		for _, ci := range r.log[en.cursor:] {
			if thr := base[ci] - bids[ci] + dCand[ci]; thr < t {
				t = thr
			}
			if mm := math.Abs(base[ci]) + math.Abs(bids[ci]) + dCand[ci]; mm > m {
				m = mm
			}
		}
		en.t, en.m, en.cursor = t, m, int32(len(r.log))
	}
	return en.t, en.m
}

// note appends a changed candidate index (addBid raised its bid) and
// compacts the log at the size bound.
func (r *pdThrRow) note(ci int, nCands int) {
	r.log = append(r.log, int32(ci))
	if len(r.log) >= pdThrMaxLogFactor*nCands {
		r.invalidate()
	}
}

// invalidate marks every cached entry stale: the next query per point runs
// the full oracle scan.
func (r *pdThrRow) invalidate() {
	r.epoch++
	r.log = r.log[:0]
}

// pdScanThresholds is the per-arrival threshold precompute of the
// event-driven loop, verbatim: the O(|cands|) scan the cache's incremental
// folds replace and are validated against (differential oracle). t keeps
// the exact association order of the reference delta expression
// (base − bids + dCand), so t − a stays bit-identical to the reference's
// per-candidate minimum.
func pdScanThresholds(base, bids, dCand []float64) (t, m float64) {
	t, m = math.Inf(1), 0
	for ci := range base {
		if thr := base[ci] - bids[ci] + dCand[ci]; thr < t {
			t = thr
		}
		if mm := math.Abs(base[ci]) + math.Abs(bids[ci]) + dCand[ci]; mm > m {
			m = mm
		}
	}
	return t, m
}

// thrSmallLog returns the change log of commodity e's small bid row, or nil
// when the cache is inactive (reference instances never build one).
func (pd *PDOMFLP) thrSmallLog(e int) *pdThrRow {
	if pd.thr == nil {
		return nil
	}
	return &pd.thr.small[e]
}

// thrLargeLog is the Constraint (4) analogue of thrSmallLog.
func (pd *PDOMFLP) thrLargeLog() *pdThrRow {
	if pd.thr == nil {
		return nil
	}
	return &pd.thr.large
}
