package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

// stateTestRig builds a deterministic random workload on a shared substrate
// for the marshal/restore differential tests.
type stateTestRig struct {
	space    metric.Space
	costs    cost.Model
	u        int
	requests []instance.Request
}

func newStateRig(seed int64, n int) *stateTestRig {
	rng := rand.New(rand.NewSource(seed))
	u := 2 + rng.Intn(6)
	space := metric.RandomEuclidean(rng, 6+rng.Intn(14), 2, 60)
	rig := &stateTestRig{
		space: space,
		costs: cost.PowerLaw(u, 1, 0.5+rng.Float64()*3),
		u:     u,
	}
	for i := 0; i < n; i++ {
		rig.requests = append(rig.requests, instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
	}
	return rig
}

// assertSuffixIdentical drives the original algorithm to `cut`, marshals it,
// restores the bytes into the freshly built clone, serves the identical
// suffix through both, and requires bit-identical solutions throughout —
// the online.StateCodec contract.
func assertSuffixIdentical(t *testing.T, rig *stateTestRig, cut int, orig online.Algorithm, fresh func() online.Algorithm) {
	t.Helper()
	for _, r := range rig.requests[:cut] {
		orig.Serve(r)
	}
	sc := orig.(online.StateCodec)
	blob, err := sc.MarshalState()
	if err != nil {
		t.Fatalf("cut %d: marshal: %v", cut, err)
	}
	restored := fresh()
	if err := restored.(online.StateCodec).UnmarshalState(blob); err != nil {
		t.Fatalf("cut %d: unmarshal: %v", cut, err)
	}
	if !reflect.DeepEqual(orig.Solution(), restored.Solution()) {
		t.Fatalf("cut %d: restored solution differs before any suffix arrival", cut)
	}
	for i, r := range rig.requests[cut:] {
		orig.Serve(r)
		restored.Serve(r)
		if !reflect.DeepEqual(orig.Solution(), restored.Solution()) {
			t.Fatalf("cut %d: solutions diverge at suffix arrival %d", cut, i)
		}
	}
	// A second marshal of both must agree byte-for-byte: the restored
	// instance carries the full serving state, not just the solution.
	a, err := orig.(online.StateCodec).MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.(online.StateCodec).MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("cut %d: post-suffix states differ", cut)
	}
}

func TestPDStateSuffixIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rig := newStateRig(seed, 60)
		for _, cut := range []int{0, 1, 17, 60} {
			for _, opts := range []Options{{}, {DisablePrediction: true}} {
				opts := opts
				assertSuffixIdentical(t, rig, cut,
					NewPDOMFLP(rig.space, rig.costs, opts),
					func() online.Algorithm { return NewPDOMFLP(rig.space, rig.costs, opts) })
			}
		}
	}
}

// TestPDStateDualsPreserved: the dual objective — the certified lower bound
// snapshots report — must survive the round trip exactly.
func TestPDStateDualsPreserved(t *testing.T) {
	rig := newStateRig(9, 50)
	pd := NewPDOMFLP(rig.space, rig.costs, Options{})
	for _, r := range rig.requests {
		pd.Serve(r)
	}
	blob, err := pd.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	back := NewPDOMFLP(rig.space, rig.costs, Options{})
	if err := back.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if got, want := back.DualTotal(), pd.DualTotal(); got != want {
		t.Errorf("DualTotal = %v after restore, want %v (must be exact)", got, want)
	}
	ids1, duals1, pts1 := pd.Duals()
	ids2, duals2, pts2 := back.Duals()
	if !reflect.DeepEqual(ids1, ids2) || !reflect.DeepEqual(duals1, duals2) || !reflect.DeepEqual(pts1, pts2) {
		t.Error("frozen duals changed across the state round trip")
	}
	// ServeLog reconstructs from the restored history bookkeeping.
	if !reflect.DeepEqual(pd.ServeLog(), back.ServeLog()) {
		t.Error("ServeLog changed across the state round trip")
	}
}

// TestPDStateFromReference: state marshaled by the naive-bids reference
// instance restores onto an incremental instance (bids rebuilt from
// credits) and serves suffixes identically to the reference.
func TestPDStateFromReference(t *testing.T) {
	rig := newStateRig(5, 40)
	ref := NewPDReference(rig.space, rig.costs, Options{})
	for _, r := range rig.requests[:25] {
		ref.Serve(r)
	}
	blob, err := ref.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	inc := NewPDOMFLP(rig.space, rig.costs, Options{})
	if err := inc.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	for _, r := range rig.requests[25:] {
		ref.Serve(r)
		inc.Serve(r)
	}
	if !reflect.DeepEqual(ref.Solution(), inc.Solution()) {
		t.Error("incremental restore of reference state diverged on the suffix")
	}
}

func TestRandStateSuffixIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rig := newStateRig(seed, 60)
		for _, cut := range []int{0, 1, 23, 60} {
			for _, opts := range []Options{{}, {DisablePrediction: true}} {
				opts := opts
				assertSuffixIdentical(t, rig, cut,
					NewRandOMFLP(rig.space, rig.costs, opts, rand.New(rand.NewSource(seed*101))),
					func() online.Algorithm {
						return NewRandOMFLP(rig.space, rig.costs, opts, rand.New(rand.NewSource(seed*101)))
					})
			}
		}
	}
}

func TestHeavyAwareStateSuffixIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := 5
	space := metric.RandomEuclidean(rng, 12, 2, 60)
	// A size-table model with near-linear growth: singletons are expensive
	// relative to the average, so the heavy/light split is non-trivial.
	costs := mustTable(t, u)
	rig := &stateTestRig{space: space, costs: costs, u: u}
	for i := 0; i < 50; i++ {
		rig.requests = append(rig.requests, instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
	}
	for _, cut := range []int{0, 13, 50} {
		assertSuffixIdentical(t, rig, cut,
			NewHeavyAware(rig.space, rig.costs, Options{}, 1.5),
			func() online.Algorithm { return NewHeavyAware(rig.space, rig.costs, Options{}, 1.5) })
	}
}

func mustTable(t *testing.T, u int) cost.Model {
	t.Helper()
	bySize := make([]float64, u+1)
	for k := 1; k <= u; k++ {
		bySize[k] = float64(k) * 1.5
	}
	m, err := cost.NewTable(bySize)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStateRestoreErrors: mismatched or stale restores must refuse loudly.
func TestStateRestoreErrors(t *testing.T) {
	rig := newStateRig(2, 10)
	pd := NewPDOMFLP(rig.space, rig.costs, Options{})
	for _, r := range rig.requests {
		pd.Serve(r)
	}
	blob, err := pd.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	// Restoring onto a non-fresh instance.
	used := NewPDOMFLP(rig.space, rig.costs, Options{})
	used.Serve(rig.requests[0])
	if err := used.UnmarshalState(blob); err == nil {
		t.Error("restore onto a non-fresh instance succeeded")
	}
	// Restoring under a different universe.
	other := NewPDOMFLP(rig.space, cost.PowerLaw(rig.u+1, 1, 1), Options{})
	if err := other.UnmarshalState(blob); err == nil {
		t.Error("restore under a different universe succeeded")
	}
	// Restoring under a different candidate set.
	cands := NewPDOMFLP(rig.space, rig.costs, Options{Candidates: []int{0, 1}})
	if err := cands.UnmarshalState(blob); err == nil {
		t.Error("restore under a different candidate set succeeded")
	}
	// Garbage bytes.
	fresh := NewPDOMFLP(rig.space, rig.costs, Options{})
	if err := fresh.UnmarshalState([]byte("{")); err == nil {
		t.Error("restore of corrupt bytes succeeded")
	}
	// TraceAnalysis instances are outside the contract, both directions.
	ta := NewPDOMFLP(rig.space, rig.costs, Options{TraceAnalysis: true})
	if _, err := ta.MarshalState(); err == nil {
		t.Error("marshal with TraceAnalysis succeeded")
	}
	if err := ta.UnmarshalState(blob); err == nil {
		t.Error("restore into a TraceAnalysis instance succeeded")
	}

	// RAND: wrong candidate count and non-fresh instance.
	ra := NewRandOMFLP(rig.space, rig.costs, Options{}, rand.New(rand.NewSource(1)))
	for _, r := range rig.requests {
		ra.Serve(r)
	}
	rblob, err := ra.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.UnmarshalState(rblob); err == nil {
		t.Error("RAND restore onto a non-fresh instance succeeded")
	}
	raCands := NewRandOMFLP(rig.space, rig.costs, Options{Candidates: []int{0}}, rand.New(rand.NewSource(1)))
	if err := raCands.UnmarshalState(rblob); err == nil {
		t.Error("RAND restore under a different candidate set succeeded")
	}
}

// TestStateSingletonUniverse: with |S| = 1 a large facility's configuration
// equals the singleton's, so the explicit large flag in the serialized
// facility list is load-bearing — a restore must preserve facility kinds.
func TestStateSingletonUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	space := metric.RandomEuclidean(rng, 8, 2, 40)
	costs := cost.PowerLaw(1, 1, 2)
	var reqs []instance.Request
	for i := 0; i < 30; i++ {
		reqs = append(reqs, instance.Request{Point: rng.Intn(space.Len()), Demands: commodity.New(0)})
	}
	rig := &stateTestRig{space: space, costs: costs, u: 1, requests: reqs}
	assertSuffixIdentical(t, rig, 15,
		NewPDOMFLP(space, costs, Options{}),
		func() online.Algorithm { return NewPDOMFLP(space, costs, Options{}) })
	assertSuffixIdentical(t, rig, 15,
		NewRandOMFLP(space, costs, Options{}, rand.New(rand.NewSource(4))),
		func() online.Algorithm { return NewRandOMFLP(space, costs, Options{}, rand.New(rand.NewSource(4))) })
}
