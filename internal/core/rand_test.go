package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

func TestRandFirstRequestIsServed(t *testing.T) {
	space := metric.SinglePoint()
	costs := cost.PowerLaw(4, 1, 1)
	ra := NewRandOMFLP(space, costs, Options{}, rand.New(rand.NewSource(1)))
	r := instance.Request{Point: 0, Demands: commodity.New(0, 2)}
	ra.Serve(r)
	sol := ra.Solution()
	if len(sol.Facilities) == 0 {
		t.Fatal("no facility opened")
	}
	in := &instance.Instance{Space: space, Costs: costs, Requests: []instance.Request{r}}
	if err := sol.Verify(in); err != nil {
		t.Fatal(err)
	}
}

func TestRandSolutionsAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		u := 2 + rng.Intn(6)
		space := metric.RandomEuclidean(rng, 8, 2, 20)
		costs := cost.PowerLaw(u, rng.Float64()*2, 0.5+rng.Float64()*3)
		in := &instance.Instance{Space: space, Costs: costs}
		n := 5 + rng.Intn(25)
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		if _, _, err := online.Run(RandFactory(Options{}), in, int64(trial), true); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRandDeterministicUnderSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := 4
	space := metric.RandomLine(rng, 6, 10)
	costs := cost.PowerLaw(u, 1, 1)
	in := &instance.Instance{Space: space, Costs: costs}
	for i := 0; i < 15; i++ {
		in.Requests = append(in.Requests, instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
	}
	_, c1, err := online.Run(RandFactory(Options{}), in, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := online.Run(RandFactory(Options{}), in, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("same seed produced costs %g and %g", c1, c2)
	}
}

func TestRandColocatedRequestsDoNotOverbuild(t *testing.T) {
	// Many identical requests at one point: expected number of facilities
	// stays small because the budget X collapses to 0 once a facility
	// covers the request.
	space := metric.SinglePoint()
	costs := cost.Constant(3, 50)
	var totalFacilities int
	const runs = 50
	for s := int64(0); s < runs; s++ {
		ra := NewRandOMFLP(space, costs, Options{}, rand.New(rand.NewSource(s)))
		for i := 0; i < 40; i++ {
			ra.Serve(instance.Request{Point: 0, Demands: commodity.New(0, 1, 2)})
		}
		totalFacilities += len(ra.Solution().Facilities)
	}
	if avg := float64(totalFacilities) / runs; avg > 3 {
		t.Errorf("average %g facilities for identical co-located requests", avg)
	}
}

func TestRandLargeFacilityWinsForBundledDemand(t *testing.T) {
	// Strictly subadditive costs and full-bundle requests: over many runs
	// RAND should open mostly large facilities (Z(r) ≪ X(r)).
	u := 16
	space := metric.SinglePoint()
	costs := cost.PowerLaw(u, 1, 1) // g(1)=1 each, g(16)=4
	var large, small int
	for s := int64(0); s < 40; s++ {
		ra := NewRandOMFLP(space, costs, Options{}, rand.New(rand.NewSource(s)))
		for i := 0; i < 10; i++ {
			ra.Serve(instance.Request{Point: 0, Demands: commodity.Full(u)})
		}
		for _, f := range ra.Solution().Facilities {
			if f.Config.Len() == u {
				large++
			} else {
				small++
			}
		}
	}
	if large == 0 {
		t.Error("bundled demand never opened a large facility")
	}
	if small > large*u/2 {
		t.Errorf("small facilities (%d) dominate large (%d) despite bundling advantage", small, large)
	}
}

func TestRandNoPredictionAblation(t *testing.T) {
	u := 9
	space := metric.SinglePoint()
	costs := cost.CeilSqrt(u)
	ra := NewRandOMFLP(space, costs, Options{DisablePrediction: true}, rand.New(rand.NewSource(2)))
	for e := 0; e < u; e++ {
		ra.Serve(instance.Request{Point: 0, Demands: commodity.New(e)})
	}
	for _, f := range ra.Solution().Facilities {
		if f.Config.Len() != 1 {
			t.Errorf("no-prediction RAND opened config %v", f.Config)
		}
	}
}

func TestRandOptimalReassignNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	u := 5
	space := metric.RandomEuclidean(rng, 8, 2, 15)
	costs := cost.PowerLaw(u, 1, 2)
	in := &instance.Instance{Space: space, Costs: costs}
	for i := 0; i < 20; i++ {
		in.Requests = append(in.Requests, instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
	}
	// Same seed: identical coin flips, so the facility sets agree and only
	// the connection rule differs. DP connections must never cost more.
	solTwo, cTwo, err := online.Run(RandFactory(Options{}), in, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	solDP, cDP, err := online.Run(RandFactory(Options{OptimalReassign: true}), in, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(solTwo.Facilities) != len(solDP.Facilities) {
		t.Fatalf("facility sets diverged under same seed: %d vs %d",
			len(solTwo.Facilities), len(solDP.Facilities))
	}
	if cDP > cTwo+1e-9 {
		t.Errorf("optimal reassign cost %g exceeds two-mode cost %g", cDP, cTwo)
	}
}

func TestRandStatisticalCompetitiveOnGame(t *testing.T) {
	// On the Theorem 2 game with |S|=16 and OPT=1, RAND's mean cost over
	// many runs must stay well below |S| (the no-prediction cost) —
	// O(√|S|·log n/log log n) predicts single digits here.
	u := 16
	space := metric.SinglePoint()
	costs := cost.CeilSqrt(u)
	var total float64
	const runs = 60
	for s := int64(0); s < runs; s++ {
		rng := rand.New(rand.NewSource(s))
		perm := rng.Perm(u)[:4] // random S' of size √16 = 4
		in := &instance.Instance{Space: space, Costs: costs}
		for _, e := range perm {
			in.Requests = append(in.Requests, instance.Request{Point: 0, Demands: commodity.New(e)})
		}
		_, c, err := online.Run(RandFactory(Options{}), in, s, true)
		if err != nil {
			t.Fatal(err)
		}
		total += c
	}
	if avg := total / runs; avg > float64(u)/2 {
		t.Errorf("mean game cost %g too close to no-prediction cost %d", avg, u)
	}
}

// Property: RAND solutions are feasible for arbitrary seeds and workloads.
func TestQuickRandFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := 2 + rng.Intn(4)
		space := metric.RandomLine(rng, 5, 10)
		costs := cost.PowerLaw(u, rng.Float64()*2, 1)
		in := &instance.Instance{Space: space, Costs: costs}
		for i := 0; i < 12; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		_, _, err := online.Run(RandFactory(Options{}), in, seed, true)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuildTauClasses(t *testing.T) {
	space := metric.NewLine([]float64{0, 1, 2})
	_ = space
	costsAt := map[int]float64{0: 1, 1: 3, 2: 8}
	tc := buildTauClasses([]int{0, 1, 2}, func(m int) float64 { return costsAt[m] })
	if len(tc.values) != 3 || tc.values[0] != 1 || tc.values[1] != 2 || tc.values[2] != 8 {
		t.Fatalf("classes = %v", tc.values)
	}
	if len(tc.points[0]) != 1 || len(tc.points[1]) != 2 || len(tc.points[2]) != 3 {
		t.Errorf("cumulative points = %v", tc.points)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive cost must panic")
		}
	}()
	buildTauClasses([]int{0}, func(int) float64 { return 0 })
}

func TestGamma(t *testing.T) {
	// γ = 1/(5·√|S|·H_n).
	got := Gamma(16, 1)
	if want := 1.0 / (5 * 4 * 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("Gamma(16,1) = %g, want %g", got, want)
	}
	if Gamma(4, 0) != 1 {
		t.Errorf("Gamma(_, 0) = %g, want 1", Gamma(4, 0))
	}
}

func BenchmarkRandServe(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u := 16
	space := metric.RandomEuclidean(rng, 50, 2, 100)
	costs := cost.PowerLaw(u, 1, 2)
	reqs := make([]instance.Request, 200)
	for i := range reqs {
		reqs[i] = instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(4)),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ra := NewRandOMFLP(space, costs, Options{}, rand.New(rand.NewSource(int64(i))))
		for _, r := range reqs {
			ra.Serve(r)
		}
	}
}
