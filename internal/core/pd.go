package core

import (
	"math"

	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

// PDOMFLP is the deterministic primal-dual algorithm of Section 3
// (Algorithm 1). On each arriving request it simultaneously raises the dual
// variables a_re of the request's not-yet-served commodities until one of
// four constraints becomes tight:
//
//	(1) a_re = d(F(e), r)            — connect e to an existing facility
//	(2) Σ_e a_re = d(F̂, r)           — connect r to an existing large facility
//	(3) (a_re − d(m,r))_+ + Σ_j bids = f_m^{e} — tentatively open small at m
//	(4) (Σa − d(m,r))_+ + Σ_j bids   = f_m^S   — open a large facility at m
//
// where the bids reinvest earlier requests' frozen duals, capped by their
// distance to the nearest facility already serving them (the min-terms of
// the constraints). Tight (3) opens a temporary small facility; tight (2) or
// (4) serves the whole request with a single large facility and discards the
// temporaries. All raises happen event-driven: every threshold is affine in
// the raise Δ, so the algorithm jumps straight to the earliest event.
type PDOMFLP struct {
	space metric.Space
	costs cost.Model
	u     int
	opts  Options
	fx    *facilityIndex
	ct    *costTable

	// Frozen duals: duals[r][i] aligns with demandIDs[r][i].
	duals     [][]float64
	demandIDs [][]int
	points    []int

	// creditSmall[e] holds, per earlier request demanding e, the bid cap
	// min{a_je, d(F(e), j)} kept current as facilities open.
	creditSmall [][]pdCredit
	// creditLarge holds, per earlier request, min{Σ_e a_je, d(F̂, j)}.
	creditLarge []pdCredit

	// bidSmall[e][ci] = Σ_j (creditSmall[e][j].credit − d(m_ci, j.point))_+,
	// the Constraint (3) bid sum toward candidate ci, maintained
	// incrementally: contributions are added when a credit is recorded and
	// corrected when a credit is lowered, so Serve reads them in O(1) per
	// (commodity, candidate) instead of rescanning the request history.
	// A row is nil until the first credit for its commodity arrives.
	bidSmall [][]float64
	// bidLarge[ci] is the Constraint (4) analogue over creditLarge.
	bidLarge []float64
	// zeroBids is the shared all-zero row read for commodities that have no
	// credits yet. Callers never mutate bid rows mid-arrival, so sharing is
	// safe.
	zeroBids []float64
	// naiveBids switches Serve to recomputing the bid sums from the full
	// credit history on every arrival — the original O(history×candidates)
	// accounting, kept as the reference implementation for differential
	// tests and benchmarks (see NewPDReference).
	naiveBids bool
	// distHistory backs the Lemma 14 analysis extraction (TraceAnalysis).
	distHistory map[int][]analysisRecord
	// facBoundary[i] = number of facilities after arrival i (for ServeLog).
	facBoundary []int
}

type pdCredit struct {
	point  int
	credit float64
}

// NewPDOMFLP constructs the deterministic algorithm.
func NewPDOMFLP(space metric.Space, costs cost.Model, opts Options) *PDOMFLP {
	u := costs.Universe()
	cands := opts.candidates(space)
	if len(cands) == 0 {
		panic("core: PD-OMFLP needs at least one candidate point")
	}
	return &PDOMFLP{
		space:       space,
		costs:       costs,
		u:           u,
		opts:        opts,
		fx:          newFacilityIndex(space, u),
		ct:          buildCostTable(space, costs, cands),
		creditSmall: make([][]pdCredit, u),
		bidSmall:    make([][]float64, u),
		bidLarge:    make([]float64, len(cands)),
		zeroBids:    make([]float64, len(cands)),
	}
}

// NewPDReference constructs PD-OMFLP with the original per-arrival
// recomputation of the bid sums from the full credit history instead of the
// incremental accumulators. It is semantically identical to NewPDOMFLP but
// pays O(history × candidates) per arrival; it exists so benchmarks can
// quantify — and differential tests validate — the incremental accounting.
func NewPDReference(space metric.Space, costs cost.Model, opts Options) *PDOMFLP {
	pd := NewPDOMFLP(space, costs, opts)
	pd.naiveBids = true
	return pd
}

// Name implements online.Algorithm.
func (pd *PDOMFLP) Name() string {
	if pd.opts.DisablePrediction {
		return "pd-omflp(no-prediction)"
	}
	return "pd-omflp"
}

// Solution implements online.Algorithm. The returned solution is the
// algorithm's live state; callers must not mutate it.
func (pd *PDOMFLP) Solution() *instance.Solution { return pd.fx.sol }

// PDFactory returns an online.Factory for PD-OMFLP with the given options.
func PDFactory(opts Options) online.Factory {
	name := "pd-omflp"
	if opts.DisablePrediction {
		name = "pd-omflp(no-prediction)"
	}
	return online.Factory{
		Name: name,
		New: func(space metric.Space, costs cost.Model, seed int64) online.Algorithm {
			return NewPDOMFLP(space, costs, opts)
		},
	}
}

// serveState tracks how each demanded commodity of the current request got
// served.
type pdServe struct {
	mode int // 0 = unserved, 1 = existing facility, 2 = temporary small
	fac  int // facility index (mode 1)
	temp int // index into temps (mode 2)
}

type pdTemp struct {
	e, m    int
	removed bool
}

const pdEps = 1e-9

// Serve implements online.Algorithm: Algorithm 1 on arrival of request r.
func (pd *PDOMFLP) Serve(r instance.Request) {
	p := r.Point
	ids := r.Demands.IDs()
	k := len(ids)
	cands := pd.ct.cands

	var analysisSnaps map[int][]float64
	if pd.opts.TraceAnalysis {
		analysisSnaps = pd.snapshotAnalysis(ids)
	}

	// Static per-arrival quantities: distances to nearest facilities and
	// the earlier requests' bid sums toward each candidate point. No real
	// facility opens mid-arrival, so these stay valid for the whole loop.
	dFe := make([]float64, k)
	for i, e := range ids {
		_, dFe[i] = pd.fx.nearestOffering(e, p)
	}
	_, dLarge := pd.fx.nearestLarge(p)

	// bid3[i][ci] = Σ_j (creditSmall[e_i][j] − d(m_ci, j))_+ and
	// bid4[ci] the Constraint (4) analogue. The incremental accumulators
	// hold exactly these sums; credits only change after the event loop, so
	// aliasing the live rows is safe. The reference mode rescans the credit
	// history instead.
	bid3 := make([][]float64, k)
	var bid4 []float64
	if pd.naiveBids {
		for i, e := range ids {
			bid3[i] = pd.naiveSmallBids(e)
		}
		if pd.opts.DisablePrediction {
			bid4 = pd.zeroBids // never read; constraints (2)/(4) are skipped
		} else {
			bid4 = pd.naiveLargeBids()
		}
	} else {
		for i, e := range ids {
			if row := pd.bidSmall[e]; row != nil {
				bid3[i] = row
			} else {
				bid3[i] = pd.zeroBids
			}
		}
		bid4 = pd.bidLarge
	}
	dCand := pd.ct.distTo(p)

	a := make([]float64, k)
	frozen := make([]bool, k)
	serve := make([]pdServe, k)
	var temps []pdTemp
	sumA := 0.0
	unfrozen := k
	largeServed := -1 // facility index once the request is served large

	for unfrozen > 0 {
		// Find the earliest event. All thresholds are affine in the raise
		// Δ: slope 1 for (1)/(3) on a single commodity, slope `unfrozen`
		// for (2)/(4) on the sum.
		delta := math.Inf(1)

		// Constraint (1): a_e + Δ = d(F(e), r).
		for i := range ids {
			if frozen[i] {
				continue
			}
			if d := dFe[i] - a[i]; d < delta {
				delta = d
			}
		}
		// Constraint (3): a_e + Δ = f^{e}_m − bids + d(m, r).
		for i := range ids {
			if frozen[i] {
				continue
			}
			for ci := range cands {
				need := pd.ct.single[ids[i]][ci] - bid3[i][ci] + dCand[ci] - a[i]
				if need < 0 {
					need = 0
				}
				if need < delta {
					delta = need
				}
			}
		}
		if !pd.opts.DisablePrediction {
			// Constraint (2): sumA + unfrozen·Δ = d(F̂, r).
			if dLarge < infinity {
				if d := (dLarge - sumA) / float64(unfrozen); d < delta {
					delta = d
				}
			}
			// Constraint (4): sumA + unfrozen·Δ = f^S_m − bids + d(m, r).
			for ci := range cands {
				need := (pd.ct.full[ci] - bid4[ci] + dCand[ci] - sumA) / float64(unfrozen)
				if need < 0 {
					need = 0
				}
				if need < delta {
					delta = need
				}
			}
		}
		if math.IsInf(delta, 1) {
			panic("core: PD-OMFLP found no tight constraint; no candidate can serve the request")
		}
		if delta < 0 {
			delta = 0
		}

		// Raise all unfrozen duals by delta.
		for i := range ids {
			if !frozen[i] {
				a[i] += delta
			}
		}
		sumA += float64(unfrozen) * delta
		tol := pdEps * (1 + sumA)

		// Lines 3–5: freeze commodities with tight Constraint (1) or (3).
		for i := range ids {
			if frozen[i] {
				continue
			}
			if a[i] >= dFe[i]-tol {
				// Constraint (1): connect to the nearest existing facility.
				fac, _ := pd.fx.nearestOffering(ids[i], p)
				frozen[i] = true
				unfrozen--
				serve[i] = pdServe{mode: 1, fac: fac}
				continue
			}
			bestM := -1
			bestD := math.Inf(1)
			for ci := range cands {
				if a[i]-dCand[ci]+bid3[i][ci] >= pd.ct.single[ids[i]][ci]-tol {
					if dCand[ci] < bestD {
						bestM, bestD = ci, dCand[ci]
					}
				}
			}
			if bestM >= 0 {
				// Constraint (3): temporary small facility at the
				// nearest tight point.
				frozen[i] = true
				unfrozen--
				serve[i] = pdServe{mode: 2, temp: len(temps)}
				temps = append(temps, pdTemp{e: ids[i], m: cands[bestM]})
			}
		}

		if pd.opts.DisablePrediction {
			continue
		}

		// Lines 6–9: Constraint (2) — existing large facility.
		if dLarge < infinity && sumA >= dLarge-tol {
			fac, _ := pd.fx.nearestLarge(p)
			largeServed = fac
			break
		}
		// Constraint (4): open a new large facility at the nearest tight
		// candidate.
		bestM, bestD := -1, math.Inf(1)
		for ci := range cands {
			if sumA-dCand[ci]+bid4[ci] >= pd.ct.full[ci]-tol {
				if dCand[ci] < bestD {
					bestM, bestD = ci, dCand[ci]
				}
			}
		}
		if bestM >= 0 {
			largeServed = pd.fx.openLarge(cands[bestM])
			break
		}
	}

	// Materialize the outcome.
	pd.points = append(pd.points, p)
	pd.demandIDs = append(pd.demandIDs, ids)
	pd.duals = append(pd.duals, a)

	var links []int
	if largeServed >= 0 {
		// Whole request served by one large facility; temporaries vanish.
		links = []int{largeServed}
		newPt := pd.fx.sol.Facilities[largeServed].Point
		pd.refreshCreditsForLarge(newPt)
	} else {
		// Open the surviving temporaries and connect each commodity.
		opened := make([]int, len(temps))
		for ti, tmp := range temps {
			opened[ti] = pd.fx.openSmall(tmp.e, tmp.m)
		}
		linkSet := map[int]bool{}
		for i := range ids {
			var fac int
			switch serve[i].mode {
			case 1:
				fac = serve[i].fac
			case 2:
				fac = opened[serve[i].temp]
			default:
				panic("core: PD-OMFLP left a commodity unserved")
			}
			if !linkSet[fac] {
				linkSet[fac] = true
				links = append(links, fac)
			}
		}
		for _, tmp := range temps {
			pd.refreshCreditsForSmall(tmp.e, tmp.m)
		}
	}
	pd.fx.sol.Assign = append(pd.fx.sol.Assign, links)
	pd.facBoundary = append(pd.facBoundary, len(pd.fx.sol.Facilities))

	if pd.opts.TraceAnalysis {
		pd.recordAnalysis(ids, a, p, analysisSnaps)
	}

	// Record this request's own credits against the updated facility sets.
	for i, e := range ids {
		_, d := pd.fx.nearestOffering(e, p)
		pd.addCreditSmall(e, p, math.Min(a[i], d))
	}
	_, dHat := pd.fx.nearestLarge(p)
	pd.addCreditLarge(p, math.Min(sumA, dHat))
}

// addBid folds one credit's contribution (credit − d(m_ci, p))_+ into a bid
// row; the single place the bid formula is written for accumulation.
func (pd *PDOMFLP) addBid(row []float64, p int, credit float64) {
	dRow := pd.ct.distTo(p)
	for ci := range row {
		if b := credit - dRow[ci]; b > 0 {
			row[ci] += b
		}
	}
}

// addCreditSmall records a new small-facility credit for commodity e and
// folds its contribution into the per-candidate bid accumulators.
func (pd *PDOMFLP) addCreditSmall(e, p int, credit float64) {
	pd.creditSmall[e] = append(pd.creditSmall[e], pdCredit{point: p, credit: credit})
	if pd.naiveBids {
		return
	}
	row := pd.bidSmall[e]
	if row == nil {
		row = make([]float64, len(pd.ct.cands))
		pd.bidSmall[e] = row
	}
	pd.addBid(row, p, credit)
}

// addCreditLarge records a new large-facility credit and folds its
// contribution into the Constraint (4) accumulators.
func (pd *PDOMFLP) addCreditLarge(p int, credit float64) {
	pd.creditLarge = append(pd.creditLarge, pdCredit{point: p, credit: credit})
	if pd.naiveBids {
		return
	}
	pd.addBid(pd.bidLarge, p, credit)
}

// lowerBid subtracts from row the contribution change of a credit at point p
// lowered from oldCredit to newCredit (oldCredit > newCredit ≥ 0).
func (pd *PDOMFLP) lowerBid(row []float64, p int, oldCredit, newCredit float64) {
	dRow := pd.ct.distTo(p)
	for ci := range row {
		ob := oldCredit - dRow[ci]
		if ob <= 0 {
			continue
		}
		nb := newCredit - dRow[ci]
		if nb < 0 {
			nb = 0
		}
		row[ci] -= ob - nb
	}
}

// naiveBidsOver recomputes Σ_j (credit − d(m, j))_+ over every candidate by
// rescanning a credit history — the reference accounting the incremental
// rows are validated against. Distances are deliberately computed directly
// (not via the distTo cache) so the reference stays an independent oracle.
func (pd *PDOMFLP) naiveBidsOver(credits []pdCredit) []float64 {
	row := make([]float64, len(pd.ct.cands))
	for _, cr := range credits {
		for ci, m := range pd.ct.cands {
			if b := cr.credit - pd.space.Distance(m, cr.point); b > 0 {
				row[ci] += b
			}
		}
	}
	return row
}

// naiveSmallBids is the Constraint (3) reference bid row for commodity e.
func (pd *PDOMFLP) naiveSmallBids(e int) []float64 {
	return pd.naiveBidsOver(pd.creditSmall[e])
}

// naiveLargeBids is the Constraint (4) analogue of naiveSmallBids.
func (pd *PDOMFLP) naiveLargeBids() []float64 {
	return pd.naiveBidsOver(pd.creditLarge)
}

// refreshCreditsForSmall lowers the small-facility credits of commodity e
// after a new facility for e opened at point m, correcting the bid
// accumulators by the exact contribution each lowered credit loses.
// Together with addCreditSmall/addCreditLarge and refreshCreditsForLarge,
// these are the only places bids change.
func (pd *PDOMFLP) refreshCreditsForSmall(e, m int) {
	credits := pd.creditSmall[e]
	for j := range credits {
		d := pd.space.Distance(m, credits[j].point)
		if d >= credits[j].credit {
			continue
		}
		if !pd.naiveBids {
			pd.lowerBid(pd.bidSmall[e], credits[j].point, credits[j].credit, d)
		}
		credits[j].credit = d
	}
}

// refreshCreditsForLarge lowers credits after a large facility opened at
// point m: the facility offers every commodity, so both the large credits
// and every commodity's small credits shrink. (This used to be
// refreshCreditsForPoint(m, large bool); the large=false branch was a dead
// no-op — small openings are handled by refreshCreditsForSmall — so the
// flag is gone.)
func (pd *PDOMFLP) refreshCreditsForLarge(m int) {
	for j := range pd.creditLarge {
		d := pd.space.Distance(m, pd.creditLarge[j].point)
		if d >= pd.creditLarge[j].credit {
			continue
		}
		if !pd.naiveBids {
			pd.lowerBid(pd.bidLarge, pd.creditLarge[j].point, pd.creditLarge[j].credit, d)
		}
		pd.creditLarge[j].credit = d
	}
	for e := range pd.creditSmall {
		pd.refreshCreditsForSmall(e, m)
	}
}

// DualTotal returns Σ_r Σ_{e∈s_r} a_re, the dual objective the analysis
// compares against 3·cost(ALG) (Corollary 8) and γ-scales for feasibility
// (Corollary 17).
func (pd *PDOMFLP) DualTotal() float64 {
	var sum float64
	for _, row := range pd.duals {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// Duals exposes the frozen dual variables: per served request, the demanded
// commodity IDs and the aligned dual values. Callers must not mutate.
func (pd *PDOMFLP) Duals() (demandIDs [][]int, duals [][]float64, points []int) {
	return pd.demandIDs, pd.duals, pd.points
}
