package core

import (
	"math"

	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

// PDOMFLP is the deterministic primal-dual algorithm of Section 3
// (Algorithm 1). On each arriving request it simultaneously raises the dual
// variables a_re of the request's not-yet-served commodities until one of
// four constraints becomes tight:
//
//	(1) a_re = d(F(e), r)            — connect e to an existing facility
//	(2) Σ_e a_re = d(F̂, r)           — connect r to an existing large facility
//	(3) (a_re − d(m,r))_+ + Σ_j bids = f_m^{e} — tentatively open small at m
//	(4) (Σa − d(m,r))_+ + Σ_j bids   = f_m^S   — open a large facility at m
//
// where the bids reinvest earlier requests' frozen duals, capped by their
// distance to the nearest facility already serving them (the min-terms of
// the constraints). Tight (3) opens a temporary small facility; tight (2) or
// (4) serves the whole request with a single large facility and discards the
// temporaries. All raises happen event-driven: every threshold is affine in
// the raise Δ, so the algorithm jumps straight to the earliest event.
type PDOMFLP struct {
	space metric.Space
	costs cost.Model
	u     int
	opts  Options
	fx    *facilityIndex
	ct    *costTable

	// Frozen duals: duals[r][i] aligns with demandIDs[r][i].
	duals     [][]float64
	demandIDs [][]int
	points    []int

	// creditSmall[e] holds, per earlier request demanding e, the bid cap
	// min{a_je, d(F(e), j)} kept current as facilities open.
	creditSmall [][]pdCredit
	// creditLarge holds, per earlier request, min{Σ_e a_je, d(F̂, j)}.
	creditLarge []pdCredit
	// distHistory backs the Lemma 14 analysis extraction (TraceAnalysis).
	distHistory map[int][]analysisRecord
	// facBoundary[i] = number of facilities after arrival i (for ServeLog).
	facBoundary []int
}

type pdCredit struct {
	point  int
	credit float64
}

// NewPDOMFLP constructs the deterministic algorithm.
func NewPDOMFLP(space metric.Space, costs cost.Model, opts Options) *PDOMFLP {
	u := costs.Universe()
	cands := opts.candidates(space)
	if len(cands) == 0 {
		panic("core: PD-OMFLP needs at least one candidate point")
	}
	return &PDOMFLP{
		space:       space,
		costs:       costs,
		u:           u,
		opts:        opts,
		fx:          newFacilityIndex(space, u),
		ct:          buildCostTable(costs, cands),
		creditSmall: make([][]pdCredit, u),
	}
}

// Name implements online.Algorithm.
func (pd *PDOMFLP) Name() string {
	if pd.opts.DisablePrediction {
		return "pd-omflp(no-prediction)"
	}
	return "pd-omflp"
}

// Solution implements online.Algorithm. The returned solution is the
// algorithm's live state; callers must not mutate it.
func (pd *PDOMFLP) Solution() *instance.Solution { return pd.fx.sol }

// PDFactory returns an online.Factory for PD-OMFLP with the given options.
func PDFactory(opts Options) online.Factory {
	name := "pd-omflp"
	if opts.DisablePrediction {
		name = "pd-omflp(no-prediction)"
	}
	return online.Factory{
		Name: name,
		New: func(space metric.Space, costs cost.Model, seed int64) online.Algorithm {
			return NewPDOMFLP(space, costs, opts)
		},
	}
}

// serveState tracks how each demanded commodity of the current request got
// served.
type pdServe struct {
	mode int // 0 = unserved, 1 = existing facility, 2 = temporary small
	fac  int // facility index (mode 1)
	temp int // index into temps (mode 2)
}

type pdTemp struct {
	e, m    int
	removed bool
}

const pdEps = 1e-9

// Serve implements online.Algorithm: Algorithm 1 on arrival of request r.
func (pd *PDOMFLP) Serve(r instance.Request) {
	p := r.Point
	ids := r.Demands.IDs()
	k := len(ids)
	cands := pd.ct.cands

	var analysisSnaps map[int][]float64
	if pd.opts.TraceAnalysis {
		analysisSnaps = pd.snapshotAnalysis(ids)
	}

	// Static per-arrival quantities: distances to nearest facilities and
	// the earlier requests' bid sums toward each candidate point. No real
	// facility opens mid-arrival, so these stay valid for the whole loop.
	dFe := make([]float64, k)
	for i, e := range ids {
		_, dFe[i] = pd.fx.nearestOffering(e, p)
	}
	_, dLarge := pd.fx.nearestLarge(p)

	// bid3[i][ci] = Σ_j (creditSmall[e_i][j] − d(m_ci, j))_+
	bid3 := make([][]float64, k)
	for i, e := range ids {
		row := make([]float64, len(cands))
		for _, cr := range pd.creditSmall[e] {
			for ci, m := range cands {
				if b := cr.credit - pd.space.Distance(m, cr.point); b > 0 {
					row[ci] += b
				}
			}
		}
		bid3[i] = row
	}
	bid4 := make([]float64, len(cands))
	if !pd.opts.DisablePrediction {
		for _, cr := range pd.creditLarge {
			for ci, m := range cands {
				if b := cr.credit - pd.space.Distance(m, cr.point); b > 0 {
					bid4[ci] += b
				}
			}
		}
	}
	dCand := make([]float64, len(cands))
	for ci, m := range cands {
		dCand[ci] = pd.space.Distance(m, p)
	}

	a := make([]float64, k)
	frozen := make([]bool, k)
	serve := make([]pdServe, k)
	var temps []pdTemp
	sumA := 0.0
	unfrozen := k
	largeServed := -1 // facility index once the request is served large

	for unfrozen > 0 {
		// Find the earliest event. All thresholds are affine in the raise
		// Δ: slope 1 for (1)/(3) on a single commodity, slope `unfrozen`
		// for (2)/(4) on the sum.
		delta := math.Inf(1)

		// Constraint (1): a_e + Δ = d(F(e), r).
		for i := range ids {
			if frozen[i] {
				continue
			}
			if d := dFe[i] - a[i]; d < delta {
				delta = d
			}
		}
		// Constraint (3): a_e + Δ = f^{e}_m − bids + d(m, r).
		for i := range ids {
			if frozen[i] {
				continue
			}
			for ci := range cands {
				need := pd.ct.single[ids[i]][ci] - bid3[i][ci] + dCand[ci] - a[i]
				if need < 0 {
					need = 0
				}
				if need < delta {
					delta = need
				}
			}
		}
		if !pd.opts.DisablePrediction {
			// Constraint (2): sumA + unfrozen·Δ = d(F̂, r).
			if dLarge < infinity {
				if d := (dLarge - sumA) / float64(unfrozen); d < delta {
					delta = d
				}
			}
			// Constraint (4): sumA + unfrozen·Δ = f^S_m − bids + d(m, r).
			for ci := range cands {
				need := (pd.ct.full[ci] - bid4[ci] + dCand[ci] - sumA) / float64(unfrozen)
				if need < 0 {
					need = 0
				}
				if need < delta {
					delta = need
				}
			}
		}
		if math.IsInf(delta, 1) {
			panic("core: PD-OMFLP found no tight constraint; no candidate can serve the request")
		}
		if delta < 0 {
			delta = 0
		}

		// Raise all unfrozen duals by delta.
		for i := range ids {
			if !frozen[i] {
				a[i] += delta
			}
		}
		sumA += float64(unfrozen) * delta
		tol := pdEps * (1 + sumA)

		// Lines 3–5: freeze commodities with tight Constraint (1) or (3).
		for i := range ids {
			if frozen[i] {
				continue
			}
			if a[i] >= dFe[i]-tol {
				// Constraint (1): connect to the nearest existing facility.
				fac, _ := pd.fx.nearestOffering(ids[i], p)
				frozen[i] = true
				unfrozen--
				serve[i] = pdServe{mode: 1, fac: fac}
				continue
			}
			bestM := -1
			bestD := math.Inf(1)
			for ci := range cands {
				if a[i]-dCand[ci]+bid3[i][ci] >= pd.ct.single[ids[i]][ci]-tol {
					if dCand[ci] < bestD {
						bestM, bestD = ci, dCand[ci]
					}
				}
			}
			if bestM >= 0 {
				// Constraint (3): temporary small facility at the
				// nearest tight point.
				frozen[i] = true
				unfrozen--
				serve[i] = pdServe{mode: 2, temp: len(temps)}
				temps = append(temps, pdTemp{e: ids[i], m: cands[bestM]})
			}
		}

		if pd.opts.DisablePrediction {
			continue
		}

		// Lines 6–9: Constraint (2) — existing large facility.
		if dLarge < infinity && sumA >= dLarge-tol {
			fac, _ := pd.fx.nearestLarge(p)
			largeServed = fac
			break
		}
		// Constraint (4): open a new large facility at the nearest tight
		// candidate.
		bestM, bestD := -1, math.Inf(1)
		for ci := range cands {
			if sumA-dCand[ci]+bid4[ci] >= pd.ct.full[ci]-tol {
				if dCand[ci] < bestD {
					bestM, bestD = ci, dCand[ci]
				}
			}
		}
		if bestM >= 0 {
			largeServed = pd.fx.openLarge(cands[bestM])
			break
		}
	}

	// Materialize the outcome.
	pd.points = append(pd.points, p)
	pd.demandIDs = append(pd.demandIDs, ids)
	pd.duals = append(pd.duals, a)

	var links []int
	if largeServed >= 0 {
		// Whole request served by one large facility; temporaries vanish.
		links = []int{largeServed}
		newPt := pd.fx.sol.Facilities[largeServed].Point
		pd.refreshCreditsForPoint(newPt, true)
	} else {
		// Open the surviving temporaries and connect each commodity.
		opened := make([]int, len(temps))
		for ti, tmp := range temps {
			opened[ti] = pd.fx.openSmall(tmp.e, tmp.m)
		}
		linkSet := map[int]bool{}
		for i := range ids {
			var fac int
			switch serve[i].mode {
			case 1:
				fac = serve[i].fac
			case 2:
				fac = opened[serve[i].temp]
			default:
				panic("core: PD-OMFLP left a commodity unserved")
			}
			if !linkSet[fac] {
				linkSet[fac] = true
				links = append(links, fac)
			}
		}
		for _, tmp := range temps {
			pd.refreshCreditsForSmall(tmp.e, tmp.m)
		}
	}
	pd.fx.sol.Assign = append(pd.fx.sol.Assign, links)
	pd.facBoundary = append(pd.facBoundary, len(pd.fx.sol.Facilities))

	if pd.opts.TraceAnalysis {
		pd.recordAnalysis(ids, a, p, analysisSnaps)
	}

	// Record this request's own credits against the updated facility sets.
	for i, e := range ids {
		_, d := pd.fx.nearestOffering(e, p)
		pd.creditSmall[e] = append(pd.creditSmall[e], pdCredit{point: p, credit: math.Min(a[i], d)})
	}
	_, dHat := pd.fx.nearestLarge(p)
	pd.creditLarge = append(pd.creditLarge, pdCredit{point: p, credit: math.Min(sumA, dHat)})
}

// refreshCreditsForSmall lowers the small-facility credits of commodity e
// after a new facility for e opened at point m.
func (pd *PDOMFLP) refreshCreditsForSmall(e, m int) {
	for j := range pd.creditSmall[e] {
		if d := pd.space.Distance(m, pd.creditSmall[e][j].point); d < pd.creditSmall[e][j].credit {
			pd.creditSmall[e][j].credit = d
		}
	}
}

// refreshCreditsForPoint lowers credits after a facility opened at point m.
// If large is true the facility offers every commodity, so both the large
// credits and every commodity's small credits shrink.
func (pd *PDOMFLP) refreshCreditsForPoint(m int, large bool) {
	if large {
		for j := range pd.creditLarge {
			if d := pd.space.Distance(m, pd.creditLarge[j].point); d < pd.creditLarge[j].credit {
				pd.creditLarge[j].credit = d
			}
		}
		for e := range pd.creditSmall {
			pd.refreshCreditsForSmall(e, m)
		}
	}
}

// DualTotal returns Σ_r Σ_{e∈s_r} a_re, the dual objective the analysis
// compares against 3·cost(ALG) (Corollary 8) and γ-scales for feasibility
// (Corollary 17).
func (pd *PDOMFLP) DualTotal() float64 {
	var sum float64
	for _, row := range pd.duals {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// Duals exposes the frozen dual variables: per served request, the demanded
// commodity IDs and the aligned dual values. Callers must not mutate.
func (pd *PDOMFLP) Duals() (demandIDs [][]int, duals [][]float64, points []int) {
	return pd.demandIDs, pd.duals, pd.points
}
