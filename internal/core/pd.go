package core

import (
	"math"

	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

// PDOMFLP is the deterministic primal-dual algorithm of Section 3
// (Algorithm 1). On each arriving request it simultaneously raises the dual
// variables a_re of the request's not-yet-served commodities until one of
// four constraints becomes tight:
//
//	(1) a_re = d(F(e), r)            — connect e to an existing facility
//	(2) Σ_e a_re = d(F̂, r)           — connect r to an existing large facility
//	(3) (a_re − d(m,r))_+ + Σ_j bids = f_m^{e} — tentatively open small at m
//	(4) (Σa − d(m,r))_+ + Σ_j bids   = f_m^S   — open a large facility at m
//
// where the bids reinvest earlier requests' frozen duals, capped by their
// distance to the nearest facility already serving them (the min-terms of
// the constraints). Tight (3) opens a temporary small facility; tight (2) or
// (4) serves the whole request with a single large facility and discards the
// temporaries.
//
// All raises happen event-driven: every threshold is affine in the raise Δ
// (slope 1 for (1)/(3), slope `unfrozen` for (2)/(4)), so the algorithm
// jumps straight to the earliest event. Serve exploits that d(F(e), r), the
// bid sums and the candidate costs are all static for the duration of one
// arrival's event loop — no real facility opens and no credit changes until
// the loop ends — by collapsing each candidate scan into one per-arrival
// threshold: T3[i] = min_m(f_m^{e_i} − bids + d(m, r)) per demanded
// commodity and the Constraint (4) analogue T4. Each event then costs O(k)
// over four scalars per commodity instead of O(k·|cands|); the full
// candidate scan runs only once per commodity at freeze time, to resolve
// the nearest-tight-candidate tie-break with the exact pre-refactor
// predicate (see tightSmall). serveReference keeps the original
// rescan-every-event loop as the differential oracle.
type PDOMFLP struct {
	space metric.Space //omflp:nostate — constructor parameter; the restore contract requires an identically constructed instance
	costs cost.Model   //omflp:nostate — constructor parameter, ditto
	u     int
	opts  Options
	fx    *facilityIndex
	ct    *costTable

	// Frozen duals: duals[r][i] aligns with demandIDs[r][i].
	duals     [][]float64
	demandIDs [][]int
	points    []int

	// creditSmall[e] holds, per earlier request demanding e, the bid cap
	// min{a_je, d(F(e), j)} kept current as facilities open.
	creditSmall [][]pdCredit
	// creditLarge holds, per earlier request, min{Σ_e a_je, d(F̂, j)}.
	creditLarge []pdCredit
	// liveSmall lists the commodities with at least one recorded credit, in
	// first-credit order, so the refresh after a large opening touches only
	// live rows instead of sweeping all u of them. Derived state: rebuilt
	// (in ascending order — rows are independent, so order is irrelevant)
	// on UnmarshalState, never serialized.
	liveSmall []int

	// bidSmall[e][ci] = Σ_j (creditSmall[e][j].credit − d(m_ci, j.point))_+,
	// the Constraint (3) bid sum toward candidate ci, maintained
	// incrementally: contributions are added when a credit is recorded and
	// corrected when a credit is lowered, so Serve reads them in O(1) per
	// (commodity, candidate) instead of rescanning the request history.
	// A row is nil until the first credit for its commodity arrives.
	bidSmall [][]float64
	// bidLarge[ci] is the Constraint (4) analogue over creditLarge.
	bidLarge []float64
	// zeroBids is the shared all-zero row read for commodities that have no
	// credits yet. Callers never mutate bid rows mid-arrival, so sharing is
	// safe.
	zeroBids []float64 //omflp:nostate — shared all-zero constant, never mutated
	// naiveBids switches Serve to recomputing the bid sums from the full
	// credit history on every arrival — the original O(history×candidates)
	// accounting, kept as the reference implementation for differential
	// tests and benchmarks (see NewPDReference).
	naiveBids bool
	// refLoop routes Serve through serveReference, the pre-refactor event
	// loop that rescans every candidate on every event and sweeps credits
	// unconditionally. NewPDReference and NewPDLoopReference set it; the
	// differential tests pin the event-driven loop against it.
	refLoop bool //omflp:nostate — construction-time mode flag, not serving state
	// scratch holds the per-arrival working buffers of the event-driven
	// serve path, reused across arrivals so the hot path allocates only
	// what it retains (the dual row and the assignment links). Pure
	// scratch: excluded from MarshalState, never read across arrivals.
	scratch pdScratch //omflp:nostate — per-arrival scratch, never read across arrivals
	// thr caches the event loop's threshold minima (t3/m3, t4/m4) per
	// (bid row, point), maintained incrementally as bids change instead of
	// rescanning every candidate each arrival; see pdThrCache. Derived
	// state: built lazily by serveEvent, dropped on UnmarshalState, nil on
	// reference instances.
	thr *pdThrCache //omflp:nostate — derived cache, rebuilt lazily from the bid rows
	// distHistory backs the Lemma 14 analysis extraction (TraceAnalysis).
	distHistory map[int][]analysisRecord //omflp:nostate — diagnostic only; MarshalState refuses TraceAnalysis instances
	// facBoundary[i] = number of facilities after arrival i (for ServeLog).
	facBoundary []int
}

type pdCredit struct {
	point  int
	credit float64
}

// pdScratch is the reusable per-arrival working set of the event-driven
// serve path; see PDOMFLP.scratch.
type pdScratch struct {
	dFe    []float64 // d(F(e_i), r) per demanded commodity
	a      []float64 // duals being raised (copied out once frozen)
	t3     []float64 // T3[i]: min Constraint (3) threshold per commodity
	m3     []float64 // magnitude bound for t3's rounding-safety margin
	frozen []bool
	serve  []pdServe
	bid3   [][]float64 // per-commodity bid-row views (aliases, not owned)
	temps  []pdTemp
	opened []int
	links  []int
}

// reset readies the scratch for an arrival with k demanded commodities. The
// fixed-size rows are grown as needed and zeroed; append-driven buffers are
// truncated in place, keeping their capacity.
func (s *pdScratch) reset(k int) {
	if cap(s.dFe) < k {
		s.dFe = make([]float64, k)
		s.a = make([]float64, k)
		s.t3 = make([]float64, k)
		s.m3 = make([]float64, k)
		s.frozen = make([]bool, k)
		s.serve = make([]pdServe, k)
		s.bid3 = make([][]float64, k)
	}
	s.dFe = s.dFe[:k]
	s.a = s.a[:k]
	s.t3 = s.t3[:k]
	s.m3 = s.m3[:k]
	s.frozen = s.frozen[:k]
	s.serve = s.serve[:k]
	s.bid3 = s.bid3[:k]
	for i := 0; i < k; i++ {
		s.a[i] = 0
		s.frozen[i] = false
		s.serve[i] = pdServe{}
	}
	s.temps = s.temps[:0]
	s.opened = s.opened[:0]
	s.links = s.links[:0]
}

// NewPDOMFLP constructs the deterministic algorithm.
func NewPDOMFLP(space metric.Space, costs cost.Model, opts Options) *PDOMFLP {
	u := costs.Universe()
	cands := opts.candidates(space)
	if len(cands) == 0 {
		panic("core: PD-OMFLP needs at least one candidate point")
	}
	return &PDOMFLP{
		space:       space,
		costs:       costs,
		u:           u,
		opts:        opts,
		fx:          newFacilityIndex(space, u),
		ct:          buildCostTable(space, costs, cands),
		creditSmall: make([][]pdCredit, u),
		bidSmall:    make([][]float64, u),
		bidLarge:    make([]float64, len(cands)),
		zeroBids:    make([]float64, len(cands)),
	}
}

// NewPDReference constructs PD-OMFLP with the original per-arrival
// recomputation of the bid sums from the full credit history instead of the
// incremental accumulators, running the pre-refactor candidate-rescanning
// event loop. It is semantically identical to NewPDOMFLP but pays
// O(history × candidates) per arrival; it exists so benchmarks can
// quantify — and differential tests validate — both the incremental
// accounting and the event-driven loop.
func NewPDReference(space metric.Space, costs cost.Model, opts Options) *PDOMFLP {
	pd := NewPDOMFLP(space, costs, opts)
	pd.naiveBids = true
	pd.refLoop = true
	return pd
}

// NewPDLoopReference constructs PD-OMFLP with the incremental bid
// accumulators but the pre-refactor event loop that rescans all candidates
// on every raise event and sweeps every credit row after every large serve —
// the exact serve path before the event-driven refactor. It pins the
// refactor in differential tests (same freeze order, byte-identical
// solutions) and is the "incremental" baseline the perf experiment and the
// CI benchmark-regression gate measure the event-driven loop against.
func NewPDLoopReference(space metric.Space, costs cost.Model, opts Options) *PDOMFLP {
	pd := NewPDOMFLP(space, costs, opts)
	pd.refLoop = true
	return pd
}

// Name implements online.Algorithm.
func (pd *PDOMFLP) Name() string {
	if pd.opts.DisablePrediction {
		return "pd-omflp(no-prediction)"
	}
	return "pd-omflp"
}

// Solution implements online.Algorithm. The returned solution is the
// algorithm's live state; callers must not mutate it.
func (pd *PDOMFLP) Solution() *instance.Solution { return pd.fx.sol }

// PDFactory returns an online.Factory for PD-OMFLP with the given options.
func PDFactory(opts Options) online.Factory {
	name := "pd-omflp"
	if opts.DisablePrediction {
		name = "pd-omflp(no-prediction)"
	}
	return online.Factory{
		Name: name,
		New: func(space metric.Space, costs cost.Model, seed int64) online.Algorithm {
			return NewPDOMFLP(space, costs, opts)
		},
	}
}

// serveState tracks how each demanded commodity of the current request got
// served.
type pdServe struct {
	mode int // 0 = unserved, 1 = existing facility, 2 = temporary small
	fac  int // facility index (mode 1)
	temp int // index into temps (mode 2)
}

type pdTemp struct {
	e, m int
	ci   int // candidate index of m (event-driven path; unset in reference)
}

const pdEps = 1e-9

// pdMarginEps bounds, relative to the involved magnitudes, the disagreement
// between the scalar threshold comparison a ≥ T3 − tol and the pre-refactor
// per-candidate predicate a − d(m,r) + bids ≥ f_m − tol. The two are equal
// in real arithmetic but associate differently, so each may round a few ulps
// (≈ 2⁻⁵²) apart; 1e-12 is ~4500 ulps of slack — vastly conservative, yet
// small enough that the exact scan still runs only when a commodity is
// within a hair of freezing. The scalar form is therefore only ever a
// prefilter: whenever it says "possibly tight", the original scan decides,
// so freeze decisions are byte-identical to the reference loop.
const pdMarginEps = 1e-12

// Serve implements online.Algorithm: Algorithm 1 on arrival of request r.
// Naive-bids instances always take the reference loop: the event-driven
// path reads the incremental accumulators, which naive mode does not
// maintain.
func (pd *PDOMFLP) Serve(r instance.Request) {
	if pd.refLoop || pd.naiveBids {
		pd.serveReference(r)
	} else {
		pd.serveEvent(r)
	}
	if invariantsEnabled {
		pd.assertInvariants()
	}
}

// serveEvent is the event-driven serve path: per-arrival threshold
// precomputation, a scalar event loop, and the zero-allocation scratch. It
// produces byte-identical facilities, assignments, duals and credits to
// serveReference.
func (pd *PDOMFLP) serveEvent(r instance.Request) {
	p := r.Point
	ids := r.Demands.IDs()
	k := len(ids)
	cands := pd.ct.cands

	var analysisSnaps map[int][]float64
	if pd.opts.TraceAnalysis {
		analysisSnaps = pd.snapshotAnalysis(ids)
	}

	s := &pd.scratch
	s.reset(k)

	// Static per-arrival quantities: distances to nearest facilities and
	// the earlier requests' bid sums toward each candidate point. No real
	// facility opens and no credit changes mid-arrival, so these stay valid
	// for the whole event loop.
	dFe := s.dFe
	for i, e := range ids {
		_, dFe[i] = pd.fx.nearestOffering(e, p)
	}
	_, dLarge := pd.fx.nearestLarge(p)

	// The incremental accumulators hold exactly the bid sums the
	// constraints need; credits only change after the event loop, so
	// aliasing the live rows is safe. (Naive-bids instances never reach
	// this path — Serve routes them through serveReference.)
	bid3 := s.bid3
	for i, e := range ids {
		if row := pd.bidSmall[e]; row != nil {
			bid3[i] = row
		} else {
			bid3[i] = pd.zeroBids
		}
	}
	bid4 := pd.bidLarge
	dCand := pd.ct.distTo(p)

	// Hoisted candidate thresholds — incrementally maintained across
	// arrivals by pd.thr (ROADMAP item 5a): each query folds only the
	// candidates whose bids changed since this (row, point) pair was last
	// computed, falling back to the full pdScanThresholds oracle scan when
	// stale. t3[i] keeps the exact association order of the reference
	// delta expression (single − bids + dCand), so t3[i] − a is
	// bit-identical to the reference's per-candidate minimum (rounding is
	// monotone; see pdThrCache for why the fold is byte-exact too).
	// m3[i]/m4 bound the magnitudes feeding the pdMarginEps safety margin
	// of the freeze prefilter.
	if pd.thr == nil {
		pd.thr = newPDThrCache(pd.u, pd.space.Len())
	}
	t3, m3 := s.t3, s.m3
	for i, e := range ids {
		t3[i], m3[i] = pd.thr.small[e].query(pd.ct.single[e], bid3[i], dCand, p, pd.thr.nPts)
	}
	t4, m4 := math.Inf(1), 0.0
	if !pd.opts.DisablePrediction {
		t4, m4 = pd.thr.large.query(pd.ct.full, bid4, dCand, p, pd.thr.nPts)
	}
	if invariantsEnabled {
		// Differential oracle: every cached threshold must be bit-equal to
		// the full per-arrival scan it replaces.
		for i, e := range ids {
			t, m := pdScanThresholds(pd.ct.single[e], bid3[i], dCand)
			if t != t3[i] || m != m3[i] { //omflp:floatexact — cache contract is bit-equality with the oracle scan
				panic("core: PD-OMFLP threshold cache diverged from the oracle scan (t3/m3)")
			}
		}
		if !pd.opts.DisablePrediction {
			t, m := pdScanThresholds(pd.ct.full, bid4, dCand)
			if t != t4 || m != m4 { //omflp:floatexact — cache contract is bit-equality with the oracle scan
				panic("core: PD-OMFLP threshold cache diverged from the oracle scan (t4/m4)")
			}
		}
	}

	a := s.a
	frozen := s.frozen
	serve := s.serve
	temps := s.temps
	sumA := 0.0
	unfrozen := k
	largeServed := -1 // facility index once the request is served large
	largeCi := -1     // candidate index when Constraint (4) opened it

	for unfrozen > 0 {
		unfrozenBefore := unfrozen
		// Find the earliest event over four scalars per commodity: slope-1
		// thresholds dFe[i] and t3[i], slope-`unfrozen` thresholds dLarge
		// and t4 on the sum.
		delta := math.Inf(1)
		for i := range a {
			if frozen[i] {
				continue
			}
			if d := dFe[i] - a[i]; d < delta {
				delta = d
			}
			need := t3[i] - a[i]
			if need < 0 {
				need = 0
			}
			if need < delta {
				delta = need
			}
		}
		if !pd.opts.DisablePrediction {
			if dLarge < infinity {
				if d := (dLarge - sumA) / float64(unfrozen); d < delta {
					delta = d
				}
			}
			need := (t4 - sumA) / float64(unfrozen)
			if need < 0 {
				need = 0
			}
			if need < delta {
				delta = need
			}
		}
		if math.IsInf(delta, 1) {
			panic("core: PD-OMFLP found no tight constraint; no candidate can serve the request")
		}
		if delta < 0 {
			delta = 0
		}

		// Raise all unfrozen duals by delta.
		for i := range a {
			if !frozen[i] {
				a[i] += delta
			}
		}
		sumA += float64(unfrozen) * delta
		tol := pdEps * (1 + sumA)

		// Lines 3–5: freeze commodities with tight Constraint (1) or (3).
		// The t3 comparison is only a prefilter (with the pdMarginEps
		// rounding margin): tightSmall re-evaluates the exact pre-refactor
		// predicate and picks the same facility it would have.
		for i := range a {
			if frozen[i] {
				continue
			}
			if a[i] >= dFe[i]-tol {
				// Constraint (1): connect to the nearest existing facility.
				fac, _ := pd.fx.nearestOffering(ids[i], p)
				frozen[i] = true
				unfrozen--
				serve[i] = pdServe{mode: 1, fac: fac}
				continue
			}
			if a[i]+pdMarginEps*(m3[i]+a[i]+tol) < t3[i]-tol {
				continue // no candidate can be tight yet
			}
			if bestM := pd.tightSmall(ids[i], a[i], bid3[i], dCand, tol); bestM >= 0 {
				// Constraint (3): temporary small facility at the
				// nearest tight point.
				frozen[i] = true
				unfrozen--
				serve[i] = pdServe{mode: 2, temp: len(temps)}
				temps = append(temps, pdTemp{e: ids[i], m: cands[bestM], ci: bestM})
			}
		}

		if !pd.opts.DisablePrediction {
			// Lines 6–9: Constraint (2) — existing large facility.
			if dLarge < infinity && sumA >= dLarge-tol {
				fac, _ := pd.fx.nearestLarge(p)
				largeServed = fac
				break
			}
			// Constraint (4): open a new large facility at the nearest
			// tight candidate. Scalar prefilter, exact scan on the rare
			// near-tight event — a spurious scan finds nothing and
			// continues, exactly like the reference.
			if sumA+pdMarginEps*(m4+sumA+tol) >= t4-tol {
				if bestM := pd.tightLarge(sumA, bid4, dCand, tol); bestM >= 0 {
					largeServed = pd.fx.openLarge(cands[bestM])
					largeCi = bestM
					break
				}
			}
		}

		// Progress guard. A delta=0 iteration that froze nothing and served
		// nothing leaves the state bit-identical, so the next iteration
		// would repeat forever — reachable only when cost/bid magnitudes
		// are so extreme (≈ tol/ulp ≳ 4.5e6·(1+sumA)) that the clamped
		// threshold arithmetic and the exact tol-window predicates disagree
		// by more than tol. The pre-refactor loop hangs silently in that
		// state; fail loudly instead of wedging a serving shard.
		if delta == 0 && unfrozen == unfrozenBefore { //omflp:floatexact — delta is clamped to literal 0 above; this detects that exact case
			panic("core: PD-OMFLP event loop stalled on a zero-delta event (cost magnitudes exceed the pdEps tolerance's precision); rescale the cost model")
		}
	}

	// Materialize the outcome. Only the retained rows allocate: the frozen
	// dual row and the assignment links.
	pd.points = append(pd.points, p)
	pd.demandIDs = append(pd.demandIDs, ids)
	aRow := make([]float64, k)
	copy(aRow, a)
	pd.duals = append(pd.duals, aRow)

	var links []int
	if largeServed >= 0 {
		// Whole request served by one large facility; temporaries vanish.
		links = []int{largeServed}
		if largeCi >= 0 {
			// Constraint (4): a genuinely new facility — sweep the credits.
			pd.refreshLargeAt(largeCi)
		}
		// Constraint (2) needs no sweep: every credit is recorded as
		// min{dual, d(F, ·)} against the then-open facilities and only ever
		// lowered when a new facility opens, so a credit is invariantly ≤
		// its distance to every already-open facility — the pre-refactor
		// sweep against an existing facility was a provable no-op (the
		// reference loop still runs it; differential tests pin the
		// equality).
	} else {
		// Open the surviving temporaries and connect each commodity.
		opened := s.opened
		for _, tmp := range temps {
			opened = append(opened, pd.fx.openSmall(tmp.e, tmp.m))
		}
		linkBuf := s.links
		for i := range ids {
			var fac int
			switch serve[i].mode {
			case 1:
				fac = serve[i].fac
			case 2:
				fac = opened[serve[i].temp]
			default:
				panic("core: PD-OMFLP left a commodity unserved")
			}
			dup := false
			for _, l := range linkBuf {
				if l == fac {
					dup = true
					break
				}
			}
			if !dup {
				linkBuf = append(linkBuf, fac)
			}
		}
		if len(linkBuf) > 0 {
			links = make([]int, len(linkBuf))
			copy(links, linkBuf)
		}
		for _, tmp := range temps {
			pd.refreshSmallAt(tmp.e, tmp.ci)
		}
		s.opened, s.links = opened[:0], linkBuf[:0]
	}
	pd.fx.sol.Assign = append(pd.fx.sol.Assign, links)
	pd.facBoundary = append(pd.facBoundary, len(pd.fx.sol.Facilities))
	s.temps = temps[:0]

	if pd.opts.TraceAnalysis {
		pd.recordAnalysis(ids, aRow, p, analysisSnaps)
	}

	// Record this request's own credits against the updated facility sets.
	for i, e := range ids {
		_, d := pd.fx.nearestOffering(e, p)
		pd.addCreditSmall(e, p, math.Min(a[i], d))
	}
	_, dHat := pd.fx.nearestLarge(p)
	pd.addCreditLarge(p, math.Min(sumA, dHat))
}

// tightSmall is the pre-refactor Constraint (3) candidate scan, verbatim:
// among the candidates inside the tol window it returns the nearest one
// (ties to the lowest index), or -1 when none is tight. Running it only at
// freeze time — once per commodity per arrival — instead of on every event
// is what the t3 thresholds buy.
func (pd *PDOMFLP) tightSmall(e int, a float64, bids, dCand []float64, tol float64) int {
	single := pd.ct.single[e]
	bestM, bestD := -1, math.Inf(1)
	for ci := range dCand {
		if a-dCand[ci]+bids[ci] >= single[ci]-tol {
			if dCand[ci] < bestD {
				bestM, bestD = ci, dCand[ci]
			}
		}
	}
	return bestM
}

// tightLarge is the Constraint (4) analogue of tightSmall.
func (pd *PDOMFLP) tightLarge(sumA float64, bids, dCand []float64, tol float64) int {
	full := pd.ct.full
	bestM, bestD := -1, math.Inf(1)
	for ci := range dCand {
		if sumA-dCand[ci]+bids[ci] >= full[ci]-tol {
			if dCand[ci] < bestD {
				bestM, bestD = ci, dCand[ci]
			}
		}
	}
	return bestM
}

// serveReference is the pre-refactor serve path, kept verbatim as the
// differential oracle for the event-driven loop: it rescans all four
// constraint families over every candidate on every raise event, allocates
// its working set per arrival, and sweeps the credit ledgers even when the
// request was served by an already-open large facility.
func (pd *PDOMFLP) serveReference(r instance.Request) {
	p := r.Point
	ids := r.Demands.IDs()
	k := len(ids)
	cands := pd.ct.cands

	var analysisSnaps map[int][]float64
	if pd.opts.TraceAnalysis {
		analysisSnaps = pd.snapshotAnalysis(ids)
	}

	dFe := make([]float64, k)
	for i, e := range ids {
		_, dFe[i] = pd.fx.nearestOffering(e, p)
	}
	_, dLarge := pd.fx.nearestLarge(p)

	bid3 := make([][]float64, k)
	var bid4 []float64
	if pd.naiveBids {
		for i, e := range ids {
			bid3[i] = pd.naiveSmallBids(e)
		}
		if pd.opts.DisablePrediction {
			bid4 = pd.zeroBids // never read; constraints (2)/(4) are skipped
		} else {
			bid4 = pd.naiveLargeBids()
		}
	} else {
		for i, e := range ids {
			if row := pd.bidSmall[e]; row != nil {
				bid3[i] = row
			} else {
				bid3[i] = pd.zeroBids
			}
		}
		bid4 = pd.bidLarge
	}
	dCand := pd.ct.distTo(p)

	a := make([]float64, k)
	frozen := make([]bool, k)
	serve := make([]pdServe, k)
	var temps []pdTemp
	sumA := 0.0
	unfrozen := k
	largeServed := -1 // facility index once the request is served large

	for unfrozen > 0 {
		// Find the earliest event. All thresholds are affine in the raise
		// Δ: slope 1 for (1)/(3) on a single commodity, slope `unfrozen`
		// for (2)/(4) on the sum.
		delta := math.Inf(1)

		// Constraint (1): a_e + Δ = d(F(e), r).
		for i := range ids {
			if frozen[i] {
				continue
			}
			if d := dFe[i] - a[i]; d < delta {
				delta = d
			}
		}
		// Constraint (3): a_e + Δ = f^{e}_m − bids + d(m, r).
		for i := range ids {
			if frozen[i] {
				continue
			}
			for ci := range cands {
				need := pd.ct.single[ids[i]][ci] - bid3[i][ci] + dCand[ci] - a[i]
				if need < 0 {
					need = 0
				}
				if need < delta {
					delta = need
				}
			}
		}
		if !pd.opts.DisablePrediction {
			// Constraint (2): sumA + unfrozen·Δ = d(F̂, r).
			if dLarge < infinity {
				if d := (dLarge - sumA) / float64(unfrozen); d < delta {
					delta = d
				}
			}
			// Constraint (4): sumA + unfrozen·Δ = f^S_m − bids + d(m, r).
			for ci := range cands {
				need := (pd.ct.full[ci] - bid4[ci] + dCand[ci] - sumA) / float64(unfrozen)
				if need < 0 {
					need = 0
				}
				if need < delta {
					delta = need
				}
			}
		}
		if math.IsInf(delta, 1) {
			panic("core: PD-OMFLP found no tight constraint; no candidate can serve the request")
		}
		if delta < 0 {
			delta = 0
		}

		// Raise all unfrozen duals by delta.
		for i := range ids {
			if !frozen[i] {
				a[i] += delta
			}
		}
		sumA += float64(unfrozen) * delta
		tol := pdEps * (1 + sumA)

		// Lines 3–5: freeze commodities with tight Constraint (1) or (3).
		for i := range ids {
			if frozen[i] {
				continue
			}
			if a[i] >= dFe[i]-tol {
				// Constraint (1): connect to the nearest existing facility.
				fac, _ := pd.fx.nearestOffering(ids[i], p)
				frozen[i] = true
				unfrozen--
				serve[i] = pdServe{mode: 1, fac: fac}
				continue
			}
			bestM := -1
			bestD := math.Inf(1)
			for ci := range cands {
				if a[i]-dCand[ci]+bid3[i][ci] >= pd.ct.single[ids[i]][ci]-tol {
					if dCand[ci] < bestD {
						bestM, bestD = ci, dCand[ci]
					}
				}
			}
			if bestM >= 0 {
				// Constraint (3): temporary small facility at the
				// nearest tight point.
				frozen[i] = true
				unfrozen--
				serve[i] = pdServe{mode: 2, temp: len(temps)}
				temps = append(temps, pdTemp{e: ids[i], m: cands[bestM]})
			}
		}

		if pd.opts.DisablePrediction {
			continue
		}

		// Lines 6–9: Constraint (2) — existing large facility.
		if dLarge < infinity && sumA >= dLarge-tol {
			fac, _ := pd.fx.nearestLarge(p)
			largeServed = fac
			break
		}
		// Constraint (4): open a new large facility at the nearest tight
		// candidate.
		bestM, bestD := -1, math.Inf(1)
		for ci := range cands {
			if sumA-dCand[ci]+bid4[ci] >= pd.ct.full[ci]-tol {
				if dCand[ci] < bestD {
					bestM, bestD = ci, dCand[ci]
				}
			}
		}
		if bestM >= 0 {
			largeServed = pd.fx.openLarge(cands[bestM])
			break
		}
	}

	// Materialize the outcome.
	pd.points = append(pd.points, p)
	pd.demandIDs = append(pd.demandIDs, ids)
	pd.duals = append(pd.duals, a)

	var links []int
	if largeServed >= 0 {
		// Whole request served by one large facility; temporaries vanish.
		links = []int{largeServed}
		newPt := pd.fx.sol.Facilities[largeServed].Point
		pd.refreshCreditsForLarge(newPt)
	} else {
		// Open the surviving temporaries and connect each commodity.
		opened := make([]int, len(temps))
		for ti, tmp := range temps {
			opened[ti] = pd.fx.openSmall(tmp.e, tmp.m)
		}
		linkSet := map[int]bool{}
		for i := range ids {
			var fac int
			switch serve[i].mode {
			case 1:
				fac = serve[i].fac
			case 2:
				fac = opened[serve[i].temp]
			default:
				panic("core: PD-OMFLP left a commodity unserved")
			}
			if !linkSet[fac] {
				linkSet[fac] = true
				links = append(links, fac)
			}
		}
		for _, tmp := range temps {
			pd.refreshCreditsForSmall(tmp.e, tmp.m)
		}
	}
	pd.fx.sol.Assign = append(pd.fx.sol.Assign, links)
	pd.facBoundary = append(pd.facBoundary, len(pd.fx.sol.Facilities))

	if pd.opts.TraceAnalysis {
		pd.recordAnalysis(ids, a, p, analysisSnaps)
	}

	// Record this request's own credits against the updated facility sets.
	for i, e := range ids {
		_, d := pd.fx.nearestOffering(e, p)
		pd.addCreditSmall(e, p, math.Min(a[i], d))
	}
	_, dHat := pd.fx.nearestLarge(p)
	pd.addCreditLarge(p, math.Min(sumA, dHat))
}

// addBid folds one credit's contribution (credit − d(m_ci, p))_+ into a bid
// row; the single place the bid formula is written for accumulation. When
// the threshold cache is active, thr records each candidate whose bid
// actually moved (bids only rise here, so cached minima stay foldable);
// reference instances pass nil.
func (pd *PDOMFLP) addBid(row []float64, p int, credit float64, thr *pdThrRow) {
	dRow := pd.ct.distTo(p)
	for ci := range row {
		if b := credit - dRow[ci]; b > 0 {
			row[ci] += b
			if thr != nil {
				thr.note(ci, len(row))
			}
		}
	}
}

// addCreditSmall records a new small-facility credit for commodity e and
// folds its contribution into the per-candidate bid accumulators.
func (pd *PDOMFLP) addCreditSmall(e, p int, credit float64) {
	if len(pd.creditSmall[e]) == 0 {
		pd.liveSmall = append(pd.liveSmall, e)
	}
	pd.creditSmall[e] = append(pd.creditSmall[e], pdCredit{point: p, credit: credit})
	if pd.naiveBids {
		return
	}
	row := pd.bidSmall[e]
	if row == nil {
		row = make([]float64, len(pd.ct.cands))
		pd.bidSmall[e] = row
	}
	pd.addBid(row, p, credit, pd.thrSmallLog(e))
}

// addCreditLarge records a new large-facility credit and folds its
// contribution into the Constraint (4) accumulators.
func (pd *PDOMFLP) addCreditLarge(p int, credit float64) {
	pd.creditLarge = append(pd.creditLarge, pdCredit{point: p, credit: credit})
	if pd.naiveBids {
		return
	}
	pd.addBid(pd.bidLarge, p, credit, pd.thrLargeLog())
}

// lowerBid subtracts from row the contribution change of a credit at point p
// lowered from oldCredit to newCredit (oldCredit > newCredit ≥ 0).
func (pd *PDOMFLP) lowerBid(row []float64, p int, oldCredit, newCredit float64) {
	dRow := pd.ct.distTo(p)
	for ci := range row {
		ob := oldCredit - dRow[ci]
		if ob <= 0 {
			continue
		}
		nb := newCredit - dRow[ci]
		if nb < 0 {
			nb = 0
		}
		row[ci] -= ob - nb
	}
}

// naiveBidsOver recomputes Σ_j (credit − d(m, j))_+ over every candidate by
// rescanning a credit history — the reference accounting the incremental
// rows are validated against. Distances are deliberately computed directly
// (not via the distTo cache) so the reference stays an independent oracle.
func (pd *PDOMFLP) naiveBidsOver(credits []pdCredit) []float64 {
	row := make([]float64, len(pd.ct.cands))
	for _, cr := range credits {
		for ci, m := range pd.ct.cands {
			if b := cr.credit - pd.space.Distance(m, cr.point); b > 0 {
				row[ci] += b
			}
		}
	}
	return row
}

// naiveSmallBids is the Constraint (3) reference bid row for commodity e.
func (pd *PDOMFLP) naiveSmallBids(e int) []float64 {
	return pd.naiveBidsOver(pd.creditSmall[e])
}

// naiveLargeBids is the Constraint (4) analogue of naiveSmallBids.
func (pd *PDOMFLP) naiveLargeBids() []float64 {
	return pd.naiveBidsOver(pd.creditLarge)
}

// refreshSmallAt lowers the small-facility credits of commodity e after a
// new facility for e opened at candidate index ci — the event-driven
// counterpart of refreshCreditsForSmall. It reads the (candidate, point)
// distances through the costTable rows, which cache exactly
// Distance(cands[ci], point), so every distance in the sweep is computed at
// most once over the whole run instead of once per sweep; values are
// byte-identical to the reference's direct calls.
func (pd *PDOMFLP) refreshSmallAt(e, ci int) {
	credits := pd.creditSmall[e]
	lowered := false
	for j := range credits {
		d := pd.ct.distTo(credits[j].point)[ci]
		if d >= credits[j].credit {
			continue
		}
		// Event-path only, so the incremental rows are always maintained.
		pd.lowerBid(pd.bidSmall[e], credits[j].point, credits[j].credit, d)
		credits[j].credit = d
		lowered = true
	}
	if lowered {
		// Lowered bids can raise thresholds, which the monotone fold cannot
		// track: stale the cached minima for this row.
		if r := pd.thrSmallLog(e); r != nil {
			r.invalidate()
		}
	}
}

// refreshLargeAt lowers credits after a new large facility opened at
// candidate index ci: the facility offers every commodity, so both the
// large credits and every live commodity's small credits shrink. Iterating
// liveSmall instead of all u rows skips commodities that never recorded a
// credit (rows are independent, so the order difference vs the reference's
// ascending sweep cannot change any value).
func (pd *PDOMFLP) refreshLargeAt(ci int) {
	lowered := false
	for j := range pd.creditLarge {
		d := pd.ct.distTo(pd.creditLarge[j].point)[ci]
		if d >= pd.creditLarge[j].credit {
			continue
		}
		pd.lowerBid(pd.bidLarge, pd.creditLarge[j].point, pd.creditLarge[j].credit, d)
		pd.creditLarge[j].credit = d
		lowered = true
	}
	if lowered {
		if r := pd.thrLargeLog(); r != nil {
			r.invalidate()
		}
	}
	for _, e := range pd.liveSmall {
		pd.refreshSmallAt(e, ci)
	}
}

// refreshCreditsForSmall lowers the small-facility credits of commodity e
// after a new facility for e opened at point m, correcting the bid
// accumulators by the exact contribution each lowered credit loses.
// Pre-refactor implementation, used by serveReference only; the event path
// uses refreshSmallAt.
func (pd *PDOMFLP) refreshCreditsForSmall(e, m int) {
	credits := pd.creditSmall[e]
	for j := range credits {
		d := pd.space.Distance(m, credits[j].point)
		if d >= credits[j].credit {
			continue
		}
		if !pd.naiveBids {
			pd.lowerBid(pd.bidSmall[e], credits[j].point, credits[j].credit, d)
		}
		credits[j].credit = d
	}
}

// refreshCreditsForLarge lowers credits after a large facility opened at
// point m: the facility offers every commodity, so both the large credits
// and every commodity's small credits shrink. Pre-refactor implementation,
// used by serveReference only (which also calls it — harmlessly, as a
// provable no-op — when the request connected to an already-open large
// facility); the event path uses refreshLargeAt.
func (pd *PDOMFLP) refreshCreditsForLarge(m int) {
	for j := range pd.creditLarge {
		d := pd.space.Distance(m, pd.creditLarge[j].point)
		if d >= pd.creditLarge[j].credit {
			continue
		}
		if !pd.naiveBids {
			pd.lowerBid(pd.bidLarge, pd.creditLarge[j].point, pd.creditLarge[j].credit, d)
		}
		pd.creditLarge[j].credit = d
	}
	for e := range pd.creditSmall {
		pd.refreshCreditsForSmall(e, m)
	}
}

// DualTotal returns Σ_r Σ_{e∈s_r} a_re, the dual objective the analysis
// compares against 3·cost(ALG) (Corollary 8) and γ-scales for feasibility
// (Corollary 17).
func (pd *PDOMFLP) DualTotal() float64 {
	var sum float64
	for _, row := range pd.duals {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// Duals exposes the frozen dual variables: per served request, the demanded
// commodity IDs and the aligned dual values. Callers must not mutate.
func (pd *PDOMFLP) Duals() (demandIDs [][]int, duals [][]float64, points []int) {
	return pd.demandIDs, pd.duals, pd.points
}
