package core

import (
	"math"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/ofl"
	"repro/internal/online"
)

// HeavyAware implements the extension sketched in the paper's closing
// remarks (Section 5): when a few "heavy" commodities would break
// Condition 1 — adding them to a configuration disproportionately raises
// construction cost — run the main algorithm on the light commodities only
// (large facilities offer all light commodities) and serve each heavy
// commodity with its own single-commodity online facility location instance.
//
// Heaviness test: commodity e is heavy at threshold θ if its singleton cost
// exceeds θ times the average per-commodity cost of the full configuration,
// averaged over candidate points: f^{e} > θ·f^S/|S|.
type HeavyAware struct {
	u      int
	space  metric.Space //omflp:nostate — constructor parameter
	light  []int        //omflp:nostate — light commodity IDs; the split is a pure function of the constructor parameters
	heavy  []int        // heavy commodity IDs
	inner  *PDOMFLP
	heavyA map[int]*ofl.FotakisPD // per heavy commodity

	lightMap  map[int]int   //omflp:nostate — global commodity ID -> inner ID, derived from the split
	lightMask commodity.Set //omflp:nostate — derived from the split

	sol *instance.Solution
	// Bookkeeping to translate inner solutions into the global one.
	innerToGlobal []int          // inner facility index -> global facility index
	heavyFacIdx   map[[2]int]int // (heavy e, point) -> global facility index

	// linkBuf is the per-arrival link-dedup scratch, reused across Serve
	// calls (the retained Assign row is copied out of it) so the hot path
	// stays allocation-free alongside the inner PD's event-driven loop.
	linkBuf []int //omflp:nostate — per-arrival scratch, never read across arrivals
}

// lightCost exposes the inner (light-only) universe of a base cost model:
// configurations over the light IDs are translated back to global sets.
type lightCost struct {
	base  cost.Model
	light []int
}

func (lc *lightCost) Universe() int { return len(lc.light) }
func (lc *lightCost) Name() string  { return "light(" + lc.base.Name() + ")" }

func (lc *lightCost) Cost(m int, sigma commodity.Set) float64 {
	var global commodity.Set
	sigma.ForEach(func(inner int) {
		global = global.With(lc.light[inner])
	})
	return lc.base.Cost(m, global)
}

// NewHeavyAware splits the universe at threshold theta and wires up the
// inner algorithms. theta ≥ 1; typical values are small constants.
func NewHeavyAware(space metric.Space, costs cost.Model, opts Options, theta float64) *HeavyAware {
	u := costs.Universe()
	cands := opts.candidates(space)
	full := commodity.Full(u)

	var light, heavy []int
	for e := 0; e < u; e++ {
		cfg := commodity.New(e)
		var fe, fs float64
		for _, m := range cands {
			fe += costs.Cost(m, cfg)
			fs += costs.Cost(m, full)
		}
		if fe > theta*fs/float64(u) {
			heavy = append(heavy, e)
		} else {
			light = append(light, e)
		}
	}
	// Degenerate split: everything heavy would leave no inner instance;
	// treat all as light instead (plain PD-OMFLP).
	if len(light) == 0 {
		light, heavy = heavy, nil
	}

	ha := &HeavyAware{
		u:           u,
		space:       space,
		light:       light,
		heavy:       heavy,
		heavyA:      map[int]*ofl.FotakisPD{},
		lightMap:    map[int]int{},
		sol:         &instance.Solution{},
		heavyFacIdx: map[[2]int]int{},
	}
	for inner, e := range light {
		ha.lightMap[e] = inner
		ha.lightMask = ha.lightMask.With(e)
	}
	innerOpts := opts
	innerOpts.Candidates = cands
	ha.inner = NewPDOMFLP(space, &lightCost{base: costs, light: light}, innerOpts)
	for _, e := range heavy {
		cfg := commodity.New(e)
		fc := func(m int) float64 { return costs.Cost(m, cfg) }
		ha.heavyA[e] = ofl.NewFotakisPD(space, fc, cands)
	}
	return ha
}

// Name implements online.Algorithm.
func (ha *HeavyAware) Name() string { return "pd-omflp(heavy-aware)" }

// HeavySplit reports the heavy/light partition for diagnostics.
func (ha *HeavyAware) HeavySplit() (light, heavy []int) { return ha.light, ha.heavy }

// Serve implements online.Algorithm: light commodities go to the inner
// PD-OMFLP (with IDs remapped), heavy ones to their dedicated OFL instances.
func (ha *HeavyAware) Serve(r instance.Request) {
	// Dedup links with a linear scan over the reusable buffer instead of a
	// per-arrival map: link counts are tiny (≤ demanded commodities), and
	// first-occurrence order — the serialized contract — is preserved.
	ha.linkBuf = ha.linkBuf[:0]
	addLink := func(idx int) {
		for _, l := range ha.linkBuf {
			if l == idx {
				return
			}
		}
		ha.linkBuf = append(ha.linkBuf, idx)
	}

	lightPart := r.Demands.Intersect(ha.lightMask)
	if !lightPart.IsEmpty() {
		var innerSet commodity.Set
		lightPart.ForEach(func(e int) {
			innerSet = innerSet.With(ha.lightMap[e])
		})
		before := len(ha.inner.Solution().Facilities)
		ha.inner.Serve(instance.Request{Point: r.Point, Demands: innerSet})
		innerSol := ha.inner.Solution()
		// Mirror any newly opened inner facilities into the global
		// solution, translating configurations back to global IDs.
		for idx := before; idx < len(innerSol.Facilities); idx++ {
			f := innerSol.Facilities[idx]
			var global commodity.Set
			f.Config.ForEach(func(inner int) {
				global = global.With(ha.light[inner])
			})
			ha.innerToGlobal = append(ha.innerToGlobal, len(ha.sol.Facilities))
			ha.sol.Facilities = append(ha.sol.Facilities, instance.Facility{Point: f.Point, Config: global})
		}
		innerLinks := innerSol.Assign[len(innerSol.Assign)-1]
		for _, idx := range innerLinks {
			addLink(ha.innerToGlobal[idx])
		}
	}

	r.Demands.Subtract(ha.lightMask).ForEach(func(e int) {
		alg := ha.heavyA[e]
		connect, opened := alg.Place(r.Point)
		for _, m := range opened {
			key := [2]int{e, m}
			if _, ok := ha.heavyFacIdx[key]; !ok {
				ha.heavyFacIdx[key] = len(ha.sol.Facilities)
				ha.sol.Facilities = append(ha.sol.Facilities, instance.Facility{
					Point:  m,
					Config: commodity.New(e),
				})
			}
		}
		idx, ok := ha.heavyFacIdx[[2]int{e, connect}]
		if !ok {
			panic("core: heavy commodity connected to an untracked facility")
		}
		addLink(idx)
	})

	var links []int
	if len(ha.linkBuf) > 0 {
		links = make([]int, len(ha.linkBuf))
		copy(links, ha.linkBuf)
	}
	ha.sol.Assign = append(ha.sol.Assign, links)
}

// Solution implements online.Algorithm.
func (ha *HeavyAware) Solution() *instance.Solution { return ha.sol }

// HeavyFactory returns an online.Factory for the heavy-aware extension.
func HeavyFactory(opts Options, theta float64) online.Factory {
	if theta < 1 || math.IsNaN(theta) {
		panic("core: heavy threshold must be ≥ 1")
	}
	return online.Factory{
		Name: "pd-omflp(heavy-aware)",
		New: func(space metric.Space, costs cost.Model, seed int64) online.Algorithm {
			return NewHeavyAware(space, costs, opts, theta)
		},
	}
}
