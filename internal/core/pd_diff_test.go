package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// diffWorkload replays the same seeded random request sequence through the
// incremental algorithm and the naive reference and asserts that facilities,
// assignments and duals agree after every arrival.
func diffWorkload(t *testing.T, seed int64, opts Options, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	u := 2 + rng.Intn(8)
	var space metric.Space
	switch rng.Intn(3) {
	case 0:
		space = metric.RandomEuclidean(rng, 4+rng.Intn(20), 2, 50)
	case 1:
		space = metric.RandomLine(rng, 4+rng.Intn(20), 30)
	default:
		space = metric.NewUniform(3+rng.Intn(8), rng.Float64()*4)
	}
	costs := cost.PowerLaw(u, rng.Float64()*2, 0.5+rng.Float64()*3)

	inc := NewPDOMFLP(space, costs, opts)
	ref := NewPDReference(space, costs, opts)
	loop := NewPDLoopReference(space, costs, opts)
	if !ref.naiveBids || inc.naiveBids {
		t.Fatal("reference/incremental modes mis-wired")
	}
	for i := 0; i < n; i++ {
		r := instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		}
		inc.Serve(r)
		ref.Serve(r)
		loop.Serve(r)
		compareStates(t, seed, i, inc, ref)
		// The pre-refactor loop over the same incremental bids must agree
		// bit for bit with the event-driven loop, not just within tolerance.
		comparePDExact(t, "loop-reference", i, inc, loop)
		if t.Failed() {
			return
		}
	}
	if d := math.Abs(inc.DualTotal() - ref.DualTotal()); d > 1e-9*(1+ref.DualTotal()) {
		t.Errorf("seed %d: DualTotal diverged by %g (inc %g, ref %g)",
			seed, d, inc.DualTotal(), ref.DualTotal())
	}
}

func compareStates(t *testing.T, seed int64, step int, inc, ref *PDOMFLP) {
	t.Helper()
	incSol, refSol := inc.Solution(), ref.Solution()
	if len(incSol.Facilities) != len(refSol.Facilities) {
		t.Errorf("seed %d step %d: %d facilities vs reference %d",
			seed, step, len(incSol.Facilities), len(refSol.Facilities))
		return
	}
	for fi := range incSol.Facilities {
		a, b := incSol.Facilities[fi], refSol.Facilities[fi]
		if a.Point != b.Point || !a.Config.Equal(b.Config) {
			t.Errorf("seed %d step %d: facility %d = (%d,%v) vs reference (%d,%v)",
				seed, step, fi, a.Point, a.Config, b.Point, b.Config)
			return
		}
	}
	la, lb := incSol.Assign[step], refSol.Assign[step]
	if len(la) != len(lb) {
		t.Errorf("seed %d step %d: links %v vs reference %v", seed, step, la, lb)
		return
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Errorf("seed %d step %d: links %v vs reference %v", seed, step, la, lb)
			return
		}
	}
	for i, d := range inc.duals[step] {
		if math.Abs(d-ref.duals[step][i]) > 1e-9*(1+ref.duals[step][i]) {
			t.Errorf("seed %d step %d: dual[%d] = %g vs reference %g",
				seed, step, i, d, ref.duals[step][i])
			return
		}
	}
}

// TestPDIncrementalMatchesNaive is the differential test for the incremental
// bid accounting: across seeded random workloads the incremental Serve must
// produce identical facilities, assignments and (up to float tolerance)
// DualTotal to the naive per-arrival recomputation.
func TestPDIncrementalMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		diffWorkload(t, seed, Options{}, 40)
	}
}

func TestPDIncrementalMatchesNaiveNoPrediction(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		diffWorkload(t, seed, Options{DisablePrediction: true}, 30)
	}
}

func TestPDIncrementalMatchesNaiveRestrictedCandidates(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		diffWorkload(t, seed, Options{Candidates: []int{0, 1, 2}}, 30)
	}
}

// TestPDIncrementalBidsMatchCreditSums cross-checks the live accumulators
// against the credit history directly (not just through observable behaviour).
func TestPDIncrementalBidsMatchCreditSums(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := 6
	space := metric.RandomEuclidean(rng, 12, 2, 40)
	costs := cost.PowerLaw(u, 1, 2)
	pd := NewPDOMFLP(space, costs, Options{})
	for i := 0; i < 60; i++ {
		pd.Serve(instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
	}
	for e := 0; e < u; e++ {
		want := pd.naiveSmallBids(e)
		got := pd.bidSmall[e]
		if got == nil {
			got = pd.zeroBids
		}
		for ci := range want {
			if math.Abs(got[ci]-want[ci]) > 1e-9*(1+want[ci]) {
				t.Errorf("bidSmall[%d][%d] = %g, credit history says %g", e, ci, got[ci], want[ci])
			}
		}
	}
	want := pd.naiveLargeBids()
	for ci := range want {
		if math.Abs(pd.bidLarge[ci]-want[ci]) > 1e-9*(1+want[ci]) {
			t.Errorf("bidLarge[%d] = %g, credit history says %g", ci, pd.bidLarge[ci], want[ci])
		}
	}
}
