// Package core implements the two online algorithms contributed by the
// paper: the deterministic primal-dual PD-OMFLP (Algorithm 1, Theorem 4,
// O(√|S|·log n)-competitive) and the randomized RAND-OMFLP (Algorithm 2,
// Theorem 19, O(√|S|·log n/log log n)-competitive), plus the dual-solution
// machinery used to validate Corollary 17 empirically.
//
// Both algorithms follow the structural insight of Section 2: they only ever
// open "small" facilities offering a single commodity and "large" facilities
// offering all of S — the large facilities realize the prediction that the
// Ω(√|S|) lower bound shows is unavoidable.
package core

import (
	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// Options configures the core algorithms.
type Options struct {
	// Candidates lists the points where facilities may be opened.
	// nil means every point of the metric space (the paper's setting).
	Candidates []int
	// DisablePrediction turns off large facilities entirely (PD-OMFLP
	// ignores Constraints (2) and (4); RAND-OMFLP never rolls for large
	// facilities). This is the ablation of the Section 2 discussion: any
	// such algorithm is forced into Ω(|S|) on the Theorem 2 game.
	DisablePrediction bool
	// OptimalReassign, for RAND-OMFLP only: connect each request with the
	// exact min-cost facility subset (subset DP) instead of the paper's
	// two connection modes (all-small vs one-large, Figure 3). Never
	// worse; kept as an ablation.
	OptimalReassign bool
	// TraceAnalysis, for PD-OMFLP only: record the per-commodity arrival
	// history needed to reconstruct the Lemma 14 c-ordered covering
	// instances (see PDOMFLP.CoveringInstance). Costs O(n²) memory per
	// commodity; off by default.
	TraceAnalysis bool
}

func (o Options) candidates(space metric.Space) []int {
	if o.Candidates != nil {
		cands := append([]int(nil), o.Candidates...)
		return cands
	}
	cands := make([]int, space.Len())
	for i := range cands {
		cands[i] = i
	}
	return cands
}

// facilityIndex tracks open facilities and answers nearest-facility queries
// per commodity. Small facilities offer one commodity; large facilities
// offer all of S.
//
// Queries are answered through per-point incremental caches: facilities only
// ever open (never close or move), so the nearest-facility distance from any
// fixed point is non-increasing over the run. Each cache entry remembers the
// best facility seen so far plus a cursor into the append-only facility list;
// a query only scans the facilities opened since the cursor. Every
// (query point, facility) pair is therefore examined at most once over the
// whole run, instead of every open facility being rescanned on every query —
// the O(|open|) scan that made serve throughput degrade linearly in |S|.
type facilityIndex struct {
	space   metric.Space
	u       int
	sol     *instance.Solution
	smallBy [][]int // smallBy[e]: indices into sol.Facilities of small facilities for e
	large   []int   // indices into sol.Facilities of large facilities

	// largeCache[p] caches the nearest large facility from point p;
	// smallCache[e][p] the nearest small facility for commodity e (rows
	// allocated lazily on the first facility/query for e).
	largeCache []nearestCache
	smallCache [][]nearestCache
}

// nearestCache is one point's incremental view of an append-only facility
// list: best facility among list[:cursor] and its distance.
type nearestCache struct {
	cursor int
	best   int
	bestD  float64
}

func newFacilityIndex(space metric.Space, u int) *facilityIndex {
	return &facilityIndex{
		space:      space,
		u:          u,
		sol:        &instance.Solution{},
		smallBy:    make([][]int, u),
		largeCache: newNearestCacheRow(space.Len()),
		smallCache: make([][]nearestCache, u),
	}
}

func newNearestCacheRow(n int) []nearestCache {
	row := make([]nearestCache, n)
	for i := range row {
		row[i] = nearestCache{best: -1, bestD: infinity}
	}
	return row
}

// advance scans list[c.cursor:] (facility indices into sol.Facilities) and
// folds any strictly closer facility into the cache. Strict < keeps the
// earliest-opened facility on ties — the same tie-break as the original full
// scan, so results are bit-identical to the pre-cache implementation.
func (c *nearestCache) advance(fx *facilityIndex, list []int, p int) {
	for _, idx := range list[c.cursor:] {
		if d := fx.space.Distance(p, fx.sol.Facilities[idx].Point); d < c.bestD {
			c.best, c.bestD = idx, d
		}
	}
	c.cursor = len(list)
}

// openSmall opens a small facility for commodity e at point m and returns
// its index.
func (fx *facilityIndex) openSmall(e, m int) int {
	idx := len(fx.sol.Facilities)
	fx.sol.Facilities = append(fx.sol.Facilities, instance.Facility{
		Point:  m,
		Config: commodity.New(e),
	})
	fx.smallBy[e] = append(fx.smallBy[e], idx)
	return idx
}

// openLarge opens a large facility (offering all of S) at point m and
// returns its index.
func (fx *facilityIndex) openLarge(m int) int {
	idx := len(fx.sol.Facilities)
	fx.sol.Facilities = append(fx.sol.Facilities, instance.Facility{
		Point:  m,
		Config: commodity.Full(fx.u),
	})
	fx.large = append(fx.large, idx)
	return idx
}

// nearestOffering returns the open facility nearest to p that offers
// commodity e (small-for-e or large), as (facility index, distance);
// (-1, +Inf) if none. Amortized O(1) per query plus O(1) per facility opened
// since the last query from p (see facilityIndex).
func (fx *facilityIndex) nearestOffering(e, p int) (int, float64) {
	best, bestD := fx.nearestLarge(p)
	if fx.smallCache[e] == nil {
		if len(fx.smallBy[e]) == 0 {
			return best, bestD
		}
		fx.smallCache[e] = newNearestCacheRow(fx.space.Len())
	}
	c := &fx.smallCache[e][p]
	c.advance(fx, fx.smallBy[e], p)
	if c.bestD < bestD {
		best, bestD = c.best, c.bestD
	}
	return best, bestD
}

// nearestLarge returns the nearest large facility as (index, distance);
// (-1, +Inf) if none.
func (fx *facilityIndex) nearestLarge(p int) (int, float64) {
	c := &fx.largeCache[p]
	c.advance(fx, fx.large, p)
	return c.best, c.bestD
}

const infinity = 1e308

// singleCosts precomputes f_m^{e} for every candidate point (and f_m^S),
// shared by both algorithms. It also caches, per point of the space, the
// distances from every candidate to that point: the dCand vector of the
// PD Serve loop and the per-credit distance lookups of the incremental bid
// accumulators both read the same rows, so each (candidate, point) distance
// is computed at most once over the whole run.
type costTable struct {
	space    metric.Space
	cands    []int
	single   [][]float64 // [e][candIdx]
	full     []float64   // [candIdx]
	distRows [][]float64 // [point][candIdx], filled lazily by distTo
}

func buildCostTable(space metric.Space, costs cost.Model, cands []int) *costTable {
	u := costs.Universe()
	t := &costTable{space: space, cands: cands, distRows: make([][]float64, space.Len())}
	t.single = make([][]float64, u)
	fullSet := commodity.Full(u)
	for e := 0; e < u; e++ {
		row := make([]float64, len(cands))
		cfg := commodity.New(e)
		for ci, m := range cands {
			row[ci] = costs.Cost(m, cfg)
		}
		t.single[e] = row
	}
	t.full = make([]float64, len(cands))
	for ci, m := range cands {
		t.full[ci] = costs.Cost(m, fullSet)
	}
	return t
}

// distTo returns the distances from every candidate to point p, computing
// and caching the row on first use.
func (t *costTable) distTo(p int) []float64 {
	if row := t.distRows[p]; row != nil {
		return row
	}
	row := make([]float64, len(t.cands))
	for ci, m := range t.cands {
		row[ci] = t.space.Distance(m, p)
	}
	t.distRows[p] = row
	return row
}
