//go:build invariants

package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// serveRandom drives pd through n random arrivals; under -tags invariants
// every Serve re-derives the credit and bid invariants and panics on
// violation, so a clean return is the assertion.
func serveRandom(pd *PDOMFLP, rng *rand.Rand, space metric.Space, u, n int) {
	for i := 0; i < n; i++ {
		pd.Serve(instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
	}
}

// TestInvariantsHoldOnRandomWorkloads runs both serve paths under the
// assertion layer.
func TestInvariantsHoldOnRandomWorkloads(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		u := 2 + rng.Intn(3)
		space := metric.RandomLine(rng, 5, 12)
		costs := cost.PowerLaw(u, 1, 1.5)
		serveRandom(NewPDOMFLP(space, costs, Options{}), rng, space, u, 40)
		serveRandom(NewPDLoopReference(space, costs, Options{}), rng, space, u, 40)
	}
}

// mustPanic runs f and fails the test unless it panics with a message
// containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("expected panic containing %q, got %v", want, r)
		}
	}()
	f()
}

// TestCreditInvariantViolationPanics corrupts a recorded credit so it
// exceeds the distance to the nearest open facility and checks that the next
// arrival trips the credit assertion.
func TestCreditInvariantViolationPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := 2
	space := metric.RandomLine(rng, 5, 10)
	pd := NewPDOMFLP(space, cost.PowerLaw(u, 1, 1.5), Options{})
	serveRandom(pd, rng, space, u, 20)
	if len(pd.creditLarge) == 0 {
		t.Fatal("workload recorded no large credits")
	}
	pd.creditLarge[0].credit += 1e6
	mustPanic(t, "invariant violation: large credit", func() {
		pd.Serve(instance.Request{Point: 0, Demands: commodity.New(0)})
	})
}

// TestBidConsistencyViolationPanics corrupts an incremental bid accumulator
// and checks that the next arrival trips the differential assertion. The
// threshold cache is invalidated first so its (earlier) oracle check sees a
// self-consistent — if corrupt — row and defers to the bid assertion.
func TestBidConsistencyViolationPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	u := 2
	space := metric.RandomLine(rng, 5, 10)
	pd := NewPDOMFLP(space, cost.PowerLaw(u, 1, 1.5), Options{})
	serveRandom(pd, rng, space, u, 20)
	pd.bidLarge[0] += 0.5
	pd.thr.large.invalidate()
	mustPanic(t, "invariant violation: large bid row", func() {
		pd.Serve(instance.Request{Point: 0, Demands: commodity.New(0)})
	})
}

// TestThresholdCacheDivergencePanics corrupts a bid accumulator without
// telling the threshold cache and checks that the cache's oracle
// cross-check — which fires before the bid assertion — catches the stale
// cached minima on the next arrival.
func TestThresholdCacheDivergencePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	u := 2
	space := metric.RandomLine(rng, 5, 10)
	pd := NewPDOMFLP(space, cost.PowerLaw(u, 1, 1.5), Options{})
	serveRandom(pd, rng, space, u, 20)
	pd.bidLarge[0] += 0.5
	mustPanic(t, "threshold cache diverged", func() {
		pd.Serve(instance.Request{Point: 0, Demands: commodity.New(0)})
	})
}
