package core

import (
	"math/rand"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

// Non-uniform facility costs (the paper's "non-uniform" setting) exercise
// RAND-OMFLP's cost classes and PD-OMFLP's per-point cost table.

func nonUniformSetup(rng *rand.Rand, u, points int) (metric.Space, cost.Model) {
	space := metric.RandomEuclidean(rng, points, 2, 20)
	base := cost.PowerLaw(u, 1, 2)
	factors := cost.RandomFactors(rng, points, 0.25, 4)
	return space, cost.NewPointScaled(base, factors)
}

func TestPDNonUniformFeasibleAndSane(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		u := 2 + rng.Intn(4)
		space, costs := nonUniformSetup(rng, u, 6)
		in := &instance.Instance{Space: space, Costs: costs}
		for i := 0; i < 15; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		sol, c, err := online.Run(PDFactory(Options{}), in, 1, true)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if c <= 0 {
			t.Errorf("trial %d: cost %g", trial, c)
		}
		// Corollary 8 holds regardless of non-uniformity.
		pd := NewPDOMFLP(space, costs, Options{})
		for _, r := range in.Requests {
			pd.Serve(r)
		}
		if pdCost := pd.Solution().Cost(in); pdCost > 3*pd.DualTotal()+1e-6 {
			t.Errorf("trial %d: cost %g > 3·dual %g", trial, pdCost, 3*pd.DualTotal())
		}
		_ = sol
	}
}

func TestRandNonUniformPrefersCheapPoints(t *testing.T) {
	// Two co-located points (uniform distance 0), one 64× cheaper: over
	// many runs RAND must open (almost) everything at the cheap point.
	u := 3
	space := metric.NewUniform(2, 0)
	base := cost.PowerLaw(u, 1, 8)
	costs := cost.NewPointScaled(base, []float64{8, 0.125})
	cheap, expensive := 0, 0
	for s := int64(0); s < 100; s++ {
		ra := NewRandOMFLP(space, costs, Options{}, rand.New(rand.NewSource(s)))
		for i := 0; i < 6; i++ {
			ra.Serve(instance.Request{Point: 0, Demands: commodity.Full(u)})
		}
		for _, f := range ra.Solution().Facilities {
			if f.Point == 1 {
				cheap++
			} else {
				expensive++
			}
		}
	}
	if cheap <= expensive {
		t.Errorf("cheap-point openings %d vs expensive %d: class machinery ignores costs", cheap, expensive)
	}
}

func TestRandNonUniformFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		u := 2 + rng.Intn(4)
		space, costs := nonUniformSetup(rng, u, 6)
		in := &instance.Instance{Space: space, Costs: costs}
		for i := 0; i < 15; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		if _, _, err := online.Run(RandFactory(Options{}), in, int64(trial), true); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPDOnTreeMetric(t *testing.T) {
	// A balanced-ish tree: requests at the leaves, cheap hub.
	parent := []int{-1, 0, 0, 1, 1, 2, 2}
	weight := []float64{0, 1, 1, 2, 2, 2, 2}
	tree, err := metric.NewTree(parent, weight)
	if err != nil {
		t.Fatal(err)
	}
	costs := cost.PowerLaw(4, 1, 2)
	in := &instance.Instance{Space: tree, Costs: costs}
	rng := rand.New(rand.NewSource(5))
	leaves := []int{3, 4, 5, 6}
	for i := 0; i < 20; i++ {
		in.Requests = append(in.Requests, instance.Request{
			Point:   leaves[rng.Intn(len(leaves))],
			Demands: commodity.RandomSubset(rng, 4, 1+rng.Intn(4)),
		})
	}
	sol, c, err := online.Run(PDFactory(Options{}), in, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 || len(sol.Facilities) == 0 {
		t.Errorf("cost %g facilities %d", c, len(sol.Facilities))
	}
}
