package core

import (
	"math"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

// RandOMFLP is the randomized algorithm of Section 4 (Algorithm 2), a
// Meyerson-style algorithm generalized to commodities. Facility costs for
// each configuration τ ∈ {S} ∪ {{e}} are grouped into power-of-two classes
// C^τ_1 < C^τ_2 < …; on a request r the algorithm computes the budgets
//
//	X(r,e) = min{ d(F(e), r), min_i { C^{e}_i + d(C^{e}_i, r) } }
//	X(r)   = Σ_{e∈s_r} X(r,e)
//	Z(r)   = min{ d(F̂, r),  min_i { C^S_i + d(C^S_i, r) } }
//
// and opens, per class i, a small facility for e with probability
// (d(C^{e}_{i−1},r) − d(C^{e}_i,r))/C^{e}_i · X(r,e)/X(r) and a large
// facility with probability (d(C^S_{i−1},r) − d(C^S_i,r))/C^S_i, where
// d(C^τ_0, r) := min{Z(r), X(r)}. Distances to classes are cumulative
// (class ≤ i), making improvements non-negative; probabilities are clamped
// to 1. If a commodity would remain uncovered after the coin flips the
// algorithm deterministically opens the budget-minimizing facility for it
// (the pseudocode leaves this forced case implicit; feasibility requires
// it). Finally the request connects in the cheaper of the two Figure 3
// modes: per-commodity nearest facilities, or one shared large facility.
type RandOMFLP struct {
	space metric.Space //omflp:nostate — constructor parameter; the restore contract requires an identically constructed instance
	costs cost.Model   //omflp:nostate — constructor parameter, ditto
	u     int
	opts  Options //omflp:nostate — constructor parameter, ditto
	rng   *rand.Rand
	fx    *facilityIndex

	// nCands and draws support state serialization: the candidate count
	// validates restores, and the coin-flip count is the serializable form
	// of the rng position (see UnmarshalState).
	nCands int
	draws  int64

	smallClasses []tauClasses //omflp:nostate — pure function of space/costs/opts, rebuilt by the constructor (per commodity)
	largeClasses tauClasses   //omflp:nostate — ditto
	// dedupe: open small facilities per (e, point), and large per point,
	// to avoid paying twice for an identical facility.
	smallOpen map[[2]int]bool
	largeOpen map[int]bool
}

// tauClasses holds the power-of-two cost classes of one configuration τ:
// ascending class values with cumulative candidate-point lists.
//
// Classes and candidates never change after construction, so the
// class-distance minima d(C^τ_i, r) — and hence the budget term
// min_i{C^τ_i + d(C^τ_i, r)} — depend only on the query point. They are
// computed once per point and cached (the same accumulator treatment PD's
// bid sums got): budget evaluation drops from O(|cands|·|classes|) per
// arrival to O(|classes|) after the first arrival at a point.
type tauClasses struct {
	values []float64
	points [][]int // points[i] = candidates of class ≤ i

	// perPoint[p] caches the per-class nearest candidates from point p and
	// the via-minimum; allocated lazily on first query.
	perPoint []*tauPointCache
}

// tauPointCache is the static part of one point's budget: per class i the
// nearest candidate of class ≤ i, and the minimizer of C_i + d(C_i, p).
type tauPointCache struct {
	nearPt    []int
	nearD     []float64
	bestVia   float64
	bestClass int
	bestPoint int
}

// at returns the (lazily computed) class-distance minima for point p. One
// pass over the exact-class candidate suffixes with a running prefix minimum
// examines each candidate once and reproduces metric.Nearest's
// earliest-wins tie-breaking over the cumulative lists exactly.
func (tc *tauClasses) at(space metric.Space, p int) *tauPointCache {
	if tc.perPoint == nil {
		tc.perPoint = make([]*tauPointCache, space.Len())
	}
	if c := tc.perPoint[p]; c != nil {
		return c
	}
	c := &tauPointCache{
		nearPt:    make([]int, len(tc.values)),
		nearD:     make([]float64, len(tc.values)),
		bestVia:   math.Inf(1),
		bestClass: -1,
		bestPoint: -1,
	}
	bestPt, bestD := -1, math.Inf(1)
	for i, v := range tc.values {
		lo := 0
		if i > 0 {
			lo = len(tc.points[i-1])
		}
		for _, m := range tc.points[i][lo:] {
			if d := space.Distance(p, m); d < bestD {
				bestPt, bestD = m, d
			}
		}
		c.nearPt[i], c.nearD[i] = bestPt, bestD
		if via := v + bestD; via < c.bestVia {
			c.bestVia = via
			c.bestClass, c.bestPoint = i, bestPt
		}
	}
	tc.perPoint[p] = c
	return c
}

func buildTauClasses(cands []int, costAt func(m int) float64) tauClasses {
	type pc struct {
		point int
		class float64
	}
	pcs := make([]pc, 0, len(cands))
	for _, m := range cands {
		c := costAt(m)
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			panic("core: facility costs must be positive and finite")
		}
		pcs = append(pcs, pc{point: m, class: math.Pow(2, math.Floor(math.Log2(c)))})
	}
	distinct := map[float64]bool{}
	for _, x := range pcs {
		distinct[x.class] = true
	}
	var tc tauClasses
	for v := range distinct {
		tc.values = append(tc.values, v)
	}
	// Insertion sort: class counts are tiny (log of the cost spread).
	for i := 1; i < len(tc.values); i++ {
		for j := i; j > 0 && tc.values[j] < tc.values[j-1]; j-- {
			tc.values[j], tc.values[j-1] = tc.values[j-1], tc.values[j]
		}
	}
	tc.points = make([][]int, len(tc.values))
	for i, v := range tc.values {
		var pts []int
		if i > 0 {
			pts = append(pts, tc.points[i-1]...)
		}
		for _, x := range pcs {
			if x.class == v { //omflp:floatexact — class tags are computed by the identical Pow(2, Floor(Log2)) expression; equality is bit-reliable
				pts = append(pts, x.point)
			}
		}
		tc.points[i] = pts
	}
	return tc
}

// nearest returns the candidate of class ≤ i nearest to p.
func (tc *tauClasses) nearest(space metric.Space, i, p int) (int, float64) {
	return metric.Nearest(space, p, tc.points[i])
}

// NewRandOMFLP constructs the randomized algorithm. All randomness flows
// from rng; pass a seeded source for reproducible runs.
func NewRandOMFLP(space metric.Space, costs cost.Model, opts Options, rng *rand.Rand) *RandOMFLP {
	u := costs.Universe()
	cands := opts.candidates(space)
	if len(cands) == 0 {
		panic("core: RAND-OMFLP needs at least one candidate point")
	}
	ct := buildCostTable(space, costs, cands)
	ra := &RandOMFLP{
		space:     space,
		costs:     costs,
		u:         u,
		opts:      opts,
		rng:       rng,
		fx:        newFacilityIndex(space, u),
		nCands:    len(cands),
		smallOpen: map[[2]int]bool{},
		largeOpen: map[int]bool{},
	}
	ra.smallClasses = make([]tauClasses, u)
	for e := 0; e < u; e++ {
		row := ct.single[e]
		ra.smallClasses[e] = buildTauClasses(cands, func(m int) float64 {
			return row[indexOf(cands, m)]
		})
	}
	ra.largeClasses = buildTauClasses(cands, func(m int) float64 {
		return ct.full[indexOf(cands, m)]
	})
	return ra
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	panic("core: candidate index lookup failed")
}

// Name implements online.Algorithm.
func (ra *RandOMFLP) Name() string {
	if ra.opts.DisablePrediction {
		return "rand-omflp(no-prediction)"
	}
	return "rand-omflp"
}

// Solution implements online.Algorithm.
func (ra *RandOMFLP) Solution() *instance.Solution { return ra.fx.sol }

// RandFactory returns an online.Factory for RAND-OMFLP; the seed passed at
// run time feeds the algorithm's RNG.
func RandFactory(opts Options) online.Factory {
	name := "rand-omflp"
	if opts.DisablePrediction {
		name = "rand-omflp(no-prediction)"
	}
	return online.Factory{
		Name: name,
		New: func(space metric.Space, costs cost.Model, seed int64) online.Algorithm {
			return NewRandOMFLP(space, costs, opts, rand.New(rand.NewSource(seed)))
		},
	}
}

// flip draws one coin flip, counting the draw so the rng position is part
// of the serializable state (see UnmarshalState). Every consumption of the
// rng goes through here.
func (ra *RandOMFLP) flip() float64 {
	ra.draws++
	return ra.rng.Float64()
}

// budgetSmall returns X(r,e) and the (class, point) minimizing
// C_i + d(C_i, r) for forced openings. The class-distance part is read from
// the per-point cache; only the nearest-open-facility term is dynamic.
func (ra *RandOMFLP) budgetSmall(e, p int) (x float64, bestClass, bestPoint int) {
	_, dF := ra.fx.nearestOffering(e, p)
	c := ra.smallClasses[e].at(ra.space, p)
	x = dF
	if c.bestVia < x {
		x = c.bestVia
	}
	return x, c.bestClass, c.bestPoint
}

// budgetLarge returns Z(r) and the minimizing (class, point).
func (ra *RandOMFLP) budgetLarge(p int) (z float64, bestClass, bestPoint int) {
	_, dF := ra.fx.nearestLarge(p)
	c := ra.largeClasses.at(ra.space, p)
	z = dF
	if c.bestVia < z {
		z = c.bestVia
	}
	return z, c.bestClass, c.bestPoint
}

// budgetSmallRef recomputes X(r,e) from scratch with per-class nearest scans
// over the cumulative candidate lists — the original accounting, kept as the
// reference oracle for differential tests.
func (ra *RandOMFLP) budgetSmallRef(e, p int) (x float64, bestClass, bestPoint int) {
	_, dF := ra.fx.nearestOffering(e, p)
	return budgetRef(ra.space, &ra.smallClasses[e], dF, p)
}

// budgetLargeRef is the Z(r) analogue of budgetSmallRef.
func (ra *RandOMFLP) budgetLargeRef(p int) (z float64, bestClass, bestPoint int) {
	_, dF := ra.fx.nearestLarge(p)
	return budgetRef(ra.space, &ra.largeClasses, dF, p)
}

func budgetRef(space metric.Space, tc *tauClasses, dF float64, p int) (x float64, bestClass, bestPoint int) {
	x = dF
	bestClass, bestPoint = -1, -1
	bestVia := math.Inf(1)
	for i, ci := range tc.values {
		pt, d := tc.nearest(space, i, p)
		if ci+d < bestVia {
			bestVia = ci + d
			bestClass, bestPoint = i, pt
		}
	}
	if bestVia < x {
		x = bestVia
	}
	return x, bestClass, bestPoint
}

// Serve implements online.Algorithm: Algorithm 2 on arrival of request r.
func (ra *RandOMFLP) Serve(r instance.Request) {
	p := r.Point
	ids := r.Demands.IDs()

	xr := make([]float64, len(ids))
	var x float64
	for i, e := range ids {
		xr[i], _, _ = ra.budgetSmall(e, p)
		x += xr[i]
	}
	z := math.Inf(1)
	if !ra.opts.DisablePrediction {
		z, _, _ = ra.budgetLarge(p)
	}
	d0 := math.Min(z, x)

	// Coin flips for small facilities, per commodity and class.
	for i, e := range ids {
		if x <= 0 {
			break // zero budget: a facility already sits on the request
		}
		share := xr[i] / x
		tc := &ra.smallClasses[e]
		cache := tc.at(ra.space, p)
		prev := d0
		for ci, cv := range tc.values {
			pt, d := cache.nearPt[ci], cache.nearD[ci]
			improvement := prev - d
			prev = math.Min(prev, d)
			if improvement <= 0 {
				continue
			}
			prob := improvement / cv * share
			if prob > 1 {
				prob = 1
			}
			if ra.flip() < prob {
				ra.openSmallDedup(e, pt)
			}
		}
	}

	// Coin flips for large facilities, per class.
	if !ra.opts.DisablePrediction {
		cache := ra.largeClasses.at(ra.space, p)
		prev := d0
		for ci, cv := range ra.largeClasses.values {
			pt, d := cache.nearPt[ci], cache.nearD[ci]
			improvement := prev - d
			prev = math.Min(prev, d)
			if improvement <= 0 {
				continue
			}
			prob := improvement / cv
			if prob > 1 {
				prob = 1
			}
			if ra.flip() < prob {
				ra.openLargeDedup(pt)
			}
		}
	}

	// Forced openings: every demanded commodity must be servable.
	for _, e := range ids {
		if _, d := ra.fx.nearestOffering(e, p); math.IsInf(d, 1) {
			_, _, pt := ra.budgetSmall(e, p)
			if pt < 0 {
				panic("core: RAND-OMFLP has no candidate to cover a commodity")
			}
			ra.openSmallDedup(e, pt)
		}
	}

	// Connect: cheaper of the two Figure 3 modes, or the exact subset DP
	// if the OptimalReassign ablation is on.
	var links []int
	if ra.opts.OptimalReassign {
		links, _ = instance.BestAssignment(ra.space, ra.fx.sol.Facilities, r)
	} else {
		linkSet := map[int]bool{}
		var smallCost float64
		var smallLinks []int
		for _, e := range ids {
			fac, d := ra.fx.nearestOffering(e, p)
			smallCost += d
			if !linkSet[fac] {
				linkSet[fac] = true
				smallLinks = append(smallLinks, fac)
			}
		}
		largeFac, dL := ra.fx.nearestLarge(p)
		if dL < smallCost {
			links = []int{largeFac}
		} else {
			links = smallLinks
		}
	}
	ra.fx.sol.Assign = append(ra.fx.sol.Assign, links)
}

// openSmallDedup opens a small facility for e at pt unless an identical one
// exists or a large facility already sits at pt (which offers e at the same
// distance — opening the singleton would be pure waste; skipping dominated
// openings only lowers cost and leaves the analysis intact).
func (ra *RandOMFLP) openSmallDedup(e, pt int) {
	key := [2]int{e, pt}
	if ra.smallOpen[key] || ra.largeOpen[pt] {
		return
	}
	ra.smallOpen[key] = true
	ra.fx.openSmall(e, pt)
}

// openLargeDedup opens a large facility at pt unless one exists there. In
// the degenerate universe |S| = 1 a "large" facility equals the singleton
// facility, so an existing small facility at pt also suppresses the opening.
func (ra *RandOMFLP) openLargeDedup(pt int) {
	if ra.largeOpen[pt] {
		return
	}
	if ra.u == 1 && ra.smallOpen[[2]int{0, pt}] {
		return
	}
	ra.largeOpen[pt] = true
	ra.fx.openLarge(pt)
}
