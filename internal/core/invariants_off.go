//go:build !invariants

package core

// invariantsEnabled gates the runtime assertion layer (see invariants.go).
// In default builds the const-false guard makes the assertion calls compile
// to nothing, keeping the serve hot path untouched.
const invariantsEnabled = false

func (pd *PDOMFLP) assertInvariants() {}
