package core

import (
	"math"
	"math/rand"

	"repro/internal/commodity"
	"repro/internal/stats"
)

// DualReport summarizes a scaled-dual feasibility check (Corollary 17): the
// dual variables a_re produced by PD-OMFLP, scaled by γ = 1/(5·√|S|·H_n),
// must satisfy every dual constraint
//
//	Σ_r ( Σ_{e∈s_r∩σ} γ·a_re − d(m, r) )_+ ≤ f_m^σ
//
// for every candidate point m and configuration σ ⊆ S.
type DualReport struct {
	Gamma          float64
	Checked        int     // number of (m, σ) constraints evaluated
	MaxViolation   float64 // max LHS − RHS over checked constraints (≤ 0 is feasible)
	WorstSlackUsed float64 // max LHS/RHS ratio observed (diagnostics)
	DualTotal      float64 // Σ_r Σ_e a_re (unscaled)
}

// Gamma returns the paper's scaling factor γ = 1/(5√|S|·H_n).
func Gamma(u, n int) float64 {
	if n == 0 {
		return 1
	}
	return 1 / (5 * math.Sqrt(float64(u)) * stats.Harmonic(n))
}

// CheckScaledDuals evaluates the Corollary 17 constraints for the duals the
// algorithm has produced so far. For universes of at most maxExhaustive
// commodities every σ ⊆ S is checked; otherwise `trials` random
// configurations are sampled per point (rng required), always including all
// singletons and the full set, which the analysis treats as the extreme
// cases (Lemmas 14 and 16).
func (pd *PDOMFLP) CheckScaledDuals(gamma float64, maxExhaustive, trials int, rng *rand.Rand) DualReport {
	rep := DualReport{Gamma: gamma, MaxViolation: math.Inf(-1), DualTotal: pd.DualTotal()}

	var configs []commodity.Set
	if pd.u <= maxExhaustive {
		configs = commodity.AllSubsets(pd.u)
	} else {
		for e := 0; e < pd.u; e++ {
			configs = append(configs, commodity.New(e))
		}
		configs = append(configs, commodity.Full(pd.u))
		for t := 0; t < trials; t++ {
			configs = append(configs, commodity.RandomSubset(rng, pd.u, 1+rng.Intn(pd.u)))
		}
	}

	for ci, m := range pd.ct.cands {
		for _, sigma := range configs {
			var lhs float64
			for ri, ids := range pd.demandIDs {
				var scaled float64
				for i, e := range ids {
					if sigma.Contains(e) {
						scaled += gamma * pd.duals[ri][i]
					}
				}
				if v := scaled - pd.space.Distance(m, pd.points[ri]); v > 0 {
					lhs += v
				}
			}
			rhs := pd.costs.Cost(m, sigma)
			rep.Checked++
			if viol := lhs - rhs; viol > rep.MaxViolation {
				rep.MaxViolation = viol
			}
			if rhs > 0 {
				if ratio := lhs / rhs; ratio > rep.WorstSlackUsed {
					rep.WorstSlackUsed = ratio
				}
			}
		}
		_ = ci
	}
	return rep
}

// Feasible reports whether no constraint was violated beyond tolerance.
func (r DualReport) Feasible(tol float64) bool {
	return r.MaxViolation <= tol
}
