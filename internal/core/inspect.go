package core

import (
	"math"

	"repro/internal/instance"
)

// Budgets exposes RAND-OMFLP's internal request budgets for diagnostics and
// the Figure 3 reproduction: per demanded commodity the small budget X(r,e),
// their sum X(r), and the large budget Z(r). It does not change state.
func (ra *RandOMFLP) Budgets(r instance.Request) (perCommodity []float64, x, z float64) {
	ids := r.Demands.IDs()
	perCommodity = make([]float64, len(ids))
	for i, e := range ids {
		perCommodity[i], _, _ = ra.budgetSmall(e, r.Point)
		x += perCommodity[i]
	}
	z = math.Inf(1)
	if !ra.opts.DisablePrediction {
		z, _, _ = ra.budgetLarge(r.Point)
	}
	return perCommodity, x, z
}

// PlantSmall force-opens a small facility for commodity e at the given
// point. It exists so experiments (Figure 3) and tests can set up facility
// layouts without relying on coin flips; it is not part of Algorithm 2.
func (ra *RandOMFLP) PlantSmall(e, point int) {
	ra.openSmallDedup(e, point)
}

// PlantLarge force-opens a large facility at the given point (see
// PlantSmall).
func (ra *RandOMFLP) PlantLarge(point int) {
	ra.openLargeDedup(point)
}

// FacilityCounts reports how many small and large facilities are open —
// the Figure 1 / game diagnostics.
func (ra *RandOMFLP) FacilityCounts() (small, large int) {
	return len(ra.fx.sol.Facilities) - len(ra.fx.large), len(ra.fx.large)
}

// FacilityCounts reports how many small and large facilities PD-OMFLP has
// open.
func (pd *PDOMFLP) FacilityCounts() (small, large int) {
	return len(pd.fx.sol.Facilities) - len(pd.fx.large), len(pd.fx.large)
}
