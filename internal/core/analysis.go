package core

import (
	"repro/internal/covering"
)

// CoveringInstance extracts, for a fixed commodity e and candidate point m,
// the c-ordered covering instance that the proof of Lemma 14 builds from
// the algorithm's execution: requests demanding e are numbered in arrival
// order; request j belongs to B_i (for a later request i) when j's
// reinvestment is capped by its distance to the nearest facility offering e
// — i.e. min{a_je, d(F(e), j)} = d(F(e), j) < a_je — at the time i arrives,
// and to A_i otherwise. The parameter c is f_m^{e} + λ with
// λ = 2·Σ_{j∈B} d(m, j) (the proof's weight).
//
// Because facilities only accumulate, d(F(e), j) is non-increasing over
// time, so B_i ⊆ B_j for i < j — exactly Definition 9's monotonicity. The
// returned instance therefore always validates; tests assert this, closing
// the loop between Algorithm 1's execution and the covering engine that
// powers its analysis.
//
// The reconstruction requires the arrival-time distance history, which the
// algorithm records when Options.TraceAnalysis is set; CoveringInstance
// returns ok = false otherwise or when fewer than one request demands e.
func (pd *PDOMFLP) CoveringInstance(e, m int) (*covering.Instance, bool) {
	if !pd.opts.TraceAnalysis {
		return nil, false
	}
	hist := pd.distHistory[e]
	if len(hist) == 0 {
		return nil, false
	}
	// hist[i] holds, for the i-th request demanding e (arrival order), the
	// dual a and the distance d(F(e), ·) snapshots of all earlier
	// e-requests at its arrival time, plus its own point.
	n := len(hist)
	inst := &covering.Instance{B: make([][]int, n)}
	var lambda float64
	inB := map[int]bool{}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if inB[j] {
				continue
			}
			// Distance cap active at i's arrival?
			if hist[i].prevDist[j] < hist[j].dual {
				inB[j] = true
			}
		}
		var bi []int
		for j := 0; j < i; j++ {
			if inB[j] {
				bi = append(bi, j)
				lambda += 2 * pd.space.Distance(m, hist[j].point)
			}
		}
		inst.B[i] = bi
	}
	// c = f_m^{e} + λ per the proof. λ above over-counts (summed per i);
	// recompute it once over the final B membership.
	lambda = 0
	for j := 0; j < n; j++ {
		if inB[j] {
			lambda += 2 * pd.space.Distance(m, hist[j].point)
		}
	}
	ci := pd.costIndex(m)
	if ci < 0 {
		return nil, false
	}
	inst.C = pd.ct.single[e][ci] + lambda
	return inst, true
}

// costIndex maps a point to its candidate index, or -1.
func (pd *PDOMFLP) costIndex(m int) int {
	for ci, cand := range pd.ct.cands {
		if cand == m {
			return ci
		}
	}
	return -1
}

// analysisRecord snapshots the state needed by CoveringInstance for one
// request demanding a commodity.
type analysisRecord struct {
	point    int
	dual     float64
	prevDist []float64 // d(F(e), j) for each earlier e-request j, at arrival
}

// snapshotAnalysis captures, at the *start* of an arrival (before any of the
// request's own facilities open — the proof's "at the time we increase a_ℓe"),
// the distances d(F(e), j) of all earlier e-requests, per demanded commodity.
func (pd *PDOMFLP) snapshotAnalysis(ids []int) map[int][]float64 {
	if pd.distHistory == nil {
		pd.distHistory = make(map[int][]analysisRecord)
	}
	snaps := make(map[int][]float64, len(ids))
	for _, e := range ids {
		prev := pd.distHistory[e]
		snap := make([]float64, len(prev))
		for j, rec := range prev {
			_, d := pd.fx.nearestOffering(e, rec.point)
			snap[j] = d
		}
		snaps[e] = snap
	}
	return snaps
}

// recordAnalysis appends the arrival's record using the start-of-arrival
// snapshots and the frozen duals.
func (pd *PDOMFLP) recordAnalysis(ids []int, a []float64, p int, snaps map[int][]float64) {
	for i, e := range ids {
		pd.distHistory[e] = append(pd.distHistory[e], analysisRecord{
			point:    p,
			dual:     a[i],
			prevDist: snaps[e],
		})
	}
}
