package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/stats"
)

// theorem4Bound returns the explicit constant from the proof of Theorem 4:
// cost(PD) ≤ 15·√|S|·H_n·OPT.
func theorem4Bound(u, n int) float64 {
	return 15 * math.Sqrt(float64(u)) * stats.Harmonic(n)
}

// TestPDWithinTheorem4BoundOfExactOPT is the strongest end-to-end check we
// can run: on small random instances where the branch-and-bound optimum is
// exact, PD's cost must stay within the proven 15·√|S|·H_n factor.
func TestPDWithinTheorem4BoundOfExactOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(2020))
	for trial := 0; trial < 12; trial++ {
		u := 2 + rng.Intn(3)
		in := &instance.Instance{
			Space: metric.RandomLine(rng, 2+rng.Intn(3), 10),
			Costs: cost.PowerLaw(u, rng.Float64()*2, 0.5+rng.Float64()*2),
		}
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(in.Space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		sol, pdCost, err := online.Run(PDFactory(Options{}), in, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		_ = sol
		opt := baseline.ExactSmall(in, 4).Cost
		bound := theorem4Bound(u, n)
		if pdCost > bound*opt+1e-9 {
			t.Errorf("trial %d: PD %g exceeds %g·OPT = %g (u=%d n=%d)",
				trial, pdCost, bound, bound*opt, u, n)
		}
		// And PD can never beat OPT.
		if pdCost < opt-1e-9 {
			t.Errorf("trial %d: PD %g below exact OPT %g — solver or verifier broken", trial, pdCost, opt)
		}
	}
}

// TestRandWithinTheorem19BoundOfExactOPT: the randomized algorithm's *mean*
// cost over seeds stays within the (loose) Theorem 19 factor of exact OPT.
func TestRandWithinTheorem19BoundOfExactOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 6; trial++ {
		u := 2 + rng.Intn(3)
		in := &instance.Instance{
			Space: metric.RandomLine(rng, 3, 8),
			Costs: cost.PowerLaw(u, 1, 1),
		}
		n := 4 + rng.Intn(4)
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(in.Space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		var mean float64
		const reps = 20
		for s := int64(0); s < reps; s++ {
			_, c, err := online.Run(RandFactory(Options{}), in, s, true)
			if err != nil {
				t.Fatal(err)
			}
			mean += c
		}
		mean /= reps
		opt := baseline.ExactSmall(in, 4).Cost
		// Generous constant: the theorem's O(·) hides moderate factors.
		bound := 30 * math.Sqrt(float64(u)) * math.Log(float64(n)+2)
		if mean > bound*opt {
			t.Errorf("trial %d: RAND mean %g exceeds %g·OPT = %g", trial, mean, bound, bound*opt)
		}
		if mean < opt-1e-9 {
			t.Errorf("trial %d: RAND mean %g below exact OPT %g", trial, mean, opt)
		}
	}
}

// TestOnlineAlgorithmsAgreeOnDegenerateInstances: all algorithms must
// produce the identical (forced) solution when there is exactly one
// candidate point and one commodity.
func TestOnlineAlgorithmsAgreeOnDegenerateInstances(t *testing.T) {
	in := &instance.Instance{
		Space: metric.SinglePoint(),
		Costs: cost.Constant(1, 5),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0)},
			{Point: 0, Demands: commodity.New(0)},
		},
	}
	want := 5.0 // one facility, zero distance
	for _, f := range []online.Factory{
		PDFactory(Options{}),
		RandFactory(Options{}),
	} {
		_, c, err := online.Run(f, in, 1, true)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if math.Abs(c-want) > 1e-9 {
			t.Errorf("%s: cost %g, want %g", f.Name, c, want)
		}
	}
}

// TestPDMonotoneUnderPrefix: serving a prefix of a sequence never costs more
// than serving the whole sequence (irrevocability sanity).
func TestPDMonotoneUnderPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	u := 4
	space := metric.RandomLine(rng, 5, 10)
	costs := cost.PowerLaw(u, 1, 1)
	reqs := make([]instance.Request, 12)
	for i := range reqs {
		reqs[i] = instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		}
	}
	var prev float64
	pd := NewPDOMFLP(space, costs, Options{})
	for i, r := range reqs {
		pd.Serve(r)
		in := &instance.Instance{Space: space, Costs: costs, Requests: reqs[:i+1]}
		c := pd.Solution().Cost(in)
		if c < prev-1e-9 {
			t.Fatalf("cost decreased from %g to %g after request %d", prev, c, i)
		}
		prev = c
	}
}

// TestPDHandlesRepeatedIdenticalRequests: n identical requests cost at most
// the first request's cost (everything after connects at distance 0... or
// pays only its frozen dual ≤ first cost).
func TestPDHandlesRepeatedIdenticalRequests(t *testing.T) {
	space := metric.SinglePoint()
	costs := cost.PowerLaw(6, 1, 3)
	pd := NewPDOMFLP(space, costs, Options{})
	r := instance.Request{Point: 0, Demands: commodity.New(0, 3, 5)}
	pd.Serve(r)
	in := &instance.Instance{Space: space, Costs: costs, Requests: []instance.Request{r}}
	first := pd.Solution().Cost(in)
	for i := 0; i < 20; i++ {
		pd.Serve(r)
		in.Requests = append(in.Requests, r)
	}
	final := pd.Solution().Cost(in)
	if final > first+1e-9 {
		t.Errorf("repeats raised cost from %g to %g", first, final)
	}
}

// TestLargeUniverseSmoke: the algorithms handle |S| in the thousands (the
// Figure 2 regime) without falling over.
func TestLargeUniverseSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-universe smoke test")
	}
	u := 4096
	space := metric.SinglePoint()
	costs := cost.CeilSqrt(u)
	pd := NewPDOMFLP(space, costs, Options{})
	for e := 0; e < 64; e++ {
		pd.Serve(instance.Request{Point: 0, Demands: commodity.New(e * 64)})
	}
	small, large := pd.FacilityCounts()
	if small+large == 0 {
		t.Fatal("no facilities")
	}
	if large == 0 {
		t.Error("PD never predicted at |S|=4096 despite 64 = √|S| singleton rounds")
	}
}
