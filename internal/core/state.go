package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/commodity"
	"repro/internal/instance"
	"repro/internal/ofl"
	"repro/internal/online"
)

// This file implements online.StateCodec for the core algorithms: the
// complete serving state of PD-OMFLP, RAND-OMFLP and the heavy-aware
// extension, serialized as JSON. The paper's algorithms are online — each
// arrival freezes a small, well-defined increment of state (duals and
// credits for PD, coin-flip position and open facilities for RAND) — so the
// state is exactly recoverable without replaying the arrival history, which
// is what the engine's checkpoint format v2 builds on.
//
// Derived caches are deliberately NOT serialized: the facility-index nearest
// caches, the cost-table distance rows, PD's live-credit commodity list and
// per-arrival scratch buffers, and RAND's per-point budget caches are pure
// functions of the serialized state (or pure scratch) and rebuild lazily
// with the same tie-breaking (earliest-opened facility wins), so a restored
// instance serves any suffix bit-identically to the original.
//
// All floats survive the round trip exactly: encoding/json emits the
// shortest representation that parses back to the same float64, and every
// serialized quantity is finite (the internal "infinity" sentinel is the
// finite 1e308).

// stateSchema versions the serialized state layouts below; bump on any
// incompatible change.
const stateSchema = 1

// facilityState is one open facility as serialized state. Small facilities
// offer the single commodity E; large facilities (Large true) offer the full
// universe. The explicit flag matters: in a universe of size 1 a large
// facility's configuration equals the singleton's, so the configuration
// alone cannot distinguish them.
type facilityState struct {
	Point int  `json:"p"`
	E     int  `json:"e,omitempty"`
	Large bool `json:"l,omitempty"`
}

// creditState is one recorded bid credit: the request's point and its
// current (possibly lowered) credit value.
type creditState struct {
	Point  int     `json:"p"`
	Credit float64 `json:"c"`
}

// pdState is PD-OMFLP's serialized state.
type pdState struct {
	Schema     int `json:"schema"`
	Universe   int `json:"universe"`
	Candidates int `json:"candidates"`

	Points      []int       `json:"points"`
	DemandIDs   [][]int     `json:"demand_ids"`
	Duals       [][]float64 `json:"duals"`
	FacBoundary []int       `json:"fac_boundary"`

	CreditSmall [][]creditState `json:"credit_small"`
	CreditLarge []creditState   `json:"credit_large"`
	// Bid accumulators; omitted when the instance runs in naive reference
	// mode (they are then recomputed per arrival, never maintained).
	BidSmall [][]float64 `json:"bid_small,omitempty"`
	BidLarge []float64   `json:"bid_large,omitempty"`

	Facilities []facilityState `json:"facilities"`
	Assign     [][]int         `json:"assign"`
}

// MarshalState implements online.StateCodec. It refuses instances running
// with TraceAnalysis: the Lemma 14 analysis history is diagnostic-only and
// deliberately outside the serving-state contract.
func (pd *PDOMFLP) MarshalState() ([]byte, error) {
	if pd.opts.TraceAnalysis {
		return nil, fmt.Errorf("core: PD-OMFLP state marshal does not support TraceAnalysis")
	}
	st := pdState{
		Schema:      stateSchema,
		Universe:    pd.u,
		Candidates:  len(pd.ct.cands),
		Points:      pd.points,
		DemandIDs:   pd.demandIDs,
		Duals:       pd.duals,
		FacBoundary: pd.facBoundary,
		CreditSmall: make([][]creditState, pd.u),
		CreditLarge: creditsToState(pd.creditLarge),
		Facilities:  facilitiesToState(pd.fx),
		Assign:      pd.fx.sol.Assign,
	}
	for e := range pd.creditSmall {
		st.CreditSmall[e] = creditsToState(pd.creditSmall[e])
	}
	if !pd.naiveBids {
		st.BidSmall = pd.bidSmall
		st.BidLarge = pd.bidLarge
	}
	return json.Marshal(&st)
}

// UnmarshalState implements online.StateCodec; see the interface contract —
// the receiver must be freshly constructed with the parameters of the
// instance that was marshaled.
func (pd *PDOMFLP) UnmarshalState(data []byte) error {
	if pd.opts.TraceAnalysis {
		return fmt.Errorf("core: PD-OMFLP state restore does not support TraceAnalysis")
	}
	if len(pd.points) != 0 || len(pd.fx.sol.Facilities) != 0 {
		return fmt.Errorf("core: PD-OMFLP state restore needs a fresh instance")
	}
	var st pdState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: PD-OMFLP state: %v", err)
	}
	if err := checkStateHeader("PD-OMFLP", st.Schema, st.Universe, pd.u, st.Candidates, len(pd.ct.cands)); err != nil {
		return err
	}
	if len(st.CreditSmall) != pd.u {
		return fmt.Errorf("core: PD-OMFLP state has %d credit rows for universe %d", len(st.CreditSmall), pd.u)
	}
	if err := restoreFacilities(pd.fx, st.Facilities); err != nil {
		return err
	}
	pd.fx.sol.Assign = st.Assign
	pd.points = st.Points
	pd.demandIDs = st.DemandIDs
	pd.duals = st.Duals
	pd.facBoundary = st.FacBoundary
	for e := range pd.creditSmall {
		pd.creditSmall[e] = creditsFromState(st.CreditSmall[e])
		if len(pd.creditSmall[e]) > 0 {
			// liveSmall is derived state (the commodities with credits);
			// ascending order here vs first-credit order on a live instance
			// is fine — refresh sweeps treat rows independently.
			pd.liveSmall = append(pd.liveSmall, e)
		}
	}
	pd.creditLarge = creditsFromState(st.CreditLarge)
	// The threshold cache is derived from the bid rows; drop any stale one
	// so serveEvent rebuilds it against the restored state.
	pd.thr = nil
	if pd.naiveBids {
		return nil // reference mode recomputes bids per arrival
	}
	if st.BidLarge != nil {
		// State from an incremental instance: adopt the exact accumulator
		// values (bit-identical continuation).
		if len(st.BidSmall) != pd.u || len(st.BidLarge) != len(pd.ct.cands) {
			return fmt.Errorf("core: PD-OMFLP state bid rows do not match universe/candidates")
		}
		for e, row := range st.BidSmall {
			if row != nil && len(row) != len(pd.ct.cands) {
				return fmt.Errorf("core: PD-OMFLP state bid row %d has %d entries, want %d", e, len(row), len(pd.ct.cands))
			}
			pd.bidSmall[e] = row
		}
		pd.bidLarge = st.BidLarge
		return nil
	}
	// State from a naive reference instance: rebuild the accumulators from
	// the (current) credit values.
	for e, credits := range pd.creditSmall {
		for _, cr := range credits {
			pd.addBidRestored(e, cr)
		}
	}
	for _, cr := range pd.creditLarge {
		pd.addBid(pd.bidLarge, cr.point, cr.credit, nil)
	}
	return nil
}

// addBidRestored folds one restored small credit into commodity e's bid row,
// allocating the row on first use exactly like addCreditSmall.
func (pd *PDOMFLP) addBidRestored(e int, cr pdCredit) {
	row := pd.bidSmall[e]
	if row == nil {
		row = make([]float64, len(pd.ct.cands))
		pd.bidSmall[e] = row
	}
	pd.addBid(row, cr.point, cr.credit, nil)
}

// randState is RAND-OMFLP's serialized state. The rng position is recorded
// as the number of coin flips drawn: a freshly constructed instance with the
// same seed fast-forwards its generator by Draws to resume the identical
// random stream (O(Draws) at a few ns per draw — cheap next to replaying
// arrivals, and the only way to serialize math/rand's opaque source).
type randState struct {
	Schema     int `json:"schema"`
	Universe   int `json:"universe"`
	Candidates int `json:"candidates"`

	Facilities []facilityState `json:"facilities"`
	Assign     [][]int         `json:"assign"`
	Served     int             `json:"served"`
	Draws      int64           `json:"draws"`
}

// MarshalState implements online.StateCodec.
func (ra *RandOMFLP) MarshalState() ([]byte, error) {
	st := randState{
		Schema:     stateSchema,
		Universe:   ra.u,
		Candidates: ra.nCands,
		Facilities: facilitiesToState(ra.fx),
		Assign:     ra.fx.sol.Assign,
		Served:     len(ra.fx.sol.Assign),
		Draws:      ra.draws,
	}
	return json.Marshal(&st)
}

// UnmarshalState implements online.StateCodec; the receiver must be freshly
// constructed with the same space, costs, options and rng seed.
func (ra *RandOMFLP) UnmarshalState(data []byte) error {
	if len(ra.fx.sol.Facilities) != 0 || len(ra.fx.sol.Assign) != 0 || ra.draws != 0 {
		return fmt.Errorf("core: RAND-OMFLP state restore needs a fresh instance")
	}
	var st randState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: RAND-OMFLP state: %v", err)
	}
	if err := checkStateHeader("RAND-OMFLP", st.Schema, st.Universe, ra.u, st.Candidates, ra.nCands); err != nil {
		return err
	}
	if st.Served != len(st.Assign) {
		return fmt.Errorf("core: RAND-OMFLP state served %d requests but carries %d assignments", st.Served, len(st.Assign))
	}
	if err := restoreFacilities(ra.fx, st.Facilities); err != nil {
		return err
	}
	ra.fx.sol.Assign = st.Assign
	for _, f := range st.Facilities {
		if f.Large {
			ra.largeOpen[f.Point] = true
		} else {
			ra.smallOpen[[2]int{f.E, f.Point}] = true
		}
	}
	for i := int64(0); i < st.Draws; i++ {
		ra.rng.Float64()
	}
	ra.draws = st.Draws
	return nil
}

// heavyState is the heavy-aware extension's serialized state: the inner
// PD-OMFLP state, each heavy commodity's OFL state, and the global
// solution-translation bookkeeping. The light/heavy split itself is a pure
// function of the constructor parameters and is re-derived, not serialized.
type heavyState struct {
	Schema   int `json:"schema"`
	Universe int `json:"universe"`

	Inner json.RawMessage `json:"inner"`
	Heavy []heavySubState `json:"heavy,omitempty"`

	Facilities    []heavyFacilityState `json:"facilities"`
	Assign        [][]int              `json:"assign"`
	InnerToGlobal []int                `json:"inner_to_global,omitempty"`
	HeavyFacIdx   []heavyFacIdxState   `json:"heavy_fac_idx,omitempty"`
}

type heavySubState struct {
	E     int             `json:"e"`
	State json.RawMessage `json:"state"`
}

type heavyFacilityState struct {
	Point int   `json:"p"`
	IDs   []int `json:"ids"`
}

type heavyFacIdxState struct {
	E     int `json:"e"`
	Point int `json:"p"`
	Idx   int `json:"i"`
}

// MarshalState implements online.StateCodec.
func (ha *HeavyAware) MarshalState() ([]byte, error) {
	inner, err := ha.inner.MarshalState()
	if err != nil {
		return nil, err
	}
	st := heavyState{
		Schema:        stateSchema,
		Universe:      ha.u,
		Inner:         inner,
		Facilities:    make([]heavyFacilityState, len(ha.sol.Facilities)),
		Assign:        ha.sol.Assign,
		InnerToGlobal: ha.innerToGlobal,
	}
	for i, f := range ha.sol.Facilities {
		st.Facilities[i] = heavyFacilityState{Point: f.Point, IDs: f.Config.IDs()}
	}
	for _, e := range ha.heavy {
		sub, err := ha.heavyA[e].MarshalState()
		if err != nil {
			return nil, err
		}
		st.Heavy = append(st.Heavy, heavySubState{E: e, State: sub})
	}
	for key, idx := range ha.heavyFacIdx { //omflp:orderinvariant — entries are sorted by (E, Point) below before serialization
		st.HeavyFacIdx = append(st.HeavyFacIdx, heavyFacIdxState{E: key[0], Point: key[1], Idx: idx})
	}
	sort.Slice(st.HeavyFacIdx, func(i, j int) bool {
		a, b := st.HeavyFacIdx[i], st.HeavyFacIdx[j]
		if a.E != b.E {
			return a.E < b.E
		}
		return a.Point < b.Point
	})
	return json.Marshal(&st)
}

// UnmarshalState implements online.StateCodec; the receiver must be freshly
// constructed with the same space, costs, options and threshold.
func (ha *HeavyAware) UnmarshalState(data []byte) error {
	if len(ha.sol.Facilities) != 0 || len(ha.sol.Assign) != 0 {
		return fmt.Errorf("core: heavy-aware state restore needs a fresh instance")
	}
	var st heavyState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: heavy-aware state: %v", err)
	}
	if st.Schema != stateSchema {
		return fmt.Errorf("core: heavy-aware state schema %d, want %d", st.Schema, stateSchema)
	}
	if st.Universe != ha.u {
		return fmt.Errorf("core: heavy-aware state universe %d, want %d", st.Universe, ha.u)
	}
	if len(st.Heavy) != len(ha.heavy) {
		return fmt.Errorf("core: heavy-aware state has %d heavy commodities, want %d (different split?)",
			len(st.Heavy), len(ha.heavy))
	}
	if err := ha.inner.UnmarshalState(st.Inner); err != nil {
		return err
	}
	for _, sub := range st.Heavy {
		alg, ok := ha.heavyA[sub.E]
		if !ok {
			return fmt.Errorf("core: heavy-aware state names heavy commodity %d, not heavy here", sub.E)
		}
		if err := alg.UnmarshalState(sub.State); err != nil {
			return err
		}
	}
	for _, f := range st.Facilities {
		ha.sol.Facilities = append(ha.sol.Facilities, instance.Facility{Point: f.Point, Config: commodity.New(f.IDs...)})
	}
	ha.sol.Assign = st.Assign
	ha.innerToGlobal = st.InnerToGlobal
	for _, x := range st.HeavyFacIdx {
		ha.heavyFacIdx[[2]int{x.E, x.Point}] = x.Idx
	}
	return nil
}

// facilitiesToState serializes a facility index's open facilities in opening
// order with explicit small/large kinds.
func facilitiesToState(fx *facilityIndex) []facilityState {
	large := make(map[int]bool, len(fx.large))
	for _, idx := range fx.large {
		large[idx] = true
	}
	out := make([]facilityState, len(fx.sol.Facilities))
	for i, f := range fx.sol.Facilities {
		if large[i] {
			out[i] = facilityState{Point: f.Point, Large: true}
		} else {
			out[i] = facilityState{Point: f.Point, E: f.Config.IDs()[0]}
		}
	}
	return out
}

// restoreFacilities replays the serialized opening sequence through a fresh
// facility index, rebuilding the per-commodity lists (and leaving the
// nearest caches to refill lazily with identical tie-breaking).
func restoreFacilities(fx *facilityIndex, facs []facilityState) error {
	for _, f := range facs {
		if f.Point < 0 || f.Point >= fx.space.Len() {
			return fmt.Errorf("core: state facility at point %d outside space of %d points", f.Point, fx.space.Len())
		}
		if f.Large {
			fx.openLarge(f.Point)
			continue
		}
		if f.E < 0 || f.E >= fx.u {
			return fmt.Errorf("core: state facility for commodity %d outside universe of %d", f.E, fx.u)
		}
		fx.openSmall(f.E, f.Point)
	}
	return nil
}

func creditsToState(credits []pdCredit) []creditState {
	out := make([]creditState, len(credits))
	for i, cr := range credits {
		out[i] = creditState{Point: cr.point, Credit: cr.credit}
	}
	return out
}

func creditsFromState(credits []creditState) []pdCredit {
	out := make([]pdCredit, len(credits))
	for i, cr := range credits {
		out[i] = pdCredit{point: cr.Point, credit: cr.Credit}
	}
	return out
}

func checkStateHeader(alg string, schema, universe, wantU, cands, wantCands int) error {
	if schema != stateSchema {
		return fmt.Errorf("core: %s state schema %d, want %d", alg, schema, stateSchema)
	}
	if universe != wantU {
		return fmt.Errorf("core: %s state universe %d, want %d", alg, universe, wantU)
	}
	if cands != wantCands {
		return fmt.Errorf("core: %s state has %d candidates, want %d", alg, cands, wantCands)
	}
	return nil
}

// Interface conformance (compile-time): the core algorithms and the ofl
// substrates satisfy online.StateCodec.
var (
	_ online.StateCodec = (*PDOMFLP)(nil)
	_ online.StateCodec = (*RandOMFLP)(nil)
	_ online.StateCodec = (*HeavyAware)(nil)
	_ online.StateCodec = (*ofl.FotakisPD)(nil)
	_ online.StateCodec = (*ofl.Meyerson)(nil)
)
