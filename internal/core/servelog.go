package core

import "fmt"

// ServeMode describes how a commodity of a request got served (which
// constraint of Algorithm 1 became tight).
type ServeMode int

// Serve modes, aligned with the constraints of Algorithm 1.
const (
	// ServedExisting: Constraint (1) — connected to an already-open
	// facility offering the commodity.
	ServedExisting ServeMode = iota + 1
	// ServedNewSmall: Constraint (3) — a (surviving) temporary small
	// facility opened for the commodity.
	ServedNewSmall
	// ServedExistingLarge: Constraint (2) — the whole request connected
	// to an already-open large facility.
	ServedExistingLarge
	// ServedNewLarge: Constraint (4) — a new large facility opened and
	// serves the whole request.
	ServedNewLarge
)

func (m ServeMode) String() string {
	switch m {
	case ServedExisting:
		return "existing-facility (1)"
	case ServedNewSmall:
		return "new-small (3)"
	case ServedExistingLarge:
		return "existing-large (2)"
	case ServedNewLarge:
		return "new-large (4)"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ServeEvent records the outcome for one commodity of one request.
type ServeEvent struct {
	Request   int // arrival index
	Commodity int
	Mode      ServeMode
	Facility  int     // facility index in Solution().Facilities
	Dual      float64 // the frozen dual a_re
}

// ServeLog returns the per-commodity outcomes of every request served so
// far. The log is reconstructed from the final assignment and recorded
// duals: commodities linked to a large facility report the large mode
// variants; others distinguish "existing" vs "new" by whether their facility
// was opened during their own arrival.
func (pd *PDOMFLP) ServeLog() []ServeEvent {
	var log []ServeEvent
	sol := pd.fx.sol
	// Track which facility indices were opened by which arrival: facility
	// indices grow monotonically; record the boundary after each arrival.
	// The boundaries slice is maintained in Serve (facBoundary[i] =
	// #facilities after arrival i).
	for ri, ids := range pd.demandIDs {
		links := sol.Assign[ri]
		var largeIdx = -1
		for _, fi := range links {
			if sol.Facilities[fi].Config.Len() == pd.u && pd.u > 1 {
				largeIdx = fi
				break
			}
		}
		var before int
		if ri > 0 {
			before = pd.facBoundary[ri-1]
		}
		after := pd.facBoundary[ri]
		for i, e := range ids {
			ev := ServeEvent{Request: ri, Commodity: e, Dual: pd.duals[ri][i]}
			if largeIdx >= 0 && len(links) == 1 {
				ev.Facility = largeIdx
				if largeIdx >= before && largeIdx < after {
					ev.Mode = ServedNewLarge
				} else {
					ev.Mode = ServedExistingLarge
				}
			} else {
				// Find the linked facility offering e nearest to the
				// request.
				best, bestD := -1, 0.0
				for _, fi := range links {
					if !sol.Facilities[fi].Config.Contains(e) {
						continue
					}
					d := pd.space.Distance(pd.points[ri], sol.Facilities[fi].Point)
					if best < 0 || d < bestD {
						best, bestD = fi, d
					}
				}
				ev.Facility = best
				if best >= before && best < after {
					ev.Mode = ServedNewSmall
				} else {
					ev.Mode = ServedExisting
				}
			}
			log = append(log, ev)
		}
	}
	return log
}
