package core

import (
	"math/rand"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

// heavyTestCost makes commodity u-1 "heavy": its singleton cost is huge
// relative to the per-commodity share of the full configuration.
type heavyTestCost struct {
	u     int
	heavy float64
}

func (h *heavyTestCost) Universe() int { return h.u }
func (h *heavyTestCost) Name() string  { return "heavy-test" }

func (h *heavyTestCost) Cost(m int, sigma commodity.Set) float64 {
	k := sigma.Len()
	if k == 0 {
		return 0
	}
	base := float64(k)
	if sigma.Contains(h.u - 1) {
		base += h.heavy
	}
	return base
}

func TestHeavySplitDetectsHeavyCommodity(t *testing.T) {
	space := metric.SinglePoint()
	costs := &heavyTestCost{u: 5, heavy: 100}
	ha := NewHeavyAware(space, costs, Options{}, 3)
	light, heavy := ha.HeavySplit()
	if len(heavy) != 1 || heavy[0] != 4 {
		t.Fatalf("heavy = %v, want [4]", heavy)
	}
	if len(light) != 4 {
		t.Errorf("light = %v", light)
	}
}

func TestHeavyAwareFeasibleSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	space := metric.RandomEuclidean(rng, 6, 2, 10)
	costs := &heavyTestCost{u: 5, heavy: 40}
	in := &instance.Instance{Space: space, Costs: costs}
	for i := 0; i < 20; i++ {
		in.Requests = append(in.Requests, instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, 5, 1+rng.Intn(5)),
		})
	}
	sol, c, err := online.Run(HeavyFactory(Options{}, 3), in, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 || len(sol.Facilities) == 0 {
		t.Errorf("cost %g, facilities %d", c, len(sol.Facilities))
	}
	// "Large" facilities of the inner instance must never include the
	// heavy commodity (they offer all *light* commodities only).
	for _, f := range sol.Facilities {
		if f.Config.Contains(4) && f.Config.Len() > 1 {
			t.Errorf("facility config %v mixes the heavy commodity into a bundle", f.Config)
		}
	}
}

func TestHeavyAwareAllLightDegeneratesToPD(t *testing.T) {
	// Uniform costs: nothing is heavy; HeavyAware must match plain PD.
	rng := rand.New(rand.NewSource(9))
	space := metric.RandomLine(rng, 5, 10)
	costs := cost.PowerLaw(4, 1, 1)
	in := &instance.Instance{Space: space, Costs: costs}
	for i := 0; i < 15; i++ {
		in.Requests = append(in.Requests, instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, 4, 1+rng.Intn(4)),
		})
	}
	_, cHA, err := online.Run(HeavyFactory(Options{}, 2), in, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	_, cPD, err := online.Run(PDFactory(Options{}), in, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if cHA != cPD {
		t.Errorf("heavy-aware %g != plain PD %g with no heavy commodities", cHA, cPD)
	}
	ha := NewHeavyAware(space, costs, Options{}, 2)
	if _, heavy := ha.HeavySplit(); len(heavy) != 0 {
		t.Errorf("uniform costs marked %v heavy", heavy)
	}
}

func TestHeavyAwareAllHeavyFallsBackToLight(t *testing.T) {
	// theta so tight that everything looks heavy: the constructor must
	// fall back to treating all commodities as light rather than leaving
	// an empty inner instance.
	space := metric.SinglePoint()
	costs := cost.PowerLaw(3, 0, 1) // constant cost: per-commodity share 1/3 < singleton 1
	ha := NewHeavyAware(space, costs, Options{}, 1)
	light, heavy := ha.HeavySplit()
	if len(light) == 0 {
		t.Fatalf("no light commodities: light=%v heavy=%v", light, heavy)
	}
	ha.Serve(instance.Request{Point: 0, Demands: commodity.Full(3)})
	in := &instance.Instance{Space: space, Costs: costs, Requests: []instance.Request{
		{Point: 0, Demands: commodity.Full(3)},
	}}
	if err := ha.Solution().Verify(in); err != nil {
		t.Fatal(err)
	}
}

func TestHeavyAwareBeatsPlainPDWhenHeavyHurts(t *testing.T) {
	// A workload where requests demand light bundles; a heavy commodity
	// appears rarely. Plain PD's large facilities include the heavy
	// commodity and pay its premium every time; HeavyAware avoids that.
	rng := rand.New(rand.NewSource(4))
	space := metric.RandomEuclidean(rng, 8, 2, 4)
	u := 6
	costs := &heavyTestCost{u: u, heavy: 200}
	in := &instance.Instance{Space: space, Costs: costs}
	light := commodity.New(0, 1, 2, 3, 4)
	for i := 0; i < 30; i++ {
		d := commodity.RandomSubsetOf(rng, light, 1+rng.Intn(4))
		if i%10 == 9 {
			d = d.With(u - 1)
		}
		in.Requests = append(in.Requests, instance.Request{Point: rng.Intn(space.Len()), Demands: d})
	}
	_, cHA, err := online.Run(HeavyFactory(Options{}, 3), in, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	_, cPD, err := online.Run(PDFactory(Options{}), in, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if cHA > cPD {
		t.Errorf("heavy-aware %g worse than plain PD %g on heavy-hostile workload", cHA, cPD)
	}
}
