package faults

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestParseAndDeterminism: the same spec yields the same fault schedule —
// two injectors built from one string agree decision for decision.
func TestParseAndDeterminism(t *testing.T) {
	const spec = "seed=7,dial-fail=1/3,probe-flap=1/5"
	a, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 200; i++ {
		da, db := a.DialFail(), b.DialFail()
		if da != db {
			t.Fatalf("decision %d diverged: %v vs %v", i, da, db)
		}
		if da {
			fired++
		}
		if pa, pb := a.ProbeFlap(), b.ProbeFlap(); pa != pb {
			t.Fatalf("probe decision %d diverged: %v vs %v", i, pa, pb)
		}
	}
	if fired == 0 || fired == 200 {
		t.Errorf("dial-fail at 1/3 fired %d/200 times — not a rate", fired)
	}
	if c := a.Counts(); c["dial_fail"] != int64(fired) {
		t.Errorf("counts %v, want dial_fail=%d", c, fired)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"dial-fail=2/3",     // numerator must be 1
		"dial-fail=1/0",     // zero denominator
		"bogus=1/3",         // unknown knob
		"stall=1/3:-5ms",    // negative stall
		"seed",              // not key=value
		"conn-reset=1/3xyz", // trailing junk
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	in, err := Parse("")
	if err != nil || in != nil {
		t.Errorf("empty spec: got (%v, %v), want (nil, nil)", in, err)
	}
}

// TestNilSafe: every hook is a no-op on a nil injector.
func TestNilSafe(t *testing.T) {
	var in *Injector
	if in.DialFail() || in.ProbeFlap() {
		t.Error("nil injector fired")
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := in.WrapConn(c1); got != c1 {
		t.Error("nil injector wrapped a conn")
	}
	if in.Transport(nil) != nil {
		t.Error("nil injector wrapped a transport")
	}
	if in.Counts() != nil {
		t.Error("nil injector reported counts")
	}
}

// TestWrapConnReset: at rate 1/1 every write resets; the peer sees EOF and
// the writer gets a transient (timeout-classified) error.
func TestWrapConnReset(t *testing.T) {
	in := New(Spec{Seed: 3, ConnReset: 1})
	c1, c2 := net.Pipe()
	defer c2.Close()
	fc := in.WrapConn(c1)
	if fc == c1 {
		t.Fatal("conn not wrapped")
	}
	_, err := fc.Write([]byte("hello"))
	var fe *Err
	if !errors.As(err, &fe) || !fe.Timeout() {
		t.Fatalf("write error %v, want transient *Err", err)
	}
	c2.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := c2.Read(make([]byte, 8)); err == nil {
		t.Error("peer read succeeded after injected reset")
	}
	if in.Counts()["conn_reset"] != 1 {
		t.Errorf("counts %v, want one conn_reset", in.Counts())
	}
}

// TestWrapConnPartial: a partial fault writes a strict prefix then errors,
// modelling a torn frame.
func TestWrapConnPartial(t *testing.T) {
	in := New(Spec{Seed: 3, Partial: 1})
	c1, c2 := net.Pipe()
	defer c2.Close()
	fc := in.WrapConn(c1)

	got := make(chan int, 1)
	go func() {
		buf := make([]byte, 64)
		c2.SetReadDeadline(time.Now().Add(time.Second))
		n, _ := c2.Read(buf)
		got <- n
	}()
	payload := []byte("0123456789")
	n, err := fc.Write(payload)
	if err == nil {
		t.Fatal("partial write reported success")
	}
	if n >= len(payload) {
		t.Fatalf("partial write wrote %d of %d", n, len(payload))
	}
	if read := <-got; read != n {
		t.Errorf("peer read %d bytes, writer reported %d", read, n)
	}
}
