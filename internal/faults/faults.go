// Package faults is a deterministic, seed-driven fault injector for the
// cluster's dial, frame and probe paths. It exists so CI (and local chaos
// runs) can prove the failover machinery under repeatable adversity: the
// same spec string and seed always yields the same fault schedule.
//
// A spec is a comma-separated list of knobs:
//
//	seed=7,dial-fail=1/40,conn-reset=1/80,stall=1/60:5ms,partial=1/100,probe-flap=1/50
//
// Each rate is "1/N": every independent decision fires with probability
// 1/N, drawn from one shared seeded PRNG under a mutex (so the schedule is
// a pure function of the spec and the decision order). A nil *Injector is
// valid and injects nothing — callers hook the methods unconditionally.
//
// The package is intentionally outside the deterministic-lint set: it is
// cluster plumbing, not algorithm state, and wall-clock stalls are its job.
package faults

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Spec is a parsed fault specification. Zero rates mean "never".
type Spec struct {
	Seed      int64         // PRNG seed (default 1)
	DialFail  int           // 1/N upstream dials fail outright
	ConnReset int           // 1/N wrapped-conn writes error mid-stream
	Stall     int           // 1/N wrapped-conn writes sleep StallFor first
	StallFor  time.Duration // stall duration (default 5ms)
	Partial   int           // 1/N wrapped-conn writes write half then error
	ProbeFlap int           // 1/N health probes report failure spuriously
}

// Injector draws fault decisions from a seeded PRNG. All methods are safe
// for concurrent use and safe on a nil receiver (never inject).
type Injector struct {
	mu   sync.Mutex
	rng  *rand.Rand
	spec Spec

	dialFails  atomic.Int64
	connResets atomic.Int64
	stalls     atomic.Int64
	partials   atomic.Int64
	probeFlaps atomic.Int64
}

// Parse builds an Injector from a spec string. An empty spec yields a nil
// Injector (inject nothing).
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	s := Spec{Seed: 1, StallFor: 5 * time.Millisecond}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not key=value", kv)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: seed %q: %v", val, err)
			}
			s.Seed = n
		case "dial-fail":
			n, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			s.DialFail = n
		case "conn-reset":
			n, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			s.ConnReset = n
		case "stall":
			rate, dur, err := parseRateDur(val)
			if err != nil {
				return nil, err
			}
			s.Stall = rate
			if dur > 0 {
				s.StallFor = dur
			}
		case "partial":
			n, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			s.Partial = n
		case "probe-flap":
			n, err := parseRate(val)
			if err != nil {
				return nil, err
			}
			s.ProbeFlap = n
		default:
			return nil, fmt.Errorf("faults: unknown knob %q", key)
		}
	}
	return New(s), nil
}

// New builds an Injector from an already-parsed Spec.
func New(s Spec) *Injector {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.StallFor == 0 {
		s.StallFor = 5 * time.Millisecond
	}
	return &Injector{rng: rand.New(rand.NewSource(s.Seed)), spec: s}
}

// parseRate parses "1/N" into N.
func parseRate(val string) (int, error) {
	num, den, ok := strings.Cut(val, "/")
	if !ok || num != "1" {
		return 0, fmt.Errorf("faults: rate %q is not 1/N", val)
	}
	n, err := strconv.Atoi(den)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("faults: rate %q is not 1/N", val)
	}
	return n, nil
}

// parseRateDur parses "1/N" or "1/N:dur".
func parseRateDur(val string) (int, time.Duration, error) {
	rate, durStr, has := strings.Cut(val, ":")
	n, err := parseRate(rate)
	if err != nil {
		return 0, 0, err
	}
	if !has {
		return n, 0, nil
	}
	d, err := time.ParseDuration(durStr)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("faults: stall duration %q: %v", durStr, err)
	}
	return n, d, nil
}

// hit draws one 1/n decision; n <= 0 never fires.
func (in *Injector) hit(n int) bool {
	if in == nil || n <= 0 {
		return false
	}
	in.mu.Lock()
	v := in.rng.Intn(n)
	in.mu.Unlock()
	return v == 0
}

// DialFail reports whether this upstream dial should fail.
func (in *Injector) DialFail() bool {
	if in.hit(in.specOf().DialFail) {
		in.dialFails.Add(1)
		return true
	}
	return false
}

// ProbeFlap reports whether this health probe should spuriously fail.
func (in *Injector) ProbeFlap() bool {
	if in.hit(in.specOf().ProbeFlap) {
		in.probeFlaps.Add(1)
		return true
	}
	return false
}

func (in *Injector) specOf() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}

// Err is the error injected faults surface; it unwraps to a net timeout so
// retry classifiers treat it as transient.
type Err struct{ Kind string }

func (e *Err) Error() string   { return "faults: injected " + e.Kind }
func (e *Err) Timeout() bool   { return true }
func (e *Err) Temporary() bool { return true }

// WrapConn wraps a connection so writes may reset, stall or truncate per
// the spec. A nil Injector (or a spec with no conn faults) returns c
// unchanged.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	if in == nil {
		return c
	}
	s := in.spec
	if s.ConnReset <= 0 && s.Stall <= 0 && s.Partial <= 0 {
		return c
	}
	return &faultConn{Conn: c, in: in}
}

type faultConn struct {
	net.Conn
	in *Injector
}

func (fc *faultConn) Write(p []byte) (int, error) {
	in := fc.in
	if in.hit(in.spec.Stall) {
		in.stalls.Add(1)
		time.Sleep(in.spec.StallFor)
	}
	if in.hit(in.spec.ConnReset) {
		in.connResets.Add(1)
		fc.Conn.Close()
		return 0, &Err{Kind: "conn-reset"}
	}
	if len(p) > 1 && in.hit(in.spec.Partial) {
		in.partials.Add(1)
		n, _ := fc.Conn.Write(p[:len(p)/2])
		fc.Conn.Close()
		return n, &Err{Kind: "partial-frame"}
	}
	return fc.Conn.Write(p)
}

// Transport wraps an http.RoundTripper so requests may fail or stall per
// the dial-fail/stall knobs. A nil Injector returns base unchanged.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if in == nil {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{base: base, in: in}
}

type faultTransport struct {
	base http.RoundTripper
	in   *Injector
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := ft.in
	if in.hit(in.spec.Stall) {
		in.stalls.Add(1)
		time.Sleep(in.spec.StallFor)
	}
	if in.hit(in.spec.DialFail) {
		in.dialFails.Add(1)
		// The request body must be consumed/closed per RoundTripper contract.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &Err{Kind: "dial-fail"}
	}
	return ft.base.RoundTrip(req)
}

// Counts reports how many faults of each kind have fired so far.
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	return map[string]int64{
		"dial_fail":  in.dialFails.Load(),
		"conn_reset": in.connResets.Load(),
		"stall":      in.stalls.Load(),
		"partial":    in.partials.Load(),
		"probe_flap": in.probeFlaps.Load(),
	}
}
