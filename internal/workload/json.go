package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// FileTrace is the JSON serialization of a trace, used by cmd/gentrace and
// cmd/omflp to exchange workloads. Only matrix metrics and size-dependent
// cost tables are serialized — enough to round-trip every generated
// workload.
type FileTrace struct {
	Name        string      `json:"name"`
	Universe    int         `json:"universe"`
	Distances   [][]float64 `json:"distances"`
	CostBySize  []float64   `json:"cost_by_size"`
	Requests    []FileReq   `json:"requests"`
	PlantedCost float64     `json:"planted_cost,omitempty"`
}

// FileReq is one serialized request.
type FileReq struct {
	Point   int   `json:"point"`
	Demands []int `json:"demands"`
}

// WriteJSON serializes the trace. Cost models are sampled into a by-size
// table (using point 0), so point-scaled models lose their non-uniformity;
// an error is returned if the model is detectably non-uniform across points.
func (t *Trace) WriteJSON(w io.Writer) error {
	in := t.Instance
	u := in.Universe()
	n := in.Space.Len()
	ft := FileTrace{
		Name:        t.Name,
		Universe:    u,
		PlantedCost: t.PlantedCost,
	}
	ft.Distances = make([][]float64, n)
	for i := 0; i < n; i++ {
		ft.Distances[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			ft.Distances[i][j] = in.Space.Distance(i, j)
		}
	}
	ft.CostBySize = make([]float64, u+1)
	for k := 1; k <= u; k++ {
		cfg := commodity.Full(k)
		c0 := in.Costs.Cost(0, cfg)
		for m := 1; m < n; m++ {
			if in.Costs.Cost(m, cfg) != c0 { //omflp:floatexact — uniformity probe: any bitwise difference must reject the export
				return fmt.Errorf("workload: cost model is non-uniform across points; JSON export unsupported")
			}
		}
		ft.CostBySize[k] = c0
	}
	for _, r := range in.Requests {
		ft.Requests = append(ft.Requests, FileReq{Point: r.Point, Demands: r.Demands.IDs()})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ft)
}

// ReadJSON deserializes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var ft FileTrace
	if err := json.NewDecoder(r).Decode(&ft); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %v", err)
	}
	if len(ft.CostBySize) != ft.Universe+1 {
		return nil, fmt.Errorf("workload: cost table has %d entries for universe %d", len(ft.CostBySize), ft.Universe)
	}
	table, err := cost.NewTable(ft.CostBySize)
	if err != nil {
		return nil, err
	}
	space := metric.NewMatrix(ft.Distances)
	if err := metric.Check(space); err != nil {
		return nil, err
	}
	in := &instance.Instance{Space: space, Costs: table}
	for _, fr := range ft.Requests {
		in.Requests = append(in.Requests, instance.Request{
			Point:   fr.Point,
			Demands: commodity.New(fr.Demands...),
		})
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &Trace{Instance: in, Name: ft.Name, PlantedCost: ft.PlantedCost}, nil
}
