package workload

import "testing"

// Sub-seeds must be stable (pinned values guard the byte-identical-tables
// contract across refactors) and distinct across streams.
func TestSubSeedStableAndDistinct(t *testing.T) {
	if a, b := SubSeed(1, 0), SubSeed(1, 0); a != b {
		t.Fatalf("SubSeed not deterministic: %d vs %d", a, b)
	}
	seen := map[int64]bool{}
	for parent := int64(0); parent < 4; parent++ {
		for stream := int64(0); stream < 64; stream++ {
			s := SubSeed(parent, stream)
			if seen[s] {
				t.Fatalf("collision at parent=%d stream=%d", parent, stream)
			}
			seen[s] = true
		}
	}
	// Multi-level streams must differ from single-level ones.
	if SubSeed(1, 2, 3) == SubSeed(1, 2) || SubSeed(1, 2, 3) == SubSeed(1, 3) {
		t.Error("nested streams collide with flat streams")
	}
}

func TestNamedSeedStableAndDistinct(t *testing.T) {
	if NamedSeed(7, "tenant-00") != NamedSeed(7, "tenant-00") {
		t.Error("NamedSeed not deterministic")
	}
	if NamedSeed(7, "tenant-00") == NamedSeed(7, "tenant-01") {
		t.Error("NamedSeed collides across names")
	}
	if NamedSeed(7, "tenant-00") == NamedSeed(8, "tenant-00") {
		t.Error("NamedSeed ignores the parent seed")
	}
}

func TestRngStreamsIndependent(t *testing.T) {
	a := Rng(1, 0)
	b := Rng(1, 1)
	equal := true
	for i := 0; i < 8; i++ {
		if a.Int63() != b.Int63() {
			equal = false
		}
	}
	if equal {
		t.Error("distinct streams produced identical sequences")
	}
}
