package workload

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

func TestUniformValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	space := metric.RandomEuclidean(rng, 10, 2, 10)
	tr := Uniform(rng, space, cost.PowerLaw(6, 1, 1), 30, 3)
	if err := tr.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Instance.Requests) != 30 {
		t.Errorf("n = %d", len(tr.Instance.Requests))
	}
	for _, r := range tr.Instance.Requests {
		if r.Demands.Len() > 3 {
			t.Errorf("demand %v exceeds maxDemand", r.Demands)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	space := metric.RandomLine(rng, 5, 10)
	tr := Zipf(rng, space, cost.PowerLaw(16, 1, 1), 300, 2, 1.5)
	if err := tr.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 16)
	for _, r := range tr.Instance.Requests {
		r.Demands.ForEach(func(e int) { counts[e]++ })
	}
	// Commodity 0 must be requested far more often than commodity 15.
	if counts[0] <= counts[15]*2 {
		t.Errorf("no Zipf skew: counts[0]=%d counts[15]=%d", counts[0], counts[15])
	}
}

func TestClusteredPlantedCostIsFeasibleUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := Clustered(rng, cost.PowerLaw(6, 1, 2), 40, 3, 100, 1)
	if err := tr.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.PlantedCost <= 0 {
		t.Fatal("no planted cost")
	}
	// The offline greedy must never exceed the planted solution by much —
	// and the planted cost must be ≥ the (near-)optimal offline cost.
	res := baseline.BestOffline(tr.Instance, 40)
	if res.Cost > tr.PlantedCost*1.5+1e-9 {
		t.Errorf("offline proxy %g far above planted %g", res.Cost, tr.PlantedCost)
	}
}

func TestBundledDemandsAreFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	space := metric.RandomLine(rng, 6, 10)
	tr := Bundled(rng, space, cost.PowerLaw(5, 1, 1), 10)
	for _, r := range tr.Instance.Requests {
		if r.Demands.Len() != 5 {
			t.Errorf("bundled demand %v not full", r.Demands)
		}
	}
}

func TestSinglePointSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := SinglePointSingles(rng, cost.CeilSqrt(16), 4)
	if len(tr.Instance.Requests) != 4 {
		t.Fatalf("n = %d", len(tr.Instance.Requests))
	}
	seen := map[int]bool{}
	for _, r := range tr.Instance.Requests {
		if r.Point != 0 || r.Demands.Len() != 1 {
			t.Errorf("bad request %+v", r)
		}
		e := r.Demands.Min()
		if seen[e] {
			t.Errorf("commodity %d requested twice", e)
		}
		seen[e] = true
	}
	// Count capped at |S|.
	tr2 := SinglePointSingles(rng, cost.CeilSqrt(4), 99)
	if len(tr2.Instance.Requests) != 4 {
		t.Errorf("cap failed: n = %d", len(tr2.Instance.Requests))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	space := metric.RandomLine(rng, 5, 10)
	tr := Uniform(rng, space, cost.PowerLaw(4, 1, 1.5), 12, 3)
	tr.PlantedCost = 7.5

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.PlantedCost != 7.5 {
		t.Errorf("metadata lost: %q %g", got.Name, got.PlantedCost)
	}
	if len(got.Instance.Requests) != len(tr.Instance.Requests) {
		t.Fatalf("request count mismatch")
	}
	for i, r := range tr.Instance.Requests {
		gr := got.Instance.Requests[i]
		if gr.Point != r.Point || !gr.Demands.Equal(r.Demands) {
			t.Errorf("request %d mismatch: %+v vs %+v", i, gr, r)
		}
	}
	// Distances and costs survive.
	if got.Instance.Space.Distance(0, 4) != space.Distance(0, 4) {
		t.Error("distance mismatch after round trip")
	}
	cfg := tr.Instance.Requests[0].Demands
	if got.Instance.Costs.Cost(0, cfg) != tr.Instance.Costs.Cost(0, cfg) {
		t.Error("cost mismatch after round trip")
	}
}

func TestJSONRejectsNonUniformCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	space := metric.RandomLine(rng, 3, 5)
	base := cost.PowerLaw(3, 1, 1)
	scaled := cost.NewPointScaled(base, []float64{1, 2, 3})
	tr := Uniform(rng, space, scaled, 5, 2)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err == nil {
		t.Error("non-uniform cost model serialized without error")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"universe":3,"cost_by_size":[0,1]}`)); err == nil {
		t.Error("mismatched cost table accepted")
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	mk := func() *Trace {
		rng := rand.New(rand.NewSource(42))
		space := metric.RandomEuclidean(rng, 8, 2, 10)
		return Uniform(rng, space, cost.PowerLaw(5, 1, 1), 20, 3)
	}
	a, b := mk(), mk()
	for i := range a.Instance.Requests {
		ra, rb := a.Instance.Requests[i], b.Instance.Requests[i]
		if ra.Point != rb.Point || !ra.Demands.Equal(rb.Demands) {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
	_ = instance.Request{}
}
