package workload

import (
	"hash/fnv"
	"math/rand"
)

// SubSeed derives a decorrelated child seed from a parent seed and a stream
// index using the splitmix64 finalizer. Generators holding their own
// SubSeed-derived rng are independent of one another and of consumption
// order, so whole experiment rows — not just repetitions within a row — can
// fan out across workers while staying byte-identical to a sequential run.
func SubSeed(parent int64, stream ...int64) int64 {
	z := uint64(parent)
	for _, s := range stream {
		z += uint64(s)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}

// Rng returns a fresh *rand.Rand seeded with SubSeed(parent, stream...) —
// the one-liner experiments use to give each generator its own stream.
func Rng(parent int64, stream ...int64) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(parent, stream...)))
}

// NamedSeed derives a child seed from a parent seed and a string identity
// (e.g. an engine tenant name), so named entities get stable, decorrelated
// rng streams regardless of creation order.
func NamedSeed(parent int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return SubSeed(parent, int64(h.Sum64()))
}
