package workload

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/metric"
)

// Property: every generated uniform-cost workload survives a JSON round trip
// bit-exactly (names, planted costs, requests, distances, costs).
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := 1 + rng.Intn(6)
		n := 1 + rng.Intn(20)
		points := 1 + rng.Intn(8)
		var tr *Trace
		switch rng.Intn(3) {
		case 0:
			tr = Uniform(rng, metric.RandomLine(rng, points, 10), cost.PowerLaw(u, rng.Float64()*2, 1), n, u)
		case 1:
			tr = Bundled(rng, metric.RandomEuclidean(rng, points, 2, 10), cost.Linear(u, 1+rng.Float64()), n)
		default:
			tr = Zipf(rng, metric.RandomLine(rng, points, 10), cost.Constant(u, 1+rng.Float64()*3), n, u, 1.2)
		}
		tr.PlantedCost = rng.Float64() * 10

		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if got.Name != tr.Name || got.PlantedCost != tr.PlantedCost {
			return false
		}
		if len(got.Instance.Requests) != len(tr.Instance.Requests) {
			return false
		}
		for i, r := range tr.Instance.Requests {
			gr := got.Instance.Requests[i]
			if gr.Point != r.Point || !gr.Demands.Equal(r.Demands) {
				return false
			}
		}
		for i := 0; i < points; i++ {
			for j := 0; j < points; j++ {
				if got.Instance.Space.Distance(i, j) != tr.Instance.Space.Distance(i, j) {
					return false
				}
			}
		}
		for _, r := range tr.Instance.Requests {
			if got.Instance.Costs.Cost(0, r.Demands) != tr.Instance.Costs.Cost(0, r.Demands) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: generated instances always validate, across every generator.
func TestQuickGeneratorsProduceValidInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := 1 + rng.Intn(8)
		costs := cost.PowerLaw(u, rng.Float64()*2, 0.5+rng.Float64())
		traces := []*Trace{
			Uniform(rng, metric.RandomLine(rng, 1+rng.Intn(6), 10), costs, 1+rng.Intn(15), u),
			Bundled(rng, metric.RandomEuclidean(rng, 1+rng.Intn(6), 2, 10), costs, 1+rng.Intn(10)),
			Clustered(rng, costs, 2+rng.Intn(15), 1+rng.Intn(3), 50, 1),
			SinglePointSingles(rng, costs, 1+rng.Intn(u+3)),
		}
		for _, tr := range traces {
			if tr.Instance.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
