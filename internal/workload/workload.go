// Package workload generates OMFLP request sequences for the experiments:
// uniform random demand, clustered demand with a planted feasible solution
// (giving a certified upper bound on OPT), Zipf-popular commodities, and
// bundled demand that rewards large facilities. All generators are
// deterministic given their *rand.Rand.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// Trace is a generated instance plus provenance. If PlantedCost > 0 it is
// the cost of a known feasible solution, hence an upper bound on OPT.
type Trace struct {
	Instance    *instance.Instance
	Name        string
	PlantedCost float64
}

// Uniform generates n requests at uniform random points, each demanding a
// uniform random non-empty subset of at most maxDemand commodities.
func Uniform(rng *rand.Rand, space metric.Space, costs cost.Model, n, maxDemand int) *Trace {
	u := costs.Universe()
	if maxDemand <= 0 || maxDemand > u {
		maxDemand = u
	}
	in := &instance.Instance{Space: space, Costs: costs}
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(maxDemand)
		in.Requests = append(in.Requests, instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: commodity.RandomSubset(rng, u, k),
		})
	}
	return &Trace{Instance: in, Name: fmt.Sprintf("uniform(n=%d,S=%d)", n, u)}
}

// Zipf generates demand with Zipf-distributed commodity popularity
// (exponent s > 1): popular commodities appear in many requests, the tail
// is rare — the service-catalog shape of the paper's motivating scenario.
func Zipf(rng *rand.Rand, space metric.Space, costs cost.Model, n, maxDemand int, s float64) *Trace {
	u := costs.Universe()
	if maxDemand <= 0 || maxDemand > u {
		maxDemand = u
	}
	zipf := rand.NewZipf(rng, s, 1, uint64(u-1))
	in := &instance.Instance{Space: space, Costs: costs}
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(maxDemand)
		var d commodity.Set
		for d.Len() < k {
			d = d.With(int(zipf.Uint64()))
		}
		in.Requests = append(in.Requests, instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: d,
		})
	}
	return &Trace{Instance: in, Name: fmt.Sprintf("zipf(n=%d,S=%d,s=%.1f)", n, u, s)}
}

// Clustered plants k cluster centers on a fresh 2-d Euclidean space; each
// cluster is assigned a bundle of commodities, and its requests demand
// random subsets of that bundle from nearby points. The planted solution
// opens one facility per cluster (the bundle at the center); its cost
// certifies an upper bound on OPT.
func Clustered(rng *rand.Rand, costs cost.Model, n, k int, width, spread float64) *Trace {
	u := costs.Universe()
	if k < 1 {
		panic("workload: need at least one cluster")
	}
	space, centers := metric.ClusteredEuclidean(rng, n+k, k, width, spread)

	// Assign each cluster a bundle: a random subset of between 1 and u
	// commodities, biased toward larger bundles so large facilities help.
	bundles := make([]commodity.Set, k)
	for c := range bundles {
		size := 1 + rng.Intn(u)
		bundles[c] = commodity.RandomSubset(rng, u, size)
	}

	in := &instance.Instance{Space: space, Costs: costs}
	planted := make([]instance.Facility, k)
	for c := range planted {
		planted[c] = instance.Facility{Point: centers[c], Config: bundles[c]}
	}
	var plantedCost float64
	for c := range planted {
		plantedCost += costs.Cost(planted[c].Point, planted[c].Config)
	}

	// Requests: points k..n+k-1 were generated around random clusters;
	// assign each to its nearest center's bundle.
	for p := k; p < space.Len(); p++ {
		c := 0
		bestD := math.Inf(1)
		for ci, ctr := range centers {
			if d := space.Distance(p, ctr); d < bestD {
				c, bestD = ci, d
			}
		}
		size := 1 + rng.Intn(bundles[c].Len())
		d := commodity.RandomSubsetOf(rng, bundles[c], size)
		in.Requests = append(in.Requests, instance.Request{Point: p, Demands: d})
		plantedCost += bestD // the planted solution connects to the center once
	}
	return &Trace{
		Instance:    in,
		Name:        fmt.Sprintf("clustered(n=%d,k=%d,S=%d)", len(in.Requests), k, u),
		PlantedCost: plantedCost,
	}
}

// Bundled generates requests that each demand the full commodity set at
// random points — the workload separating PD-OMFLP from the per-commodity
// baseline: with subadditive costs, serving bundles from one large facility
// is ~√|S| cheaper than |S| singleton facilities.
func Bundled(rng *rand.Rand, space metric.Space, costs cost.Model, n int) *Trace {
	u := costs.Universe()
	full := commodity.Full(u)
	in := &instance.Instance{Space: space, Costs: costs}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, instance.Request{
			Point:   rng.Intn(space.Len()),
			Demands: full,
		})
	}
	return &Trace{Instance: in, Name: fmt.Sprintf("bundled(n=%d,S=%d)", n, u)}
}

// SinglePointSingles requests distinct single commodities at one point —
// the deterministic skeleton of the Theorem 2 game (commodity order
// shuffled).
func SinglePointSingles(rng *rand.Rand, costs cost.Model, count int) *Trace {
	u := costs.Universe()
	if count > u {
		count = u
	}
	in := &instance.Instance{Space: metric.SinglePoint(), Costs: costs}
	perm := rng.Perm(u)
	for _, e := range perm[:count] {
		in.Requests = append(in.Requests, instance.Request{Point: 0, Demands: commodity.New(e)})
	}
	return &Trace{Instance: in, Name: fmt.Sprintf("single-point(n=%d,S=%d)", count, u)}
}
