package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestMapOrder covers positives (append under range, float accumulation,
// first-match break, min-style selection into outer variables), negatives
// (collect-keys idiom, commutative keyed writes, out-of-scope package), and
// the //omflp:orderinvariant suppression.
func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.MapOrder,
		"repro/internal/core", "repro/internal/server")
}
