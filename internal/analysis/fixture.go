package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadFixture loads analysistest-style fixture packages from a GOPATH-like
// tree: srcDir/<import path>/*.go. Fixture packages may import each other
// (resolved inside srcDir) and the standard library (type-checked from
// source via the go command, declarations only). Returned packages carry
// full type information, ready for Run.
//
// Fixture trees live under testdata/, so the go tool never builds them and
// deliberately broken packages (the positive analyzer cases) cannot leak
// into the module build.
func LoadFixture(srcDir string, paths ...string) ([]*Package, error) {
	fset := token.NewFileSet()

	// Parse the requested fixture packages plus everything they import from
	// inside srcDir, collecting external (standard library) imports.
	parsed := map[string][]*ast.File{}
	order := []string{} // post-order: dependencies before dependents
	stdlib := map[string]bool{}
	var load func(path string, from string) error
	visiting := map[string]bool{}
	load = func(path, from string) error {
		if _, done := parsed[path]; done {
			return nil
		}
		if visiting[path] {
			return fmt.Errorf("analysis: fixture import cycle through %q", path)
		}
		visiting[path] = true
		defer delete(visiting, path)
		dir := filepath.Join(srcDir, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("analysis: fixture %q (imported from %q): %v", path, from, err)
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		files, err := parseFiles(fset, dir, names)
		if err != nil {
			return err
		}
		for _, f := range files {
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				if fixtureDirExists(srcDir, ipath) {
					if err := load(ipath, path); err != nil {
						return err
					}
				} else {
					stdlib[ipath] = true
				}
			}
		}
		parsed[path] = files
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := load(p, "<test>"); err != nil {
			return nil, err
		}
	}

	// Type-check the standard-library closure the fixtures need.
	checked := map[string]*types.Package{"unsafe": types.Unsafe}
	if len(stdlib) > 0 {
		var std []string
		for p := range stdlib {
			std = append(std, p)
		}
		sort.Strings(std)
		listed, err := goList(srcDir, std)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Error != nil {
				return nil, fmt.Errorf("analysis: go list: %s: %s", lp.ImportPath, lp.Error.Err)
			}
			if lp.ImportPath == "unsafe" {
				continue
			}
			files, err := parseFiles(fset, lp.Dir, lp.GoFiles)
			if err != nil {
				return nil, err
			}
			conf := types.Config{
				Importer:         &mapImporter{checked: checked, importMap: lp.ImportMap},
				IgnoreFuncBodies: true,
				FakeImportC:      true,
			}
			tpkg, err := conf.Check(lp.ImportPath, fset, files, nil)
			if err != nil {
				return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
			}
			checked[lp.ImportPath] = tpkg
		}
	}

	// Type-check the fixture packages in dependency order.
	requested := map[string]bool{}
	for _, p := range paths {
		requested[p] = true
	}
	var out []*Package
	for _, path := range order {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: &mapImporter{checked: checked}}
		tpkg, err := conf.Check(path, fset, parsed[path], info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking fixture %s: %v", path, err)
		}
		checked[path] = tpkg
		if requested[path] {
			out = append(out, &Package{
				ImportPath: path,
				Dir:        filepath.Join(srcDir, filepath.FromSlash(path)),
				Fset:       fset,
				Files:      parsed[path],
				Types:      tpkg,
				Info:       info,
			})
		}
	}
	return out, nil
}

func fixtureDirExists(srcDir, path string) bool {
	st, err := os.Stat(filepath.Join(srcDir, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}
