package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one parsed and type-checked target package ready for
// analysis. Dependencies are type-checked too (declarations only) but not
// returned: analyzers run over the packages the user named.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir) with the
// go command, then parses and type-checks them bottom-up — dependencies,
// including the standard library, are checked from source with
// IgnoreFuncBodies, so the loader needs no export data and no modules
// beyond the target module itself.
//
// Only non-test files are loaded. That is deliberate, not a shortcut: the
// _test.go trees are where the exact-equality differential oracles live
// (byte-identity asserts compare floats with == on purpose), so linting
// them against the determinism rules would be noise.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	checked := map[string]*types.Package{"unsafe": types.Unsafe}
	var targets []*Package

	// `go list -deps` emits packages in dependency order: every package
	// appears after all of its imports, so one forward pass suffices.
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.ImportPath == "unsafe" {
			continue
		}
		target := !lp.DepOnly && !lp.Standard
		files, err := parseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		conf := types.Config{
			Importer:         &mapImporter{checked: checked, importMap: lp.ImportMap},
			IgnoreFuncBodies: !target,
			FakeImportC:      true,
		}
		var info *types.Info
		if target {
			info = &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
			}
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
		}
		checked[lp.ImportPath] = tpkg
		if target {
			targets = append(targets, &Package{
				ImportPath: lp.ImportPath,
				Dir:        lp.Dir,
				Fset:       fset,
				Files:      files,
				Types:      tpkg,
				Info:       info,
			})
		}
	}
	return targets, nil
}

// goList runs `go list -deps -json` over the patterns with cgo disabled
// (the pure-Go fallbacks of net, os/user etc. keep the whole dependency
// closure type-checkable from source).
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-json=Dir,ImportPath,Name,GoFiles,Imports,ImportMap,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// mapImporter resolves imports against the already-checked package set,
// applying the importing package's ImportMap (which carries the GOROOT
// vendor mapping, e.g. golang.org/x/net/... -> vendor/golang.org/x/net/...).
type mapImporter struct {
	checked   map[string]*types.Package
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("package %q not loaded (go list -deps should have listed it first)", path)
}
