// Package online is the interface fixture for the statecodec analyzer: the
// same Algorithm/StateCodec shape as the real repro/internal/online, found
// by the analyzer through the import path suffix.
package online

// Algorithm is the fixture's online-algorithm interface.
type Algorithm interface {
	Name() string
	Serve(p int)
}

// StateCodec is the fixture's serializable-state interface.
type StateCodec interface {
	MarshalState() ([]byte, error)
	UnmarshalState(data []byte) error
}
