// Package server is a negative fixture: it is not in the deterministic set,
// so order-sensitive map iteration, float equality and ambient clocks are
// all out of maporder/floateq/detsource scope here.
package server

import "time"

func appendUnderRange(m map[int]float64) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func rawEquality(a, b float64) bool { return a == b }

func wallClock() time.Time { return time.Now() }
