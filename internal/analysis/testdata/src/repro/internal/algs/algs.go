// Package algs is the statecodec fixture: Algorithm implementations with
// complete, incomplete and missing state codecs.
package algs

import (
	"encoding/json"

	"repro/internal/online"
)

// Complete implements Algorithm and a codec covering every field: clean.
type Complete struct {
	served int
	opened []int
}

func (c *Complete) Name() string { return "complete" }
func (c *Complete) Serve(p int)  { c.served++; c.opened = append(c.opened, p) }

type completeState struct {
	Served int   `json:"served"`
	Opened []int `json:"opened"`
}

func (c *Complete) MarshalState() ([]byte, error) {
	return json.Marshal(&completeState{Served: c.served, Opened: c.opened})
}

func (c *Complete) UnmarshalState(data []byte) error {
	var st completeState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	c.served = st.Served
	c.opened = st.Opened
	return nil
}

// NoCodec implements Algorithm but not StateCodec.
type NoCodec struct { // want "NoCodec implements online.Algorithm but not online.StateCodec"
	served int
}

func (n *NoCodec) Name() string { return "nocodec" }
func (n *NoCodec) Serve(p int)  { n.served++ }

// Leaky has a codec, but the credits field — real serving state — is
// marshaled nowhere: the restore-bit-identity bug class.
type Leaky struct {
	served  int
	credits []float64 // want "field Leaky.credits is referenced in neither MarshalState nor UnmarshalState"
	scratch []int     //omflp:nostate — fixture: per-arrival scratch, never read across arrivals
}

func (l *Leaky) Name() string { return "leaky" }
func (l *Leaky) Serve(p int) {
	l.served++
	l.credits = append(l.credits, float64(p))
	l.scratch = l.scratch[:0]
}

type leakyState struct {
	Served int `json:"served"`
}

func (l *Leaky) MarshalState() ([]byte, error) {
	return json.Marshal(&leakyState{Served: l.served})
}

func (l *Leaky) UnmarshalState(data []byte) error {
	var st leakyState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	l.served = st.Served
	return nil
}

// Delegating marshals one field only through a same-package helper — the
// call-graph walk must count that as a reference.
type Delegating struct {
	served int
	duals  []float64
}

func (d *Delegating) Name() string { return "delegating" }
func (d *Delegating) Serve(p int)  { d.served++; d.duals = append(d.duals, float64(p)) }

type delegatingState struct {
	Served int       `json:"served"`
	Duals  []float64 `json:"duals"`
}

func dualsToState(d *Delegating, st *delegatingState) { st.Duals = d.duals }

func (d *Delegating) MarshalState() ([]byte, error) {
	st := delegatingState{Served: d.served}
	dualsToState(d, &st)
	return json.Marshal(&st)
}

func (d *Delegating) UnmarshalState(data []byte) error {
	var st delegatingState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	d.served = st.Served
	d.duals = st.Duals
	return nil
}

// Conformance pins: the fixture's clean types really implement the fixture
// interfaces (so the analyzer's Implements checks exercise the real path).
var (
	_ online.Algorithm  = (*Complete)(nil)
	_ online.Algorithm  = (*NoCodec)(nil)
	_ online.StateCodec = (*Complete)(nil)
	_ online.StateCodec = (*Leaky)(nil)
	_ online.StateCodec = (*Delegating)(nil)
)
