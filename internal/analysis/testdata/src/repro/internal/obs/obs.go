// Package obs is the detsource package-level allowlist fixture: wall-clock
// reads pass in EVERY file of repro/internal/obs without annotation, while
// randomness and environment reads stay flagged — the carve-out covers the
// clock only.
package obs

import (
	"math/rand"
	"os"
	"time"
)

// stampRecord reads the wall clock to timestamp a flight record: allowed
// package-wide, no annotation needed.
func stampRecord() int64 {
	return time.Now().UnixNano()
}

// measure reads the monotonic/wall clock for a latency sample: allowed.
func measure() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// sampleJitter draws from the unseeded global generator: the wallclock
// carve-out does not extend to randomness.
func sampleJitter() int {
	return rand.Intn(16) // want "unseeded global generator"
}

// envKnob reads the environment: still flagged in obs.
func envKnob() string {
	return os.Getenv("OMFLP_TRACE") // want "environment read os.Getenv"
}
