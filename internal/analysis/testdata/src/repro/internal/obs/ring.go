package obs

import "time"

// ringStamp proves the carve-out is package-level, not per-file: a
// wall-clock read in a second file of obs passes too.
func ringStamp() time.Time {
	return time.Now()
}
