package workload

import (
	"math/rand"
	"os"
	"time"
)

func unseededDraw() int {
	return rand.Intn(5) // want "unseeded global generator"
}

func wallClock() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

func envRead() string {
	return os.Getenv("OMFLP_MODE") // want "environment read os.Getenv"
}

// seededDraw flows all randomness from an injected seeded generator:
// allowed (constructors are how seeded generators are built).
func seededDraw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// annotatedClock carries the suppression annotation.
func annotatedClock() time.Time {
	return time.Now() //omflp:wallclock — fixture: feeds a benchmark report only
}
