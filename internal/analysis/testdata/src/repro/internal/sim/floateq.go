package sim

import "math"

const eps = 1e-9

func rawEquality(a, b float64) bool {
	return a == b // want "raw float == comparison"
}

func rawInequality(a float64) bool {
	if a != 0 { // want "raw float != comparison"
		return true
	}
	return false
}

func switchOnFloat(a float64) int {
	switch a { // want "switch on a floating-point value"
	case 0:
		return 0
	}
	return 1
}

// toleranceComparison is the blessed discipline: allowed.
func toleranceComparison(a, b float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a))
}

// intEquality is not a float comparison: allowed.
func intEquality(a, b int) bool {
	return a == b
}

// annotatedExact carries the suppression annotation.
func annotatedExact(a, b float64) bool {
	return a == b //omflp:floatexact — fixture: both sides produced by the identical expression
}
