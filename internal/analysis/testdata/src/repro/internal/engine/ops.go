package engine

import "time"

// opClock is a wall-clock read outside the allowlisted files (engine.go,
// metrics.go): flagged like anywhere else in the deterministic set.
func opClock() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}
