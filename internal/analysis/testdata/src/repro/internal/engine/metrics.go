// Package engine is the detsource allowlist fixture: wall-clock reads in
// metrics.go and engine.go feed the latency/throughput instrumentation and
// pass without annotation; everything else in the package is still checked.
package engine

import (
	"os"
	"time"
)

// instrumentLatency reads the clock on the allowlisted metrics path: allowed.
func instrumentLatency() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// envInMetrics is still an environment read — the allowlist covers the wall
// clock only.
func envInMetrics() string {
	return os.Getenv("OMFLP_SHARDS") // want "environment read os.Getenv"
}
