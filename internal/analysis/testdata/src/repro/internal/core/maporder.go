// Package core is a maporder/floateq/detsource fixture: its import path
// matches the determinism-critical set, so the analyzers treat it exactly
// like the real serving code.
package core

import "sort"

func appendUnderRange(m map[int]float64) []int {
	var out []int
	for k := range m { // want "order-sensitive effect \\(append"
		out = append(out, k+1)
	}
	return out
}

func floatAccumulation(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want "floating-point accumulation"
		sum += v
	}
	return sum
}

func firstMatchSelection(m map[int]bool) int {
	found := -1
	for k := range m { // want "order-sensitive effect"
		if m[k] {
			found = k
			break
		}
	}
	return found
}

func minSelection(m map[int]float64) float64 {
	best := 0.0
	first := true
	for _, v := range m { // want "assignment to a variable declared outside the loop"
		if first || v < best {
			best, first = v, false
		}
	}
	return best
}

// collectKeysIdiom is the recognized sorted-iteration prelude: allowed.
func collectKeysIdiom(m map[int]float64) float64 {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// commutativeCount only counts and writes keyed entries: allowed.
func commutativeCount(m map[int]float64, out map[int]int) int {
	n := 0
	for k := range m {
		n++
		out[k] = n * 0
	}
	return n
}

// annotated is order-sensitive but carries the suppression annotation.
func annotated(m map[int]float64) []int {
	var out []int
	for k := range m { //omflp:orderinvariant — fixture: rationale goes here
		out = append(out, k)
	}
	return out
}
