// Package analysistest runs an analyzer over fixture packages and compares
// its diagnostics against `// want "regex"` expectations embedded in the
// fixture sources — the same convention as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// repository's stdlib-only analysis framework.
//
// A fixture line may carry one or more expectations:
//
//	rand.Intn(5) // want "unseeded"
//
// Each `want` regex must match a diagnostic reported on that line, each
// diagnostic must be claimed by a `want`, and suppression-comment cases are
// simply lines whose annotation silences the analyzer with no `want`
// present.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile(`want\s+("(?:[^"\\]|\\.)*")`)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture packages rooted at srcDir (GOPATH layout:
// srcDir/<import path>/*.go), applies the analyzer, and checks every
// diagnostic against the fixtures' want comments.
func Run(t *testing.T, srcDir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadFixture(srcDir, paths...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*expectation{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.Contains(c.Text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						quoted := m[1]
						pat, err := strconv.Unquote(quoted)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, quoted, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %s: %v", pos, quoted, err)
						}
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], &expectation{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		claimed := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}
