package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestDetSource covers unseeded math/rand draws, wall-clock and environment
// reads (positive), seeded generators and out-of-scope packages (negative),
// and the //omflp:wallclock suppression.
func TestDetSource(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.DetSource,
		"repro/internal/workload", "repro/internal/server")
}

// TestDetSourceAllowlist pins the metrics-path carve-out: wall-clock reads in
// engine.go/metrics.go pass, everything else in the package — and every
// environment read — is still flagged.
func TestDetSourceAllowlist(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.DetSource,
		"repro/internal/engine")
}

// TestDetSourcePkgAllowlist pins the package-level wallclock carve-out for
// internal/obs: clock reads pass in every file of the package without
// annotation, while unseeded randomness and environment reads in obs — and
// wall-clock reads in the algorithm packages (the engine fixture above) —
// stay flagged.
func TestDetSourcePkgAllowlist(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.DetSource,
		"repro/internal/obs")
}
