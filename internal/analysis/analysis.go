// Package analysis implements omflp-lint: a suite of static analyzers that
// enforce, at compile time, the invariants the rest of this repository only
// pins with tests — determinism of the serving paths, the float-tolerance
// discipline, injected randomness/clocks, and complete state codecs.
//
// The framework mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic, an analysistest-style fixture runner) on the
// standard library alone: packages are enumerated with `go list -deps -json`,
// parsed with go/parser and type-checked bottom-up with go/types, so the
// linter builds and runs with nothing but the Go toolchain. Should the repo
// ever vendor x/tools, the analyzers port mechanically: each Run takes a
// *Pass with the same Fset/Files/Pkg/TypesInfo fields and reports through
// the same Reportf.
//
// The four analyzers and the invariants they guard:
//
//   - maporder: no order-sensitive iteration over Go maps in the
//     determinism-critical packages. Map iteration order is randomized per
//     run; a loop body that appends, accumulates floats, selects a
//     first/min match, draws randomness, or writes output under `range m`
//     silently breaks the byte-identical guarantees the differential and
//     golden tests rely on. Provably commutative loops carry a
//     `//omflp:orderinvariant` annotation; the collect-keys-then-sort idiom
//     is recognized and allowed.
//
//   - floateq: no raw ==/!=/switch on floating-point operands in the
//     determinism-critical packages. All float comparisons with semantic
//     content go through the pdEps/pdMarginEps tolerance discipline
//     (internal/core/pd.go); an exact comparison that is genuinely intended
//     (bit-identity oracles, class tags computed by identical expressions)
//     carries `//omflp:floatexact`.
//
//   - detsource: no ambient nondeterminism in the determinism-critical
//     packages: top-level math/rand draws (rand must flow from a seeded
//     *rand.Rand), wall-clock reads (time.Now and friends), and environment
//     reads are all flagged. Clock reads that feed metrics only are
//     allowlisted in internal/engine (engine.go, metrics.go), package-wide
//     in internal/obs (measurement is its whole job), and elsewhere carry
//     `//omflp:wallclock`.
//
//   - statecodec: every concrete online.Algorithm implementation also
//     implements online.StateCodec, and every field of a codec-implementing
//     struct is referenced in its MarshalState/UnmarshalState call graph or
//     explicitly annotated `//omflp:nostate` — the field class that
//     otherwise silently breaks restore(marshal(A)) bit-identity.
//
// Run it locally with `go run ./cmd/omflp-lint ./...`; CI gates on a clean
// run. See CONTRIBUTING.md for the annotation contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape deliberately matches
// golang.org/x/tools/go/analysis.Analyzer so the checks port mechanically.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -analyzers filters.
	Name string
	// Doc is the one-paragraph description shown by `omflp-lint -list`.
	Doc string
	// Suppression is the annotation marker (without the leading "omflp:")
	// that silences this analyzer's diagnostics on the annotated line and
	// the line below it. Empty means the analyzer cannot be suppressed.
	Suppression string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Marker returns the full in-comment annotation ("omflp:<suppression>"), or
// "" when the analyzer is unsuppressable.
func (a *Analyzer) Marker() string {
	if a.Suppression == "" {
		return ""
	}
	return "omflp:" + a.Suppression
}

// A Pass provides one analyzer run over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// markers[filename][line] lists the omflp: annotation markers present
	// on that line (in a comment). Built once per package by the driver.
	markers map[string]map[int][]string

	diagnostics []Diagnostic
}

// A Diagnostic is one finding, addressed by position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless an applicable suppression
// annotation covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.suppressedAt(position) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressedAt reports whether the analyzer's marker annotates the
// diagnostic's line — either as an end-of-line comment on the line itself or
// as a comment on the line directly above.
func (p *Pass) suppressedAt(pos token.Position) bool {
	marker := p.Analyzer.Marker()
	if marker == "" {
		return false
	}
	lines := p.markers[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, m := range lines[l] {
			if m == marker {
				return true
			}
		}
	}
	return false
}

// buildMarkers scans a file's comments for omflp: annotations and records
// the line each one sits on.
func buildMarkers(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "omflp:")
				if idx < 0 {
					continue
				}
				// The marker is the omflp: token up to the first space;
				// anything after it is free-form rationale.
				marker := c.Text[idx:]
				if sp := strings.IndexAny(marker, " \t\n"); sp >= 0 {
					marker = marker[:sp]
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int][]string{}
				}
				out[pos.Filename][pos.Line] = append(out[pos.Filename][pos.Line], marker)
			}
		}
	}
	return out
}

// Run applies the analyzers to the packages and returns all diagnostics in
// (file, line, column, analyzer) order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		markers := buildMarkers(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				markers:   markers,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			diags = append(diags, pass.diagnostics...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, FloatEq, DetSource, StateCodec}
}

// DeterministicPkgs lists the import paths whose serving/experiment code
// must be bit-reproducible: the differential oracles, golden snapshots and
// cross-worker-count identity tests all assert byte equality over outputs
// produced by these packages. maporder, floateq and detsource fire only
// here; statecodec applies module-wide.
var DeterministicPkgs = []string{
	"repro/internal/core",
	"repro/internal/engine",
	"repro/internal/sim",
	"repro/internal/workload",
	"repro/internal/baseline",
	"repro/internal/lowerbound",
	"repro/internal/obs",
}

// deterministic reports whether the package's import path is in the
// determinism-critical set.
func deterministic(path string) bool {
	for _, p := range DeterministicPkgs {
		if path == p {
			return true
		}
	}
	return false
}

// typeIsFloat reports whether t's core type is a floating-point basic type.
func typeIsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
