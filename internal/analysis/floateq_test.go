package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestFloatEq covers ==/!=/switch on float operands (positive), tolerance
// helpers and integer comparisons (negative), the out-of-scope server
// package, and the //omflp:floatexact suppression.
func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.FloatEq,
		"repro/internal/sim", "repro/internal/server")
}
