package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map in the determinism-critical packages
// when the loop body has order-sensitive effects. Go randomizes map
// iteration order per run, so any such loop is a latent break of the
// byte-identical guarantees (PR 1 fixed exactly this bug in
// ablation_candidates). Effects considered order-sensitive:
//
//   - append to a slice (the result order depends on visit order) — except
//     the recognized collect-keys idiom, a body consisting solely of
//     `keys = append(keys, k)`, which is only ever useful followed by a
//     sort;
//   - floating-point accumulation (+=, -=, *=, /=, or x = x + ...): float
//     addition is not associative, so even a commutative-looking sum
//     differs across orders;
//   - assignment to a variable declared outside the loop (first/min-match
//     selection depends on which key wins);
//   - break or return inside the body (first-match semantics);
//   - rng draws (order permutes the random stream);
//   - encoding/printing/IO calls and channel sends (emission order).
//
// Loops that are provably commutative (e.g. integer counting, writes keyed
// by the iteration variable into another map) pass; anything else either
// iterates sorted keys or carries a //omflp:orderinvariant annotation with
// a rationale.
var MapOrder = &Analyzer{
	Name:        "maporder",
	Doc:         "flags order-sensitive iteration over maps in determinism-critical packages",
	Suppression: "orderinvariant",
	Run:         runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isCollectKeysIdiom(pass, rs) {
				return true
			}
			if effect := orderSensitiveEffect(pass, rs); effect != "" {
				pass.Reportf(rs.Pos(), "map iteration with order-sensitive effect (%s); iterate sorted keys or annotate //omflp:orderinvariant with a rationale", effect)
			}
			return true
		})
	}
	return nil
}

// isCollectKeysIdiom recognizes the canonical sorted-iteration prelude: a
// body that only appends the range key to a slice, `for k := range m {
// keys = append(keys, k) }`, to be sorted before the real loop.
func isCollectKeysIdiom(pass *Pass, rs *ast.RangeStmt) bool {
	if rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Tok != token.ASSIGN {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && pass.TypesInfo.Uses[arg] == pass.TypesInfo.Defs[key]
}

// orderSensitiveEffect scans the loop body and returns a description of the
// first order-sensitive effect found, or "".
func orderSensitiveEffect(pass *Pass, rs *ast.RangeStmt) string {
	var effect string
	set := func(e string) {
		if effect == "" {
			effect = e
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if typeIsFloat(pass.TypesInfo.TypeOf(n.Lhs[0])) {
					set("floating-point accumulation")
				}
			case token.ASSIGN:
				if len(n.Rhs) == 1 {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
						if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
							if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); ok && b.Name() == "append" {
								set("append (result order depends on iteration order)")
							}
						}
					}
				}
				for _, lhs := range n.Lhs {
					if assignsOuterVar(pass, rs, lhs) {
						set("assignment to a variable declared outside the loop")
					}
				}
			}
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				set("break (first-match selection)")
			}
		case *ast.ReturnStmt:
			set("return inside the loop (first-match selection)")
		case *ast.SendStmt:
			set("channel send")
		case *ast.CallExpr:
			if e := callEffect(pass, n); e != "" {
				set(e)
			}
		}
		return true
	})
	return effect
}

// assignsOuterVar reports whether lhs plainly assigns a variable declared
// outside the range statement. Index expressions (m2[k] = v) and blank
// identifiers are commutative and skipped.
func assignsOuterVar(pass *Pass, rs *ast.RangeStmt, lhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// callEffect classifies a call inside a map-range body: rng draws and
// output/encoding calls make the loop order-sensitive; appends (outside the
// collect idiom) order their result slice.
func callEffect(pass *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "append" {
			if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
				return "append (result order depends on iteration order)"
			}
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[fun.Sel]; obj != nil {
			if fn, ok := obj.(*types.Func); ok {
				if pkg := fn.Pkg(); pkg != nil {
					switch pkg.Path() {
					case "math/rand", "math/rand/v2":
						return "random draw (permutes the rng stream)"
					case "fmt", "io", "bufio", "encoding/json", "encoding/gob", "encoding/binary", "encoding/csv":
						return "output/encoding call (emission order)"
					}
				}
				// Method draws on a seeded generator still permute its
				// stream: the receiver type decides.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if named := namedOf(sig.Recv().Type()); named != nil {
						if pkg := named.Obj().Pkg(); pkg != nil &&
							(pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") {
							return "random draw (permutes the rng stream)"
						}
					}
				}
			}
		}
	}
	return ""
}

// namedOf unwraps pointers to reach a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
