package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// DetSource bans ambient nondeterminism sources in the determinism-critical
// packages:
//
//   - top-level math/rand (and math/rand/v2) draws — Intn, Float64, Perm,
//     Shuffle, ... on the package's global generator. All randomness must
//     flow from a seeded *rand.Rand handed in by the caller (workload.Rng,
//     online.Factory seeds); constructors (New, NewSource, NewZipf) are
//     allowed since they are how seeded generators are built;
//   - wall-clock reads — time.Now, Since, Until, After, Tick, NewTimer,
//     NewTicker. Clocks must be injected so replays and differential runs
//     are reproducible; reads that feed metrics only are allowlisted in
//     internal/engine (engine.go, metrics.go — the serve-latency and
//     throughput instrumentation), package-wide in internal/obs (the whole
//     package exists to timestamp and measure), and elsewhere carry
//     //omflp:wallclock;
//   - environment reads — os.Getenv, LookupEnv, Environ. Configuration
//     reaches deterministic code through explicit parameters, never
//     ambiently.
var DetSource = &Analyzer{
	Name:        "detsource",
	Doc:         "bans unseeded randomness, wall-clock reads and env reads in determinism-critical packages",
	Suppression: "wallclock",
	Run:         runDetSource,
}

// detSourceAllowlist maps (import path, file base name) pairs whose
// wall-clock reads are accepted without annotation: the engine's metrics
// instrumentation measures real latency by design, and the snapshots the
// determinism tests pin never include those readings.
var detSourceAllowlist = map[[2]string]bool{
	{"repro/internal/engine", "engine.go"}:  true,
	{"repro/internal/engine", "metrics.go"}: true,
}

// detSourcePkgAllowlist lists import paths whose wall-clock reads are
// accepted in every file. internal/obs is measurement infrastructure — its
// histograms, flight records and runtime stats timestamp real events by
// design — yet it still belongs in the deterministic set so maporder,
// floateq and the rand/env halves of this check keep applying to it. The
// allowlist covers the wall clock ONLY: randomness and environment reads in
// obs are flagged like anywhere else.
var detSourcePkgAllowlist = map[string]bool{
	"repro/internal/obs": true,
}

// wallClockFuncs are the time package functions that read (or schedule
// against) the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// envFuncs are the os package functions that read the process environment.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

func runDetSource(pass *Pass) error {
	if !deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		fileBase := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		wallClockAllowed := detSourcePkgAllowlist[pass.Pkg.Path()] ||
			detSourceAllowlist[[2]string{pass.Pkg.Path(), fileBase}]
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil || fn.Pkg() == nil {
				return true // methods are fine: a *rand.Rand receiver is a seeded stream
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(call.Pos(), "top-level %s.%s draws from the unseeded global generator; draw from an injected seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
				}
			case "time":
				if wallClockFuncs[fn.Name()] && !wallClockAllowed {
					pass.Reportf(call.Pos(), "wall-clock read time.%s in a deterministic package; inject the clock, or annotate //omflp:wallclock if the reading feeds metrics/benchmarks only", fn.Name())
				}
			case "os":
				if envFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "environment read os.%s in a deterministic package; pass configuration explicitly", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
