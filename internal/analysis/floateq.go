package analysis

import (
	"go/ast"
	"go/token"
)

// FloatEq flags ==, != and switch on floating-point operands in the
// determinism-critical packages. The tolerance discipline of
// internal/core/pd.go (pdEps for constraint tightness, pdMarginEps for the
// prefilter margin) exists because accumulated rounding makes exact float
// comparison semantically meaningless on the serving paths; a raw == is
// either a bug or an intentional bit-identity check, and the latter carries
// a //omflp:floatexact annotation saying why exactness is sound (e.g. both
// sides are produced by the identical expression).
//
// Comparisons against an untouched-sentinel constant are not special-cased:
// the flagged sites in this repo's history were all accumulator comparisons
// that looked like sentinel checks.
var FloatEq = &Analyzer{
	Name:        "floateq",
	Doc:         "flags raw ==/!=/switch on floats outside the pdEps/pdMarginEps tolerance discipline",
	Suppression: "floatexact",
	Run:         runFloatEq,
}

func runFloatEq(pass *Pass) error {
	if !deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if typeIsFloat(pass.TypesInfo.TypeOf(n.X)) || typeIsFloat(pass.TypesInfo.TypeOf(n.Y)) {
					pass.Reportf(n.OpPos, "raw float %s comparison; use the pdEps/pdMarginEps tolerance discipline or annotate //omflp:floatexact with a rationale", n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && typeIsFloat(pass.TypesInfo.TypeOf(n.Tag)) {
					pass.Reportf(n.Switch, "switch on a floating-point value compares exactly; use the tolerance discipline or annotate //omflp:floatexact")
				}
			}
			return true
		})
	}
	return nil
}
