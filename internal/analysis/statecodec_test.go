package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestStateCodec covers an Algorithm with no codec (flagged at the type), a
// codec that misses a field (flagged at the field), coverage through a
// same-package helper (negative), a complete codec (negative), and the
// //omflp:nostate suppression.
func TestStateCodec(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.StateCodec,
		"repro/internal/algs")
}
