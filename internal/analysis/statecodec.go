package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// StateCodec type-checks the serializable-state contract that checkpoint
// format v2 rests on (module-wide, not just the deterministic set):
//
//  1. every concrete type implementing online.Algorithm must also implement
//     online.StateCodec — an algorithm without a codec silently degrades
//     every tenant using it to full-history replay, and cannot be captured
//     by the engine's sealed base states at all;
//
//  2. every field of a struct whose MarshalState/UnmarshalState are declared
//     in the analyzed package must be referenced somewhere in the
//     same-package call graph of those two methods, or carry a
//     //omflp:nostate annotation explaining why it is excluded (derived
//     cache, constructor parameter, pure scratch). An unreferenced,
//     unannotated field is exactly the bug class that breaks
//     restore(marshal(A)) bit-identity: state added to the struct but
//     forgotten in the codec.
var StateCodec = &Analyzer{
	Name:        "statecodec",
	Doc:         "checks Algorithm impls implement StateCodec and codec structs marshal every non-annotated field",
	Suppression: "nostate",
	Run:         runStateCodec,
}

func runStateCodec(pass *Pass) error {
	algorithmIface := lookupOnlineInterface(pass.Pkg, "Algorithm")
	codecIface := lookupOnlineInterface(pass.Pkg, "StateCodec")
	funcDecls := collectFuncDecls(pass)

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if ok && tn.IsAlias() {
			continue
		}
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		ptr := types.NewPointer(named)

		if algorithmIface != nil && codecIface != nil &&
			(types.Implements(named, algorithmIface) || types.Implements(ptr, algorithmIface)) &&
			!types.Implements(named, codecIface) && !types.Implements(ptr, codecIface) {
			pass.Reportf(tn.Pos(), "%s implements online.Algorithm but not online.StateCodec; checkpointed engines cannot capture it — implement MarshalState/UnmarshalState", name)
			continue
		}

		marshal := localMethodDecl(pass, funcDecls, named, "MarshalState")
		unmarshal := localMethodDecl(pass, funcDecls, named, "UnmarshalState")
		if marshal == nil && unmarshal == nil {
			continue // codec not declared here (or not a codec at all)
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		covered := fieldsReferenced(pass, funcDecls, st, marshal, unmarshal)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if covered[f] {
				continue
			}
			pass.Reportf(f.Pos(), "field %s.%s is referenced in neither MarshalState nor UnmarshalState; serialize it or annotate //omflp:nostate with why it is derived/scratch", name, f.Name())
		}
	}
	return nil
}

// lookupOnlineInterface finds the named interface in the repro/internal/online
// package — the analyzed package itself or one of its direct imports.
func lookupOnlineInterface(pkg *types.Package, name string) *types.Interface {
	candidates := append([]*types.Package{pkg}, pkg.Imports()...)
	for _, p := range candidates {
		if !strings.HasSuffix(p.Path(), "internal/online") {
			continue
		}
		if tn, ok := p.Scope().Lookup(name).(*types.TypeName); ok {
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
	}
	return nil
}

// collectFuncDecls maps every function and method declared in the package to
// its AST declaration.
func collectFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// localMethodDecl returns the AST of named's method with the given name if
// that method is declared in the analyzed package, else nil (promoted or
// foreign methods have no visible body to analyze).
func localMethodDecl(pass *Pass, decls map[*types.Func]*ast.FuncDecl, named *types.Named, name string) *ast.FuncDecl {
	sel := types.NewMethodSet(types.NewPointer(named)).Lookup(pass.Pkg, name)
	if sel == nil {
		return nil
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return nil
	}
	return decls[fn]
}

// fieldsReferenced walks the same-package static call graph rooted at the
// marshal/unmarshal methods and records which fields of st are selected
// anywhere in it. Helper functions the codec delegates to (creditsToState,
// facilitiesToState, ...) therefore count, as does passing a field to a
// helper at the call site.
func fieldsReferenced(pass *Pass, decls map[*types.Func]*ast.FuncDecl, st *types.Struct, roots ...*ast.FuncDecl) map[*types.Var]bool {
	fieldSet := map[*types.Var]bool{}
	for i := 0; i < st.NumFields(); i++ {
		fieldSet[st.Field(i)] = true
	}
	covered := map[*types.Var]bool{}
	visited := map[*ast.FuncDecl]bool{}
	var work []*ast.FuncDecl
	for _, r := range roots {
		if r != nil {
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		fd := work[len(work)-1]
		work = work[:len(work)-1]
		if visited[fd] || fd.Body == nil {
			continue
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if f, ok := sel.Obj().(*types.Var); ok && fieldSet[f] {
						covered[f] = true
					}
				}
				// A method call on a receiver extends the call graph too;
				// resolve it below via Uses.
				if fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func); ok && fn.Pkg() == pass.Pkg {
					if d, ok := decls[fn]; ok {
						work = append(work, d)
					}
				}
			case *ast.Ident:
				if fn, ok := pass.TypesInfo.Uses[n].(*types.Func); ok && fn.Pkg() == pass.Pkg {
					if d, ok := decls[fn]; ok {
						work = append(work, d)
					}
				}
			}
			return true
		})
	}
	return covered
}
