package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(workers, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 20 {
			t.Fatalf("workers=%d: len %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("Map(.., 0, ..) = %v, %v", got, err)
	}
}

func TestMapFirstErrorByIndexWins(t *testing.T) {
	for _, workers := range []int{1, 8} {
		_, err := Map(workers, 50, func(i int) (int, error) {
			if i%10 == 3 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom 3" {
			t.Errorf("workers=%d: err = %v, want boom 3", workers, err)
		}
	}
}

func TestMapRunsEverythingConcurrently(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(4, 100, func(i int) (struct{}, error) {
		ran.Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Errorf("ran %d of 100", ran.Load())
	}
}

func TestMeanOfMatchesSequentialSum(t *testing.T) {
	vals := make([]float64, 257)
	for i := range vals {
		vals[i] = 1.0 / float64(i+3)
	}
	var want float64
	for _, v := range vals {
		want += v
	}
	want /= float64(len(vals))
	for _, workers := range []int{1, 2, 16} {
		got, err := MeanOf(workers, len(vals), func(i int) (float64, error) { return vals[i], nil })
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d: mean %g != sequential %g (must be bit-identical)", workers, got, want)
		}
	}
}

func TestMeanOfError(t *testing.T) {
	if _, err := MeanOf(2, 5, func(i int) (float64, error) { return 0, errors.New("x") }); err == nil {
		t.Error("error swallowed")
	}
}

func TestMeanOfRejectsEmpty(t *testing.T) {
	if v, err := MeanOf(2, 0, func(i int) (float64, error) { return 1, nil }); err == nil {
		t.Errorf("MeanOf over 0 items returned %g with nil error, want error (NaN guard)", v)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3", got)
	}
	if got := Workers(-2, 0); got != 1 {
		t.Errorf("Workers(-2, 0) = %d, want 1", got)
	}
}
