// Package par is the worker pool behind the experiment harness: it fans
// independent repetitions out across goroutines and hands the results back
// in index order, so callers that reduce sequentially (sums, table rows)
// produce output byte-identical to a fully sequential run regardless of the
// worker count. Determinism is the caller's side of the contract: fn(i) must
// depend only on i (derive per-index rngs from per-index seeds — never share
// an rng across indices).
package par

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values < 1 mean GOMAXPROCS, and
// the count is capped at n since more workers than items is pure overhead.
func Workers(workers, n int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(0..n-1) across at most `workers` goroutines (< 1 meaning
// GOMAXPROCS) and returns the results in index order. On error, workers
// stop claiming new indices, in-flight calls drain, and the lowest-index
// error observed is returned with nil results. With workers == 1, or n < 2,
// fn runs inline on the calling goroutine in index order.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	var (
		next    atomic.Int64
		errored atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstID = n // lowest index that errored
		firstE  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !errored.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					errored.Store(true)
					mu.Lock()
					if i < firstID {
						firstID, firstE = i, err
					}
					mu.Unlock()
					return
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		return nil, firstE
	}
	return results, nil
}

// MeanOf maps fn over [0, n) in parallel and returns the mean of the
// results, summed in index order (so the float reduction is identical for
// every worker count). n < 1 is an error — a mean over nothing is NaN, and
// silently returning it would poison report tables downstream.
func MeanOf(workers, n int, fn func(i int) (float64, error)) (float64, error) {
	if n < 1 {
		return 0, errors.New("par: MeanOf needs at least one item")
	}
	vals, err := Map(workers, n, fn)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(n), nil
}
