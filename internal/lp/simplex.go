// Package lp provides a from-scratch dense linear programming solver (two-
// phase primal simplex with Bland's rule) and a builder for the OMFLP linear
// program of Section 1.1. The paper's entire analysis is LP duality: the
// primal covers requests with configured facilities, the dual raises
// per-commodity request variables a_re against facility budgets. Solving the
// relaxation exactly (for small universes, where the configuration family is
// complete) yields true lower bounds on OPT — the reference the empirical
// competitive ratios are measured against in the lpgap experiment.
package lp

import (
	"fmt"
	"math"
)

// Relation of a linear constraint.
type Relation int

// Constraint relations.
const (
	LE Relation = iota // Σ a_i x_i ≤ b
	GE                 // Σ a_i x_i ≥ b
	EQ                 // Σ a_i x_i = b
)

// Problem is a linear program: minimize c·x subject to linear constraints
// and x ≥ 0. Build it incrementally; Solve returns the optimum.
type Problem struct {
	obj  []float64 // objective coefficients per variable
	rows []row
	name []string
}

type row struct {
	coeffs map[int]float64
	rel    Relation
	rhs    float64
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// AddVariable appends a variable with the given objective coefficient and
// returns its index. Variables are implicitly ≥ 0.
func (p *Problem) AddVariable(objCoeff float64, name string) int {
	p.obj = append(p.obj, objCoeff)
	p.name = append(p.name, name)
	return len(p.obj) - 1
}

// AddConstraint adds Σ coeffs[v]·x_v REL rhs. Unknown variable indices are an
// error at Solve time; coefficients map from variable index.
func (p *Problem) AddConstraint(coeffs map[int]float64, rel Relation, rhs float64) {
	cp := make(map[int]float64, len(coeffs))
	for v, c := range coeffs {
		if c != 0 {
			cp[v] = c
		}
	}
	p.rows = append(p.rows, row{coeffs: cp, rel: rel, rhs: rhs})
}

// NumVariables returns the number of declared variables.
func (p *Problem) NumVariables() int { return len(p.obj) }

// NumConstraints returns the number of constraints.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// Solution of a solved LP.
type Solution struct {
	Objective float64
	X         []float64
}

// Status of a solve attempt.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

const simplexEps = 1e-9

// Solve runs two-phase primal simplex. It returns the status and, for
// Optimal, the solution.
func (p *Problem) Solve() (Status, *Solution, error) {
	n := len(p.obj)
	for _, r := range p.rows {
		for v := range r.coeffs {
			if v < 0 || v >= n {
				return Infeasible, nil, fmt.Errorf("lp: constraint references unknown variable %d", v)
			}
		}
	}

	// Standard form: flip rows to non-negative rhs, add slack (LE) or
	// surplus (GE) variables, then artificials where no natural basis
	// column exists.
	m := len(p.rows)
	type stdRow struct {
		coeffs map[int]float64
		rhs    float64
	}
	rows := make([]stdRow, m)
	next := n // next variable index to allocate
	slackOf := make([]int, m)
	for i := range slackOf {
		slackOf[i] = -1
	}
	for i, r := range p.rows {
		coeffs := make(map[int]float64, len(r.coeffs)+1)
		for v, c := range r.coeffs {
			coeffs[v] = c
		}
		rhs := r.rhs
		rel := r.rel
		if rhs < 0 {
			for v := range coeffs {
				coeffs[v] = -coeffs[v]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			coeffs[next] = 1 // slack; natural basis column
			slackOf[i] = next
			next++
		case GE:
			coeffs[next] = -1 // surplus
			next++
		}
		rows[i] = stdRow{coeffs: coeffs, rhs: rhs}
	}

	// Artificials for rows without a usable basis column.
	totalVars := next
	basis := make([]int, m)
	artificial := map[int]bool{}
	for i := range rows {
		if slackOf[i] >= 0 {
			basis[i] = slackOf[i]
			continue
		}
		a := totalVars
		totalVars++
		rows[i].coeffs[a] = 1
		basis[i] = a
		artificial[a] = true
	}

	// Dense tableau: m rows × totalVars columns plus rhs.
	tab := make([][]float64, m)
	rhs := make([]float64, m)
	for i, r := range rows {
		tab[i] = make([]float64, totalVars)
		for v, c := range r.coeffs {
			tab[i][v] = c
		}
		rhs[i] = r.rhs
	}

	// Phase 1: minimize the sum of artificials.
	if len(artificial) > 0 {
		objP1 := make([]float64, totalVars)
		for a := range artificial {
			objP1[a] = 1
		}
		val, status := runSimplex(tab, rhs, basis, objP1)
		if status == Unbounded {
			return Infeasible, nil, fmt.Errorf("lp: phase 1 unbounded (internal error)")
		}
		if val > simplexEps {
			return Infeasible, nil, nil
		}
		// Drive any artificial still in the basis out (degenerate rows).
		for i, b := range basis {
			if !artificial[b] {
				continue
			}
			pivoted := false
			for v := 0; v < totalVars; v++ {
				if artificial[v] {
					continue
				}
				if math.Abs(tab[i][v]) > simplexEps {
					pivot(tab, rhs, basis, i, v)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is redundant; leave the artificial at value 0.
				_ = i
			}
		}
	}

	// Phase 2: original objective (artificials pinned by zeroing their
	// columns' eligibility — we simply forbid them as entering variables).
	objP2 := make([]float64, totalVars)
	copy(objP2, p.obj)
	val, status := runSimplexFiltered(tab, rhs, basis, objP2, artificial)
	if status == Unbounded {
		return Unbounded, nil, nil
	}
	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = rhs[i]
		}
	}
	return Optimal, &Solution{Objective: val, X: x}, nil
}

// runSimplex minimizes obj over the current tableau (no forbidden columns).
func runSimplex(tab [][]float64, rhs []float64, basis []int, obj []float64) (float64, Status) {
	return runSimplexFiltered(tab, rhs, basis, obj, nil)
}

// runSimplexFiltered minimizes obj, never letting variables in `forbidden`
// enter the basis. Bland's rule guarantees termination.
func runSimplexFiltered(tab [][]float64, rhs []float64, basis []int, obj []float64, forbidden map[int]bool) (float64, Status) {
	m := len(tab)
	if m == 0 {
		return 0, Optimal
	}
	nv := len(tab[0])
	// y = simplex multipliers implied by the basis: reduced cost of v is
	// obj[v] − Σ_i y_i tab[i][v] where y solves obj over basis columns.
	// With an explicit tableau we instead keep the tableau in "basis =
	// identity" form by pivoting, so the reduced costs are obj[v] −
	// Σ_i obj[basis[i]]·tab[i][v].
	for iter := 0; ; iter++ {
		if iter > 10000*(nv+m) {
			// Bland's rule makes cycling impossible; this guards against
			// numerical livelock on pathological inputs.
			return 0, Unbounded
		}
		// Entering variable: smallest index with negative reduced cost.
		enter := -1
		for v := 0; v < nv; v++ {
			if forbidden != nil && forbidden[v] {
				continue
			}
			rc := obj[v]
			for i := 0; i < m; i++ {
				if cb := obj[basis[i]]; cb != 0 {
					rc -= cb * tab[i][v]
				}
			}
			if rc < -simplexEps {
				enter = v
				break
			}
		}
		if enter < 0 {
			// Optimal: objective value = Σ obj[basis[i]]·rhs[i].
			var val float64
			for i := 0; i < m; i++ {
				val += obj[basis[i]] * rhs[i]
			}
			return val, Optimal
		}
		// Leaving row: min ratio, ties by smallest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > simplexEps {
				ratio := rhs[i] / tab[i][enter]
				if ratio < bestRatio-simplexEps ||
					(math.Abs(ratio-bestRatio) <= simplexEps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, Unbounded
		}
		pivot(tab, rhs, basis, leave, enter)
	}
}

// pivot performs a Gauss–Jordan pivot on (row, col) and updates the basis.
func pivot(tab [][]float64, rhs []float64, basis []int, row, col int) {
	m := len(tab)
	nv := len(tab[row])
	pv := tab[row][col]
	for v := 0; v < nv; v++ {
		tab[row][v] /= pv
	}
	rhs[row] /= pv
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for v := 0; v < nv; v++ {
			tab[i][v] -= f * tab[row][v]
		}
		rhs[i] -= f * rhs[row]
	}
	basis[row] = col
}
