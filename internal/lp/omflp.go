package lp

import (
	"fmt"
	"math"

	"repro/internal/commodity"
	"repro/internal/instance"
)

// OMFLPRelaxation builds and solves the simplified LP relaxation of
// Section 1.1 over a configuration family:
//
//	min  Σ_{m,σ} f_m^σ y_m^σ + Σ_{m,σ,r} d(m,r) x_{mr}^σ
//	s.t. Σ_{m, σ∋e} x_{mr}^σ ≥ 1   ∀r, ∀e ∈ s_r
//	     x_{mr}^σ ≤ y_m^σ          ∀m, σ, r
//	     x, y ≥ 0
//
// When the family contains every non-empty subset of S (universes ≤
// maxFullEnum), the LP value is a true lower bound on the integral OPT.
// Larger universes use a restricted family, in which case the value is only
// a lower bound on the restricted ILP — the report flags this.
type RelaxationResult struct {
	Value    float64
	Exact    bool // true when the configuration family was complete
	Configs  int
	Vars     int
	Rows     int
	Solution *Solution
}

// maxFullEnum mirrors the exact offline solver's threshold: up to this
// universe size every subset is enumerated.
const maxFullEnum = 6

// OMFLPRelaxation solves the LP relaxation for the instance. The x
// variables are restricted to (m, σ, r) triples with σ ∩ s_r ≠ ∅ (others
// never help), keeping the LP compact.
func OMFLPRelaxation(in *instance.Instance) (*RelaxationResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	u := in.Universe()
	var family []commodity.Set
	exact := u <= maxFullEnum
	if exact {
		family = commodity.AllSubsets(u)
	} else {
		seen := map[string]commodity.Set{}
		for e := 0; e < u; e++ {
			s := commodity.New(e)
			seen[s.Key()] = s
		}
		full := commodity.Full(u)
		seen[full.Key()] = full
		for _, r := range in.Requests {
			seen[r.Demands.Key()] = r.Demands
		}
		for _, s := range seen {
			family = append(family, s)
		}
		family = commodity.Sorted(family)
	}

	p := NewProblem()
	nPoints := in.Space.Len()

	// y variables.
	yIdx := make([][]int, nPoints) // [m][configIdx]
	for m := 0; m < nPoints; m++ {
		yIdx[m] = make([]int, len(family))
		for ci, cfg := range family {
			yIdx[m][ci] = p.AddVariable(in.Costs.Cost(m, cfg), fmt.Sprintf("y[%d,%s]", m, cfg))
		}
	}
	// x variables (sparse: only configs intersecting the request demand).
	type xKey struct{ m, ci, r int }
	xIdx := map[xKey]int{}
	for ri, r := range in.Requests {
		for m := 0; m < nPoints; m++ {
			d := in.Space.Distance(m, r.Point)
			for ci, cfg := range family {
				if !cfg.Intersects(r.Demands) {
					continue
				}
				xIdx[xKey{m, ci, ri}] = p.AddVariable(d, fmt.Sprintf("x[%d,%s,%d]", m, cfg, ri))
			}
		}
	}

	// Coverage constraints: Σ_{m, σ∋e} x ≥ 1.
	for ri, r := range in.Requests {
		ids := r.Demands.IDs()
		for _, e := range ids {
			coeffs := map[int]float64{}
			for m := 0; m < nPoints; m++ {
				for ci, cfg := range family {
					if !cfg.Contains(e) {
						continue
					}
					if v, ok := xIdx[xKey{m, ci, ri}]; ok {
						coeffs[v] = 1
					}
				}
			}
			p.AddConstraint(coeffs, GE, 1)
		}
	}
	// Capacity constraints: x ≤ y.
	for k, xv := range xIdx {
		p.AddConstraint(map[int]float64{xv: 1, yIdx[k.m][k.ci]: -1}, LE, 0)
	}

	status, sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	if status != Optimal {
		return nil, fmt.Errorf("lp: OMFLP relaxation %v", status)
	}
	return &RelaxationResult{
		Value:    sol.Objective,
		Exact:    exact,
		Configs:  len(family),
		Vars:     p.NumVariables(),
		Rows:     p.NumConstraints(),
		Solution: sol,
	}, nil
}

// DualObjective evaluates the simplified dual objective Σ_r Σ_{e∈s_r} a_re
// for externally produced dual values (e.g. PD-OMFLP's γ-scaled duals) and
// reports whether they satisfy every dual constraint over the given family:
//
//	Σ_r ( Σ_{e∈s_r∩σ} a_re − d(m,r) )_+ ≤ f_m^σ
//
// Feasible duals certify DualObjective ≤ LP ≤ OPT (weak duality).
func DualObjective(in *instance.Instance, duals [][]float64, demandIDs [][]int, points []int, family []commodity.Set, tol float64) (float64, bool) {
	var obj float64
	for ri := range duals {
		for i := range duals[ri] {
			obj += duals[ri][i]
		}
	}
	for m := 0; m < in.Space.Len(); m++ {
		for _, sigma := range family {
			var lhs float64
			for ri := range duals {
				var sum float64
				for i, e := range demandIDs[ri] {
					if sigma.Contains(e) {
						sum += duals[ri][i]
					}
				}
				if v := sum - in.Space.Distance(m, points[ri]); v > 0 {
					lhs += v
				}
			}
			if lhs > in.Costs.Cost(m, sigma)+tol {
				return obj, false
			}
		}
	}
	return obj, true
}

// IntegralityGap computes exactOPT / LP for a small instance given the exact
// optimum (from the branch-and-bound solver). Returns NaN when the LP value
// is ~0 (both costs zero).
func IntegralityGap(exactOPT, lpValue float64) float64 {
	if lpValue < 1e-12 {
		return math.NaN()
	}
	return exactOPT / lpValue
}
