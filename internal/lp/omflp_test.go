package lp_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"

	"repro/internal/baseline"
	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

func tinyInstance(rng *rand.Rand) *instance.Instance {
	u := 2 + rng.Intn(3)
	in := &instance.Instance{
		Space: metric.RandomLine(rng, 2+rng.Intn(3), 8),
		Costs: cost.PowerLaw(u, 1, 1+rng.Float64()),
	}
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, instance.Request{
			Point:   rng.Intn(in.Space.Len()),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
	}
	return in
}

func TestRelaxationOnKnownInstance(t *testing.T) {
	// Single point, two singleton requests, sqrt cost: the LP can open
	// y^{0,1} = 1 for √2 — which is also integral OPT here.
	in := &instance.Instance{
		Space: metric.SinglePoint(),
		Costs: cost.PowerLaw(2, 1, 1),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0)},
			{Point: 0, Demands: commodity.New(1)},
		},
	}
	res, err := lp.OMFLPRelaxation(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Error("family should be complete for |S|=2")
	}
	if math.Abs(res.Value-math.Sqrt2) > 1e-6 {
		t.Errorf("LP value = %g, want √2", res.Value)
	}
}

func TestRelaxationLowerBoundsExactOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		in := tinyInstance(rng)
		res, err := lp.OMFLPRelaxation(in)
		if err != nil {
			t.Fatal(err)
		}
		exact := baseline.ExactSmall(in, 4)
		if res.Value > exact.Cost+1e-6 {
			t.Errorf("trial %d: LP %g exceeds exact OPT %g", trial, res.Value, exact.Cost)
		}
		gap := lp.IntegralityGap(exact.Cost, res.Value)
		if !math.IsNaN(gap) && gap < 1-1e-9 {
			t.Errorf("trial %d: integrality gap %g < 1", trial, gap)
		}
	}
}

func TestRelaxationRestrictedFamilyFlagged(t *testing.T) {
	in := &instance.Instance{
		Space: metric.SinglePoint(),
		Costs: cost.PowerLaw(10, 1, 1), // u=10 > maxFullEnum
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0, 9)},
		},
	}
	res, err := lp.OMFLPRelaxation(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("restricted family reported as exact")
	}
	if res.Value <= 0 {
		t.Errorf("LP value = %g", res.Value)
	}
}

func TestPDGammaScaledDualsAreLPFeasible(t *testing.T) {
	// The γ-scaled PD duals must be feasible for the dual LP, certifying
	// γ·Σa ≤ LP ≤ OPT — the executable version of Corollary 17 + weak
	// duality against the LP value.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		in := tinyInstance(rng)
		pd := core.NewPDOMFLP(in.Space, in.Costs, core.Options{})
		for _, r := range in.Requests {
			pd.Serve(r)
		}
		ids, duals, points := pd.Duals()
		gamma := core.Gamma(in.Universe(), len(in.Requests))
		scaled := make([][]float64, len(duals))
		for i := range duals {
			scaled[i] = make([]float64, len(duals[i]))
			for j := range duals[i] {
				scaled[i][j] = gamma * duals[i][j]
			}
		}
		family := commodity.AllSubsets(in.Universe())
		obj, feasible := lp.DualObjective(in, scaled, ids, points, family, 1e-7)
		if !feasible {
			t.Fatalf("trial %d: scaled duals infeasible for the dual LP", trial)
		}
		res, err := lp.OMFLPRelaxation(in)
		if err != nil {
			t.Fatal(err)
		}
		if obj > res.Value+1e-6 {
			t.Errorf("trial %d: dual objective %g exceeds LP value %g (weak duality broken)",
				trial, obj, res.Value)
		}
	}
}

func TestDualObjectiveDetectsInfeasibility(t *testing.T) {
	in := &instance.Instance{
		Space: metric.SinglePoint(),
		Costs: cost.PowerLaw(2, 1, 1),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0)},
		},
	}
	// A dual of 100 on a facility of cost 1 is blatantly infeasible.
	_, feasible := lp.DualObjective(in, [][]float64{{100}}, [][]int{{0}}, []int{0},
		commodity.AllSubsets(2), 1e-9)
	if feasible {
		t.Error("infeasible duals accepted")
	}
}

// Property: LP ≤ exact OPT ≤ offline proxy on random tiny instances — the
// full sandwich that validates solver, exact search and proxies against
// each other.
func TestQuickSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		res, err := lp.OMFLPRelaxation(in)
		if err != nil {
			return false
		}
		exact := baseline.ExactSmall(in, 4)
		proxy := baseline.BestOffline(in, 20)
		return res.Value <= exact.Cost+1e-6 && exact.Cost <= proxy.Cost+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOMFLPRelaxation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := tinyInstance(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lp.OMFLPRelaxation(in); err != nil {
			b.Fatal(err)
		}
	}
}
