package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	status, sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if status != Optimal {
		t.Fatalf("status = %v, want optimal", status)
	}
	return sol
}

func TestSimplexTextbook(t *testing.T) {
	// min -3x - 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=-36.
	p := NewProblem()
	x := p.AddVariable(-3, "x")
	y := p.AddVariable(-5, "y")
	p.AddConstraint(map[int]float64{x: 1}, LE, 4)
	p.AddConstraint(map[int]float64{y: 2}, LE, 12)
	p.AddConstraint(map[int]float64{x: 3, y: 2}, LE, 18)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+36) > 1e-9 {
		t.Errorf("objective = %g, want -36", sol.Objective)
	}
	if math.Abs(sol.X[x]-2) > 1e-9 || math.Abs(sol.X[y]-6) > 1e-9 {
		t.Errorf("x = %v", sol.X)
	}
}

func TestSimplexGEConstraints(t *testing.T) {
	// min 2a + 3b s.t. a + b ≥ 4, a ≥ 1 → a=4, b=0, obj=8.
	p := NewProblem()
	a := p.AddVariable(2, "a")
	b := p.AddVariable(3, "b")
	p.AddConstraint(map[int]float64{a: 1, b: 1}, GE, 4)
	p.AddConstraint(map[int]float64{a: 1}, GE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-8) > 1e-9 {
		t.Errorf("objective = %g, want 8", sol.Objective)
	}
}

func TestSimplexEquality(t *testing.T) {
	// min x + y s.t. x + 2y = 4, x ≥ 0, y ≥ 0 → y=2, obj=2.
	p := NewProblem()
	x := p.AddVariable(1, "x")
	y := p.AddVariable(1, "y")
	p.AddConstraint(map[int]float64{x: 1, y: 2}, EQ, 4)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-9 {
		t.Errorf("objective = %g, want 2", sol.Objective)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// min x s.t. -x ≤ -3 (i.e. x ≥ 3) → 3.
	p := NewProblem()
	x := p.AddVariable(1, "x")
	p.AddConstraint(map[int]float64{x: -1}, LE, -3)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-3) > 1e-9 {
		t.Errorf("objective = %g, want 3", sol.Objective)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(1, "x")
	p.AddConstraint(map[int]float64{x: 1}, LE, 1)
	p.AddConstraint(map[int]float64{x: 1}, GE, 2)
	status, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if status != Infeasible {
		t.Errorf("status = %v, want infeasible", status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(-1, "x") // minimize -x with no upper bound
	p.AddConstraint(map[int]float64{x: 1}, GE, 0)
	status, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if status != Unbounded {
		t.Errorf("status = %v, want unbounded", status)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Degenerate vertex (redundant constraints through one point); Bland's
	// rule must terminate.
	p := NewProblem()
	x := p.AddVariable(-1, "x")
	y := p.AddVariable(-1, "y")
	p.AddConstraint(map[int]float64{x: 1, y: 1}, LE, 2)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, LE, 2)
	p.AddConstraint(map[int]float64{x: 2, y: 2}, LE, 4)
	p.AddConstraint(map[int]float64{x: 1}, LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+2) > 1e-9 {
		t.Errorf("objective = %g, want -2", sol.Objective)
	}
}

func TestSimplexUnknownVariable(t *testing.T) {
	p := NewProblem()
	p.AddVariable(1, "x")
	p.AddConstraint(map[int]float64{5: 1}, LE, 1)
	if _, _, err := p.Solve(); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestSimplexEmptyProblem(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(3, "x")
	sol := solveOK(t, p)
	if sol.Objective != 0 || sol.X[x] != 0 {
		t.Errorf("empty problem: %+v", sol)
	}
}

// Property: on random feasible bounded LPs (min cᵀx, Ax ≤ b with b ≥ 0,
// c ≥ 0), the optimum is 0 (x = 0 is optimal). Checks phase handling and
// sign conventions.
func TestQuickTrivialOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProblem()
		n := 1 + rng.Intn(5)
		for v := 0; v < n; v++ {
			p.AddVariable(rng.Float64()*5, "v")
		}
		for i := 0; i < 1+rng.Intn(5); i++ {
			coeffs := map[int]float64{}
			for v := 0; v < n; v++ {
				coeffs[v] = rng.Float64()*4 - 2
			}
			p.AddConstraint(coeffs, LE, rng.Float64()*3)
		}
		status, sol, err := p.Solve()
		return err == nil && status == Optimal && math.Abs(sol.Objective) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the simplex solution is primal-feasible: every constraint holds
// and x ≥ 0, and the objective matches c·x.
func TestQuickSolutionFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProblem()
		n := 1 + rng.Intn(4)
		obj := make([]float64, n)
		for v := 0; v < n; v++ {
			obj[v] = rng.Float64() * 3
			p.AddVariable(obj[v], "v")
		}
		type cons struct {
			coeffs map[int]float64
			rel    Relation
			rhs    float64
		}
		var cs []cons
		for i := 0; i < 1+rng.Intn(4); i++ {
			coeffs := map[int]float64{}
			for v := 0; v < n; v++ {
				coeffs[v] = rng.Float64() * 2
			}
			// GE with positive rhs keeps the problem feasible and bounded.
			c := cons{coeffs: coeffs, rel: GE, rhs: rng.Float64() * 2}
			cs = append(cs, c)
			p.AddConstraint(coeffs, c.rel, c.rhs)
		}
		status, sol, err := p.Solve()
		if err != nil || status != Optimal {
			// GE rows with all-zero coefficients and positive rhs are
			// legitimately infeasible; accept that outcome.
			return status == Infeasible && err == nil
		}
		var dot float64
		for v := 0; v < n; v++ {
			if sol.X[v] < -1e-9 {
				return false
			}
			dot += obj[v] * sol.X[v]
		}
		if math.Abs(dot-sol.Objective) > 1e-6 {
			return false
		}
		for _, c := range cs {
			var lhs float64
			for v, a := range c.coeffs {
				lhs += a * sol.X[v]
			}
			if lhs < c.rhs-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	build := func() *Problem {
		p := NewProblem()
		const n, m = 40, 30
		for v := 0; v < n; v++ {
			p.AddVariable(rng.Float64()*5, "v")
		}
		for i := 0; i < m; i++ {
			coeffs := map[int]float64{}
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.3 {
					coeffs[v] = rng.Float64() * 2
				}
			}
			coeffs[rng.Intn(n)] = 1 + rng.Float64()
			p.AddConstraint(coeffs, GE, 1)
		}
		return p
	}
	p := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
