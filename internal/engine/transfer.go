package engine

import (
	"fmt"
)

// TenantTransfer is one tenant's portable state: the same base-state +
// arrival-tail record a v2 checkpoint carries, stamped with the algorithm
// and engine seed it was captured under. ExtractTenant produces one and
// InjectTenant consumes it — marshal on the source, restore on the target,
// replay the tail — so a tenant can move between engines (in one process or
// across a cluster) with byte-identical snapshots on the far side. The
// algorithm and seed must match because a tenant's randomness derives from
// workload.NamedSeed(engine seed, tenant name): injecting under a different
// seed would silently change every future decision.
type TenantTransfer struct {
	Algorithm string `json:"algorithm"`
	Seed      int64  `json:"seed"`
	TenantCheckpoint
}

// ExtractTenant removes a tenant from the engine and returns its portable
// state. The tenant is deregistered first — Serve returns ErrUnknownTenant
// from that point on — and the state is then captured on the shard
// goroutine, which serializes the capture after every arrival admitted
// before the call (shard mailboxes are FIFO). The caller owns the returned
// transfer: until it is injected somewhere, the tenant's state exists only
// there. Callers that cannot tolerate in-flight arrivals failing must stop
// sending and wait for ServedCount to settle before extracting.
func (e *Engine) ExtractTenant(id string) (*TenantTransfer, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: %w", ErrClosed)
	}
	t, ok := e.tenants[id]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: tenant %q: %w", id, ErrUnknownTenant)
	}
	delete(e.tenants, id)
	e.loads[t.shardIdx]--
	e.mu.Unlock()

	var tc TenantCheckpoint
	var err error
	t.shard.control(func() { tc, err = t.checkpointV2() })
	if err != nil {
		// The capture failed (e.g. a non-serializable substrate): put the
		// tenant back so the extract is a clean no-op instead of a loss.
		e.mu.Lock()
		e.tenants[id] = t
		e.loads[t.shardIdx]++
		e.mu.Unlock()
		return nil, err
	}
	return &TenantTransfer{Algorithm: e.cfg.algoName(), Seed: e.cfg.Seed, TenantCheckpoint: tc}, nil
}

// ExportTenant captures a tenant's portable state without deregistering it
// — the replication-seeding half of the transfer surface. The capture runs
// on the shard goroutine, serialized after every arrival admitted before
// the call, and the tenant keeps serving afterwards. Callers that need the
// export to reflect a known stream position must quiesce first (stop
// sending and wait for ServedCount), exactly as with ExtractTenant; an
// export taken mid-stream is still a consistent cut, just of an unnamed
// prefix.
func (e *Engine) ExportTenant(id string) (*TenantTransfer, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: %w", ErrClosed)
	}
	t, ok := e.tenants[id]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: tenant %q: %w", id, ErrUnknownTenant)
	}
	e.mu.Unlock()

	var tc TenantCheckpoint
	var err error
	t.shard.control(func() { tc, err = t.checkpointV2() })
	if err != nil {
		return nil, err
	}
	return &TenantTransfer{Algorithm: e.cfg.algoName(), Seed: e.cfg.Seed, TenantCheckpoint: tc}, nil
}

// InjectTenant restores an extracted tenant into the engine: the tenant is
// re-created on its serialized substrate, its base state loaded, and its
// arrival tail replayed through the normal serve path — the per-tenant half
// of Restore. The transfer's algorithm and seed must match the engine's,
// and the tenant must not already exist. InjectTenant returns once the tail
// is admitted; snapshots (which serialize behind the replay on the shard)
// see the restored state.
func (e *Engine) InjectTenant(tr *TenantTransfer) error {
	if got, want := e.cfg.algoName(), tr.Algorithm; got != want {
		return fmt.Errorf("engine: transfer of %q was captured with algorithm %q, engine runs %q",
			tr.Tenant, want, got)
	}
	if e.cfg.Seed != tr.Seed {
		return fmt.Errorf("engine: transfer of %q was captured with seed %d, engine runs seed %d",
			tr.Tenant, tr.Seed, e.cfg.Seed)
	}
	_, err := e.restoreTenant(&tr.TenantCheckpoint)
	return err
}
