package engine

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cost"
	"repro/internal/metric"
	"repro/internal/workload"
)

// serveHalves splits a trace's fan-out at an arbitrary point so tests can
// checkpoint mid-stream: it creates the tenants, serves requests [0, cut),
// hands control to between, then serves the rest.
func serveHalves(t *testing.T, e *Engine, tr *workload.Trace, tenants, cut int, between func()) {
	t.Helper()
	in := tr.Instance
	names := make([]string, tenants)
	for i := range names {
		names[i] = tenantName(i)
		if err := e.CreateTenant(names[i], in.Space, in.Costs); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range in.Requests {
		if i == cut && between != nil {
			between()
		}
		if err := e.Serve(names[i%tenants], r); err != nil {
			t.Fatal(err)
		}
	}
}

func tenantName(i int) string {
	return []string{"tenant-000", "tenant-001", "tenant-002", "tenant-003"}[i]
}

// TestCheckpointRestoreRoundTrip is the durability contract: a snapshot
// taken at checkpoint time must equal the snapshot of a fresh engine that
// restored the checkpoint — for both algorithms, and for API-created tenants
// whose origin is synthesized (matrix + sampled cost table).
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	tr := fixedTrace(21, 100, 6, 12)
	for _, algo := range []string{"pd", "rand"} {
		cfg := Config{Algorithm: algo, Shards: 3, Seed: 7, RecordArrivals: true}
		e := New(cfg)
		var ck *Checkpoint
		serveHalves(t, e, tr, 3, 60, func() {
			var err error
			if ck, err = e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		})
		e.Close()

		if got := ck.Arrivals(); got != 60 {
			t.Fatalf("%s: checkpoint records %d arrivals, want 60", algo, got)
		}

		// Restore the checkpoint into a second engine (different shard
		// count on purpose) and snapshot; it must match an engine that
		// served the same prefix directly.
		restored := New(Config{Algorithm: algo, Shards: 5, Seed: 7, RecordArrivals: true})
		defer restored.Close()
		if _, err := restored.Restore(ck); err != nil {
			t.Fatal(err)
		}
		restoredSnaps, err := restored.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}

		// Only the first 60 arrivals: rebuild via a trimmed trace.
		trimmed := *tr
		in := *tr.Instance
		in.Requests = in.Requests[:60]
		trimmed.Instance = &in
		direct2 := New(cfg)
		defer direct2.Close()
		if _, err := direct2.ReplayTrace(&trimmed, 3); err != nil {
			t.Fatal(err)
		}
		directSnaps, err := direct2.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}

		if !bytes.Equal(marshalSnaps(t, restoredSnaps), marshalSnaps(t, directSnaps)) {
			t.Errorf("%s: restored snapshots differ from a direct run of the same prefix", algo)
		}
	}
}

// TestCheckpointThenContinue: serving the second half after a restore must
// land on exactly the state of an uninterrupted run — the "no cost
// divergence across a crash" guarantee.
func TestCheckpointThenContinue(t *testing.T) {
	tr := fixedTrace(33, 120, 5, 10)
	cfg := Config{Algorithm: "pd", Shards: 4, Seed: 11, RecordArrivals: true}

	// Uninterrupted run.
	e := New(cfg)
	defer e.Close()
	if _, err := e.ReplayTrace(tr, 2); err != nil {
		t.Fatal(err)
	}
	want, err := e.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoint at 70, "crash", restore, serve the rest.
	crashed := New(cfg)
	var ck *Checkpoint
	serveHalves(t, crashed, tr, 2, 70, func() {
		var err error
		if ck, err = crashed.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	})
	crashed.Close() // arrivals after the checkpoint die with the process

	resumed := New(cfg)
	defer resumed.Close()
	if _, err := resumed.Restore(ck); err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Instance.Requests {
		if i < 70 {
			continue
		}
		if err := resumed.Serve(tenantName(i%2), r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resumed.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalSnaps(t, want), marshalSnaps(t, got)) {
		t.Error("checkpoint + restore + replay diverged from the uninterrupted run")
	}
}

func TestCheckpointFileAtomicRoundTrip(t *testing.T) {
	tr := fixedTrace(5, 40, 4, 8)
	e := New(Config{Algorithm: "pd", Shards: 2, Seed: 3, RecordArrivals: true})
	defer e.Close()
	if _, err := e.ReplayTrace(tr, 2); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	ck, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt", "engine.ckpt.json")
	if _, err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite must go through the tmp+rename path too.
	if _, err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != CheckpointVersion || got.Algorithm != "pd" || got.Seed != 3 {
		t.Errorf("checkpoint header = %+v", got)
	}
	if got.Arrivals() != ck.Arrivals() || len(got.Tenants) != len(ck.Tenants) {
		t.Errorf("read back %d arrivals/%d tenants, want %d/%d",
			got.Arrivals(), len(got.Tenants), ck.Arrivals(), len(ck.Tenants))
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir has %d entries, want 1", len(entries))
	}
}

func TestCheckpointErrors(t *testing.T) {
	// Without RecordArrivals checkpointing works through the state-marshal
	// path (both built-in algorithms implement online.StateCodec); a closed
	// engine must still refuse.
	e := New(Config{Shards: 1})
	if _, err := e.Checkpoint(); err != nil {
		t.Errorf("Checkpoint without RecordArrivals failed: %v", err)
	}
	e.Close()
	if _, err := e.Checkpoint(); err == nil {
		t.Error("Checkpoint on closed engine succeeded")
	}
	// The legacy v1 capture does require the recorded history.
	e2 := New(Config{Shards: 1})
	if _, err := e2.CheckpointV1(); err == nil {
		t.Error("CheckpointV1 without RecordArrivals succeeded")
	}
	e2.Close()

	// Mismatched restore targets are configuration errors.
	src := New(Config{Algorithm: "pd", Seed: 1, Shards: 1, RecordArrivals: true})
	defer src.Close()
	if _, err := src.ReplayTrace(fixedTrace(1, 10, 4, 6), 1); err != nil {
		t.Fatal(err)
	}
	ck, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mustEngine(t, Config{Algorithm: "rand", Seed: 1, Shards: 1}).Restore(ck); err == nil {
		t.Error("restore under a different algorithm succeeded")
	}
	if _, err := mustEngine(t, Config{Algorithm: "pd", Seed: 2, Shards: 1}).Restore(ck); err == nil {
		t.Error("restore under a different seed succeeded")
	}
	dup := mustEngine(t, Config{Algorithm: "pd", Seed: 1, Shards: 1})
	if _, err := dup.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if _, err := dup.Restore(ck); err == nil {
		t.Error("double restore of the same tenants succeeded")
	}
	bad := *ck
	bad.Version = 99
	if _, err := mustEngine(t, Config{Algorithm: "pd", Seed: 1, Shards: 1}).Restore(&bad); err == nil {
		t.Error("unknown checkpoint version accepted")
	}

	if _, err := ReadCheckpointFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing checkpoint file read succeeded")
	}
}

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	t.Cleanup(e.Close)
	return e
}

// TestCheckpointNonUniformCostRefused: a point-scaled cost model cannot be
// sampled into a by-size table; checkpointing such a tenant must error, not
// silently misprice the restore.
func TestCheckpointNonUniformCostRefused(t *testing.T) {
	e := New(Config{Shards: 1, RecordArrivals: true})
	defer e.Close()
	space := metric.NewLine([]float64{0, 1, 2})
	scaled := cost.NewPointScaled(cost.PowerLaw(3, 1, 1), []float64{1, 2, 3})
	if err := e.CreateTenant("scaled", space, scaled); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err == nil {
		t.Error("checkpoint of a point-scaled tenant succeeded")
	}
}

// TestCheckpointV2SealedRoundTrip is the format-v2 durability contract at
// several shard counts: with a small SealEvery, tenants re-base on the serve
// path, the checkpoint carries base states plus short tails, a restore
// replays at most SealEvery arrivals per tenant, and the restored snapshots
// equal both the pre-checkpoint snapshots and a direct run of the same
// prefix. Runs under -race in CI.
func TestCheckpointV2SealedRoundTrip(t *testing.T) {
	const (
		tenants   = 3
		arrivals  = 150
		sealEvery = 10
	)
	tr := fixedTrace(42, arrivals, 6, 12)
	for _, algo := range []string{"pd", "rand"} {
		for _, shards := range []int{1, 2, 8} {
			cfg := Config{Algorithm: algo, Shards: shards, Seed: 7, RecordArrivals: true, SealEvery: sealEvery}
			e := New(cfg)
			if _, err := e.ReplayTrace(tr, tenants); err != nil {
				t.Fatal(err)
			}
			want, err := e.SnapshotAll()
			if err != nil {
				t.Fatal(err)
			}
			ck, err := e.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			e.Close()

			if ck.Version != CheckpointVersion {
				t.Fatalf("%s/%d shards: checkpoint version %d, want %d", algo, shards, ck.Version, CheckpointVersion)
			}
			if got := ck.Arrivals(); got != arrivals {
				t.Fatalf("%s/%d shards: checkpoint represents %d arrivals, want %d", algo, shards, got, arrivals)
			}
			if tail := ck.TailArrivals(); tail >= tenants*sealEvery {
				t.Errorf("%s/%d shards: tail %d arrivals, want < tenants×SealEvery = %d",
					algo, shards, tail, tenants*sealEvery)
			}
			for i := range ck.Tenants {
				if len(ck.Tenants[i].BaseState) == 0 {
					t.Errorf("%s/%d shards: tenant %s has no base state", algo, shards, ck.Tenants[i].Tenant)
				}
			}

			// Restore on a different shard count on purpose.
			restored := New(Config{Algorithm: algo, Shards: shards%8 + 1, Seed: 7, RecordArrivals: true, SealEvery: sealEvery})
			stats, err := restored.Restore(ck)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Arrivals != arrivals || stats.Tenants != tenants || stats.BasesLoaded != tenants {
				t.Errorf("%s/%d shards: restore stats %+v", algo, shards, stats)
			}
			if stats.Replayed != ck.TailArrivals() || stats.Replayed >= tenants*sealEvery {
				t.Errorf("%s/%d shards: restore replayed %d arrivals, want tail (%d) and < %d",
					algo, shards, stats.Replayed, ck.TailArrivals(), tenants*sealEvery)
			}
			got, err := restored.SnapshotAll()
			if err != nil {
				t.Fatal(err)
			}
			restored.Close()
			if !bytes.Equal(marshalSnaps(t, want), marshalSnaps(t, got)) {
				t.Errorf("%s/%d shards: restored snapshots differ from pre-checkpoint snapshots", algo, shards)
			}
		}
	}
}

// TestCheckpointV2ThenContinue: restoring a v2 checkpoint mid-stream and
// serving the rest must land on exactly the uninterrupted run's state — the
// crash-consistency guarantee through base states instead of full replay.
func TestCheckpointV2ThenContinue(t *testing.T) {
	tr := fixedTrace(33, 120, 5, 10)
	for _, algo := range []string{"pd", "rand"} {
		cfg := Config{Algorithm: algo, Shards: 4, Seed: 11, RecordArrivals: true, SealEvery: 16}

		e := New(cfg)
		if _, err := e.ReplayTrace(tr, 2); err != nil {
			t.Fatal(err)
		}
		want, err := e.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}
		e.Close()

		crashed := New(cfg)
		var ck *Checkpoint
		serveHalves(t, crashed, tr, 2, 70, func() {
			var err error
			if ck, err = crashed.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		})
		crashed.Close()

		resumed := New(cfg)
		stats, err := resumed.Restore(ck)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Replayed > 2*16 {
			t.Errorf("%s: restore replayed %d arrivals, want ≤ tenants×SealEvery = 32", algo, stats.Replayed)
		}
		for i, r := range tr.Instance.Requests {
			if i < 70 {
				continue
			}
			if err := resumed.Serve(tenantName(i%2), r); err != nil {
				t.Fatal(err)
			}
		}
		got, err := resumed.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}
		resumed.Close()
		if !bytes.Equal(marshalSnaps(t, want), marshalSnaps(t, got)) {
			t.Errorf("%s: v2 checkpoint + restore + replay diverged from the uninterrupted run", algo)
		}
	}
}

// TestCheckpointWithoutRecordArrivals: without the arrival history the
// engine checkpoints by marshaling state at capture time — every tenant is
// sealed, nothing is replayed on restore, snapshots still match exactly.
func TestCheckpointWithoutRecordArrivals(t *testing.T) {
	tr := fixedTrace(8, 90, 5, 11)
	for _, algo := range []string{"pd", "rand"} {
		cfg := Config{Algorithm: algo, Shards: 3, Seed: 5}
		e := New(cfg)
		if _, err := e.ReplayTrace(tr, 3); err != nil {
			t.Fatal(err)
		}
		want, err := e.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}
		ck, err := e.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		e.Close()
		if ck.TailArrivals() != 0 {
			t.Fatalf("%s: no-record checkpoint has a %d-arrival tail, want 0", algo, ck.TailArrivals())
		}
		if ck.Arrivals() != 90 {
			t.Fatalf("%s: no-record checkpoint represents %d arrivals, want 90", algo, ck.Arrivals())
		}
		restored := New(cfg)
		stats, err := restored.Restore(ck)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Replayed != 0 || stats.BasesLoaded != 3 {
			t.Errorf("%s: restore stats %+v, want 0 replayed / 3 bases", algo, stats)
		}
		got, err := restored.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}
		restored.Close()
		if !bytes.Equal(marshalSnaps(t, want), marshalSnaps(t, got)) {
			t.Errorf("%s: state-only restore diverged from the source engine", algo)
		}
	}
}

// TestCheckpointV1Migration is the v1 → v2 migration path: a legacy v1
// checkpoint restores (full replay), the restored engine's next Checkpoint
// emits v2, and that v2 checkpoint restores with bounded replay onto a
// third engine — all three agreeing byte-for-byte.
func TestCheckpointV1Migration(t *testing.T) {
	tr := fixedTrace(14, 100, 6, 12)
	for _, algo := range []string{"pd", "rand"} {
		// SealEvery < 0 disables sealing so the full history stays
		// available for the legacy capture.
		legacy := New(Config{Algorithm: algo, Shards: 2, Seed: 9, RecordArrivals: true, SealEvery: -1})
		if _, err := legacy.ReplayTrace(tr, 2); err != nil {
			t.Fatal(err)
		}
		want, err := legacy.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}
		ckV1, err := legacy.CheckpointV1()
		if err != nil {
			t.Fatal(err)
		}
		legacy.Close()
		if ckV1.Version != CheckpointVersionV1 {
			t.Fatalf("%s: CheckpointV1 emitted version %d", algo, ckV1.Version)
		}

		// Migrate: restore v1 (full replay), then capture v2.
		mid := New(Config{Algorithm: algo, Shards: 3, Seed: 9, RecordArrivals: true, SealEvery: 8})
		stats, err := mid.Restore(ckV1)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Replayed != 100 || stats.BasesLoaded != 0 {
			t.Errorf("%s: v1 restore stats %+v, want full replay and no bases", algo, stats)
		}
		ckV2, err := mid.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		midSnaps, err := mid.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}
		mid.Close()
		if ckV2.Version != CheckpointVersion {
			t.Fatalf("%s: migrated checkpoint version %d, want %d", algo, ckV2.Version, CheckpointVersion)
		}
		if ckV2.TailArrivals() >= 2*8 {
			t.Errorf("%s: migrated checkpoint tail %d, want < tenants×SealEvery", algo, ckV2.TailArrivals())
		}

		final := New(Config{Algorithm: algo, Shards: 1, Seed: 9, RecordArrivals: true, SealEvery: 8})
		fstats, err := final.Restore(ckV2)
		if err != nil {
			t.Fatal(err)
		}
		if fstats.Replayed != ckV2.TailArrivals() {
			t.Errorf("%s: v2 restore replayed %d, want %d", algo, fstats.Replayed, ckV2.TailArrivals())
		}
		got, err := final.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}
		final.Close()
		if !bytes.Equal(marshalSnaps(t, want), marshalSnaps(t, midSnaps)) {
			t.Errorf("%s: v1 restore diverged from the legacy engine", algo)
		}
		if !bytes.Equal(marshalSnaps(t, want), marshalSnaps(t, got)) {
			t.Errorf("%s: v1→v2 migrated restore diverged from the legacy engine", algo)
		}
	}
}

// TestCheckpointV1SealedRefused: once part of the history is sealed into a
// base, the legacy capture must refuse (its history is incomplete) while
// the v2 capture keeps working.
func TestCheckpointV1SealedRefused(t *testing.T) {
	e := New(Config{Algorithm: "pd", Shards: 1, Seed: 1, RecordArrivals: true, SealEvery: 5})
	defer e.Close()
	if _, err := e.ReplayTrace(fixedTrace(3, 30, 4, 8), 1); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if _, err := e.CheckpointV1(); err == nil {
		t.Error("CheckpointV1 succeeded on a sealed tenant")
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Errorf("v2 Checkpoint failed on a sealed tenant: %v", err)
	}
}

// TestCheckpointCompression pins the flate encoding of v2 base states: the
// artifact WriteFile produces must be flagged, smaller than the raw
// marshal, and restore byte-identically both through ReadCheckpointFile and
// when a still-compressed checkpoint is handed straight to Restore.
// Uncompressed v2 documents (pre-compression writers) must keep restoring.
func TestCheckpointCompression(t *testing.T) {
	tr := fixedTrace(42, 200, 6, 12)
	cfg := Config{Algorithm: "pd", Shards: 2, Seed: 7, RecordArrivals: true, SealEvery: 10}
	e := New(cfg)
	if _, err := e.ReplayTrace(tr, 2); err != nil {
		t.Fatal(err)
	}
	want, err := e.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	e.Close()

	raw, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.ckpt.json")
	n, err := ck.WriteFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Compression != "" {
		t.Fatalf("WriteFile mutated the receiver: compression %q", ck.Compression)
	}
	if n >= len(raw) {
		t.Errorf("compressed artifact is %d bytes, raw marshal %d — flate bought nothing", n, len(raw))
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var flagged Checkpoint
	if err := json.Unmarshal(onDisk, &flagged); err != nil {
		t.Fatal(err)
	}
	if flagged.Compression != CompressionFlate {
		t.Fatalf("on-disk compression flag %q, want %q", flagged.Compression, CompressionFlate)
	}
	for i := range flagged.Tenants {
		tc := &flagged.Tenants[i]
		if len(tc.BaseState) != 0 || len(tc.BaseStateZ) == 0 {
			t.Fatalf("tenant %s on disk: base_state %d bytes, base_state_z %d bytes",
				tc.Tenant, len(tc.BaseState), len(tc.BaseStateZ))
		}
	}

	verify := func(label string, ck *Checkpoint) {
		t.Helper()
		restored := New(Config{Algorithm: "pd", Shards: 3, Seed: 7, RecordArrivals: true, SealEvery: 10})
		defer restored.Close()
		stats, err := restored.Restore(ck)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if stats.BasesLoaded != 2 || stats.StateBytes == 0 {
			t.Errorf("%s: restore stats %+v, want 2 decompressed bases", label, stats)
		}
		got, err := restored.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalSnaps(t, want), marshalSnaps(t, got)) {
			t.Errorf("%s: restored snapshots differ from pre-checkpoint snapshots", label)
		}
	}

	fromFile, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Compression != "" {
		t.Errorf("ReadCheckpointFile left compression %q", fromFile.Compression)
	}
	verify("read-file", fromFile)
	verify("restore-compressed-directly", &flagged)
	// Restore must not mutate the caller's document: a compressed artifact
	// can be shared across engines (e.g. replicas restoring from one file).
	if flagged.Compression != CompressionFlate {
		t.Errorf("Restore cleared the input's compression flag (%q)", flagged.Compression)
	}
	for i := range flagged.Tenants {
		tc := &flagged.Tenants[i]
		if len(tc.BaseStateZ) == 0 || len(tc.BaseState) != 0 {
			t.Errorf("Restore mutated input tenant %s: base_state %d bytes, base_state_z %d bytes",
				tc.Tenant, len(tc.BaseState), len(tc.BaseStateZ))
		}
	}

	// An uncompressed v2 document — what a pre-compression writer produced.
	var plain Checkpoint
	if err := json.Unmarshal(raw, &plain); err != nil {
		t.Fatal(err)
	}
	verify("uncompressed-v2", &plain)
}
