package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cost"
	"repro/internal/metric"
	"repro/internal/workload"
)

// serveHalves splits a trace's fan-out at an arbitrary point so tests can
// checkpoint mid-stream: it creates the tenants, serves requests [0, cut),
// hands control to between, then serves the rest.
func serveHalves(t *testing.T, e *Engine, tr *workload.Trace, tenants, cut int, between func()) {
	t.Helper()
	in := tr.Instance
	names := make([]string, tenants)
	for i := range names {
		names[i] = tenantName(i)
		if err := e.CreateTenant(names[i], in.Space, in.Costs); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range in.Requests {
		if i == cut && between != nil {
			between()
		}
		if err := e.Serve(names[i%tenants], r); err != nil {
			t.Fatal(err)
		}
	}
}

func tenantName(i int) string {
	return []string{"tenant-000", "tenant-001", "tenant-002", "tenant-003"}[i]
}

// TestCheckpointRestoreRoundTrip is the durability contract: a snapshot
// taken at checkpoint time must equal the snapshot of a fresh engine that
// restored the checkpoint — for both algorithms, and for API-created tenants
// whose origin is synthesized (matrix + sampled cost table).
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	tr := fixedTrace(21, 100, 6, 12)
	for _, algo := range []string{"pd", "rand"} {
		cfg := Config{Algorithm: algo, Shards: 3, Seed: 7, RecordArrivals: true}
		e := New(cfg)
		var ck *Checkpoint
		serveHalves(t, e, tr, 3, 60, func() {
			var err error
			if ck, err = e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		})
		e.Close()

		if got := ck.Arrivals(); got != 60 {
			t.Fatalf("%s: checkpoint records %d arrivals, want 60", algo, got)
		}

		// Restore the checkpoint into a second engine (different shard
		// count on purpose) and snapshot; it must match an engine that
		// served the same prefix directly.
		restored := New(Config{Algorithm: algo, Shards: 5, Seed: 7, RecordArrivals: true})
		defer restored.Close()
		if err := restored.Restore(ck); err != nil {
			t.Fatal(err)
		}
		restoredSnaps, err := restored.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}

		// Only the first 60 arrivals: rebuild via a trimmed trace.
		trimmed := *tr
		in := *tr.Instance
		in.Requests = in.Requests[:60]
		trimmed.Instance = &in
		direct2 := New(cfg)
		defer direct2.Close()
		if _, err := direct2.ReplayTrace(&trimmed, 3); err != nil {
			t.Fatal(err)
		}
		directSnaps, err := direct2.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}

		if !bytes.Equal(marshalSnaps(t, restoredSnaps), marshalSnaps(t, directSnaps)) {
			t.Errorf("%s: restored snapshots differ from a direct run of the same prefix", algo)
		}
	}
}

// TestCheckpointThenContinue: serving the second half after a restore must
// land on exactly the state of an uninterrupted run — the "no cost
// divergence across a crash" guarantee.
func TestCheckpointThenContinue(t *testing.T) {
	tr := fixedTrace(33, 120, 5, 10)
	cfg := Config{Algorithm: "pd", Shards: 4, Seed: 11, RecordArrivals: true}

	// Uninterrupted run.
	e := New(cfg)
	defer e.Close()
	if _, err := e.ReplayTrace(tr, 2); err != nil {
		t.Fatal(err)
	}
	want, err := e.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoint at 70, "crash", restore, serve the rest.
	crashed := New(cfg)
	var ck *Checkpoint
	serveHalves(t, crashed, tr, 2, 70, func() {
		var err error
		if ck, err = crashed.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	})
	crashed.Close() // arrivals after the checkpoint die with the process

	resumed := New(cfg)
	defer resumed.Close()
	if err := resumed.Restore(ck); err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Instance.Requests {
		if i < 70 {
			continue
		}
		if err := resumed.Serve(tenantName(i%2), r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resumed.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalSnaps(t, want), marshalSnaps(t, got)) {
		t.Error("checkpoint + restore + replay diverged from the uninterrupted run")
	}
}

func TestCheckpointFileAtomicRoundTrip(t *testing.T) {
	tr := fixedTrace(5, 40, 4, 8)
	e := New(Config{Algorithm: "pd", Shards: 2, Seed: 3, RecordArrivals: true})
	defer e.Close()
	if _, err := e.ReplayTrace(tr, 2); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	ck, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt", "engine.ckpt.json")
	if err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite must go through the tmp+rename path too.
	if err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != CheckpointVersion || got.Algorithm != "pd" || got.Seed != 3 {
		t.Errorf("checkpoint header = %+v", got)
	}
	if got.Arrivals() != ck.Arrivals() || len(got.Tenants) != len(ck.Tenants) {
		t.Errorf("read back %d arrivals/%d tenants, want %d/%d",
			got.Arrivals(), len(got.Tenants), ck.Arrivals(), len(ck.Tenants))
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir has %d entries, want 1", len(entries))
	}
}

func TestCheckpointErrors(t *testing.T) {
	// Without RecordArrivals checkpointing must refuse rather than silently
	// produce an empty state.
	e := New(Config{Shards: 1})
	if _, err := e.Checkpoint(); err == nil {
		t.Error("Checkpoint without RecordArrivals succeeded")
	}
	e.Close()
	if _, err := e.Checkpoint(); err == nil {
		t.Error("Checkpoint on closed engine succeeded")
	}

	// Mismatched restore targets are configuration errors.
	src := New(Config{Algorithm: "pd", Seed: 1, Shards: 1, RecordArrivals: true})
	defer src.Close()
	if _, err := src.ReplayTrace(fixedTrace(1, 10, 4, 6), 1); err != nil {
		t.Fatal(err)
	}
	ck, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := mustEngine(t, Config{Algorithm: "rand", Seed: 1, Shards: 1}).Restore(ck); err == nil {
		t.Error("restore under a different algorithm succeeded")
	}
	if err := mustEngine(t, Config{Algorithm: "pd", Seed: 2, Shards: 1}).Restore(ck); err == nil {
		t.Error("restore under a different seed succeeded")
	}
	dup := mustEngine(t, Config{Algorithm: "pd", Seed: 1, Shards: 1})
	if err := dup.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if err := dup.Restore(ck); err == nil {
		t.Error("double restore of the same tenants succeeded")
	}
	bad := *ck
	bad.Version = 99
	if err := mustEngine(t, Config{Algorithm: "pd", Seed: 1, Shards: 1}).Restore(&bad); err == nil {
		t.Error("unknown checkpoint version accepted")
	}

	if _, err := ReadCheckpointFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing checkpoint file read succeeded")
	}
}

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	t.Cleanup(e.Close)
	return e
}

// TestCheckpointNonUniformCostRefused: a point-scaled cost model cannot be
// sampled into a by-size table; checkpointing such a tenant must error, not
// silently misprice the restore.
func TestCheckpointNonUniformCostRefused(t *testing.T) {
	e := New(Config{Shards: 1, RecordArrivals: true})
	defer e.Close()
	space := metric.NewLine([]float64{0, 1, 2})
	scaled := cost.NewPointScaled(cost.PowerLaw(3, 1, 1), []float64{1, 2, 3})
	if err := e.CreateTenant("scaled", space, scaled); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err == nil {
		t.Error("checkpoint of a point-scaled tenant succeeded")
	}
}
