package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/cost"
	"repro/internal/metric"
)

// TestCrossEngineHandoff is the state-handoff contract the cluster's live
// migration rides on: marshal a tenant on one engine, restore it into a
// second engine (different shard count), serve the identical arrival suffix,
// and the combined snapshots must be byte-identical to a single engine that
// served the whole stream. The transfer round-trips through JSON exactly as
// it does over the wire between nodes.
func TestCrossEngineHandoff(t *testing.T) {
	const (
		tenants = 3
		moved   = 1 // tenant-001 migrates at the cut point
		cut     = 57
	)
	tr := fixedTrace(21, 120, 6, 14)
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%03d", i)
	}

	// Ground truth: one engine serves everything.
	want := runTrace(t, Config{Algorithm: "pd", Shards: 4, Seed: 9}, tr, tenants)

	for _, sh := range []struct{ src, dst int }{{1, 8}, {8, 1}} {
		t.Run(fmt.Sprintf("shards_%d_to_%d", sh.src, sh.dst), func(t *testing.T) {
			src := New(Config{Algorithm: "pd", Shards: sh.src, Seed: 9})
			defer src.Close()
			dst := New(Config{Algorithm: "pd", Shards: sh.dst, Seed: 9})
			defer dst.Close()

			in := tr.Instance
			for _, name := range names {
				if err := src.CreateTenant(name, in.Space, in.Costs); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < cut; i++ {
				if err := src.Serve(names[i%tenants], in.Requests[i]); err != nil {
					t.Fatal(err)
				}
			}

			// Marshal on the source, restore on the target — through JSON,
			// exactly the bytes a cluster router would forward.
			tf, err := src.ExtractTenant(names[moved])
			if err != nil {
				t.Fatal(err)
			}
			wire, err := json.Marshal(tf)
			if err != nil {
				t.Fatal(err)
			}
			var back TenantTransfer
			if err := json.Unmarshal(wire, &back); err != nil {
				t.Fatal(err)
			}
			if err := dst.InjectTenant(&back); err != nil {
				t.Fatal(err)
			}

			// The source no longer knows the tenant.
			if err := src.Serve(names[moved], in.Requests[cut]); !errors.Is(err, ErrUnknownTenant) {
				t.Fatalf("Serve on extracted tenant: err = %v, want ErrUnknownTenant", err)
			}

			// Identical suffix: moved tenant's arrivals go to dst, the rest
			// stay on src.
			for i := cut; i < len(in.Requests); i++ {
				e := src
				if i%tenants == moved {
					e = dst
				}
				if err := e.Serve(names[i%tenants], in.Requests[i]); err != nil {
					t.Fatal(err)
				}
			}

			srcSnaps, err := src.SnapshotAll()
			if err != nil {
				t.Fatal(err)
			}
			movedSnap, err := dst.Snapshot(names[moved])
			if err != nil {
				t.Fatal(err)
			}
			all := append(srcSnaps, movedSnap)
			sort.Slice(all, func(i, j int) bool { return all[i].Tenant < all[j].Tenant })
			if got := marshalSnaps(t, all); !bytes.Equal(got, want) {
				t.Error("handoff snapshots differ from the single-engine run")
			}
		})
	}
}

// TestTransferValidation: a transfer only injects into an engine with the
// same algorithm and seed (tenant randomness is NamedSeed(engine seed,
// name)), never over an existing tenant, and extraction of an unknown
// tenant fails cleanly.
func TestTransferValidation(t *testing.T) {
	src := New(Config{Algorithm: "pd", Shards: 2, Seed: 3})
	defer src.Close()
	space := metric.NewLine([]float64{0, 1, 2, 3})
	costs := cost.PowerLaw(3, 1, 2)
	if err := src.CreateTenant("a", space, costs); err != nil {
		t.Fatal(err)
	}

	if _, err := src.ExtractTenant("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("ExtractTenant(ghost): err = %v, want ErrUnknownTenant", err)
	}

	tf, err := src.ExtractTenant("a")
	if err != nil {
		t.Fatal(err)
	}
	if tf.Algorithm != "pd" || tf.Seed != 3 {
		t.Fatalf("transfer stamped %q/%d, want pd/3", tf.Algorithm, tf.Seed)
	}

	wrongSeed := New(Config{Algorithm: "pd", Shards: 1, Seed: 4})
	defer wrongSeed.Close()
	if err := wrongSeed.InjectTenant(tf); err == nil {
		t.Error("inject under a different seed succeeded")
	}
	wrongAlgo := New(Config{Algorithm: "rand", Shards: 1, Seed: 3})
	defer wrongAlgo.Close()
	if err := wrongAlgo.InjectTenant(tf); err == nil {
		t.Error("inject under a different algorithm succeeded")
	}

	dst := New(Config{Algorithm: "pd", Shards: 1, Seed: 3})
	defer dst.Close()
	if err := dst.InjectTenant(tf); err != nil {
		t.Fatal(err)
	}
	if err := dst.InjectTenant(tf); err == nil {
		t.Error("double inject succeeded")
	}

	// The extract removed the tenant; a fresh create under the same name
	// must succeed on the source (clean deregistration).
	if err := src.CreateTenant("a", space, costs); err != nil {
		t.Errorf("re-create after extract failed: %v", err)
	}
}
