package engine

import (
	"time"

	"repro/internal/obs"
)

// The serve-latency histograms are obs.Hist: lock-free power-of-two
// histograms — bucket b counts durations whose nanosecond count has
// bit-length b, i.e. d ∈ [2^(b-1), 2^b) ns (see obs.Hist for the full
// bucket-boundary contract). One writer (the shard goroutine) and any
// number of readers (Metrics) touch each histogram concurrently.

// mergedHist sums per-shard histograms into one bucket vector plus a total,
// and also returns each shard's own served count (its histogram total).
func mergedHist(shards []*shard) (sum [obs.HistBuckets]int64, total int64, perShard []int64) {
	perShard = make([]int64, len(shards))
	for i, s := range shards {
		perShard[i] = s.hist.AddTo(&sum)
		total += perShard[i]
	}
	return sum, total, perShard
}

// Metrics is an engine-wide health report. Rates and latencies are
// wall-clock measurements — unlike snapshots they are not part of the
// deterministic-output contract.
type Metrics struct {
	// Seq is a monotonic scrape sequence number: it increments on every
	// Metrics call, so a consumer merging reports from many engines (the
	// cluster router) can tell a fresh scrape from a stale or duplicated
	// one — two reports with the same Seq describe the same rate window,
	// and summing both would double-count. WallUnixNano timestamps the
	// scrape on the wall clock for the same purpose across restarts (Seq
	// resets with the process; the pair does not go backwards while it
	// lives).
	Seq          int64 `json:"seq"`
	WallUnixNano int64 `json:"wall_unix_nano"`
	Tenants      int   `json:"tenants"`
	Shards       int   `json:"shards"`
	Served       int64 `json:"served"`
	// UptimeSeconds is the time since New.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// ArrivalsPerSec is the lifetime serving rate; WindowArrivalsPerSec
	// the rate since the previous Metrics call (the one to watch live).
	ArrivalsPerSec       float64 `json:"arrivals_per_sec"`
	WindowArrivalsPerSec float64 `json:"window_arrivals_per_sec"`
	// QueueDepth counts arrivals admitted but not yet served, summed over
	// shard mailboxes.
	QueueDepth int `json:"queue_depth"`
	// Serve latency quantiles from the merged per-shard histograms
	// (geometric bucket midpoints — within sqrt(2) of the true order
	// statistic; see obs.Hist).
	LatencyP50Micros  float64 `json:"serve_latency_p50_us"`
	LatencyP99Micros  float64 `json:"serve_latency_p99_us"`
	LatencyP999Micros float64 `json:"serve_latency_p999_us"`
	// ServeLatency is the full merged serve-latency histogram in wire
	// form, so downstream mergers (the cluster router) re-aggregate raw
	// buckets instead of averaging quantiles.
	ServeLatency obs.HistSummary `json:"serve_latency"`
	// Stages is the per-stage latency breakdown over traced arrivals
	// (decode/enqueue/dequeue/serve/ack + total). nil when tracing is off.
	Stages *obs.StageBreakdown `json:"stages,omitempty"`
	// PerShard breaks the load down by serving goroutine: mailbox depth,
	// tenants pinned, served totals and rates per shard — the numbers that
	// reveal a hot shard the aggregates hide.
	PerShard []ShardMetrics `json:"per_shard"`
}

// ShardMetrics is one serving goroutine's share of the engine load.
type ShardMetrics struct {
	Shard   int   `json:"shard"`
	Tenants int   `json:"tenants"`
	Served  int64 `json:"served"`
	// QueueDepth is this shard's mailbox backlog (admitted, not served).
	QueueDepth int `json:"queue_depth"`
	// ArrivalsPerSec is the shard's lifetime serving rate;
	// WindowArrivalsPerSec its rate since the previous Metrics call.
	ArrivalsPerSec       float64 `json:"arrivals_per_sec"`
	WindowArrivalsPerSec float64 `json:"window_arrivals_per_sec"`
}

// ServedTotal returns the number of arrivals served so far. Unlike Metrics
// it neither closes the rate window nor advances the scrape sequence, so
// health probes and placement polls can read it at any frequency without
// distorting windowed rates for real metrics consumers.
func (e *Engine) ServedTotal() int64 {
	_, total, _ := mergedHist(e.shards)
	return total
}

// Metrics reports current engine health. Each call also closes the rate
// window opened by the previous one.
func (e *Engine) Metrics() Metrics {
	depths := make([]int, len(e.shards))
	depth := 0
	for i, s := range e.shards {
		depths[i] = len(s.ops)
		depth += depths[i]
	}

	// The histogram read happens under the mutex so concurrent Metrics
	// calls serialize: the served totals are monotone, so each caller's
	// read is ≥ the lastSrvd recorded by the previous one and the window
	// counts can never go negative.
	e.mu.Lock()
	now := time.Now()
	sum, total, perShard := mergedHist(e.shards)
	window := now.Sub(e.lastAt).Seconds()
	windowShard := make([]int64, len(perShard))
	for i, c := range perShard {
		windowShard[i] = c - e.lastSrvd[i]
		e.lastSrvd[i] = c
	}
	e.lastAt = now
	e.scrapeSeq++
	seq := e.scrapeSeq
	tenants := len(e.tenants)
	loads := append([]int(nil), e.loads...)
	e.mu.Unlock()

	m := Metrics{
		Seq:               seq,
		WallUnixNano:      now.UnixNano(),
		Tenants:           tenants,
		Shards:            len(e.shards),
		Served:            total,
		UptimeSeconds:     now.Sub(e.start).Seconds(),
		QueueDepth:        depth,
		LatencyP50Micros:  obs.Quantile(sum, total, 0.50) / 1e3,
		LatencyP99Micros:  obs.Quantile(sum, total, 0.99) / 1e3,
		LatencyP999Micros: obs.Quantile(sum, total, 0.999) / 1e3,
		ServeLatency:      obs.Summarize(sum),
		Stages:            e.stageBreakdown(),
		PerShard:          make([]ShardMetrics, len(e.shards)),
	}
	var windowServed int64
	for i := range m.PerShard {
		sm := ShardMetrics{
			Shard:      i,
			Tenants:    loads[i],
			Served:     perShard[i],
			QueueDepth: depths[i],
		}
		if up := m.UptimeSeconds; up > 0 {
			sm.ArrivalsPerSec = float64(perShard[i]) / up
		}
		if window > 0 {
			sm.WindowArrivalsPerSec = float64(windowShard[i]) / window
		}
		windowServed += windowShard[i]
		m.PerShard[i] = sm
	}
	if up := m.UptimeSeconds; up > 0 {
		m.ArrivalsPerSec = float64(total) / up
	}
	if window > 0 {
		m.WindowArrivalsPerSec = float64(windowServed) / window
	}
	return m
}

// stageBreakdown merges the per-shard stage histograms; nil when tracing is
// off.
func (e *Engine) stageBreakdown() *obs.StageBreakdown {
	if e.tracer == nil {
		return nil
	}
	var sums [obs.NumStages + 1][obs.HistBuckets]int64
	var sampled int64
	for _, s := range e.shards {
		sampled += s.rec.AddTo(&sums)
	}
	return obs.NewStageBreakdown(&sums, sampled)
}

// FlightDump returns the engine's flight-recorder contents: the newest
// records from every shard ring plus the admission-error ring, merged
// oldest-first. tenant filters ("" = all); max caps to the newest records
// (<= 0 = everything still in the rings). Empty (not nil) when tracing is
// off.
func (e *Engine) FlightDump(tenant string, max int) []obs.FlightRecord {
	recs := []obs.FlightRecord{}
	if e.tracer == nil {
		return recs
	}
	for _, s := range e.shards {
		recs = append(recs, s.rec.Ring().Dump()...)
	}
	recs = append(recs, e.errRing.Dump()...)
	obs.SortFlight(recs)
	return obs.FilterFlight(recs, tenant, max)
}
