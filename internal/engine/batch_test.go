package engine

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/commodity"
	"repro/internal/instance"
	"repro/internal/workload"
)

// createTraceTenants registers the trace's fan-out tenants on e, mirroring
// ReplayTrace's create step without serving anything.
func createTraceTenants(e *Engine, tr *workload.Trace, tenants int) error {
	for i := 0; i < tenants; i++ {
		if err := e.CreateTenant(tenantName(i), tr.Instance.Space, tr.Instance.Costs); err != nil {
			return err
		}
	}
	return nil
}

// TestServeBatchMatchesServe pins batch injection to the serving contract:
// fanning a trace through ServeBatch in same-tenant groups must produce
// byte-identical snapshots to item-at-a-time Serve, and the latency
// histogram must count every item.
func TestServeBatchMatchesServe(t *testing.T) {
	tr := fixedTrace(11, 150, 6, 15)
	tenants := 4

	want := runTrace(t, Config{Shards: 2, Seed: 3}, tr, tenants)

	e := New(Config{Shards: 2, Seed: 3})
	defer e.Close()
	if err := createTraceTenants(e, tr, tenants); err != nil {
		t.Fatal(err)
	}
	// Group consecutive same-tenant arrivals (round-robin fan-out means
	// groups of one here, so force larger groups by grouping per tenant in
	// chunks while preserving per-tenant order — the only order that matters).
	perTenant := make(map[string][]BatchItem)
	var order []string
	for i, r := range tr.Instance.Requests {
		tn := tenantName(i % tenants)
		if len(perTenant[tn]) == 0 {
			order = append(order, tn)
		}
		perTenant[tn] = append(perTenant[tn], BatchItem{Req: instance.Request{Point: r.Point, Demands: r.Demands}})
	}
	for _, tn := range order {
		items := perTenant[tn]
		for len(items) > 0 {
			n := 7
			if n > len(items) {
				n = len(items)
			}
			acc, err := e.ServeBatch(tn, items[:n], false, nil)
			if err != nil || acc != n {
				t.Fatalf("ServeBatch(%s) = %d, %v", tn, acc, err)
			}
			items = items[n:]
		}
	}
	snaps, err := e.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalSnaps(t, snaps); !bytes.Equal(want, got) {
		t.Fatal("batch-injected snapshots differ from per-op Serve")
	}
	if m := e.Metrics(); m.Served != int64(len(tr.Instance.Requests)) {
		t.Fatalf("Served = %d, want %d", m.Served, len(tr.Instance.Requests))
	}
}

// TestServeBatchOnDone checks the completion callback: it must fire after
// the batch is served, with per-item durations exactly when asked for.
func TestServeBatchOnDone(t *testing.T) {
	tr := fixedTrace(5, 20, 4, 10)
	e := New(Config{Shards: 1, Seed: 1})
	defer e.Close()
	if err := createTraceTenants(e, tr, 1); err != nil {
		t.Fatal(err)
	}
	items := make([]BatchItem, 0, len(tr.Instance.Requests))
	for _, r := range tr.Instance.Requests {
		items = append(items, BatchItem{Req: instance.Request{Point: r.Point, Demands: r.Demands}})
	}

	done := make(chan []int64, 1)
	if _, err := e.ServeBatch(tenantName(0), items[:10], true, func(served int, ns []int64) {
		if served != 10 {
			t.Errorf("onDone served = %d, want 10", served)
		}
		done <- ns
	}); err != nil {
		t.Fatal(err)
	}
	ns := <-done
	if len(ns) != 10 {
		t.Fatalf("servedNs has %d entries, want 10", len(ns))
	}
	for i, d := range ns {
		if d <= 0 {
			t.Fatalf("servedNs[%d] = %d, want > 0", i, d)
		}
	}
	if n, _ := e.ServedCount(tenantName(0)); n != 10 {
		t.Fatalf("served %d before onDone-implied drain, want 10", n)
	}

	// wantNs false: callback still fires, with nil durations.
	if _, err := e.ServeBatch(tenantName(0), items[10:], false, func(served int, ns []int64) {
		if ns != nil {
			t.Errorf("servedNs = %v, want nil without wantNs", ns)
		}
		done <- nil
	}); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestServeBatchPrefixOnError checks the good-prefix contract: the first
// invalid item stops admission, the prefix is served, and the error
// classifies like the single-op path.
func TestServeBatchPrefixOnError(t *testing.T) {
	tr := fixedTrace(9, 8, 4, 10)
	e := New(Config{Shards: 1, Seed: 1})
	defer e.Close()
	if err := createTraceTenants(e, tr, 1); err != nil {
		t.Fatal(err)
	}
	good := instance.Request{Point: 0, Demands: commodity.New(0)}
	bad := instance.Request{Point: 9999, Demands: commodity.New(0)}
	n, err := e.ServeBatch(tenantName(0), []BatchItem{{Req: good}, {Req: good}, {Req: bad}, {Req: good}}, false, nil)
	if n != 2 || err == nil || !strings.Contains(err.Error(), "outside space") {
		t.Fatalf("ServeBatch = %d, %v; want 2 + point error", n, err)
	}
	e.Drain()
	if served, _ := e.ServedCount(tenantName(0)); served != 2 {
		t.Fatalf("served %d, want the 2-item prefix", served)
	}

	// Unknown tenant: nothing admitted, sentinel preserved.
	n, err = e.ServeBatch("nobody", []BatchItem{{Req: good}}, false, nil)
	if n != 0 || !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("ServeBatch(nobody) = %d, %v", n, err)
	}
}
