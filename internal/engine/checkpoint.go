package engine

import (
	"bytes"
	"compress/flate"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

// Checkpoint format versions. Version 1 recorded every tenant's full arrival
// history and restored by replaying all of it — O(history) work and
// unbounded growth. Version 2 (the format Checkpoint now writes) records,
// per tenant, a base snapshot of the algorithm's serialized state plus only
// the arrival-log segment served since that base, so Restore loads the state
// and replays O(segment) arrivals. Version 1 checkpoints remain readable:
// Restore treats them as an empty base with the full history as the tail.
const (
	CheckpointVersionV1 = 1
	CheckpointVersion   = 2
)

// Checkpoint is a durable, self-contained record of an engine's state: for
// every tenant, the substrate it was created on (matrix metric + size cost
// table, the same serializable shape as the op protocol and gentrace files),
// an optional base state snapshot, and the arrival segment served since the
// base. Tenant algorithm seeds derive from the engine seed and the tenant
// name — never from timing or shard layout — so re-creating each tenant,
// loading its base state and replaying its tail reproduces its state
// byte-for-byte: snapshot(before crash) == snapshot(restore + replay).
type Checkpoint struct {
	Version   int    `json:"version"`
	Algorithm string `json:"algorithm"`
	Seed      int64  `json:"seed"`
	// Compression flags how tenant base states are encoded: "" for inline
	// JSON in base_state, CompressionFlate for flate-compressed bytes in
	// base_state_z. WriteFile compresses; ReadCheckpointFile and Restore
	// transparently decompress, so uncompressed v2 (and v1) checkpoints
	// remain restorable.
	Compression string             `json:"compression,omitempty"`
	Tenants     []TenantCheckpoint `json:"tenants"`
}

// CompressionFlate marks base states stored flate-compressed (RFC 1951) in
// the base_state_z field. The base states are the bulk of a v2 checkpoint —
// per-request duals and credit ledgers serialize to highly redundant JSON —
// so compressing just them recovers most of the size v2 pays over v1 while
// the arrival tails stay greppable.
const CompressionFlate = "flate"

// TenantCheckpoint is one tenant's restorable record.
type TenantCheckpoint struct {
	Tenant string `json:"tenant"`
	TenantOrigin

	// BaseState is the tenant algorithm's serialized state at BaseServed
	// arrivals (online.StateCodec), with the cost accounting frozen at
	// that moment. Absent (v1 checkpoints, or never-sealed v2 tenants)
	// the tenant restores from genesis.
	BaseState json.RawMessage `json:"base_state,omitempty"`
	// BaseStateZ is BaseState flate-compressed (checkpoints with the
	// Compression header set); exactly one of the two is present.
	BaseStateZ       []byte  `json:"base_state_z,omitempty"`
	BaseServed       int     `json:"base_served,omitempty"`
	BaseConstruction float64 `json:"base_construction,omitempty"`
	BaseAssignment   float64 `json:"base_assignment,omitempty"`

	// Arrivals is the append-only arrival-log segment since the base
	// (v1: the full history). Restore replays exactly these.
	Arrivals []ArrivalRecord `json:"arrivals"`
}

// TenantOrigin is the serializable description of a tenant's substrate.
type TenantOrigin struct {
	Universe   int         `json:"universe"`
	Distances  [][]float64 `json:"distances"`
	CostBySize []float64   `json:"cost_by_size"`
}

// ArrivalRecord is one served arrival.
type ArrivalRecord struct {
	Point   int   `json:"point"`
	Demands []int `json:"demands"`
}

// Arrivals returns the total arrival count the checkpoint represents:
// arrivals folded into base states plus tail segments.
func (ck *Checkpoint) Arrivals() int {
	n := 0
	for i := range ck.Tenants {
		n += ck.Tenants[i].BaseServed + len(ck.Tenants[i].Arrivals)
	}
	return n
}

// TailArrivals returns the arrival count in the tail segments only — the
// number of arrivals a restore of this checkpoint will replay.
func (ck *Checkpoint) TailArrivals() int {
	n := 0
	for i := range ck.Tenants {
		n += len(ck.Tenants[i].Arrivals)
	}
	return n
}

// checkpointOrigin returns the tenant's serializable origin, synthesizing
// (and caching) one from its space and cost model when the tenant was
// created through the API rather than the op protocol. Must run on the
// tenant's shard goroutine. Synthesis materializes the distance matrix and
// samples the cost model into a by-size table; like workload.WriteJSON it
// fails on cost models that are detectably non-uniform across points, which
// a size table cannot represent.
func (t *tenant) checkpointOrigin() (*TenantOrigin, error) {
	if t.origin != nil {
		return t.origin, nil
	}
	n := t.space.Len()
	u := t.costs.Universe()
	o := &TenantOrigin{
		Universe:   u,
		Distances:  make([][]float64, n),
		CostBySize: make([]float64, u+1),
	}
	for i := 0; i < n; i++ {
		o.Distances[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			o.Distances[i][j] = t.space.Distance(i, j)
		}
	}
	for k := 1; k <= u; k++ {
		cfg := commodity.Full(k)
		c0 := t.costs.Cost(0, cfg)
		for m := 1; m < n; m++ {
			if t.costs.Cost(m, cfg) != c0 { //omflp:floatexact — uniformity probe: any bitwise difference must reject the export
				return nil, fmt.Errorf("engine: tenant %q: cost model %q is non-uniform across points; not checkpointable",
					t.id, t.costs.Name())
			}
		}
		o.CostBySize[k] = c0
	}
	t.origin = o
	return o, nil
}

// checkpointV2 builds the tenant's v2 record; shard goroutine only. A
// non-recording tenant is sealed on every capture (base = now, empty tail);
// a recording tenant re-bases only when its tail reached SealEvery (the
// serve path normally keeps that invariant already) and otherwise reuses the
// cached base bytes.
func (t *tenant) checkpointV2() (TenantCheckpoint, error) {
	o, err := t.checkpointOrigin()
	if err != nil {
		return TenantCheckpoint{}, err
	}
	if !t.record {
		if err := t.seal(); err != nil {
			return TenantCheckpoint{}, fmt.Errorf("%v (enable Config.RecordArrivals to checkpoint by arrival replay)", err)
		}
	} else if t.sealEvery > 0 && !t.sealBroken && len(t.history) >= t.sealEvery {
		if t.seal() != nil {
			t.sealBroken = true // fall back to the full tail below
		}
	}
	tc := TenantCheckpoint{
		Tenant:           t.id,
		TenantOrigin:     *o,
		BaseState:        t.baseState,
		BaseServed:       t.baseServed,
		BaseConstruction: t.baseConstruction,
		BaseAssignment:   t.baseAssignment,
		Arrivals:         make([]ArrivalRecord, len(t.history)),
	}
	for i, r := range t.history {
		tc.Arrivals[i] = ArrivalRecord{Point: r.Point, Demands: r.Demands.IDs()}
	}
	return tc, nil
}

// checkpointV1 builds the tenant's legacy v1 record: the full arrival
// history, no base. It errors once any arrivals have been folded into a
// base (the history is then no longer complete). Shard goroutine only.
func (t *tenant) checkpointV1() (TenantCheckpoint, error) {
	if !t.record {
		return TenantCheckpoint{}, fmt.Errorf("engine: tenant %q: v1 checkpoints require Config.RecordArrivals", t.id)
	}
	if t.baseServed > 0 {
		return TenantCheckpoint{}, fmt.Errorf("engine: tenant %q: %d arrivals already sealed into a base state; v1 checkpoint impossible (set Config.SealEvery < 0 to disable sealing)",
			t.id, t.baseServed)
	}
	o, err := t.checkpointOrigin()
	if err != nil {
		return TenantCheckpoint{}, err
	}
	tc := TenantCheckpoint{
		Tenant:       t.id,
		TenantOrigin: *o,
		Arrivals:     make([]ArrivalRecord, len(t.history)),
	}
	for i, r := range t.history {
		tc.Arrivals[i] = ArrivalRecord{Point: r.Point, Demands: r.Demands.IDs()}
	}
	return tc, nil
}

// Checkpoint captures a consistent engine checkpoint in format v2: every
// tenant's record is taken on its shard goroutine, serialized with its
// arrival stream, so each record is a consistent cut covering everything
// admitted for the tenant before the call. Tenants are sorted by name,
// making the artifact deterministic.
//
// With Config.RecordArrivals the capture is cheap — cached base bytes plus
// the bounded arrival tail. Without it, every tenant's algorithm state is
// marshaled afresh on every call, which requires the algorithm to implement
// online.StateCodec (both built-in algorithms do); tenants whose substrate
// cannot be serialized error in either mode.
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	return e.capture(CheckpointVersion, (*tenant).checkpointV2)
}

// CheckpointV1 captures a checkpoint in the legacy v1 format (full arrival
// history, no base states) — for migration tests and format benchmarks. It
// requires Config.RecordArrivals and fails once any tenant has sealed part
// of its history into a base (disable sealing with Config.SealEvery < 0).
func (e *Engine) CheckpointV1() (*Checkpoint, error) {
	if !e.cfg.RecordArrivals {
		return nil, fmt.Errorf("engine: CheckpointV1 requires Config.RecordArrivals")
	}
	return e.capture(CheckpointVersionV1, (*tenant).checkpointV1)
}

func (e *Engine) capture(version int, record func(*tenant) (TenantCheckpoint, error)) (*Checkpoint, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: %w", ErrClosed)
	}
	tns := make([]*tenant, 0, len(e.tenants))
	for _, t := range e.tenants { //omflp:orderinvariant — collected tenants are sorted by their unique id on the next line
		tns = append(tns, t)
	}
	e.mu.Unlock()
	sort.Slice(tns, func(i, j int) bool { return tns[i].id < tns[j].id })

	byShard := map[*shard][]*tenant{}
	for _, t := range tns {
		byShard[t.shard] = append(byShard[t.shard], t)
	}
	records := make(map[string]TenantCheckpoint, len(tns))
	var rmu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for s, group := range byShard { //omflp:orderinvariant — shards run concurrently and merge into a tenant-id-keyed map; iteration order is immaterial
		wg.Add(1)
		go func(s *shard, group []*tenant) {
			defer wg.Done()
			s.control(func() {
				for _, t := range group {
					tc, err := record(t)
					rmu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					records[t.id] = tc
					rmu.Unlock()
				}
			})
		}(s, group)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	ck := &Checkpoint{
		Version:   version,
		Algorithm: e.cfg.algoName(),
		Seed:      e.cfg.Seed,
		Tenants:   make([]TenantCheckpoint, len(tns)),
	}
	for i, t := range tns {
		ck.Tenants[i] = records[t.id]
	}
	return ck, nil
}

// RestoreStats reports what a Restore did: how many tenants were rebuilt,
// the total arrivals the checkpoint represents, how many of those were
// actually replayed through the serve path (the tail segments — the rest
// were loaded as serialized state), and the base-state volume loaded.
type RestoreStats struct {
	Tenants     int   `json:"tenants"`
	Arrivals    int   `json:"arrivals"`
	Replayed    int   `json:"replayed"`
	BasesLoaded int   `json:"bases_loaded"`
	StateBytes  int64 `json:"state_bytes"`
}

// Restore rebuilds the checkpointed tenants on the engine: each tenant is
// re-created on its serialized substrate, its base state (if any) is loaded
// through online.StateCodec, and only the tail segment is replayed through
// the normal serve path — O(segment) serve work per tenant, not O(history).
// The engine's algorithm and seed must match the checkpoint's — restoring
// under different ones would silently change every tenant's decisions — and
// none of the checkpointed tenants may already exist. Restore returns once
// all tail arrivals are admitted; snapshots (which serialize behind the
// replay on each shard) see the restored state.
func (e *Engine) Restore(ck *Checkpoint) (RestoreStats, error) {
	var stats RestoreStats
	switch ck.Version {
	case CheckpointVersionV1, CheckpointVersion:
	default:
		return stats, fmt.Errorf("engine: checkpoint version %d, want %d or %d",
			ck.Version, CheckpointVersionV1, CheckpointVersion)
	}
	// Normalize compressed base states so callers may hand Restore a raw
	// unmarshaled artifact without going through ReadCheckpointFile; the
	// caller's document is left untouched.
	ck, err := ck.decompressed()
	if err != nil {
		return stats, err
	}
	if got, want := e.cfg.algoName(), ck.Algorithm; got != want {
		return stats, fmt.Errorf("engine: checkpoint was taken with algorithm %q, engine runs %q", want, got)
	}
	if e.cfg.Seed != ck.Seed {
		return stats, fmt.Errorf("engine: checkpoint was taken with seed %d, engine runs seed %d", ck.Seed, e.cfg.Seed)
	}
	for i := range ck.Tenants {
		tc := &ck.Tenants[i]
		baseLoaded, err := e.restoreTenant(tc)
		if err != nil {
			return stats, err
		}
		if baseLoaded {
			stats.BasesLoaded++
			stats.StateBytes += int64(len(tc.BaseState))
		}
		stats.Tenants++
		stats.Arrivals += tc.BaseServed + len(tc.Arrivals)
		stats.Replayed += len(tc.Arrivals)
	}
	return stats, nil
}

// restoreTenant rebuilds one checkpointed tenant on the engine: it is
// re-created on its serialized substrate, its base state (if any) is loaded
// through online.StateCodec, and the tail segment is replayed through the
// normal serve path. Shared by Restore and InjectTenant — the mechanism that
// makes kill -9 safe is the same one that makes tenants movable while live.
// It returns whether a base state was loaded; replayed arrivals are admitted
// but not necessarily served on return.
func (e *Engine) restoreTenant(tc *TenantCheckpoint) (baseLoaded bool, err error) {
	if len(tc.CostBySize) != tc.Universe+1 {
		return false, fmt.Errorf("engine: restore %q: cost table has %d entries for universe %d",
			tc.Tenant, len(tc.CostBySize), tc.Universe)
	}
	table, err := cost.NewTable(tc.CostBySize)
	if err != nil {
		return false, fmt.Errorf("engine: restore %q: %v", tc.Tenant, err)
	}
	origin := tc.TenantOrigin
	if err := e.createTenant(tc.Tenant, metric.NewMatrix(tc.Distances), table, &origin); err != nil {
		return false, err
	}
	if len(tc.BaseState) > 0 {
		if err := e.loadBase(tc); err != nil {
			return false, fmt.Errorf("engine: restore %q: %v", tc.Tenant, err)
		}
		baseLoaded = true
	}
	for _, a := range tc.Arrivals {
		err := e.Serve(tc.Tenant, instance.Request{Point: a.Point, Demands: commodity.New(a.Demands...)})
		if err != nil {
			return baseLoaded, fmt.Errorf("engine: restore %q: %v", tc.Tenant, err)
		}
	}
	return baseLoaded, nil
}

// loadBase installs a checkpointed base state into a freshly created tenant:
// the algorithm state is unmarshaled and the serve counters are set to their
// sealed values, all on the shard goroutine so it serializes before any
// replayed arrivals.
func (e *Engine) loadBase(tc *TenantCheckpoint) error {
	e.mu.Lock()
	t := e.tenants[tc.Tenant]
	e.mu.Unlock()
	var rerr error
	t.shard.control(func() {
		sc, ok := t.alg.(online.StateCodec)
		if !ok {
			rerr = fmt.Errorf("checkpoint has a base state but algorithm %q cannot load one", t.alg.Name())
			return
		}
		if err := sc.UnmarshalState(tc.BaseState); err != nil {
			rerr = err
			return
		}
		t.served = tc.BaseServed
		t.admitted.Store(int64(tc.BaseServed))
		t.construction = tc.BaseConstruction
		t.assignment = tc.BaseAssignment
		t.facCursor = len(t.alg.Solution().Facilities)
		t.baseState = tc.BaseState
		t.baseServed = tc.BaseServed
		t.baseConstruction = tc.BaseConstruction
		t.baseAssignment = tc.BaseAssignment
	})
	return rerr
}

// Compressed returns a copy of the checkpoint with every tenant base state
// flate-compressed into BaseStateZ and the Compression header set. Tenant
// records without a base state (v1 checkpoints, never-sealed tenants) pass
// through unchanged; an already-compressed checkpoint is returned as is.
// The copy shares the arrival segments and origins with the receiver.
func (ck *Checkpoint) Compressed() (*Checkpoint, error) {
	if ck.Compression == CompressionFlate {
		return ck, nil
	}
	if ck.Compression != "" {
		return nil, fmt.Errorf("engine: checkpoint has unknown compression %q", ck.Compression)
	}
	out := *ck
	out.Compression = CompressionFlate
	out.Tenants = make([]TenantCheckpoint, len(ck.Tenants))
	for i, tc := range ck.Tenants {
		if len(tc.BaseState) > 0 {
			z, err := deflate(tc.BaseState)
			if err != nil {
				return nil, fmt.Errorf("engine: compress %q base state: %v", tc.Tenant, err)
			}
			tc.BaseStateZ, tc.BaseState = z, nil
		}
		out.Tenants[i] = tc
	}
	return &out, nil
}

// Decompress normalizes the checkpoint in place: compressed base states are
// inflated back into BaseState and the Compression header cleared, so every
// consumer downstream sees the inline-JSON layout regardless of how the
// artifact was encoded. Uncompressed checkpoints are left untouched.
func (ck *Checkpoint) Decompress() error {
	out, err := ck.decompressed()
	if err != nil {
		return err
	}
	if out != ck {
		*ck = *out
	}
	return nil
}

// decompressed is the non-mutating form of Decompress: it returns the
// receiver itself when already uncompressed, otherwise a normalized copy
// with every base state inflated (sharing arrival segments and origins).
// Restore goes through it so a caller's compressed document — possibly
// shared across engines — is never written to.
func (ck *Checkpoint) decompressed() (*Checkpoint, error) {
	switch ck.Compression {
	case "":
		return ck, nil
	case CompressionFlate:
	default:
		return nil, fmt.Errorf("engine: checkpoint has unknown compression %q", ck.Compression)
	}
	out := *ck
	out.Compression = ""
	out.Tenants = make([]TenantCheckpoint, len(ck.Tenants))
	for i, tc := range ck.Tenants {
		if len(tc.BaseStateZ) > 0 {
			data, err := inflate(tc.BaseStateZ)
			if err != nil {
				return nil, fmt.Errorf("engine: decompress %q base state: %v", tc.Tenant, err)
			}
			tc.BaseState, tc.BaseStateZ = data, nil
		}
		out.Tenants[i] = tc
	}
	return &out, nil
}

func deflate(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func inflate(z []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(z))
	defer r.Close()
	return io.ReadAll(r)
}

// WriteFile writes the checkpoint to path atomically: the JSON document goes
// to a temporary file in the same directory, is synced, and is renamed over
// path — a crash mid-write never corrupts the previous checkpoint. Base
// states are flate-compressed on the way out (flagged in the header; see
// Compressed). It returns the encoded size in bytes.
func (ck *Checkpoint) WriteFile(path string) (int, error) {
	zck, err := ck.Compressed()
	if err != nil {
		return 0, err
	}
	data, err := json.Marshal(zck)
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	return len(data), os.Rename(tmp.Name(), path)
}

// ReadCheckpointFile reads a checkpoint written by WriteFile (either format
// version, compressed or not) and returns it in normalized, decompressed
// form.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("engine: checkpoint %s: %v", path, err)
	}
	if err := ck.Decompress(); err != nil {
		return nil, fmt.Errorf("engine: checkpoint %s: %v", path, err)
	}
	return &ck, nil
}
