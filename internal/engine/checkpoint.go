package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// CheckpointVersion is the format version written into checkpoints; Restore
// rejects anything else.
const CheckpointVersion = 1

// Checkpoint is a durable, self-contained record of an engine's state: for
// every tenant, the substrate it was created on (matrix metric + size cost
// table, the same serializable shape as the op protocol and gentrace files)
// and the exact arrival sequence it has served. Because tenant algorithm
// seeds derive from the engine seed and the tenant name — never from timing
// or shard layout — re-creating each tenant and replaying its arrivals
// reproduces its state byte-for-byte: snapshot(before crash) ==
// snapshot(restore + replay).
type Checkpoint struct {
	Version   int                `json:"version"`
	Algorithm string             `json:"algorithm"`
	Seed      int64              `json:"seed"`
	Tenants   []TenantCheckpoint `json:"tenants"`
}

// TenantCheckpoint is one tenant's replayable record.
type TenantCheckpoint struct {
	Tenant string `json:"tenant"`
	TenantOrigin
	Arrivals []ArrivalRecord `json:"arrivals"`
}

// TenantOrigin is the serializable description of a tenant's substrate.
type TenantOrigin struct {
	Universe   int         `json:"universe"`
	Distances  [][]float64 `json:"distances"`
	CostBySize []float64   `json:"cost_by_size"`
}

// ArrivalRecord is one served arrival.
type ArrivalRecord struct {
	Point   int   `json:"point"`
	Demands []int `json:"demands"`
}

// Arrivals returns the total arrival count recorded in the checkpoint.
func (ck *Checkpoint) Arrivals() int {
	n := 0
	for i := range ck.Tenants {
		n += len(ck.Tenants[i].Arrivals)
	}
	return n
}

// checkpointOrigin returns the tenant's serializable origin, synthesizing
// (and caching) one from its space and cost model when the tenant was
// created through the API rather than the op protocol. Must run on the
// tenant's shard goroutine. Synthesis materializes the distance matrix and
// samples the cost model into a by-size table; like workload.WriteJSON it
// fails on cost models that are detectably non-uniform across points, which
// a size table cannot represent.
func (t *tenant) checkpointOrigin() (*TenantOrigin, error) {
	if t.origin != nil {
		return t.origin, nil
	}
	n := t.space.Len()
	u := t.costs.Universe()
	o := &TenantOrigin{
		Universe:   u,
		Distances:  make([][]float64, n),
		CostBySize: make([]float64, u+1),
	}
	for i := 0; i < n; i++ {
		o.Distances[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			o.Distances[i][j] = t.space.Distance(i, j)
		}
	}
	for k := 1; k <= u; k++ {
		cfg := commodity.Full(k)
		c0 := t.costs.Cost(0, cfg)
		for m := 1; m < n; m++ {
			if t.costs.Cost(m, cfg) != c0 {
				return nil, fmt.Errorf("engine: tenant %q: cost model %q is non-uniform across points; not checkpointable",
					t.id, t.costs.Name())
			}
		}
		o.CostBySize[k] = c0
	}
	t.origin = o
	return o, nil
}

// checkpoint builds the tenant's replayable record; shard goroutine only.
func (t *tenant) checkpoint() (TenantCheckpoint, error) {
	o, err := t.checkpointOrigin()
	if err != nil {
		return TenantCheckpoint{}, err
	}
	tc := TenantCheckpoint{
		Tenant:       t.id,
		TenantOrigin: *o,
		Arrivals:     make([]ArrivalRecord, len(t.history)),
	}
	for i, r := range t.history {
		tc.Arrivals[i] = ArrivalRecord{Point: r.Point, Demands: r.Demands.IDs()}
	}
	return tc, nil
}

// Checkpoint captures a consistent engine checkpoint: every tenant's record
// is taken on its shard goroutine, serialized with its arrival stream, so
// each tenant's arrival list is a consistent cut covering everything
// admitted for it before the call. Tenants are sorted by name, making the
// artifact deterministic. Requires Config.RecordArrivals; errors otherwise,
// and on tenants whose substrate cannot be serialized.
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	if !e.cfg.RecordArrivals {
		return nil, fmt.Errorf("engine: Checkpoint requires Config.RecordArrivals")
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: %w", ErrClosed)
	}
	tns := make([]*tenant, 0, len(e.tenants))
	for _, t := range e.tenants {
		tns = append(tns, t)
	}
	e.mu.Unlock()
	sort.Slice(tns, func(i, j int) bool { return tns[i].id < tns[j].id })

	byShard := map[*shard][]*tenant{}
	for _, t := range tns {
		byShard[t.shard] = append(byShard[t.shard], t)
	}
	records := make(map[string]TenantCheckpoint, len(tns))
	var rmu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for s, group := range byShard {
		wg.Add(1)
		go func(s *shard, group []*tenant) {
			defer wg.Done()
			s.control(func() {
				for _, t := range group {
					tc, err := t.checkpoint()
					rmu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					records[t.id] = tc
					rmu.Unlock()
				}
			})
		}(s, group)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	ck := &Checkpoint{
		Version:   CheckpointVersion,
		Algorithm: e.cfg.algoName(),
		Seed:      e.cfg.Seed,
		Tenants:   make([]TenantCheckpoint, len(tns)),
	}
	for i, t := range tns {
		ck.Tenants[i] = records[t.id]
	}
	return ck, nil
}

// Restore rebuilds the checkpointed tenants on the engine: each tenant is
// re-created on its serialized substrate and its arrivals are replayed
// through the normal serve path. The engine's algorithm and seed must match
// the checkpoint's — restoring under different ones would silently change
// every tenant's decisions — and none of the checkpointed tenants may
// already exist. Restore returns once all arrivals are admitted; snapshots
// (which serialize behind the replay on each shard) see the restored state.
func (e *Engine) Restore(ck *Checkpoint) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("engine: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	if got, want := e.cfg.algoName(), ck.Algorithm; got != want {
		return fmt.Errorf("engine: checkpoint was taken with algorithm %q, engine runs %q", want, got)
	}
	if e.cfg.Seed != ck.Seed {
		return fmt.Errorf("engine: checkpoint was taken with seed %d, engine runs seed %d", ck.Seed, e.cfg.Seed)
	}
	for i := range ck.Tenants {
		tc := &ck.Tenants[i]
		if len(tc.CostBySize) != tc.Universe+1 {
			return fmt.Errorf("engine: restore %q: cost table has %d entries for universe %d",
				tc.Tenant, len(tc.CostBySize), tc.Universe)
		}
		table, err := cost.NewTable(tc.CostBySize)
		if err != nil {
			return fmt.Errorf("engine: restore %q: %v", tc.Tenant, err)
		}
		origin := tc.TenantOrigin
		if err := e.createTenant(tc.Tenant, metric.NewMatrix(tc.Distances), table, &origin); err != nil {
			return err
		}
		for _, a := range tc.Arrivals {
			err := e.Serve(tc.Tenant, instance.Request{Point: a.Point, Demands: commodity.New(a.Demands...)})
			if err != nil {
				return fmt.Errorf("engine: restore %q: %v", tc.Tenant, err)
			}
		}
	}
	return nil
}

// WriteFile writes the checkpoint to path atomically: the JSON document goes
// to a temporary file in the same directory, is synced, and is renamed over
// path — a crash mid-write never corrupts the previous checkpoint.
func (ck *Checkpoint) WriteFile(path string) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadCheckpointFile reads a checkpoint written by WriteFile.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("engine: checkpoint %s: %v", path, err)
	}
	return &ck, nil
}
