// Package engine is the streaming serving subsystem: a long-lived Engine
// hosts many independent OMFLP instances ("tenants"), shards them across a
// pool of goroutines with bounded mailboxes, ingests arrivals continuously
// (API calls, JSON-lines op streams, or gentrace file traces) and exposes
// per-tenant state snapshots plus engine-wide metrics.
//
// The paper's algorithms are inherently online — they serve one arrival at a
// time — and the engine is the abstraction that serves them that way: unlike
// the batch experiment harness in internal/sim, nothing here rebuilds the
// world per table row; tenants live for as long as the engine does and every
// arrival is served exactly once, irrevocably.
//
// # Sharding and determinism
//
// Each tenant is pinned to one shard by a hash of its name, so all of a
// tenant's arrivals are served in ingestion order by a single goroutine —
// no locks on algorithm state, no cross-shard coordination. Tenants are
// independent, so the interleaving across shards cannot affect any tenant's
// final state: a fixed trace yields byte-identical snapshots for every shard
// count (the streaming analogue of internal/par's ordered-merge discipline).
// Randomized tenants draw their rng seed from the engine seed and the tenant
// name (workload.NamedSeed), never from creation order or shard layout.
//
// # Snapshots and metrics
//
// Snapshot and SnapshotAll return TenantSnapshot values: the open facilities
// (point + offered commodities), per-request facility assignments, the
// cost-so-far split into construction and connection, and — for PD-OMFLP
// tenants — the dual total whose triple upper-bounds the algorithm's cost
// (Corollary 8), i.e. a certified lower bound on the achievable cost of the
// served prefix. Snapshots are taken on the owning shard's goroutine,
// serialized with the tenant's arrival stream, so they are always consistent
// cuts of a tenant's state. Metrics reports arrivals/s (lifetime and since
// the previous call), p50/p99 serve latency from lock-free histograms, and
// the current mailbox depth.
package engine

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/workload"
)

// Sentinel errors, wrapped by the engine's error returns so network front
// ends can map them to protocol statuses (404/409/503) with errors.Is.
var (
	ErrClosed          = errors.New("engine closed")
	ErrUnknownTenant   = errors.New("unknown tenant")
	ErrDuplicateTenant = errors.New("tenant already exists")
	// ErrArrivalGap: a position-keyed batch (ServeBatchAt) starts beyond the
	// tenant's admitted count — accepting it would skip arrivals. The sender
	// must re-sync its position (409 on the HTTP surface).
	ErrArrivalGap = errors.New("arrival position beyond admitted count")
)

// Shard assignment policies for Config.ShardPolicy.
const (
	// PolicyHash pins each tenant to a shard by a hash of its name:
	// stable across runs and independent of creation order, but several
	// hot tenants can collide on one shard.
	PolicyHash = "hash"
	// PolicyLeastLoad assigns each new tenant to the shard currently
	// hosting the fewest tenants (ties to the lowest shard index):
	// deterministic given creation order, and immune to hash collisions
	// piling hot tenants onto one goroutine.
	PolicyLeastLoad = "leastload"
)

// Config configures an Engine.
type Config struct {
	// Algorithm selects the per-tenant serving algorithm: "pd" (default,
	// deterministic primal-dual) or "rand" (randomized Meyerson-style).
	Algorithm string
	// Shards is the number of serving goroutines; <= 0 means GOMAXPROCS.
	Shards int
	// Mailbox is the per-shard queue capacity (arrivals admitted but not
	// yet served); <= 0 means 256. A full mailbox blocks Serve — the
	// engine's backpressure.
	Mailbox int
	// Seed drives all tenant randomness (rand tenants derive per-tenant
	// seeds from it and their name). Fixed seed + fixed trace = identical
	// snapshots for every shard count.
	Seed int64
	// ShardPolicy selects how tenants are pinned to shards: PolicyHash
	// (default) or PolicyLeastLoad. Tenants are independent, so the policy
	// never affects any tenant's snapshot — only load balance.
	ShardPolicy string
	// RecordArrivals keeps each tenant's served arrival tail (the segment
	// since its last sealed base state) in memory. With it, periodic
	// checkpoints are cheap — cached base bytes plus a short tail — and
	// restores replay at most SealEvery arrivals. Without it, Checkpoint
	// falls back to marshaling every tenant's full algorithm state on every
	// call (requires the algorithm to implement online.StateCodec), and
	// restores replay nothing.
	RecordArrivals bool
	// SealEvery bounds a recording tenant's in-memory arrival tail: once
	// the tail reaches SealEvery arrivals the tenant re-bases — marshals
	// its algorithm state as the new checkpoint base and truncates the
	// tail — so checkpoint restores replay at most SealEvery arrivals
	// (checkpoint format v2). 0 means the 4096 default; negative disables
	// sealing entirely (unbounded tails, full-replay restores — the v1
	// behavior, required to capture v1-format checkpoints).
	SealEvery int
	// Options is passed through to the core algorithms.
	Options core.Options
	// TraceSample enables op tracing: 1 in TraceSample arrivals entering
	// through a tracing front end gets a full per-stage latency record and
	// a flight-recorder entry. 0 disables tracing entirely — the serve hot
	// path then carries only nil checks. Tracing is observation-only:
	// snapshots stay byte-identical whatever the sample rate.
	TraceSample int
	// FlightRecords sizes each shard's flight ring (last N traced ops);
	// <= 0 means DefaultFlightRecords. Only meaningful with TraceSample.
	FlightRecords int
	// Logger receives structured lifecycle events (seal failures). nil
	// means discard.
	Logger *slog.Logger
}

// DefaultFlightRecords is the per-shard flight-ring capacity used when
// Config.FlightRecords is zero.
const DefaultFlightRecords = 256

// DefaultSealEvery is the arrival-tail bound used when Config.SealEvery is
// zero.
const DefaultSealEvery = 4096

// algoName returns the normalized algorithm name ("" means "pd").
func (c Config) algoName() string {
	if c.Algorithm == "" {
		return "pd"
	}
	return c.Algorithm
}

func (c Config) factory() (online.Factory, error) {
	switch c.Algorithm {
	case "", "pd":
		return core.PDFactory(c.Options), nil
	case "rand":
		return core.RandFactory(c.Options), nil
	default:
		return online.Factory{}, fmt.Errorf("engine: unknown algorithm %q (want pd or rand)", c.Algorithm)
	}
}

// Engine hosts tenants and serves their arrival streams. Create one with
// New, feed it via Serve / ReplayOps / ReplayTrace, inspect it via Snapshot
// and Metrics, and Close it when the stream ends. Serve may be called from
// many goroutines; it must not race with Close.
type Engine struct {
	cfg     Config
	factory online.Factory
	shards  []*shard
	start   time.Time
	logger  *slog.Logger

	// tracer decides which arrivals get per-stage records (nil = tracing
	// off); errRing remembers admission rejections (unknown tenant, bad
	// demands), which never reach a shard ring.
	tracer  *obs.Tracer
	errRing *obs.Flight

	mu        sync.Mutex
	tenants   map[string]*tenant
	loads     []int // tenants assigned per shard (least-load policy + metrics)
	closed    bool
	lastAt    time.Time // previous Metrics call, for windowed rates
	lastSrvd  []int64   // served per shard at the previous Metrics call
	scrapeSeq int64     // Metrics calls so far (Metrics.Seq)
}

// tenant is one hosted OMFLP instance. After creation its mutable state is
// owned by its shard's goroutine: serve and snapshots both execute there.
type tenant struct {
	id       string
	shard    *shard
	shardIdx int // index of shard in Engine.shards (load accounting)
	space    metric.Space
	costs    cost.Model
	universe commodity.Set // Full(|S|), for admission-time demand validation
	alg      online.Algorithm

	served       int
	construction float64
	assignment   float64
	facCursor    int // facilities already priced into construction

	// Stream-position accounting for idempotent, position-keyed ingestion
	// (ServeBatchAt): admitted counts arrivals accepted into the mailbox —
	// it leads served by the queue depth and equals it once drained.
	// admitMu serializes position-checked admissions so concurrent retries
	// of the same position cannot both pass the dedup check. Only the
	// position-keyed path takes it; plain Serve/ServeBatch stay lock-free
	// (mixing keyed and unkeyed senders on one tenant is unsupported, as is
	// any multi-writer tenant — per-tenant order is the determinism
	// contract).
	admitMu  sync.Mutex
	admitted atomic.Int64

	// record + history support Checkpoint: the served arrival tail,
	// appended on the shard goroutine, replayable on restore. origin is
	// the serializable (matrix metric, size table) description of the
	// tenant's substrate — provided by op-stream creation, or synthesized
	// lazily at checkpoint time for API-created tenants.
	record  bool
	history []instance.Request
	origin  *TenantOrigin

	// Checkpoint v2 base: the algorithm state marshaled at the last seal,
	// with the serve counters frozen at that moment. history holds only
	// the arrivals served since. sealEvery caps the tail (0 = never seal);
	// sealBroken latches a failed seal so the serve path does not retry
	// the marshal on every arrival. All owned by the shard goroutine.
	sealEvery        int
	sealBroken       bool
	baseState        []byte
	baseServed       int
	baseConstruction float64
	baseAssignment   float64

	logger *slog.Logger
}

// seal re-bases the tenant: its algorithm state becomes the new checkpoint
// base and the arrival tail resets. Must run on the shard goroutine.
func (t *tenant) seal() error {
	sc, ok := t.alg.(online.StateCodec)
	if !ok {
		return fmt.Errorf("engine: tenant %q: algorithm does not support state serialization", t.id)
	}
	data, err := sc.MarshalState()
	if err != nil {
		return fmt.Errorf("engine: tenant %q: %v", t.id, err)
	}
	t.baseState = data
	t.baseServed = t.served
	t.baseConstruction = t.construction
	t.baseAssignment = t.assignment
	t.history = t.history[:0]
	return nil
}

// serve processes one arrival and keeps the cost accounting incremental:
// facilities only open and assignments never change retroactively, so the
// deltas are exact. rec, when non-nil, gets its serve-stage stamp closed
// right after the algorithm's Serve call, so post-serve bookkeeping (cost
// accounting, seal-triggered state marshals) lands in the ack stage.
func (t *tenant) serve(r instance.Request, rec *obs.OpRecord) {
	t.alg.Serve(r)
	if rec != nil {
		rec.MarkServed()
	}
	sol := t.alg.Solution()
	for _, f := range sol.Facilities[t.facCursor:] {
		t.construction += t.costs.Cost(f.Point, f.Config)
	}
	t.facCursor = len(sol.Facilities)
	for _, fi := range sol.Assign[len(sol.Assign)-1] {
		t.assignment += t.space.Distance(r.Point, sol.Facilities[fi].Point)
	}
	t.served++
	if t.record {
		t.history = append(t.history, r)
		if t.sealEvery > 0 && !t.sealBroken && len(t.history) >= t.sealEvery {
			// Re-base so the tail never exceeds SealEvery. A failed
			// marshal (algorithm without state support) latches: the
			// tail then grows unbounded and checkpoints fall back to
			// full-replay restores.
			if err := t.seal(); err != nil {
				t.sealBroken = true
				t.logger.Warn("seal failed; tail now unbounded",
					"tenant", t.id, "served", t.served, "err", err)
			}
		}
	}
}

// shardOp is one mailbox entry: an arrival for a tenant, a batch of arrivals
// for one tenant, or a control closure (snapshot, drain barrier) to run on
// the shard goroutine.
type shardOp struct {
	tn   *tenant
	req  instance.Request
	fn   func()
	done chan<- struct{}
	// rec is the op's trace context; nil for the sampled-out majority.
	rec *obs.OpRecord
	// batch, when non-nil, replaces req/rec: the shard serves every item in
	// order, then calls onDone (when set) with the served count and
	// per-item serve durations — populated only when wantNs is set, nil
	// otherwise. Batching amortizes the mailbox channel hop across items;
	// everything else (per-item latency histogram, trace publishing,
	// per-tenant order) is identical to item-at-a-time serving.
	batch  []BatchItem
	onDone func(served int, servedNs []int64)
	wantNs bool
}

// BatchItem is one arrival inside a ServeBatch call.
type BatchItem struct {
	Req instance.Request
	// Rec is the item's trace context; nil for the sampled-out majority.
	Rec *obs.OpRecord
}

type shard struct {
	idx  int
	ops  chan shardOp
	done chan struct{}
	hist obs.Hist
	// rec aggregates traced ops (stage histograms + flight ring); nil when
	// tracing is off, in which case every op.rec is nil too.
	rec *obs.Recorder
}

func (s *shard) run() {
	defer close(s.done)
	for op := range s.ops {
		if op.fn != nil {
			op.fn()
			close(op.done)
			continue
		}
		if op.batch != nil {
			s.runBatch(op)
			continue
		}
		if op.rec != nil {
			op.rec.MarkDequeued()
		}
		start := time.Now()
		op.tn.serve(op.req, op.rec)
		s.hist.Record(time.Since(start))
		if op.rec != nil && s.rec != nil {
			s.rec.Publish(op.rec, s.idx, "")
		}
	}
}

// runBatch serves one batched mailbox op item by item. The latency histogram
// records every item (so Served totals and quantiles are indistinguishable
// from item-at-a-time serving) and traced items publish exactly as single
// ops do.
func (s *shard) runBatch(op shardOp) {
	var servedNs []int64
	if op.wantNs {
		servedNs = make([]int64, len(op.batch))
	}
	for i := range op.batch {
		it := &op.batch[i]
		if it.Rec != nil {
			it.Rec.MarkDequeued()
		}
		start := time.Now()
		op.tn.serve(it.Req, it.Rec)
		d := time.Since(start)
		s.hist.Record(d)
		if servedNs != nil {
			servedNs[i] = int64(d)
		}
		if it.Rec != nil && s.rec != nil {
			s.rec.Publish(it.Rec, s.idx, "")
		}
	}
	if op.onDone != nil {
		op.onDone(len(op.batch), servedNs)
	}
}

// New starts an engine with cfg.Shards serving goroutines. New panics on an
// unknown algorithm name (a configuration error, not a runtime condition);
// use Config.Validate via NewChecked if the name is user input.
func New(cfg Config) *Engine {
	e, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// NewChecked is New with the configuration error returned instead of a
// panic — for CLI front ends where the algorithm name is user input.
func NewChecked(cfg Config) (*Engine, error) {
	f, err := cfg.factory()
	if err != nil {
		return nil, err
	}
	switch cfg.ShardPolicy {
	case "", PolicyHash, PolicyLeastLoad:
	default:
		return nil, fmt.Errorf("engine: unknown shard policy %q (want %s or %s)",
			cfg.ShardPolicy, PolicyHash, PolicyLeastLoad)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Mailbox <= 0 {
		cfg.Mailbox = 256
	}
	switch {
	case cfg.SealEvery == 0:
		cfg.SealEvery = DefaultSealEvery
	case cfg.SealEvery < 0:
		cfg.SealEvery = 0 // sealing disabled
	}
	if cfg.FlightRecords <= 0 {
		cfg.FlightRecords = DefaultFlightRecords
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.Discard()
	}
	e := &Engine{
		cfg:      cfg,
		factory:  f,
		shards:   make([]*shard, cfg.Shards),
		start:    time.Now(),
		logger:   logger,
		tracer:   obs.NewTracer(cfg.TraceSample),
		tenants:  map[string]*tenant{},
		loads:    make([]int, cfg.Shards),
		lastSrvd: make([]int64, cfg.Shards),
	}
	if e.tracer.Enabled() {
		e.errRing = obs.NewFlight(cfg.FlightRecords)
	}
	e.lastAt = e.start
	for i := range e.shards {
		s := &shard{idx: i, ops: make(chan shardOp, cfg.Mailbox), done: make(chan struct{})}
		if e.tracer.Enabled() {
			s.rec = obs.NewRecorder(cfg.FlightRecords)
		}
		e.shards[i] = s
		go s.run()
	}
	return e, nil
}

// Tracer exposes the engine's sampling decisions to network front ends: the
// decode site calls Sample() to decide whether an arrival gets a trace
// record. nil (tracing off) is a valid, inert tracer.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// shardIndexFor picks the shard for a new tenant. Must run under e.mu (it
// reads and updates the per-shard load counts for PolicyLeastLoad).
func (e *Engine) shardIndexFor(id string) int {
	if e.cfg.ShardPolicy == PolicyLeastLoad {
		best := 0
		for i, l := range e.loads {
			if l < e.loads[best] {
				best = i
			}
		}
		return best
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32()) % len(e.shards)
}

// CreateTenant registers a new tenant serving requests on the given space
// and cost model. The tenant's algorithm instance is constructed here with a
// name-derived seed; arrivals may be served as soon as CreateTenant returns.
func (e *Engine) CreateTenant(id string, space metric.Space, costs cost.Model) error {
	return e.createTenant(id, space, costs, nil)
}

// createTenant is CreateTenant with an optional serializable origin (known
// when the tenant arrives through the op protocol or a checkpoint restore).
func (e *Engine) createTenant(id string, space metric.Space, costs cost.Model, origin *TenantOrigin) error {
	if id == "" {
		return fmt.Errorf("engine: tenant name must be non-empty")
	}
	if space == nil || costs == nil {
		return fmt.Errorf("engine: tenant %q needs a space and a cost model", id)
	}
	alg := e.factory.New(space, costs, workload.NamedSeed(e.cfg.Seed, id))
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("engine: %w", ErrClosed)
	}
	if _, dup := e.tenants[id]; dup {
		return fmt.Errorf("engine: tenant %q: %w", id, ErrDuplicateTenant)
	}
	idx := e.shardIndexFor(id)
	e.loads[idx]++
	e.tenants[id] = &tenant{
		id:        id,
		shard:     e.shards[idx],
		shardIdx:  idx,
		space:     space,
		costs:     costs,
		universe:  commodity.Full(costs.Universe()),
		alg:       alg,
		record:    e.cfg.RecordArrivals,
		sealEvery: e.cfg.SealEvery,
		origin:    origin,
		logger:    e.logger,
	}
	return nil
}

func (e *Engine) tenant(id string) (*tenant, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("engine: %w", ErrClosed)
	}
	t, ok := e.tenants[id]
	if !ok {
		return nil, fmt.Errorf("engine: tenant %q: %w", id, ErrUnknownTenant)
	}
	return t, nil
}

// Serve enqueues one arrival for a tenant. It blocks while the tenant's
// shard mailbox is full (backpressure) and returns once the arrival is
// admitted — not necessarily served; Drain waits for the latter.
func (e *Engine) Serve(tenantID string, r instance.Request) error {
	return e.ServeTraced(tenantID, r, nil)
}

// ServeTraced is Serve carrying an optional trace context: rec (from the
// decode site, already MarkDecoded) rides the mailbox to the shard, which
// closes its stage stamps and publishes it to the flight recorder. A nil
// rec is the sampled-out fast path — identical to Serve. Admission
// failures land in the engine's error ring so a flight dump shows rejected
// ops alongside served ones.
func (e *Engine) ServeTraced(tenantID string, r instance.Request, rec *obs.OpRecord) error {
	t, err := e.tenant(tenantID)
	if err != nil {
		e.recordReject(rec, tenantID, err)
		return err
	}
	if err := t.validate(r); err != nil {
		e.recordReject(rec, tenantID, err)
		return err
	}
	t.shard.ops <- shardOp{tn: t, req: r, rec: rec}
	t.admitted.Add(1)
	if rec != nil {
		rec.MarkAdmitted()
	}
	return nil
}

// validate checks one request against the tenant's admission rules — the
// shared precondition of ServeTraced and ServeBatch. Immutable tenant fields
// only, so it is safe off the shard goroutine.
func (t *tenant) validate(r instance.Request) error {
	if r.Point < 0 || r.Point >= t.space.Len() {
		return fmt.Errorf("engine: tenant %q: point %d outside space of %d points", t.id, r.Point, t.space.Len())
	}
	if r.Demands.IsEmpty() {
		return fmt.Errorf("engine: tenant %q: request demands nothing", t.id)
	}
	if !r.Demands.SubsetOf(t.universe) {
		return fmt.Errorf("engine: tenant %q: demands %v outside universe of %d",
			t.id, r.Demands, t.universe.Len())
	}
	return nil
}

// ServeBatch enqueues a batch of arrivals for one tenant as a single mailbox
// op, amortizing the tenant lookup and the channel hop across the batch —
// the ingestion hot path of the binary wire protocol and the HTTP batch
// endpoint. Items are served in order on the tenant's shard, exactly as if
// each had been passed to Serve individually.
//
// Validation is per item, in order: on the first invalid item the valid
// prefix is still enqueued (arrivals are irrevocable, matching the HTTP
// batch endpoint's "accepted" semantics) and ServeBatch returns its length
// alongside the error. onDone, when non-nil, runs on the shard goroutine
// after the enqueued prefix has been served, receiving the served count and
// per-item serve durations (populated when wantNs is set, nil otherwise).
// The count is passed explicitly because completion can race ServeBatch's
// own return — the callback must not depend on the caller having seen the
// accepted length. A zero-length enqueue (n == 0, err != nil, or an empty
// items slice) never calls onDone.
func (e *Engine) ServeBatch(tenantID string, items []BatchItem, wantNs bool, onDone func(served int, servedNs []int64)) (int, error) {
	t, err := e.tenant(tenantID)
	if err != nil {
		for i := range items {
			e.recordReject(items[i].Rec, tenantID, err)
		}
		return 0, err
	}
	n := len(items)
	for i := range items {
		if verr := t.validate(items[i].Req); verr != nil {
			e.recordReject(items[i].Rec, tenantID, verr)
			n, err = i, verr
			break
		}
	}
	if n == 0 {
		return 0, err
	}
	t.shard.ops <- shardOp{tn: t, batch: items[:n], onDone: onDone, wantNs: wantNs}
	t.admitted.Add(int64(n))
	for i := 0; i < n; i++ {
		if rec := items[i].Rec; rec != nil {
			rec.MarkAdmitted()
		}
	}
	return n, err
}

// ServeBatchAt is ServeBatch keyed to a stream position: start names the
// index (in the tenant's arrival stream) of the batch's first item. It is
// the idempotency primitive under the cluster's retry discipline — a
// replayed batch can never double-serve:
//
//   - start == admitted: the normal case; the batch is enqueued whole.
//   - start < admitted: the leading admitted-start items were already
//     accepted by an earlier attempt and are skipped; only the unseen
//     suffix is enqueued. The returned accepted count still includes the
//     skipped prefix (it is "reflected in the stream"), with deduped
//     reporting how many were skipped.
//   - start > admitted: refused with ErrArrivalGap — accepting would skip
//     arrivals the sender believes were delivered.
//
// start < 0 bypasses position checking entirely (identical to ServeBatch).
// Validation, onDone and trace semantics match ServeBatch; onDone observes
// only newly enqueued items and is not called when the whole batch is
// deduplicated.
func (e *Engine) ServeBatchAt(tenantID string, start int64, items []BatchItem, wantNs bool, onDone func(served int, servedNs []int64)) (accepted, deduped int, err error) {
	if start < 0 {
		n, err := e.ServeBatch(tenantID, items, wantNs, onDone)
		return n, 0, err
	}
	t, err := e.tenant(tenantID)
	if err != nil {
		for i := range items {
			e.recordReject(items[i].Rec, tenantID, err)
		}
		return 0, 0, err
	}
	t.admitMu.Lock()
	defer t.admitMu.Unlock()
	at := t.admitted.Load()
	if start > at {
		return 0, 0, fmt.Errorf("engine: tenant %q: batch starts at %d, admitted %d: %w", tenantID, start, at, ErrArrivalGap)
	}
	skip := int(at - start)
	if skip >= len(items) {
		return len(items), len(items), nil
	}
	items = items[skip:]
	n := len(items)
	for i := range items {
		if verr := t.validate(items[i].Req); verr != nil {
			e.recordReject(items[i].Rec, tenantID, verr)
			n, err = i, verr
			break
		}
	}
	if n == 0 {
		return skip, skip, err
	}
	t.shard.ops <- shardOp{tn: t, batch: items[:n], onDone: onDone, wantNs: wantNs}
	t.admitted.Add(int64(n))
	for i := 0; i < n; i++ {
		if rec := items[i].Rec; rec != nil {
			rec.MarkAdmitted()
		}
	}
	return skip + n, skip, err
}

// AdmittedCount returns the tenant's stream position: arrivals admitted to
// its mailbox (served plus queued). It is the position ServeBatchAt checks
// against.
func (e *Engine) AdmittedCount(tenantID string) (int64, error) {
	t, err := e.tenant(tenantID)
	if err != nil {
		return 0, err
	}
	return t.admitted.Load(), nil
}

// recordReject drops an admission failure into the error ring (tracing on
// only). Rejections are rare, so they are recorded whether or not the op
// itself was sampled; unsampled rejects get a minimal record.
func (e *Engine) recordReject(rec *obs.OpRecord, tenantID string, err error) {
	if e.errRing == nil {
		return
	}
	outcome := rejectOutcome(err)
	if rec != nil {
		e.errRing.Put(rec.Reject(outcome))
		return
	}
	e.errRing.Put(&obs.FlightRecord{
		Tenant:       tenantID,
		WallUnixNano: time.Now().UnixNano(),
		Shard:        -1,
		Outcome:      outcome,
	})
}

// rejectOutcome classifies an admission error the way the TCP result codes
// do, so flight-record outcomes line up with what the client saw.
func rejectOutcome(err error) string {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		return "unknown_tenant"
	case errors.Is(err, ErrDuplicateTenant):
		return "duplicate_tenant"
	case errors.Is(err, ErrClosed):
		return "unavailable"
	default:
		return "invalid_request"
	}
}

// control runs fn on the shard's goroutine, serialized with its arrival
// stream, and waits for it to finish.
func (s *shard) control(fn func()) {
	done := make(chan struct{})
	s.ops <- shardOp{fn: fn, done: done}
	<-done
}

// Drain blocks until every arrival admitted before the call has been served.
// On a closed engine it returns immediately (Close already drained).
func (e *Engine) Drain() {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return
	}
	var wg sync.WaitGroup
	for _, s := range e.shards {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			s.control(func() {})
		}(s)
	}
	wg.Wait()
}

// Close drains the engine and stops its shard goroutines. Serve and Snapshot
// fail after Close; Close is not safe to call concurrently with Serve.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	for _, s := range e.shards {
		close(s.ops)
	}
	for _, s := range e.shards {
		<-s.done
	}
}

// Snapshot returns a consistent snapshot of one tenant, taken on its shard's
// goroutine after every previously admitted arrival for it has been served.
func (e *Engine) Snapshot(tenantID string) (*TenantSnapshot, error) {
	return e.snapshotOne(tenantID, false)
}

// SnapshotCompact is Snapshot without the per-arrival assignment history —
// facilities, served count and cost accounting only. For tenants with
// millions of served arrivals the compact form is the one to poll.
func (e *Engine) SnapshotCompact(tenantID string) (*TenantSnapshot, error) {
	return e.snapshotOne(tenantID, true)
}

func (e *Engine) snapshotOne(tenantID string, compact bool) (*TenantSnapshot, error) {
	t, err := e.tenant(tenantID)
	if err != nil {
		return nil, err
	}
	var snap *TenantSnapshot
	t.shard.control(func() { snap = t.snapshot(e.factory.Name, compact) })
	return snap, nil
}

// SnapshotAll drains the engine and returns every tenant's snapshot sorted
// by tenant name — the deterministic artifact the serve CLI emits: fixed
// seed + fixed trace yield byte-identical JSON for every shard count.
func (e *Engine) SnapshotAll() ([]*TenantSnapshot, error) {
	return e.snapshotAll(false)
}

// SnapshotAllCompact is SnapshotAll with assignment histories omitted.
func (e *Engine) SnapshotAllCompact() ([]*TenantSnapshot, error) {
	return e.snapshotAll(true)
}

func (e *Engine) snapshotAll(compact bool) ([]*TenantSnapshot, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: %w", ErrClosed)
	}
	tns := make([]*tenant, 0, len(e.tenants))
	for _, t := range e.tenants { //omflp:orderinvariant — collected tenants are sorted by their unique id on the next line
		tns = append(tns, t)
	}
	e.mu.Unlock()
	sort.Slice(tns, func(i, j int) bool { return tns[i].id < tns[j].id })

	// Group tenants by shard so each shard executes one control op.
	byShard := map[*shard][]*tenant{}
	for _, t := range tns {
		byShard[t.shard] = append(byShard[t.shard], t)
	}
	snaps := make(map[string]*TenantSnapshot, len(tns))
	var smu sync.Mutex
	var wg sync.WaitGroup
	for s, group := range byShard {
		wg.Add(1)
		go func(s *shard, group []*tenant) {
			defer wg.Done()
			s.control(func() {
				for _, t := range group {
					snap := t.snapshot(e.factory.Name, compact)
					smu.Lock()
					snaps[t.id] = snap
					smu.Unlock()
				}
			})
		}(s, group)
	}
	wg.Wait()

	out := make([]*TenantSnapshot, len(tns))
	for i, t := range tns {
		out[i] = snaps[t.id]
	}
	return out, nil
}

// TenantSnapshot is a consistent cut of one tenant's state: who it is, what
// it has served, the facilities it opened, how requests are connected, and
// the cost-so-far against the dual lower bound (PD tenants).
type TenantSnapshot struct {
	Tenant    string `json:"tenant"`
	Algorithm string `json:"algorithm"`
	Served    int    `json:"served"`
	// Facilities lists open facilities in opening order.
	Facilities []SnapshotFacility `json:"facilities"`
	// Assignments[i] lists the facility indices arrival i connects to.
	// Full snapshots always carry the field ("[]" for a tenant that has
	// served nothing); compact snapshots (SnapshotCompact) set it to
	// null — the history is deliberately absent, not empty.
	Assignments [][]int `json:"assignments"`
	// Cost = ConstructionCost + AssignmentCost, maintained incrementally.
	ConstructionCost float64 `json:"construction_cost"`
	AssignmentCost   float64 `json:"assignment_cost"`
	Cost             float64 `json:"cost"`
	// DualTotal is PD-OMFLP's dual objective Σ a_re: cost ≤ 3·DualTotal
	// (Corollary 8), so DualTotal is a certified lower bound on a third of
	// any achievable cost for the served prefix. Zero for rand tenants.
	DualTotal float64 `json:"dual_total,omitempty"`
}

// SnapshotFacility is one open facility in a snapshot.
type SnapshotFacility struct {
	Point       int   `json:"point"`
	Commodities []int `json:"commodities"`
}

// snapshot must run on the tenant's shard goroutine. With compact set the
// per-arrival assignment history is skipped entirely (never copied), so the
// cost of a compact snapshot is O(facilities) regardless of stream length.
func (t *tenant) snapshot(algName string, compact bool) *TenantSnapshot {
	sol := t.alg.Solution()
	snap := &TenantSnapshot{
		Tenant:           t.id,
		Algorithm:        algName,
		Served:           t.served,
		Facilities:       make([]SnapshotFacility, len(sol.Facilities)),
		ConstructionCost: t.construction,
		AssignmentCost:   t.assignment,
		Cost:             t.construction + t.assignment,
	}
	for i, f := range sol.Facilities {
		snap.Facilities[i] = SnapshotFacility{Point: f.Point, Commodities: f.Config.IDs()}
	}
	if !compact {
		snap.Assignments = make([][]int, len(sol.Assign))
		for i, links := range sol.Assign {
			snap.Assignments[i] = append([]int{}, links...)
		}
	}
	if d, ok := t.alg.(interface{ DualTotal() float64 }); ok {
		snap.DualTotal = d.DualTotal()
	}
	return snap
}

// TenantCount returns the number of registered tenants.
func (e *Engine) TenantCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.tenants)
}

// ServedCount returns how many arrivals the tenant has served. The count is
// read on the tenant's shard goroutine after every previously admitted
// arrival for it has drained, so a caller that stops sending and then polls
// ServedCount observes the final, settled total — the synchronization
// primitive behind cluster tenant handoff (quiesce means "served reached the
// count the router forwarded").
func (e *Engine) ServedCount(id string) (int, error) {
	t, err := e.tenant(id)
	if err != nil {
		return 0, err
	}
	var n int
	t.shard.control(func() { n = t.served })
	return n, nil
}
