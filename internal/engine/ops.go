package engine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Op is one line of the engine's JSON-lines ingestion protocol. Two kinds:
//
//	{"op":"create","tenant":"a","universe":4,
//	 "distances":[[0,1],[1,0]],"cost_by_size":[0,1,1.4,1.7,2]}
//	{"op":"arrive","tenant":"a","point":1,"demands":[0,2]}
//
// "create" registers a tenant on a matrix metric with a size-dependent cost
// table — the same fields a gentrace file trace carries, so any trace can be
// rewritten as an op stream. "arrive" serves one request. Lines are
// processed in order; per-tenant arrival order is serving order.
type Op struct {
	Op     string `json:"op"`
	Tenant string `json:"tenant"`

	// create
	Universe   int         `json:"universe,omitempty"`
	Distances  [][]float64 `json:"distances,omitempty"`
	CostBySize []float64   `json:"cost_by_size,omitempty"`

	// arrive
	Point   int   `json:"point"`
	Demands []int `json:"demands,omitempty"`
}

// Apply executes one op against the engine.
func (e *Engine) Apply(op Op) error {
	return e.ApplyTraced(op, nil)
}

// ApplyTraced is Apply carrying an optional trace context; only arrive ops
// record stages (creates are rare control-plane work, not serving traffic).
func (e *Engine) ApplyTraced(op Op, rec *obs.OpRecord) error {
	switch op.Op {
	case "create":
		if len(op.CostBySize) != op.Universe+1 {
			return fmt.Errorf("engine: create %q: cost table has %d entries for universe %d",
				op.Tenant, len(op.CostBySize), op.Universe)
		}
		table, err := cost.NewTable(op.CostBySize)
		if err != nil {
			return fmt.Errorf("engine: create %q: %v", op.Tenant, err)
		}
		n := len(op.Distances)
		if n == 0 {
			return fmt.Errorf("engine: create %q: empty distance matrix", op.Tenant)
		}
		for i, row := range op.Distances {
			if len(row) != n {
				return fmt.Errorf("engine: create %q: distance row %d has %d entries, want %d",
					op.Tenant, i, len(row), n)
			}
		}
		return e.createTenant(op.Tenant, metric.NewMatrix(op.Distances), table, &TenantOrigin{
			Universe:   op.Universe,
			Distances:  op.Distances,
			CostBySize: op.CostBySize,
		})
	case "arrive":
		if len(op.Demands) == 0 {
			return fmt.Errorf("engine: arrive for %q demands nothing", op.Tenant)
		}
		return e.ServeTraced(op.Tenant, instance.Request{
			Point:   op.Point,
			Demands: commodity.New(op.Demands...),
		}, rec)
	default:
		return fmt.Errorf("engine: unknown op %q", op.Op)
	}
}

// ReplayOps streams a JSON-lines op sequence (blank lines skipped) into the
// engine and returns the number of arrivals served. It does not drain: call
// Drain or SnapshotAll once the stream ends.
func (e *Engine) ReplayOps(r io.Reader) (arrivals int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26) // distance matrices can be wide
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var op Op
		if err := json.Unmarshal([]byte(text), &op); err != nil {
			return arrivals, fmt.Errorf("engine: line %d: %v", line, err)
		}
		if err := e.Apply(op); err != nil {
			return arrivals, fmt.Errorf("engine: line %d: %v", line, err)
		}
		if op.Op == "arrive" {
			arrivals++
		}
	}
	return arrivals, sc.Err()
}

// ReplayTrace fans a generated workload trace (e.g. a gentrace file) out
// across `tenants` engine tenants sharing the trace's space and cost model:
// tenant names are "tenant-000".., and request i goes to tenant i%tenants —
// so one trace exercises multi-tenant sharding end-to-end. It does not
// drain; call Drain or SnapshotAll once done. Returns the arrival count.
func (e *Engine) ReplayTrace(tr *workload.Trace, tenants int) (int, error) {
	if tenants < 1 {
		tenants = 1
	}
	in := tr.Instance
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%03d", i)
		if err := e.CreateTenant(names[i], in.Space, in.Costs); err != nil {
			return 0, err
		}
	}
	for i, r := range in.Requests {
		if err := e.Serve(names[i%tenants], r); err != nil {
			return i, err
		}
	}
	return len(in.Requests), nil
}

// ReplayReader ingests either format the serve CLI accepts: a JSON-lines op
// stream, or a single gentrace file-trace document (fanned out across
// `tenants` tenants). The first non-blank line decides: a parseable op
// object selects op mode, anything else is treated as a trace document.
func (e *Engine) ReplayReader(r io.Reader, tenants int) (int, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	first, err := firstNonBlankLine(br)
	if err != nil {
		return 0, err
	}
	var probe Op
	if json.Unmarshal([]byte(first), &probe) == nil && probe.Op != "" {
		return e.ReplayOps(io.MultiReader(strings.NewReader(first+"\n"), br))
	}
	tr, err := workload.ReadJSON(io.MultiReader(strings.NewReader(first+"\n"), br))
	if err != nil {
		return 0, err
	}
	return e.ReplayTrace(tr, tenants)
}

func firstNonBlankLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		if trimmed := strings.TrimRight(line, "\r\n"); strings.TrimSpace(trimmed) != "" {
			return trimmed, nil
		}
		if err == io.EOF {
			return "", fmt.Errorf("engine: empty input")
		}
		if err != nil {
			return "", err
		}
	}
}
