package engine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/commodity"
)

const opStream = `
{"op":"create","tenant":"b","universe":2,"distances":[[0,1,2],[1,0,1],[2,1,0]],"cost_by_size":[0,1,1.5]}
{"op":"create","tenant":"a","universe":2,"distances":[[0,1,2],[1,0,1],[2,1,0]],"cost_by_size":[0,1,1.5]}

{"op":"arrive","tenant":"a","point":0,"demands":[0]}
{"op":"arrive","tenant":"b","point":2,"demands":[0,1]}
{"op":"arrive","tenant":"a","point":1,"demands":[1]}
`

func TestReplayOps(t *testing.T) {
	e := New(Config{Shards: 2, Seed: 1})
	defer e.Close()
	n, err := e.ReplayOps(strings.NewReader(opStream))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("replayed %d arrivals, want 3", n)
	}
	snaps, err := e.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].Tenant != "a" || snaps[1].Tenant != "b" {
		t.Fatalf("snapshots not sorted by tenant: %+v", snaps)
	}
	if snaps[0].Served != 2 || snaps[1].Served != 1 {
		t.Errorf("served a=%d b=%d, want 2 and 1", snaps[0].Served, snaps[1].Served)
	}
	for _, s := range snaps {
		if s.Cost <= 0 || len(s.Facilities) == 0 {
			t.Errorf("tenant %s: implausible snapshot %+v", s.Tenant, s)
		}
		if len(s.Assignments) != s.Served {
			t.Errorf("tenant %s: %d assignment rows for %d served", s.Tenant, len(s.Assignments), s.Served)
		}
	}
}

func TestReplayOpsErrors(t *testing.T) {
	cases := []struct{ name, line string }{
		{"unknown op", `{"op":"destroy","tenant":"a"}`},
		{"bad json", `{"op":`},
		{"arrive before create", `{"op":"arrive","tenant":"nope","point":0,"demands":[0]}`},
		{"empty demand", opStream + `{"op":"arrive","tenant":"a","point":0}`},
		{"demand outside universe", opStream + `{"op":"arrive","tenant":"a","point":0,"demands":[9]}`},
		{"short cost table", `{"op":"create","tenant":"a","universe":3,"distances":[[0]],"cost_by_size":[0,1]}`},
		{"ragged matrix", `{"op":"create","tenant":"a","universe":1,"distances":[[0,1],[1]],"cost_by_size":[0,1]}`},
		{"no matrix", `{"op":"create","tenant":"a","universe":1,"cost_by_size":[0,1]}`},
	}
	for _, tc := range cases {
		e := New(Config{Shards: 1})
		if _, err := e.ReplayOps(strings.NewReader(tc.line)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
		e.Close()
	}
}

// TestReplayReaderAutodetect feeds the same workload once as a gentrace-style
// file trace and once rewritten as an op stream; both paths must land on the
// identical final snapshot.
func TestReplayReaderAutodetect(t *testing.T) {
	tr := fixedTrace(3, 40, 4, 8)

	var traceDoc bytes.Buffer
	if err := tr.WriteJSON(&traceDoc); err != nil {
		t.Fatal(err)
	}

	// Rewrite the trace as an op stream for one tenant.
	var ops bytes.Buffer
	in := tr.Instance
	n := in.Space.Len()
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = in.Space.Distance(i, j)
		}
	}
	costBySize := make([]float64, in.Universe()+1)
	for k := 1; k <= in.Universe(); k++ {
		costBySize[k] = in.Costs.Cost(0, commodity.Full(k))
	}
	enc := json.NewEncoder(&ops)
	if err := enc.Encode(Op{Op: "create", Tenant: "tenant-000", Universe: in.Universe(),
		Distances: dist, CostBySize: costBySize}); err != nil {
		t.Fatal(err)
	}
	for _, r := range in.Requests {
		if err := enc.Encode(Op{Op: "arrive", Tenant: "tenant-000", Point: r.Point,
			Demands: r.Demands.IDs()}); err != nil {
			t.Fatal(err)
		}
	}

	run := func(input string) []byte {
		e := New(Config{Shards: 3, Seed: 1})
		defer e.Close()
		if _, err := e.ReplayReader(strings.NewReader(input), 1); err != nil {
			t.Fatal(err)
		}
		snaps, err := e.SnapshotAll()
		if err != nil {
			t.Fatal(err)
		}
		return marshalSnaps(t, snaps)
	}
	fromTrace := run(traceDoc.String())
	fromOps := run(ops.String())
	if !bytes.Equal(fromTrace, fromOps) {
		t.Error("file-trace and op-stream ingestion disagree on the final snapshot")
	}

	e := New(Config{Shards: 1})
	defer e.Close()
	if _, err := e.ReplayReader(strings.NewReader("\n  \n"), 1); err == nil {
		t.Error("blank input accepted")
	}
}
