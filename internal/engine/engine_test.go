package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/workload"
)

// fixedTrace is the shared deterministic workload for engine tests.
func fixedTrace(seed int64, n, u, points int) *workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	space := metric.RandomEuclidean(rng, points, 2, 100)
	return workload.Uniform(rng, space, cost.PowerLaw(u, 1, 2), n, u/2+1)
}

func marshalSnaps(t *testing.T, snaps []*TenantSnapshot) []byte {
	t.Helper()
	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runTrace replays the trace through a fresh engine and returns the
// marshaled snapshots.
func runTrace(t *testing.T, cfg Config, tr *workload.Trace, tenants int) []byte {
	t.Helper()
	e := New(cfg)
	defer e.Close()
	if _, err := e.ReplayTrace(tr, tenants); err != nil {
		t.Fatal(err)
	}
	snaps, err := e.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	return marshalSnaps(t, snaps)
}

// TestSnapshotsIdenticalAcrossShardCounts is the engine determinism
// contract (and the in-process version of the CI smoke job): a fixed seed
// and a fixed trace must yield byte-identical snapshots for shard counts
// 1, 2 and 8, for both algorithms, single- and multi-tenant. Runs under
// -race in CI, which also exercises the mailbox handoffs.
func TestSnapshotsIdenticalAcrossShardCounts(t *testing.T) {
	tr := fixedTrace(7, 120, 6, 15)
	for _, algo := range []string{"pd", "rand"} {
		for _, tenants := range []int{1, 5} {
			var want []byte
			for _, shards := range []int{1, 2, 8} {
				got := runTrace(t, Config{Algorithm: algo, Shards: shards, Seed: 3}, tr, tenants)
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(want, got) {
					t.Errorf("%s/%d tenants: snapshots differ between shard counts (1 vs %d)",
						algo, tenants, shards)
				}
			}
		}
	}
}

// TestTenantMatchesDirectRun pins engine serving to the ground truth: a
// tenant's snapshot must agree exactly with running the same algorithm on
// the same sub-sequence directly, including cost accounting recomputed from
// scratch on the final solution.
func TestTenantMatchesDirectRun(t *testing.T) {
	tr := fixedTrace(11, 90, 5, 12)
	const tenants = 3
	e := New(Config{Algorithm: "pd", Shards: 4, Seed: 5})
	defer e.Close()
	if _, err := e.ReplayTrace(tr, tenants); err != nil {
		t.Fatal(err)
	}
	snaps, err := e.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != tenants {
		t.Fatalf("got %d snapshots, want %d", len(snaps), tenants)
	}
	for ti, snap := range snaps {
		// Rebuild tenant ti's sub-instance and run it directly.
		sub := &instance.Instance{Space: tr.Instance.Space, Costs: tr.Instance.Costs}
		for i, r := range tr.Instance.Requests {
			if i%tenants == ti {
				sub.Requests = append(sub.Requests, r)
			}
		}
		name := fmt.Sprintf("tenant-%03d", ti)
		if snap.Tenant != name {
			t.Fatalf("snapshot %d is %q, want %q", ti, snap.Tenant, name)
		}
		f, _ := Config{Algorithm: "pd"}.factory()
		sol, c, err := online.Run(f, sub, workload.NamedSeed(5, name), true)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Served != len(sub.Requests) {
			t.Errorf("%s: served %d, want %d", name, snap.Served, len(sub.Requests))
		}
		if len(snap.Facilities) != len(sol.Facilities) {
			t.Errorf("%s: %d facilities, want %d", name, len(snap.Facilities), len(sol.Facilities))
		}
		if math.Abs(snap.Cost-c) > 1e-9*(1+c) {
			t.Errorf("%s: incremental cost %g, direct run %g", name, snap.Cost, c)
		}
		recon := sol.ConstructionCost(sub)
		if math.Abs(snap.ConstructionCost-recon) > 1e-9*(1+recon) {
			t.Errorf("%s: construction %g, want %g", name, snap.ConstructionCost, recon)
		}
		if snap.DualTotal <= 0 {
			t.Errorf("%s: PD tenant should report a positive dual total", name)
		}
		if snap.Cost > 3*snap.DualTotal+1e-6 {
			t.Errorf("%s: Corollary 8 violated in snapshot: %g > 3·%g", name, snap.Cost, snap.DualTotal)
		}
	}
}

// TestRandSeedsAreNameDerived: rand tenants must draw per-tenant streams, so
// two tenants serving the same arrivals may diverge, but re-running the
// engine reproduces each tenant exactly.
func TestRandSeedsAreNameDerived(t *testing.T) {
	tr := fixedTrace(2, 80, 6, 10)
	a := runTrace(t, Config{Algorithm: "rand", Shards: 3, Seed: 9}, tr, 2)
	b := runTrace(t, Config{Algorithm: "rand", Shards: 5, Seed: 9}, tr, 2)
	if !bytes.Equal(a, b) {
		t.Error("rand engine not reproducible across shard counts under a fixed seed")
	}
	c := runTrace(t, Config{Algorithm: "rand", Shards: 3, Seed: 10}, tr, 2)
	if bytes.Equal(a, c) {
		t.Error("changing the engine seed did not change rand tenant behaviour")
	}
}

func TestServeErrors(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	space := metric.NewLine([]float64{0, 1, 2})
	costs := cost.PowerLaw(3, 1, 1)
	req := instance.Request{Point: 1, Demands: commodity.New(0)}
	if err := e.Serve("ghost", req); err == nil {
		t.Error("Serve on unknown tenant succeeded")
	}
	if err := e.CreateTenant("a", space, costs); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTenant("a", space, costs); err == nil {
		t.Error("duplicate CreateTenant succeeded")
	}
	if err := e.CreateTenant("", space, costs); err == nil {
		t.Error("empty tenant name accepted")
	}
	if err := e.Serve("a", instance.Request{Point: 99, Demands: commodity.New(0)}); err == nil {
		t.Error("out-of-space point accepted")
	}
	if err := e.Serve("a", instance.Request{Point: 0}); err == nil {
		t.Error("empty demand accepted")
	}
	if err := e.Serve("a", instance.Request{Point: 0, Demands: commodity.New(7)}); err == nil {
		t.Error("out-of-universe demand accepted — would panic the shard goroutine")
	}
	if err := e.Serve("a", req); err != nil {
		t.Errorf("valid Serve failed: %v", err)
	}
	if _, err := NewChecked(Config{Algorithm: "quantum"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestClosedEngineRejectsWork(t *testing.T) {
	e := New(Config{Shards: 1})
	e.Close()
	e.Close() // idempotent
	if err := e.CreateTenant("a", metric.SinglePoint(), cost.PowerLaw(1, 1, 1)); err == nil {
		t.Error("CreateTenant after Close succeeded")
	}
	if _, err := e.SnapshotAll(); err == nil {
		t.Error("SnapshotAll after Close succeeded")
	}
	e.Drain() // must be a no-op, not a send on a closed channel
}

// TestBackpressureTinyMailbox: a 1-slot mailbox must not deadlock or drop
// arrivals — Serve blocks until the shard catches up.
func TestBackpressureTinyMailbox(t *testing.T) {
	tr := fixedTrace(4, 200, 4, 8)
	e := New(Config{Algorithm: "pd", Shards: 2, Mailbox: 1, Seed: 1})
	defer e.Close()
	n, err := e.ReplayTrace(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := e.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range snaps {
		total += s.Served
	}
	if total != n {
		t.Errorf("served %d of %d arrivals", total, n)
	}
}

func TestMetrics(t *testing.T) {
	tr := fixedTrace(6, 150, 6, 12)
	e := New(Config{Algorithm: "pd", Shards: 4, Seed: 1})
	defer e.Close()
	if _, err := e.ReplayTrace(tr, 3); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	m := e.Metrics()
	if m.Served != 150 {
		t.Errorf("served = %d, want 150", m.Served)
	}
	if m.Tenants != 3 || m.Shards != 4 {
		t.Errorf("tenants/shards = %d/%d, want 3/4", m.Tenants, m.Shards)
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after drain", m.QueueDepth)
	}
	if m.ArrivalsPerSec <= 0 || m.UptimeSeconds <= 0 {
		t.Errorf("rates not positive: %+v", m)
	}
	if m.LatencyP50Micros <= 0 || m.LatencyP99Micros < m.LatencyP50Micros {
		t.Errorf("latency quantiles inconsistent: p50=%g p99=%g", m.LatencyP50Micros, m.LatencyP99Micros)
	}
	// The second window has no arrivals.
	m2 := e.Metrics()
	if m2.WindowArrivalsPerSec != 0 {
		t.Errorf("idle window rate = %g, want 0", m2.WindowArrivalsPerSec)
	}
}

// TestDrainOnClose: Close must serve every admitted arrival before stopping
// the shards — closing right after the last Serve returns may find hundreds
// of arrivals still queued in mailboxes, and none may be dropped.
func TestDrainOnClose(t *testing.T) {
	tr := fixedTrace(8, 300, 4, 8)
	e := New(Config{Algorithm: "pd", Shards: 4, Mailbox: 512, Seed: 1})
	n, err := e.ReplayTrace(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	e.Close() // no explicit Drain: Close itself is the barrier
	if _, total, _ := mergedHist(e.shards); total != int64(n) {
		t.Errorf("served %d of %d admitted arrivals after Close", total, n)
	}
	depth := 0
	for _, s := range e.shards {
		depth += len(s.ops)
	}
	if depth != 0 {
		t.Errorf("%d arrivals left in mailboxes after Close", depth)
	}
}

// TestShardPolicyLeastLoad: with more shards than tenants every tenant gets
// its own shard (hash can collide; least-load cannot), and the policy never
// changes snapshots — only placement.
func TestShardPolicyLeastLoad(t *testing.T) {
	tr := fixedTrace(13, 80, 5, 10)
	const tenants = 4
	hash := runTrace(t, Config{Algorithm: "pd", Shards: 8, Seed: 2}, tr, tenants)
	least := runTrace(t, Config{Algorithm: "pd", Shards: 8, Seed: 2, ShardPolicy: PolicyLeastLoad}, tr, tenants)
	if !bytes.Equal(hash, least) {
		t.Error("shard policy changed tenant snapshots")
	}

	e := New(Config{Algorithm: "pd", Shards: 8, Seed: 2, ShardPolicy: PolicyLeastLoad})
	defer e.Close()
	if _, err := e.ReplayTrace(tr, tenants); err != nil {
		t.Fatal(err)
	}
	used := map[*shard]int{}
	e.mu.Lock()
	for _, tn := range e.tenants {
		used[tn.shard]++
	}
	e.mu.Unlock()
	if len(used) != tenants {
		t.Errorf("least-load packed %d tenants onto %d shards, want one shard each", tenants, len(used))
	}
	for _, c := range used {
		if c != 1 {
			t.Errorf("least-load shard hosts %d tenants, want 1", c)
		}
	}

	if _, err := NewChecked(Config{ShardPolicy: "roulette"}); err == nil {
		t.Error("unknown shard policy accepted")
	}
}

// TestCompactSnapshots: compact snapshots drop only the assignment history
// and agree with full snapshots on everything else.
func TestCompactSnapshots(t *testing.T) {
	tr := fixedTrace(17, 60, 5, 9)
	e := New(Config{Algorithm: "pd", Shards: 2, Seed: 4})
	defer e.Close()
	if _, err := e.ReplayTrace(tr, 2); err != nil {
		t.Fatal(err)
	}
	full, err := e.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	compact, err := e.SnapshotAllCompact()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(compact) {
		t.Fatalf("%d full vs %d compact snapshots", len(full), len(compact))
	}
	for i := range full {
		f, c := full[i], compact[i]
		if c.Assignments != nil {
			t.Errorf("%s: compact snapshot carries %d assignment rows", c.Tenant, len(c.Assignments))
		}
		if len(f.Assignments) != f.Served {
			t.Errorf("%s: full snapshot has %d assignment rows for %d served", f.Tenant, len(f.Assignments), f.Served)
		}
		c.Assignments, f.Assignments = nil, nil
		a, b := marshalSnaps(t, []*TenantSnapshot{f}), marshalSnaps(t, []*TenantSnapshot{c})
		if !bytes.Equal(a, b) {
			t.Errorf("%s: compact snapshot disagrees with full beyond assignments", f.Tenant)
		}
	}
	one, err := e.SnapshotCompact(compact[0].Tenant)
	if err != nil {
		t.Fatal(err)
	}
	if one.Assignments != nil || one.Served != compact[0].Served {
		t.Errorf("SnapshotCompact = %+v, want compact form of %+v", one, compact[0])
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	s := &shard{}
	for i := 0; i < 99; i++ {
		s.hist.Record(100 * time.Nanosecond) // bucket [64,128)
	}
	s.hist.Record(time.Millisecond) // the single p100 outlier
	sum, total, _ := mergedHist([]*shard{s})
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
	p50 := obs.Quantile(sum, total, 0.50)
	if p50 < 64 || p50 > 128 {
		t.Errorf("p50 = %gns, want within [64,128)", p50)
	}
	p99 := obs.Quantile(sum, total, 0.99)
	if p99 > 128 {
		t.Errorf("p99 = %gns, should still sit in the 100ns bucket", p99)
	}
	p100 := obs.Quantile(sum, total, 1)
	if p100 < float64(512*1024) {
		t.Errorf("p100 = %gns, should reach the millisecond bucket", p100)
	}
	if q := obs.Quantile([obs.HistBuckets]int64{}, 0, 0.5); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}
}
