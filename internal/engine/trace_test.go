package engine

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// replayTraced mirrors ReplayTrace but drives ServeTraced the way a network
// front end does: sample at the decode site, stamp decode, hand the record
// to admission.
func replayTraced(t *testing.T, e *Engine, tenants int, seed int64, n, u, points int) []string {
	t.Helper()
	tr := fixedTrace(seed, n, u, points)
	in := tr.Instance
	names := make([]string, tenants)
	for i := range names {
		names[i] = tenantName(i)
		if err := e.CreateTenant(names[i], in.Space, in.Costs); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range in.Requests {
		var rec *obs.OpRecord
		if id := e.Tracer().Sample(); id != 0 {
			rec = obs.NewOpRecord(id, names[i%tenants])
			rec.MarkDecoded(1)
		}
		if err := e.ServeTraced(names[i%tenants], r, rec); err != nil {
			t.Fatal(err)
		}
	}
	return names
}

// TestTracingDoesNotPerturbSnapshots is the determinism contract with
// tracing on: the same trace served fully traced (sample 1) must produce
// byte-identical snapshots to an untraced run — observation only, no
// feedback into algorithm state.
func TestTracingDoesNotPerturbSnapshots(t *testing.T) {
	tr := fixedTrace(11, 150, 6, 15)
	want := runTrace(t, Config{Shards: 4, Seed: 3}, tr, 3)
	got := runTrace(t, Config{Shards: 4, Seed: 3, TraceSample: 1, FlightRecords: 16}, tr, 3)
	if !bytes.Equal(want, got) {
		t.Fatal("snapshots differ between traced and untraced runs")
	}
}

func TestServeTracedStagesAndFlight(t *testing.T) {
	e := New(Config{Shards: 2, Seed: 1, TraceSample: 1, FlightRecords: 128})
	defer e.Close()
	const n, tenants = 120, 3
	names := replayTraced(t, e, tenants, 13, n, 4, 12)
	e.Drain()

	m := e.Metrics()
	if m.Stages == nil {
		t.Fatal("Metrics.Stages nil with tracing on")
	}
	if m.Stages.Sampled != n {
		t.Fatalf("Stages.Sampled = %d, want %d", m.Stages.Sampled, n)
	}
	m.Stages.Each(func(stage string, h obs.HistSummary) {
		if h.Count != n {
			t.Errorf("stage %s count = %d, want %d", stage, h.Count, n)
		}
	})
	if m.ServeLatency.Count != n {
		t.Fatalf("ServeLatency.Count = %d, want %d", m.ServeLatency.Count, n)
	}
	if m.LatencyP999Micros < m.LatencyP50Micros {
		t.Fatalf("p999 %v < p50 %v", m.LatencyP999Micros, m.LatencyP50Micros)
	}

	dump := e.FlightDump("", 0)
	if len(dump) != n { // 120 records across 2 rings of 128 — nothing evicted
		t.Fatalf("flight dump has %d records, want %d", len(dump), n)
	}
	seen := map[string]bool{}
	for i, r := range dump {
		if r.Outcome != "ok" || r.TraceID == "" || r.Shard < 0 {
			t.Fatalf("bad record %+v", r)
		}
		if seen[r.TraceID] {
			t.Fatalf("duplicate trace id %s", r.TraceID)
		}
		seen[r.TraceID] = true
		if i > 0 && r.WallUnixNano < dump[i-1].WallUnixNano {
			t.Fatal("dump not oldest-first")
		}
	}

	one := e.FlightDump(names[0], 5)
	if len(one) != 5 {
		t.Fatalf("filtered dump has %d records, want 5", len(one))
	}
	for _, r := range one {
		if r.Tenant != names[0] {
			t.Fatalf("tenant filter leaked %+v", r)
		}
	}
}

func TestServeTracedRejectionsLandInFlightDump(t *testing.T) {
	e := New(Config{Shards: 1, Seed: 1, TraceSample: 1})
	defer e.Close()

	rec := obs.NewOpRecord(e.Tracer().Sample(), "ghost")
	rec.MarkDecoded(1)
	if err := e.ServeTraced("ghost", fixedTrace(5, 1, 3, 8).Instance.Requests[0], rec); err == nil {
		t.Fatal("expected unknown-tenant error")
	}
	// An unsampled reject must be recorded too.
	if err := e.Serve("ghost2", fixedTrace(5, 1, 3, 8).Instance.Requests[0]); err == nil {
		t.Fatal("expected unknown-tenant error")
	}

	dump := e.FlightDump("", 0)
	if len(dump) != 2 {
		t.Fatalf("flight dump has %d records, want 2 rejects", len(dump))
	}
	for _, r := range dump {
		if r.Outcome != "unknown_tenant" || r.Shard != -1 {
			t.Fatalf("bad reject record %+v", r)
		}
	}
}

func TestFlightDumpEmptyWhenTracingOff(t *testing.T) {
	e := New(Config{Shards: 1, Seed: 1})
	defer e.Close()
	if e.Tracer().Enabled() {
		t.Fatal("tracer enabled without TraceSample")
	}
	if dump := e.FlightDump("", 0); dump == nil || len(dump) != 0 {
		t.Fatalf("dump = %#v, want empty non-nil", dump)
	}
	if m := e.Metrics(); m.Stages != nil {
		t.Fatal("Stages should be nil with tracing off")
	}
}
