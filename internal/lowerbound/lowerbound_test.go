package lowerbound

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

func TestNewTheorem2GameValidation(t *testing.T) {
	if _, err := NewTheorem2Game(15); err == nil {
		t.Error("non-square universe accepted")
	}
	g, err := NewTheorem2Game(16)
	if err != nil {
		t.Fatal(err)
	}
	if g.OptCost() != 1 {
		t.Errorf("OPT = %g, want 1 (g(√|S|) = 1)", g.OptCost())
	}
}

func TestGamePlayNoPredictionPaysSqrtS(t *testing.T) {
	// The no-prediction baseline buys exactly √|S| singletons at cost 1
	// each: ratio exactly √|S|.
	u := 64
	g, err := NewTheorem2Game(u)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	res := g.Play(baseline.NoPredictionFactory(nil), rng, 1)
	if res.AlgCost != 8 {
		t.Errorf("no-prediction cost = %g, want √64 = 8", res.AlgCost)
	}
	if res.Ratio != 8 {
		t.Errorf("ratio = %g", res.Ratio)
	}
	if res.Predicted != 0 {
		t.Errorf("no-prediction predicted %d commodities", res.Predicted)
	}
	if len(res.Trace) != 8 {
		t.Errorf("trace length = %d", len(res.Trace))
	}
}

func TestGamePDIsThetaSqrtS(t *testing.T) {
	// PD's ratio on the exact √|S|-request game is Θ(√|S|): it buys
	// √|S|−1 singletons (cost 1 each) and then predicts by opening the
	// large facility (cost √|S|) on the last request — total 2√|S|−1.
	// The lower bound is tight, so no algorithm does better than √|S|/16.
	u := 64
	g, err := NewTheorem2Game(u)
	if err != nil {
		t.Fatal(err)
	}
	ratio, rounds, predicted := g.ExpectedRatio(core.PDFactory(core.Options{}), 7, 10)
	if math.Abs(ratio-15) > 1e-9 { // 2√64 − 1
		t.Errorf("PD ratio = %g, want exactly 15 on the deterministic trace", ratio)
	}
	if predicted == 0 {
		t.Error("PD never predicted on the game")
	}
	if rounds > 8 {
		t.Errorf("PD used %g opening rounds, more than √|S|", rounds)
	}
	if ratio < TheoreticalLowerBound(u)-1e-9 {
		t.Errorf("PD ratio %g below the proven lower bound %g", ratio, TheoreticalLowerBound(u))
	}
}

func TestGamePDBeatsNoPredictionOnLongSequence(t *testing.T) {
	// The prediction payoff shows once the sequence continues past √|S|:
	// requesting all |S| commodities costs no-prediction |S|·g(1) = |S|,
	// while PD freezes at 2√|S|−1 (everything after the large facility
	// connects for free).
	u := 64
	space := metric.SinglePoint()
	costs := cost.CeilSqrt(u)
	in := &instance.Instance{Space: space, Costs: costs}
	for e := 0; e < u; e++ {
		in.Requests = append(in.Requests, instance.Request{Point: 0, Demands: commodity.New(e)})
	}
	_, cPD, err := online.Run(core.PDFactory(core.Options{}), in, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	_, cNP, err := online.Run(baseline.NoPredictionFactory(nil), in, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if cNP != float64(u) {
		t.Errorf("no-prediction cost = %g, want %d", cNP, u)
	}
	if math.Abs(cPD-15) > 1e-9 {
		t.Errorf("PD cost = %g, want 15 = 2√|S|−1", cPD)
	}
}

func TestGameLowerBoundHoldsForAllAlgorithms(t *testing.T) {
	u := 100
	g, err := NewTheorem2Game(u)
	if err != nil {
		t.Fatal(err)
	}
	bound := TheoreticalLowerBound(u)
	factories := []struct {
		name string
		f    func() (ratio float64)
	}{
		{"pd", func() float64 { r, _, _ := g.ExpectedRatio(core.PDFactory(core.Options{}), 3, 8); return r }},
		{"rand", func() float64 { r, _, _ := g.ExpectedRatio(core.RandFactory(core.Options{}), 3, 8); return r }},
		{"per-commodity", func() float64 {
			r, _, _ := g.ExpectedRatio(baseline.PerCommodityPDFactory(nil), 3, 8)
			return r
		}},
		{"no-prediction", func() float64 {
			r, _, _ := g.ExpectedRatio(baseline.NoPredictionFactory(nil), 3, 8)
			return r
		}},
	}
	for _, tc := range factories {
		if ratio := tc.f(); ratio < bound-1e-9 {
			t.Errorf("%s: expected ratio %g below the Theorem 2 bound %g", tc.name, ratio, bound)
		}
	}
}

func TestClassCGameEndpoints(t *testing.T) {
	// x = 2 (linear cost): combining commodities has no advantage; OPT
	// pays √|S| too, so ratios collapse toward 1.
	u := 64
	g, err := NewClassCGame(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.OptCost() != 8 {
		t.Errorf("linear OPT = %g, want 8", g.OptCost())
	}
	ratio, _, _ := g.ExpectedRatio(baseline.NoPredictionFactory(nil), 5, 5)
	if math.Abs(ratio-1) > 1e-9 {
		t.Errorf("no-prediction ratio under linear cost = %g, want 1", ratio)
	}
	// x = 0 (constant cost): a single facility covers everything for 1.
	g0, err := NewClassCGame(u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g0.OptCost() != 1 {
		t.Errorf("constant OPT = %g", g0.OptCost())
	}
}

func TestBoundFunctions(t *testing.T) {
	u := 10000 // the |S| of Figure 2
	// At x ∈ {0, 2} both curves equal 1·√|S|^0 = 1; at x = 1 both peak at
	// |S|^{1/4} = 10.
	for _, x := range []float64{0, 2} {
		if got := ClassCUpperBound(u, x); math.Abs(got-1) > 1e-9 {
			t.Errorf("upper(%g) = %g, want 1", x, got)
		}
		if got := ClassCLowerBound(u, x); math.Abs(got-1) > 1e-9 {
			t.Errorf("lower(%g) = %g, want 1", x, got)
		}
	}
	if got := ClassCUpperBound(u, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("upper(1) = %g, want 10 (= ⁴√|S|)", got)
	}
	if got := ClassCLowerBound(u, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("lower(1) = %g, want 10", got)
	}
	// Upper dominates lower everywhere on [0,2].
	for x := 0.0; x <= 2.0001; x += 0.1 {
		if ClassCUpperBound(u, x) < ClassCLowerBound(u, x)-1e-9 {
			t.Errorf("upper(%g) < lower(%g)", x, x)
		}
	}
}

func TestLineAdversaryForcesRatioAboveOne(t *testing.T) {
	la := &LineAdversary{Depth: 6, PerLevel: 3, FacilityCost: 1}
	ratio := la.MeanRatio(core.PDFactory(core.Options{}), 11, 3)
	if ratio <= 1 {
		t.Errorf("line adversary ratio = %g, want > 1", ratio)
	}
}

func TestLineAdversaryDeeperIsNoEasier(t *testing.T) {
	shallow := &LineAdversary{Depth: 3, PerLevel: 2, FacilityCost: 1}
	deep := &LineAdversary{Depth: 8, PerLevel: 2, FacilityCost: 1}
	f := baseline.PerCommodityPDFactory(nil)
	rs := shallow.MeanRatio(f, 2, 3)
	rd := deep.MeanRatio(f, 2, 3)
	if rd < rs*0.8 {
		t.Errorf("deeper adversary ratio %g much below shallow %g", rd, rs)
	}
}

func TestGameTraceMonotonicity(t *testing.T) {
	g, err := NewTheorem2Game(36)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	res := g.Play(core.PDFactory(core.Options{}), rng, 3)
	prevCovered, prevFac := 0, 0
	for _, st := range res.Trace {
		if st.CoveredSoFar < prevCovered || st.FacilitiesSoFar < prevFac {
			t.Errorf("trace not monotone: %+v", st)
		}
		if st.CoveredSoFar < st.RequestedSoFar {
			t.Errorf("covered %d < requested %d at step %d", st.CoveredSoFar, st.RequestedSoFar, st.Step)
		}
		prevCovered, prevFac = st.CoveredSoFar, st.FacilitiesSoFar
	}
}

func BenchmarkTheorem2GamePD(b *testing.B) {
	g, err := NewTheorem2Game(256)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Play(core.PDFactory(core.Options{}), rng, int64(i))
	}
}
