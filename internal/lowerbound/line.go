package lowerbound

import (
	"math"
	"math/rand"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
)

// LineAdversary is a simplified hierarchical adversary on the line in the
// spirit of the Ω(log n / log log n) lower bound for classic online facility
// location (Fotakis, Algorithmica 2008), which Corollary 3 adds to the
// Ω(√|S|) term. It is *not* the exact Fotakis construction (that argument
// is substantially more intricate); it reproduces its mechanism: requests
// arrive at the midpoint of a shrinking interval, and whenever the
// algorithm opens a facility nearby, the adversary recurses into the half
// away from the algorithm's facilities, forcing either long connections or
// repeated openings while OPT pays one facility at the final accumulation
// point.
type LineAdversary struct {
	Depth        int     // recursion depth (levels of halving)
	PerLevel     int     // requests per level
	FacilityCost float64 // uniform facility cost
	Points       int     // resolution of the line grid
}

// LineResult reports one adversary run. Instance holds the generated
// request sequence so callers can compute stronger OPT references (e.g. the
// exact line DP in package baseline) than the built-in single-facility
// proxy.
type LineResult struct {
	AlgCost  float64
	OptProxy float64 // cost of the best single facility in hindsight
	Ratio    float64
	Requests int
	Instance *instance.Instance
}

// Run drives the adversary against a fresh single-commodity (|S| = 1)
// algorithm built by the factory.
func (la *LineAdversary) Run(f online.Factory, seed int64) LineResult {
	if la.Points < 8 {
		la.Points = 1 << uint(la.Depth+3)
	}
	space := metric.NewGrid(la.Points, 1)
	costs := cost.Constant(1, la.FacilityCost)
	alg := f.New(space, costs, seed)

	lo, hi := 0, la.Points-1
	var reqs []instance.Request
	demand := commodity.New(0)
	for level := 0; level < la.Depth && hi-lo >= 2; level++ {
		mid := (lo + hi) / 2
		for i := 0; i < la.PerLevel; i++ {
			r := instance.Request{Point: mid, Demands: demand}
			alg.Serve(r)
			reqs = append(reqs, r)
		}
		// Recurse into the half farther from the algorithm's nearest
		// facility (the adversary observes the algorithm's state).
		facPts := alg.Solution().Facilities
		nearest := -1
		bestD := math.Inf(1)
		for _, fc := range facPts {
			if d := space.Distance(mid, fc.Point); d < bestD {
				nearest, bestD = fc.Point, d
			}
		}
		if nearest < 0 || nearest >= mid {
			hi = mid
		} else {
			lo = mid
		}
	}

	in := &instance.Instance{Space: space, Costs: costs, Requests: reqs}
	sol := alg.Solution()
	if err := sol.Verify(in); err != nil {
		panic("lowerbound: line adversary produced infeasible run: " + err.Error())
	}
	res := LineResult{AlgCost: sol.Cost(in), Requests: len(reqs), Instance: in}

	// OPT proxy: best single facility in hindsight.
	best := math.Inf(1)
	for m := 0; m < space.Len(); m++ {
		c := la.FacilityCost
		for _, r := range reqs {
			c += space.Distance(r.Point, m)
		}
		best = math.Min(best, c)
	}
	res.OptProxy = best
	res.Ratio = res.AlgCost / res.OptProxy
	return res
}

// MeanRatio averages the adversary ratio over reps independent runs.
func (la *LineAdversary) MeanRatio(f online.Factory, seed int64, reps int) float64 {
	var sum float64
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < reps; i++ {
		sum += la.Run(f, rng.Int63()).Ratio
	}
	return sum / float64(reps)
}
