// Package lowerbound turns the paper's lower-bound proofs into executable
// adversaries.
//
// Theorem 2: on a single point with cost g(|σ|) = ⌈|σ|/√|S|⌉, an adversary
// draws a uniformly random subset S′ ⊂ S of size √|S| and requests its
// commodities one at a time (each exactly once). OPT pays g(√|S|) = 1; any
// online algorithm pays Ω(√|S|) in expectation. Game runs the distribution
// against a concrete algorithm and reports the empirical ratio together
// with the Figure 1 quantities: the number of facility-opening rounds X and
// the total prediction volume T.
//
// Theorem 18 (lower bound): the same construction under a class-C cost
// g_x(k) = k^{x/2}, where OPT pays g_x(√|S|) = |S|^{x/4} and the bound
// becomes Ω(min{√|S|^{(2−x)/2}, √|S|^{x/2}}).
//
// Corollary 3's additive log n/log log n term comes from classic online
// facility location on a line; LineAdversary implements a simplified
// hierarchical adversary in that spirit (documented as such — the exact
// Fotakis construction is more intricate).
package lowerbound

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/par"
)

// GameResult reports one run of the Theorem 2 game.
type GameResult struct {
	AlgCost float64
	OptCost float64
	Ratio   float64
	// Figure 1 quantities.
	Rounds     int        // X: number of requests that triggered openings
	Predicted  int        // T: commodities offered beyond those requested so far
	Facilities int        // total facilities opened
	Trace      []GameStep // per-request trace
}

// GameStep captures the state after one request of the game (Figure 1's
// timeline).
type GameStep struct {
	Step            int
	RequestedSoFar  int
	CoveredSoFar    int // commodities covered by ALG's facilities
	FacilitiesSoFar int
}

// Game is the Theorem 2 adversary distribution over a single point.
type Game struct {
	U     int        // |S|; must be a perfect square (the paper assumes √|S| ∈ N)
	Costs cost.Model // size-dependent; CeilSqrt(U) reproduces Theorem 2 exactly
}

// NewTheorem2Game builds the exact Theorem 2 game for universe u (perfect
// square required).
func NewTheorem2Game(u int) (*Game, error) {
	root := int(math.Sqrt(float64(u)))
	if root*root != u {
		return nil, fmt.Errorf("lowerbound: |S| = %d is not a perfect square", u)
	}
	return &Game{U: u, Costs: cost.CeilSqrt(u)}, nil
}

// NewClassCGame builds the Theorem 18 variant with cost g_x(k) = k^{x/2}.
func NewClassCGame(u int, x float64) (*Game, error) {
	root := int(math.Sqrt(float64(u)))
	if root*root != u {
		return nil, fmt.Errorf("lowerbound: |S| = %d is not a perfect square", u)
	}
	return &Game{U: u, Costs: cost.PowerLaw(u, x, 1)}, nil
}

// OptCost returns the offline optimum of one game run: a single facility
// covering the √|S| requested commodities.
func (g *Game) OptCost() float64 {
	root := int(math.Sqrt(float64(g.U)))
	return g.Costs.Cost(0, commodity.Full(root)) // size-dependent: any root-sized set
}

// Play runs one game against a fresh algorithm from the factory. The rng
// drives the adversary's choice of S′; algSeed seeds the algorithm.
func (g *Game) Play(f online.Factory, rng *rand.Rand, algSeed int64) GameResult {
	space := metric.SinglePoint()
	alg := f.New(space, g.Costs, algSeed)
	root := int(math.Sqrt(float64(g.U)))
	sprime := commodity.RandomSubset(rng, g.U, root)

	res := GameResult{OptCost: g.OptCost()}
	covered := func() commodity.Set {
		var c commodity.Set
		for _, fac := range alg.Solution().Facilities {
			c = c.Union(fac.Config)
		}
		return c
	}

	step := 0
	requested := 0
	prevFacilities := 0
	sprime.ForEach(func(e int) {
		alg.Serve(instance.Request{Point: 0, Demands: commodity.New(e)})
		step++
		requested++
		nf := len(alg.Solution().Facilities)
		if nf > prevFacilities {
			res.Rounds++
			prevFacilities = nf
		}
		res.Trace = append(res.Trace, GameStep{
			Step:            step,
			RequestedSoFar:  requested,
			CoveredSoFar:    covered().Len(),
			FacilitiesSoFar: nf,
		})
	})

	in := &instance.Instance{Space: space, Costs: g.Costs}
	sprime.ForEach(func(e int) {
		in.Requests = append(in.Requests, instance.Request{Point: 0, Demands: commodity.New(e)})
	})
	sol := alg.Solution()
	if err := sol.Verify(in); err != nil {
		panic(fmt.Sprintf("lowerbound: %s infeasible on the game: %v", f.Name, err))
	}
	res.AlgCost = sol.Cost(in)
	res.Facilities = len(sol.Facilities)
	res.Predicted = covered().Len() - requested
	if res.Predicted < 0 {
		res.Predicted = 0
	}
	res.Ratio = res.AlgCost / res.OptCost
	return res
}

// ExpectedRatio plays the game `reps` times with fresh adversaries and
// algorithm seeds and returns the mean ratio and the mean Figure 1
// quantities. Repetitions are independent — each derives its own adversary
// rng from the rep index — so ExpectedRatioParallel fans them out across
// goroutines with identical results.
func (g *Game) ExpectedRatio(f online.Factory, seed int64, reps int) (ratio, rounds, predicted float64) {
	return g.ExpectedRatioParallel(f, seed, reps, 1)
}

// ExpectedRatioParallel is ExpectedRatio across `workers` goroutines
// (workers < 1 meaning GOMAXPROCS). The per-rep sub-seeds and the ordered
// reduction make the result identical for every worker count.
func (g *Game) ExpectedRatioParallel(f online.Factory, seed int64, reps, workers int) (ratio, rounds, predicted float64) {
	results, err := par.Map(workers, reps, func(i int) (GameResult, error) {
		repSeed := seed + int64(i)*7919
		return g.Play(f, rand.New(rand.NewSource(repSeed)), repSeed), nil
	})
	if err != nil { // Play never errors; keep the invariant loud.
		panic("lowerbound: " + err.Error())
	}
	var rSum, xSum, tSum float64
	for _, res := range results {
		rSum += res.Ratio
		xSum += float64(res.Rounds)
		tSum += float64(res.Predicted)
	}
	n := float64(reps)
	return rSum / n, xSum / n, tSum / n
}

// TheoreticalLowerBound returns the Ω(√|S|)/16 bound of Theorem 2 (the
// explicit constant from the proof).
func TheoreticalLowerBound(u int) float64 {
	return math.Sqrt(float64(u)) / 16
}

// ClassCLowerBound returns the Theorem 18 bound
// min{√|S|^{(2−x)/2}, √|S|^{x/2}} (without the additive log n term).
func ClassCLowerBound(u int, x float64) float64 {
	s := math.Sqrt(float64(u))
	return math.Min(math.Pow(s, (2-x)/2), math.Pow(s, x/2))
}

// ClassCUpperBound returns the Theorem 18 upper-bound factor
// √|S|^{(2x−x²)/2} (without the log n term).
func ClassCUpperBound(u int, x float64) float64 {
	s := math.Sqrt(float64(u))
	return math.Pow(s, (2*x-x*x)/2)
}
