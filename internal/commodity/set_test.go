package commodity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndContains(t *testing.T) {
	s := New(0, 3, 64, 100)
	for _, id := range []int{0, 3, 64, 100} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false, want true", id)
		}
	}
	for _, id := range []int{1, 2, 63, 65, 99, 101, -1} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true, want false", id)
		}
	}
	if got := s.Len(); got != 4 {
		t.Errorf("Len() = %d, want 4", got)
	}
}

func TestZeroValueIsEmpty(t *testing.T) {
	var s Set
	if !s.IsEmpty() {
		t.Error("zero Set is not empty")
	}
	if s.Len() != 0 {
		t.Errorf("zero Set Len = %d", s.Len())
	}
	if !s.Equal(New()) {
		t.Error("zero Set != New()")
	}
	if s.String() != "{}" {
		t.Errorf("zero Set String = %q", s.String())
	}
}

func TestFull(t *testing.T) {
	for _, u := range []int{0, 1, 5, 63, 64, 65, 128, 130} {
		s := Full(u)
		if s.Len() != u {
			t.Errorf("Full(%d).Len() = %d", u, s.Len())
		}
		for id := 0; id < u; id++ {
			if !s.Contains(id) {
				t.Errorf("Full(%d) missing %d", u, id)
			}
		}
		if s.Contains(u) {
			t.Errorf("Full(%d) contains %d", u, u)
		}
	}
}

func TestWithWithout(t *testing.T) {
	s := New(1, 2)
	s2 := s.With(5)
	if !s2.Contains(5) || s.Contains(5) {
		t.Error("With must not mutate the receiver")
	}
	s3 := s2.Without(1)
	if s3.Contains(1) || !s2.Contains(1) {
		t.Error("Without must not mutate the receiver")
	}
	if !s3.Equal(New(2, 5)) {
		t.Errorf("got %v, want {2,5}", s3)
	}
	// Removing an absent element is a no-op clone.
	if !s.Without(99).Equal(s) {
		t.Error("Without(absent) changed the set")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(1, 2, 3, 70)
	b := New(3, 4, 70, 200)
	if got := a.Union(b); !got.Equal(New(1, 2, 3, 4, 70, 200)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(3, 70)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Subtract(b); !got.Equal(New(1, 2)) {
		t.Errorf("Subtract = %v", got)
	}
	if !New(1, 2).SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf wrong")
	}
	if !a.Intersects(b) || a.Intersects(New(9)) {
		t.Error("Intersects wrong")
	}
}

func TestEqualIgnoresTrailingWords(t *testing.T) {
	a := New(1, 200).Without(200) // leaves high words allocated then trimmed
	b := New(1)
	if !a.Equal(b) {
		t.Error("sets with different storage but same members must be Equal")
	}
	if a.Key() != b.Key() {
		t.Error("Keys of equal sets differ")
	}
}

func TestIDsAndForEachOrdered(t *testing.T) {
	s := New(5, 1, 127, 64)
	want := []int{1, 5, 64, 127}
	got := s.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	prev := -1
	s.ForEach(func(id int) {
		if id <= prev {
			t.Errorf("ForEach out of order: %d after %d", id, prev)
		}
		prev = id
	})
}

func TestMinMax(t *testing.T) {
	if got := New().Min(); got != -1 {
		t.Errorf("empty Min = %d", got)
	}
	if got := New().Max(); got != -1 {
		t.Errorf("empty Max = %d", got)
	}
	s := New(17, 90, 3)
	if s.Min() != 3 || s.Max() != 90 {
		t.Errorf("Min/Max = %d/%d", s.Min(), s.Max())
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []Set{New(), New(0), New(1, 5, 64), Full(70)} {
		got, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.String(), err)
		}
		if !got.Equal(s) {
			t.Errorf("round trip: got %v, want %v", got, s)
		}
	}
	if _, err := Parse("{1,x}"); err == nil {
		t.Error("Parse accepted junk")
	}
	if _, err := Parse("{-1}"); err == nil {
		t.Error("Parse accepted negative ID")
	}
}

func TestMaskRoundTrip(t *testing.T) {
	for _, mask := range []uint64{0, 1, 0b1011, 1 << 63} {
		if got := FromMask(mask).Mask(); got != mask {
			t.Errorf("mask round trip: got %b, want %b", got, mask)
		}
	}
}

func TestRandomSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for k := 0; k <= 10; k++ {
		s := RandomSubset(rng, 10, k)
		if s.Len() != k {
			t.Errorf("RandomSubset size = %d, want %d", s.Len(), k)
		}
		if !s.SubsetOf(Full(10)) {
			t.Errorf("RandomSubset out of universe: %v", s)
		}
	}
}

func TestRandomSubsetUniformCoverage(t *testing.T) {
	// Over many draws of 1-subsets from [0,4), every element must appear.
	rng := rand.New(rand.NewSource(7))
	seen := make(map[int]int)
	for i := 0; i < 400; i++ {
		seen[RandomSubset(rng, 4, 1).Min()]++
	}
	for id := 0; id < 4; id++ {
		if seen[id] < 40 {
			t.Errorf("element %d drawn only %d/400 times", id, seen[id])
		}
	}
}

func TestRandomSubsetOf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := New(2, 4, 8, 16)
	s := RandomSubsetOf(rng, base, 2)
	if s.Len() != 2 || !s.SubsetOf(base) {
		t.Errorf("RandomSubsetOf = %v", s)
	}
}

func TestAllSubsets(t *testing.T) {
	subs := AllSubsets(3)
	if len(subs) != 7 {
		t.Fatalf("AllSubsets(3) has %d sets, want 7", len(subs))
	}
	seen := make(map[string]bool)
	for _, s := range subs {
		if s.IsEmpty() {
			t.Error("AllSubsets produced empty set")
		}
		if !s.SubsetOf(Full(3)) {
			t.Errorf("subset %v out of universe", s)
		}
		seen[s.Key()] = true
	}
	if len(seen) != 7 {
		t.Errorf("AllSubsets produced duplicates: %d unique", len(seen))
	}
}

func TestSorted(t *testing.T) {
	sets := []Set{New(2, 3), New(1), New(0, 9), New()}
	out := Sorted(sets)
	if !out[0].Equal(New()) || !out[1].Equal(New(1)) || !out[2].Equal(New(0, 9)) || !out[3].Equal(New(2, 3)) {
		t.Errorf("Sorted = %v", out)
	}
}

// Property: union is commutative, associative, and monotone in size.
func TestQuickUnionProperties(t *testing.T) {
	f := func(am, bm, cm uint64) bool {
		a, b, c := FromMask(am), FromMask(bm), FromMask(cm)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			return false
		}
		u := a.Union(b)
		return u.Len() >= a.Len() && u.Len() >= b.Len() && a.SubsetOf(u) && b.SubsetOf(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |A| + |B| = |A∪B| + |A∩B| (inclusion–exclusion).
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(am, bm uint64) bool {
		a, b := FromMask(am), FromMask(bm)
		return a.Len()+b.Len() == a.Union(b).Len()+a.Intersect(b).Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: A \ B is disjoint from B and (A\B) ∪ (A∩B) = A.
func TestQuickSubtractPartition(t *testing.T) {
	f := func(am, bm uint64) bool {
		a, b := FromMask(am), FromMask(bm)
		d := a.Subtract(b)
		if d.Intersects(b) {
			return false
		}
		return d.Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: bitmask semantics agree with Go's uint64 operators.
func TestQuickMaskAgreement(t *testing.T) {
	f := func(am, bm uint64) bool {
		a, b := FromMask(am), FromMask(bm)
		return a.Union(b).Mask() == am|bm &&
			a.Intersect(b).Mask() == am&bm &&
			a.Subtract(b).Mask() == am&^bm &&
			a.SubsetOf(b) == (am&^bm == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnion(b *testing.B) {
	x := Full(256)
	y := New(1, 100, 200, 255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Union(y)
	}
}

func BenchmarkContains(b *testing.B) {
	s := Full(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Contains(i & 255)
	}
}
