// Package commodity provides compact commodity sets for the Online
// Multi-Commodity Facility Location Problem (OMFLP).
//
// Commodities are identified by integer IDs in a universe [0, U). A Set is a
// dynamically sized bitset; the zero value is the empty set and is ready to
// use. Sets are value-like: operations return new sets and never alias the
// inputs unless documented otherwise.
package commodity

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a set of commodity IDs backed by a bitset. The zero value is the
// empty set.
type Set struct {
	words []uint64
}

// New returns a set containing exactly the given IDs. IDs must be
// non-negative; New panics otherwise (a malformed ID is a programming error,
// not a recoverable condition).
func New(ids ...int) Set {
	var s Set
	for _, id := range ids {
		s.add(id)
	}
	return s
}

// Full returns the set {0, 1, ..., u-1}. Full panics if u is negative.
func Full(u int) Set {
	if u < 0 {
		panic("commodity: negative universe size")
	}
	if u == 0 {
		return Set{}
	}
	n := (u + wordBits - 1) / wordBits
	words := make([]uint64, n)
	for i := range words {
		words[i] = ^uint64(0)
	}
	// Clear the bits above u-1 in the last word.
	if rem := u % wordBits; rem != 0 {
		words[n-1] = (uint64(1) << uint(rem)) - 1
	}
	return Set{words: words}
}

func (s *Set) add(id int) {
	if id < 0 {
		panic(fmt.Sprintf("commodity: negative ID %d", id))
	}
	w := id / wordBits
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= uint64(1) << uint(id%wordBits)
}

// trim removes trailing zero words so that structurally equal sets compare
// equal regardless of construction history.
func (s *Set) trim() {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	s.words = s.words[:n]
}

// With returns s ∪ {id}.
func (s Set) With(id int) Set {
	t := s.Clone()
	t.add(id)
	return t
}

// Without returns s \ {id}.
func (s Set) Without(id int) Set {
	if !s.Contains(id) {
		return s.Clone()
	}
	t := s.Clone()
	t.words[id/wordBits] &^= uint64(1) << uint(id%wordBits)
	t.trim()
	return t
}

// Contains reports whether id is in s.
func (s Set) Contains(id int) bool {
	if id < 0 {
		return false
	}
	w := id / wordBits
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(uint64(1)<<uint(id%wordBits)) != 0
}

// Len returns |s|.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether s is the empty set.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of s that shares no storage with s.
func (s Set) Clone() Set {
	if len(s.words) == 0 {
		return Set{}
	}
	words := make([]uint64, len(s.words))
	copy(words, s.words)
	return Set{words: words}
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	a, b := s.words, t.words
	if len(a) < len(b) {
		a, b = b, a
	}
	words := make([]uint64, len(a))
	copy(words, a)
	for i := range b {
		words[i] |= b[i]
	}
	u := Set{words: words}
	u.trim()
	return u
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	words := make([]uint64, n)
	for i := 0; i < n; i++ {
		words[i] = s.words[i] & t.words[i]
	}
	u := Set{words: words}
	u.trim()
	return u
}

// Subtract returns s \ t.
func (s Set) Subtract(t Set) Set {
	words := make([]uint64, len(s.words))
	copy(words, s.words)
	n := len(words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		words[i] &^= t.words[i]
	}
	u := Set{words: words}
	u.trim()
	return u
}

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		if w == 0 {
			continue
		}
		if i >= len(t.words) || w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t ≠ ∅.
func (s Set) Intersects(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same IDs.
func (s Set) Equal(t Set) bool {
	a, b := s, t
	a.trim()
	b.trim()
	if len(a.words) != len(b.words) {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}

// IDs returns the members of s in increasing order.
func (s Set) IDs() []int {
	ids := make([]int, 0, s.Len())
	s.ForEach(func(id int) {
		ids = append(ids, id)
	})
	return ids
}

// ForEach calls fn for every member of s in increasing order.
func (s Set) ForEach(fn func(id int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Min returns the smallest ID in s, or -1 if s is empty.
func (s Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest ID in s, or -1 if s is empty.
func (s Set) Max() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// Key returns a canonical string usable as a map key. Two sets have the same
// Key exactly when they are Equal.
func (s Set) Key() string {
	t := s
	t.trim()
	if len(t.words) == 0 {
		return ""
	}
	var b strings.Builder
	for _, w := range t.words {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> uint(8*i))
		}
		b.Write(buf[:])
	}
	return b.String()
}

// String renders s as "{a,b,c}".
func (s Set) String() string {
	ids := s.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Parse parses the output of String ("{1,2,3}" or "1,2,3") into a Set.
func Parse(text string) (Set, error) {
	text = strings.TrimSpace(text)
	text = strings.TrimPrefix(text, "{")
	text = strings.TrimSuffix(text, "}")
	if strings.TrimSpace(text) == "" {
		return Set{}, nil
	}
	var s Set
	for _, part := range strings.Split(text, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return Set{}, fmt.Errorf("commodity: parsing %q: %v", part, err)
		}
		if id < 0 {
			return Set{}, fmt.Errorf("commodity: negative ID %d", id)
		}
		s.add(id)
	}
	return s, nil
}

// Sorted returns the sets ordered by (size, lexicographic IDs); useful for
// deterministic iteration over map-collected sets.
func Sorted(sets []Set) []Set {
	out := make([]Set, len(sets))
	copy(out, sets)
	sort.Slice(out, func(i, j int) bool {
		li, lj := out[i].Len(), out[j].Len()
		if li != lj {
			return li < lj
		}
		a, b := out[i].IDs(), out[j].IDs()
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}
