package commodity

import "math/rand"

// RandomSubset returns a uniformly random subset of size k drawn from the
// universe [0, u). It panics if k < 0 or k > u. The selection uses a partial
// Fisher–Yates shuffle, so the cost is O(u) memory and O(u) time.
func RandomSubset(rng *rand.Rand, u, k int) Set {
	if k < 0 || k > u {
		panic("commodity: RandomSubset size out of range")
	}
	perm := rng.Perm(u)
	return New(perm[:k]...)
}

// RandomSubsetOf returns a uniformly random k-subset of the given set.
// It panics if k < 0 or k > base.Len().
func RandomSubsetOf(rng *rand.Rand, base Set, k int) Set {
	ids := base.IDs()
	if k < 0 || k > len(ids) {
		panic("commodity: RandomSubsetOf size out of range")
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return New(ids[:k]...)
}

// AllSubsets enumerates every non-empty subset of [0, u). It is intended for
// exhaustive validation on small universes and panics for u > 20.
func AllSubsets(u int) []Set {
	if u > 20 {
		panic("commodity: AllSubsets universe too large")
	}
	out := make([]Set, 0, (1<<uint(u))-1)
	for mask := 1; mask < 1<<uint(u); mask++ {
		var s Set
		for id := 0; id < u; id++ {
			if mask&(1<<uint(id)) != 0 {
				s.add(id)
			}
		}
		out = append(out, s)
	}
	return out
}

// FromMask builds a set from the low u bits of mask. It is a convenience for
// tests and subset-DP code; IDs at positions where mask has a 1 bit are
// members.
func FromMask(mask uint64) Set {
	if mask == 0 {
		return Set{}
	}
	return Set{words: []uint64{mask}}
}

// Mask returns the members of s as a uint64 bitmask. It panics if s contains
// an ID ≥ 64; callers use it only for local subset-DP universes.
func (s Set) Mask() uint64 {
	t := s
	t.trim()
	switch len(t.words) {
	case 0:
		return 0
	case 1:
		return t.words[0]
	default:
		panic("commodity: Mask requires all IDs < 64")
	}
}
