package instance

import (
	"math"

	"repro/internal/metric"
)

// AssignAll builds the optimal assignment of every request in the instance to
// the given facilities (via BestAssignment) and returns the completed
// solution together with its total cost. If some request cannot be covered,
// the cost is +Inf and the solution's Assign row for it is nil.
func AssignAll(in *Instance, facilities []Facility) (*Solution, float64) {
	sol := &Solution{
		Facilities: facilities,
		Assign:     make([][]int, len(in.Requests)),
	}
	feasible := true
	for ri, r := range in.Requests {
		links, c := BestAssignment(in.Space, facilities, r)
		if math.IsInf(c, 1) {
			feasible = false
			sol.Assign[ri] = nil
			continue
		}
		sol.Assign[ri] = links
	}
	if !feasible {
		return sol, math.Inf(1)
	}
	return sol, sol.Cost(in)
}

// CoverLowerBound returns, per request, the cheapest conceivable connection
// cost if every candidate facility were already open for free — a valid
// lower bound on any solution's assignment cost restricted to those
// candidates. Used for branch-and-bound pruning in the exact offline solver.
func CoverLowerBound(space metric.Space, candidates []Facility, requests []Request) []float64 {
	lb := make([]float64, len(requests))
	for i, r := range requests {
		_, c := BestAssignment(space, candidates, r)
		lb[i] = c
	}
	return lb
}
