package instance

import "repro/internal/commodity"

// SplitPerCommodity implements the simulation from Section 1.1's "different
// cost model" discussion: in the alternative model the connection cost is
// counted separately per commodity served, which our model simulates by
// replacing each request with |s_r| single-commodity requests at the same
// point. The sequence length grows by a factor ≤ |S|; the paper notes the
// competitive ratios of the algorithms increase by at most a factor 2 when
// |S| is polynomial in n.
//
// The returned instance shares the space and cost model with the original.
func SplitPerCommodity(in *Instance) *Instance {
	split := &Instance{Space: in.Space, Costs: in.Costs}
	for _, r := range in.Requests {
		r.Demands.ForEach(func(e int) {
			split.Requests = append(split.Requests, Request{
				Point:   r.Point,
				Demands: commodity.New(e),
			})
		})
	}
	return split
}

// PerCommodityCost evaluates a solution of the *original* instance under the
// alternative cost model: construction cost unchanged, but each (request,
// facility) connection is charged once per commodity of the request that the
// facility actually serves (commodities covered by several linked facilities
// are charged at the nearest one, matching an optimal per-commodity
// accounting of the same links).
func PerCommodityCost(in *Instance, s *Solution) float64 {
	total := s.ConstructionCost(in)
	for ri, links := range s.Assign {
		r := in.Requests[ri]
		r.Demands.ForEach(func(e int) {
			best := -1.0
			for _, fi := range links {
				f := s.Facilities[fi]
				if !f.Config.Contains(e) {
					continue
				}
				d := in.Space.Distance(r.Point, f.Point)
				if best < 0 || d < best {
					best = d
				}
			}
			if best >= 0 {
				total += best
			}
		})
	}
	return total
}
