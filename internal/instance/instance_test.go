package instance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/metric"
)

func lineInstance() *Instance {
	return &Instance{
		Space: metric.NewLine([]float64{0, 1, 2, 10}),
		Costs: cost.PowerLaw(4, 1, 1),
		Requests: []Request{
			{Point: 0, Demands: commodity.New(0, 1)},
			{Point: 3, Demands: commodity.New(2)},
		},
	}
}

func TestValidate(t *testing.T) {
	in := lineInstance()
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := lineInstance()
	bad.Requests[0].Point = 7
	if err := bad.Validate(); err == nil {
		t.Error("out-of-space point accepted")
	}
	bad = lineInstance()
	bad.Requests[1].Demands = commodity.Set{}
	if err := bad.Validate(); err == nil {
		t.Error("empty demand accepted")
	}
	bad = lineInstance()
	bad.Requests[1].Demands = commodity.New(9)
	if err := bad.Validate(); err == nil {
		t.Error("demand outside universe accepted")
	}
	if err := (&Instance{}).Validate(); err == nil {
		t.Error("nil space accepted")
	}
}

func TestVerifyAndCost(t *testing.T) {
	in := lineInstance()
	sol := &Solution{
		Facilities: []Facility{
			{Point: 1, Config: commodity.New(0, 1)},
			{Point: 3, Config: commodity.New(2)},
		},
		Assign: [][]int{{0}, {1}},
	}
	if err := sol.Verify(in); err != nil {
		t.Fatalf("feasible solution rejected: %v", err)
	}
	// Construction: g(2)+g(1) = sqrt2 + 1; assignment: d(0,1)+d(3,3) = 1.
	wantCons := math.Sqrt2 + 1
	if got := sol.ConstructionCost(in); math.Abs(got-wantCons) > 1e-12 {
		t.Errorf("construction = %g, want %g", got, wantCons)
	}
	if got := sol.AssignmentCost(in); got != 1 {
		t.Errorf("assignment = %g, want 1", got)
	}
	if got := sol.Cost(in); math.Abs(got-wantCons-1) > 1e-12 {
		t.Errorf("total = %g", got)
	}
}

func TestVerifyRejections(t *testing.T) {
	in := lineInstance()
	base := func() *Solution {
		return &Solution{
			Facilities: []Facility{
				{Point: 1, Config: commodity.New(0, 1)},
				{Point: 3, Config: commodity.New(2)},
			},
			Assign: [][]int{{0}, {1}},
		}
	}
	s := base()
	s.Assign = s.Assign[:1]
	if err := s.Verify(in); err == nil {
		t.Error("row count mismatch accepted")
	}
	s = base()
	s.Assign[1] = []int{5}
	if err := s.Verify(in); err == nil {
		t.Error("invalid facility index accepted")
	}
	s = base()
	s.Assign[0] = []int{0, 0}
	if err := s.Verify(in); err == nil {
		t.Error("duplicate link accepted")
	}
	s = base()
	s.Assign[0] = []int{1}
	if err := s.Verify(in); err == nil {
		t.Error("uncovered demand accepted")
	}
	s = base()
	s.Facilities[0].Point = -1
	if err := s.Verify(in); err == nil {
		t.Error("facility outside space accepted")
	}
	s = base()
	s.Facilities[0].Config = commodity.Set{}
	if err := s.Verify(in); err == nil {
		t.Error("empty facility config accepted")
	}
}

func TestClone(t *testing.T) {
	s := &Solution{
		Facilities: []Facility{{Point: 1, Config: commodity.New(0)}},
		Assign:     [][]int{{0}},
	}
	cp := s.Clone()
	cp.Facilities[0].Point = 2
	cp.Assign[0][0] = 9
	if s.Facilities[0].Point != 1 || s.Assign[0][0] != 0 {
		t.Error("Clone shares storage with the original")
	}
}

func TestBestAssignmentPicksJointFacility(t *testing.T) {
	space := metric.NewLine([]float64{0, 1, 2})
	facs := []Facility{
		{Point: 1, Config: commodity.New(0)},    // d=1 covers {0}
		{Point: 1, Config: commodity.New(1)},    // d=1 covers {1}
		{Point: 2, Config: commodity.New(0, 1)}, // d=2 covers both
	}
	r := Request{Point: 0, Demands: commodity.New(0, 1)}
	links, c := BestAssignment(space, facs, r)
	if c != 2 {
		t.Fatalf("cost = %g, want 2", c)
	}
	// Either the two singles (1+1) or the joint (2) is fine; both cost 2.
	if len(links) != 1 && len(links) != 2 {
		t.Errorf("links = %v", links)
	}
	// With the joint facility closer, it must win outright.
	facs[2].Point = 0
	links, c = BestAssignment(space, facs, r)
	if c != 0 || len(links) != 1 || links[0] != 2 {
		t.Errorf("links = %v cost %g, want joint facility at distance 0", links, c)
	}
}

func TestBestAssignmentInfeasible(t *testing.T) {
	space := metric.NewLine([]float64{0, 1})
	facs := []Facility{{Point: 1, Config: commodity.New(0)}}
	r := Request{Point: 0, Demands: commodity.New(0, 5)}
	links, c := BestAssignment(space, facs, r)
	if !math.IsInf(c, 1) || links != nil {
		t.Errorf("infeasible cover: links=%v cost=%g", links, c)
	}
	// Empty demand is free.
	links, c = BestAssignment(space, facs, Request{Point: 0, Demands: commodity.Set{}})
	if c != 0 || links != nil {
		t.Errorf("empty demand: links=%v cost=%g", links, c)
	}
}

func TestBestAssignmentIgnoresIrrelevantFacilities(t *testing.T) {
	space := metric.NewLine([]float64{0, 0.5, 9})
	facs := []Facility{
		{Point: 2, Config: commodity.New(7)}, // irrelevant commodity
		{Point: 1, Config: commodity.New(0)},
	}
	r := Request{Point: 0, Demands: commodity.New(0)}
	links, c := BestAssignment(space, facs, r)
	if c != 0.5 || len(links) != 1 || links[0] != 1 {
		t.Errorf("links=%v cost=%g", links, c)
	}
}

func TestAssignAll(t *testing.T) {
	in := lineInstance()
	facs := []Facility{
		{Point: 0, Config: commodity.New(0, 1)},
		{Point: 3, Config: commodity.New(2)},
	}
	sol, c := AssignAll(in, facs)
	if err := sol.Verify(in); err != nil {
		t.Fatalf("AssignAll produced infeasible solution: %v", err)
	}
	want := in.Costs.Cost(0, commodity.New(0, 1)) + in.Costs.Cost(3, commodity.New(2))
	if math.Abs(c-want) > 1e-12 {
		t.Errorf("cost = %g, want %g (zero assignment)", c, want)
	}
	// Remove coverage of commodity 2: infeasible.
	_, c = AssignAll(in, facs[:1])
	if !math.IsInf(c, 1) {
		t.Errorf("infeasible AssignAll cost = %g", c)
	}
}

func TestCoverLowerBound(t *testing.T) {
	in := lineInstance()
	cands := []Facility{
		{Point: 1, Config: commodity.New(0, 1)},
		{Point: 3, Config: commodity.New(2)},
	}
	lb := CoverLowerBound(in.Space, cands, in.Requests)
	if lb[0] != 1 || lb[1] != 0 {
		t.Errorf("lb = %v", lb)
	}
}

// Property: BestAssignment never beats brute force over facility subsets and
// always matches it exactly (on small random instances).
func TestQuickBestAssignmentMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		space := metric.RandomLine(rng, 6, 10)
		nf := 1 + rng.Intn(5)
		facs := make([]Facility, nf)
		for i := range facs {
			facs[i] = Facility{
				Point:  rng.Intn(space.Len()),
				Config: commodity.RandomSubset(rng, 4, 1+rng.Intn(4)),
			}
		}
		r := Request{Point: rng.Intn(space.Len()), Demands: commodity.RandomSubset(rng, 4, 1+rng.Intn(4))}
		_, got := BestAssignment(space, facs, r)

		// Brute force over all subsets of facilities.
		best := math.Inf(1)
		for mask := 0; mask < 1<<uint(nf); mask++ {
			var covered commodity.Set
			var c float64
			for i := 0; i < nf; i++ {
				if mask&(1<<uint(i)) != 0 {
					covered = covered.Union(facs[i].Config)
					c += space.Distance(r.Point, facs[i].Point)
				}
			}
			if r.Demands.SubsetOf(covered) && c < best {
				best = c
			}
		}
		if math.IsInf(best, 1) != math.IsInf(got, 1) {
			return false
		}
		return math.IsInf(best, 1) || math.Abs(best-got) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the links returned by BestAssignment always form a feasible,
// duplicate-free cover whose cost equals the reported optimum.
func TestQuickBestAssignmentLinksConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		space := metric.RandomEuclidean(rng, 8, 2, 10)
		facs := make([]Facility, 6)
		for i := range facs {
			facs[i] = Facility{
				Point:  rng.Intn(space.Len()),
				Config: commodity.RandomSubset(rng, 5, 1+rng.Intn(5)),
			}
		}
		r := Request{Point: rng.Intn(space.Len()), Demands: commodity.RandomSubset(rng, 5, 1+rng.Intn(5))}
		links, c := BestAssignment(space, facs, r)
		if math.IsInf(c, 1) {
			return true
		}
		var covered commodity.Set
		var sum float64
		seen := map[int]bool{}
		for _, fi := range links {
			if seen[fi] {
				return false
			}
			seen[fi] = true
			covered = covered.Union(facs[fi].Config)
			sum += space.Distance(r.Point, facs[fi].Point)
		}
		return r.Demands.SubsetOf(covered) && math.Abs(sum-c) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBestAssignment(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	space := metric.RandomEuclidean(rng, 50, 2, 100)
	facs := make([]Facility, 40)
	for i := range facs {
		facs[i] = Facility{Point: rng.Intn(50), Config: commodity.RandomSubset(rng, 16, 1+rng.Intn(8))}
	}
	r := Request{Point: 7, Demands: commodity.RandomSubset(rng, 16, 8)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = BestAssignment(space, facs, r)
	}
}
