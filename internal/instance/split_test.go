package instance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/metric"
)

func TestSplitPerCommodity(t *testing.T) {
	in := &Instance{
		Space: metric.NewLine([]float64{0, 1}),
		Costs: cost.PowerLaw(4, 1, 1),
		Requests: []Request{
			{Point: 0, Demands: commodity.New(0, 2)},
			{Point: 1, Demands: commodity.New(3)},
		},
	}
	split := SplitPerCommodity(in)
	if len(split.Requests) != 3 {
		t.Fatalf("split into %d requests, want 3", len(split.Requests))
	}
	for i, r := range split.Requests {
		if r.Demands.Len() != 1 {
			t.Errorf("split request %d demands %v", i, r.Demands)
		}
	}
	if split.Requests[0].Point != 0 || split.Requests[2].Point != 1 {
		t.Error("split lost request positions")
	}
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPerCommodityCostCountsPerCommodity(t *testing.T) {
	// One facility serving both commodities at distance 2: joint model
	// charges 2 once; per-commodity model charges it twice.
	in := &Instance{
		Space: metric.NewLine([]float64{0, 2}),
		Costs: cost.PowerLaw(2, 1, 1),
		Requests: []Request{
			{Point: 0, Demands: commodity.New(0, 1)},
		},
	}
	sol := &Solution{
		Facilities: []Facility{{Point: 1, Config: commodity.Full(2)}},
		Assign:     [][]int{{0}},
	}
	joint := sol.Cost(in)
	per := PerCommodityCost(in, sol)
	cons := sol.ConstructionCost(in)
	if math.Abs((joint-cons)-2) > 1e-12 {
		t.Errorf("joint connection = %g, want 2", joint-cons)
	}
	if math.Abs((per-cons)-4) > 1e-12 {
		t.Errorf("per-commodity connection = %g, want 4", per-cons)
	}
}

// Property: the per-commodity cost is always ≥ the joint cost (each link is
// charged at least once) and ≤ joint + (|s_r|−1)·links-worth of distance.
func TestQuickPerCommodityCostDominatesJoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := 1 + rng.Intn(4)
		in := &Instance{
			Space: metric.RandomLine(rng, 4, 10),
			Costs: cost.PowerLaw(u, 1, 1),
		}
		for i := 0; i < 1+rng.Intn(6); i++ {
			in.Requests = append(in.Requests, Request{
				Point:   rng.Intn(4),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}
		// Build a feasible solution: one full facility per request point.
		var facs []Facility
		seen := map[int]int{}
		for _, r := range in.Requests {
			if _, ok := seen[r.Point]; !ok {
				seen[r.Point] = len(facs)
				facs = append(facs, Facility{Point: r.Point, Config: commodity.Full(u)})
			}
		}
		sol := &Solution{Facilities: facs}
		for _, r := range in.Requests {
			sol.Assign = append(sol.Assign, []int{seen[r.Point]})
		}
		if sol.Verify(in) != nil {
			return false
		}
		return PerCommodityCost(in, sol) >= sol.Cost(in)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
