package instance

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/commodity"
	"repro/internal/metric"
)

func TestGreedyAssignmentLargeDemand(t *testing.T) {
	// Demand of 40 commodities (beyond the DP limit): the greedy path must
	// produce a feasible cover.
	space := metric.NewLine([]float64{0, 1, 2})
	facs := []Facility{
		{Point: 1, Config: commodity.Full(25)},
		{Point: 2, Config: func() commodity.Set {
			s := commodity.Set{}
			for e := 25; e < 40; e++ {
				s = s.With(e)
			}
			return s
		}()},
	}
	r := Request{Point: 0, Demands: commodity.Full(40)}
	links, c := BestAssignment(space, facs, r)
	if math.IsInf(c, 1) {
		t.Fatal("large demand not covered")
	}
	if len(links) != 2 || c != 3 {
		t.Errorf("links=%v cost=%g, want both facilities at cost 3", links, c)
	}
}

func TestGreedyAssignmentInfeasibleLargeDemand(t *testing.T) {
	space := metric.SinglePoint()
	facs := []Facility{{Point: 0, Config: commodity.New(0)}}
	r := Request{Point: 0, Demands: commodity.Full(25)}
	if _, c := BestAssignment(space, facs, r); !math.IsInf(c, 1) {
		t.Errorf("uncoverable demand got cost %g", c)
	}
}

func TestGreedyAssignmentPrefersJointFacility(t *testing.T) {
	// A single facility covering everything at distance 1 beats 25
	// singletons at distance 0.01 each? No — greedy picks by d/gain:
	// joint: 1/25 = 0.04; singleton: 0.01/1 = 0.01 → singletons win each
	// round, total 0.25 < 1. Greedy achieves the optimum here.
	pos := []float64{0, 1}
	for i := 0; i < 25; i++ {
		pos = append(pos, 0.01)
	}
	space := metric.NewLine(pos)
	facs := []Facility{{Point: 1, Config: commodity.Full(25)}}
	for e := 0; e < 25; e++ {
		facs = append(facs, Facility{Point: 2 + e, Config: commodity.New(e)})
	}
	r := Request{Point: 0, Demands: commodity.Full(25)}
	links, c := BestAssignment(space, facs, r)
	if math.Abs(c-0.25) > 1e-9 {
		t.Errorf("cost = %g, want 0.25 via singletons (%d links)", c, len(links))
	}
}

// The greedy fallback agrees with the exact DP whenever both apply (compare
// on demands just under the limit by brute-force instances where greedy is
// optimal: disjoint facility configs).
func TestGreedyMatchesDPOnDisjointConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		// Partition 18 commodities into disjoint facility configs: greedy
		// is optimal for disjoint covers (it must take them all).
		space := metric.RandomLine(rng, 6, 10)
		var facs []Facility
		e := 0
		for e < 18 {
			sz := 1 + rng.Intn(5)
			if e+sz > 18 {
				sz = 18 - e
			}
			var cfg commodity.Set
			for i := 0; i < sz; i++ {
				cfg = cfg.With(e + i)
			}
			facs = append(facs, Facility{Point: rng.Intn(space.Len()), Config: cfg})
			e += sz
		}
		r := Request{Point: rng.Intn(space.Len()), Demands: commodity.Full(18)}
		_, dpCost := BestAssignment(space, facs, r) // k=18 ≤ limit: exact DP
		gLinks, gCost := greedyAssignment(space, facs, r)
		if math.Abs(dpCost-gCost) > 1e-9 {
			t.Errorf("trial %d: greedy %g vs DP %g on disjoint configs", trial, gCost, dpCost)
		}
		if len(gLinks) != len(facs) {
			t.Errorf("trial %d: greedy used %d/%d disjoint facilities", trial, len(gLinks), len(facs))
		}
	}
}
