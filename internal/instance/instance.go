// Package instance defines OMFLP problem instances and solutions.
//
// An Instance couples a finite metric space, a construction cost model and a
// sequence of requests. Requests arrive in sequence order in the online
// setting; offline algorithms see the whole slice at once. A Solution lists
// the opened facilities (point + configuration) and, per request, the set of
// facilities it is connected to. Verify checks feasibility — every commodity
// demanded by a request must be offered by at least one facility the request
// connects to — and Cost implements the paper's objective: construction cost
// plus one distance term per (request, connected facility) pair.
package instance

import (
	"fmt"
	"math"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/metric"
)

// Request is a demand for the commodity set Demands arriving at point Point.
type Request struct {
	Point   int
	Demands commodity.Set
}

// Instance is a complete OMFLP problem: metric space, cost model, commodity
// universe and request sequence.
type Instance struct {
	Space    metric.Space
	Costs    cost.Model
	Requests []Request
}

// Universe returns |S|.
func (in *Instance) Universe() int { return in.Costs.Universe() }

// Validate checks structural consistency: request points inside the space,
// demands non-empty and inside the universe.
func (in *Instance) Validate() error {
	if in.Space == nil || in.Costs == nil {
		return fmt.Errorf("instance: nil space or cost model")
	}
	full := commodity.Full(in.Universe())
	for i, r := range in.Requests {
		if r.Point < 0 || r.Point >= in.Space.Len() {
			return fmt.Errorf("instance: request %d at point %d outside space of %d points", i, r.Point, in.Space.Len())
		}
		if r.Demands.IsEmpty() {
			return fmt.Errorf("instance: request %d demands nothing", i)
		}
		if !r.Demands.SubsetOf(full) {
			return fmt.Errorf("instance: request %d demands %v outside universe of %d", i, r.Demands, in.Universe())
		}
	}
	return nil
}

// Facility is an opened facility: a point of the metric space plus the
// configuration of commodities it offers.
type Facility struct {
	Point  int
	Config commodity.Set
}

// Solution is a feasible (or candidate) solution: opened facilities plus,
// for each request index, the indices of facilities it connects to.
type Solution struct {
	Facilities []Facility
	// Assign[r] lists facility indices request r is connected to. The
	// same facility index appearing twice would be double-counted;
	// Verify rejects duplicates.
	Assign [][]int
}

// Clone returns a deep copy.
func (s *Solution) Clone() *Solution {
	cp := &Solution{
		Facilities: make([]Facility, len(s.Facilities)),
		Assign:     make([][]int, len(s.Assign)),
	}
	for i, f := range s.Facilities {
		cp.Facilities[i] = Facility{Point: f.Point, Config: f.Config.Clone()}
	}
	for i, a := range s.Assign {
		cp.Assign[i] = append([]int(nil), a...)
	}
	return cp
}

// Verify checks that the solution is feasible for the instance: assignment
// rows match requests, facility indices are valid and not duplicated, and
// the connected facilities jointly offer each request's demands.
func (s *Solution) Verify(in *Instance) error {
	if len(s.Assign) != len(in.Requests) {
		return fmt.Errorf("instance: solution covers %d requests, instance has %d", len(s.Assign), len(in.Requests))
	}
	for fi, f := range s.Facilities {
		if f.Point < 0 || f.Point >= in.Space.Len() {
			return fmt.Errorf("instance: facility %d at point %d outside space", fi, f.Point)
		}
		if f.Config.IsEmpty() {
			return fmt.Errorf("instance: facility %d has empty configuration", fi)
		}
	}
	for ri, links := range s.Assign {
		seen := make(map[int]bool, len(links))
		var offered commodity.Set
		for _, fi := range links {
			if fi < 0 || fi >= len(s.Facilities) {
				return fmt.Errorf("instance: request %d linked to invalid facility %d", ri, fi)
			}
			if seen[fi] {
				return fmt.Errorf("instance: request %d linked to facility %d twice", ri, fi)
			}
			seen[fi] = true
			offered = offered.Union(s.Facilities[fi].Config)
		}
		if !in.Requests[ri].Demands.SubsetOf(offered) {
			missing := in.Requests[ri].Demands.Subtract(offered)
			return fmt.Errorf("instance: request %d missing commodities %v", ri, missing)
		}
	}
	return nil
}

// ConstructionCost returns the total facility construction cost.
func (s *Solution) ConstructionCost(in *Instance) float64 {
	var sum float64
	for _, f := range s.Facilities {
		sum += in.Costs.Cost(f.Point, f.Config)
	}
	return sum
}

// AssignmentCost returns the total connection cost: one distance term per
// (request, connected facility) pair, as in the paper's objective.
func (s *Solution) AssignmentCost(in *Instance) float64 {
	var sum float64
	for ri, links := range s.Assign {
		p := in.Requests[ri].Point
		for _, fi := range links {
			sum += in.Space.Distance(p, s.Facilities[fi].Point)
		}
	}
	return sum
}

// Cost returns construction plus assignment cost.
func (s *Solution) Cost(in *Instance) float64 {
	return s.ConstructionCost(in) + s.AssignmentCost(in)
}

// dpDemandLimit bounds the exact subset DP in BestAssignment: 2^20 masks
// (~8 MB of DP state). Larger demands use a greedy cover instead.
const dpDemandLimit = 20

// BestAssignment computes, for request r against the given open facilities,
// a minimum-cost set of facility indices jointly covering r.Demands. For
// demands of at most dpDemandLimit commodities the subset DP is exact
// (O(2^|s_r|·|facilities|)); beyond that it falls back to a greedy
// distance-per-new-commodity cover, which is feasible but only approximate.
// The second return value is the cost (+Inf and nil if the facilities cannot
// cover the demands).
func BestAssignment(space metric.Space, facilities []Facility, r Request) ([]int, float64) {
	ids := r.Demands.IDs()
	k := len(ids)
	if k == 0 {
		return nil, 0
	}
	if k > dpDemandLimit {
		return greedyAssignment(space, facilities, r)
	}
	local := make(map[int]int, k) // commodity ID -> local bit
	for b, id := range ids {
		local[id] = b
	}
	fullMask := (1 << uint(k)) - 1

	// For each facility: its local coverage mask and distance. Among
	// facilities with identical masks only the nearest matters.
	type cand struct {
		mask int
		d    float64
		idx  int
	}
	bestByMask := make(map[int]cand)
	for fi, f := range facilities {
		mask := 0
		f.Config.ForEach(func(id int) {
			if b, ok := local[id]; ok {
				mask |= 1 << uint(b)
			}
		})
		if mask == 0 {
			continue
		}
		d := space.Distance(r.Point, f.Point)
		if prev, ok := bestByMask[mask]; !ok || d < prev.d {
			bestByMask[mask] = cand{mask: mask, d: d, idx: fi}
		}
	}
	cands := make([]cand, 0, len(bestByMask))
	for _, c := range bestByMask {
		cands = append(cands, c)
	}

	const inf = math.MaxFloat64
	dp := make([]float64, fullMask+1)
	choice := make([]int, fullMask+1) // candidate used to reach the mask
	parent := make([]int, fullMask+1) // predecessor mask
	for m := 1; m <= fullMask; m++ {
		dp[m] = inf
		choice[m] = -1
	}
	for m := 0; m <= fullMask; m++ {
		if dp[m] == inf {
			continue
		}
		for ci, c := range cands {
			nm := m | c.mask
			if nm == m {
				continue
			}
			if nd := dp[m] + c.d; nd < dp[nm] {
				dp[nm] = nd
				choice[nm] = ci
				parent[nm] = m
			}
		}
	}
	if dp[fullMask] == inf {
		return nil, math.Inf(1)
	}
	var picks []int
	for m := fullMask; m != 0; m = parent[m] {
		picks = append(picks, cands[choice[m]].idx)
	}
	return picks, dp[fullMask]
}

// greedyAssignment covers r.Demands by repeatedly connecting to the facility
// with the best distance-per-newly-covered-commodity ratio. Used when the
// demand is too large for the exact DP.
func greedyAssignment(space metric.Space, facilities []Facility, r Request) ([]int, float64) {
	remaining := r.Demands.Clone()
	var picks []int
	var total float64
	used := make([]bool, len(facilities))
	for !remaining.IsEmpty() {
		best, bestGain := -1, 0
		bestD := math.Inf(1)
		for fi, f := range facilities {
			if used[fi] {
				continue
			}
			gain := f.Config.Intersect(remaining).Len()
			if gain == 0 {
				continue
			}
			d := space.Distance(r.Point, f.Point)
			// Compare d/gain ratios without division.
			if best < 0 || d*float64(bestGain) < bestD*float64(gain) {
				best, bestGain, bestD = fi, gain, d
			}
		}
		if best < 0 {
			return nil, math.Inf(1)
		}
		used[best] = true
		picks = append(picks, best)
		total += bestD
		remaining = remaining.Subtract(facilities[best].Config)
	}
	return picks, total
}
