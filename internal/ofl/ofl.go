// Package ofl provides classic single-commodity Online Facility Location
// algorithms, the substrate for the trivial per-commodity OMFLP baseline the
// paper mentions in Section 1.3 ("solve an instance of the OFLP for each
// commodity separately").
//
// Two algorithms are provided:
//
//   - Meyerson: the randomized algorithm of Meyerson (FOCS 2001),
//     O(log n / log log n)-competitive, generalized to non-uniform facility
//     costs via power-of-two cost classes (the same machinery RAND-OMFLP
//     reuses for configurations).
//   - FotakisPD: a deterministic primal-dual algorithm in the style of
//     Fotakis (J. Discrete Algorithms 2007), O(log n)-competitive; it is the
//     single-commodity restriction of PD-OMFLP (Constraints (1) and (3)).
//
// Both operate on a metric space with a per-point facility opening cost and
// process demand points online.
package ofl

import (
	"math"

	"repro/internal/metric"
)

// Algorithm is a single-commodity online facility location algorithm.
type Algorithm interface {
	// Place processes a demand at point p. It returns the point of the
	// facility the demand is connected to and the points of any facilities
	// opened while processing the demand.
	Place(p int) (connectTo int, opened []int)
	// Facilities returns the points with an open facility, in opening
	// order.
	Facilities() []int
}

// FacilityCost gives the opening cost at each candidate point.
type FacilityCost func(point int) float64

// nearestFacility returns the open facility closest to p, or (-1, +Inf).
func nearestFacility(space metric.Space, facilities []int, p int) (int, float64) {
	return metric.Nearest(space, p, facilities)
}

// classes partitions candidate points by facility cost rounded down to the
// nearest power of two, ascending. points[i] lists the candidates whose
// class index is ≤ i (cumulative), so a "class-i facility closest to p"
// always means the best facility at least as cheap as class i.
type classes struct {
	values []float64 // distinct power-of-two class values, ascending
	points [][]int   // cumulative point lists, aligned with values
}

// buildClasses groups candidates by cost class. Zero- or negative-cost
// points are treated as class value of the smallest positive power of two
// below the smallest positive cost (the paper assumes positive costs).
func buildClasses(cands []int, fc FacilityCost) classes {
	type pc struct {
		point int
		class float64
	}
	pcs := make([]pc, 0, len(cands))
	for _, m := range cands {
		c := fc(m)
		if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
			panic("ofl: facility costs must be positive and finite")
		}
		pcs = append(pcs, pc{point: m, class: math.Pow(2, math.Floor(math.Log2(c)))})
	}
	// Collect distinct class values ascending.
	distinct := map[float64]bool{}
	for _, x := range pcs {
		distinct[x.class] = true
	}
	var cl classes
	for v := range distinct {
		cl.values = append(cl.values, v)
	}
	sortFloats(cl.values)
	cl.points = make([][]int, len(cl.values))
	for i, v := range cl.values {
		var pts []int
		if i > 0 {
			pts = append(pts, cl.points[i-1]...)
		}
		for _, x := range pcs {
			if x.class == v {
				pts = append(pts, x.point)
			}
		}
		cl.points[i] = pts
	}
	return cl
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// nearest returns the candidate of class ≤ i nearest to p.
func (c *classes) nearest(space metric.Space, i, p int) (int, float64) {
	return metric.Nearest(space, p, c.points[i])
}
