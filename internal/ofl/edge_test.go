package ofl

import (
	"math/rand"
	"testing"

	"repro/internal/metric"
)

func TestConstructorPanics(t *testing.T) {
	space := metric.SinglePoint()
	rng := rand.New(rand.NewSource(1))
	for name, fn := range map[string]func(){
		"meyerson-no-candidates": func() { NewMeyerson(space, uniformCost(1), nil, rng) },
		"fotakis-no-candidates":  func() { NewFotakisPD(space, uniformCost(1), nil) },
		"fotakis-zero-cost":      func() { NewFotakisPD(space, uniformCost(0), []int{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMeyersonForcedOpeningPath(t *testing.T) {
	// With enormous facility costs, every coin flip has probability
	// d/C ≈ 0 on the first demand (budget = C + d dominated by C, and
	// improvement/C ≪ 1), so the forced-opening branch must cover it.
	space := metric.SinglePoint()
	for s := int64(0); s < 30; s++ {
		rng := rand.New(rand.NewSource(s))
		m := NewMeyerson(space, uniformCost(1e9), []int{0}, rng)
		connect, opened := m.Place(0)
		if len(m.Facilities()) != 1 {
			t.Fatalf("seed %d: facilities = %v", s, m.Facilities())
		}
		if connect != 0 || len(opened) != 1 {
			t.Errorf("seed %d: connect=%d opened=%v", s, connect, opened)
		}
	}
}

func TestMeyersonManyClasses(t *testing.T) {
	// Costs spanning many powers of two exercise the multi-class loop.
	space := metric.NewGrid(8, 10)
	costs := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	fc := func(m int) float64 { return costs[m] }
	rng := rand.New(rand.NewSource(5))
	m := NewMeyerson(space, fc, allPoints(8), rng)
	open := map[int]bool{}
	for i := 0; i < 40; i++ {
		connect, opened := m.Place(i % 8)
		for _, o := range opened {
			open[o] = true
		}
		if !open[connect] {
			t.Fatal("connected to unopened facility")
		}
	}
}
