package ofl

import (
	"math"

	"repro/internal/metric"
)

// FotakisPD is a deterministic primal-dual online facility location
// algorithm in the style of Fotakis: each demand raises its dual variable
// a_r until it either reaches the distance of the nearest open facility
// (connect) or, together with the reinvested duals of earlier demands, pays
// for a new facility at some candidate point (open and connect). It is the
// single-commodity restriction of PD-OMFLP's Constraints (1) and (3).
type FotakisPD struct {
	space      metric.Space //omflp:nostate — constructor parameter; restore requires an identically constructed instance
	fc         FacilityCost //omflp:nostate — constructor parameter, ditto
	cands      []int
	facilities []int
	open       map[int]bool
	// credits[j] = min{a_j, d(F, p_j)} for each earlier demand j — the
	// amount demand j keeps bidding toward new facilities.
	credits []float64
	points  []int // demand points, aligned with credits
}

// NewFotakisPD builds the algorithm over the given candidate facility points.
func NewFotakisPD(space metric.Space, fc FacilityCost, candidates []int) *FotakisPD {
	if len(candidates) == 0 {
		panic("ofl: FotakisPD needs at least one candidate point")
	}
	for _, m := range candidates {
		if c := fc(m); c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			panic("ofl: facility costs must be positive and finite")
		}
	}
	cp := append([]int(nil), candidates...)
	return &FotakisPD{space: space, fc: fc, cands: cp, open: map[int]bool{}}
}

// Facilities returns the open facility points in opening order.
func (f *FotakisPD) Facilities() []int { return f.facilities }

// bidSum returns Σ_j (credit_j − d(m, j))_+ — the reinvestment of earlier
// demands toward a facility at m.
func (f *FotakisPD) bidSum(m int) float64 {
	var sum float64
	for j, credit := range f.credits {
		if b := credit - f.space.Distance(m, f.points[j]); b > 0 {
			sum += b
		}
	}
	return sum
}

// Place processes a demand at p.
func (f *FotakisPD) Place(p int) (connectTo int, opened []int) {
	_, dF := nearestFacility(f.space, f.facilities, p)

	// The dual a rises until Constraint (1) (a = dF) or Constraint (3)
	// for some candidate m (a = f_m − bidSum(m) + d(m, p)) becomes tight.
	// Both thresholds are constants during the rise, so we jump directly
	// to the smallest.
	bestM, bestA := -1, dF
	for _, m := range f.cands {
		need := f.fc(m) - f.bidSum(m) + f.space.Distance(m, p)
		if need < 0 {
			need = 0
		}
		if need < bestA {
			bestM, bestA = m, need
		}
	}
	a := bestA

	if bestM >= 0 {
		// Constraint (3) tight first: open at bestM (if not already) and
		// connect there.
		if !f.open[bestM] {
			f.open[bestM] = true
			f.facilities = append(f.facilities, bestM)
			opened = append(opened, bestM)
		}
		connectTo = bestM
	} else {
		// Constraint (1) tight first: connect to the nearest facility.
		connectTo, _ = nearestFacility(f.space, f.facilities, p)
	}

	// Record the frozen dual's credit for future reinvestment.
	_, dNow := nearestFacility(f.space, f.facilities, p)
	f.credits = append(f.credits, math.Min(a, dNow))
	f.points = append(f.points, p)
	return connectTo, opened
}
