package ofl

import (
	"math"
	"math/rand"

	"repro/internal/metric"
)

// Meyerson is Meyerson's randomized online facility location algorithm with
// power-of-two cost classes for non-uniform facility costs.
//
// On a demand at p it computes the budget
//
//	X(p) = min{ d(F, p), min_i { C_i + d(C_i, p) } }
//
// and, for each class i, opens the class-≤i facility nearest to p with
// probability (d(C_{i-1}, p) − d(C_i, p))/C_i, where d(C_0, p) := X(p).
// If afterwards no facility is open at all, it deterministically opens the
// facility minimizing C_i + d(C_i, p) (the pseudocode in the papers leaves
// this forced case implicit; feasibility requires it). The demand connects
// to the nearest open facility.
type Meyerson struct {
	space      metric.Space //omflp:nostate — constructor parameter; restore requires an identically constructed instance
	fc         FacilityCost //omflp:nostate — constructor parameter, ditto
	rng        *rand.Rand
	cl         classes //omflp:nostate — pure function of fc and cands, rebuilt by the constructor
	facilities []int
	open       map[int]bool
	// draws counts rng consumptions — the serializable form of the rng
	// position (see UnmarshalState in state.go).
	draws int64
}

// NewMeyerson builds the algorithm over the given candidate facility points.
func NewMeyerson(space metric.Space, fc FacilityCost, candidates []int, rng *rand.Rand) *Meyerson {
	if len(candidates) == 0 {
		panic("ofl: Meyerson needs at least one candidate point")
	}
	return &Meyerson{
		space: space,
		fc:    fc,
		rng:   rng,
		cl:    buildClasses(candidates, fc),
		open:  map[int]bool{},
	}
}

// Facilities returns the open facility points in opening order.
func (m *Meyerson) Facilities() []int { return m.facilities }

// flip draws one coin flip, counting the draw; every rng consumption goes
// through here so the position can be serialized.
func (m *Meyerson) flip() float64 {
	m.draws++
	return m.rng.Float64()
}

// Place processes a demand at p.
func (m *Meyerson) Place(p int) (connectTo int, opened []int) {
	_, dF := nearestFacility(m.space, m.facilities, p)

	// Budget X(p).
	budget := dF
	for i, ci := range m.cl.values {
		if _, d := m.cl.nearest(m.space, i, p); ci+d < budget {
			budget = ci + d
		}
	}

	// Class-wise coin flips.
	prev := budget
	for i, ci := range m.cl.values {
		pt, d := m.cl.nearest(m.space, i, p)
		improvement := prev - d
		prev = math.Min(prev, d)
		if improvement <= 0 {
			continue
		}
		prob := improvement / ci
		if prob > 1 {
			prob = 1
		}
		if m.flip() < prob {
			if !m.open[pt] {
				m.open[pt] = true
				m.facilities = append(m.facilities, pt)
				opened = append(opened, pt)
			}
		}
	}

	// Forced opening: feasibility demands at least one facility.
	if len(m.facilities) == 0 {
		bestPt, bestC := -1, math.Inf(1)
		for i, ci := range m.cl.values {
			if pt, d := m.cl.nearest(m.space, i, p); ci+d < bestC {
				bestPt, bestC = pt, ci+d
			}
		}
		m.open[bestPt] = true
		m.facilities = append(m.facilities, bestPt)
		opened = append(opened, bestPt)
	}

	connectTo, _ = nearestFacility(m.space, m.facilities, p)
	return connectTo, opened
}
