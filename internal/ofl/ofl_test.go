package ofl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metric"
)

func uniformCost(c float64) FacilityCost {
	return func(int) float64 { return c }
}

func allPoints(n int) []int {
	pts := make([]int, n)
	for i := range pts {
		pts[i] = i
	}
	return pts
}

func TestBuildClasses(t *testing.T) {
	// Costs 1, 3, 5, 8 → classes 1, 2, 4, 8.
	costs := []float64{1, 3, 5, 8}
	fc := func(m int) float64 { return costs[m] }
	cl := buildClasses(allPoints(4), fc)
	want := []float64{1, 2, 4, 8}
	if len(cl.values) != 4 {
		t.Fatalf("classes = %v", cl.values)
	}
	for i, v := range want {
		if cl.values[i] != v {
			t.Errorf("class %d = %g, want %g", i, cl.values[i], v)
		}
	}
	// Cumulative points: class i includes all cheaper classes.
	for i := range cl.points {
		if len(cl.points[i]) != i+1 {
			t.Errorf("cumulative class %d has %d points", i, len(cl.points[i]))
		}
	}
}

func TestBuildClassesRejectsBadCosts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero cost must panic")
		}
	}()
	buildClasses([]int{0}, uniformCost(0))
}

func TestMeyersonFirstDemandOpensFacility(t *testing.T) {
	space := metric.NewLine([]float64{0, 5, 10})
	rng := rand.New(rand.NewSource(1))
	m := NewMeyerson(space, uniformCost(3), allPoints(3), rng)
	connect, opened := m.Place(0)
	if len(m.Facilities()) == 0 {
		t.Fatal("no facility after first demand")
	}
	if len(opened) == 0 {
		t.Error("first demand must report an opening")
	}
	if connect != m.Facilities()[0] && len(m.Facilities()) == 1 {
		t.Errorf("connected to %d, facilities %v", connect, m.Facilities())
	}
}

func TestMeyersonColocatedDemandsOpenFewFacilities(t *testing.T) {
	// All demands at one point with expensive facilities: Meyerson should
	// open roughly one facility there, not one per demand.
	space := metric.SinglePoint()
	rng := rand.New(rand.NewSource(7))
	m := NewMeyerson(space, uniformCost(100), []int{0}, rng)
	for i := 0; i < 200; i++ {
		m.Place(0)
	}
	if got := len(m.Facilities()); got != 1 {
		t.Errorf("opened %d facilities at a single point, want 1", got)
	}
}

func TestMeyersonConnectsToNearest(t *testing.T) {
	space := metric.NewLine([]float64{0, 1, 100})
	rng := rand.New(rand.NewSource(3))
	m := NewMeyerson(space, uniformCost(0.001), allPoints(3), rng)
	m.Place(0) // opens at/near 0 (cost tiny)
	connect, _ := m.Place(1)
	// With near-zero costs a facility opens at the demand point itself.
	if d := space.Distance(1, connect); d > 1 {
		t.Errorf("connected across distance %g", d)
	}
}

func TestFotakisPDSingleDemand(t *testing.T) {
	space := metric.NewLine([]float64{0, 2})
	f := NewFotakisPD(space, uniformCost(5), allPoints(2))
	connect, opened := f.Place(0)
	if len(opened) != 1 || opened[0] != 0 {
		t.Fatalf("opened %v, want facility at point 0", opened)
	}
	if connect != 0 {
		t.Errorf("connected to %d", connect)
	}
}

func TestFotakisPDAccumulatesBids(t *testing.T) {
	// Facility cost 10 at both ends of a short segment; demands at point 0.
	// The first demand pays the whole cost; subsequent co-located demands
	// connect for free (their dual freezes at 0).
	space := metric.NewLine([]float64{0, 1})
	f := NewFotakisPD(space, uniformCost(10), allPoints(2))
	f.Place(0)
	if len(f.Facilities()) != 1 {
		t.Fatalf("facilities = %v", f.Facilities())
	}
	for i := 0; i < 5; i++ {
		connect, opened := f.Place(0)
		if len(opened) != 0 {
			t.Errorf("reopened facility: %v", opened)
		}
		if connect != 0 {
			t.Errorf("connected to %d", connect)
		}
	}
}

func TestFotakisPDOpensSecondFacilityWhenWorthwhile(t *testing.T) {
	// Two far-apart clusters: repeated demands at the far point must
	// eventually open a local facility rather than pay the long distance
	// forever.
	space := metric.NewLine([]float64{0, 100})
	f := NewFotakisPD(space, uniformCost(10), allPoints(2))
	f.Place(0) // opens at 0
	var openedSecond bool
	for i := 0; i < 5; i++ {
		_, opened := f.Place(1)
		if len(opened) > 0 {
			openedSecond = true
			break
		}
	}
	if !openedSecond {
		t.Error("never opened a facility at the far cluster")
	}
	// In fact the very first far demand should open it: its dual rises to
	// min(d(F,r)=100, f + d(m,r) = 10+0) = 10.
	if len(f.Facilities()) != 2 {
		t.Errorf("facilities = %v", f.Facilities())
	}
}

func TestFotakisPDNeverExceedsTrivialCost(t *testing.T) {
	// Sanity: on random instances, total PD cost ≤ n·(f + diameter) and
	// every demand connects to an open facility.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		space := metric.RandomLine(rng, 20, 50)
		fcost := 1 + rng.Float64()*10
		f := NewFotakisPD(space, uniformCost(fcost), allPoints(20))
		var total float64
		n := 30
		open := map[int]bool{}
		for i := 0; i < n; i++ {
			p := rng.Intn(20)
			connect, opened := f.Place(p)
			for _, o := range opened {
				open[o] = true
				total += fcost
			}
			if !open[connect] {
				t.Fatal("connected to an unopened facility")
			}
			total += space.Distance(p, connect)
		}
		if limit := float64(n) * (fcost + 50); total > limit {
			t.Errorf("trial %d: cost %g exceeds trivial bound %g", trial, total, limit)
		}
	}
}

// Property: both algorithms always return an open facility for connection,
// and facility lists never contain duplicates.
func TestQuickAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		space := metric.RandomEuclidean(rng, 10, 2, 20)
		costs := make([]float64, 10)
		for i := range costs {
			costs[i] = 0.5 + rng.Float64()*8
		}
		fc := func(m int) float64 { return costs[m] }
		algs := []Algorithm{
			NewMeyerson(space, fc, allPoints(10), rng),
			NewFotakisPD(space, fc, allPoints(10)),
		}
		for _, alg := range algs {
			open := map[int]bool{}
			for i := 0; i < 25; i++ {
				p := rng.Intn(10)
				connect, opened := alg.Place(p)
				for _, o := range opened {
					open[o] = true
				}
				if !open[connect] {
					return false
				}
			}
			seen := map[int]bool{}
			for _, m := range alg.Facilities() {
				if seen[m] {
					return false
				}
				seen[m] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Meyerson's expected cost on a co-located batch is within a
// reasonable factor of f + 0 (OPT). This is a smoke-level statistical check,
// not a proof: with n=64 demands at one point and f=8, mean total cost over
// many runs must be below ~6·OPT (theory gives O(log n/log log n) ≈ 3).
func TestMeyersonStatisticalCompetitiveness(t *testing.T) {
	space := metric.SinglePoint()
	const f = 8.0
	var total float64
	const runs = 300
	for s := int64(0); s < runs; s++ {
		rng := rand.New(rand.NewSource(s))
		m := NewMeyerson(space, uniformCost(f), []int{0}, rng)
		var cost float64
		for i := 0; i < 64; i++ {
			_, opened := m.Place(0)
			cost += f * float64(len(opened))
		}
		total += cost
	}
	avg := total / runs
	if avg > 6*f {
		t.Errorf("mean Meyerson cost %g vs OPT %g: ratio %g too high", avg, f, avg/f)
	}
	if avg < f {
		t.Errorf("mean cost %g below OPT %g: impossible", avg, f)
	}
}

func TestMeyersonNonUniformPrefersCheapPoints(t *testing.T) {
	// Expensive facility at the demand point, cheap one nearby: over many
	// runs, openings at the cheap point must dominate.
	space := metric.NewLine([]float64{0, 1})
	costs := []float64{64, 1}
	fc := func(m int) float64 { return costs[m] }
	cheap, expensive := 0, 0
	for s := int64(0); s < 200; s++ {
		rng := rand.New(rand.NewSource(s))
		m := NewMeyerson(space, fc, allPoints(2), rng)
		for i := 0; i < 10; i++ {
			m.Place(0)
		}
		for _, pt := range m.Facilities() {
			if pt == 1 {
				cheap++
			} else {
				expensive++
			}
		}
	}
	if cheap <= expensive {
		t.Errorf("cheap openings %d vs expensive %d: class machinery broken", cheap, expensive)
	}
}

func TestNearestFacilityEmpty(t *testing.T) {
	space := metric.SinglePoint()
	pt, d := nearestFacility(space, nil, 0)
	if pt != -1 || !math.IsInf(d, 1) {
		t.Errorf("nearestFacility(empty) = %d, %g", pt, d)
	}
}

func BenchmarkFotakisPDPlace(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	space := metric.RandomEuclidean(rng, 100, 2, 100)
	f := NewFotakisPD(space, uniformCost(5), allPoints(100))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Place(i % 100)
	}
}

func BenchmarkMeyersonPlace(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	space := metric.RandomEuclidean(rng, 100, 2, 100)
	m := NewMeyerson(space, uniformCost(5), allPoints(100), rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Place(i % 100)
	}
}
