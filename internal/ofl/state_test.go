package ofl

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/metric"
)

// oflRig is a deterministic demand stream over a random space for the
// state round-trip tests.
type oflRig struct {
	space   metric.Space
	cands   []int
	fc      FacilityCost
	demands []int
}

func newOflRig(seed int64, n int) *oflRig {
	rng := rand.New(rand.NewSource(seed))
	space := metric.RandomEuclidean(rng, 8+rng.Intn(10), 2, 50)
	cands := make([]int, space.Len())
	costs := make([]float64, space.Len())
	for i := range cands {
		cands[i] = i
		costs[i] = 0.5 + rng.Float64()*8
	}
	rig := &oflRig{space: space, cands: cands, fc: func(m int) float64 { return costs[m] }}
	for i := 0; i < n; i++ {
		rig.demands = append(rig.demands, rng.Intn(space.Len()))
	}
	return rig
}

// driveBoth serves the suffix through both instances and asserts identical
// placements throughout.
func driveBoth(t *testing.T, rig *oflRig, cut int, a, b Algorithm) {
	t.Helper()
	if !reflect.DeepEqual(a.Facilities(), b.Facilities()) {
		t.Fatalf("cut %d: facilities differ right after restore", cut)
	}
	for i, p := range rig.demands[cut:] {
		ca, oa := a.Place(p)
		cb, ob := b.Place(p)
		if ca != cb || !reflect.DeepEqual(oa, ob) {
			t.Fatalf("cut %d: placement diverged at suffix demand %d: (%d,%v) vs (%d,%v)", cut, i, ca, oa, cb, ob)
		}
	}
}

func TestFotakisPDStateSuffixIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rig := newOflRig(seed, 40)
		for _, cut := range []int{0, 1, 20, 40} {
			orig := NewFotakisPD(rig.space, rig.fc, rig.cands)
			for _, p := range rig.demands[:cut] {
				orig.Place(p)
			}
			blob, err := orig.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			restored := NewFotakisPD(rig.space, rig.fc, rig.cands)
			if err := restored.UnmarshalState(blob); err != nil {
				t.Fatal(err)
			}
			driveBoth(t, rig, cut, orig, restored)
		}
	}
}

func TestMeyersonStateSuffixIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rig := newOflRig(seed, 40)
		for _, cut := range []int{0, 1, 20, 40} {
			orig := NewMeyerson(rig.space, rig.fc, rig.cands, rand.New(rand.NewSource(seed*7)))
			for _, p := range rig.demands[:cut] {
				orig.Place(p)
			}
			blob, err := orig.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			restored := NewMeyerson(rig.space, rig.fc, rig.cands, rand.New(rand.NewSource(seed*7)))
			if err := restored.UnmarshalState(blob); err != nil {
				t.Fatal(err)
			}
			driveBoth(t, rig, cut, orig, restored)
		}
	}
}

func TestOflStateRestoreErrors(t *testing.T) {
	rig := newOflRig(2, 10)
	f := NewFotakisPD(rig.space, rig.fc, rig.cands)
	for _, p := range rig.demands {
		f.Place(p)
	}
	blob, err := f.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.UnmarshalState(blob); err == nil {
		t.Error("FotakisPD restore onto a non-fresh instance succeeded")
	}
	if err := NewFotakisPD(rig.space, rig.fc, rig.cands[:2]).UnmarshalState(blob); err == nil {
		t.Error("FotakisPD restore under a different candidate set succeeded")
	}
	m := NewMeyerson(rig.space, rig.fc, rig.cands, rand.New(rand.NewSource(1)))
	m.Place(rig.demands[0])
	mb, err := m.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.UnmarshalState(mb); err == nil {
		t.Error("Meyerson restore onto a non-fresh instance succeeded")
	}
	fresh := NewMeyerson(rig.space, rig.fc, rig.cands, rand.New(rand.NewSource(1)))
	if err := fresh.UnmarshalState([]byte("nope")); err == nil {
		t.Error("Meyerson restore of corrupt bytes succeeded")
	}
}
