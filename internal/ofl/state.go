package ofl

import (
	"encoding/json"
	"fmt"
)

// State serialization for the single-commodity substrates, mirroring the
// online.StateCodec contract (the interface lives in internal/online; these
// implementations satisfy it structurally so ofl keeps its minimal
// dependency surface): MarshalState captures everything future Place calls
// depend on, and UnmarshalState must run on a freshly constructed instance
// with the same space, facility costs, candidates and — for Meyerson — the
// same rng seed.

// oflStateSchema versions the layouts below.
const oflStateSchema = 1

// fotakisState is FotakisPD's serialized state: open facilities in opening
// order plus the credit ledger (the open set is derived).
type fotakisState struct {
	Schema     int       `json:"schema"`
	Candidates int       `json:"candidates"`
	Facilities []int     `json:"facilities"`
	Credits    []float64 `json:"credits"`
	Points     []int     `json:"points"`
}

// MarshalState serializes the algorithm's complete serving state.
func (f *FotakisPD) MarshalState() ([]byte, error) {
	return json.Marshal(&fotakisState{
		Schema:     oflStateSchema,
		Candidates: len(f.cands),
		Facilities: f.facilities,
		Credits:    f.credits,
		Points:     f.points,
	})
}

// UnmarshalState restores state marshaled from an identically constructed
// instance.
func (f *FotakisPD) UnmarshalState(data []byte) error {
	if len(f.facilities) != 0 || len(f.credits) != 0 {
		return fmt.Errorf("ofl: FotakisPD state restore needs a fresh instance")
	}
	var st fotakisState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("ofl: FotakisPD state: %v", err)
	}
	if st.Schema != oflStateSchema {
		return fmt.Errorf("ofl: FotakisPD state schema %d, want %d", st.Schema, oflStateSchema)
	}
	if st.Candidates != len(f.cands) {
		return fmt.Errorf("ofl: FotakisPD state has %d candidates, want %d", st.Candidates, len(f.cands))
	}
	if len(st.Credits) != len(st.Points) {
		return fmt.Errorf("ofl: FotakisPD state has %d credits for %d points", len(st.Credits), len(st.Points))
	}
	f.facilities = st.Facilities
	f.credits = st.Credits
	f.points = st.Points
	for _, m := range st.Facilities {
		f.open[m] = true
	}
	return nil
}

// meyersonState is Meyerson's serialized state. The rng position is the
// draw count: a fresh instance with the same seed fast-forwards to resume
// the identical random stream.
type meyersonState struct {
	Schema     int   `json:"schema"`
	Facilities []int `json:"facilities"`
	Draws      int64 `json:"draws"`
}

// MarshalState serializes the algorithm's complete serving state.
func (m *Meyerson) MarshalState() ([]byte, error) {
	return json.Marshal(&meyersonState{
		Schema:     oflStateSchema,
		Facilities: m.facilities,
		Draws:      m.draws,
	})
}

// UnmarshalState restores state marshaled from an identically constructed
// (and identically seeded) instance.
func (m *Meyerson) UnmarshalState(data []byte) error {
	if len(m.facilities) != 0 || m.draws != 0 {
		return fmt.Errorf("ofl: Meyerson state restore needs a fresh instance")
	}
	var st meyersonState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("ofl: Meyerson state: %v", err)
	}
	if st.Schema != oflStateSchema {
		return fmt.Errorf("ofl: Meyerson state schema %d, want %d", st.Schema, oflStateSchema)
	}
	m.facilities = st.Facilities
	for _, pt := range st.Facilities {
		m.open[pt] = true
	}
	for i := int64(0); i < st.Draws; i++ {
		m.rng.Float64()
	}
	m.draws = st.Draws
	return nil
}
