// Package report renders experiment results as aligned ASCII tables, CSV
// files and terminal line charts — the output layer of the reproduction
// harness.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Note    string // provenance: what paper artifact this reproduces
	Columns []string
	Rows    [][]string
}

// NewTable creates an empty table.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are rendered with %v, floats compactly.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000 || (math.Abs(v) < 0.001 && v != 0):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string (for tests and logs).
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// WriteCSV writes the table as CSV (header + rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is one named line of (x, y) points for charts.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders one or more series as an ASCII scatter/line chart of the
// given size. Each series uses its own marker rune.
func Chart(w io.Writer, title string, width, height int, series ...Series) error {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("report: chart has no data")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	markers := []rune{'*', '+', 'o', 'x', '#', '@'}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			cx := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = mk
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "-- %s --\n", title)
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", maxY, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  [%c] %s\n", "", markers[si%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
