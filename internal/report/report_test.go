package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "alg", "ratio")
	tab.Note = "reproduces nothing"
	tab.AddRow("pd", 1.5)
	tab.AddRow("rand", 2.0)
	out := tab.String()
	for _, want := range []string{"== demo ==", "alg", "ratio", "pd", "1.5", "rand", "2", "reproduces nothing"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("", "a", "long-column")
	tab.AddRow("xxxxxxxx", 1)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Header and data rows must align on the second column.
	hdrIdx := strings.Index(lines[0], "long-column")
	dataIdx := strings.Index(lines[2], "1")
	if hdrIdx != dataIdx {
		t.Errorf("columns misaligned: %d vs %d\n%s", hdrIdx, dataIdx, out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:            "1",
		1.5:          "1.5",
		12345678:     "12345678",
		0.00001:      "1.000e-05",
		1234.5:       "1.234e+03",
		math.Inf(1):  "inf",
		math.Inf(-1): "-inf",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%g) = %q, want %q", in, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "nan" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	tab := NewTable("t", "x", "y")
	tab.AddRow(1, 2.5)
	tab.AddRow("a,b", "q\"q")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "x,y\n") {
		t.Errorf("csv header wrong: %q", out)
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Errorf("csv quoting broken: %q", out)
	}
}

func TestChart(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, "curve", 40, 10,
		Series{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		Series{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"-- curve --", "[*] up", "[+] down", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Chart(&buf, "empty", 20, 8); err == nil {
		t.Error("empty chart accepted")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	var buf bytes.Buffer
	// Single point: ranges collapse; must not panic or divide by zero.
	err := Chart(&buf, "dot", 20, 8, Series{Name: "p", X: []float64{1}, Y: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("single point not plotted")
	}
}
