package online

import (
	"math"
	"testing"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// stubAlg opens one facility covering everything on the first request and
// connects every request to it — a minimal feasible algorithm.
type stubAlg struct {
	u    int
	sol  *instance.Solution
	drop bool // if true, "forget" to assign requests (infeasible)
}

func (s *stubAlg) Name() string { return "stub" }

func (s *stubAlg) Serve(r instance.Request) {
	if len(s.sol.Facilities) == 0 {
		s.sol.Facilities = append(s.sol.Facilities, instance.Facility{
			Point:  r.Point,
			Config: commodity.Full(s.u),
		})
	}
	if s.drop {
		s.sol.Assign = append(s.sol.Assign, nil)
		return
	}
	s.sol.Assign = append(s.sol.Assign, []int{0})
}

func (s *stubAlg) Solution() *instance.Solution { return s.sol }

func testInstance() *instance.Instance {
	return &instance.Instance{
		Space: metric.NewLine([]float64{0, 3}),
		Costs: cost.Linear(2, 1),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0)},
			{Point: 1, Demands: commodity.New(1)},
		},
	}
}

func TestRunHappyPath(t *testing.T) {
	f := Factory{Name: "stub", New: func(space metric.Space, costs cost.Model, seed int64) Algorithm {
		return &stubAlg{u: costs.Universe(), sol: &instance.Solution{}}
	}}
	in := testInstance()
	sol, c, err := Run(f, in, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	// One facility {0,1} at point 0 (cost 2) + distance 3 for request 1.
	if want := 5.0; math.Abs(c-want) > 1e-9 {
		t.Errorf("cost = %g, want %g", c, want)
	}
	if len(sol.Facilities) != 1 {
		t.Errorf("facilities = %d", len(sol.Facilities))
	}
}

func TestRunDetectsInfeasibility(t *testing.T) {
	f := Factory{Name: "stub-broken", New: func(space metric.Space, costs cost.Model, seed int64) Algorithm {
		return &stubAlg{u: costs.Universe(), sol: &instance.Solution{}, drop: true}
	}}
	if _, _, err := Run(f, testInstance(), 1, true); err == nil {
		t.Error("infeasible solution passed verification")
	}
	// Without checking, the broken run is reported as-is.
	if _, _, err := Run(f, testInstance(), 1, false); err != nil {
		t.Errorf("unchecked run errored: %v", err)
	}
}

func TestRunSeedPropagation(t *testing.T) {
	var seen []int64
	f := Factory{Name: "seed-spy", New: func(space metric.Space, costs cost.Model, seed int64) Algorithm {
		seen = append(seen, seed)
		return &stubAlg{u: costs.Universe(), sol: &instance.Solution{}}
	}}
	if _, _, err := Run(f, testInstance(), 42, true); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != 42 {
		t.Errorf("seeds seen: %v", seen)
	}
}
