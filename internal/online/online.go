// Package online defines the interface every online OMFLP algorithm in this
// repository implements, plus a replay runner. Keeping the interface in its
// own package lets the core algorithms, the baselines, the lower-bound games
// and the experiment harness depend on it without cycles.
package online

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
)

// Algorithm is an online OMFLP algorithm. Serve must process requests in
// arrival order; decisions are irrevocable — facilities may only be added
// and assignments of earlier requests may not change (Verify checks the
// latter indirectly through solution feasibility at every prefix).
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Serve irrevocably processes the next request.
	Serve(r instance.Request)
	// Solution returns the current solution over all requests served so
	// far. Implementations may return an internal snapshot; callers must
	// not mutate it.
	Solution() *instance.Solution
}

// StateCodec is optionally implemented by algorithms whose complete serving
// state can be serialized and restored without replaying the arrival
// history. The contract:
//
//   - MarshalState captures everything future Serve calls depend on (duals,
//     credits, budgets, open facilities, assignments, rng position, ...) so
//     that an instance restored from the bytes serves any suffix of arrivals
//     identically — bit-for-bit — to the original instance.
//   - UnmarshalState must be called on a freshly constructed instance built
//     with the same constructor parameters (space, cost model, options and —
//     for randomized algorithms — the same seed) as the instance that was
//     marshaled. Implementations validate what they can (universe size,
//     candidate count, state schema version) but cannot detect every
//     mismatch; restoring under different parameters is undefined.
//
// The streaming engine's checkpoint format v2 builds on this interface: a
// tenant's checkpoint is its marshaled state plus the short arrival segment
// served since, so a restore replays O(segment) arrivals instead of the full
// history.
type StateCodec interface {
	MarshalState() ([]byte, error)
	UnmarshalState(data []byte) error
}

// Factory constructs a fresh algorithm instance for the given space and cost
// model. Randomized algorithms must derive all randomness from the seed so
// experiment repetitions are reproducible.
type Factory struct {
	Name string
	New  func(space metric.Space, costs cost.Model, seed int64) Algorithm
}

// Run replays the instance's request sequence through a fresh algorithm and
// returns the final solution and its cost. If check is true, the final
// solution is verified for feasibility and an error returned on violation.
func Run(f Factory, in *instance.Instance, seed int64, check bool) (*instance.Solution, float64, error) {
	alg := f.New(in.Space, in.Costs, seed)
	for _, r := range in.Requests {
		alg.Serve(r)
	}
	sol := alg.Solution()
	if check {
		if err := sol.Verify(in); err != nil {
			return nil, 0, fmt.Errorf("online: %s produced infeasible solution: %v", f.Name, err)
		}
	}
	return sol, sol.Cost(in), nil
}
