package cost

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/commodity"
)

func TestNames(t *testing.T) {
	models := map[Model]string{
		CeilSqrt(4):       "sqrt",
		PowerLaw(4, 1, 1): "g_x",
		Linear(4, 2):      "linear",
		Constant(4, 3):    "const",
		NewPointScaled(Linear(4, 1), []float64{1}): "scaled",
	}
	for m, want := range models {
		if !strings.Contains(m.Name(), want) {
			t.Errorf("Name() = %q, want substring %q", m.Name(), want)
		}
	}
	tab, err := NewTable([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "table" {
		t.Errorf("table Name = %q", tab.Name())
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"size-cost-zero-universe": func() { NewSizeCost(0, func(int) float64 { return 1 }, "x") },
		"linear-zero":             func() { Linear(3, 0) },
		"constant-zero":           func() { Constant(3, 0) },
		"scaled-zero-factor":      func() { NewPointScaled(Linear(3, 1), []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBySizeZero(t *testing.T) {
	if got := CeilSqrt(9).BySize(0); got != 0 {
		t.Errorf("BySize(0) = %g", got)
	}
	if got := Linear(3, 2).Cost(0, commodity.Set{}); got != 0 {
		t.Errorf("Cost(empty) = %g", got)
	}
}

func TestCheckCondition1SamplingRejectsViolator(t *testing.T) {
	// A violating model at a large universe must be caught by sampling.
	bad := NewSizeCost(40, func(k int) float64 {
		if k < 40 {
			return 1
		}
		return 1000 // per-commodity cost of S far above singletons
	}, "bad")
	rng := newTestRand()
	if err := CheckCondition1(bad, []int{0}, 8, 2000, rng); err == nil {
		t.Error("sampled Condition 1 check missed a blatant violator")
	}
}

func TestCheckSubadditiveSamplingRejectsViolator(t *testing.T) {
	bad := NewSizeCost(40, func(k int) float64 { return float64(k * k) }, "square")
	rng := newTestRand()
	if err := CheckSubadditive(bad, []int{0}, 8, 2000, rng); err == nil {
		t.Error("sampled subadditivity check missed a superadditive model")
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(77)) }
