package cost

import (
	"fmt"
	"math/rand"

	"repro/internal/commodity"
)

const validateEps = 1e-9

// CheckSubadditive verifies f_m^{a∪b} ≤ f_m^a + f_m^b at the given points.
// For universes up to maxExhaustive it checks every pair of subsets whose
// union it can form; for larger universes it samples trials random pairs
// using rng (which must then be non-nil). It returns the first violation.
func CheckSubadditive(m Model, points []int, maxExhaustive, trials int, rng *rand.Rand) error {
	u := m.Universe()
	if u <= maxExhaustive {
		subsets := commodity.AllSubsets(u)
		for _, pt := range points {
			for _, a := range subsets {
				for _, b := range subsets {
					if err := subadditiveAt(m, pt, a, b); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if rng == nil {
		return fmt.Errorf("cost: sampling subadditivity check needs an rng")
	}
	for t := 0; t < trials; t++ {
		pt := points[rng.Intn(len(points))]
		a := randomNonEmpty(rng, u)
		b := randomNonEmpty(rng, u)
		if err := subadditiveAt(m, pt, a, b); err != nil {
			return err
		}
	}
	return nil
}

func subadditiveAt(m Model, pt int, a, b commodity.Set) error {
	un := a.Union(b)
	fu := m.Cost(pt, un)
	fa := m.Cost(pt, a)
	fb := m.Cost(pt, b)
	if fu > fa+fb+validateEps*(1+fa+fb) {
		return fmt.Errorf("cost: subadditivity violated at point %d: f(%v)=%g > f(%v)+f(%v)=%g",
			pt, un, fu, a, b, fa+fb)
	}
	return nil
}

// CheckCondition1 verifies the paper's Condition 1,
// f_m^σ/|σ| ≥ f_m^S/|S|, at the given points. Exhaustive for universes up to
// maxExhaustive, sampled otherwise (rng required).
func CheckCondition1(m Model, points []int, maxExhaustive, trials int, rng *rand.Rand) error {
	u := m.Universe()
	full := commodity.Full(u)
	check := func(pt int, sigma commodity.Set) error {
		k := sigma.Len()
		if k == 0 {
			return nil
		}
		per := m.Cost(pt, sigma) / float64(k)
		perFull := m.Cost(pt, full) / float64(u)
		if per+validateEps*(1+perFull) < perFull {
			return fmt.Errorf("cost: Condition 1 violated at point %d: f(%v)/%d = %g < f(S)/|S| = %g",
				pt, sigma, k, per, perFull)
		}
		return nil
	}
	if u <= maxExhaustive {
		for _, pt := range points {
			for _, sigma := range commodity.AllSubsets(u) {
				if err := check(pt, sigma); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if rng == nil {
		return fmt.Errorf("cost: sampling Condition 1 check needs an rng")
	}
	for t := 0; t < trials; t++ {
		pt := points[rng.Intn(len(points))]
		if err := check(pt, randomNonEmpty(rng, u)); err != nil {
			return err
		}
	}
	return nil
}

// CheckMonotone verifies f_m^a ≤ f_m^b for a ⊆ b at the given points — not
// assumed by the paper, but a useful sanity property of sensible models.
// Exhaustive for small universes, sampled otherwise.
func CheckMonotone(m Model, points []int, maxExhaustive, trials int, rng *rand.Rand) error {
	u := m.Universe()
	check := func(pt int, a, b commodity.Set) error {
		if !a.SubsetOf(b) {
			return nil
		}
		fa, fb := m.Cost(pt, a), m.Cost(pt, b)
		if fa > fb+validateEps*(1+fb) {
			return fmt.Errorf("cost: monotonicity violated at point %d: f(%v)=%g > f(%v)=%g",
				pt, a, fa, b, fb)
		}
		return nil
	}
	if u <= maxExhaustive {
		subsets := commodity.AllSubsets(u)
		for _, pt := range points {
			for _, a := range subsets {
				for _, b := range subsets {
					if err := check(pt, a, b); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if rng == nil {
		return fmt.Errorf("cost: sampling monotonicity check needs an rng")
	}
	for t := 0; t < trials; t++ {
		pt := points[rng.Intn(len(points))]
		b := randomNonEmpty(rng, u)
		a := commodity.RandomSubsetOf(rng, b, 1+rng.Intn(b.Len()))
		if err := check(pt, a, b); err != nil {
			return err
		}
	}
	return nil
}

func randomNonEmpty(rng *rand.Rand, u int) commodity.Set {
	return commodity.RandomSubset(rng, u, 1+rng.Intn(u))
}
