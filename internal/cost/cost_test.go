package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/commodity"
)

var testPoints = []int{0, 1, 2}

func TestCeilSqrtValues(t *testing.T) {
	// |S| = 16, √|S| = 4: g(k) = ⌈k/4⌉.
	g := CeilSqrt(16)
	want := map[int]float64{1: 1, 2: 1, 4: 1, 5: 2, 8: 2, 9: 3, 16: 4}
	for k, w := range want {
		if got := g.BySize(k); got != w {
			t.Errorf("g(%d) = %g, want %g", k, got, w)
		}
	}
	if got := g.Cost(0, commodity.Set{}); got != 0 {
		t.Errorf("empty config cost = %g, want 0", got)
	}
	// OPT in the Theorem 2 game: one facility covering √|S| commodities
	// costs exactly 1.
	if got := g.BySize(4); got != 1 {
		t.Errorf("g(sqrt(S)) = %g, want 1", got)
	}
}

func TestPowerLawEndpoints(t *testing.T) {
	u := 9
	// x = 0: constant 1 for all non-empty sizes.
	g0 := PowerLaw(u, 0, 1)
	if g0.BySize(1) != 1 || g0.BySize(9) != 1 {
		t.Error("x=0 power law is not constant")
	}
	// x = 2: linear.
	g2 := PowerLaw(u, 2, 1)
	if g2.BySize(3) != 3 || g2.BySize(9) != 9 {
		t.Error("x=2 power law is not linear")
	}
	// x = 1: square root.
	g1 := PowerLaw(u, 1, 1)
	if math.Abs(g1.BySize(9)-3) > 1e-12 {
		t.Errorf("x=1 g(9) = %g, want 3", g1.BySize(9))
	}
	// Scale multiplies through.
	gs := PowerLaw(u, 1, 2.5)
	if math.Abs(gs.BySize(4)-5) > 1e-12 {
		t.Errorf("scaled g(4) = %g, want 5", gs.BySize(4))
	}
}

func TestPowerLawPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { PowerLaw(4, -0.1, 1) },
		func() { PowerLaw(4, 2.1, 1) },
		func() { PowerLaw(4, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLinearAndConstant(t *testing.T) {
	l := Linear(5, 2)
	if l.BySize(3) != 6 {
		t.Errorf("linear(3) = %g", l.BySize(3))
	}
	c := Constant(5, 7)
	if c.BySize(1) != 7 || c.BySize(5) != 7 {
		t.Error("constant model not constant")
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable([]float64{0, 1, 1.5}); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	if _, err := NewTable([]float64{1, 2}); err == nil {
		t.Error("table with nonzero size-0 entry accepted")
	}
	if _, err := NewTable([]float64{0, -1}); err == nil {
		t.Error("table with negative entry accepted")
	}
	if _, err := NewTable([]float64{0}); err == nil {
		t.Error("empty table accepted")
	}
	tab, err := NewTable([]float64{0, 1, 1.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Cost(0, commodity.New(0, 2)); got != 1.5 {
		t.Errorf("table cost = %g", got)
	}
	if tab.Universe() != 3 {
		t.Errorf("table universe = %d", tab.Universe())
	}
}

func TestPointScaled(t *testing.T) {
	base := Linear(4, 1)
	ps := NewPointScaled(base, []float64{1, 2, 0.5})
	if got := ps.Cost(1, commodity.New(0, 1)); got != 4 {
		t.Errorf("scaled cost = %g, want 4", got)
	}
	if got := ps.Cost(2, commodity.New(0)); got != 0.5 {
		t.Errorf("scaled cost = %g, want 0.5", got)
	}
	if ps.Universe() != 4 {
		t.Errorf("universe = %d", ps.Universe())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range point must panic")
		}
	}()
	ps.Cost(5, commodity.New(0))
}

func TestPaperModelsSatisfyAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	models := []Model{
		CeilSqrt(4),
		PowerLaw(6, 0, 1),
		PowerLaw(6, 0.5, 1),
		PowerLaw(6, 1, 1),
		PowerLaw(6, 1.7, 2),
		PowerLaw(6, 2, 1),
		Linear(6, 3),
		Constant(6, 5),
		NewPointScaled(PowerLaw(6, 1, 1), []float64{1, 2.5, 0.25}),
	}
	for _, m := range models {
		if err := CheckSubadditive(m, testPoints, 6, 0, nil); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
		if err := CheckCondition1(m, testPoints, 6, 0, nil); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
		if err := CheckMonotone(m, testPoints, 6, 0, nil); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
	// The paper's Theorem 2 model at a perfect-square universe.
	if err := CheckCondition1(CeilSqrt(9), []int{0}, 9, 0, nil); err != nil {
		t.Errorf("CeilSqrt(9): %v", err)
	}
	// Large universe exercises the sampling paths.
	big := CeilSqrt(100)
	if err := CheckSubadditive(big, testPoints, 8, 500, rng); err != nil {
		t.Errorf("sampled subadditivity: %v", err)
	}
	if err := CheckCondition1(big, testPoints, 8, 500, rng); err != nil {
		t.Errorf("sampled Condition 1: %v", err)
	}
	if err := CheckMonotone(big, testPoints, 8, 500, rng); err != nil {
		t.Errorf("sampled monotonicity: %v", err)
	}
}

func TestValidatorsDetectViolations(t *testing.T) {
	// Superadditive model: f(k) = k² violates subadditivity (1+1 < 4)
	// and Condition 1 (per-commodity cost is maximal at S, not minimal).
	super := NewSizeCost(4, func(k int) float64 { return float64(k * k) }, "square")
	if err := CheckSubadditive(super, testPoints, 4, 0, nil); err == nil {
		t.Error("subadditivity check passed a superadditive model")
	}
	if err := CheckCondition1(super, testPoints, 4, 0, nil); err == nil {
		t.Error("Condition 1 check passed the square model")
	}
	// Concave-enough model violates Condition 1: per-commodity cost of S
	// exceeds that of singletons... use f(k)=1 for k<4, f(4)=8.
	bad := NewSizeCost(4, func(k int) float64 {
		if k < 4 {
			return 1
		}
		return 8
	}, "cond1-violator")
	if err := CheckCondition1(bad, testPoints, 4, 0, nil); err == nil {
		t.Error("Condition 1 check passed a violating model")
	}
	// Non-monotone model.
	nm := NewSizeCost(3, func(k int) float64 { return float64(4 - k) }, "shrinking")
	if err := CheckMonotone(nm, testPoints, 3, 0, nil); err == nil {
		t.Error("monotonicity check passed a shrinking model")
	}
	// Sampling paths without an rng must fail loudly.
	if err := CheckSubadditive(CeilSqrt(64), testPoints, 8, 10, nil); err == nil {
		t.Error("sampling check without rng must error")
	}
}

// Property: every class-C power law is subadditive and satisfies Condition 1
// for arbitrary x ∈ [0,2] (checked on a small universe exhaustively).
func TestQuickPowerLawClassC(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 2)
		if math.IsNaN(x) {
			return true
		}
		m := PowerLaw(6, x, 1)
		return CheckSubadditive(m, []int{0}, 6, 0, nil) == nil &&
			CheckCondition1(m, []int{0}, 6, 0, nil) == nil
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: CeilSqrt is always subadditive, and satisfies Condition 1 for
// perfect-square universes (the paper assumes √|S| ∈ N).
func TestQuickCeilSqrtAssumptions(t *testing.T) {
	f := func(raw uint8) bool {
		u := 1 + int(raw)%12
		m := CeilSqrt(u)
		if CheckSubadditive(m, []int{0}, 12, 0, nil) != nil {
			return false
		}
		root := int(math.Sqrt(float64(u)))
		if root*root == u {
			return CheckCondition1(m, []int{0}, 12, 0, nil) == nil
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// CeilSqrt on a non-square universe is a documented Condition 1 exception;
// pin that behaviour so the docs stay honest.
func TestCeilSqrtNonSquareViolatesCondition1(t *testing.T) {
	if err := CheckCondition1(CeilSqrt(7), []int{0}, 8, 0, nil); err == nil {
		t.Error("CeilSqrt(7) unexpectedly satisfies Condition 1; update docs")
	}
}

func TestRandomFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := RandomFactors(rng, 20, 0.5, 2)
	if len(f) != 20 {
		t.Fatalf("len = %d", len(f))
	}
	for _, v := range f {
		if v < 0.5 || v > 2 {
			t.Errorf("factor %g out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid range must panic")
		}
	}()
	RandomFactors(rng, 3, 0, 1)
}

func BenchmarkPowerLawCost(b *testing.B) {
	m := PowerLaw(64, 1, 1)
	s := commodity.Full(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Cost(0, s)
	}
}
