// Package cost models the facility construction cost f_m^σ of the OMFLP:
// the cost of opening a facility at point m offering commodity set σ.
//
// The paper assumes two structural properties, both checkable here:
//
//   - Subadditivity: f_m^{a∪b} ≤ f_m^a + f_m^b (Section 1.1; always safe to
//     assume because violating configurations would never be built).
//   - Condition 1:   f_m^σ/|σ| ≥ f_m^S/|S| — the per-commodity cost is
//     minimal for the full configuration S.
//
// Most models in the paper depend only on |σ| (the lower-bound construction
// g(|σ|) = ⌈|σ|/√|S|⌉ and the class C = {g_x(|σ|) = |σ|^{x/2}, x ∈ [0,2]} of
// Theorem 18); SizeCost captures those. PointScaled adds non-uniformity
// across points, which RAND-OMFLP's cost classes exist to handle.
package cost

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/commodity"
)

// Model is a construction cost function f_m^σ over a fixed universe of
// commodities S = [0, Universe()).
type Model interface {
	// Cost returns f_m^σ, the cost of opening a facility at point m with
	// configuration sigma. Implementations must return 0 for the empty
	// configuration and a positive, finite value otherwise.
	Cost(m int, sigma commodity.Set) float64
	// Universe returns |S|.
	Universe() int
	// Name identifies the model for reports.
	Name() string
}

// SizeFunc is a cost function depending only on the configuration size.
type SizeFunc func(size int) float64

// SizeCost adapts a SizeFunc into a Model: f_m^σ = g(|σ|) for every point m.
type SizeCost struct {
	U     int
	G     SizeFunc
	Label string
}

// NewSizeCost builds a uniform size-dependent cost model over universe u.
func NewSizeCost(u int, g SizeFunc, label string) *SizeCost {
	if u <= 0 {
		panic("cost: universe must be positive")
	}
	return &SizeCost{U: u, G: g, Label: label}
}

func (c *SizeCost) Universe() int { return c.U }
func (c *SizeCost) Name() string  { return c.Label }

func (c *SizeCost) Cost(m int, sigma commodity.Set) float64 {
	k := sigma.Len()
	if k == 0 {
		return 0
	}
	return c.G(k)
}

// BySize returns g(k) directly; useful for analytical baselines.
func (c *SizeCost) BySize(k int) float64 {
	if k == 0 {
		return 0
	}
	return c.G(k)
}

// CeilSqrt returns the Theorem 2 lower-bound cost function
// g(|σ|) = ⌈|σ|/√|S|⌉ (uniform across points). OPT's full cover of a √|S|
// subset costs exactly 1 under this model.
//
// Like the paper (which assumes √|S| ∈ N "to improve readability"), this
// model satisfies Condition 1 only when u is a perfect square; e.g. for
// u = 7, g(5)/5 = 2/5 < g(7)/7 = 3/7. Subadditivity holds for every u.
func CeilSqrt(u int) *SizeCost {
	sq := math.Sqrt(float64(u))
	return NewSizeCost(u, func(k int) float64 {
		return math.Ceil(float64(k) / sq)
	}, fmt.Sprintf("ceil(k/sqrt(%d))", u))
}

// PowerLaw returns the class-C cost g_x(|σ|) = scale·|σ|^{x/2} of Section 3.3
// with exponent parameter x ∈ [0, 2]: x = 0 is constant, x = 1 is the square
// root, x = 2 is linear.
func PowerLaw(u int, x, scale float64) *SizeCost {
	if x < 0 || x > 2 {
		panic("cost: PowerLaw exponent x must lie in [0,2]")
	}
	if scale <= 0 {
		panic("cost: PowerLaw scale must be positive")
	}
	return NewSizeCost(u, func(k int) float64 {
		return scale * math.Pow(float64(k), x/2)
	}, fmt.Sprintf("g_x(k)=%.3g*k^%.3g", scale, x/2))
}

// Linear returns f^σ = perCommodity·|σ|: the fully separable cost under which
// combining commodities gives OPT no advantage (x = 2 in class C).
func Linear(u int, perCommodity float64) *SizeCost {
	if perCommodity <= 0 {
		panic("cost: Linear per-commodity cost must be positive")
	}
	return NewSizeCost(u, func(k int) float64 {
		return perCommodity * float64(k)
	}, fmt.Sprintf("linear(%.3g*k)", perCommodity))
}

// Constant returns f^σ = c for every non-empty σ (x = 0 in class C):
// prediction is free, so large facilities dominate.
func Constant(u int, c float64) *SizeCost {
	if c <= 0 {
		panic("cost: Constant must be positive")
	}
	return NewSizeCost(u, func(k int) float64 { return c }, fmt.Sprintf("const(%.3g)", c))
}

// Table is a size-indexed cost table: f^σ = bySize[|σ|]. Entry 0 must be 0.
type Table struct {
	u      int
	bySize []float64
}

// NewTable builds a table cost model; bySize must have u+1 entries with
// bySize[0] == 0 and positive entries elsewhere.
func NewTable(bySize []float64) (*Table, error) {
	u := len(bySize) - 1
	if u < 1 {
		return nil, fmt.Errorf("cost: table needs at least sizes 0..1")
	}
	if bySize[0] != 0 {
		return nil, fmt.Errorf("cost: table entry for size 0 must be 0, got %g", bySize[0])
	}
	for k := 1; k <= u; k++ {
		if bySize[k] <= 0 || math.IsNaN(bySize[k]) || math.IsInf(bySize[k], 0) {
			return nil, fmt.Errorf("cost: table entry %d = %g is not positive and finite", k, bySize[k])
		}
	}
	cp := append([]float64(nil), bySize...)
	return &Table{u: u, bySize: cp}, nil
}

func (t *Table) Universe() int { return t.u }
func (t *Table) Name() string  { return "table" }

func (t *Table) Cost(m int, sigma commodity.Set) float64 {
	return t.bySize[sigma.Len()]
}

// PointScaled multiplies a base model by a per-point factor:
// f_m^σ = factor[m]·base(σ). Scaling preserves subadditivity and Condition 1
// pointwise, and creates the non-uniform facility costs that exercise the
// cost classes of RAND-OMFLP.
type PointScaled struct {
	Base   Model
	Factor []float64
}

// NewPointScaled builds a point-scaled model; all factors must be positive.
func NewPointScaled(base Model, factor []float64) *PointScaled {
	for i, f := range factor {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			panic(fmt.Sprintf("cost: factor[%d] = %g is not positive and finite", i, f))
		}
	}
	cp := append([]float64(nil), factor...)
	return &PointScaled{Base: base, Factor: cp}
}

func (p *PointScaled) Universe() int { return p.Base.Universe() }
func (p *PointScaled) Name() string  { return "scaled(" + p.Base.Name() + ")" }

func (p *PointScaled) Cost(m int, sigma commodity.Set) float64 {
	if m < 0 || m >= len(p.Factor) {
		panic(fmt.Sprintf("cost: point %d outside factor table of %d points", m, len(p.Factor)))
	}
	return p.Factor[m] * p.Base.Cost(m, sigma)
}

// RandomFactors draws point factors uniformly from [lo, hi]; a convenience
// for building PointScaled models in workloads.
func RandomFactors(rng *rand.Rand, n int, lo, hi float64) []float64 {
	if lo <= 0 || hi < lo {
		panic("cost: RandomFactors requires 0 < lo <= hi")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}
