package covering

import "math/rand"

// RandomInstance generates a valid c-ordered covering instance of n elements.
// growth ∈ [0,1] controls how aggressively earlier elements migrate into the
// monotone B sets: after each element arrives, every not-yet-absorbed earlier
// element joins B independently with probability growth.
func RandomInstance(rng *rand.Rand, n int, c, growth float64) *Instance {
	in := &Instance{C: c, B: make([][]int, n)}
	var absorbed []int
	inAbsorbed := make([]bool, n)
	for i := 0; i < n; i++ {
		in.B[i] = append([]int(nil), absorbed...)
		// After element i arrives, earlier elements may join B.
		for e := 0; e < i; e++ {
			if !inAbsorbed[e] && rng.Float64() < growth {
				inAbsorbed[e] = true
				absorbed = append(absorbed, e)
			}
		}
	}
	return in
}

// WorstCaseInstance builds the instance family that stresses the H_n bound:
// every element's B set is empty (one single block), so choice 1 covers all
// remaining elements at once while choice 2 pays c per element. The covering
// procedure must recognize that a single {n-1} ∪ A_{n-1} pick of weight c
// suffices.
func WorstCaseInstance(n int, c float64) *Instance {
	return &Instance{C: c, B: make([][]int, n)}
}

// ChainInstance builds the opposite extreme: B_i = {0..i-1} for every i
// (each element is its own block). Choice 2 costs c/i per element, summing
// to ~c·H_n — the harmonic behaviour the bound is tight against.
func ChainInstance(n int, c float64) *Instance {
	in := &Instance{C: c, B: make([][]int, n)}
	for i := 0; i < n; i++ {
		b := make([]int, i)
		for e := 0; e < i; e++ {
			b[e] = e
		}
		in.B[i] = b
	}
	return in
}
