// Package covering implements the c-ordered covering problem of Definition 9
// and the constructive covering of Lemmas 10–12, which power the dual
// feasibility analysis of PD-OMFLP (Lemmas 14 and 16).
//
// An instance over elements 0..n-1 specifies, for each element i, a set
// B_i ⊆ {0..i-1} (with A_i := {0..i-1} \ B_i implied) such that B_i ⊆ B_j
// whenever i < j. Available sets are, for every i:
//
//	{i}        with weight c/(|B_i|+1), and
//	{i} ∪ A_i  with weight c.
//
// Lemma 12 shows {0..n-1} can always be covered with weight ≤ 2c·H_n; Cover
// reproduces the constructive proof (peel the last block, take the cheaper
// of the two choices per element, remove, repeat).
package covering

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Instance is a c-ordered covering instance. B[i] lists the members of B_i
// (element indices < i) in any order.
type Instance struct {
	C float64
	B [][]int
}

// N returns the number of elements.
func (in *Instance) N() int { return len(in.B) }

// Validate checks Definition 9: B_i ⊆ {0..i-1} and B_i ⊆ B_j for i < j,
// and C > 0.
func (in *Instance) Validate() error {
	if in.C <= 0 || math.IsNaN(in.C) || math.IsInf(in.C, 0) {
		return fmt.Errorf("covering: weight parameter c = %g must be positive and finite", in.C)
	}
	prev := map[int]bool{}
	for i, bi := range in.B {
		cur := make(map[int]bool, len(bi))
		for _, e := range bi {
			if e < 0 || e >= i {
				return fmt.Errorf("covering: B_%d contains %d outside {0..%d}", i, e, i-1)
			}
			if cur[e] {
				return fmt.Errorf("covering: B_%d contains %d twice", i, e)
			}
			cur[e] = true
		}
		for e := range prev {
			if !cur[e] {
				return fmt.Errorf("covering: monotonicity violated, %d in B_%d but not B_%d", e, i-1, i)
			}
		}
		prev = cur
	}
	return nil
}

// Pick is one selected set in a covering.
type Pick struct {
	Element  int     // the element i the set is anchored at
	WithA    bool    // true: {i} ∪ A_i (weight c); false: {i} (weight c/(|B_i|+1))
	Weight   float64 // the weight actually paid
	Covers   []int   // the elements this pick covers (subset of remaining at pick time)
	BlockLen int     // size of the last block when the pick was made (diagnostics)
}

// Result is a complete covering.
type Result struct {
	Picks  []Pick
	Weight float64
}

// Covered reports whether the picks jointly cover all n elements.
func (r *Result) Covered(n int) bool {
	seen := make([]bool, n)
	for _, p := range r.Picks {
		for _, e := range p.Covers {
			if e < 0 || e >= n {
				return false
			}
			seen[e] = true
		}
	}
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}

// Bound returns the Lemma 12 guarantee 2c·H_n for the instance.
func (in *Instance) Bound() float64 {
	return 2 * in.C * stats.Harmonic(in.N())
}

// Cover runs the constructive procedure of Lemmas 10–12 and returns the
// chosen sets and total weight, guaranteed ≤ 2c·H_n. It panics if the
// instance is invalid; call Validate first for untrusted input.
func (in *Instance) Cover() *Result {
	if err := in.Validate(); err != nil {
		panic(err)
	}
	n := in.N()
	res := &Result{}
	if n == 0 {
		return res
	}

	// remaining holds original element IDs in increasing order; B sets are
	// stored by original ID and never contain removed elements (Lemma 11).
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	inB := make([]map[int]bool, n)
	for i, bi := range in.B {
		inB[i] = make(map[int]bool, len(bi))
		for _, e := range bi {
			inB[i][e] = true
		}
	}

	for len(remaining) > 0 {
		m := len(remaining)
		last := remaining[m-1]
		bLast := inB[last]
		// The last block: trailing elements whose B equals B_last. With
		// monotone B it suffices to compare sizes.
		blockStart := m - 1
		for blockStart > 0 && len(inB[remaining[blockStart-1]]) == len(bLast) {
			blockStart--
		}
		blockLen := m - blockStart
		// A_last among remaining: earlier remaining elements not in B_last.
		var aLast []int
		for _, e := range remaining[:m-1] {
			if !bLast[e] {
				aLast = append(aLast, e)
			}
		}
		copedCount := len(aLast) + 1 // elements covered by choice 1

		perElemChoice1 := in.C / float64(copedCount)
		perElemChoice2 := in.C / float64(len(bLast)+1)

		var covered []int
		if perElemChoice1 <= perElemChoice2 {
			covered = append(append([]int{}, aLast...), last)
			res.Picks = append(res.Picks, Pick{
				Element:  last,
				WithA:    true,
				Weight:   in.C,
				Covers:   covered,
				BlockLen: blockLen,
			})
			res.Weight += in.C
		} else {
			covered = append([]int{}, remaining[blockStart:]...)
			for _, e := range remaining[blockStart:] {
				w := in.C / float64(len(inB[e])+1)
				res.Picks = append(res.Picks, Pick{
					Element:  e,
					WithA:    false,
					Weight:   w,
					Covers:   []int{e},
					BlockLen: blockLen,
				})
				res.Weight += w
			}
		}

		// Remove covered elements. All of them are coped by the last
		// element, so they appear in no remaining B set (Lemma 11).
		rm := make(map[int]bool, len(covered))
		for _, e := range covered {
			rm[e] = true
		}
		next := remaining[:0]
		for _, e := range remaining {
			if !rm[e] {
				next = append(next, e)
			}
		}
		remaining = next
	}
	return res
}

// GreedyNaive covers every element with its singleton set — the strategy an
// analysis without Lemma 12 would be stuck with. Used as a comparison
// baseline in tests and the lem12 experiment.
func (in *Instance) GreedyNaive() *Result {
	res := &Result{}
	for i := 0; i < in.N(); i++ {
		w := in.C / float64(len(in.B[i])+1)
		res.Picks = append(res.Picks, Pick{Element: i, Weight: w, Covers: []int{i}})
		res.Weight += w
	}
	return res
}
