package covering

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestValidate(t *testing.T) {
	good := &Instance{C: 1, B: [][]int{{}, {0}, {0}, {0, 2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := &Instance{C: 1, B: [][]int{{}, {1}}}
	if err := bad.Validate(); err == nil {
		t.Error("B_i containing i accepted")
	}
	bad = &Instance{C: 1, B: [][]int{{}, {0}, {}}}
	if err := bad.Validate(); err == nil {
		t.Error("non-monotone B accepted")
	}
	bad = &Instance{C: 0, B: [][]int{{}}}
	if err := bad.Validate(); err == nil {
		t.Error("c = 0 accepted")
	}
	bad = &Instance{C: 1, B: [][]int{{}, {0, 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate member accepted")
	}
}

func TestCoverEmptyAndSingleton(t *testing.T) {
	empty := &Instance{C: 1}
	res := empty.Cover()
	if res.Weight != 0 || len(res.Picks) != 0 {
		t.Errorf("empty instance: %+v", res)
	}
	single := &Instance{C: 3, B: [][]int{{}}}
	res = single.Cover()
	if !res.Covered(1) {
		t.Fatal("singleton not covered")
	}
	// Both choices coincide for one element: weight 3 either way, within
	// the bound 2·3·H_1 = 6.
	if res.Weight > single.Bound() {
		t.Errorf("weight %g exceeds bound %g", res.Weight, single.Bound())
	}
}

func TestWorstCaseInstanceCoveredCheaply(t *testing.T) {
	// All B empty: one pick {n-1} ∪ A_{n-1} of weight c covers everything.
	in := WorstCaseInstance(50, 2)
	res := in.Cover()
	if !res.Covered(50) {
		t.Fatal("not covered")
	}
	if res.Weight != 2 {
		t.Errorf("weight = %g, want a single pick of weight 2", res.Weight)
	}
	if len(res.Picks) != 1 || !res.Picks[0].WithA {
		t.Errorf("picks = %+v", res.Picks)
	}
}

func TestChainInstanceHarmonic(t *testing.T) {
	// B_i = {0..i-1}: every element is its own block of size 1; choice 2
	// pays c/(i+1) for element i; choice 1 pays c covering only {i}. The
	// procedure picks the cheaper, c/(i+1), so total = c·H_n.
	n, c := 40, 3.0
	in := ChainInstance(n, c)
	res := in.Cover()
	if !res.Covered(n) {
		t.Fatal("not covered")
	}
	want := c * stats.Harmonic(n)
	if math.Abs(res.Weight-want) > 1e-9 {
		t.Errorf("weight = %g, want c·H_n = %g", res.Weight, want)
	}
	if res.Weight > in.Bound() {
		t.Errorf("weight %g exceeds bound %g", res.Weight, in.Bound())
	}
}

func TestCoverRespectsLemma12BoundOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		c := 0.5 + rng.Float64()*4
		growth := rng.Float64() * 0.5
		in := RandomInstance(rng, n, c, growth)
		if err := in.Validate(); err != nil {
			t.Fatalf("generator produced invalid instance: %v", err)
		}
		res := in.Cover()
		if !res.Covered(n) {
			t.Fatalf("trial %d: not covered", trial)
		}
		if res.Weight > in.Bound()+1e-9 {
			t.Errorf("trial %d: weight %g exceeds 2cH_n = %g (n=%d)", trial, res.Weight, in.Bound(), n)
		}
	}
}

func TestPickWeightsMatchDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := RandomInstance(rng, 25, 2, 0.3)
	res := in.Cover()
	var sum float64
	for _, p := range res.Picks {
		if p.WithA {
			if p.Weight != in.C {
				t.Errorf("choice-1 pick weight %g != c", p.Weight)
			}
		} else {
			want := in.C / float64(len(in.B[p.Element])+1)
			if math.Abs(p.Weight-want) > 1e-12 {
				t.Errorf("choice-2 pick weight %g, want %g", p.Weight, want)
			}
			if len(p.Covers) != 1 || p.Covers[0] != p.Element {
				t.Errorf("choice-2 pick covers %v", p.Covers)
			}
		}
		sum += p.Weight
	}
	if math.Abs(sum-res.Weight) > 1e-9 {
		t.Errorf("pick weights sum to %g, result says %g", sum, res.Weight)
	}
}

func TestGreedyNaive(t *testing.T) {
	in := ChainInstance(10, 1)
	res := in.GreedyNaive()
	if !res.Covered(10) {
		t.Fatal("naive not covered")
	}
	// Naive equals Cover on the chain: both pay c/(i+1) per element.
	if math.Abs(res.Weight-in.Cover().Weight) > 1e-9 {
		t.Errorf("naive %g vs cover %g on chain", res.Weight, in.Cover().Weight)
	}
	// On the worst case, naive pays c·n while Cover pays c.
	wc := WorstCaseInstance(20, 1)
	if naive := wc.GreedyNaive().Weight; naive != 20 {
		t.Errorf("naive on worst case = %g, want 20", naive)
	}
}

// Property (Lemma 12): the covering weight never exceeds 2c·H_n, and the
// covering is always complete, on arbitrary random instances.
func TestQuickLemma12(t *testing.T) {
	f := func(seed int64, rawN uint8, rawGrowth float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rawN)%80
		growth := math.Mod(math.Abs(rawGrowth), 1)
		if math.IsNaN(growth) {
			growth = 0
		}
		in := RandomInstance(rng, n, 1+rng.Float64()*3, growth)
		res := in.Cover()
		return res.Covered(n) && res.Weight <= in.Bound()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: each element is covered exactly once (the procedure removes
// covered elements, so picks never overlap).
func TestQuickCoverDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		in := RandomInstance(rng, n, 2, rng.Float64()*0.6)
		res := in.Cover()
		count := make([]int, n)
		for _, p := range res.Picks {
			for _, e := range p.Covers {
				count[e]++
			}
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCover(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := RandomInstance(rng, 500, 1, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = in.Cover()
	}
}
