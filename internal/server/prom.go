package server

import (
	"strconv"

	"repro/internal/obs"
)

// WriteMetricsProm renders one node's health report as Prometheus series.
// labels (e.g. node="addr" from the cluster router) are appended to every
// series, so the router can emit many nodes' reports into one exposition
// without collisions; TYPE/HELP headers dedupe inside the PromWriter.
func WriteMetricsProm(p *obs.PromWriter, m *Metrics, labels ...obs.PromLabel) {
	lbl := func(extra ...obs.PromLabel) []obs.PromLabel {
		return append(append([]obs.PromLabel{}, labels...), extra...)
	}
	p.Gauge("omflp_tenants", "Tenants hosted.", float64(m.Tenants), labels...)
	p.Gauge("omflp_shards", "Serving goroutines.", float64(m.Shards), labels...)
	p.Counter("omflp_served_total", "Arrivals served since start.", float64(m.Served), labels...)
	p.Gauge("omflp_uptime_seconds", "Seconds since engine start.", m.UptimeSeconds, labels...)
	p.Gauge("omflp_queue_depth", "Arrivals admitted but not yet served.", float64(m.QueueDepth), labels...)
	p.Gauge("omflp_arrivals_per_sec", "Lifetime serving rate.", m.ArrivalsPerSec, labels...)
	p.Gauge("omflp_window_arrivals_per_sec", "Serving rate over the last scrape window.", m.WindowArrivalsPerSec, labels...)

	for _, sm := range m.PerShard {
		sl := lbl(obs.PromLabel{Name: "shard", Value: strconv.Itoa(sm.Shard)})
		p.Gauge("omflp_shard_tenants", "Tenants pinned to the shard.", float64(sm.Tenants), sl...)
		p.Counter("omflp_shard_served_total", "Arrivals served by the shard.", float64(sm.Served), sl...)
		p.Gauge("omflp_shard_queue_depth", "Shard mailbox backlog.", float64(sm.QueueDepth), sl...)
	}

	p.Histogram("omflp_serve_latency_seconds", "Algorithm serve latency.", m.ServeLatency, labels...)
	if m.Stages != nil {
		p.Gauge("omflp_trace_sampled_total", "Arrivals with full stage records.", float64(m.Stages.Sampled), labels...)
		m.Stages.Each(func(stage string, h obs.HistSummary) {
			p.Histogram("omflp_stage_latency_seconds",
				"Per-stage latency of traced arrivals (decode/enqueue/dequeue/serve/ack; total = decode start to publish).",
				h, lbl(obs.PromLabel{Name: "stage", Value: stage})...)
		})
	}

	if m.Checkpoint.Configured {
		p.Counter("omflp_checkpoints_total", "Checkpoints written since start.", float64(m.Checkpoint.Count), labels...)
		p.Gauge("omflp_checkpoint_last_bytes", "Size of the latest checkpoint.", float64(m.Checkpoint.LastBytes), labels...)
		p.Gauge("omflp_checkpoint_last_duration_seconds", "Wall time of the latest checkpoint write.", m.Checkpoint.LastDurationMs/1e3, labels...)
		p.Gauge("omflp_checkpoint_last_arrivals", "Arrivals the latest checkpoint represents.", float64(m.Checkpoint.LastArrivals), labels...)
		p.Gauge("omflp_checkpoint_last_tail_arrivals", "Arrivals a restore of the latest checkpoint would replay.", float64(m.Checkpoint.LastTailArrivals), labels...)
		p.Gauge("omflp_restore_duration_seconds", "Wall time of the startup restore (0 = no checkpoint found).", m.Checkpoint.RestoreDurationMs/1e3, labels...)
		p.Gauge("omflp_restore_arrivals", "Arrivals the startup restore represented.", float64(m.Checkpoint.RestoredArrivals), labels...)
	}

	m.Runtime.WriteProm(p, labels...)
}
