package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"

	"repro/internal/engine"
)

// binStream is a hand-rolled binary-wire client for negotiation tests: it
// owns one connection, tracks refs, and reads every inbound frame (acks and
// the final result) after half-close.
type binStream struct {
	t    *testing.T
	conn *net.TCPConn
	bw   *bufio.Writer
	refs map[string]uint64
	buf  []byte
}

func dialBin(t *testing.T, addr string) *binStream {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := &binStream{t: t, conn: conn.(*net.TCPConn), bw: bufio.NewWriter(conn), refs: map[string]uint64{}}
	t.Cleanup(func() { conn.Close() })
	return c
}

func (c *binStream) frame(payload []byte) {
	c.t.Helper()
	if err := WriteFrame(c.bw, payload); err != nil {
		c.t.Fatal(err)
	}
}

func (c *binStream) window(w int, wantLatency bool) {
	c.frame(AppendWireWindow(nil, w, wantLatency))
}

// ref binds tenant on first use and returns its stream-local ref.
func (c *binStream) ref(tenant string) uint64 {
	r, ok := c.refs[tenant]
	if !ok {
		r = uint64(len(c.refs))
		c.refs[tenant] = r
		c.frame(AppendWireBind(nil, r, tenant))
	}
	return r
}

func (c *binStream) arrive(tenant string, point int, demands []int) {
	c.frame(AppendWireArrive(nil, c.ref(tenant), point, demands))
}

func (c *binStream) batch(tenant string, items []WireItem) {
	c.frame(AppendWireBatch(nil, c.ref(tenant), items))
}

func (c *binStream) jsonOp(op engine.Op) {
	c.t.Helper()
	payload, err := json.Marshal(op)
	if err != nil {
		c.t.Fatal(err)
	}
	c.frame(payload)
}

// finish half-closes, drains acks, and returns the result frame plus the
// collected ack frames.
func (c *binStream) finish() (TCPResult, []WireAckFrame) {
	c.t.Helper()
	if err := c.bw.Flush(); err != nil {
		c.t.Fatal(err)
	}
	if err := c.conn.CloseWrite(); err != nil {
		c.t.Fatal(err)
	}
	br := bufio.NewReader(c.conn)
	var acks []WireAckFrame
	for {
		frame, err := ReadFrame(br, c.buf)
		if err != nil {
			c.t.Fatalf("reading result: %v", err)
		}
		if IsBinaryFrame(frame) {
			op, body, err := WireFrameKind(frame)
			if err != nil || op != WireAck {
				c.t.Fatalf("server sent op 0x%02x (err %v), want ack", op, err)
			}
			ack, err := DecodeWireAck(body)
			if err != nil {
				c.t.Fatalf("decoding ack: %v", err)
			}
			acks = append(acks, ack)
			continue
		}
		var res TCPResult
		if err := json.Unmarshal(frame, &res); err != nil {
			c.t.Fatal(err)
		}
		return res, acks
	}
}

// TestBinaryWirePathMatchesStdinPath is the tentpole contract for the binary
// wire: arrivals streamed as BIND/ARRIVE/BATCH frames — windowed or not —
// must produce tenant snapshots byte-identical to the stdin op-stream path
// and to the JSON wire under the same seed.
func TestBinaryWirePathMatchesStdinPath(t *testing.T) {
	tr := testTrace(59, 90, 5, 11)
	const tenants = 4
	ops := traceOps(t, tr, tenants)
	engCfg := engine.Config{Algorithm: "pd", Shards: 2, Seed: 3}
	want := stdinSnapshots(t, engCfg, ops)

	for _, window := range []int{0, 1, 7, 4096} {
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			s := startServer(t, Config{HTTPAddr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0", Engine: engCfg})
			streamOps(t, s.TCPAddr(), ops[:tenants], true) // creates, awaited

			c := dialBin(t, s.TCPAddr())
			if window > 0 {
				c.window(window, window == 7) // exercise the latency flag on one size
			}
			// Mix singleton ARRIVEs with BATCH frames of varying size.
			arrivals := 0
			var pending []WireItem
			cur := ""
			flush := func() {
				switch {
				case len(pending) == 1:
					c.arrive(cur, pending[0].Point, pending[0].Demands)
				case len(pending) > 1:
					c.batch(cur, pending)
				}
				pending = pending[:0]
			}
			for _, op := range ops[tenants:] {
				if op.Tenant != cur || len(pending) >= 5 {
					flush()
					cur = op.Tenant
				}
				pending = append(pending, WireItem{Point: op.Point, Demands: op.Demands})
				arrivals++
			}
			flush()
			res, acks := c.finish()
			if !res.OK || res.Arrivals != arrivals {
				t.Fatalf("result %+v, want ok with %d arrivals", res, arrivals)
			}
			acked := 0
			for _, a := range acks {
				for _, code := range a.Codes {
					if code != 0 {
						t.Fatalf("ack carried failure code %d", code)
					}
				}
				if window == 7 && len(a.ServeNs) != len(a.Codes) {
					t.Fatalf("latencies requested but ack has %d ns for %d codes", len(a.ServeNs), len(a.Codes))
				}
				acked += len(a.Codes)
			}
			if window > 0 && acked != arrivals {
				t.Fatalf("acked %d of %d arrivals", acked, arrivals)
			}
			if window == 0 && acked != 0 {
				t.Fatalf("unwindowed stream got %d acks", acked)
			}

			got := httpJSON(t, "GET", "http://"+s.HTTPAddr()+"/v1/snapshots", nil, http.StatusOK)
			if !bytes.Equal(got, want) {
				t.Error("binary-wire snapshots differ from the stdin op-stream path")
			}
		})
	}
}

// TestMixedWireStream interleaves JSON and binary frames on one connection
// (negotiation is per frame, not per stream) while a second, JSON-only
// legacy connection drives other tenants on the same listener.
func TestMixedWireStream(t *testing.T) {
	tr := testTrace(61, 70, 5, 10)
	const tenants = 4
	ops := traceOps(t, tr, tenants)
	engCfg := engine.Config{Algorithm: "pd", Shards: 2, Seed: 7}
	want := stdinSnapshots(t, engCfg, ops)

	s := startServer(t, Config{HTTPAddr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0", Engine: engCfg})
	streamOps(t, s.TCPAddr(), ops[:tenants], true)

	// Tenant parity splits the arrivals: even tenants ride the mixed stream
	// (alternating JSON and binary frames), odd tenants a plain JSON stream.
	var mixed, legacy []engine.Op
	for _, op := range ops[tenants:] {
		if int(op.Tenant[len(op.Tenant)-1]-'0')%2 == 0 {
			mixed = append(mixed, op)
		} else {
			legacy = append(legacy, op)
		}
	}

	c := dialBin(t, s.TCPAddr())
	c.window(16, false) // acks must cover JSON arrivals on this stream too
	for i, op := range mixed {
		if i%2 == 0 {
			c.jsonOp(op)
		} else {
			c.arrive(op.Tenant, op.Point, op.Demands)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		streamOps(t, s.TCPAddr(), legacy, true)
	}()
	res, acks := c.finish()
	<-done
	if !res.OK || res.Arrivals != len(mixed) {
		t.Fatalf("mixed stream result %+v, want ok with %d arrivals", res, len(mixed))
	}
	acked := 0
	for _, a := range acks {
		acked += len(a.Codes)
	}
	if acked != len(mixed) {
		t.Fatalf("mixed stream acked %d of %d arrivals (JSON frames must consume window slots)", acked, len(mixed))
	}

	got := httpJSON(t, "GET", "http://"+s.HTTPAddr()+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("mixed-wire snapshots differ from the stdin op-stream path")
	}
}

// TestBinaryMalformedFrames sends malformed binary frames to a live server
// and checks each produces a clean failure result carrying the matching
// sentinel text — never a hang or a bare connection reset — and that the
// listener keeps serving afterwards.
func TestBinaryMalformedFrames(t *testing.T) {
	s := startServer(t, Config{TCPAddr: "127.0.0.1:0", Engine: engine.Config{Algorithm: "pd", Shards: 1, Seed: 1}})
	streamOps(t, s.TCPAddr(), []engine.Op{{
		Op: "create", Tenant: "t0", Universe: 2,
		Distances: [][]float64{{0, 1}, {1, 0}}, CostBySize: []float64{0, 1, 1.5},
	}}, true)

	truncated := AppendWireArrive(nil, 0, 1, []int{0, 1})
	oversized := wireHead(nil, WireWindow)
	oversized = binary.AppendUvarint(oversized, uint64(MaxAckWindow+1))
	oversized = binary.AppendUvarint(oversized, 0)

	cases := []struct {
		name string
		send func(c *binStream)
		want string
	}{
		{"bad version", func(c *binStream) {
			c.frame([]byte{WireMagic, 0x7E, WireArrive, 0})
		}, ErrWireVersion.Error()},
		{"unknown op", func(c *binStream) {
			c.frame([]byte{WireMagic, WireVersion, 0x6F})
		}, ErrWireOp.Error()},
		{"client sends ack", func(c *binStream) {
			c.frame(AppendWireAck(nil, 0, []byte{0}, nil))
		}, ErrWireOp.Error()},
		{"truncated varint", func(c *binStream) {
			c.ref("t0")
			c.frame(truncated[:len(truncated)-1])
		}, ErrWireTruncated.Error()},
		{"unbound ref", func(c *binStream) {
			c.frame(AppendWireArrive(nil, 42, 0, []int{0}))
		}, ErrWireRef.Error()},
		{"oversized window", func(c *binStream) {
			c.frame(oversized)
		}, ErrWireWindow.Error()},
		{"window after arrival", func(c *binStream) {
			c.arrive("t0", 0, []int{0})
			c.window(8, false)
		}, ErrWireWindow.Error()},
		{"duplicate window", func(c *binStream) {
			c.window(8, false)
			c.window(8, false)
		}, ErrWireWindow.Error()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := dialBin(t, s.TCPAddr())
			tc.send(c)
			res, _ := c.finish()
			if res.OK || !strings.Contains(res.Error, tc.want) {
				t.Errorf("result %+v, want failure containing %q", res, tc.want)
			}
		})
	}

	// The listener must still serve clean streams after every failure above.
	c := dialBin(t, s.TCPAddr())
	c.arrive("t0", 0, []int{0, 1})
	if res, _ := c.finish(); !res.OK || res.Arrivals != 1 {
		t.Fatalf("post-failure stream result %+v, want ok/1", res)
	}
}
