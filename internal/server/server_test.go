package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/metric"
	"repro/internal/workload"
)

func testTrace(seed int64, n, u, points int) *workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	space := metric.RandomEuclidean(rng, points, 2, 100)
	return workload.Uniform(rng, space, cost.PowerLaw(u, 1, 2), n, u/2+1)
}

// traceOps rewrites a trace as the op stream ReplayTrace would produce:
// per-tenant creates, then arrivals fanned round-robin — the wire image of
// the engine's file-trace fan-out.
func traceOps(t *testing.T, tr *workload.Trace, tenants int) []engine.Op {
	t.Helper()
	in := tr.Instance
	nPts := in.Space.Len()
	u := in.Universe()
	dist := make([][]float64, nPts)
	for i := range dist {
		dist[i] = make([]float64, nPts)
		for j := range dist[i] {
			dist[i][j] = in.Space.Distance(i, j)
		}
	}
	bySize := make([]float64, u+1)
	for k := 1; k <= u; k++ {
		bySize[k] = in.Costs.Cost(0, commodity.Full(k))
	}
	var ops []engine.Op
	for i := 0; i < tenants; i++ {
		ops = append(ops, engine.Op{
			Op: "create", Tenant: fmt.Sprintf("tenant-%03d", i),
			Universe: u, Distances: dist, CostBySize: bySize,
		})
	}
	for i, r := range in.Requests {
		ops = append(ops, engine.Op{
			Op: "arrive", Tenant: fmt.Sprintf("tenant-%03d", i%tenants),
			Point: r.Point, Demands: r.Demands.IDs(),
		})
	}
	return ops
}

// stdinSnapshots replays the ops through a bare engine — the stdin path —
// and returns the CLI snapshot artifact bytes.
func stdinSnapshots(t *testing.T, cfg engine.Config, ops []engine.Op) []byte {
	t.Helper()
	var lines bytes.Buffer
	enc := json.NewEncoder(&lines)
	for _, op := range ops {
		if err := enc.Encode(op); err != nil {
			t.Fatal(err)
		}
	}
	e, err := engine.NewChecked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.ReplayOps(&lines); err != nil {
		t.Fatal(err)
	}
	snaps, err := e.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func httpJSON(t *testing.T, method, url string, body interface{}, wantStatus int) []byte {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d — body %s", method, url, resp.StatusCode, wantStatus, out)
	}
	return out
}

// TestHTTPPathMatchesStdinPath is the tentpole contract: arrivals POSTed
// over HTTP must produce tenant snapshots byte-identical to the existing
// stdin op-stream path under the same seed.
func TestHTTPPathMatchesStdinPath(t *testing.T) {
	tr := testTrace(41, 60, 6, 10)
	ops := traceOps(t, tr, 3)
	engCfg := engine.Config{Algorithm: "pd", Shards: 4, Seed: 1}
	want := stdinSnapshots(t, engCfg, ops)

	s := startServer(t, Config{HTTPAddr: "127.0.0.1:0", Engine: engCfg})
	base := "http://" + s.HTTPAddr()
	for _, op := range ops {
		switch op.Op {
		case "create":
			httpJSON(t, "POST", base+"/v1/tenants/"+op.Tenant,
				createBody{Universe: op.Universe, Distances: op.Distances, CostBySize: op.CostBySize},
				http.StatusCreated)
		case "arrive":
			httpJSON(t, "POST", base+"/v1/tenants/"+op.Tenant+"/arrive",
				Arrival{Point: op.Point, Demands: op.Demands}, http.StatusOK)
		}
	}
	got := httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("HTTP-ingested snapshots differ from the stdin op-stream path")
	}
}

// TestTCPPathMatchesStdinPath: the framed TCP protocol must agree with the
// stdin path too, including when arrivals stream over several connections.
func TestTCPPathMatchesStdinPath(t *testing.T) {
	tr := testTrace(43, 80, 5, 12)
	const tenants = 4
	ops := traceOps(t, tr, tenants)
	engCfg := engine.Config{Algorithm: "pd", Shards: 2, Seed: 9}
	want := stdinSnapshots(t, engCfg, ops)

	s := startServer(t, Config{HTTPAddr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0", Engine: engCfg})

	// Creates first on one connection (await the ack so arrivals on other
	// conns never race tenant existence).
	streamOps(t, s.TCPAddr(), ops[:tenants], true)
	// Arrivals split across two connections by tenant parity — per-tenant
	// order is preserved within each connection.
	var a, b []engine.Op
	for _, op := range ops[tenants:] {
		if int(op.Tenant[len(op.Tenant)-1]-'0')%2 == 0 {
			a = append(a, op)
		} else {
			b = append(b, op)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		streamOps(t, s.TCPAddr(), a, true)
	}()
	streamOps(t, s.TCPAddr(), b, true)
	<-done

	got := httpJSON(t, "GET", "http://"+s.HTTPAddr()+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("TCP-ingested snapshots differ from the stdin op-stream path")
	}
}

// streamOps sends ops as frames over one TCP connection, half-closes, and
// (when await is set) verifies the server's result frame.
func streamOps(t *testing.T, addr string, ops []engine.Op, await bool) TCPResult {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	arrivals := 0
	for _, op := range ops {
		payload, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(bw, payload); err != nil {
			t.Fatal(err)
		}
		if op.Op == "arrive" {
			arrivals++
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	frame, err := ReadFrame(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	var res TCPResult
	if err := json.Unmarshal(frame, &res); err != nil {
		t.Fatal(err)
	}
	if await {
		if !res.OK || res.Arrivals != arrivals {
			t.Fatalf("TCP result = %+v, want ok with %d arrivals", res, arrivals)
		}
	}
	return res
}

// TestTCPBadOpReportsError: a malformed op must produce a result frame with
// ok=false, not a silent close.
func TestTCPBadOpReportsError(t *testing.T) {
	s := startServer(t, Config{TCPAddr: "127.0.0.1:0", Engine: engine.Config{Shards: 1}})
	res := streamOps(t, s.TCPAddr(), []engine.Op{{Op: "arrive", Tenant: "ghost", Point: 0, Demands: []int{0}}}, false)
	if res.OK || !strings.Contains(res.Error, "ghost") {
		t.Errorf("result = %+v, want unknown-tenant failure", res)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := startServer(t, Config{HTTPAddr: "127.0.0.1:0", Engine: engine.Config{Algorithm: "pd", Shards: 2, Seed: 1}})
	base := "http://" + s.HTTPAddr()
	create := createBody{
		Universe:   3,
		Distances:  [][]float64{{0, 1}, {1, 0}},
		CostBySize: []float64{0, 1, 1.5, 1.8},
	}
	httpJSON(t, "POST", base+"/v1/tenants/a", create, http.StatusCreated)
	httpJSON(t, "POST", base+"/v1/tenants/a", create, http.StatusConflict)

	// Single arrival, then a batch.
	httpJSON(t, "POST", base+"/v1/tenants/a/arrive", Arrival{Point: 0, Demands: []int{0, 2}}, http.StatusOK)
	out := httpJSON(t, "POST", base+"/v1/tenants/a/arrive", map[string]interface{}{
		"arrivals": []Arrival{{Point: 1, Demands: []int{1}}, {Point: 0, Demands: []int{2}}},
	}, http.StatusOK)
	var acc struct {
		Accepted int `json:"accepted"`
	}
	if err := json.Unmarshal(out, &acc); err != nil || acc.Accepted != 2 {
		t.Errorf("batch response %s (err %v), want accepted=2", out, err)
	}

	// Unknown tenant → 404; invalid arrival → 400.
	httpJSON(t, "POST", base+"/v1/tenants/ghost/arrive", Arrival{Point: 0, Demands: []int{0}}, http.StatusNotFound)
	httpJSON(t, "GET", base+"/v1/tenants/ghost/snapshot", nil, http.StatusNotFound)
	httpJSON(t, "POST", base+"/v1/tenants/a/arrive", Arrival{Point: 99, Demands: []int{0}}, http.StatusBadRequest)
	httpJSON(t, "POST", base+"/v1/checkpoint", nil, http.StatusNotFound) // not configured

	// Snapshot: full carries assignments, compact doesn't; both agree on cost.
	var full, compact engine.TenantSnapshot
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/tenants/a/snapshot", nil, http.StatusOK), &full); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/tenants/a/snapshot?compact=1", nil, http.StatusOK), &compact); err != nil {
		t.Fatal(err)
	}
	if full.Served != 3 || len(full.Assignments) != 3 {
		t.Errorf("full snapshot: served %d, %d assignment rows, want 3/3", full.Served, len(full.Assignments))
	}
	if compact.Assignments != nil || compact.Cost != full.Cost || compact.Served != full.Served {
		t.Errorf("compact snapshot %+v disagrees with full %+v", compact, full)
	}

	var m engine.Metrics
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/metrics", nil, http.StatusOK), &m); err != nil {
		t.Fatal(err)
	}
	if m.Tenants != 1 {
		t.Errorf("metrics tenants = %d, want 1", m.Tenants)
	}
	var health struct {
		Status string `json:"status"`
		Served int64  `json:"served"`
	}
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/healthz", nil, http.StatusOK), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("healthz status %q", health.Status)
	}
}

// TestCheckpointRestartContinuity: a server restarted on the same checkpoint
// dir resumes its tenants — snapshots after restart equal snapshots before
// shutdown, and serving continues without divergence.
func TestCheckpointRestartContinuity(t *testing.T) {
	dir := t.TempDir()
	tr := testTrace(47, 50, 5, 9)
	ops := traceOps(t, tr, 2)
	engCfg := engine.Config{Algorithm: "pd", Shards: 3, Seed: 5}
	mk := func() Config {
		return Config{
			HTTPAddr:        "127.0.0.1:0",
			CheckpointDir:   dir,
			CheckpointEvery: time.Hour, // only explicit + shutdown checkpoints
			Engine:          engCfg,
		}
	}

	s1, err := New(mk())
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s1.HTTPAddr()
	half := len(ops) / 2
	for _, op := range ops[:half] {
		applyOverHTTP(t, base, op)
	}
	httpJSON(t, "POST", base+"/v1/checkpoint", nil, http.StatusOK)
	before := httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Restart on the same dir: tenants must come back.
	s2 := startServer(t, mk())
	if s2.Restored() == 0 {
		t.Fatal("restarted server restored nothing")
	}
	base = "http://" + s2.HTTPAddr()
	after := httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(before, after) {
		t.Error("snapshots after restart differ from snapshots before shutdown")
	}

	// Continue the stream on the restarted server; final state must match
	// an uninterrupted run of the full op sequence.
	for _, op := range ops[half:] {
		applyOverHTTP(t, base, op)
	}
	got := httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
	want := stdinSnapshots(t, engCfg, ops)
	if !bytes.Equal(got, want) {
		t.Error("resumed stream diverged from an uninterrupted run")
	}
}

func applyOverHTTP(t *testing.T, base string, op engine.Op) {
	t.Helper()
	switch op.Op {
	case "create":
		httpJSON(t, "POST", base+"/v1/tenants/"+op.Tenant,
			createBody{Universe: op.Universe, Distances: op.Distances, CostBySize: op.CostBySize},
			http.StatusCreated)
	case "arrive":
		httpJSON(t, "POST", base+"/v1/tenants/"+op.Tenant+"/arrive",
			Arrival{Point: op.Point, Demands: op.Demands}, http.StatusOK)
	}
}

// TestShutdownDrains: arrivals admitted before Shutdown must all be served
// (and checkpointed) even with a deliberately tiny mailbox.
func TestShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	tr := testTrace(53, 150, 4, 8)
	ops := traceOps(t, tr, 2)
	s, err := New(Config{
		TCPAddr:         "127.0.0.1:0",
		CheckpointDir:   dir,
		CheckpointEvery: time.Hour,
		Engine:          engine.Config{Algorithm: "pd", Shards: 2, Mailbox: 4, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	streamOps(t, s.TCPAddr(), ops, true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ck, err := engine.ReadCheckpointFile(dir + "/" + CheckpointFile)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ck.Arrivals(), len(tr.Instance.Requests); got != want {
		t.Errorf("final checkpoint has %d arrivals, want %d", got, want)
	}
}

func TestServerConfigErrors(t *testing.T) {
	if _, err := New(Config{Engine: engine.Config{Algorithm: "quantum"}}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	s, err := New(Config{Engine: engine.Config{Shards: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("Start with no listeners succeeded")
	}
	s.Engine().Close()
}

// TestMetricsCheckpointAndPerShard: /v1/metrics must expose the per-shard
// breakdown (satellite of the observability work) and the checkpoint
// pipeline's size/latency/restore numbers.
func TestMetricsCheckpointAndPerShard(t *testing.T) {
	dir := t.TempDir()
	tr := testTrace(31, 40, 4, 8)
	ops := traceOps(t, tr, 3)
	engCfg := engine.Config{Algorithm: "pd", Shards: 3, Seed: 2, SealEvery: 5}
	mk := func() Config {
		return Config{
			HTTPAddr:        "127.0.0.1:0",
			CheckpointDir:   dir,
			CheckpointEvery: time.Hour,
			Engine:          engCfg,
		}
	}
	s1, err := New(mk())
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s1.HTTPAddr()
	for _, op := range ops {
		applyOverHTTP(t, base, op)
	}
	s1.Engine().Drain()
	httpJSON(t, "POST", base+"/v1/checkpoint", nil, http.StatusOK)

	var m Metrics
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/metrics", nil, http.StatusOK), &m); err != nil {
		t.Fatal(err)
	}
	if len(m.PerShard) != 3 {
		t.Fatalf("metrics has %d per-shard rows, want 3", len(m.PerShard))
	}
	var served int64
	tenants := 0
	for i, sm := range m.PerShard {
		if sm.Shard != i {
			t.Errorf("per-shard row %d has shard id %d", i, sm.Shard)
		}
		served += sm.Served
		tenants += sm.Tenants
	}
	if served != m.Served {
		t.Errorf("per-shard served sums to %d, aggregate %d", served, m.Served)
	}
	if tenants != m.Tenants {
		t.Errorf("per-shard tenants sum to %d, aggregate %d", tenants, m.Tenants)
	}
	if !m.Checkpoint.Configured || m.Checkpoint.Count < 1 || m.Checkpoint.LastBytes <= 0 {
		t.Errorf("checkpoint metrics %+v, want configured with ≥1 write", m.Checkpoint)
	}
	if m.Checkpoint.LastArrivals != 40 {
		t.Errorf("checkpoint metrics report %d arrivals, want 40", m.Checkpoint.LastArrivals)
	}
	// SealEvery 5 means at most 3 tenants × 4 tail arrivals survive unsealed.
	if m.Checkpoint.LastTailArrivals >= 3*5 {
		t.Errorf("checkpoint tail %d arrivals, want < tenants×SealEvery", m.Checkpoint.LastTailArrivals)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The on-disk artifact must be a v2 checkpoint with sealed bases.
	ck, err := engine.ReadCheckpointFile(dir + "/" + CheckpointFile)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Version != engine.CheckpointVersion {
		t.Fatalf("checkpoint file version %d, want %d", ck.Version, engine.CheckpointVersion)
	}
	for i := range ck.Tenants {
		if len(ck.Tenants[i].BaseState) == 0 {
			t.Errorf("tenant %s checkpointed without a base state", ck.Tenants[i].Tenant)
		}
	}

	// A restarted server reports the restore side: bounded replay, state
	// bytes loaded, and a restore duration.
	s2 := startServer(t, mk())
	if got := s2.RestoreStats(); got.Arrivals != 40 || got.Replayed >= 3*5 || got.BasesLoaded != 3 {
		t.Errorf("restore stats %+v, want 40 arrivals, <15 replayed, 3 bases", got)
	}
	var m2 Metrics
	if err := json.Unmarshal(httpJSON(t, "GET", "http://"+s2.HTTPAddr()+"/v1/metrics", nil, http.StatusOK), &m2); err != nil {
		t.Fatal(err)
	}
	if m2.Checkpoint.RestoredArrivals != 40 || m2.Checkpoint.RestoredStateBytes <= 0 {
		t.Errorf("restarted metrics restore section %+v", m2.Checkpoint)
	}
}
