package server

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary wire protocol. One binary payload rides inside the ordinary
// length-prefixed frame (WriteFrame/WriteFrameTrace — the trace-id header
// field works unchanged); the payload's first byte distinguishes it from a
// JSON op, which always starts with '{'. See doc.go for the full wire
// specification.
//
// Every binary payload is
//
//	byte 0  WireMagic (0xBF — not a legal first byte of JSON or UTF-8 text)
//	byte 1  WireVersion (0x01)
//	byte 2  op code (WireBind … WireAck)
//	rest    op-specific body, integers as unsigned varints (encoding/binary)
const (
	WireMagic   = 0xBF
	WireVersion = 0x01
)

// Binary op codes.
const (
	// WireBind declares a stream-local tenant ref: body = ref, nameLen,
	// name bytes. Later arrive/batch frames address the tenant by ref.
	WireBind = 0x01
	// WireArrive is one arrival: body = ref, point, k, k demand ids.
	WireArrive = 0x02
	// WireBatch is N same-tenant arrivals in one frame: body = ref, count,
	// then count × (point, k, k demand ids).
	WireBatch = 0x03
	// WireWindow enables windowed acks for the stream: body = window (the
	// client's intended max in-flight arrivals), flags (bit 0 = the client
	// wants per-op serve latencies in acks). Must precede the first arrival.
	WireWindow = 0x04
	// WireAck is server→client: body = firstSeq, count, count result-code
	// bytes, then (when latencies were requested and are available)
	// count serve durations in nanoseconds. Acks cover a contiguous run of
	// arrival seqs starting at firstSeq; seq 0 is the stream's first arrival.
	WireAck = 0x05
)

// WireAck per-op result codes. Code 0 is success; the rest classify op-
// scoped failures the way TCPResult codes do, so a windowed client learns
// which arrivals failed (and why) without waiting for the stream's final
// result frame. On the routed path the router acks these for failures it
// can scope to single ops (no route, owner down) instead of killing the
// whole stream.
const (
	WireAckOK            byte = 0
	WireAckUnknownTenant byte = 1 // no such tenant / no route
	WireAckUnavailable   byte = 2 // engine closing or owner node down
	WireAckInvalid       byte = 3 // admission-rule rejection (bad point/demands)
)

// WireAckCodeOf maps an engine/routing error onto the WireAck code
// vocabulary (WireAckOK for nil).
func WireAckCodeOf(err error) byte {
	switch ErrorCode(err) {
	case "":
		if err != nil {
			return WireAckInvalid
		}
		return WireAckOK
	case CodeUnknownTenant:
		return WireAckUnknownTenant
	case CodeUnavailable:
		return WireAckUnavailable
	default:
		return WireAckInvalid
	}
}

// MaxAckWindow bounds the window a WireWindow frame may request. The server
// never buffers per-window state proportional to it (in-flight data is
// bounded by the engine mailboxes), so the cap exists purely to reject
// nonsense values loudly.
const MaxAckWindow = 1 << 20

// maxWireDemands bounds one arrival's demand-id count; maxWireBatch bounds
// the arrivals in one batch frame. Both are sanity caps against corrupt
// frames, far above anything a legal workload produces.
const (
	maxWireDemands = 1 << 20
	maxWireBatch   = 1 << 20
)

// Binary wire error sentinels, wrapped (errors.Is-matchable) by the decode
// helpers so tests and callers can classify malformed frames precisely.
var (
	ErrWireMagic     = errors.New("bad binary frame magic")
	ErrWireVersion   = errors.New("unsupported binary wire version")
	ErrWireOp        = errors.New("unknown binary wire op")
	ErrWireTruncated = errors.New("truncated binary frame")
	ErrWireRef       = errors.New("unbound tenant ref")
	ErrWireWindow    = errors.New("bad ack window")
)

// IsBinaryFrame reports whether a frame payload is a binary wire op (as
// opposed to a JSON document). Dispatch is per frame, so binary and JSON ops
// interleave freely on one stream.
func IsBinaryFrame(b []byte) bool {
	return len(b) > 0 && b[0] == WireMagic
}

// wireHead appends the three-byte binary header.
func wireHead(dst []byte, op byte) []byte {
	return append(dst, WireMagic, WireVersion, op)
}

// AppendWireBind appends a BIND payload declaring ref ↦ tenant.
func AppendWireBind(dst []byte, ref uint64, tenant string) []byte {
	dst = wireHead(dst, WireBind)
	dst = binary.AppendUvarint(dst, ref)
	dst = binary.AppendUvarint(dst, uint64(len(tenant)))
	return append(dst, tenant...)
}

// AppendWireArrive appends an ARRIVE payload for one arrival.
func AppendWireArrive(dst []byte, ref uint64, point int, demands []int) []byte {
	dst = wireHead(dst, WireArrive)
	dst = binary.AppendUvarint(dst, ref)
	return appendWireItem(dst, point, demands)
}

// WireItem is one arrival inside a batch payload.
type WireItem struct {
	Point   int
	Demands []int
}

// AppendWireBatch appends a BATCH payload: len(items) same-tenant arrivals.
func AppendWireBatch(dst []byte, ref uint64, items []WireItem) []byte {
	dst = wireHead(dst, WireBatch)
	dst = binary.AppendUvarint(dst, ref)
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	for _, it := range items {
		dst = appendWireItem(dst, it.Point, it.Demands)
	}
	return dst
}

func appendWireItem(dst []byte, point int, demands []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(point))
	dst = binary.AppendUvarint(dst, uint64(len(demands)))
	for _, d := range demands {
		dst = binary.AppendUvarint(dst, uint64(d))
	}
	return dst
}

// AppendWireWindow appends a WINDOW payload requesting windowed acks.
func AppendWireWindow(dst []byte, window int, wantLatency bool) []byte {
	dst = wireHead(dst, WireWindow)
	dst = binary.AppendUvarint(dst, uint64(window))
	var flags uint64
	if wantLatency {
		flags |= 1
	}
	return binary.AppendUvarint(dst, flags)
}

// AppendWireAck appends an ACK payload covering len(codes) arrivals starting
// at firstSeq. serveNs, when non-nil, must align with codes.
func AppendWireAck(dst []byte, firstSeq uint64, codes []byte, serveNs []int64) []byte {
	dst = wireHead(dst, WireAck)
	dst = binary.AppendUvarint(dst, firstSeq)
	dst = binary.AppendUvarint(dst, uint64(len(codes)))
	dst = append(dst, codes...)
	for _, ns := range serveNs {
		dst = binary.AppendUvarint(dst, uint64(ns))
	}
	return dst
}

// WireFrameKind validates the binary header and returns the op code and the
// op-specific body.
func WireFrameKind(b []byte) (op byte, body []byte, err error) {
	if len(b) < 3 {
		return 0, nil, fmt.Errorf("server: %d-byte binary frame: %w", len(b), ErrWireTruncated)
	}
	if b[0] != WireMagic {
		return 0, nil, fmt.Errorf("server: frame starts 0x%02x: %w", b[0], ErrWireMagic)
	}
	if b[1] != WireVersion {
		return 0, nil, fmt.Errorf("server: binary wire version %d: %w", b[1], ErrWireVersion)
	}
	switch b[2] {
	case WireBind, WireArrive, WireBatch, WireWindow, WireAck:
		return b[2], b[3:], nil
	}
	return 0, nil, fmt.Errorf("server: binary op 0x%02x: %w", b[2], ErrWireOp)
}

// wireUvarint consumes one uvarint, classifying truncation.
func wireUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, fmt.Errorf("server: varint: %w", ErrWireTruncated)
	}
	return v, b[n:], nil
}

// DecodeWireBind parses a BIND body.
func DecodeWireBind(body []byte) (ref uint64, tenant string, err error) {
	ref, body, err = wireUvarint(body)
	if err != nil {
		return 0, "", err
	}
	n, body, err := wireUvarint(body)
	if err != nil {
		return 0, "", err
	}
	if uint64(len(body)) != n {
		return 0, "", fmt.Errorf("server: bind name of %d bytes in %d-byte tail: %w", n, len(body), ErrWireTruncated)
	}
	return ref, string(body), nil
}

// DecodeWireArrive parses an ARRIVE body, appending the demand ids to ids
// (pass reusable scratch; the result aliases it).
func DecodeWireArrive(body []byte, ids []int) (ref uint64, point int, demands []int, err error) {
	ref, body, err = wireUvarint(body)
	if err != nil {
		return 0, 0, nil, err
	}
	point, demands, body, err = decodeWireItem(body, ids)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(body) != 0 {
		return 0, 0, nil, fmt.Errorf("server: %d trailing bytes after arrive: %w", len(body), ErrWireTruncated)
	}
	return ref, point, demands, nil
}

// DecodeWireBatchHeader parses a BATCH body's head, returning the item bytes
// for DecodeWireBatchItem iteration.
func DecodeWireBatchHeader(body []byte) (ref uint64, count int, items []byte, err error) {
	ref, body, err = wireUvarint(body)
	if err != nil {
		return 0, 0, nil, err
	}
	n, body, err := wireUvarint(body)
	if err != nil {
		return 0, 0, nil, err
	}
	if n > maxWireBatch {
		return 0, 0, nil, fmt.Errorf("server: batch of %d arrivals exceeds limit %d: %w", n, maxWireBatch, ErrWireTruncated)
	}
	return ref, int(n), body, nil
}

// DecodeWireBatchItem parses one batch item, appending demand ids to ids;
// rest is the remaining item bytes. After the header's count items, rest must
// be empty.
func DecodeWireBatchItem(items []byte, ids []int) (point int, demands []int, rest []byte, err error) {
	return decodeWireItem(items, ids)
}

func decodeWireItem(b []byte, ids []int) (point int, demands []int, rest []byte, err error) {
	p, b, err := wireUvarint(b)
	if err != nil {
		return 0, nil, nil, err
	}
	k, b, err := wireUvarint(b)
	if err != nil {
		return 0, nil, nil, err
	}
	if k > maxWireDemands {
		return 0, nil, nil, fmt.Errorf("server: arrival with %d demands exceeds limit %d: %w", k, maxWireDemands, ErrWireTruncated)
	}
	for i := uint64(0); i < k; i++ {
		var d uint64
		d, b, err = wireUvarint(b)
		if err != nil {
			return 0, nil, nil, err
		}
		ids = append(ids, int(d))
	}
	return int(p), ids, b, nil
}

// DecodeWireWindow parses a WINDOW body.
func DecodeWireWindow(body []byte) (window int, wantLatency bool, err error) {
	w, body, err := wireUvarint(body)
	if err != nil {
		return 0, false, err
	}
	if w == 0 || w > MaxAckWindow {
		return 0, false, fmt.Errorf("server: window of %d (want 1..%d): %w", w, MaxAckWindow, ErrWireWindow)
	}
	flags, body, err := wireUvarint(body)
	if err != nil {
		return 0, false, err
	}
	if len(body) != 0 {
		return 0, false, fmt.Errorf("server: %d trailing bytes after window: %w", len(body), ErrWireTruncated)
	}
	return int(w), flags&1 != 0, nil
}

// WireAckFrame is a decoded ACK payload.
type WireAckFrame struct {
	FirstSeq uint64
	// Codes holds one result code per acked arrival (0 = served).
	Codes []byte
	// ServeNs, when present, holds per-arrival serve durations.
	ServeNs []int64
}

// DecodeWireAck parses an ACK body (client side; allocates).
func DecodeWireAck(body []byte) (WireAckFrame, error) {
	var ack WireAckFrame
	first, body, err := wireUvarint(body)
	if err != nil {
		return ack, err
	}
	n, body, err := wireUvarint(body)
	if err != nil {
		return ack, err
	}
	if n > maxWireBatch || uint64(len(body)) < n {
		return ack, fmt.Errorf("server: ack covering %d arrivals in %d-byte tail: %w", n, len(body), ErrWireTruncated)
	}
	ack.FirstSeq = first
	ack.Codes = append([]byte(nil), body[:n]...)
	body = body[n:]
	if len(body) == 0 {
		return ack, nil
	}
	ack.ServeNs = make([]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		var ns uint64
		ns, body, err = wireUvarint(body)
		if err != nil {
			return ack, err
		}
		ack.ServeNs = append(ack.ServeNs, int64(ns))
	}
	if len(body) != 0 {
		return ack, fmt.Errorf("server: %d trailing bytes after ack: %w", len(body), ErrWireTruncated)
	}
	return ack, nil
}

// RewireTenantRef rewrites an ARRIVE or BATCH payload's tenant ref in place
// of the original, appending the re-framed payload to dst — the router's
// upstream re-framing primitive: everything after the ref is copied verbatim,
// so per-arrival bytes are never re-encoded.
func RewireTenantRef(dst, frame []byte, newRef uint64) ([]byte, error) {
	op, body, err := WireFrameKind(frame)
	if err != nil {
		return dst, err
	}
	if op != WireArrive && op != WireBatch {
		return dst, fmt.Errorf("server: re-ref of binary op 0x%02x: %w", op, ErrWireOp)
	}
	_, rest, err := wireUvarint(body)
	if err != nil {
		return dst, err
	}
	dst = wireHead(dst, op)
	dst = binary.AppendUvarint(dst, newRef)
	return append(dst, rest...), nil
}
