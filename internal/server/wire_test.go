package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestWireBindRoundTrip(t *testing.T) {
	frame := AppendWireBind(nil, 7, "tenant-001")
	op, body, err := WireFrameKind(frame)
	if err != nil || op != WireBind {
		t.Fatalf("WireFrameKind = %v, %v; want bind", op, err)
	}
	ref, name, err := DecodeWireBind(body)
	if err != nil || ref != 7 || name != "tenant-001" {
		t.Fatalf("DecodeWireBind = %d, %q, %v", ref, name, err)
	}
}

func TestWireArriveRoundTrip(t *testing.T) {
	frame := AppendWireArrive(nil, 3, 42, []int{0, 2, 5})
	op, body, err := WireFrameKind(frame)
	if err != nil || op != WireArrive {
		t.Fatalf("WireFrameKind = %v, %v; want arrive", op, err)
	}
	scratch := make([]int, 0, 8)
	ref, point, demands, err := DecodeWireArrive(body, scratch)
	if err != nil || ref != 3 || point != 42 {
		t.Fatalf("DecodeWireArrive = %d, %d, %v, %v", ref, point, demands, err)
	}
	if want := []int{0, 2, 5}; !equalInts(demands, want) {
		t.Fatalf("demands = %v, want %v", demands, want)
	}
}

func TestWireBatchRoundTrip(t *testing.T) {
	items := []WireItem{
		{Point: 1, Demands: []int{0}},
		{Point: 9, Demands: []int{1, 3}},
		{Point: 0, Demands: []int{2, 4, 6}},
	}
	frame := AppendWireBatch(nil, 11, items)
	op, body, err := WireFrameKind(frame)
	if err != nil || op != WireBatch {
		t.Fatalf("WireFrameKind = %v, %v; want batch", op, err)
	}
	ref, count, rest, err := DecodeWireBatchHeader(body)
	if err != nil || ref != 11 || count != len(items) {
		t.Fatalf("DecodeWireBatchHeader = %d, %d, %v", ref, count, err)
	}
	scratch := make([]int, 0, 8)
	for i := 0; i < count; i++ {
		var point int
		var demands []int
		point, demands, rest, err = DecodeWireBatchItem(rest, scratch[:0])
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if point != items[i].Point || !equalInts(demands, items[i].Demands) {
			t.Fatalf("item %d = %d %v, want %d %v", i, point, demands, items[i].Point, items[i].Demands)
		}
		scratch = demands
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after batch", len(rest))
	}
}

func TestWireWindowRoundTrip(t *testing.T) {
	frame := AppendWireWindow(nil, 4096, true)
	op, body, err := WireFrameKind(frame)
	if err != nil || op != WireWindow {
		t.Fatalf("WireFrameKind = %v, %v; want window", op, err)
	}
	w, lat, err := DecodeWireWindow(body)
	if err != nil || w != 4096 || !lat {
		t.Fatalf("DecodeWireWindow = %d, %v, %v", w, lat, err)
	}
}

func TestWireAckRoundTrip(t *testing.T) {
	frame := AppendWireAck(nil, 128, []byte{0, 0, 0}, []int64{1500, 900, 12000})
	op, body, err := WireFrameKind(frame)
	if err != nil || op != WireAck {
		t.Fatalf("WireFrameKind = %v, %v; want ack", op, err)
	}
	ack, err := DecodeWireAck(body)
	if err != nil {
		t.Fatal(err)
	}
	if ack.FirstSeq != 128 || len(ack.Codes) != 3 {
		t.Fatalf("ack head = %d/%d", ack.FirstSeq, len(ack.Codes))
	}
	if len(ack.ServeNs) != 3 || ack.ServeNs[2] != 12000 {
		t.Fatalf("ack latencies = %v", ack.ServeNs)
	}

	// Without latencies.
	frame = AppendWireAck(nil, 0, []byte{0}, nil)
	_, body, _ = WireFrameKind(frame)
	ack, err = DecodeWireAck(body)
	if err != nil || ack.ServeNs != nil {
		t.Fatalf("latency-free ack = %+v, %v", ack, err)
	}
}

func TestWireRewireTenantRef(t *testing.T) {
	orig := AppendWireBatch(nil, 900, []WireItem{{Point: 5, Demands: []int{1, 2}}})
	rewired, err := RewireTenantRef(nil, orig, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := AppendWireBatch(nil, 1, []WireItem{{Point: 5, Demands: []int{1, 2}}})
	if !bytes.Equal(rewired, want) {
		t.Fatalf("rewired = %x, want %x", rewired, want)
	}
	if _, err := RewireTenantRef(nil, AppendWireBind(nil, 1, "x"), 2); !errors.Is(err, ErrWireOp) {
		t.Fatalf("re-ref of bind: %v, want ErrWireOp", err)
	}
}

func TestWireMalformed(t *testing.T) {
	arrive := AppendWireArrive(nil, 1, 5, []int{0, 1, 2})
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrWireTruncated},
		{"short header", []byte{WireMagic, WireVersion}, ErrWireTruncated},
		{"bad magic", []byte{0x7B, WireVersion, WireArrive}, ErrWireMagic},
		{"bad version", []byte{WireMagic, 0x7F, WireArrive, 0}, ErrWireVersion},
		{"unknown op", []byte{WireMagic, WireVersion, 0x6E}, ErrWireOp},
		{"truncated varint", arrive[:len(arrive)-1], ErrWireTruncated},
		{"truncated demand list", arrive[:len(arrive)-2], ErrWireTruncated},
	}
	for _, tc := range cases {
		_, body, err := WireFrameKind(tc.frame)
		if err == nil {
			_, _, _, err = DecodeWireArrive(body, nil)
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Truncated mid-varint inside an item (a multi-byte point value cut
	// short) must classify as truncation, not decode garbage.
	big := AppendWireArrive(nil, 1, 1<<20, []int{3})
	if _, _, _, err := DecodeWireArrive(big[4:len(big)-3], nil); !errors.Is(err, ErrWireTruncated) {
		t.Errorf("mid-varint cut: %v, want ErrWireTruncated", err)
	}

	// Oversized window and zero window.
	over := AppendWireWindow(nil, MaxAckWindow, false)
	// Patch the window varint to MaxAckWindow+1 by re-encoding.
	over = wireHead(over[:0], WireWindow)
	over = binary.AppendUvarint(over, uint64(MaxAckWindow)+1)
	over = binary.AppendUvarint(over, 0)
	_, body, _ := WireFrameKind(over)
	if _, _, err := DecodeWireWindow(body); !errors.Is(err, ErrWireWindow) {
		t.Errorf("oversized window: %v, want ErrWireWindow", err)
	}
	zero := wireHead(nil, WireWindow)
	zero = binary.AppendUvarint(zero, 0)
	zero = binary.AppendUvarint(zero, 0)
	_, body, _ = WireFrameKind(zero)
	if _, _, err := DecodeWireWindow(body); !errors.Is(err, ErrWireWindow) {
		t.Errorf("zero window: %v, want ErrWireWindow", err)
	}

	// Batch with an absurd count must be rejected before any allocation.
	bomb := wireHead(nil, WireBatch)
	bomb = binary.AppendUvarint(bomb, 1)
	bomb = binary.AppendUvarint(bomb, uint64(maxWireBatch)+1)
	_, body, _ = WireFrameKind(bomb)
	if _, _, _, err := DecodeWireBatchHeader(body); !errors.Is(err, ErrWireTruncated) {
		t.Errorf("batch bomb: %v, want ErrWireTruncated", err)
	}

	// Bind whose name length overruns the payload.
	bind := wireHead(nil, WireBind)
	bind = binary.AppendUvarint(bind, 1)
	bind = binary.AppendUvarint(bind, 100)
	bind = append(bind, "short"...)
	_, body, _ = WireFrameKind(bind)
	if _, _, err := DecodeWireBind(body); !errors.Is(err, ErrWireTruncated) {
		t.Errorf("overrun bind: %v, want ErrWireTruncated", err)
	}
}

func TestIsBinaryFrame(t *testing.T) {
	if IsBinaryFrame([]byte(`{"op":"arrive"}`)) {
		t.Fatal("JSON classified as binary")
	}
	if !IsBinaryFrame(AppendWireArrive(nil, 0, 0, []int{0})) {
		t.Fatal("binary frame not recognized")
	}
	if IsBinaryFrame(nil) {
		t.Fatal("empty frame classified as binary")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
