package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/commodity"
	"repro/internal/engine"
	"repro/internal/instance"
)

// MaxFrame bounds one frame's payload (64 MiB — matches the op scanner's
// line limit; create ops carry whole distance matrices).
const MaxFrame = 1 << 26

// WriteFrame writes one length-prefixed frame: 4-byte big-endian payload
// length, then the payload. Callers stream ops by framing each marshaled
// engine.Op; buffering (bufio.Writer) is the caller's business.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame written by WriteFrame, reusing buf when large
// enough. io.EOF (clean close between frames) passes through unchanged so
// callers can distinguish end-of-stream from a truncated frame.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("server: reading frame header: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("server: reading %d-byte frame: %v", n, err)
	}
	return buf, nil
}

// TCPResult is the single result frame the server sends when an ingestion
// stream ends (client half-close) or fails.
type TCPResult struct {
	OK       bool   `json:"ok"`
	Arrivals int    `json:"arrivals"`
	Error    string `json:"error,omitempty"`
	// Code classifies a failure the way httpStatus classifies engine errors
	// for the HTTP API (unknown tenant ↔ 404/421, duplicate ↔ 409, engine
	// closed ↔ 503): a router in front of many nodes needs to distinguish
	// "this node does not host that tenant" — retry elsewhere, re-place the
	// tenant — from a genuine client error, which no amount of re-routing
	// fixes. Empty on success and for unclassified (client) errors.
	Code string `json:"code,omitempty"`
}

// TCPResult failure codes.
const (
	// CodeUnknownTenant: the op addressed a tenant this node does not host —
	// the tenant may live on another node or have been migrated away. The
	// HTTP equivalent is 404 (and 421 Misdirected Request at a router).
	CodeUnknownTenant = "unknown_tenant"
	// CodeDuplicateTenant: a create for a tenant that already exists (409).
	CodeDuplicateTenant = "duplicate_tenant"
	// CodeUnavailable: the engine is shutting down (503); retry elsewhere.
	CodeUnavailable = "unavailable"
)

// ErrorCode maps an engine error onto the TCPResult code vocabulary (""
// for unclassified errors) — the frame-protocol analogue of httpStatus.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, engine.ErrUnknownTenant):
		return CodeUnknownTenant
	case errors.Is(err, engine.ErrDuplicateTenant):
		return CodeDuplicateTenant
	case errors.Is(err, engine.ErrClosed):
		return CodeUnavailable
	default:
		return ""
	}
}

// arrivePrefix is the byte shape json.Marshal gives an arrive op's head;
// FastArrive only accepts frames in exactly this canonical form.
var (
	arrivePrefix  = []byte(`{"op":"arrive","tenant":"`)
	pointSep      = []byte(`","point":`)
	demandsSep    = []byte(`,"demands":[`)
	arriveClosing = []byte(`]}`)
)

// FastArrive parses the canonical arrive frame
// {"op":"arrive","tenant":"...","point":N,"demands":[..]} without
// encoding/json — the per-op hot path of TCP ingestion, exported so the
// cluster router can pick a frame's tenant without a decode. ok is false for
// anything unexpected (field order, escapes, other ops); callers then fall
// back to the general decoder, so this is a pure fast path, never a
// behavior change. demands is appended to ids (pass a reusable scratch;
// commodity.New copies values into a bitset).
func FastArrive(b []byte, ids []int) (tenant string, point int, demands []int, ok bool) {
	if !bytes.HasPrefix(b, arrivePrefix) {
		return "", 0, nil, false
	}
	b = b[len(arrivePrefix):]
	end := bytes.IndexByte(b, '"')
	if end < 0 || bytes.IndexByte(b[:end], '\\') >= 0 {
		return "", 0, nil, false
	}
	tenant = string(b[:end])
	b = b[end:]
	if !bytes.HasPrefix(b, pointSep) {
		return "", 0, nil, false
	}
	b = b[len(pointSep):]
	point, b, ok = parseInt(b)
	if !ok || !bytes.HasPrefix(b, demandsSep) {
		return "", 0, nil, false
	}
	b = b[len(demandsSep):]
	for {
		var id int
		id, b, ok = parseInt(b)
		if !ok {
			return "", 0, nil, false
		}
		ids = append(ids, id)
		if len(b) == 0 {
			return "", 0, nil, false
		}
		if b[0] == ',' {
			b = b[1:]
			continue
		}
		break
	}
	if !bytes.Equal(b, arriveClosing) {
		return "", 0, nil, false
	}
	return tenant, point, ids, true
}

// parseInt consumes a non-negative decimal integer prefix (engine points and
// commodity ids are never negative; anything else falls back to the general
// decoder).
func parseInt(b []byte) (int, []byte, bool) {
	n, i := 0, 0
	for ; i < len(b) && b[i] >= '0' && b[i] <= '9'; i++ {
		if n > (1<<62)/10 {
			return 0, b, false
		}
		n = n*10 + int(b[i]-'0')
	}
	if i == 0 {
		return 0, b, false
	}
	return n, b[i:], true
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.loops.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.tcpConns.Add(1)
		go func() {
			defer s.tcpConns.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// serveConn drains one framed op stream into the engine. Per-tenant arrival
// order is preserved within a connection; clients that split one tenant
// across connections order their own arrivals.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	buf := make([]byte, 0, 4096)
	scratch := make([]int, 0, 64) // demand-id scratch for the fast path
	arrivals := 0
	var failure error
	for failure == nil {
		frame, err := ReadFrame(br, buf)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				failure = err
			}
			break
		}
		if len(frame) == 0 {
			continue
		}
		// Hot path: canonical arrive frames (the exact byte shape
		// json.Marshal gives an arrive op) skip encoding/json entirely;
		// anything else takes the general decoder.
		if tenant, point, demands, ok := FastArrive(frame, scratch[:0]); ok {
			if err := s.eng.Serve(tenant, instance.Request{Point: point, Demands: commodity.New(demands...)}); err != nil {
				failure = err
				break
			}
			scratch = demands
			arrivals++
			buf = frame[:0]
			continue
		}
		var op engine.Op
		if err := json.Unmarshal(frame, &op); err != nil {
			failure = fmt.Errorf("server: decoding op: %v", err)
			break
		}
		if err := s.eng.Apply(op); err != nil {
			failure = err
			break
		}
		if op.Op == "arrive" {
			arrivals++
		}
		buf = frame[:0]
	}
	res := TCPResult{OK: failure == nil, Arrivals: arrivals}
	if failure != nil {
		res.Error = failure.Error()
		res.Code = ErrorCode(failure)
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return
	}
	WriteFrame(conn, payload) //nolint:errcheck // client may already be gone
}
