package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/commodity"
	"repro/internal/engine"
	"repro/internal/instance"
	"repro/internal/obs"
)

// MaxFrame bounds one frame's payload (64 MiB — matches the op scanner's
// line limit; create ops carry whole distance matrices).
const MaxFrame = 1 << 26

// frameTraceFlag marks a traced frame in the length header's top bit: the
// header is then followed by an 8-byte big-endian trace id before the
// payload. MaxFrame is 2^26, so flagging bit 31 can never collide with a
// legal length — readers that know the flag decode both forms, and untraced
// frames are byte-identical to the pre-trace protocol.
const frameTraceFlag = uint32(1) << 31

// WriteFrame writes one length-prefixed frame: 4-byte big-endian payload
// length, then the payload. Callers stream ops by framing each marshaled
// engine.Op; buffering (bufio.Writer) is the caller's business.
func WriteFrame(w io.Writer, payload []byte) error {
	return WriteFrameTrace(w, payload, 0)
}

// WriteFrameTrace writes one frame carrying a trace id (0 = untraced,
// identical to WriteFrame): the length header with frameTraceFlag set, the
// 8-byte big-endian id, then the payload. This is the frame-level trace
// context the cluster router uses to propagate its sampling decision to the
// worker that serves the op.
func WriteFrameTrace(w io.Writer, payload []byte, traceID uint64) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [12]byte
	n := 4
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	if traceID != 0 {
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload))|frameTraceFlag)
		binary.BigEndian.PutUint64(hdr[4:12], traceID)
		n = 12
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame written by WriteFrame or WriteFrameTrace,
// discarding any trace id, reusing buf when large enough. io.EOF (clean
// close between frames) passes through unchanged so callers can distinguish
// end-of-stream from a truncated frame.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	payload, _, err := ReadFrameTrace(r, buf)
	return payload, err
}

// ReadFrameTrace is ReadFrame keeping the trace id (0 when the frame is
// untraced).
func ReadFrameTrace(r io.Reader, buf []byte) ([]byte, uint64, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("server: reading frame header: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	var traceID uint64
	if n&frameTraceFlag != 0 {
		n &^= frameTraceFlag
		var idb [8]byte
		if _, err := io.ReadFull(r, idb[:]); err != nil {
			return nil, 0, fmt.Errorf("server: reading frame trace id: %v", err)
		}
		traceID = binary.BigEndian.Uint64(idb[:])
	}
	if n > MaxFrame {
		return nil, 0, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, 0, fmt.Errorf("server: reading %d-byte frame: %v", n, err)
	}
	return buf, traceID, nil
}

// TCPResult is the single result frame the server sends when an ingestion
// stream ends (client half-close) or fails.
type TCPResult struct {
	OK       bool   `json:"ok"`
	Arrivals int    `json:"arrivals"`
	Error    string `json:"error,omitempty"`
	// Code classifies a failure the way httpStatus classifies engine errors
	// for the HTTP API (unknown tenant ↔ 404/421, duplicate ↔ 409, engine
	// closed ↔ 503): a router in front of many nodes needs to distinguish
	// "this node does not host that tenant" — retry elsewhere, re-place the
	// tenant — from a genuine client error, which no amount of re-routing
	// fixes. Empty on success and for unclassified (client) errors.
	Code string `json:"code,omitempty"`
}

// TCPResult failure codes.
const (
	// CodeUnknownTenant: the op addressed a tenant this node does not host —
	// the tenant may live on another node or have been migrated away. The
	// HTTP equivalent is 404 (and 421 Misdirected Request at a router).
	CodeUnknownTenant = "unknown_tenant"
	// CodeDuplicateTenant: a create for a tenant that already exists (409).
	CodeDuplicateTenant = "duplicate_tenant"
	// CodeUnavailable: the engine is shutting down (503); retry elsewhere.
	CodeUnavailable = "unavailable"
)

// ErrorCode maps an engine error onto the TCPResult code vocabulary (""
// for unclassified errors) — the frame-protocol analogue of httpStatus.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, engine.ErrUnknownTenant):
		return CodeUnknownTenant
	case errors.Is(err, engine.ErrDuplicateTenant):
		return CodeDuplicateTenant
	case errors.Is(err, engine.ErrClosed):
		return CodeUnavailable
	default:
		return ""
	}
}

// arrivePrefix is the byte shape json.Marshal gives an arrive op's head;
// FastArrive only accepts frames in exactly this canonical form.
var (
	arrivePrefix  = []byte(`{"op":"arrive","tenant":"`)
	pointSep      = []byte(`","point":`)
	demandsSep    = []byte(`,"demands":[`)
	arriveClosing = []byte(`]}`)
)

// FastArrive parses the canonical arrive frame
// {"op":"arrive","tenant":"...","point":N,"demands":[..]} without
// encoding/json — the per-op hot path of TCP ingestion, exported so the
// cluster router can pick a frame's tenant without a decode. ok is false for
// anything unexpected (field order, escapes, other ops); callers then fall
// back to the general decoder, so this is a pure fast path, never a
// behavior change. demands is appended to ids (pass a reusable scratch;
// commodity.New copies values into a bitset).
func FastArrive(b []byte, ids []int) (tenant string, point int, demands []int, ok bool) {
	if !bytes.HasPrefix(b, arrivePrefix) {
		return "", 0, nil, false
	}
	b = b[len(arrivePrefix):]
	end := bytes.IndexByte(b, '"')
	if end < 0 || bytes.IndexByte(b[:end], '\\') >= 0 {
		return "", 0, nil, false
	}
	tenant = string(b[:end])
	b = b[end:]
	if !bytes.HasPrefix(b, pointSep) {
		return "", 0, nil, false
	}
	b = b[len(pointSep):]
	point, b, ok = parseInt(b)
	if !ok || !bytes.HasPrefix(b, demandsSep) {
		return "", 0, nil, false
	}
	b = b[len(demandsSep):]
	for {
		var id int
		id, b, ok = parseInt(b)
		if !ok {
			return "", 0, nil, false
		}
		ids = append(ids, id)
		if len(b) == 0 {
			return "", 0, nil, false
		}
		if b[0] == ',' {
			b = b[1:]
			continue
		}
		break
	}
	if !bytes.Equal(b, arriveClosing) {
		return "", 0, nil, false
	}
	return tenant, point, ids, true
}

// parseInt consumes a non-negative decimal integer prefix (engine points and
// commodity ids are never negative; anything else falls back to the general
// decoder).
func parseInt(b []byte) (int, []byte, bool) {
	n, i := 0, 0
	for ; i < len(b) && b[i] >= '0' && b[i] <= '9'; i++ {
		if n > (1<<62)/10 {
			return 0, b, false
		}
		n = n*10 + int(b[i]-'0')
	}
	if i == 0 {
		return 0, b, false
	}
	return n, b[i:], true
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.loops.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.tcpConns.Add(1)
		go func() {
			defer s.tcpConns.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// serveConn drains one framed op stream into the engine. Per-tenant arrival
// order is preserved within a connection; clients that split one tenant
// across connections order their own arrivals.
//
// Tracing: a frame carrying a wire trace id (a router upstream) is always
// traced under that id; otherwise the engine's tracer samples locally. The
// sampled-out path allocates nothing — one atomic increment, then nil
// checks.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	buf := make([]byte, 0, 4096)
	scratch := make([]int, 0, 64) // demand-id scratch for the fast path
	tracer := s.eng.Tracer()
	arrivals := 0
	var failure error
	for failure == nil {
		frame, wireID, err := ReadFrameTrace(br, buf)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				failure = err
			}
			break
		}
		if len(frame) == 0 {
			continue
		}
		id := wireID
		if id == 0 {
			id = tracer.Sample()
		}
		var rec *obs.OpRecord
		if id != 0 {
			rec = obs.NewOpRecord(id, "") // decode starts now; tenant known after parse
		}
		// Hot path: canonical arrive frames (the exact byte shape
		// json.Marshal gives an arrive op) skip encoding/json entirely;
		// anything else takes the general decoder.
		if tenant, point, demands, ok := FastArrive(frame, scratch[:0]); ok {
			if rec != nil {
				rec.Tenant = tenant
				rec.MarkDecoded(1)
			}
			if err := s.eng.ServeTraced(tenant, instance.Request{Point: point, Demands: commodity.New(demands...)}, rec); err != nil {
				failure = err
				break
			}
			scratch = demands
			arrivals++
			buf = frame[:0]
			continue
		}
		var op engine.Op
		if err := json.Unmarshal(frame, &op); err != nil {
			failure = fmt.Errorf("server: decoding op: %v", err)
			break
		}
		if rec != nil {
			rec.Tenant = op.Tenant
			rec.MarkDecoded(1)
		}
		if err := s.eng.ApplyTraced(op, rec); err != nil {
			failure = err
			break
		}
		if op.Op == "arrive" {
			arrivals++
		}
		buf = frame[:0]
	}
	res := TCPResult{OK: failure == nil, Arrivals: arrivals}
	if failure != nil {
		res.Error = failure.Error()
		res.Code = ErrorCode(failure)
		// Error-sentinel auto-dump: the stream died on a classified
		// condition — log the event with the freshest flight records so
		// the trace context that led here is preserved even if the rings
		// roll over before anyone curls /v1/debug/flight.
		if res.Code != "" {
			s.logger.Error("tcp stream failed",
				"code", res.Code, "err", res.Error, "arrivals", arrivals,
				"remote", conn.RemoteAddr().String(),
				"flight", s.eng.FlightDump("", 8))
		}
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return
	}
	WriteFrame(conn, payload) //nolint:errcheck // client may already be gone
}
