package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/commodity"
	"repro/internal/engine"
	"repro/internal/instance"
	"repro/internal/obs"
)

// MaxFrame bounds one frame's payload (64 MiB — matches the op scanner's
// line limit; create ops carry whole distance matrices).
const MaxFrame = 1 << 26

// frameTraceFlag marks a traced frame in the length header's top bit: the
// header is then followed by an 8-byte big-endian trace id before the
// payload. MaxFrame is 2^26, so flagging bit 31 can never collide with a
// legal length — readers that know the flag decode both forms, and untraced
// frames are byte-identical to the pre-trace protocol.
const frameTraceFlag = uint32(1) << 31

// WriteFrame writes one length-prefixed frame: 4-byte big-endian payload
// length, then the payload. Callers stream ops by framing each marshaled
// engine.Op; buffering (bufio.Writer) is the caller's business.
func WriteFrame(w io.Writer, payload []byte) error {
	return WriteFrameTrace(w, payload, 0)
}

// WriteFrameTrace writes one frame carrying a trace id (0 = untraced,
// identical to WriteFrame): the length header with frameTraceFlag set, the
// 8-byte big-endian id, then the payload. This is the frame-level trace
// context the cluster router uses to propagate its sampling decision to the
// worker that serves the op.
func WriteFrameTrace(w io.Writer, payload []byte, traceID uint64) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [12]byte
	n := 4
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	if traceID != 0 {
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload))|frameTraceFlag)
		binary.BigEndian.PutUint64(hdr[4:12], traceID)
		n = 12
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame written by WriteFrame or WriteFrameTrace,
// discarding any trace id, reusing buf when large enough. io.EOF (clean
// close between frames) passes through unchanged so callers can distinguish
// end-of-stream from a truncated frame.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	payload, _, err := ReadFrameTrace(r, buf)
	return payload, err
}

// ReadFrameTrace is ReadFrame keeping the trace id (0 when the frame is
// untraced).
func ReadFrameTrace(r io.Reader, buf []byte) ([]byte, uint64, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("server: reading frame header: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	var traceID uint64
	if n&frameTraceFlag != 0 {
		n &^= frameTraceFlag
		var idb [8]byte
		if _, err := io.ReadFull(r, idb[:]); err != nil {
			return nil, 0, fmt.Errorf("server: reading frame trace id: %v", err)
		}
		traceID = binary.BigEndian.Uint64(idb[:])
	}
	if n > MaxFrame {
		return nil, 0, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, 0, fmt.Errorf("server: reading %d-byte frame: %v", n, err)
	}
	return buf, traceID, nil
}

// TCPResult is the single result frame the server sends when an ingestion
// stream ends (client half-close) or fails.
type TCPResult struct {
	OK       bool   `json:"ok"`
	Arrivals int    `json:"arrivals"`
	Error    string `json:"error,omitempty"`
	// Code classifies a failure the way httpStatus classifies engine errors
	// for the HTTP API (unknown tenant ↔ 404/421, duplicate ↔ 409, engine
	// closed ↔ 503): a router in front of many nodes needs to distinguish
	// "this node does not host that tenant" — retry elsewhere, re-place the
	// tenant — from a genuine client error, which no amount of re-routing
	// fixes. Empty on success and for unclassified (client) errors.
	Code string `json:"code,omitempty"`
}

// TCPResult failure codes.
const (
	// CodeUnknownTenant: the op addressed a tenant this node does not host —
	// the tenant may live on another node or have been migrated away. The
	// HTTP equivalent is 404 (and 421 Misdirected Request at a router).
	CodeUnknownTenant = "unknown_tenant"
	// CodeDuplicateTenant: a create for a tenant that already exists (409).
	CodeDuplicateTenant = "duplicate_tenant"
	// CodeUnavailable: the engine is shutting down (503); retry elsewhere.
	CodeUnavailable = "unavailable"
)

// ErrorCode maps an engine error onto the TCPResult code vocabulary (""
// for unclassified errors) — the frame-protocol analogue of httpStatus.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, engine.ErrUnknownTenant):
		return CodeUnknownTenant
	case errors.Is(err, engine.ErrDuplicateTenant):
		return CodeDuplicateTenant
	case errors.Is(err, engine.ErrClosed):
		return CodeUnavailable
	default:
		return ""
	}
}

// arrivePrefix is the byte shape json.Marshal gives an arrive op's head;
// FastArrive only accepts frames in exactly this canonical form.
var (
	arrivePrefix  = []byte(`{"op":"arrive","tenant":"`)
	pointSep      = []byte(`","point":`)
	demandsSep    = []byte(`,"demands":[`)
	arriveClosing = []byte(`]}`)
)

// FastArrive parses the canonical arrive frame
// {"op":"arrive","tenant":"...","point":N,"demands":[..]} without
// encoding/json — the per-op hot path of TCP ingestion, exported so the
// cluster router can pick a frame's tenant without a decode. ok is false for
// anything unexpected (field order, escapes, other ops); callers then fall
// back to the general decoder, so this is a pure fast path, never a
// behavior change. demands is appended to ids (pass a reusable scratch;
// commodity.New copies values into a bitset).
func FastArrive(b []byte, ids []int) (tenant string, point int, demands []int, ok bool) {
	if !bytes.HasPrefix(b, arrivePrefix) {
		return "", 0, nil, false
	}
	b = b[len(arrivePrefix):]
	end := bytes.IndexByte(b, '"')
	if end < 0 || bytes.IndexByte(b[:end], '\\') >= 0 {
		return "", 0, nil, false
	}
	tenant = string(b[:end])
	b = b[end:]
	if !bytes.HasPrefix(b, pointSep) {
		return "", 0, nil, false
	}
	b = b[len(pointSep):]
	point, b, ok = parseInt(b)
	if !ok || !bytes.HasPrefix(b, demandsSep) {
		return "", 0, nil, false
	}
	b = b[len(demandsSep):]
	for {
		var id int
		id, b, ok = parseInt(b)
		if !ok {
			return "", 0, nil, false
		}
		ids = append(ids, id)
		if len(b) == 0 {
			return "", 0, nil, false
		}
		if b[0] == ',' {
			b = b[1:]
			continue
		}
		break
	}
	if !bytes.Equal(b, arriveClosing) {
		return "", 0, nil, false
	}
	return tenant, point, ids, true
}

// parseInt consumes a non-negative decimal integer prefix (engine points and
// commodity ids are never negative; anything else falls back to the general
// decoder).
func parseInt(b []byte) (int, []byte, bool) {
	n, i := 0, 0
	for ; i < len(b) && b[i] >= '0' && b[i] <= '9'; i++ {
		if n > (1<<62)/10 {
			return 0, b, false
		}
		n = n*10 + int(b[i]-'0')
	}
	if i == 0 {
		return 0, b, false
	}
	return n, b[i:], true
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.loops.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.tcpConns.Add(1)
		go func() {
			defer s.tcpConns.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// connOp is one unit handed from the connection reader to the feeder
// goroutine: either a run of same-tenant arrivals (batch != nil) or one
// generic JSON op (creates and anything else that must keep stream order).
type connOp struct {
	tenant   string
	batch    []engine.BatchItem
	firstSeq uint64
	op       *engine.Op
	rec      *obs.OpRecord
}

// ackSpan is one completed engine batch awaiting ack emission.
type ackSpan struct {
	count   int
	serveNs []int64
}

// tcpAcker turns batch completions into coalesced ACK frames. Completions
// arrive out of order across shards; the acker holds them keyed by first
// sequence number and emits one ACK per contiguous run from the frontier.
// The span map stays small regardless of the client's window: in-flight
// batches are bounded by the pipeline depth plus the engine mailboxes.
type tcpAcker struct {
	bw     *bufio.Writer
	wantNs bool

	mu       sync.Mutex
	spans    map[uint64]ackSpan
	frontier uint64

	notify chan struct{}
	quit   chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup // batches handed to the engine, not yet completed

	err error // first ack write error (acker goroutine only)
}

func newTCPAcker(bw *bufio.Writer, wantNs bool) *tcpAcker {
	a := &tcpAcker{
		bw:     bw,
		wantNs: wantNs,
		spans:  make(map[uint64]ackSpan),
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go a.run()
	return a
}

// complete is the engine's onDone target. It runs on a shard goroutine and
// must not block on the network, so it only files the span and nudges the
// acker goroutine.
func (a *tcpAcker) complete(first uint64, served int, serveNs []int64) {
	a.mu.Lock()
	a.spans[first] = ackSpan{count: served, serveNs: serveNs}
	a.mu.Unlock()
	select {
	case a.notify <- struct{}{}:
	default:
	}
	a.wg.Done()
}

// close waits for every outstanding batch to complete, flushes the final
// acks, and stops the acker goroutine. After close returns the connection
// writer is free for the result frame.
func (a *tcpAcker) close() error {
	a.wg.Wait()
	close(a.quit)
	<-a.done
	return a.err
}

func (a *tcpAcker) run() {
	defer close(a.done)
	var payload, codes []byte
	for {
		select {
		case <-a.notify:
			a.emit(&payload, &codes)
		case <-a.quit:
			a.emit(&payload, &codes)
			return
		}
	}
}

// emit drains contiguous completed spans from the frontier into ACK frames,
// flushing the socket once no further span can be coalesced. A failed batch
// leaves a permanent gap at the frontier (its tail seqs were never served);
// later spans then stay unacked, which is fine — the stream is already
// dying and the result frame carries the error.
func (a *tcpAcker) emit(payload, codes *[]byte) {
	wrote := false
	for {
		a.mu.Lock()
		first := a.frontier
		total := 0
		var ns []int64
		for {
			sp, ok := a.spans[a.frontier]
			if !ok {
				break
			}
			delete(a.spans, a.frontier)
			a.frontier += uint64(sp.count)
			total += sp.count
			if a.wantNs {
				ns = append(ns, sp.serveNs...)
			}
		}
		a.mu.Unlock()
		if total == 0 {
			break
		}
		c := (*codes)[:0]
		for i := 0; i < total; i++ {
			c = append(c, 0)
		}
		*codes = c
		*payload = AppendWireAck((*payload)[:0], first, c, ns)
		if a.err == nil {
			a.err = WriteFrame(a.bw, *payload)
		}
		wrote = true
	}
	if wrote && a.err == nil {
		a.err = a.bw.Flush()
	}
}

// tcpFeed drains the reader's op queue into the engine, preserving stream
// order. It owns admission: the socket reader never blocks on engine
// mailboxes, only on the bounded queue.
type tcpFeed struct {
	s      *Server
	acker  *tcpAcker
	wantNs bool

	arrivals int   // accepted arrivals (feeder goroutine; read after join)
	failure  error // first engine error (feeder goroutine; read after join)
	failed   atomic.Bool
}

func (f *tcpFeed) run(opCh chan connOp) {
	for co := range opCh {
		if f.failure != nil {
			continue // failure latched: drain without applying
		}
		if co.op != nil {
			if err := f.s.eng.ApplyTraced(*co.op, co.rec); err != nil {
				f.fail(err)
			} else if co.op.Op == "arrive" {
				f.arrivals++
			}
			continue
		}
		var onDone func(int, []int64)
		if f.acker != nil {
			first := co.firstSeq
			f.acker.wg.Add(1)
			onDone = func(served int, ns []int64) { f.acker.complete(first, served, ns) }
		}
		acc, err := f.s.eng.ServeBatch(co.tenant, co.batch, f.wantNs, onDone)
		if f.acker != nil && acc == 0 {
			f.acker.wg.Done() // nothing enqueued: onDone will never fire
		}
		f.arrivals += acc
		if err != nil {
			f.fail(err)
		}
	}
}

func (f *tcpFeed) fail(err error) {
	f.failure = err
	f.failed.Store(true)
}

// tcpConn is the per-connection pipeline state on the reader side.
type tcpConn struct {
	s        *Server
	br       *bufio.Reader
	bw       *bufio.Writer
	opCh     chan connOp
	feed     *tcpFeed
	acker    *tcpAcker
	batchCap int

	refs   map[uint64]string // binary tenant refs, declared by BIND frames
	seq    uint64            // next arrival sequence number (all wire formats)
	window int               // 0 until a WINDOW frame arrives

	// pending is the open run of same-tenant arrivals not yet handed to
	// the feeder. Flushed when the tenant changes, the run hits batchCap,
	// a non-arrive op needs ordering, or the read buffer drains (no more
	// pipelined frames to coalesce with).
	pending       []engine.BatchItem
	pendingTenant string
	pendingFirst  uint64

	scratch []int // demand-id decode scratch
}

// flush hands the pending arrival run to the feeder. The slice is never
// touched again by the reader (appending stops strictly below cap), so
// ownership transfers cleanly.
func (c *tcpConn) flush() {
	if len(c.pending) == 0 {
		return
	}
	c.opCh <- connOp{tenant: c.pendingTenant, batch: c.pending, firstSeq: c.pendingFirst}
	c.pending = nil
}

// addArrival coalesces one decoded arrival into the pending run.
func (c *tcpConn) addArrival(tenant string, point int, demands []int, rec *obs.OpRecord) {
	if len(c.pending) > 0 && (c.pendingTenant != tenant || len(c.pending) >= c.batchCap) {
		c.flush()
	}
	if len(c.pending) == 0 {
		c.pending = make([]engine.BatchItem, 0, c.batchCap)
		c.pendingTenant = tenant
		c.pendingFirst = c.seq
	}
	c.pending = append(c.pending, engine.BatchItem{
		Req: instance.Request{Point: point, Demands: commodity.New(demands...)},
		Rec: rec,
	})
	c.seq++
}

// handleBinary dispatches one binary wire frame.
func (c *tcpConn) handleBinary(frame []byte, rec *obs.OpRecord) error {
	op, body, err := WireFrameKind(frame)
	if err != nil {
		return err
	}
	switch op {
	case WireBind:
		ref, tenant, err := DecodeWireBind(body)
		if err != nil {
			return err
		}
		if c.refs == nil {
			c.refs = make(map[uint64]string)
		}
		c.refs[ref] = tenant
		return nil
	case WireArrive:
		ref, point, demands, err := DecodeWireArrive(body, c.scratch[:0])
		if err != nil {
			return err
		}
		c.scratch = demands[:0]
		tenant, ok := c.refs[ref]
		if !ok {
			return fmt.Errorf("server: arrive ref %d: %w", ref, ErrWireRef)
		}
		if rec != nil {
			rec.Tenant = tenant
			rec.MarkDecoded(1)
		}
		c.addArrival(tenant, point, demands, rec)
		return nil
	case WireBatch:
		ref, count, items, err := DecodeWireBatchHeader(body)
		if err != nil {
			return err
		}
		tenant, ok := c.refs[ref]
		if !ok {
			return fmt.Errorf("server: batch ref %d: %w", ref, ErrWireRef)
		}
		if rec != nil {
			rec.Tenant = tenant
			rec.MarkDecoded(count) // one decode covered the whole frame
		}
		for i := 0; i < count; i++ {
			var point int
			var demands []int
			point, demands, items, err = DecodeWireBatchItem(items, c.scratch[:0])
			if err != nil {
				return err
			}
			c.scratch = demands[:0]
			r := rec
			if i > 0 {
				r = nil // trace context rides on the frame's first arrival
			}
			c.addArrival(tenant, point, demands, r)
		}
		if len(items) != 0 {
			return fmt.Errorf("server: %d trailing bytes after batch: %w", len(items), ErrWireTruncated)
		}
		return nil
	case WireWindow:
		window, wantNs, err := DecodeWireWindow(body)
		if err != nil {
			return err
		}
		if c.seq != 0 || len(c.pending) != 0 || c.acker != nil {
			return fmt.Errorf("server: window after first arrival: %w", ErrWireWindow)
		}
		c.window = window
		c.acker = newTCPAcker(c.bw, wantNs)
		// Safe publication: no batch has entered opCh yet (WINDOW precedes
		// the first arrival), and the channel send that carries the first
		// batch orders these writes before the feeder reads them.
		c.feed.acker = c.acker
		c.feed.wantNs = wantNs
		return nil
	case WireAck:
		return fmt.Errorf("server: ack frame from client: %w", ErrWireOp)
	}
	return nil // unreachable: WireFrameKind rejects unknown ops
}

// handleJSON dispatches one JSON frame: the canonical arrive fast path, the
// general-decoder arrive, or a generic op through the ordered queue.
func (c *tcpConn) handleJSON(frame []byte, rec *obs.OpRecord) error {
	// Hot path: canonical arrive frames (the exact byte shape json.Marshal
	// gives an arrive op) skip encoding/json entirely.
	if tenant, point, demands, ok := FastArrive(frame, c.scratch[:0]); ok {
		c.scratch = demands[:0]
		if rec != nil {
			rec.Tenant = tenant
			rec.MarkDecoded(1)
		}
		c.addArrival(tenant, point, demands, rec)
		return nil
	}
	var op engine.Op
	if err := json.Unmarshal(frame, &op); err != nil {
		return fmt.Errorf("server: decoding op: %v", err)
	}
	if rec != nil {
		rec.Tenant = op.Tenant
		rec.MarkDecoded(1)
	}
	// Arrives join the batch path so windowed streams ack them like any
	// other arrival; the empty-demands case stays on the generic path for
	// ApplyTraced's error message (it can never be served).
	if op.Op == "arrive" && len(op.Demands) > 0 {
		c.addArrival(op.Tenant, op.Point, op.Demands, rec)
		return nil
	}
	c.flush() // generic ops (creates) must keep stream order
	c.opCh <- connOp{op: &op, rec: rec}
	return nil
}

// serveConn drains one framed op stream into the engine through a
// read→decode→shard-handoff pipeline: the reader goroutine (this one)
// decodes frames and coalesces consecutive same-tenant arrivals, the feeder
// goroutine blocks on engine admission, and — when the client negotiated
// windowed acks — the acker goroutine streams coalesced ACK frames back.
// Socket reads therefore never block on engine mailbox admission. Per-tenant
// arrival order is preserved within a connection; clients that split one
// tenant across connections order their own arrivals.
//
// Tracing: a frame carrying a wire trace id (a router upstream) is always
// traced under that id; otherwise the engine's tracer samples locally. The
// sampled-out path allocates nothing — one atomic increment, then nil
// checks.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	c := &tcpConn{
		s:        s,
		br:       bufio.NewReaderSize(conn, 1<<16),
		bw:       bufio.NewWriterSize(conn, 1<<16),
		opCh:     make(chan connOp, s.cfg.TCPPipeline),
		feed:     &tcpFeed{s: s},
		batchCap: s.cfg.TCPBatch,
		scratch:  make([]int, 0, 64),
	}
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		c.feed.run(c.opCh)
	}()

	buf := make([]byte, 0, 4096)
	tracer := s.eng.Tracer()
	var readerErr error
	for !c.feed.failed.Load() {
		frame, wireID, err := ReadFrameTrace(c.br, buf)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				readerErr = err
			}
			break
		}
		if len(frame) != 0 {
			id := wireID
			if id == 0 {
				id = tracer.Sample()
			}
			var rec *obs.OpRecord
			if id != 0 {
				rec = obs.NewOpRecord(id, "") // decode starts now; tenant known after parse
			}
			if IsBinaryFrame(frame) {
				readerErr = c.handleBinary(frame, rec)
			} else {
				readerErr = c.handleJSON(frame, rec)
			}
			if readerErr != nil {
				break
			}
			buf = frame[:0]
		}
		// Read buffer drained: no more frames to coalesce with, so hand
		// the run over before the next read blocks.
		if c.br.Buffered() == 0 {
			c.flush()
		}
	}
	c.flush()
	close(c.opCh)
	<-feederDone

	var ackErr error
	if c.acker != nil {
		ackErr = c.acker.close() // drains: the result frame implies all acked
	}

	failure := c.feed.failure
	if failure == nil {
		failure = readerErr
	}
	arrivals := c.feed.arrivals
	res := TCPResult{OK: failure == nil, Arrivals: arrivals}
	if failure != nil {
		res.Error = failure.Error()
		res.Code = ErrorCode(failure)
		// Error-sentinel auto-dump: the stream died on a classified
		// condition — log the event with the freshest flight records so
		// the trace context that led here is preserved even if the rings
		// roll over before anyone curls /v1/debug/flight.
		if res.Code != "" {
			s.logger.Error("tcp stream failed",
				"code", res.Code, "err", res.Error, "arrivals", arrivals,
				"remote", conn.RemoteAddr().String(),
				"flight", s.eng.FlightDump("", 8))
		}
	}
	if ackErr != nil {
		return // client already gone; the result frame is undeliverable
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return
	}
	if WriteFrame(c.bw, payload) == nil {
		c.bw.Flush() //nolint:errcheck // client may already be gone
	}
}
