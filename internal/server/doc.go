// Package server is the network serving layer that turns the streaming
// engine into a daemon: an HTTP API and a length-prefixed TCP ingestion
// protocol multiplex onto one shared engine.Engine, with periodic snapshot
// checkpointing to disk and restore-on-start.
//
// # Endpoints
//
//	POST /v1/tenants/{id}           create a tenant (universe, distances, cost_by_size)
//	POST /v1/tenants/{id}/arrive    serve one arrival or a batch ({"arrivals":[...]})
//	GET  /v1/tenants/{id}/snapshot  consistent tenant snapshot (?compact=1 drops history)
//	GET  /v1/snapshots              all tenants, the serve CLI's snapshot artifact
//	GET  /v1/metrics                engine-wide metrics (arrivals/s, latency, queues)
//	GET  /healthz                   liveness + uptime
//	POST /v1/checkpoint             force a checkpoint now (404 when disabled)
//
// # Framing
//
// The TCP listener speaks frames: a 4-byte big-endian payload length
// followed by one payload of at most MaxFrame bytes. A frame whose length
// header has the top bit set additionally carries an 8-byte big-endian
// trace id between the header and the payload (WriteFrameTrace/
// ReadFrameTrace); MaxFrame is 2^26 so the flag can never collide with a
// legal length, and untraced frames are byte-identical to the pre-trace
// protocol. When the client half-closes its write side the server replies
// with a single JSON result frame {"ok":bool,"arrivals":n,"error":...,
// "code":...} and closes. That result frame is the stream's truth: a stream
// that fails mid-way reports the first failure's message and sentinel code,
// and every arrival counted in "arrivals" was served.
//
// # Wire formats and negotiation
//
// Two payload encodings ride inside the frames, negotiated per frame, not
// per stream:
//
//   - JSON: one engine.Op document — the same create/arrive documents the
//     JSON-lines stdin protocol uses, minus the line discipline. A JSON
//     payload always starts with '{'.
//   - Binary: the payload's first byte is WireMagic (0xBF, not a legal
//     first byte of JSON or UTF-8 text), then WireVersion (0x01), then an
//     op code, then an op-specific body with every integer an unsigned
//     varint (encoding/binary). IsBinaryFrame dispatches on the first byte.
//
// Because dispatch is per frame, binary and JSON ops interleave freely on
// one stream: the usual shape is JSON create ops (control plane — the
// binary protocol deliberately has no create) followed by binary arrivals
// (data plane), but any mix is legal and all arrivals, whatever their
// encoding, share one stream-wide sequence numbering and ack window.
//
// Binary ops (client→server unless noted):
//
//	BIND   (0x01)  ref, nameLen, name bytes
//	ARRIVE (0x02)  ref, point, k, k demand ids
//	BATCH  (0x03)  ref, count, count × (point, k, k demand ids) — one tenant
//	WINDOW (0x04)  window, flags (bit 0 = want per-op serve latencies)
//	ACK    (0x05)  server→client: firstSeq, count, count result-code bytes,
//	               then count serve-nanosecond varints when latencies were
//	               requested and are available
//
// BIND declares a stream-local tenant ref so later arrivals address the
// tenant by a small integer instead of repeating its name; refs are scoped
// to the connection and may be rebound. BATCH carries same-tenant arrivals
// only — batching across tenants is the client's business (tenants are
// independent instances, so a client may reorder arrivals across tenants to
// build larger batches without changing any tenant's outcome; per-tenant
// order is the determinism contract).
//
// # Windowed acks
//
// By default a stream gets no per-op acknowledgements — only the final
// result frame. A WINDOW frame, sent at most once and before the first
// arrival, turns on windowed acks: the client states its intended maximum
// in-flight arrival count (1..MaxAckWindow) and the server thereafter acks
// every arrival. Acks are coalesced: each ACK frame covers a contiguous run
// of arrival sequence numbers starting at firstSeq (seq 0 is the stream's
// first arrival, JSON arrivals included), with one result-code byte per
// arrival (0 = served) and, when flags bit 0 was set, one serve duration.
// The server never buffers state proportional to the window (in-flight data
// is bounded by the engine mailboxes); the cap exists to reject nonsense
// loudly. Violations — window of 0 or > MaxAckWindow, WINDOW after an
// arrival, a duplicate WINDOW, or a client-sent ACK — fail the stream with
// the ErrWireWindow/ErrWireOp sentinels in the result frame.
//
// The cluster router speaks the same protocol downstream but acks from its
// own layer at accept/route time (code 0, no latencies): a router ack means
// "accepted and routed", not "served" — the final result frame, which folds
// every worker's result, remains the served/failed truth. WINDOW and BIND
// frames are consumed by the router; each upstream connection gets its own
// ref table and the arrive/batch bytes are re-framed with the upstream's
// ref, never re-encoded.
//
// # Malformed frames
//
// Decode failures classify under errors.Is-matchable sentinels — ErrWireMagic,
// ErrWireVersion, ErrWireOp, ErrWireTruncated, ErrWireRef, ErrWireWindow —
// and fail the stream cleanly: the client still gets a result frame carrying
// the sentinel text, and the listener keeps serving other connections.
//
// # Checkpoints
//
// With Config.CheckpointDir set, the server writes engine checkpoints to
// <dir>/engine.ckpt.json every CheckpointEvery (atomic temp-file + rename, so
// a crash mid-write preserves the previous checkpoint), once more during
// graceful shutdown, and restores from that file on startup — a restarted
// server resumes every tenant from its last checkpoint with no cost
// divergence. Checkpoints use the engine's format v2: each tenant's record
// is a base snapshot of its serialized algorithm state plus the arrival
// segment served since (Engine.Config.SealEvery bounds the segment), so a
// restore loads state and replays O(segment) arrivals rather than the full
// history; legacy v1 checkpoints restore too. /v1/metrics reports the
// checkpoint pipeline's health — write size and latency, and the restore's
// duration, replay count and state bytes — alongside the engine's
// per-shard load breakdown.
package server
