package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/commodity"
	"repro/internal/engine"
	"repro/internal/instance"
	"repro/internal/obs"
)

// TraceHeader carries a trace id (16 hex digits) across the router → worker
// HTTP hop: the router samples, the worker records under the same id.
const TraceHeader = "X-Omflp-Trace"

// IdemHeader is the idempotency key of a batched arrive: the stream
// position (arrivals admitted before this batch) its first item claims.
// The engine trims the already-admitted prefix of a replayed batch
// (engine.ServeBatchAt), so a retried POST can never double-serve — the
// foundation of the cluster's retry discipline. Positions assume the
// per-tenant single-writer the determinism contract already requires.
const IdemHeader = "X-Omflp-Idem-Start"

// Arrival is the HTTP arrival document: one request for a tenant.
type Arrival struct {
	Point   int   `json:"point"`
	Demands []int `json:"demands"`
}

// arriveBody accepts both shapes of POST .../arrive: a single arrival
// ({"point":..,"demands":[..]}) or a batch ({"arrivals":[...]}).
type arriveBody struct {
	Arrival
	Arrivals []Arrival `json:"arrivals"`
}

// createBody is the POST /v1/tenants/{id} document — the substrate fields of
// the op protocol's create.
type createBody struct {
	Universe   int         `json:"universe"`
	Distances  [][]float64 `json:"distances"`
	CostBySize []float64   `json:"cost_by_size"`
}

// trackRequests counts in-flight handlers so Shutdown can wait for them
// even after its context expires, and turns away requests arriving once
// draining has begun.
func (s *Server) trackRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reqMu.Lock()
		if s.draining {
			s.reqMu.Unlock()
			writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("server shutting down"))
			return
		}
		s.httpReqs.Add(1)
		s.reqMu.Unlock()
		defer s.httpReqs.Done()
		h.ServeHTTP(w, r)
	})
}

func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants/{id}", s.handleCreate)
	mux.HandleFunc("POST /v1/tenants/{id}/arrive", s.handleArrive)
	mux.HandleFunc("GET /v1/tenants/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/snapshots", s.handleSnapshots)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handleProm)
	mux.HandleFunc("GET /v1/debug/flight", s.handleFlight)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/node", s.handleNode)
	mux.HandleFunc("POST /v1/tenants/{id}/extract", s.handleExtract)
	mux.HandleFunc("POST /v1/tenants/{id}/inject", s.handleInject)
	mux.HandleFunc("GET /v1/tenants/{id}/served", s.handleServed)
	mux.HandleFunc("GET /v1/tenants/{id}/export", s.handleExport)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// httpStatus maps engine errors onto protocol statuses.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, engine.ErrDuplicateTenant):
		return http.StatusConflict
	case errors.Is(err, engine.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, engine.ErrArrivalGap):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var body createBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding create body: %v", err))
		return
	}
	err := s.eng.Apply(engine.Op{
		Op:         "create",
		Tenant:     r.PathValue("id"),
		Universe:   body.Universe,
		Distances:  body.Distances,
		CostBySize: body.CostBySize,
	})
	if err != nil {
		writeErr(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"tenant": r.PathValue("id"), "status": "created"})
}

// arriveScratch pools per-request decode state for the arrive hot path: the
// raw body bytes and the batch-item scratch handed to ServeBatch. Pooling
// keeps large batch bodies from re-growing buffers on every request.
type arriveScratch struct {
	buf   []byte
	items []engine.BatchItem
}

var arrivePool = sync.Pool{
	New: func() any { return &arriveScratch{buf: make([]byte, 0, 1<<16)} },
}

// readAllInto is io.ReadAll appending into a reusable buffer.
func readAllInto(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func (s *Server) handleArrive(w http.ResponseWriter, r *http.Request) {
	tracer := s.eng.Tracer()
	wireID := obs.ParseTraceID(r.Header.Get(TraceHeader))
	var decodeStart int64
	if tracer.Enabled() || wireID != 0 {
		decodeStart = obs.Mono()
	}
	// The scratch's items slice is handed to ServeBatch, which serves it
	// asynchronously on the shard goroutine — so the pool return rides the
	// batch's onDone callback on the success path, and only the paths that
	// never enqueue recycle the scratch here.
	sc := arrivePool.Get().(*arriveScratch)
	buf, err := readAllInto(r.Body, sc.buf[:0])
	sc.buf = buf
	if err != nil {
		arrivePool.Put(sc)
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading arrive body: %v", err))
		return
	}
	var body arriveBody
	if err := json.Unmarshal(buf, &body); err != nil {
		arrivePool.Put(sc)
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding arrive body: %v", err))
		return
	}
	batch := body.Arrivals
	if batch == nil {
		batch = []Arrival{body.Arrival}
	}
	id := r.PathValue("id")
	items := sc.items[:0]
	for _, a := range batch {
		items = append(items, engine.BatchItem{
			Req: instance.Request{Point: a.Point, Demands: commodity.New(a.Demands...)},
		})
	}
	sc.items = items
	// Sampling: a wire trace id (from the router) forces a record for the
	// batch's first arrival; the rest sample locally. The one body decode
	// is attributed evenly across the batch's sampled records.
	if tracer.Enabled() || wireID != 0 {
		for i := range items {
			tid := tracer.Sample()
			if i == 0 && wireID != 0 {
				tid = wireID
			}
			if tid != 0 {
				rec := obs.NewOpRecordAt(tid, id, decodeStart)
				rec.MarkDecoded(len(items))
				items[i].Rec = rec
			}
		}
	}
	// The idempotency header keys the batch to a stream position: replays
	// of an already-admitted prefix are trimmed instead of re-served.
	start := int64(-1)
	if v := r.Header.Get(IdemHeader); v != "" {
		n, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil || n < 0 {
			arrivePool.Put(sc)
			writeErr(w, http.StatusBadRequest, fmt.Errorf("%s=%q is not a position", IdemHeader, v))
			return
		}
		start = n
	}
	// One tenant resolution and one mailbox op for the whole batch.
	// Arrivals before the first invalid item are already admitted and
	// irrevocable — ServeBatch's accepted prefix reports how far it got.
	// The shard goroutine owns items from the enqueue until onDone fires,
	// so the scratch returns to the pool there; an enqueue of zero new
	// items never calls onDone and the scratch recycles here instead.
	acc, deduped, err := s.eng.ServeBatchAt(id, start, items, false, func(int, []int64) { arrivePool.Put(sc) })
	if acc-deduped == 0 {
		arrivePool.Put(sc)
	}
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(httpStatus(err))
		json.NewEncoder(w).Encode(map[string]interface{}{
			"error": err.Error(), "accepted": acc, "deduped": deduped,
		})
		return
	}
	if deduped > 0 {
		writeJSON(w, http.StatusOK, map[string]int{"accepted": acc, "deduped": deduped})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"accepted": acc})
}

// compactParam parses the ?compact= query value: absent/empty means false,
// anything strconv.ParseBool accepts ("1", "true", "0", ...) means itself,
// garbage is a client error.
func compactParam(r *http.Request) (bool, error) {
	v := r.URL.Query().Get("compact")
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("compact=%q is not a boolean", v)
	}
	return b, nil
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	compact, perr := compactParam(r)
	if perr != nil {
		writeErr(w, http.StatusBadRequest, perr)
		return
	}
	var snap *engine.TenantSnapshot
	var err error
	if compact {
		snap, err = s.eng.SnapshotCompact(r.PathValue("id"))
	} else {
		snap, err = s.eng.Snapshot(r.PathValue("id"))
	}
	if err != nil {
		writeErr(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleSnapshots emits exactly the serve CLI's snapshot artifact — all
// tenants sorted by name, indented JSON, trailing newline — so goldens from
// the stdin path diff cleanly against the network path.
func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	compact, perr := compactParam(r)
	if perr != nil {
		writeErr(w, http.StatusBadRequest, perr)
		return
	}
	var snaps []*engine.TenantSnapshot
	var err error
	if compact {
		snaps, err = s.eng.SnapshotAllCompact()
	} else {
		snaps, err = s.eng.SnapshotAll()
	}
	if err != nil {
		writeErr(w, httpStatus(err), err)
		return
	}
	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// PromContentType is the Prometheus text exposition content type served on
// GET /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// handleProm serves GET /metrics: the same health report as /v1/metrics in
// Prometheus text exposition format.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	w.Header().Set("Content-Type", PromContentType)
	pw := obs.NewPromWriter(w)
	WriteMetricsProm(pw, &m)
	pw.Flush() //nolint:errcheck // client gone mid-scrape
}

// FlightDumpDoc is the GET /v1/debug/flight response body (and the unit the
// cluster router merges across nodes).
type FlightDumpDoc struct {
	// Tracing is false when the node runs without -trace-sample; the dump
	// is then always empty.
	Tracing bool `json:"tracing"`
	// Records is oldest-first; on a router merge each record carries its
	// origin node.
	Records []obs.FlightRecord `json:"records"`
}

// handleFlight serves GET /v1/debug/flight: the flight recorder's current
// contents. ?tenant= filters, ?max=N keeps the newest N records.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	max := 0
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("max=%q is not a count", v))
			return
		}
		max = n
	}
	writeJSON(w, http.StatusOK, FlightDumpDoc{
		Tracing: s.eng.Tracer().Enabled(),
		Records: s.eng.FlightDump(r.URL.Query().Get("tenant"), max),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Metrics()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":         "ok",
		"uptime_seconds": m.UptimeSeconds,
		"tenants":        m.Tenants,
		"served":         m.Served,
	})
}

// handleNode reports this node's identity for cluster admission: a router
// only places tenants on nodes whose algorithm and seed match its own view,
// because migration identity depends on them. Reads are window-neutral
// (TenantCount/ServedTotal, not Metrics) so routers can poll at any
// frequency without distorting windowed rates.
func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.NodeInfo())
}

// extractWait bounds how long an extract waits for the served count to
// reach the router's forwarded count before giving up on quiescence.
const extractWait = 10 * time.Second

// handleExtract removes a tenant and returns its portable state
// (engine.TenantTransfer). With ?served=N the handler first waits until the
// tenant has served exactly N arrivals — the router passes the number it has
// forwarded, so the wait drains anything still queued in shard mailboxes
// before the state is captured. A count above N means the router's ledger is
// wrong (some other client reached this tenant directly); extraction is
// refused rather than silently losing those arrivals from the ledger.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.waitServed(w, r, id) {
		return
	}
	tr, err := s.eng.ExtractTenant(id)
	if err != nil {
		writeErr(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// waitServed implements the ?served=N quiesce shared by extract and export:
// wait until the tenant has served exactly N arrivals, 409 if it has served
// more (the caller's ledger is wrong), 504 if it does not catch up within
// extractWait. Reports false after writing an error response; true means
// the capture may proceed (including when no served= was given).
func (s *Server) waitServed(w http.ResponseWriter, r *http.Request, id string) bool {
	v := r.URL.Query().Get("served")
	if v == "" {
		return true
	}
	want, err := strconv.Atoi(v)
	if err != nil || want < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("served=%q is not a count", v))
		return false
	}
	deadline := time.Now().Add(extractWait)
	for {
		n, err := s.eng.ServedCount(id)
		if err != nil {
			writeErr(w, httpStatus(err), err)
			return false
		}
		if n == want {
			return true
		}
		if n > want {
			writeErr(w, http.StatusConflict,
				fmt.Errorf("tenant %q served %d arrivals, capture expected %d", id, n, want))
			return false
		}
		if time.Now().After(deadline) {
			writeErr(w, http.StatusGatewayTimeout,
				fmt.Errorf("tenant %q served %d of %d expected arrivals within %v", id, n, want, extractWait))
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// handleInject restores an extracted tenant on this node. The body is the
// engine.TenantTransfer produced by extract; the path id must match the
// transfer's tenant so a mis-addressed inject fails loudly instead of
// restoring state under the wrong route.
func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	var tr engine.TenantTransfer
	if err := json.NewDecoder(r.Body).Decode(&tr); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding transfer body: %v", err))
		return
	}
	if id := r.PathValue("id"); id != tr.Tenant {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("inject path names tenant %q, transfer carries %q", id, tr.Tenant))
		return
	}
	if err := s.eng.InjectTenant(&tr); err != nil {
		writeErr(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tenant": tr.Tenant, "status": "injected", "arrivals": len(tr.Arrivals),
	})
}

// handleServed reports a tenant's authoritative stream position: served is
// the settled count (arrivals fully applied, read on the shard goroutine),
// admitted includes anything still queued in the mailbox. Clients resuming
// after a failover poll until served == admitted and stable, then resend
// from that index — resumption keyed to the worker's truth, not to acks
// that may have been lost with the previous router.
func (s *Server) handleServed(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	served, err := s.eng.ServedCount(id)
	if err != nil {
		writeErr(w, httpStatus(err), err)
		return
	}
	admitted, err := s.eng.AdmittedCount(id)
	if err != nil {
		writeErr(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"served": int64(served), "admitted": admitted})
}

// handleExport captures a tenant's portable state without removing it,
// honoring the same ?served=N quiesce as extract —
// the replication-seeding read: the router uses it to bring a new follower
// up from the current owner (sealed base + unsealed arrival tail over the
// same transfer codec extract/inject use).
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.waitServed(w, r, id) {
		return
	}
	tr, err := s.eng.ExportTenant(id)
	if err != nil {
		writeErr(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.cfg.CheckpointDir == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("checkpointing not configured"))
		return
	}
	if err := s.Checkpoint(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "checkpointed"})
}
