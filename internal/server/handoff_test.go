package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/engine"
)

// TestNodeExtractInjectEndpoints drives the node-side handoff surface the
// cluster router uses: /v1/node identity, quiesced extract (?served=N),
// inject on a peer, and the sentinel statuses for the failure cases.
func TestNodeExtractInjectEndpoints(t *testing.T) {
	cfg := engine.Config{Algorithm: "pd", Shards: 2, Seed: 5}
	src := startServer(t, Config{HTTPAddr: "127.0.0.1:0", Engine: cfg})
	dst := startServer(t, Config{HTTPAddr: "127.0.0.1:0", Engine: cfg})
	srcBase := "http://" + src.HTTPAddr()
	dstBase := "http://" + dst.HTTPAddr()

	var info NodeInfo
	if err := json.Unmarshal(httpJSON(t, "GET", srcBase+"/v1/node", nil, http.StatusOK), &info); err != nil {
		t.Fatal(err)
	}
	if info.Algorithm != "pd" || info.Seed != 5 || info.Tenants != 0 {
		t.Fatalf("node info %+v, want pd/5 with no tenants", info)
	}

	create := createBody{
		Universe:   3,
		Distances:  [][]float64{{0, 1}, {1, 0}},
		CostBySize: []float64{0, 1, 1.5, 1.8},
	}
	httpJSON(t, "POST", srcBase+"/v1/tenants/a", create, http.StatusCreated)
	for _, a := range []Arrival{{Point: 0, Demands: []int{0, 2}}, {Point: 1, Demands: []int{1}}, {Point: 0, Demands: []int{2}}} {
		httpJSON(t, "POST", srcBase+"/v1/tenants/a/arrive", a, http.StatusOK)
	}
	before := httpJSON(t, "GET", srcBase+"/v1/tenants/a/snapshot", nil, http.StatusOK)

	// Extract failure cases: unknown tenant, and a served watermark the
	// engine has already passed (the router's ledger can only be behind,
	// never ahead — ahead means the ledger is corrupt, a hard conflict).
	httpJSON(t, "POST", srcBase+"/v1/tenants/ghost/extract", nil, http.StatusNotFound)
	httpJSON(t, "POST", srcBase+"/v1/tenants/a/extract?served=2", nil, http.StatusConflict)

	// Quiesced extract at the true watermark, inject into the peer.
	wire := httpJSON(t, "POST", srcBase+"/v1/tenants/a/extract?served=3", nil, http.StatusOK)
	var tf engine.TenantTransfer
	if err := json.Unmarshal(wire, &tf); err != nil {
		t.Fatal(err)
	}
	// Without RecordArrivals the capture seals everything into the base
	// state; either way base + tail must account for all three arrivals.
	if tf.Tenant != "a" || tf.BaseServed+len(tf.Arrivals) != 3 {
		t.Fatalf("transfer %q: base %d + tail %d arrivals, want 3 total", tf.Tenant, tf.BaseServed, len(tf.Arrivals))
	}
	httpJSON(t, "GET", srcBase+"/v1/tenants/a/snapshot", nil, http.StatusNotFound)

	// Inject body/path mismatch is a 400; the real inject lands the tenant.
	httpJSON(t, "POST", dstBase+"/v1/tenants/b/inject", json.RawMessage(wire), http.StatusBadRequest)
	httpJSON(t, "POST", dstBase+"/v1/tenants/a/inject", json.RawMessage(wire), http.StatusOK)
	httpJSON(t, "POST", dstBase+"/v1/tenants/a/inject", json.RawMessage(wire), http.StatusConflict)

	// The restored snapshot is byte-identical to the source's.
	after := httpJSON(t, "GET", dstBase+"/v1/tenants/a/snapshot", nil, http.StatusOK)
	if string(before) != string(after) {
		t.Error("snapshot after extract/inject differs from the source snapshot")
	}

	// Serving continues on the new owner only.
	httpJSON(t, "POST", dstBase+"/v1/tenants/a/arrive", Arrival{Point: 1, Demands: []int{0}}, http.StatusOK)
	httpJSON(t, "POST", srcBase+"/v1/tenants/a/arrive", Arrival{Point: 1, Demands: []int{0}}, http.StatusNotFound)

	if err := json.Unmarshal(httpJSON(t, "GET", dstBase+"/v1/node", nil, http.StatusOK), &info); err != nil {
		t.Fatal(err)
	}
	// Served counts arrivals this engine process served: the sealed base
	// loads without replay, so only the post-inject arrival registers.
	if info.Tenants != 1 || info.Served != 1 {
		t.Errorf("dst node info %+v, want 1 tenant / 1 served", info)
	}

	// A seed-mismatched peer refuses the transfer.
	alien := startServer(t, Config{HTTPAddr: "127.0.0.1:0", Engine: engine.Config{Algorithm: "pd", Shards: 1, Seed: 6}})
	httpJSON(t, "POST", "http://"+alien.HTTPAddr()+"/v1/tenants/a/inject", json.RawMessage(wire), http.StatusBadRequest)
}

// TestTCPResultCodes: the framed-op protocol reports machine-readable
// sentinel codes so a router can distinguish unknown-tenant from transport
// failures without parsing error prose.
func TestTCPResultCodes(t *testing.T) {
	s := startServer(t, Config{TCPAddr: "127.0.0.1:0", Engine: engine.Config{Algorithm: "pd", Shards: 1, Seed: 1}})
	res := streamOps(t, s.TCPAddr(), []engine.Op{
		{Op: "arrive", Tenant: "ghost", Point: 0, Demands: []int{0}},
	}, false)
	if res.OK || res.Code != CodeUnknownTenant {
		t.Errorf("unknown-tenant result %+v, want code %q", res, CodeUnknownTenant)
	}

	dup := []engine.Op{
		{Op: "create", Tenant: "a", Universe: 2, Distances: [][]float64{{0}}, CostBySize: []float64{0, 1, 1.5}},
		{Op: "create", Tenant: "a", Universe: 2, Distances: [][]float64{{0}}, CostBySize: []float64{0, 1, 1.5}},
	}
	res = streamOps(t, s.TCPAddr(), dup, false)
	if res.OK || res.Code != CodeDuplicateTenant {
		t.Errorf("duplicate-tenant result %+v, want code %q", res, CodeDuplicateTenant)
	}
}
