package server

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// CheckpointFile is the checkpoint's file name inside Config.CheckpointDir.
const CheckpointFile = "engine.ckpt.json"

// Config configures a Server.
type Config struct {
	// HTTPAddr is the HTTP listen address (e.g. "127.0.0.1:8080" or ":0");
	// empty disables the HTTP listener.
	HTTPAddr string
	// TCPAddr is the framed-op TCP listen address; empty disables it.
	TCPAddr string
	// CheckpointDir enables checkpointing: snapshots of engine state land
	// in <dir>/engine.ckpt.json and are restored from there on New.
	CheckpointDir string
	// CheckpointEvery is the checkpoint interval; <= 0 means 15s. Only
	// meaningful with CheckpointDir set.
	CheckpointEvery time.Duration
	// Engine configures the shared engine. RecordArrivals is forced on
	// when CheckpointDir is set.
	Engine engine.Config
	// Logger receives structured lifecycle events (checkpoint capture,
	// restore, drain, TCP stream failures). nil means discard. It is also
	// handed to the engine unless Engine.Logger is set explicitly.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the HTTP
	// listener — opt-in, since profiling endpoints on a serving port are a
	// deliberate choice.
	EnablePprof bool
	// TCPPipeline is the per-connection depth of the decode→engine handoff
	// queue: how many coalesced batches may sit between the socket reader
	// and engine admission before reads block. <= 0 means
	// DefaultTCPPipeline.
	TCPPipeline int
	// TCPBatch caps the arrivals coalesced into one engine batch op on the
	// TCP path. <= 0 means DefaultTCPBatch.
	TCPBatch int
}

// Defaults for the TCP ingestion pipeline knobs.
const (
	DefaultTCPPipeline = 32
	DefaultTCPBatch    = 64
)

// Server multiplexes HTTP and TCP front ends onto one engine. Create with
// New (which restores any existing checkpoint), bind with Start, stop with
// Shutdown.
type Server struct {
	cfg    Config
	eng    *engine.Engine
	logger *slog.Logger

	httpLn  net.Listener
	httpSrv *http.Server
	tcpLn   net.Listener

	stop     chan struct{}  // closed by Shutdown: background loops exit
	loops    sync.WaitGroup // checkpoint loop + TCP accept loop
	tcpConns sync.WaitGroup // in-flight TCP connections

	// In-flight HTTP requests. http.Server.Shutdown returns on context
	// expiry with active handlers still running; a handler blocked in
	// engine.Serve on mailbox backpressure must still finish before the
	// engine closes (shards keep serving until Close, so such handlers
	// always unblock). draining rejects new requests once Shutdown begins.
	reqMu    sync.Mutex
	httpReqs sync.WaitGroup
	draining bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// Checkpoint bookkeeping: ckptMu serializes checkpoint writes and
	// guards the capture-side metrics; the restore-side fields are written
	// once in New, before any concurrency.
	ckptMu    sync.Mutex
	ckptCount int64
	ckptLast  ckptRecord
	restored  engine.RestoreStats // what New's restore did
	restoreMs float64             // wall time of that restore (load + replay + drain)

	shutdownOnce sync.Once
	shutdownErr  error
}

// ckptRecord captures one checkpoint write for the metrics report.
type ckptRecord struct {
	bytes    int
	ms       float64
	unix     int64
	arrivals int
	tail     int
}

// New creates the engine and, when checkpointing is configured and a
// checkpoint file exists, restores it. Listeners are not bound until Start.
func New(cfg Config) (*Server, error) {
	if cfg.CheckpointDir != "" {
		cfg.Engine.RecordArrivals = true
		if cfg.CheckpointEvery <= 0 {
			cfg.CheckpointEvery = 15 * time.Second
		}
	}
	if cfg.TCPPipeline <= 0 {
		cfg.TCPPipeline = DefaultTCPPipeline
	}
	if cfg.TCPBatch <= 0 {
		cfg.TCPBatch = DefaultTCPBatch
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.Discard()
	}
	if cfg.Engine.Logger == nil {
		cfg.Engine.Logger = logger
	}
	eng, err := engine.NewChecked(cfg.Engine)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		eng:    eng,
		logger: logger,
		stop:   make(chan struct{}),
		conns:  map[net.Conn]struct{}{},
	}
	if cfg.CheckpointDir != "" {
		path := s.checkpointPath()
		if _, err := os.Stat(path); err == nil {
			ck, err := engine.ReadCheckpointFile(path)
			if err != nil {
				eng.Close()
				return nil, err
			}
			start := time.Now()
			stats, err := eng.Restore(ck)
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("server: restoring %s: %v", path, err)
			}
			// Restore returns on admission; drain so the reported restore
			// time covers serving the tail, not just enqueueing it.
			eng.Drain()
			s.restored = stats
			s.restoreMs = float64(time.Since(start).Microseconds()) / 1e3
			logger.Info("checkpoint restored",
				"path", path, "arrivals", stats.Arrivals, "replayed", stats.Replayed,
				"state_bytes", stats.StateBytes, "ms", s.restoreMs)
		} else if !os.IsNotExist(err) {
			eng.Close()
			return nil, err
		}
	}
	return s, nil
}

// Engine exposes the shared engine (for in-process callers and tests).
func (s *Server) Engine() *engine.Engine { return s.eng }

// NodeInfo identifies one serving node to a cluster router: where to reach
// it (both listeners, as bound), what it runs (algorithm + seed — tenants
// may only move between nodes that agree on both, or their decisions would
// silently diverge), whether it can make migrations durable (checkpointing
// configured), and its current tenant/served counts for placement.
type NodeInfo struct {
	HTTPAddr     string `json:"http_addr"`
	TCPAddr      string `json:"tcp_addr,omitempty"`
	Algorithm    string `json:"algorithm"`
	Seed         int64  `json:"seed"`
	Checkpointed bool   `json:"checkpointed"`
	Tenants      int    `json:"tenants"`
	Served       int64  `json:"served"`
}

// NodeInfo reports this server's cluster identity (see the NodeInfo type).
func (s *Server) NodeInfo() NodeInfo {
	alg := s.cfg.Engine.Algorithm
	if alg == "" {
		alg = "pd"
	}
	return NodeInfo{
		HTTPAddr:     s.HTTPAddr(),
		TCPAddr:      s.TCPAddr(),
		Algorithm:    alg,
		Seed:         s.cfg.Engine.Seed,
		Checkpointed: s.cfg.CheckpointDir != "",
		Tenants:      s.eng.TenantCount(),
		Served:       s.eng.ServedTotal(),
	}
}

// Restored reports how many arrivals the checkpoint restored during New
// represents — base-state arrivals plus replayed tail (0 when no checkpoint
// was found).
func (s *Server) Restored() int { return s.restored.Arrivals }

// RestoreStats reports what New's checkpoint restore did (zero value when
// no checkpoint was found).
func (s *Server) RestoreStats() engine.RestoreStats { return s.restored }

func (s *Server) checkpointPath() string {
	return filepath.Join(s.cfg.CheckpointDir, CheckpointFile)
}

// Start binds the configured listeners and starts the serving and
// checkpoint loops. At least one listener must be configured.
func (s *Server) Start() error {
	if s.cfg.HTTPAddr == "" && s.cfg.TCPAddr == "" {
		return fmt.Errorf("server: no listeners configured (need HTTPAddr and/or TCPAddr)")
	}
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			return err
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{Handler: s.trackRequests(s.handler())}
		go s.httpSrv.Serve(ln) // returns ErrServerClosed on Shutdown
	}
	if s.cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.TCPAddr)
		if err != nil {
			if s.httpLn != nil {
				s.httpLn.Close()
			}
			return err
		}
		s.tcpLn = ln
		s.loops.Add(1)
		go s.acceptLoop(ln)
	}
	if s.cfg.CheckpointDir != "" {
		s.loops.Add(1)
		go s.checkpointLoop()
	}
	return nil
}

// HTTPAddr returns the bound HTTP address ("" when disabled) — useful with
// ":0" listen addresses.
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// TCPAddr returns the bound TCP framing address ("" when disabled).
func (s *Server) TCPAddr() string {
	if s.tcpLn == nil {
		return ""
	}
	return s.tcpLn.Addr().String()
}

// Checkpoint captures and atomically persists a checkpoint now (format v2:
// per-tenant base states + tail segments). Errors when checkpointing is not
// configured.
func (s *Server) Checkpoint() error {
	if s.cfg.CheckpointDir == "" {
		return fmt.Errorf("server: checkpointing not configured")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	start := time.Now()
	ck, err := s.eng.Checkpoint()
	if err != nil {
		return err
	}
	n, err := ck.WriteFile(s.checkpointPath())
	if err != nil {
		return err
	}
	s.ckptCount++
	s.ckptLast = ckptRecord{
		bytes:    n,
		ms:       float64(time.Since(start).Microseconds()) / 1e3,
		unix:     time.Now().Unix(),
		arrivals: ck.Arrivals(),
		tail:     ck.TailArrivals(),
	}
	s.logger.Info("checkpoint written",
		"bytes", n, "ms", s.ckptLast.ms, "arrivals", s.ckptLast.arrivals,
		"tail_arrivals", s.ckptLast.tail, "count", s.ckptCount)
	return nil
}

// Metrics is the server's health report: the engine metrics plus the
// checkpoint/restore observability the durability pipeline needs — how big
// and how slow checkpoints are, and how much of the last restore was served
// from serialized state versus replayed.
type Metrics struct {
	engine.Metrics
	Checkpoint CheckpointMetrics `json:"checkpoint"`
	// Runtime is the node's Go runtime health (goroutines, heap, GC). Never
	// merged across nodes — the router reports it per node.
	Runtime obs.RuntimeStats `json:"runtime"`
}

// CheckpointMetrics reports the durability pipeline's health.
type CheckpointMetrics struct {
	// Configured is false when the server runs without a checkpoint dir
	// (every other field is then zero).
	Configured bool `json:"configured"`
	// Count is the number of checkpoints written since start.
	Count int64 `json:"count"`
	// LastBytes / LastDurationMs / LastUnix describe the latest write.
	LastBytes      int     `json:"last_bytes,omitempty"`
	LastDurationMs float64 `json:"last_duration_ms,omitempty"`
	LastUnix       int64   `json:"last_unix,omitempty"`
	// LastArrivals is the arrival count the latest checkpoint represents;
	// LastTailArrivals how many of those a restore would replay (the rest
	// load as serialized base state).
	LastArrivals     int `json:"last_arrivals,omitempty"`
	LastTailArrivals int `json:"last_tail_arrivals,omitempty"`
	// Restore describes the checkpoint restore at startup, if any.
	RestoreDurationMs  float64 `json:"restore_duration_ms,omitempty"`
	RestoredArrivals   int     `json:"restored_arrivals,omitempty"`
	RestoredReplayed   int     `json:"restored_replayed,omitempty"`
	RestoredStateBytes int64   `json:"restored_state_bytes,omitempty"`
}

// Metrics returns the server health report.
func (s *Server) Metrics() Metrics {
	m := Metrics{Metrics: s.eng.Metrics(), Runtime: obs.ReadRuntime()}
	if s.cfg.CheckpointDir == "" {
		return m
	}
	s.ckptMu.Lock()
	count, last := s.ckptCount, s.ckptLast
	s.ckptMu.Unlock()
	m.Checkpoint = CheckpointMetrics{
		Configured:         true,
		Count:              count,
		LastBytes:          last.bytes,
		LastDurationMs:     last.ms,
		LastUnix:           last.unix,
		LastArrivals:       last.arrivals,
		LastTailArrivals:   last.tail,
		RestoreDurationMs:  s.restoreMs,
		RestoredArrivals:   s.restored.Arrivals,
		RestoredReplayed:   s.restored.Replayed,
		RestoredStateBytes: s.restored.StateBytes,
	}
	return m
}

func (s *Server) checkpointLoop() {
	defer s.loops.Done()
	tick := time.NewTicker(s.cfg.CheckpointEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			// Best-effort: a failed periodic checkpoint (e.g. disk full)
			// must not kill the serving loops; the next tick retries.
			s.Checkpoint() //nolint:errcheck
		case <-s.stop:
			return
		}
	}
}

// Shutdown gracefully stops the server: listeners close (no new work), the
// HTTP server waits for in-flight requests, open TCP connections finish
// their streams (force-closed when ctx expires), mailboxes drain, a final
// checkpoint is written, and the engine stops. Safe to call once; repeated
// calls return the first result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.reqMu.Lock()
		s.draining = true
		s.reqMu.Unlock()
		s.logger.Info("drain started", "tenants", s.eng.TenantCount(), "served", s.eng.ServedTotal())
		close(s.stop)
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if s.tcpLn != nil {
			keep(s.tcpLn.Close())
		}
		if s.httpSrv != nil {
			keep(s.httpSrv.Shutdown(ctx))
		}
		// Wait for in-flight TCP streams, force-closing at ctx expiry.
		done := make(chan struct{})
		go func() {
			s.tcpConns.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.connMu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.connMu.Unlock()
			<-done
			keep(ctx.Err())
		}
		// HTTP handlers that outlived ctx (e.g. blocked on mailbox
		// backpressure) must finish before the engine closes: Close is
		// not safe concurrently with Serve. Progress is guaranteed —
		// shards keep draining mailboxes until Close.
		s.httpReqs.Wait()
		s.loops.Wait()
		s.eng.Drain()
		if s.cfg.CheckpointDir != "" {
			keep(s.Checkpoint())
		}
		s.eng.Close()
		s.logger.Info("shutdown complete", "err", errString(firstErr))
		s.shutdownErr = firstErr
	})
	return s.shutdownErr
}

// errString renders an error for a log attribute ("" when nil).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
