// Package server is the network serving layer that turns the streaming
// engine into a daemon: an HTTP API and a length-prefixed TCP ingestion
// protocol multiplex onto one shared engine.Engine, with periodic snapshot
// checkpointing to disk and restore-on-start.
//
// # Endpoints
//
//	POST /v1/tenants/{id}           create a tenant (universe, distances, cost_by_size)
//	POST /v1/tenants/{id}/arrive    serve one arrival or a batch ({"arrivals":[...]})
//	GET  /v1/tenants/{id}/snapshot  consistent tenant snapshot (?compact=1 drops history)
//	GET  /v1/snapshots              all tenants, the serve CLI's snapshot artifact
//	GET  /v1/metrics                engine-wide metrics (arrivals/s, latency, queues)
//	GET  /healthz                   liveness + uptime
//	POST /v1/checkpoint             force a checkpoint now (404 when disabled)
//
// The TCP listener speaks frames: a 4-byte big-endian length followed by one
// JSON engine.Op — the same create/arrive documents the JSON-lines stdin
// protocol uses, minus the line discipline, so ingestion never re-scans for
// newlines. When the client half-closes its write side the server replies
// with a single result frame {"ok":bool,"arrivals":n,"error":...} and closes.
//
// # Checkpoints
//
// With Config.CheckpointDir set, the server writes engine checkpoints to
// <dir>/engine.ckpt.json every CheckpointEvery (atomic temp-file + rename, so
// a crash mid-write preserves the previous checkpoint), once more during
// graceful shutdown, and restores from that file on startup — a restarted
// server resumes every tenant from its last checkpoint with no cost
// divergence (engine seeds are name-derived, so replaying the checkpointed
// arrivals reproduces state byte-for-byte).
package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/engine"
)

// CheckpointFile is the checkpoint's file name inside Config.CheckpointDir.
const CheckpointFile = "engine.ckpt.json"

// Config configures a Server.
type Config struct {
	// HTTPAddr is the HTTP listen address (e.g. "127.0.0.1:8080" or ":0");
	// empty disables the HTTP listener.
	HTTPAddr string
	// TCPAddr is the framed-op TCP listen address; empty disables it.
	TCPAddr string
	// CheckpointDir enables checkpointing: snapshots of engine state land
	// in <dir>/engine.ckpt.json and are restored from there on New.
	CheckpointDir string
	// CheckpointEvery is the checkpoint interval; <= 0 means 15s. Only
	// meaningful with CheckpointDir set.
	CheckpointEvery time.Duration
	// Engine configures the shared engine. RecordArrivals is forced on
	// when CheckpointDir is set.
	Engine engine.Config
}

// Server multiplexes HTTP and TCP front ends onto one engine. Create with
// New (which restores any existing checkpoint), bind with Start, stop with
// Shutdown.
type Server struct {
	cfg Config
	eng *engine.Engine

	httpLn  net.Listener
	httpSrv *http.Server
	tcpLn   net.Listener

	stop     chan struct{}  // closed by Shutdown: background loops exit
	loops    sync.WaitGroup // checkpoint loop + TCP accept loop
	tcpConns sync.WaitGroup // in-flight TCP connections

	// In-flight HTTP requests. http.Server.Shutdown returns on context
	// expiry with active handlers still running; a handler blocked in
	// engine.Serve on mailbox backpressure must still finish before the
	// engine closes (shards keep serving until Close, so such handlers
	// always unblock). draining rejects new requests once Shutdown begins.
	reqMu    sync.Mutex
	httpReqs sync.WaitGroup
	draining bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	ckptMu   sync.Mutex // serializes checkpoint writes
	restored int        // arrivals replayed from the checkpoint at New

	shutdownOnce sync.Once
	shutdownErr  error
}

// New creates the engine and, when checkpointing is configured and a
// checkpoint file exists, restores it. Listeners are not bound until Start.
func New(cfg Config) (*Server, error) {
	if cfg.CheckpointDir != "" {
		cfg.Engine.RecordArrivals = true
		if cfg.CheckpointEvery <= 0 {
			cfg.CheckpointEvery = 15 * time.Second
		}
	}
	eng, err := engine.NewChecked(cfg.Engine)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		eng:   eng,
		stop:  make(chan struct{}),
		conns: map[net.Conn]struct{}{},
	}
	if cfg.CheckpointDir != "" {
		path := s.checkpointPath()
		if _, err := os.Stat(path); err == nil {
			ck, err := engine.ReadCheckpointFile(path)
			if err != nil {
				eng.Close()
				return nil, err
			}
			if err := eng.Restore(ck); err != nil {
				eng.Close()
				return nil, fmt.Errorf("server: restoring %s: %v", path, err)
			}
			s.restored = ck.Arrivals()
		} else if !os.IsNotExist(err) {
			eng.Close()
			return nil, err
		}
	}
	return s, nil
}

// Engine exposes the shared engine (for in-process callers and tests).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Restored reports how many arrivals were replayed from the checkpoint
// during New (0 when none was found).
func (s *Server) Restored() int { return s.restored }

func (s *Server) checkpointPath() string {
	return filepath.Join(s.cfg.CheckpointDir, CheckpointFile)
}

// Start binds the configured listeners and starts the serving and
// checkpoint loops. At least one listener must be configured.
func (s *Server) Start() error {
	if s.cfg.HTTPAddr == "" && s.cfg.TCPAddr == "" {
		return fmt.Errorf("server: no listeners configured (need HTTPAddr and/or TCPAddr)")
	}
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			return err
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{Handler: s.trackRequests(s.handler())}
		go s.httpSrv.Serve(ln) // returns ErrServerClosed on Shutdown
	}
	if s.cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.TCPAddr)
		if err != nil {
			if s.httpLn != nil {
				s.httpLn.Close()
			}
			return err
		}
		s.tcpLn = ln
		s.loops.Add(1)
		go s.acceptLoop(ln)
	}
	if s.cfg.CheckpointDir != "" {
		s.loops.Add(1)
		go s.checkpointLoop()
	}
	return nil
}

// HTTPAddr returns the bound HTTP address ("" when disabled) — useful with
// ":0" listen addresses.
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// TCPAddr returns the bound TCP framing address ("" when disabled).
func (s *Server) TCPAddr() string {
	if s.tcpLn == nil {
		return ""
	}
	return s.tcpLn.Addr().String()
}

// Checkpoint captures and atomically persists a checkpoint now. Errors when
// checkpointing is not configured.
func (s *Server) Checkpoint() error {
	if s.cfg.CheckpointDir == "" {
		return fmt.Errorf("server: checkpointing not configured")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	ck, err := s.eng.Checkpoint()
	if err != nil {
		return err
	}
	return ck.WriteFile(s.checkpointPath())
}

func (s *Server) checkpointLoop() {
	defer s.loops.Done()
	tick := time.NewTicker(s.cfg.CheckpointEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			// Best-effort: a failed periodic checkpoint (e.g. disk full)
			// must not kill the serving loops; the next tick retries.
			s.Checkpoint() //nolint:errcheck
		case <-s.stop:
			return
		}
	}
}

// Shutdown gracefully stops the server: listeners close (no new work), the
// HTTP server waits for in-flight requests, open TCP connections finish
// their streams (force-closed when ctx expires), mailboxes drain, a final
// checkpoint is written, and the engine stops. Safe to call once; repeated
// calls return the first result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.reqMu.Lock()
		s.draining = true
		s.reqMu.Unlock()
		close(s.stop)
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if s.tcpLn != nil {
			keep(s.tcpLn.Close())
		}
		if s.httpSrv != nil {
			keep(s.httpSrv.Shutdown(ctx))
		}
		// Wait for in-flight TCP streams, force-closing at ctx expiry.
		done := make(chan struct{})
		go func() {
			s.tcpConns.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.connMu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.connMu.Unlock()
			<-done
			keep(ctx.Err())
		}
		// HTTP handlers that outlived ctx (e.g. blocked on mailbox
		// backpressure) must finish before the engine closes: Close is
		// not safe concurrently with Serve. Progress is guaranteed —
		// shards keep draining mailboxes until Close.
		s.httpReqs.Wait()
		s.loops.Wait()
		s.eng.Drain()
		if s.cfg.CheckpointDir != "" {
			keep(s.Checkpoint())
		}
		s.eng.Close()
		s.shutdownErr = firstErr
	})
	return s.shutdownErr
}
