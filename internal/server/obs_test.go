package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// TestFrameTraceRoundTrip: traced frames carry their id; untraced frames are
// byte-identical to the pre-trace protocol and both readers accept both
// forms.
func TestFrameTraceRoundTrip(t *testing.T) {
	payload := []byte(`{"op":"arrive","tenant":"a","point":1,"demands":[0]}`)

	var traced, legacy bytes.Buffer
	if err := WriteFrameTrace(&traced, payload, 0xdeadbeefcafe); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&legacy, payload); err != nil {
		t.Fatal(err)
	}
	if traced.Len() != legacy.Len()+8 {
		t.Errorf("traced frame is %d bytes, want legacy %d + 8-byte id", traced.Len(), legacy.Len())
	}

	// Untraced via WriteFrameTrace(.., 0) must equal WriteFrame output.
	var zero bytes.Buffer
	if err := WriteFrameTrace(&zero, payload, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zero.Bytes(), legacy.Bytes()) {
		t.Error("WriteFrameTrace with id 0 is not byte-identical to WriteFrame")
	}

	got, id, err := ReadFrameTrace(bytes.NewReader(traced.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0xdeadbeefcafe || !bytes.Equal(got, payload) {
		t.Errorf("ReadFrameTrace = (%q, %#x), want (%q, 0xdeadbeefcafe)", got, id, payload)
	}

	// Legacy reader discards the id but decodes the payload.
	got, err = ReadFrame(bytes.NewReader(traced.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("ReadFrame(traced) = %q, want %q", got, payload)
	}

	// Traced reader on a legacy frame reports id 0.
	got, id, err = ReadFrameTrace(bytes.NewReader(legacy.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || !bytes.Equal(got, payload) {
		t.Errorf("ReadFrameTrace(legacy) = (%q, %#x), want (%q, 0)", got, id, payload)
	}

	// A traced frame truncated inside the id must fail loudly, not EOF.
	_, _, err = ReadFrameTrace(bytes.NewReader(traced.Bytes()[:8]), nil)
	if err == nil || err == io.EOF {
		t.Errorf("truncated trace id: err = %v, want frame error", err)
	}
}

// obsServer starts a server with tracing on full blast, creates tenants, and
// pushes the trace's arrivals over TCP.
func obsServer(t *testing.T, tenants, n int, extra func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		HTTPAddr: "127.0.0.1:0",
		TCPAddr:  "127.0.0.1:0",
		Engine: engine.Config{
			Algorithm: "pd", Shards: 2, Seed: 7,
			TraceSample: 1, FlightRecords: 256,
		},
	}
	if extra != nil {
		extra(&cfg)
	}
	s := startServer(t, cfg)
	ops := traceOps(t, testTrace(7, n, 6, 24), tenants)
	streamOps(t, s.TCPAddr(), ops, true)
	return s
}

// TestServerStageBreakdownTCPAndHTTP: arrivals over both transports land in
// the same stage histograms, and /v1/metrics exposes the breakdown.
func TestServerStageBreakdownTCPAndHTTP(t *testing.T) {
	const tenants, n = 3, 40
	s := obsServer(t, tenants, n, nil)
	base := "http://" + s.HTTPAddr()

	// A few more arrivals over HTTP, single and batch form.
	httpJSON(t, "POST", base+"/v1/tenants/tenant-000/arrive",
		Arrival{Point: 1, Demands: []int{0}}, http.StatusOK)
	httpJSON(t, "POST", base+"/v1/tenants/tenant-001/arrive",
		map[string]interface{}{"arrivals": []Arrival{
			{Point: 2, Demands: []int{1}}, {Point: 3, Demands: []int{0, 1}},
		}}, http.StatusOK)
	wantServed := n + 3

	awaitServed(t, s, wantServed)
	var m Metrics
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/metrics", nil, http.StatusOK), &m); err != nil {
		t.Fatal(err)
	}
	if m.Stages == nil {
		t.Fatal("metrics carry no stage breakdown with tracing on")
	}
	if m.Stages.Sampled != int64(wantServed) {
		t.Errorf("Sampled = %d, want %d (sample=1 traces every arrival)", m.Stages.Sampled, wantServed)
	}
	m.Stages.Each(func(stage string, h obs.HistSummary) {
		if h.Count != int64(wantServed) {
			t.Errorf("stage %s: count %d, want %d", stage, h.Count, wantServed)
		}
	})
	if m.Runtime.Goroutines <= 0 || m.Runtime.HeapAllocBytes == 0 {
		t.Errorf("runtime stats not populated: %+v", m.Runtime)
	}
	if m.LatencyP999Micros < m.LatencyP50Micros {
		t.Errorf("p999 %v < p50 %v", m.LatencyP999Micros, m.LatencyP50Micros)
	}
}

// awaitServed waits for the engine's served count to reach want — the ack
// stage of the final arrival may still be publishing when the TCP result
// frame arrives.
func awaitServed(t *testing.T, s *Server, want int) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if s.Engine().Metrics().Served >= int64(want) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("served %d arrivals, want %d", s.Engine().Metrics().Served, want)
}

// TestHTTPTraceHeaderForcesRecord: a wire trace id forces a flight record
// under that exact id even on a server that samples nothing locally.
func TestHTTPTraceHeaderForcesRecord(t *testing.T) {
	s := obsServer(t, 1, 4, func(c *Config) {
		c.Engine.TraceSample = 1 << 30 // effectively never sample locally
	})
	base := "http://" + s.HTTPAddr()

	body, _ := json.Marshal(Arrival{Point: 5, Demands: []int{0}})
	req, err := http.NewRequest("POST", base+"/v1/tenants/tenant-000/arrive", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	const wireID = uint64(0xabcdef0123456789)
	req.Header.Set(TraceHeader, obs.TraceIDString(wireID))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arrive with trace header: status %d", resp.StatusCode)
	}

	awaitServed(t, s, 5)
	var doc FlightDumpDoc
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/debug/flight", nil, http.StatusOK), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Tracing {
		t.Error("flight dump reports tracing off on a traced server")
	}
	want := obs.TraceIDString(wireID)
	found := false
	for _, r := range doc.Records {
		if r.TraceID == want {
			found = true
			if r.Tenant != "tenant-000" || r.Outcome != "ok" {
				t.Errorf("forced record = %+v, want tenant-000/ok", r)
			}
		}
	}
	if !found {
		t.Errorf("no flight record under wire id %s in %d records", want, len(doc.Records))
	}
}

// TestTCPWireTraceID: a traced TCP frame (router upstream) records under the
// wire id.
func TestTCPWireTraceID(t *testing.T) {
	s := obsServer(t, 1, 4, func(c *Config) {
		c.Engine.TraceSample = 1 << 30
	})
	conn, err := net.Dial("tcp", s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const wireID = uint64(0x1122334455667788)
	payload := []byte(`{"op":"arrive","tenant":"tenant-000","point":2,"demands":[1]}`)
	bw := bufio.NewWriter(conn)
	if err := WriteFrameTrace(bw, payload, wireID); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bufio.NewReader(conn), nil); err != nil {
		t.Fatal(err)
	}

	awaitServed(t, s, 5)
	recs := s.Engine().FlightDump("", 0)
	want := obs.TraceIDString(wireID)
	found := false
	for _, r := range recs {
		if r.TraceID == want && r.Tenant == "tenant-000" {
			found = true
		}
	}
	if !found {
		t.Errorf("no flight record under TCP wire id %s in %d records", want, len(recs))
	}
}

// TestPromEndpoint: GET /metrics serves valid-shaped text exposition with
// the engine, stage, and runtime series.
func TestPromEndpoint(t *testing.T) {
	const tenants, n = 2, 30
	s := obsServer(t, tenants, n, nil)
	awaitServed(t, s, n)

	resp, err := http.Get("http://" + s.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		"omflp_tenants " + fmt.Sprint(tenants),
		"omflp_served_total " + fmt.Sprint(n),
		`omflp_shard_served_total{shard="0"}`,
		`omflp_shard_served_total{shard="1"}`,
		"omflp_serve_latency_seconds_count " + fmt.Sprint(n),
		"omflp_trace_sampled_total " + fmt.Sprint(n),
		`omflp_stage_latency_seconds_bucket{stage="decode",le=`,
		`omflp_stage_latency_seconds_bucket{stage="total",le="+Inf"} ` + fmt.Sprint(n),
		"omflp_goroutines ",
		"omflp_gc_cycles_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}

	// Exposition shape: every sample line's metric has a preceding # TYPE,
	// emitted exactly once per name.
	typeCount := map[string]int{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			typeCount[fields[2]]++
		}
	}
	for name, c := range typeCount {
		if c != 1 {
			t.Errorf("metric %s has %d TYPE lines, want 1", name, c)
		}
	}
	if typeCount["omflp_stage_latency_seconds"] != 1 {
		t.Error("stage histogram family missing its TYPE header")
	}
}

// TestFlightEndpointFilters: ?tenant= and ?max= narrow the dump; bad ?max=
// is a client error.
func TestFlightEndpointFilters(t *testing.T) {
	const tenants, n = 3, 30
	s := obsServer(t, tenants, n, nil)
	awaitServed(t, s, n)
	base := "http://" + s.HTTPAddr()

	var doc FlightDumpDoc
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/debug/flight", nil, http.StatusOK), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Records) != n {
		t.Errorf("full dump has %d records, want %d", len(doc.Records), n)
	}
	for i := 1; i < len(doc.Records); i++ {
		if doc.Records[i].WallUnixNano < doc.Records[i-1].WallUnixNano {
			t.Fatal("dump is not oldest-first")
		}
	}

	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/debug/flight?tenant=tenant-001&max=4", nil, http.StatusOK), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Records) != 4 {
		t.Errorf("filtered dump has %d records, want 4", len(doc.Records))
	}
	for _, r := range doc.Records {
		if r.Tenant != "tenant-001" {
			t.Errorf("tenant filter leaked record for %q", r.Tenant)
		}
	}

	httpJSON(t, "GET", base+"/v1/debug/flight?max=potato", nil, http.StatusBadRequest)
}

// TestFlightEndpointTracingOff: without -trace-sample the endpoint still
// answers — empty records, tracing=false.
func TestFlightEndpointTracingOff(t *testing.T) {
	s := startServer(t, Config{HTTPAddr: "127.0.0.1:0", Engine: engine.Config{Shards: 1}})
	var doc FlightDumpDoc
	if err := json.Unmarshal(httpJSON(t, "GET", "http://"+s.HTTPAddr()+"/v1/debug/flight", nil, http.StatusOK), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Tracing || doc.Records == nil || len(doc.Records) != 0 {
		t.Errorf("dump = %+v, want tracing=false with empty non-nil records", doc)
	}
}

// TestPprofGating: /debug/pprof/ exists only when EnablePprof is set.
func TestPprofGating(t *testing.T) {
	off := startServer(t, Config{HTTPAddr: "127.0.0.1:0", Engine: engine.Config{Shards: 1}})
	resp, err := http.Get("http://" + off.HTTPAddr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	on := startServer(t, Config{HTTPAddr: "127.0.0.1:0", EnablePprof: true, Engine: engine.Config{Shards: 1}})
	resp, err = http.Get("http://" + on.HTTPAddr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof on: status %d, want 200 with profile index", resp.StatusCode)
	}
}

// TestTracedSnapshotsMatchUntraced: the network path with tracing on full
// blast produces byte-identical snapshots to the bare stdin replay without
// tracing — observability must not perturb the algorithm.
func TestTracedSnapshotsMatchUntraced(t *testing.T) {
	const tenants = 3
	ops := traceOps(t, testTrace(11, 36, 6, 24), tenants)
	want := stdinSnapshots(t, engine.Config{Algorithm: "pd", Shards: 4, Seed: 5}, ops)

	s := startServer(t, Config{
		HTTPAddr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0",
		Engine: engine.Config{Algorithm: "pd", Shards: 4, Seed: 5, TraceSample: 1},
	})
	streamOps(t, s.TCPAddr(), ops, true)
	got := httpJSON(t, "GET", "http://"+s.HTTPAddr()+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("traced network snapshots differ from untraced stdin snapshots")
	}
}
