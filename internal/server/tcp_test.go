package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/engine"
)

// TestFastArriveMatchesJSON is the fast path's differential contract: on
// every canonical arrive frame it must agree with encoding/json, and on
// everything else it must decline (ok=false) rather than misparse.
func TestFastArriveMatchesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		op := engine.Op{Op: "arrive", Tenant: randName(rng), Point: rng.Intn(1000)}
		for k := 0; k <= rng.Intn(5); k++ {
			op.Demands = append(op.Demands, rng.Intn(64))
		}
		payload, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		tenant, point, demands, ok := FastArrive(payload, nil)
		if !ok {
			t.Fatalf("fast path declined canonical frame %s", payload)
		}
		if tenant != op.Tenant || point != op.Point || !reflect.DeepEqual(demands, op.Demands) {
			t.Fatalf("fast path parsed %s as (%q,%d,%v), want (%q,%d,%v)",
				payload, tenant, point, demands, op.Tenant, op.Point, op.Demands)
		}
	}

	// Non-canonical or non-arrive inputs must decline, never misparse.
	for _, in := range []string{
		`{"op":"create","tenant":"a","universe":2}`,
		`{"tenant":"a","op":"arrive","point":1,"demands":[0]}`, // field order
		`{"op":"arrive","tenant":"a\"b","point":1,"demands":[0]}`,
		`{"op":"arrive","tenant":"a\\\"b","point":1,"demands":[0]}`, // escape
		`{"op":"arrive","tenant":"a","point":-1,"demands":[0]}`,     // negative
		`{"op":"arrive","tenant":"a","point":1,"demands":[]}`,       // empty
		`{"op":"arrive","tenant":"a","point":1,"demands":[0],"x":1}`,
		`{"op":"arrive","tenant":"a","point":1.5,"demands":[0]}`,
		`{"op":"arrive","tenant":"a","point":99999999999999999999,"demands":[0]}`,
		``,
		`{}`,
	} {
		if tenant, point, demands, ok := FastArrive([]byte(in), nil); ok {
			// The only acceptable "ok" is when encoding/json agrees exactly.
			var op engine.Op
			if err := json.Unmarshal([]byte(in), &op); err != nil ||
				op.Op != "arrive" || op.Tenant != tenant || op.Point != point ||
				!reflect.DeepEqual(op.Demands, demands) {
				t.Errorf("fast path accepted %q as (%q,%d,%v)", in, tenant, point, demands)
			}
		}
	}
}

func randName(rng *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz-0123456789"
	n := 1 + rng.Intn(12)
	out := make([]byte, n)
	for i := range out {
		out[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(out)
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte("x"), 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame round trip: got %d bytes, want %d", len(got), len(want))
		}
		scratch = got
	}
	if _, err := ReadFrame(&buf, nil); err == nil || err.Error() != "EOF" {
		if _, err2 := ReadFrame(&buf, nil); err2 == nil {
			t.Error("EOF not reported at stream end")
		}
	}

	// Oversized frames are rejected on both sides.
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized write accepted")
	}
	var hdr bytes.Buffer
	hdr.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&hdr, nil); err == nil {
		t.Error("oversized header accepted")
	}
	// A truncated frame is an error, not EOF.
	var trunc bytes.Buffer
	WriteFrame(&trunc, []byte("full payload"))
	half := trunc.Bytes()[:trunc.Len()-4]
	if _, err := ReadFrame(bytes.NewReader(half), nil); err == nil {
		t.Error("truncated frame read succeeded")
	}
}
