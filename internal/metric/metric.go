// Package metric provides the finite metric spaces on which OMFLP instances
// live: requests arrive at points of a Space, and facilities are opened at
// points of the same Space.
//
// All spaces are finite and addressed by integer point indices in [0, Len()).
// Implementations must satisfy the metric axioms; Check verifies them
// exhaustively and is used by tests.
package metric

import (
	"container/heap"
	"fmt"
	"math"
)

// Space is a finite metric space over points 0..Len()-1.
type Space interface {
	// Len returns the number of points.
	Len() int
	// Distance returns the distance between points i and j. It must be
	// symmetric, non-negative, zero on the diagonal and satisfy the
	// triangle inequality.
	Distance(i, j int) float64
	// Name identifies the space type for reports.
	Name() string
}

// Check verifies the metric axioms exhaustively in O(n^3). It is intended for
// tests and small spaces; it returns a descriptive error for the first
// violated axiom. Non-negativity and symmetry tolerate no error; the triangle
// inequality allows a tiny relative slack for floating-point spaces.
func Check(s Space) error {
	n := s.Len()
	const eps = 1e-9
	for i := 0; i < n; i++ {
		if d := s.Distance(i, i); d != 0 {
			return fmt.Errorf("metric: d(%d,%d) = %g, want 0", i, i, d)
		}
		for j := 0; j < n; j++ {
			d := s.Distance(i, j)
			if d < 0 || math.IsNaN(d) {
				return fmt.Errorf("metric: d(%d,%d) = %g is negative or NaN", i, j, d)
			}
			if back := s.Distance(j, i); math.Abs(d-back) > eps*(1+d) {
				return fmt.Errorf("metric: asymmetry d(%d,%d)=%g d(%d,%d)=%g", i, j, d, j, i, back)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dij := s.Distance(i, j)
			for k := 0; k < n; k++ {
				if via := s.Distance(i, k) + s.Distance(k, j); dij > via+eps*(1+via) {
					return fmt.Errorf("metric: triangle violated d(%d,%d)=%g > d(%d,%d)+d(%d,%d)=%g",
						i, j, dij, i, k, k, j, via)
				}
			}
		}
	}
	return nil
}

// Line is the 1-dimensional metric induced by point positions on the real
// line. The paper's lower bounds (Corollary 3) already hold on this space.
type Line struct {
	pos []float64
}

// NewLine builds a line metric from the given coordinates.
func NewLine(positions []float64) *Line {
	pos := make([]float64, len(positions))
	copy(pos, positions)
	return &Line{pos: pos}
}

// NewGrid returns a line of n evenly spaced points spanning [0, width].
// A single point sits at 0.
func NewGrid(n int, width float64) *Line {
	pos := make([]float64, n)
	if n > 1 {
		step := width / float64(n-1)
		for i := range pos {
			pos[i] = float64(i) * step
		}
	}
	return &Line{pos: pos}
}

func (l *Line) Len() int     { return len(l.pos) }
func (l *Line) Name() string { return "line" }

// Position returns the coordinate of point i.
func (l *Line) Position(i int) float64 { return l.pos[i] }

func (l *Line) Distance(i, j int) float64 {
	return math.Abs(l.pos[i] - l.pos[j])
}

// Euclidean is a k-dimensional Euclidean point set.
type Euclidean struct {
	pts [][]float64
	dim int
}

// NewEuclidean builds a Euclidean metric from point coordinates. All points
// must share one dimension; NewEuclidean panics otherwise.
func NewEuclidean(points [][]float64) *Euclidean {
	if len(points) == 0 {
		return &Euclidean{}
	}
	dim := len(points[0])
	pts := make([][]float64, len(points))
	for i, p := range points {
		if len(p) != dim {
			panic(fmt.Sprintf("metric: point %d has dim %d, want %d", i, len(p), dim))
		}
		pts[i] = append([]float64(nil), p...)
	}
	return &Euclidean{pts: pts, dim: dim}
}

func (e *Euclidean) Len() int     { return len(e.pts) }
func (e *Euclidean) Name() string { return fmt.Sprintf("euclidean-%dd", e.dim) }

// Point returns the coordinates of point i (not a copy; do not mutate).
func (e *Euclidean) Point(i int) []float64 { return e.pts[i] }

func (e *Euclidean) Distance(i, j int) float64 {
	var sum float64
	a, b := e.pts[i], e.pts[j]
	for k := range a {
		d := a[k] - b[k]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Uniform is the uniform metric: every pair of distinct points is at the same
// distance d. Useful as the simplest non-trivial space and as a degenerate
// stress case (d = 0 collapses to a single point).
type Uniform struct {
	n int
	d float64
}

// NewUniform returns a uniform metric over n points with pairwise distance d.
func NewUniform(n int, d float64) *Uniform {
	if d < 0 {
		panic("metric: negative uniform distance")
	}
	return &Uniform{n: n, d: d}
}

func (u *Uniform) Len() int     { return u.n }
func (u *Uniform) Name() string { return "uniform" }

func (u *Uniform) Distance(i, j int) float64 {
	if i == j {
		return 0
	}
	return u.d
}

// SinglePoint returns the one-point metric space used by the Theorem 2 lower
// bound game.
func SinglePoint() Space { return NewUniform(1, 0) }

// Star is a star metric: point 0 is the hub and point i > 0 sits at the end
// of an arm of length arm[i-1].
type Star struct {
	arm []float64
}

// NewStar builds a star with the given arm lengths (one leaf per arm).
func NewStar(arms []float64) *Star {
	for _, a := range arms {
		if a < 0 {
			panic("metric: negative arm length")
		}
	}
	arm := make([]float64, len(arms))
	copy(arm, arms)
	return &Star{arm: arm}
}

func (s *Star) Len() int     { return len(s.arm) + 1 }
func (s *Star) Name() string { return "star" }

func (s *Star) Distance(i, j int) float64 {
	if i == j {
		return 0
	}
	if i == 0 {
		return s.arm[j-1]
	}
	if j == 0 {
		return s.arm[i-1]
	}
	return s.arm[i-1] + s.arm[j-1]
}

// Matrix is an explicit distance matrix. NewMatrix validates nothing beyond
// shape; use Check in tests to assert metric axioms.
type Matrix struct {
	d [][]float64
}

// NewMatrix wraps a square distance matrix (copied).
func NewMatrix(d [][]float64) *Matrix {
	n := len(d)
	cp := make([][]float64, n)
	for i, row := range d {
		if len(row) != n {
			panic("metric: distance matrix is not square")
		}
		cp[i] = append([]float64(nil), row...)
	}
	return &Matrix{d: cp}
}

func (m *Matrix) Len() int                  { return len(m.d) }
func (m *Matrix) Name() string              { return "matrix" }
func (m *Matrix) Distance(i, j int) float64 { return m.d[i][j] }

// Graph is the shortest-path metric of a weighted undirected graph. Build it
// with NewGraphBuilder; distances are all-pairs shortest paths computed with
// Dijkstra per source.
type Graph struct {
	dist [][]float64
}

func (g *Graph) Len() int                  { return len(g.dist) }
func (g *Graph) Name() string              { return "graph" }
func (g *Graph) Distance(i, j int) float64 { return g.dist[i][j] }

// GraphBuilder accumulates weighted undirected edges.
type GraphBuilder struct {
	n   int
	adj [][]edge
}

type edge struct {
	to int
	w  float64
}

// NewGraphBuilder starts a graph over n nodes and no edges.
func NewGraphBuilder(n int) *GraphBuilder {
	return &GraphBuilder{n: n, adj: make([][]edge, n)}
}

// AddEdge adds an undirected edge {a,b} of weight w ≥ 0.
func (b *GraphBuilder) AddEdge(a, bb int, w float64) {
	if a < 0 || a >= b.n || bb < 0 || bb >= b.n {
		panic("metric: edge endpoint out of range")
	}
	if w < 0 {
		panic("metric: negative edge weight")
	}
	b.adj[a] = append(b.adj[a], edge{to: bb, w: w})
	b.adj[bb] = append(b.adj[bb], edge{to: a, w: w})
}

// Build computes the all-pairs shortest-path closure. Unreachable pairs get
// +Inf, which violates the finite-metric assumption; Build returns an error
// if the graph is disconnected.
func (b *GraphBuilder) Build() (*Graph, error) {
	dist := make([][]float64, b.n)
	for src := 0; src < b.n; src++ {
		dist[src] = b.dijkstra(src)
		for _, d := range dist[src] {
			if math.IsInf(d, 1) {
				return nil, fmt.Errorf("metric: graph is disconnected (unreachable from %d)", src)
			}
		}
	}
	return &Graph{dist: dist}, nil
}

func (b *GraphBuilder) dijkstra(src int) []float64 {
	dist := make([]float64, b.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{node: src, d: 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distItem)
		if top.d > dist[top.node] {
			continue
		}
		for _, e := range b.adj[top.node] {
			if nd := top.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, distItem{node: e.to, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	node int
	d    float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Nearest returns the point of candidates closest to from, together with the
// distance. candidates must be non-empty; otherwise Nearest returns (-1, +Inf).
func Nearest(s Space, from int, candidates []int) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for _, c := range candidates {
		if d := s.Distance(from, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}
