package metric

import "fmt"

// Tree is the shortest-path metric of a weighted rooted tree — the classic
// hierarchical substrate of facility-location theory (cf. the hierarchical
// cost functions of Svitkina–Tardos referenced in the paper's related work).
// Distances are computed via lowest common ancestors on depth arrays.
type Tree struct {
	parent []int
	depthW []float64 // weighted depth from the root
	depth  []int     // unweighted depth (for LCA stepping)
}

// NewTree builds a tree metric from parent pointers: parent[0] must be -1
// (the root) and parent[i] < i for i > 0 (nodes in topological order);
// weight[i] is the length of the edge to the parent (weight[0] ignored).
func NewTree(parent []int, weight []float64) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, fmt.Errorf("metric: empty tree")
	}
	if len(weight) != n {
		return nil, fmt.Errorf("metric: %d weights for %d nodes", len(weight), n)
	}
	if parent[0] != -1 {
		return nil, fmt.Errorf("metric: node 0 must be the root (parent -1)")
	}
	t := &Tree{
		parent: append([]int(nil), parent...),
		depthW: make([]float64, n),
		depth:  make([]int, n),
	}
	for i := 1; i < n; i++ {
		if parent[i] < 0 || parent[i] >= i {
			return nil, fmt.Errorf("metric: parent[%d] = %d must be in [0, %d)", i, parent[i], i)
		}
		if weight[i] < 0 {
			return nil, fmt.Errorf("metric: negative edge weight at node %d", i)
		}
		t.depthW[i] = t.depthW[parent[i]] + weight[i]
		t.depth[i] = t.depth[parent[i]] + 1
	}
	return t, nil
}

func (t *Tree) Len() int     { return len(t.parent) }
func (t *Tree) Name() string { return "tree" }

// Distance walks both nodes up to their lowest common ancestor.
func (t *Tree) Distance(i, j int) float64 {
	if i == j {
		return 0
	}
	di, dj := t.depthW[i], t.depthW[j]
	for t.depth[i] > t.depth[j] {
		i = t.parent[i]
	}
	for t.depth[j] > t.depth[i] {
		j = t.parent[j]
	}
	for i != j {
		i = t.parent[i]
		j = t.parent[j]
	}
	return di + dj - 2*t.depthW[i]
}

// LCA returns the lowest common ancestor of i and j.
func (t *Tree) LCA(i, j int) int {
	for t.depth[i] > t.depth[j] {
		i = t.parent[i]
	}
	for t.depth[j] > t.depth[i] {
		j = t.parent[j]
	}
	for i != j {
		i = t.parent[i]
		j = t.parent[j]
	}
	return i
}
