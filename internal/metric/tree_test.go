package metric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTreeKnownDistances(t *testing.T) {
	//       0
	//      / \
	//     1   2      edge weights: 1→0: 2, 2→0: 3, 3→1: 1, 4→1: 4
	//    / \
	//   3   4
	tr, err := NewTree([]int{-1, 0, 0, 1, 1}, []float64{0, 2, 3, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 0, 0},
		{0, 1, 2},
		{0, 3, 3},
		{3, 4, 5},
		{3, 2, 6},
		{4, 2, 9},
	}
	for _, c := range cases {
		if got := tr.Distance(c.i, c.j); got != c.want {
			t.Errorf("d(%d,%d) = %g, want %g", c.i, c.j, got, c.want)
		}
		if got := tr.Distance(c.j, c.i); got != c.want {
			t.Errorf("d(%d,%d) asymmetric", c.j, c.i)
		}
	}
	if lca := tr.LCA(3, 4); lca != 1 {
		t.Errorf("LCA(3,4) = %d, want 1", lca)
	}
	if lca := tr.LCA(3, 2); lca != 0 {
		t.Errorf("LCA(3,2) = %d, want 0", lca)
	}
	if err := Check(tr); err != nil {
		t.Error(err)
	}
}

func TestTreeValidation(t *testing.T) {
	if _, err := NewTree(nil, nil); err == nil {
		t.Error("empty tree accepted")
	}
	if _, err := NewTree([]int{0}, []float64{0}); err == nil {
		t.Error("non-root node 0 accepted")
	}
	if _, err := NewTree([]int{-1, 2, 1}, []float64{0, 1, 1}); err == nil {
		t.Error("forward parent pointer accepted")
	}
	if _, err := NewTree([]int{-1, 0}, []float64{0, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewTree([]int{-1, 0}, []float64{0}); err == nil {
		t.Error("weight length mismatch accepted")
	}
}

// Property: random trees always satisfy the metric axioms, and tree
// distances match the equivalent graph's shortest paths.
func TestQuickTreeIsMetricAndMatchesGraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		parent := make([]int, n)
		weight := make([]float64, n)
		parent[0] = -1
		gb := NewGraphBuilder(n)
		for i := 1; i < n; i++ {
			parent[i] = rng.Intn(i)
			weight[i] = rng.Float64() * 5
			gb.AddEdge(i, parent[i], weight[i])
		}
		tr, err := NewTree(parent, weight)
		if err != nil {
			return false
		}
		if Check(tr) != nil {
			return false
		}
		g, err := gb.Build()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if diff := tr.Distance(i, j) - g.Distance(i, j); diff > 1e-9 || diff < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTreeDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1000
	parent := make([]int, n)
	weight := make([]float64, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
		weight[i] = rng.Float64()
	}
	tr, err := NewTree(parent, weight)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Distance(i%n, (i*31)%n)
	}
}
