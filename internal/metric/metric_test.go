package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLineDistances(t *testing.T) {
	l := NewLine([]float64{0, 1, 3.5, -2})
	if got := l.Distance(0, 2); got != 3.5 {
		t.Errorf("d(0,2) = %g", got)
	}
	if got := l.Distance(3, 1); got != 3 {
		t.Errorf("d(3,1) = %g", got)
	}
	if err := Check(l); err != nil {
		t.Error(err)
	}
	if l.Name() != "line" || l.Len() != 4 {
		t.Errorf("Name/Len = %q/%d", l.Name(), l.Len())
	}
}

func TestNewGrid(t *testing.T) {
	g := NewGrid(5, 8)
	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.Distance(0, 4); math.Abs(got-8) > 1e-12 {
		t.Errorf("span = %g, want 8", got)
	}
	if got := g.Distance(1, 2); math.Abs(got-2) > 1e-12 {
		t.Errorf("step = %g, want 2", got)
	}
	one := NewGrid(1, 8)
	if one.Len() != 1 || one.Position(0) != 0 {
		t.Error("single-point grid wrong")
	}
}

func TestEuclidean(t *testing.T) {
	e := NewEuclidean([][]float64{{0, 0}, {3, 4}, {3, 0}})
	if got := e.Distance(0, 1); math.Abs(got-5) > 1e-12 {
		t.Errorf("d(0,1) = %g, want 5", got)
	}
	if err := Check(e); err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched dims must panic")
		}
	}()
	NewEuclidean([][]float64{{0, 0}, {1}})
}

func TestUniformAndSinglePoint(t *testing.T) {
	u := NewUniform(4, 2.5)
	if u.Distance(1, 3) != 2.5 || u.Distance(2, 2) != 0 {
		t.Error("uniform distances wrong")
	}
	if err := Check(u); err != nil {
		t.Error(err)
	}
	sp := SinglePoint()
	if sp.Len() != 1 || sp.Distance(0, 0) != 0 {
		t.Error("single point space wrong")
	}
}

func TestStar(t *testing.T) {
	s := NewStar([]float64{1, 2, 4})
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Distance(0, 2) != 2 {
		t.Errorf("hub->leaf = %g", s.Distance(0, 2))
	}
	if s.Distance(1, 3) != 5 {
		t.Errorf("leaf->leaf = %g", s.Distance(1, 3))
	}
	if err := Check(s); err != nil {
		t.Error(err)
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix([][]float64{
		{0, 1, 2},
		{1, 0, 1},
		{2, 1, 0},
	})
	if err := Check(m); err != nil {
		t.Error(err)
	}
	if m.Distance(0, 2) != 2 {
		t.Errorf("d(0,2) = %g", m.Distance(0, 2))
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	asym := NewMatrix([][]float64{{0, 1}, {2, 0}})
	if err := Check(asym); err == nil {
		t.Error("Check accepted an asymmetric matrix")
	}
	neg := NewMatrix([][]float64{{0, -1}, {-1, 0}})
	if err := Check(neg); err == nil {
		t.Error("Check accepted negative distances")
	}
	diag := NewMatrix([][]float64{{1}})
	if err := Check(diag); err == nil {
		t.Error("Check accepted nonzero diagonal")
	}
	tri := NewMatrix([][]float64{
		{0, 10, 1},
		{10, 0, 1},
		{1, 1, 0},
	})
	if err := Check(tri); err == nil {
		t.Error("Check accepted a triangle violation")
	}
}

func TestGraphShortestPaths(t *testing.T) {
	b := NewGraphBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(0, 3, 10)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Distance(0, 3); got != 3 {
		t.Errorf("d(0,3) = %g, want 3 (via path)", got)
	}
	if err := Check(g); err != nil {
		t.Error(err)
	}
}

func TestGraphDisconnected(t *testing.T) {
	b := NewGraphBuilder(3)
	b.AddEdge(0, 1, 1)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted a disconnected graph")
	}
}

func TestNearest(t *testing.T) {
	l := NewLine([]float64{0, 10, 4, 7})
	p, d := Nearest(l, 0, []int{1, 2, 3})
	if p != 2 || d != 4 {
		t.Errorf("Nearest = (%d, %g), want (2, 4)", p, d)
	}
	p, d = Nearest(l, 0, nil)
	if p != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest(empty) = (%d, %g)", p, d)
	}
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if err := Check(RandomLine(rng, 12, 100)); err != nil {
		t.Errorf("RandomLine: %v", err)
	}
	if err := Check(RandomEuclidean(rng, 12, 3, 10)); err != nil {
		t.Errorf("RandomEuclidean: %v", err)
	}
	if err := Check(RandomGraph(rng, 12, 10, 5)); err != nil {
		t.Errorf("RandomGraph: %v", err)
	}
	space, centers := ClusteredEuclidean(rng, 30, 3, 100, 1)
	if space.Len() != 30 || len(centers) != 3 {
		t.Fatalf("ClusteredEuclidean sizes: %d points, %d centers", space.Len(), len(centers))
	}
	if err := Check(space); err != nil {
		t.Errorf("ClusteredEuclidean: %v", err)
	}
}

// Property: random graphs (shortest-path closures) always satisfy the
// triangle inequality and symmetry.
func TestQuickGraphIsMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGraph(rng, 8, 6, 10)
		return Check(g) == nil
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: line metrics are metrics for arbitrary coordinates.
func TestQuickLineIsMetric(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true // skip degenerate float inputs
			}
		}
		return Check(NewLine([]float64{a, b, c, d})) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkGraphBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = RandomGraph(rng, 100, 200, 10)
	}
}

func BenchmarkEuclideanDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	e := RandomEuclidean(rng, 1000, 2, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Distance(i%1000, (i*7)%1000)
	}
}
