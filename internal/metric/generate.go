package metric

import "math/rand"

// RandomLine returns a line metric of n points drawn uniformly from
// [0, width].
func RandomLine(rng *rand.Rand, n int, width float64) *Line {
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = rng.Float64() * width
	}
	return NewLine(pos)
}

// RandomEuclidean returns n points drawn uniformly from [0, width]^dim.
func RandomEuclidean(rng *rand.Rand, n, dim int, width float64) *Euclidean {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for k := range p {
			p[k] = rng.Float64() * width
		}
		pts[i] = p
	}
	return NewEuclidean(pts)
}

// ClusteredEuclidean returns n 2-d points grouped around k cluster centers
// placed uniformly in [0, width]^2, with per-cluster Gaussian spread. The
// returned center indices give the point closest to each cluster center
// (centers themselves are included as the first k points).
func ClusteredEuclidean(rng *rand.Rand, n, k int, width, spread float64) (space *Euclidean, centers []int) {
	if k < 1 {
		panic("metric: need at least one cluster")
	}
	if n < k {
		n = k
	}
	pts := make([][]float64, 0, n)
	centerPos := make([][]float64, k)
	for c := 0; c < k; c++ {
		centerPos[c] = []float64{rng.Float64() * width, rng.Float64() * width}
		pts = append(pts, centerPos[c])
	}
	for i := k; i < n; i++ {
		c := rng.Intn(k)
		pts = append(pts, []float64{
			centerPos[c][0] + rng.NormFloat64()*spread,
			centerPos[c][1] + rng.NormFloat64()*spread,
		})
	}
	centers = make([]int, k)
	for c := range centers {
		centers[c] = c
	}
	return NewEuclidean(pts), centers
}

// RandomGraph returns the shortest-path metric of a connected random graph:
// a Hamiltonian path (guaranteeing connectivity) plus extra random edges,
// with weights uniform in (0, maxW].
func RandomGraph(rng *rand.Rand, n, extraEdges int, maxW float64) *Graph {
	b := NewGraphBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(perm[i-1], perm[i], rng.Float64()*maxW+1e-9)
	}
	for e := 0; e < extraEdges; e++ {
		a, bb := rng.Intn(n), rng.Intn(n)
		if a == bb {
			continue
		}
		b.AddEdge(a, bb, rng.Float64()*maxW+1e-9)
	}
	g, err := b.Build()
	if err != nil {
		// Unreachable: the Hamiltonian path keeps the graph connected.
		panic(err)
	}
	return g
}
