// Package obs is the observability layer for the serving stack: op tracing
// with per-stage latency stamps, a lock-free flight recorder, Prometheus text
// exposition, Go runtime stats, and structured event logging.
//
// # Determinism contract
//
// obs is the ONE package in the deterministic set that may read the wall and
// monotonic clocks (omflp-lint's detsource analyzer allowlists it
// package-wide). The discipline that makes this safe: nothing in obs ever
// feeds back into algorithm state. Trace ids, stage stamps, histograms and
// flight records are observation-only — golden snapshots stay byte-identical
// with tracing enabled, which the engine test suite pins.
//
// # Stages
//
// A traced arrival is stamped at five boundaries, yielding five monotonic
// stage durations plus a total:
//
//	decode   parsing the wire form (TCP frame / HTTP body) into an op
//	enqueue  Serve admission: waiting for space in the shard mailbox
//	dequeue  sitting in the mailbox until the shard goroutine picks it up
//	serve    the algorithm's Serve call itself
//	ack      post-serve bookkeeping until the record is published
//	         (cost accounting, seal-triggered state marshals, ring write)
//
// total = decode-start → publish. Stage stamps use a process-local monotonic
// clock, so they are comparable within one process only; flight records add
// a wall-clock publish stamp for cross-node ordering.
//
// # Sampling
//
// Tracing is sampled 1-in-N (Tracer): a sampled-out arrival carries a nil
// *OpRecord and allocates nothing — the hot path cost when sampled out is
// one atomic increment at the decode site and nil checks downstream. A
// sampled arrival allocates one OpRecord and one FlightRecord.
package obs

import (
	"strconv"
	"sync/atomic"
	"time"
)

// Stage indices into an op's stage-duration vector.
const (
	StageDecode = iota
	StageEnqueue
	StageDequeue
	StageServe
	StageAck
	// NumStages is the number of real stages; stage vectors reserve one
	// extra slot (index NumStages) for the decode-start → publish total.
	NumStages
)

// StageNames names the stages, indexed by the Stage constants. Index
// NumStages names the synthetic "total" series.
var StageNames = [NumStages + 1]string{"decode", "enqueue", "dequeue", "serve", "ack", "total"}

// epoch anchors the process-local monotonic clock used for stage stamps.
var epoch = time.Now()

// Mono returns monotonic nanoseconds since process start. Stamps from
// different processes are not comparable.
func Mono() int64 { return int64(time.Since(epoch)) }

// tracerSalt distinguishes trace-id namespaces when several Tracers exist in
// one process (tests, in-process clusters).
var tracerSalt atomic.Uint64

// Tracer decides which arrivals get traced and mints their ids. A nil
// *Tracer is valid and means tracing is off — every method short-circuits.
type Tracer struct {
	every uint64
	ctr   atomic.Uint64
	base  uint64
}

// NewTracer returns a tracer sampling 1 in every `sample` arrivals, or nil
// (tracing off) when sample <= 0. sample == 1 traces everything.
func NewTracer(sample int) *Tracer {
	if sample <= 0 {
		return nil
	}
	return &Tracer{
		every: uint64(sample),
		base:  mix64(uint64(time.Now().UnixNano()) + tracerSalt.Add(1)<<32),
	}
}

// Enabled reports whether tracing is on.
func (t *Tracer) Enabled() bool { return t != nil }

// Sample returns a fresh nonzero trace id for 1 in every N calls and 0 for
// the rest. Safe for concurrent use; costs one atomic increment when
// sampled out.
func (t *Tracer) Sample() uint64 {
	if t == nil {
		return 0
	}
	n := t.ctr.Add(1)
	if (n-1)%t.every != 0 {
		return 0
	}
	id := mix64(t.base ^ n)
	if id == 0 {
		id = 1
	}
	return id
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler, good
// enough to make counter-derived trace ids look uncorrelated.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TraceIDString renders a trace id the way every surface shows it: 16 hex
// digits (the X-Omflp-Trace header form).
func TraceIDString(id uint64) string {
	const hexdig = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdig[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseTraceID parses the 16-hex-digit header form; 0 means absent/invalid.
func ParseTraceID(s string) uint64 {
	if len(s) != 16 {
		return 0
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return v
}

// OpRecord carries one sampled arrival's trace context from the decode site
// through admission to the shard goroutine. Lifecycle and ownership:
//
//  1. the front end calls NewOpRecord at decode start, then MarkDecoded;
//  2. the engine's admission path calls MarkAdmitted after the mailbox
//     send returns (admitNs is atomic: the shard goroutine may already be
//     reading the record);
//  3. the shard goroutine calls MarkDequeued, MarkServed, and finally
//     Recorder.Publish — everything after step 2 runs on the shard.
//
// All non-atomic fields written before the mailbox send are safely
// published to the shard by the channel's happens-before edge.
type OpRecord struct {
	TraceID uint64
	Tenant  string

	startNs int64 // Mono at decode start
	lastNs  int64 // Mono at the most recent stamp (owned by current stage owner)
	admitNs atomic.Int64

	stages [NumStages]int64
}

// NewOpRecord starts a trace at decode time. id must be nonzero (from
// Tracer.Sample or a propagated wire id).
func NewOpRecord(id uint64, tenant string) *OpRecord {
	return NewOpRecordAt(id, tenant, Mono())
}

// NewOpRecordAt is NewOpRecord with an explicit decode-start stamp (a Mono
// value), for decode sites that only learn the sampling decision after
// parsing — HTTP batch bodies stamp once before the decode and share the
// stamp across the batch's sampled arrivals.
func NewOpRecordAt(id uint64, tenant string, startNs int64) *OpRecord {
	return &OpRecord{TraceID: id, Tenant: tenant, startNs: startNs, lastNs: startNs}
}

// MarkDecoded ends the decode stage. When the decode work covered a batch of
// n arrivals (HTTP batch bodies), pass n > 1 to attribute an even share to
// this record; n <= 1 attributes the full duration.
func (r *OpRecord) MarkDecoded(n int) {
	now := Mono()
	d := now - r.startNs
	if n > 1 {
		d /= int64(n)
	}
	r.stages[StageDecode] = d
	r.lastNs = now
}

// MarkAdmitted stamps the moment the mailbox send returned. Called by the
// sender, possibly concurrently with the shard reading the record, hence
// the atomic.
func (r *OpRecord) MarkAdmitted() { r.admitNs.Store(Mono()) }

// MarkDequeued runs on the shard goroutine when it picks the op up, closing
// the enqueue and dequeue stages. If the sender's admit stamp is not yet
// visible (the shard won the race), the whole wait is attributed to
// dequeue — a best-effort split documented in the package comment.
func (r *OpRecord) MarkDequeued() {
	now := Mono()
	admit := r.admitNs.Load()
	if admit < r.lastNs {
		admit = r.lastNs
	}
	if admit > now {
		admit = now
	}
	r.stages[StageEnqueue] = admit - r.lastNs
	r.stages[StageDequeue] = now - admit
	r.lastNs = now
}

// MarkServed ends the serve stage (the algorithm's Serve call).
func (r *OpRecord) MarkServed() {
	now := Mono()
	r.stages[StageServe] = now - r.lastNs
	r.lastNs = now
}

// finish closes the ack stage and returns the stage vector plus total.
func (r *OpRecord) finish() (stages [NumStages]int64, total int64) {
	now := Mono()
	r.stages[StageAck] = now - r.lastNs
	r.lastNs = now
	return r.stages, now - r.startNs
}

// Reject closes a record for an op that never reached a shard (admission
// failure): only decode and total carry time, Shard is -1.
func (r *OpRecord) Reject(outcome string) *FlightRecord {
	now := Mono()
	return &FlightRecord{
		TraceID:      TraceIDString(r.TraceID),
		Tenant:       r.Tenant,
		WallUnixNano: time.Now().UnixNano(),
		Shard:        -1,
		Outcome:      outcome,
		DecodeMicros: float64(r.stages[StageDecode]) / 1e3,
		TotalMicros:  float64(now-r.startNs) / 1e3,
	}
}

// Recorder aggregates published op records for one shard: per-stage
// histograms plus a flight ring. Histogram writes come from the single
// shard goroutine; readers (metrics scrapes, flight dumps) are concurrent.
type Recorder struct {
	hists   [NumStages + 1]Hist // indexed by Stage constants; last = total
	ring    *Flight
	sampled atomic.Int64
}

// NewRecorder returns a recorder whose flight ring holds the last n records.
func NewRecorder(n int) *Recorder {
	return &Recorder{ring: NewFlight(n)}
}

// Publish closes the record (ack stage), folds its stages into the
// histograms and appends it to the flight ring. shard and outcome annotate
// the flight record; outcome "" means "ok".
func (rc *Recorder) Publish(r *OpRecord, shard int, outcome string) {
	stages, total := r.finish()
	for i, d := range stages {
		rc.hists[i].RecordNs(d)
	}
	rc.hists[NumStages].RecordNs(total)
	rc.sampled.Add(1)
	if outcome == "" {
		outcome = "ok"
	}
	rc.ring.Put(&FlightRecord{
		TraceID:       TraceIDString(r.TraceID),
		Tenant:        r.Tenant,
		WallUnixNano:  time.Now().UnixNano(),
		Shard:         shard,
		Outcome:       outcome,
		DecodeMicros:  float64(stages[StageDecode]) / 1e3,
		EnqueueMicros: float64(stages[StageEnqueue]) / 1e3,
		DequeueMicros: float64(stages[StageDequeue]) / 1e3,
		ServeMicros:   float64(stages[StageServe]) / 1e3,
		AckMicros:     float64(stages[StageAck]) / 1e3,
		TotalMicros:   float64(total) / 1e3,
	})
}

// Sampled returns how many records this recorder has published.
func (rc *Recorder) Sampled() int64 { return rc.sampled.Load() }

// Ring exposes the recorder's flight ring for dumps.
func (rc *Recorder) Ring() *Flight { return rc.ring }

// AddTo accumulates this recorder's stage histograms into sums (one bucket
// vector per stage plus the total series) and returns the published count.
func (rc *Recorder) AddTo(sums *[NumStages + 1][HistBuckets]int64) int64 {
	for i := range rc.hists {
		rc.hists[i].AddTo(&sums[i])
	}
	return rc.sampled.Load()
}

// StageBreakdown is the JSON form of merged per-stage histograms, exposed
// under /v1/metrics as "stages" when tracing is on. Quantiles describe
// sampled arrivals only.
type StageBreakdown struct {
	// Sampled counts the traced arrivals the breakdown describes.
	Sampled int64       `json:"sampled"`
	Decode  HistSummary `json:"decode"`
	Enqueue HistSummary `json:"enqueue"`
	Dequeue HistSummary `json:"dequeue"`
	Serve   HistSummary `json:"serve"`
	Ack     HistSummary `json:"ack"`
	// Total is decode-start → record publish: the server-side figure to
	// reconcile against client-observed latency tails.
	Total HistSummary `json:"total"`
}

// NewStageBreakdown summarizes merged stage bucket vectors.
func NewStageBreakdown(sums *[NumStages + 1][HistBuckets]int64, sampled int64) *StageBreakdown {
	return &StageBreakdown{
		Sampled: sampled,
		Decode:  Summarize(sums[StageDecode]),
		Enqueue: Summarize(sums[StageEnqueue]),
		Dequeue: Summarize(sums[StageDequeue]),
		Serve:   Summarize(sums[StageServe]),
		Ack:     Summarize(sums[StageAck]),
		Total:   Summarize(sums[NumStages]),
	}
}

// Each visits the stage summaries in wire order (decode, enqueue, dequeue,
// serve, ack, total) — the iteration spine for Prometheus rendering and
// cross-node merging.
func (b *StageBreakdown) Each(fn func(stage string, h HistSummary)) {
	fn(StageNames[StageDecode], b.Decode)
	fn(StageNames[StageEnqueue], b.Enqueue)
	fn(StageNames[StageDequeue], b.Dequeue)
	fn(StageNames[StageServe], b.Serve)
	fn(StageNames[StageAck], b.Ack)
	fn(StageNames[NumStages], b.Total)
}

// MergeStageBreakdowns sums per-node breakdowns (the router's merge path).
// nil entries are skipped; returns nil when nothing contributed.
func MergeStageBreakdowns(parts []*StageBreakdown) *StageBreakdown {
	var sums [NumStages + 1][HistBuckets]int64
	var sampled int64
	any := false
	for _, p := range parts {
		if p == nil {
			continue
		}
		any = true
		sampled += p.Sampled
		p.Decode.addTo(&sums[StageDecode])
		p.Enqueue.addTo(&sums[StageEnqueue])
		p.Dequeue.addTo(&sums[StageDequeue])
		p.Serve.addTo(&sums[StageServe])
		p.Ack.addTo(&sums[StageAck])
		p.Total.addTo(&sums[NumStages])
	}
	if !any {
		return nil
	}
	return NewStageBreakdown(&sums, sampled)
}
