package obs

import "runtime"

// RuntimeStats is the Go runtime health snapshot exposed alongside serving
// metrics: is the process leaking goroutines, how hard is the GC working,
// how big is the heap. Collected per node; never merged across nodes (the
// router reports each node's stats under its own label).
type RuntimeStats struct {
	Goroutines          int     `json:"goroutines"`
	HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes        uint64  `json:"heap_sys_bytes"`
	HeapObjects         uint64  `json:"heap_objects"`
	TotalAllocBytes     uint64  `json:"total_alloc_bytes"`
	NumGC               uint32  `json:"num_gc"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	GCCPUFraction       float64 `json:"gc_cpu_fraction"`
}

// ReadRuntime collects the current runtime stats. It calls
// runtime.ReadMemStats, which briefly stops the world — cheap at scrape
// frequency, not something to put on a per-op path.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:          runtime.NumGoroutine(),
		HeapAllocBytes:      ms.HeapAlloc,
		HeapSysBytes:        ms.HeapSys,
		HeapObjects:         ms.HeapObjects,
		TotalAllocBytes:     ms.TotalAlloc,
		NumGC:               ms.NumGC,
		GCPauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
		GCCPUFraction:       ms.GCCPUFraction,
	}
}

// WriteProm renders the runtime stats as Prometheus series.
func (s RuntimeStats) WriteProm(p *PromWriter, labels ...PromLabel) {
	p.Gauge("omflp_goroutines", "Live goroutines.", float64(s.Goroutines), labels...)
	p.Gauge("omflp_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(s.HeapAllocBytes), labels...)
	p.Gauge("omflp_heap_sys_bytes", "Bytes of heap obtained from the OS.", float64(s.HeapSysBytes), labels...)
	p.Gauge("omflp_heap_objects", "Live heap objects.", float64(s.HeapObjects), labels...)
	p.Counter("omflp_alloc_bytes_total", "Cumulative bytes allocated.", float64(s.TotalAllocBytes), labels...)
	p.Counter("omflp_gc_cycles_total", "Completed GC cycles.", float64(s.NumGC), labels...)
	p.Counter("omflp_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", s.GCPauseTotalSeconds, labels...)
	p.Gauge("omflp_gc_cpu_fraction", "Fraction of CPU spent in GC since start.", s.GCCPUFraction, labels...)
}
