package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTracerSampling(t *testing.T) {
	var off *Tracer
	if off.Enabled() || off.Sample() != 0 {
		t.Fatal("nil tracer must be disabled")
	}
	if NewTracer(0) != nil {
		t.Fatal("sample 0 must disable tracing")
	}

	tr := NewTracer(4)
	ids := 0
	for i := 0; i < 400; i++ {
		if tr.Sample() != 0 {
			ids++
		}
	}
	if ids != 100 {
		t.Fatalf("1-in-4 sampling picked %d of 400", ids)
	}

	all := NewTracer(1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := all.Sample()
		if id == 0 {
			t.Fatal("sample 1 must trace everything")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %x", id)
		}
		seen[id] = true
	}
}

func TestTraceIDStringRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0), 0x0123456789abcdef} {
		s := TraceIDString(id)
		if len(s) != 16 {
			t.Fatalf("TraceIDString(%x) = %q: want 16 hex digits", id, s)
		}
		if got := ParseTraceID(s); got != id {
			t.Fatalf("round trip %x -> %q -> %x", id, s, got)
		}
	}
	for _, bad := range []string{"", "xyz", "123", strings.Repeat("g", 16)} {
		if ParseTraceID(bad) != 0 {
			t.Fatalf("ParseTraceID(%q) should fail", bad)
		}
	}
}

func TestOpRecordStages(t *testing.T) {
	rec := NewOpRecord(42, "tn")
	rec.MarkDecoded(1)
	rec.MarkAdmitted()
	rec.MarkDequeued()
	rec.MarkServed()
	rc := NewRecorder(8)
	rc.Publish(rec, 3, "")
	if rc.Sampled() != 1 {
		t.Fatalf("Sampled = %d", rc.Sampled())
	}
	dump := rc.Ring().Dump()
	if len(dump) != 1 {
		t.Fatalf("dump len = %d", len(dump))
	}
	r := dump[0]
	if r.TraceID != TraceIDString(42) || r.Tenant != "tn" || r.Shard != 3 || r.Outcome != "ok" {
		t.Fatalf("unexpected record: %+v", r)
	}
	if r.TotalMicros < r.ServeMicros {
		t.Fatalf("total %v < serve %v", r.TotalMicros, r.ServeMicros)
	}
	for _, d := range []float64{r.DecodeMicros, r.EnqueueMicros, r.DequeueMicros, r.ServeMicros, r.AckMicros} {
		if d < 0 {
			t.Fatalf("negative stage duration in %+v", r)
		}
	}
	var sums [NumStages + 1][HistBuckets]int64
	if n := rc.AddTo(&sums); n != 1 {
		t.Fatalf("AddTo = %d", n)
	}
	bd := NewStageBreakdown(&sums, 1)
	stages := 0
	bd.Each(func(stage string, h HistSummary) {
		stages++
		if h.Count != 1 {
			t.Fatalf("stage %s count = %d", stage, h.Count)
		}
	})
	if stages != NumStages+1 {
		t.Fatalf("Each visited %d stages", stages)
	}
}

// TestOpRecordAdmitRace covers the shard winning the race with the sender's
// MarkAdmitted: the wait folds into dequeue and nothing goes negative.
func TestOpRecordAdmitRace(t *testing.T) {
	rec := NewOpRecord(7, "tn")
	rec.MarkDecoded(1)
	rec.MarkDequeued() // admit stamp never set
	rec.MarkServed()
	stages, total := rec.finish()
	if stages[StageEnqueue] != 0 {
		t.Fatalf("enqueue = %d, want 0 when admit stamp missing", stages[StageEnqueue])
	}
	for i, d := range stages {
		if d < 0 {
			t.Fatalf("stage %s negative: %d", StageNames[i], d)
		}
	}
	if total < 0 {
		t.Fatal("negative total")
	}
}

func TestFlightWrapAndFilter(t *testing.T) {
	f := NewFlight(8)
	for i := 0; i < 20; i++ {
		f.Put(&FlightRecord{TraceID: TraceIDString(uint64(i + 1)), Tenant: fmt.Sprintf("t%d", i%2), WallUnixNano: int64(i)})
	}
	dump := f.Dump()
	if len(dump) != 8 {
		t.Fatalf("dump len = %d, want ring size 8", len(dump))
	}
	for i, r := range dump {
		if r.WallUnixNano != int64(12+i) {
			t.Fatalf("dump[%d].Wall = %d, want %d (oldest-first tail)", i, r.WallUnixNano, 12+i)
		}
	}
	only := FilterFlight(dump, "t1", 2)
	if len(only) != 2 {
		t.Fatalf("filtered len = %d", len(only))
	}
	for _, r := range only {
		if r.Tenant != "t1" {
			t.Fatalf("filter leaked %+v", r)
		}
	}
	if only[0].WallUnixNano >= only[1].WallUnixNano {
		t.Fatal("filter broke oldest-first order")
	}
}

// TestFlightConcurrent hammers the ring from many writers while dumping —
// run under -race this proves the lock-free claim.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Put(&FlightRecord{TraceID: TraceIDString(uint64(w*1000 + i + 1)), WallUnixNano: int64(i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, r := range f.Dump() {
				if r.TraceID == "" {
					t.Error("torn record")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := len(f.Dump()); got != 64 {
		t.Fatalf("final dump len = %d", got)
	}
}
