package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestPromWriterFormat(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Gauge("omflp_tenants", "Registered tenants.", 3)
	p.Gauge("omflp_tenants", "Registered tenants.", 5, PromLabel{"node", "127.0.0.1:9001"})
	p.Counter("omflp_served_total", "Arrivals served.", 12345)
	var h Hist
	for _, ns := range []int64{900, 1500, 1500, 70_000} {
		h.RecordNs(ns)
	}
	var sum [HistBuckets]int64
	h.AddTo(&sum)
	p.Histogram("omflp_serve_latency_seconds", "Serve latency.", Summarize(sum), PromLabel{"stage", `odd"label\`})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if n := strings.Count(out, "# TYPE omflp_tenants gauge"); n != 1 {
		t.Fatalf("TYPE omflp_tenants emitted %d times:\n%s", n, out)
	}
	for _, want := range []string{
		"omflp_tenants 3\n",
		`omflp_tenants{node="127.0.0.1:9001"} 5` + "\n",
		"# TYPE omflp_served_total counter",
		"omflp_served_total 12345\n",
		"# TYPE omflp_serve_latency_seconds histogram",
		`odd\"label\\`,
		"omflp_serve_latency_seconds_count{stage=",
		"omflp_serve_latency_seconds_sum{stage=",
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The exposition-format invariants CI's validator also checks:
	// cumulative non-decreasing buckets ending at +Inf == _count.
	var lastCum float64 = -1
	var infCum, count float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "omflp_serve_latency_seconds_bucket") {
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatalf("bad sample line %q: %v", line, err)
			}
			if v < lastCum {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			lastCum = v
			if strings.Contains(line, `le="+Inf"`) {
				infCum = v
			}
		}
		if strings.HasPrefix(line, "omflp_serve_latency_seconds_count") {
			count, _ = strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		}
	}
	if infCum != 4 || count != 4 {
		t.Fatalf("+Inf bucket %v and _count %v must both equal 4", infCum, count)
	}
}

func TestPromWriterEmptyHistogram(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Histogram("omflp_stage_latency_seconds", "Stage latency.", HistSummary{}, PromLabel{"stage", "decode"})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`omflp_stage_latency_seconds_bucket{stage="decode",le="+Inf"} 0`,
		`omflp_stage_latency_seconds_count{stage="decode"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
