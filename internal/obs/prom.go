package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// PromLabel is one name="value" pair on a Prometheus series.
type PromLabel struct {
	Name, Value string
}

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4). It is a hand-rolled writer — the repo takes no
// dependencies — emitting # HELP and # TYPE once per metric name even when
// the same metric is written repeatedly with different label sets (the
// router's per-node merge). Errors latch; check Err after the last write.
type PromWriter struct {
	w     *bufio.Writer
	typed map[string]bool
	err   error
}

// NewPromWriter wraps w. Call Flush when done.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w), typed: map[string]bool{}}
}

// Gauge writes one gauge sample.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...PromLabel) {
	p.sample(name, help, "gauge", name, labels, v)
}

// Counter writes one counter sample. By Prometheus convention the name
// should end in _total.
func (p *PromWriter) Counter(name, help string, v float64, labels ...PromLabel) {
	p.sample(name, help, "counter", name, labels, v)
}

// Histogram renders a HistSummary as a native Prometheus histogram in
// seconds: cumulative _bucket{le="..."} series over the power-of-two
// boundaries (only the occupied range is emitted, plus +Inf), _count, and
// _sum. The histogram stores no exact sum, so _sum is estimated from
// geometric bucket midpoints — documented in the HELP line.
func (p *PromWriter) Histogram(name, help string, h HistSummary, labels ...PromLabel) {
	p.header(name, help+" (seconds; _sum estimated from power-of-two bucket midpoints)", "histogram")
	sum := h.Bucketized()
	lo, hi := -1, -1
	for b, c := range sum {
		if c != 0 {
			if lo < 0 {
				lo = b
			}
			hi = b
		}
	}
	var cum int64
	var est float64
	buf := make([]PromLabel, 0, len(labels)+1)
	if lo >= 0 {
		for b := lo; b <= hi; b++ {
			cum += sum[b]
			if sum[b] != 0 && b > 0 {
				est += float64(sum[b]) * 1.5 * float64(int64(1)<<uint(b-1))
			}
			le := strconv.FormatFloat(float64(BucketUpperNs(b))/1e9, 'g', -1, 64)
			if b == HistBuckets-1 {
				le = "+Inf"
			}
			buf = append(buf[:0], labels...)
			buf = append(buf, PromLabel{"le", le})
			p.line(name+"_bucket", buf, float64(cum))
		}
	}
	if hi != HistBuckets-1 {
		buf = append(buf[:0], labels...)
		buf = append(buf, PromLabel{"le", "+Inf"})
		p.line(name+"_bucket", buf, float64(cum))
	}
	p.line(name+"_sum", labels, est/1e9)
	p.line(name+"_count", labels, float64(h.Count))
}

// Flush drains the buffer and returns the first error encountered.
func (p *PromWriter) Flush() error {
	if p.err == nil {
		p.err = p.w.Flush()
	}
	return p.err
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) sample(name, help, typ, series string, labels []PromLabel, v float64) {
	p.header(name, help, typ)
	p.line(series, labels, v)
}

// header emits # HELP / # TYPE once per metric name.
func (p *PromWriter) header(name, help, typ string) {
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	p.ws("# HELP ")
	p.ws(name)
	p.ws(" ")
	p.ws(escapeHelp(help))
	p.ws("\n# TYPE ")
	p.ws(name)
	p.ws(" ")
	p.ws(typ)
	p.ws("\n")
}

func (p *PromWriter) line(series string, labels []PromLabel, v float64) {
	p.ws(series)
	if len(labels) > 0 {
		p.ws("{")
		for i, l := range labels {
			if i > 0 {
				p.ws(",")
			}
			p.ws(l.Name)
			p.ws(`="`)
			p.ws(escapeLabel(l.Value))
			p.ws(`"`)
		}
		p.ws("}")
	}
	p.ws(" ")
	p.ws(strconv.FormatFloat(v, 'g', -1, 64))
	p.ws("\n")
}

func (p *PromWriter) ws(s string) {
	if p.err != nil {
		return
	}
	_, p.err = p.w.WriteString(s)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
