package obs

import (
	"sort"
	"sync/atomic"
)

// FlightRecord is one completed (or rejected) op as the flight recorder
// remembers it. Stage durations are in microseconds; WallUnixNano is the
// publish instant on the wall clock, the only stamp comparable across
// nodes. Outcome is "ok" or a machine error code (the TCP result codes:
// "unknown_tenant", "invalid_request", ...). Rejected ops never reach a
// shard, so Shard is -1 and only Decode/Total carry time.
type FlightRecord struct {
	TraceID       string  `json:"trace_id"`
	Tenant        string  `json:"tenant"`
	WallUnixNano  int64   `json:"wall_unix_nano"`
	Shard         int     `json:"shard"`
	Outcome       string  `json:"outcome"`
	DecodeMicros  float64 `json:"decode_us"`
	EnqueueMicros float64 `json:"enqueue_us"`
	DequeueMicros float64 `json:"dequeue_us"`
	ServeMicros   float64 `json:"serve_us"`
	AckMicros     float64 `json:"ack_us"`
	TotalMicros   float64 `json:"total_us"`
	// Node is empty on a single node; the cluster router stamps it when
	// merging dumps so a record's origin survives the merge.
	Node string `json:"node,omitempty"`
}

// Flight is a fixed-size lock-free ring of the last N op records. Writers
// publish immutable records through per-slot atomic pointers, so Put is
// lock-free, allocation-free beyond the record itself, and safe from any
// number of goroutines; Dump never blocks writers.
type Flight struct {
	slots []atomic.Pointer[FlightRecord]
	pos   atomic.Uint64
}

// NewFlight returns a ring holding the last n records (n < 8 clamps to 8).
func NewFlight(n int) *Flight {
	if n < 8 {
		n = 8
	}
	return &Flight{slots: make([]atomic.Pointer[FlightRecord], n)}
}

// Put appends a record, evicting the oldest once the ring is full. The
// record must not be mutated after Put.
func (f *Flight) Put(rec *FlightRecord) {
	p := f.pos.Add(1) - 1
	f.slots[p%uint64(len(f.slots))].Store(rec)
}

// Dump returns the ring's current records ordered oldest-first by wall
// stamp. The copy is not a consistent snapshot across slots — records that
// land mid-dump may or may not appear — but every returned record is
// internally consistent (records are immutable once published).
func (f *Flight) Dump() []FlightRecord {
	out := make([]FlightRecord, 0, len(f.slots))
	for i := range f.slots {
		if rec := f.slots[i].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	SortFlight(out)
	return out
}

// SortFlight orders records oldest-first by wall stamp, tie-breaking on
// trace id then tenant so merged multi-node dumps are stable.
func SortFlight(recs []FlightRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].WallUnixNano != recs[j].WallUnixNano {
			return recs[i].WallUnixNano < recs[j].WallUnixNano
		}
		if recs[i].TraceID != recs[j].TraceID {
			return recs[i].TraceID < recs[j].TraceID
		}
		return recs[i].Tenant < recs[j].Tenant
	})
}

// FilterFlight keeps records matching tenant (empty = all) and caps the
// result to the newest max records (max <= 0 = unlimited). recs must be
// sorted oldest-first; the result preserves that order.
func FilterFlight(recs []FlightRecord, tenant string, max int) []FlightRecord {
	if tenant != "" {
		kept := recs[:0:0]
		for _, r := range recs {
			if r.Tenant == tenant {
				kept = append(kept, r)
			}
		}
		recs = kept
	}
	if max > 0 && len(recs) > max {
		recs = recs[len(recs)-max:]
	}
	return recs
}
