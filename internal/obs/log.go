package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
)

// Discard returns a logger that drops everything — the default wherever a
// *slog.Logger is optional, so call sites never nil-check.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the daemon's structured event logger: JSON lines at the
// given level, written to out — "" or "stderr" for standard error, "-" or
// "stdout" for standard output, anything else a file path opened in append
// mode. The returned closer is a no-op for the standard streams.
func NewLogger(level, out string) (*slog.Logger, func() error, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, nil, err
	}
	var w io.Writer
	closer := func() error { return nil }
	switch out {
	case "", "stderr":
		w = os.Stderr
	case "-", "stdout":
		w = os.Stdout
	default:
		f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: open log output: %w", err)
		}
		w = f
		closer = f.Close
	}
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lv})
	return slog.New(h), closer, nil
}
