package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the bucket count of the power-of-two histograms: bucket 47
// is the overflow bucket, so the covered range tops out at 2^46 ns ≈ 19.5 h,
// far beyond any serve-path duration.
const HistBuckets = 48

// Hist is a lock-free power-of-two latency histogram.
//
// Bucket boundaries: bucket b counts durations whose nanosecond count has
// bit-length b —
//
//	bucket 0:        exactly 0 ns
//	bucket b (b>=1): d ∈ [2^(b-1), 2^b) ns
//	bucket 47:       everything >= 2^46 ns (overflow)
//
// so boundaries double: bucket 11 is ~1–2 µs, bucket 21 is ~1–2 ms, bucket
// 31 is ~1–2 s. The relative quantile error is therefore bounded by the
// bucket width: an estimate is within a factor of sqrt(2) of the true value
// when reported as the geometric midpoint (see Quantile).
//
// Writers and readers may be concurrent (all counters atomic); the serving
// stack writes each histogram from a single shard goroutine.
type Hist struct {
	buckets [HistBuckets]atomic.Int64
}

// Record adds one duration observation.
func (h *Hist) Record(d time.Duration) { h.RecordNs(d.Nanoseconds()) }

// RecordNs adds one observation in nanoseconds (negatives clamp to 0).
func (h *Hist) RecordNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
}

// AddTo accumulates the histogram into sum and returns the number of
// observations added.
func (h *Hist) AddTo(sum *[HistBuckets]int64) int64 {
	var total int64
	for b := range sum {
		c := h.buckets[b].Load()
		sum[b] += c
		total += c
	}
	return total
}

// Total returns the observation count.
func (h *Hist) Total() int64 {
	var total int64
	for b := range h.buckets {
		total += h.buckets[b].Load()
	}
	return total
}

// BucketUpperNs returns bucket b's exclusive upper bound in nanoseconds
// (2^b). The overflow bucket has no finite bound; callers render it as +Inf.
func BucketUpperNs(b int) int64 {
	if b >= 63 {
		return int64(1) << 62
	}
	return int64(1) << uint(b)
}

// Quantile returns the q-quantile (0 < q <= 1) in nanoseconds from a merged
// bucket vector: the geometric midpoint 1.5·2^(b-1) of the bucket holding
// the target rank (within a factor of sqrt(2) of the true order statistic).
// Zero when nothing has been recorded.
func Quantile(sum [HistBuckets]int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, c := range sum {
		cum += c
		if cum >= target {
			if b == 0 {
				return 0
			}
			lo := float64(int64(1) << uint(b-1))
			return lo * 1.5 // midpoint of [2^(b-1), 2^b)
		}
	}
	return 0
}

// HistBucket is one non-empty histogram bucket in wire form.
type HistBucket struct {
	// Bit is the bucket index: counts durations d with bit-length(d ns) ==
	// Bit, i.e. d ∈ [2^(Bit-1), 2^Bit) ns (Bit 0: d == 0).
	Bit   int   `json:"bit"`
	Count int64 `json:"count"`
}

// HistSummary is the JSON form of a histogram: quantiles for humans plus
// the non-empty raw buckets so downstream mergers (the cluster router) can
// reconstruct and re-aggregate exactly.
type HistSummary struct {
	Count      int64        `json:"count"`
	P50Micros  float64      `json:"p50_us"`
	P99Micros  float64      `json:"p99_us"`
	P999Micros float64      `json:"p999_us"`
	Buckets    []HistBucket `json:"buckets,omitempty"`
}

// Summarize renders a merged bucket vector as a HistSummary.
func Summarize(sum [HistBuckets]int64) HistSummary {
	var total int64
	for _, c := range sum {
		total += c
	}
	s := HistSummary{
		Count:      total,
		P50Micros:  Quantile(sum, total, 0.50) / 1e3,
		P99Micros:  Quantile(sum, total, 0.99) / 1e3,
		P999Micros: Quantile(sum, total, 0.999) / 1e3,
	}
	for b, c := range sum {
		if c != 0 {
			s.Buckets = append(s.Buckets, HistBucket{Bit: b, Count: c})
		}
	}
	return s
}

// Bucketized reconstructs the raw bucket vector from the wire form.
func (s HistSummary) Bucketized() [HistBuckets]int64 {
	var sum [HistBuckets]int64
	s.addTo(&sum)
	return sum
}

func (s HistSummary) addTo(sum *[HistBuckets]int64) {
	for _, b := range s.Buckets {
		if b.Bit >= 0 && b.Bit < HistBuckets {
			sum[b.Bit] += b.Count
		}
	}
}

// MergeHistSummaries re-aggregates per-node summaries into one (the
// router's merge path for serve-latency and stage histograms).
func MergeHistSummaries(parts []HistSummary) HistSummary {
	var sum [HistBuckets]int64
	for _, p := range parts {
		p.addTo(&sum)
	}
	return Summarize(sum)
}
