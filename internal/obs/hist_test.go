package obs

import (
	"math/bits"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refQuantile mirrors Quantile's rank semantics against a full sort: the
// target-th smallest sample where target = floor(q·n), clamped to >= 1.
func refQuantile(samples []int64, q float64) int64 {
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	target := int64(q * float64(len(sorted)))
	if target < 1 {
		target = 1
	}
	return sorted[target-1]
}

// midpointOf returns the histogram's representative value for a sample: the
// geometric midpoint of its power-of-two bucket.
func midpointOf(ns int64) float64 {
	b := bits.Len64(uint64(ns))
	if b == 0 {
		return 0
	}
	return 1.5 * float64(int64(1)<<uint(b-1))
}

// TestQuantileAgainstReferenceSort pins the quantile estimator against a
// reference sort on known samples: the estimate must be exactly the bucket
// midpoint of the true order statistic, and hence within a factor of
// sqrt(2)·1.06 of it.
func TestQuantileAgainstReferenceSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string][]int64{
		"single":    {12345},
		"all-equal": {900, 900, 900, 900, 900},
		"zeros":     {0, 0, 0, 1, 2},
		"spread":    {3, 70, 70, 800, 9_000, 9_100, 120_000, 1_500_000, 1_500_001, 80_000_000},
	}
	uniform := make([]int64, 10_000)
	for i := range uniform {
		uniform[i] = rng.Int63n(5_000_000)
	}
	cases["uniform"] = uniform
	heavy := make([]int64, 5_000)
	for i := range heavy {
		heavy[i] = int64(100 * (1 << uint(rng.Intn(20))))
	}
	cases["pow2-heavy"] = heavy

	for name, samples := range cases {
		var h Hist
		for _, s := range samples {
			h.RecordNs(s)
		}
		var sum [HistBuckets]int64
		total := h.AddTo(&sum)
		if total != int64(len(samples)) {
			t.Fatalf("%s: total = %d, want %d", name, total, len(samples))
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
			ref := refQuantile(samples, q)
			got := Quantile(sum, total, q)
			want := midpointOf(ref)
			if got != want {
				t.Errorf("%s q=%v: estimate %v, want bucket midpoint %v of reference %d",
					name, q, got, want, ref)
			}
			if ref > 0 {
				ratio := got / float64(ref)
				if ratio <= 0.75 || ratio > 1.5 {
					t.Errorf("%s q=%v: estimate %v off reference %d by ratio %v (want (0.75, 1.5])",
						name, q, got, ref, ratio)
				}
			}
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	var sum [HistBuckets]int64
	if got := Quantile(sum, 0, 0.99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistOverflowBucket(t *testing.T) {
	var h Hist
	h.Record(40 * time.Hour) // beyond 2^46 ns
	var sum [HistBuckets]int64
	h.AddTo(&sum)
	if sum[HistBuckets-1] != 1 {
		t.Fatalf("overflow observation not in last bucket: %v", sum)
	}
}

func TestSummarizeRoundTrip(t *testing.T) {
	var h Hist
	for _, ns := range []int64{0, 5, 5, 900, 70_000, 70_001, 3_000_000} {
		h.RecordNs(ns)
	}
	var sum [HistBuckets]int64
	h.AddTo(&sum)
	s := Summarize(sum)
	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	if got := s.Bucketized(); got != sum {
		t.Fatalf("Bucketized round trip mismatch:\n got %v\nwant %v", got, sum)
	}
	merged := MergeHistSummaries([]HistSummary{s, s})
	if merged.Count != 14 {
		t.Fatalf("merged Count = %d, want 14", merged.Count)
	}
	for b := range sum {
		if want := 2 * sum[b]; merged.Bucketized()[b] != want {
			t.Fatalf("merged bucket %d = %d, want %d", b, merged.Bucketized()[b], want)
		}
	}
}
