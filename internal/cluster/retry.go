package cluster

import (
	"errors"
	"math/rand"
	"net"
	"net/url"
	"sync"
	"time"

	"repro/internal/engine"
)

// retryPolicy is the unified retry/timeout/backoff discipline for
// router→worker calls: a bounded number of attempts under an elapsed-time
// budget, with jittered exponential backoff between attempts. Retries are
// only safe because forwarded arrivals are idempotency-keyed (the
// X-Omflp-Idem-Start header, see forwardTo): a replayed batch is trimmed by
// the worker's per-tenant admitted counter and can never double-serve.
type retryPolicy struct {
	attempts int           // max attempts (including the first)
	budget   time.Duration // total elapsed budget across attempts
	base     time.Duration // first backoff; doubles per attempt
	max      time.Duration // backoff cap
}

var defaultRetry = retryPolicy{attempts: 4, budget: 8 * time.Second, base: 25 * time.Millisecond, max: 500 * time.Millisecond}

// retryJitter feeds backoff jitter. Package cluster is outside the
// deterministic-lint set; a shared seeded source keeps tests stable enough
// while still de-synchronizing concurrent retry loops.
var (
	retryMu  sync.Mutex
	retryRng = rand.New(rand.NewSource(1))
)

func jitter(d time.Duration) time.Duration {
	retryMu.Lock()
	f := 0.5 + retryRng.Float64() // 0.5x .. 1.5x
	retryMu.Unlock()
	return time.Duration(float64(d) * f)
}

// do runs fn under the policy, retrying transient failures until the
// attempt count or elapsed budget runs out. onRetry (optional) observes
// each retried error — the router counts these into its metrics.
func (p retryPolicy) do(fn func() error, onRetry func(error)) error {
	start := time.Now()
	backoff := p.base
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || !transient(err) {
			return err
		}
		if attempt >= p.attempts || time.Since(start)+backoff > p.budget {
			return err
		}
		if onRetry != nil {
			onRetry(err)
		}
		time.Sleep(jitter(backoff))
		if backoff *= 2; backoff > p.max {
			backoff = p.max
		}
	}
}

// errUnavailable marks a worker response that is safe to retry (a 5xx from
// a node that has not admitted the batch, or a node marked down). It wraps
// the underlying error for classification.
type unavailableError struct{ err error }

func (e *unavailableError) Error() string { return e.err.Error() }
func (e *unavailableError) Unwrap() error { return e.err }

// transient classifies an error as retry-safe: network/transport failures
// and explicit unavailability. Application-level refusals (unknown tenant,
// duplicate, gap) are final — retrying cannot change them.
func transient(err error) bool {
	if err == nil {
		return false
	}
	var ue *unavailableError
	if errors.As(err, &ue) {
		return true
	}
	if errors.Is(err, engine.ErrUnknownTenant) || errors.Is(err, engine.ErrDuplicateTenant) {
		return false
	}
	var nerr net.Error
	if errors.As(err, &nerr) {
		return true
	}
	var uerr *url.Error
	return errors.As(err, &uerr)
}
