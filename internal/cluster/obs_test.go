package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
)

// startTracedWorker is startWorker with op tracing on full blast, so every
// forwarded arrival leaves a flight record on the node that served it.
func startTracedWorker(t *testing.T, seed int64) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		HTTPAddr: "127.0.0.1:0",
		TCPAddr:  "127.0.0.1:0",
		Engine: engine.Config{
			Algorithm: "pd", Shards: 2, Seed: seed,
			TraceSample: 1, FlightRecords: 256,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// routerFlight fetches and decodes the router's merged flight dump.
func routerFlight(t *testing.T, base, query string) server.FlightDumpDoc {
	t.Helper()
	var doc server.FlightDumpDoc
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/debug/flight"+query, nil, http.StatusOK), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// streamTracedFrames sends arrivals [lo, hi) over one framed connection to
// the router, each frame stamped with idBase+i, and awaits the result.
func streamTracedFrames(t *testing.T, addr string, tenants, lo, hi int, idBase uint64) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	for i := lo; i < hi; i++ {
		a := testArrival(i)
		op := engine.Op{Op: "arrive", Tenant: tenantName(i % tenants), Point: a.Point, Demands: a.Demands}
		payload, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		if err := server.WriteFrameTrace(bw, payload, idBase+uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	frame, err := server.ReadFrame(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	var res server.TCPResult
	if err := json.Unmarshal(frame, &res); err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Arrivals != hi-lo {
		t.Fatalf("TCP result %+v, want ok with %d arrivals", res, hi-lo)
	}
}

// TestClusterFlightDumpMergedAndMigrated: trace ids stamped on client
// frames survive the router hop and land in worker flight recorders; the
// router's merged dump stamps each record's origin node, and a migrated
// tenant's records span both its source and target nodes.
func TestClusterFlightDumpMergedAndMigrated(t *testing.T) {
	const tenants, first, second = 3, 30, 12
	w1 := startTracedWorker(t, 17)
	w2 := startTracedWorker(t, 17)
	r := startRouter(t, Config{TCPAddr: "127.0.0.1:0", Nodes: []string{w1.HTTPAddr(), w2.HTTPAddr()}})
	base := "http://" + r.HTTPAddr()

	for i := 0; i < tenants; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i), testCreate, http.StatusCreated)
	}
	streamTracedFrames(t, r.TCPAddr(), tenants, 0, first, 0x1000)

	// Every frame carried a wire id, so every arrival must eventually
	// publish a flight record on whichever node served it.
	waitFor(t, "first batch flight records", func() bool {
		return len(routerFlight(t, base, "").Records) == first
	})
	doc := routerFlight(t, base, "")
	if !doc.Tracing {
		t.Error("merged dump reports tracing off though workers trace")
	}
	nodes := map[string]bool{}
	ids := map[string]bool{}
	for _, rec := range doc.Records {
		if rec.Node != w1.HTTPAddr() && rec.Node != w2.HTTPAddr() {
			t.Fatalf("record carries unknown node %q", rec.Node)
		}
		nodes[rec.Node] = true
		ids[rec.TraceID] = true
	}
	if len(nodes) != 2 {
		t.Errorf("records from %d nodes, want both (least-load spreads 3 tenants)", len(nodes))
	}
	for i := 0; i < first; i++ {
		if !ids[obs.TraceIDString(0x1000+uint64(i))] {
			t.Errorf("wire id %#x missing from merged dump", 0x1000+i)
		}
	}

	// Move tenant-001, then send a second batch: its new records must come
	// from the target while the old ones stay attributed to the source.
	var routes map[string]RouteInfo
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/routes", nil, http.StatusOK), &routes); err != nil {
		t.Fatal(err)
	}
	src := routes[tenantName(1)].Node
	dst := w1.HTTPAddr()
	if src == dst {
		dst = w2.HTTPAddr()
	}
	httpJSON(t, "POST", base+"/v1/migrate", migrateBody{Tenant: tenantName(1), Target: dst}, http.StatusOK)
	streamTracedFrames(t, r.TCPAddr(), tenants, first, first+second, 0x9000)

	waitFor(t, "post-migration flight records", func() bool {
		return len(routerFlight(t, base, "").Records) == first+second
	})
	migrated := routerFlight(t, base, "?tenant="+tenantName(1))
	perNode := map[string]int{}
	for _, rec := range migrated.Records {
		if rec.Tenant != tenantName(1) {
			t.Fatalf("tenant filter leaked record for %q", rec.Tenant)
		}
		perNode[rec.Node]++
	}
	if perNode[src] == 0 || perNode[dst] == 0 {
		t.Errorf("migrated tenant's records on src=%d dst=%d, want both non-zero (%v)",
			perNode[src], perNode[dst], perNode)
	}

	// max applies to the merged view: newest records win.
	capped := routerFlight(t, base, "?max=5")
	if len(capped.Records) != 5 {
		t.Errorf("max=5 returned %d records", len(capped.Records))
	}
	httpJSON(t, "GET", base+"/v1/debug/flight?max=-1", nil, http.StatusBadRequest)
}

// TestClusterPromMerged: the router's GET /metrics carries cluster-level
// series plus each node's full exposition under a node label, with one
// TYPE header per family.
func TestClusterPromMerged(t *testing.T) {
	const tenants, arrivals = 2, 20
	w1 := startTracedWorker(t, 19)
	w2 := startTracedWorker(t, 19)
	r := startRouter(t, Config{TCPAddr: "127.0.0.1:0", Nodes: []string{w1.HTTPAddr(), w2.HTTPAddr()}})
	base := "http://" + r.HTTPAddr()

	for i := 0; i < tenants; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i), testCreate, http.StatusCreated)
	}
	streamTracedFrames(t, r.TCPAddr(), tenants, 0, arrivals, 0x2000)
	waitFor(t, "flight records", func() bool {
		return len(routerFlight(t, base, "").Records) == arrivals
	})

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != server.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, server.PromContentType)
	}
	text := readAll(t, resp.Body)
	if strings.HasPrefix(strings.TrimSpace(text), "{") {
		t.Fatal("router /metrics served JSON, want text exposition")
	}

	for _, want := range []string{
		"omflp_cluster_nodes 2",
		"omflp_cluster_healthy_nodes 2",
		fmt.Sprintf("omflp_cluster_tenants %d", tenants),
		fmt.Sprintf("omflp_cluster_served_total %d", arrivals),
		fmt.Sprintf(`omflp_node_healthy{node="%s"} 1`, w1.HTTPAddr()),
		fmt.Sprintf(`omflp_node_healthy{node="%s"} 1`, w2.HTTPAddr()),
		fmt.Sprintf(`omflp_served_total{node="%s"}`, w1.HTTPAddr()),
		fmt.Sprintf(`omflp_served_total{node="%s"}`, w2.HTTPAddr()),
		fmt.Sprintf(`omflp_stage_latency_seconds_bucket{node="%s",stage="total",le="+Inf"}`, w1.HTTPAddr()),
		fmt.Sprintf(`omflp_goroutines{node="%s"}`, w2.HTTPAddr()),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("cluster exposition lacks %q", want)
		}
	}

	// One TYPE header per family even though two nodes emit the family.
	typeCount := map[string]int{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typeCount[strings.Fields(line)[2]]++
		}
	}
	for name, c := range typeCount {
		if c != 1 {
			t.Errorf("family %s has %d TYPE headers, want 1", name, c)
		}
	}
}

func readAll(t *testing.T, r interface{ Read([]byte) (int, error) }) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestClusterPromStaleExcluded: a node replaying an identical /v1/metrics
// body keeps its marker series but is not re-emitted into the merged
// exposition — the prom view follows the same Seq rule as /v1/metrics.
func TestClusterPromStaleExcluded(t *testing.T) {
	fixed := server.Metrics{}
	fixed.Seq = 5
	fixed.WallUnixNano = 123456789
	fixed.Served = 40
	fixed.WindowArrivalsPerSec = 100

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/node", func(w http.ResponseWriter, req *http.Request) {
		json.NewEncoder(w).Encode(server.NodeInfo{Algorithm: "pd", Seed: 1})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, req *http.Request) {
		json.NewEncoder(w).Encode(fixed)
	})
	mux.HandleFunc("GET /v1/snapshots", func(w http.ResponseWriter, req *http.Request) {
		json.NewEncoder(w).Encode([]engine.TenantSnapshot{})
	})
	fake := httptest.NewServer(mux)
	defer fake.Close()
	addr := strings.TrimPrefix(fake.URL, "http://")

	r := startRouter(t, Config{Nodes: []string{addr}})
	base := "http://" + r.HTTPAddr()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return readAll(t, resp.Body)
	}

	fresh := scrape()
	nodeSeries := fmt.Sprintf(`omflp_served_total{node="%s"} 40`, addr)
	if !strings.Contains(fresh, nodeSeries) {
		t.Errorf("fresh scrape lacks %q", nodeSeries)
	}
	if !strings.Contains(fresh, fmt.Sprintf(`omflp_node_stale{node="%s"} 0`, addr)) {
		t.Error("fresh scrape not marked non-stale")
	}

	stale := scrape()
	if strings.Contains(stale, nodeSeries) {
		t.Error("stale scrape re-emitted the node's series")
	}
	if !strings.Contains(stale, fmt.Sprintf(`omflp_node_stale{node="%s"} 1`, addr)) {
		t.Error("stale scrape lacks the stale marker")
	}
	if !strings.Contains(stale, fmt.Sprintf(`omflp_node_healthy{node="%s"} 1`, addr)) {
		t.Error("stale node still answers; healthy marker must stay 1")
	}
}
