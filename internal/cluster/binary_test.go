package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"testing"

	"repro/internal/engine"
	"repro/internal/server"
)

// binClient is a minimal binary-wire client for router tests: one framed
// connection, lazily-bound tenant refs, and a drain that separates router
// acks from the final result frame.
type binClient struct {
	t    *testing.T
	conn *net.TCPConn
	bw   *bufio.Writer
	refs map[string]uint64
}

func dialBinary(t *testing.T, addr string) *binClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := &binClient{t: t, conn: conn.(*net.TCPConn), bw: bufio.NewWriter(conn), refs: map[string]uint64{}}
	t.Cleanup(func() { conn.Close() })
	return c
}

func (c *binClient) frame(payload []byte) {
	c.t.Helper()
	if err := server.WriteFrame(c.bw, payload); err != nil {
		c.t.Fatal(err)
	}
}

func (c *binClient) ref(tenant string) uint64 {
	r, ok := c.refs[tenant]
	if !ok {
		r = uint64(len(c.refs))
		c.refs[tenant] = r
		c.frame(server.AppendWireBind(nil, r, tenant))
	}
	return r
}

func (c *binClient) flush() {
	c.t.Helper()
	if err := c.bw.Flush(); err != nil {
		c.t.Fatal(err)
	}
}

func (c *binClient) finish() (server.TCPResult, int) {
	c.t.Helper()
	c.flush()
	if err := c.conn.CloseWrite(); err != nil {
		c.t.Fatal(err)
	}
	br := bufio.NewReader(c.conn)
	acked := 0
	var buf []byte
	for {
		frame, err := server.ReadFrame(br, buf)
		if err != nil {
			c.t.Fatalf("reading result: %v", err)
		}
		if server.IsBinaryFrame(frame) {
			op, body, err := server.WireFrameKind(frame)
			if err != nil || op != server.WireAck {
				c.t.Fatalf("router sent op 0x%02x (err %v), want ack", op, err)
			}
			ack, err := server.DecodeWireAck(body)
			if err != nil {
				c.t.Fatal(err)
			}
			for _, code := range ack.Codes {
				if code != 0 {
					c.t.Fatalf("router ack carried failure code %d", code)
				}
			}
			acked += len(ack.Codes)
			buf = frame[:0]
			continue
		}
		var res server.TCPResult
		if err := json.Unmarshal(frame, &res); err != nil {
			c.t.Fatal(err)
		}
		return res, acked
	}
}

// TestRouterBinaryWireByteIdentity is the cluster half of the wire
// negotiation contract: a windowed binary client drives two tenants through
// the router — across a live migration of one of them — while a legacy
// JSON-framed connection drives the third, and the final cluster artifact is
// byte-identical to the single-node reference for the same workload.
func TestRouterBinaryWireByteIdentity(t *testing.T) {
	const tenants, arrivals, cut = 3, 60, 30
	want := referenceArtifact(t, 17, tenants, arrivals)

	w1 := startWorker(t, 17, "")
	w2 := startWorker(t, 17, "")
	r := startRouter(t, Config{TCPAddr: "127.0.0.1:0", Nodes: []string{w1.HTTPAddr(), w2.HTTPAddr()}})
	base := "http://" + r.HTTPAddr()
	for i := 0; i < tenants; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i), testCreate, http.StatusCreated)
	}

	// The binary client owns tenants 0 and 2; the legacy JSON client owns
	// tenant 1. Per-tenant arrival order is all that determinism requires,
	// so the two connections run concurrently.
	legacyDone := make(chan server.TCPResult, 1)
	go func() {
		conn, err := net.Dial("tcp", r.TCPAddr())
		if err != nil {
			t.Error(err)
			legacyDone <- server.TCPResult{}
			return
		}
		defer conn.Close()
		bw := bufio.NewWriter(conn)
		for i := 0; i < arrivals; i++ {
			if i%tenants != 1 {
				continue
			}
			a := testArrival(i)
			payload, err := json.Marshal(engine.Op{Op: "arrive", Tenant: tenantName(1), Point: a.Point, Demands: a.Demands})
			if err != nil {
				t.Error(err)
				break
			}
			if err := server.WriteFrame(bw, payload); err != nil {
				t.Error(err)
				break
			}
		}
		bw.Flush()                       //nolint:errcheck
		conn.(*net.TCPConn).CloseWrite() //nolint:errcheck
		frame, err := server.ReadFrame(bufio.NewReader(conn), nil)
		if err != nil {
			t.Error(err)
			legacyDone <- server.TCPResult{}
			return
		}
		var res server.TCPResult
		json.Unmarshal(frame, &res) //nolint:errcheck
		legacyDone <- res
	}()

	c := dialBinary(t, r.TCPAddr())
	c.frame(server.AppendWireWindow(nil, 8, false))
	binSent := 0
	// Prefix as singleton ARRIVE frames, in order.
	for i := 0; i < cut; i++ {
		if i%tenants == 1 {
			continue
		}
		a := testArrival(i)
		c.frame(server.AppendWireArrive(nil, c.ref(tenantName(i%tenants)), a.Point, a.Demands))
		binSent++
	}
	c.flush()

	// Migrate tenant-000 with the binary stream open: wait for its prefix to
	// reach the ledger, then move it to the node that doesn't own it. Suffix
	// frames for it must follow the route flip (and any in-flight ones the
	// migration buffer's binary re-decode path).
	const moved = "tenant-000"
	waitFor(t, "binary prefix to reach the ledger", func() bool {
		r.mu.RLock()
		defer r.mu.RUnlock()
		rt, ok := r.routes[moved]
		return ok && rt.count.Load() == cut/tenants
	})
	r.mu.RLock()
	owner := r.routes[moved].node
	r.mu.RUnlock()
	target := []string{w1.HTTPAddr(), w2.HTTPAddr()}[1-owner]
	if _, err := r.Migrate(moved, target); err != nil {
		t.Fatal(err)
	}

	// Suffix as per-tenant BATCH frames — cross-tenant reorder is legal.
	items := map[string][]server.WireItem{}
	for i := cut; i < arrivals; i++ {
		if i%tenants == 1 {
			continue
		}
		id := tenantName(i % tenants)
		a := testArrival(i)
		items[id] = append(items[id], server.WireItem{Point: a.Point, Demands: a.Demands})
		binSent++
	}
	for _, id := range []string{tenantName(0), tenantName(2)} {
		c.frame(server.AppendWireBatch(nil, c.ref(id), items[id]))
	}
	res, acked := c.finish()
	if !res.OK || res.Arrivals != binSent {
		t.Fatalf("binary result %+v, want ok with %d arrivals", res, binSent)
	}
	if acked != binSent {
		t.Fatalf("router acked %d of %d binary-stream arrivals", acked, binSent)
	}
	legacy := <-legacyDone
	if !legacy.OK || legacy.Arrivals != arrivals/tenants {
		t.Fatalf("legacy result %+v, want ok with %d arrivals", legacy, arrivals/tenants)
	}

	got := httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("binary-over-router snapshots differ from the single-node artifact")
	}
	if n := r.migrations.Load(); n != 1 {
		t.Errorf("migrations counter = %d, want 1", n)
	}
}
