// Package cluster turns a fleet of single-node omflp servers into one
// serving surface. A Router fronts N worker nodes (each an ordinary
// internal/server instance) with the same HTTP API and length-prefixed TCP
// op protocol the nodes themselves speak, so clients and load generators
// run unchanged against a cluster.
//
// # Topology and routing
//
// Each tenant lives on exactly one node; the router owns the tenant→node
// map. Creates place the tenant (least-loaded by default, rendezvous
// hashing optionally) and arrivals are forwarded to the owner — raw frames
// over a pooled TCP connection on the framed path, batched JSON on the HTTP
// path. Because a tenant's algorithmic randomness derives from
// workload.NamedSeed(engine seed, tenant name), every node must run the
// same algorithm and seed; the router verifies this at admission and
// refuses mismatched nodes. Under that invariant a tenant's snapshot is
// byte-identical wherever it is served, which is what makes migration and
// recovery testable against single-node goldens.
//
// # The arrival ledger
//
// For every route the router counts arrivals it has forwarded to the owner
// (route.count). The counter is maintained under the routing table's read
// lock, and forwarding I/O happens under that same read lock — so taking
// the write lock is a barrier: once held, no forward is in flight and the
// ledger exactly names the number of arrivals the owner has admitted for
// that tenant. Migration's quiesce step is built on this: the coordinator
// reads the ledger under the write lock and the source node waits until the
// tenant's served count reaches it before capturing state.
//
// # Live migration
//
// Migrate moves one tenant with no arrival loss and no reordering: mark the
// route migrating (new arrivals buffer in the router), flush in-flight
// frames, extract on the source once served equals the ledger, checkpoint
// the source (so a later restart does not resurrect the moved tenant),
// inject on the target, checkpoint the target, replay the buffered tail,
// and flip the route once the buffer drains. Snapshots on the target are
// byte-identical to what the source would have produced.
//
// # Failure model
//
// The router health-checks nodes and stops placing tenants on unreachable
// ones; a node is declared down only after Config.DownAfter consecutive
// probe failures, so one flapped probe does not trigger failover. With
// Config.Replicate off, a worker that dies takes its un-checkpointed tail
// with it — the same contract as a single node — and arrivals routed to it
// fail until it returns. When a restarted worker (restored from its v2
// checkpoint) rejoins, the router re-syncs the routes and ledgers for its
// tenants from the node's snapshots and traffic resumes.
//
// # Durable routes
//
// With Config.StateDir set, the router persists its routing table the same
// way workers persist tenants: a base snapshot (routes.ckpt.json, written
// atomically via tmp+rename) plus an append-only journal (routes.journal)
// of placement events — place, flip, drop, promote, follower. Ledger counts
// are folded in compactly on every health tick rather than per arrival. A
// restarted router loads the base, replays the journal (a torn final line
// is the expected kill -9 artifact and is ignored), and is routing again in
// O(1) — it does not rescan node snapshots. Restored ledgers may trail the
// truth by at most one health tick; each route is marked unsynced and
// lazily reconciled against its owner before any operation that needs the
// exact ledger (migration quiesce). Only the active router writes the
// journal: a standby follows it read-only and workers never touch it.
//
// # Tenant replication
//
// With Config.Replicate on, every tenant is placed on an owner and a
// follower node and created on both. Because tenant state is a pure
// function of (algorithm, seed, arrival stream), replication is dual-write:
// the router forwards every arrival to both instances, and an arrival is
// acked only after both admitted it. The two instances' snapshots are
// byte-identical. When the owner node dies, the router promotes the route
// to the follower — epoch++, ledger unchanged — losing at most the
// in-flight (unacked) window, and reseeds a new follower from the
// survivor's exported state. Route epochs guard against ghosts: once a
// route has been promoted, a stale old owner rejoining can never win the
// route back via snapshot re-sync.
//
// # Router failover
//
// A second router started with Config.StandbyOf follows the primary's
// route journal over the framed TCP protocol (a "follow" op streams the
// base doc and then every journal event live). The follow connection
// doubles as the health probe: after Config.FailoverAfter consecutive
// redial failures the standby promotes itself — re-probes the nodes,
// re-syncs routes as a consistency check, and goes active. Until then it
// answers routing verbs with 503 and reports role "standby" on /healthz.
// Clients fail over by retrying against a list of router addresses.
//
// # Fault injection
//
// All of the above is testable deterministically: a faults.Injector
// (Config.Faults) hooks the router's upstream dials, connection writes,
// HTTP transport, and health probes with seed-driven connection resets,
// stalls, partial frames, dial failures, and probe flaps. Forwarding wraps
// every node call in a jittered, budgeted retry policy, and arrivals carry
// idempotency keys (stream positions) end to end, so a replayed batch is
// trimmed by the owner rather than double-served.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/server"
)

// Config configures a Router.
type Config struct {
	// HTTPAddr is the router's HTTP listen address (required).
	HTTPAddr string
	// TCPAddr is the router's framed-op listen address ("" disables TCP).
	TCPAddr string
	// Nodes lists worker HTTP addresses ("host:port"). At least one.
	Nodes []string
	// Placement picks the tenant-placement policy: "leastload" (default)
	// places on the node hosting the fewest tenants, "rendezvous" by
	// highest rendezvous hash (stable as nodes come and go).
	Placement string
	// HealthEvery is the node health-probe period (default 1s).
	HealthEvery time.Duration
	// MigrateThreshold enables automatic rebalancing when > 1: when the
	// busiest node's arrival rate exceeds the idlest's by this factor
	// (measured between health probes), the router migrates the busiest
	// node's hottest tenant to the idlest node. 0 disables.
	MigrateThreshold float64
	// TraceSample samples 1-in-N framed arrivals forwarded over TCP for op
	// tracing: the router stamps a trace id on the upstream frame and the
	// worker records the op under that id, so a cluster-wide flight dump
	// ties a forwarded arrival to the node that served it. Inbound frames
	// that already carry an id keep it. 0 disables router-side sampling
	// (worker-side sampling still applies).
	TraceSample int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the router's
	// HTTP listener.
	EnablePprof bool
	// StateDir is the router's durable-state directory. When set, the
	// routing table and per-route ledgers are persisted as a base snapshot
	// plus an append-only journal, and a restarted router restores them in
	// O(1) instead of rescanning node snapshots. "" keeps routes in memory
	// only (the pre-durability behavior).
	StateDir string
	// StandbyOf names the primary router's framed-op TCP address. When set,
	// this router starts passive: it follows the primary's route journal
	// over TCP, answers routing verbs with 503, and promotes itself to
	// active after FailoverAfter consecutive connection failures.
	StandbyOf string
	// Replicate places every tenant on an owner and a follower node,
	// dual-writes arrivals to both, and promotes the follower when the
	// owner dies. Needs at least two nodes.
	Replicate bool
	// DownAfter is how many consecutive probe failures mark a node down
	// (default 1 — the pre-hardening behavior). Raise it to ride out probe
	// flaps without triggering failover.
	DownAfter int
	// FailoverAfter is how many consecutive follow-connection failures make
	// a standby promote itself (default 3). Only read when StandbyOf is
	// set.
	FailoverAfter int
	// Faults, when non-nil, injects deterministic failures into the
	// router's upstream dials, connection writes, HTTP transport, and
	// health probes. Testing and chaos drills only.
	Faults *faults.Injector
	// Logger receives structured router lifecycle events — placements,
	// node up/down/rejoin, migration phases (default: discard).
	Logger *slog.Logger
}

// Router is the cluster front: it owns the tenant→node routing table,
// proxies both protocols, coordinates migrations, and merges node metrics.
type Router struct {
	cfg    Config
	nodes  []*node
	logger *slog.Logger
	// tracer samples forwarded TCP arrivals (nil = off); see
	// Config.TraceSample.
	tracer *obs.Tracer

	// client is used for all node-side HTTP calls. Its timeout must exceed
	// the node's extract quiesce deadline.
	client *http.Client

	// ident is the cluster identity (algorithm, seed) learned from the
	// first admitted node; every other node must match.
	identMu  sync.Mutex
	identSet bool
	ident    struct {
		algorithm string
		seed      int64
	}

	// mu guards routes. Forwarding I/O runs under RLock (see package doc:
	// the write lock is the quiesce barrier).
	mu     sync.RWMutex
	routes map[string]*route

	// rlog is the durable route log (memory-only when StateDir is "").
	// Every route mutation is journaled through it under r.mu, so the
	// journal order is the route-table mutation order; a standby's follow
	// stream is a subscription to it.
	rlog *routeLog
	// routesRestored counts routes recovered from the route log at New —
	// the restart-was-O(1) observable (/healthz reports it).
	routesRestored int

	// standby is true while this router is a passive follower of another
	// router's route journal (Config.StandbyOf). Routing verbs answer 503
	// until promotion flips it.
	standby atomic.Bool

	// upstreams registers every live session's node connections so the
	// migration coordinator can flush frames it did not write.
	upMu      sync.Mutex
	upstreams map[*upstream]struct{}

	// migMu serializes migrations — one tenant moves at a time.
	migMu      sync.Mutex
	migrations atomic.Int64

	// Hardening counters, surfaced via Metrics and /metrics.
	retries      atomic.Int64 // node calls retried after a transient error
	failovers    atomic.Int64 // node-down events that triggered promotions
	promotions   atomic.Int64 // routes flipped owner→follower
	replDegrades atomic.Int64 // followers dropped after replication errors

	// migFault, when non-nil, is consulted at each migration phase
	// ("extract", "inject", "replay", "flip") and aborts the phase when it
	// returns an error. Fault-injection tests only; nil in production.
	migFault func(phase string) error

	httpLn   net.Listener
	tcpLn    net.Listener
	httpSrv  *http.Server
	loops    sync.WaitGroup
	tcpConns sync.WaitGroup
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	stop     chan struct{}
	stopOnce sync.Once
}

// node is the router's view of one worker.
type node struct {
	idx  int
	addr string // host:port as configured
	base string // http://host:port

	mu      sync.Mutex
	healthy bool
	info    server.NodeInfo
	// lastSeq/lastWall are the node's (Metrics.Seq, WallUnixNano) at the
	// previous cluster scrape; an unchanged pair marks the next report
	// stale (see metrics.go).
	lastSeq  int64
	lastWall int64
	// fails counts consecutive probe failures; the node is marked down only
	// at Config.DownAfter (health-loop goroutine only).
	fails int
	// everUp records that this router process has probed the node healthy
	// at least once. The first successful probe after a clean route-log
	// restore skips the snapshot re-sync (restart is O(1)); later
	// transitions (a node rejoining after downtime) still re-sync.
	everUp bool
}

func (n *node) tcp() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.info.TCPAddr
}

func (n *node) isHealthy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy
}

// route is one tenant's placement.
type route struct {
	node int
	// follower is the replica node's index, or -1 when the tenant is not
	// replicated (Config.Replicate off, or the follower was degraded after
	// a replication error). Guarded by Router.mu like node.
	follower int
	// epoch counts ownership changes (promotions). A route with epoch > 0
	// has been failed over at least once; snapshot re-sync then refuses to
	// re-adopt any other claimant — a rejoining stale owner is a ghost.
	epoch int64
	// count is the arrival ledger: lifetime arrivals the routed node has
	// admitted for this tenant (bootstrap seeds it from the node's served
	// count). Incremented under Router.mu.RLock, read authoritatively
	// under WLock.
	count atomic.Int64
	// synced is false when count was restored from the route log (which
	// trails the truth by up to one health tick) and has not yet been
	// reconciled against the owner. Migration re-syncs a stale route
	// before quiescing on its ledger. Guarded by Router.mu.
	synced bool
	// lastCount is count at the previous rebalance check. Touched only by
	// the health loop goroutine.
	lastCount int64
	// mig is non-nil while the tenant is migrating; arrivals then buffer
	// in it instead of being forwarded.
	mig *migration
}

// New validates the config and builds a Router. Start brings it up.
func New(cfg Config) (*Router, error) {
	if cfg.HTTPAddr == "" {
		return nil, fmt.Errorf("cluster: config needs an HTTP listen address")
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: config needs at least one node")
	}
	switch cfg.Placement {
	case "", "leastload", "rendezvous":
	default:
		return nil, fmt.Errorf("cluster: unknown placement policy %q", cfg.Placement)
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = time.Second
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 1
	}
	if cfg.FailoverAfter <= 0 {
		cfg.FailoverAfter = 3
	}
	if cfg.Replicate && len(cfg.Nodes) < 2 {
		return nil, fmt.Errorf("cluster: replication needs at least two nodes, got %d", len(cfg.Nodes))
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.Discard()
	}
	transport := http.DefaultTransport
	if cfg.Faults != nil {
		transport = cfg.Faults.Transport(transport)
	}
	r := &Router{
		cfg:       cfg,
		logger:    logger,
		tracer:    obs.NewTracer(cfg.TraceSample),
		client:    &http.Client{Timeout: 30 * time.Second, Transport: transport},
		routes:    make(map[string]*route),
		upstreams: make(map[*upstream]struct{}),
		conns:     make(map[net.Conn]struct{}),
		stop:      make(chan struct{}),
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for i, addr := range cfg.Nodes {
		addr = strings.TrimPrefix(strings.TrimSpace(addr), "http://")
		if addr == "" {
			return nil, fmt.Errorf("cluster: node %d has an empty address", i)
		}
		if seen[addr] {
			return nil, fmt.Errorf("cluster: node address %s listed twice", addr)
		}
		seen[addr] = true
		r.nodes = append(r.nodes, &node{idx: i, addr: addr, base: "http://" + addr})
	}

	rl, err := openRouteLog(cfg.StateDir)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening route log in %s: %v", cfg.StateDir, err)
	}
	r.rlog = rl
	r.restoreRoutes()
	return r, nil
}

// restoreRoutes rebuilds the in-memory routing table from the route log's
// recovered state. Records are keyed by node address, so a restored router
// must be configured with the same node set; a record naming an address not
// in the config is dropped with a warning (the operator reshaped the
// cluster — those tenants will be re-adopted by snapshot re-sync when their
// node is probed). Restored routes are marked unsynced: the persisted
// ledger may trail the truth by up to one health tick.
func (r *Router) restoreRoutes() {
	state, _ := r.rlog.snapshot()
	if len(state) == 0 {
		return
	}
	byAddr := make(map[string]int, len(r.nodes))
	for _, n := range r.nodes {
		byAddr[n.addr] = n.idx
	}
	for tenant, rec := range state {
		idx, ok := byAddr[rec.Node]
		if !ok {
			r.logger.Warn("restored route names an unconfigured node, dropping",
				"tenant", tenant, "node", rec.Node)
			continue
		}
		rt := &route{node: idx, follower: -1, epoch: rec.Epoch}
		if rec.Follower != "" {
			if fidx, ok := byAddr[rec.Follower]; ok {
				rt.follower = fidx
			} else {
				r.logger.Warn("restored route names an unconfigured follower, degrading",
					"tenant", tenant, "follower", rec.Follower)
			}
		}
		rt.count.Store(rec.Count)
		r.routes[tenant] = rt
	}
	r.routesRestored = len(r.routes)
	r.logger.Info("routes restored from route log",
		"routes", r.routesRestored, "dir", r.cfg.StateDir)
}

// Start probes every node once (admitting the reachable ones and
// bootstrapping routes from their snapshots), then opens the listeners and
// begins the health loop. At least one node must be reachable. A standby
// router (Config.StandbyOf) skips the probes and the health loop: it binds
// its listeners passive and follows the primary's route journal until
// promotion.
func (r *Router) Start() error {
	if r.cfg.StandbyOf != "" {
		r.standby.Store(true)
		if err := r.bindListeners(); err != nil {
			return err
		}
		r.loops.Add(1)
		go r.followLoop()
		r.logger.Info("router up (standby)",
			"http", r.HTTPAddr(), "tcp", r.TCPAddr(), "primary", r.cfg.StandbyOf)
		return nil
	}

	healthy := 0
	for _, n := range r.nodes {
		if err := r.probe(n); err != nil {
			r.logger.Warn("node not admitted at start", "node", n.addr, "err", err)
			continue
		}
		healthy++
	}
	if healthy == 0 {
		return fmt.Errorf("cluster: no node among %v is reachable", r.cfg.Nodes)
	}

	if err := r.bindListeners(); err != nil {
		return err
	}

	r.loops.Add(1)
	go r.healthLoop()
	r.logger.Info("router up",
		"http", r.HTTPAddr(), "tcp", r.TCPAddr(), "nodes", len(r.nodes),
		"healthy", healthy, "routes_restored", r.routesRestored)
	return nil
}

// bindListeners opens the HTTP (and optional TCP) listeners and starts
// their serving loops — shared by active start and standby start.
func (r *Router) bindListeners() error {
	httpLn, err := net.Listen("tcp", r.cfg.HTTPAddr)
	if err != nil {
		return fmt.Errorf("cluster: listening on %s: %v", r.cfg.HTTPAddr, err)
	}
	r.httpLn = httpLn
	r.httpSrv = &http.Server{Handler: r.handler()}
	r.loops.Add(1)
	go func() {
		defer r.loops.Done()
		r.httpSrv.Serve(httpLn) //nolint:errcheck // ErrServerClosed on shutdown
	}()

	if r.cfg.TCPAddr != "" {
		tcpLn, err := net.Listen("tcp", r.cfg.TCPAddr)
		if err != nil {
			httpLn.Close()
			return fmt.Errorf("cluster: listening on %s: %v", r.cfg.TCPAddr, err)
		}
		r.tcpLn = tcpLn
		r.loops.Add(1)
		go r.acceptLoop(tcpLn)
	}
	return nil
}

// HTTPAddr returns the bound HTTP address ("" before Start).
func (r *Router) HTTPAddr() string {
	if r.httpLn == nil {
		return ""
	}
	return r.httpLn.Addr().String()
}

// TCPAddr returns the bound framed-op address ("" when disabled).
func (r *Router) TCPAddr() string {
	if r.tcpLn == nil {
		return ""
	}
	return r.tcpLn.Addr().String()
}

// Shutdown stops the listeners, waits for in-flight sessions, and stops the
// health loop. Worker nodes are not touched — they outlive their router.
func (r *Router) Shutdown(timeout time.Duration) error {
	r.stopOnce.Do(func() { close(r.stop) })
	var err error
	if r.tcpLn != nil {
		r.tcpLn.Close()
	}
	done := make(chan struct{})
	go func() {
		r.tcpConns.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		err = fmt.Errorf("cluster: TCP sessions still open after %v", timeout)
		r.connMu.Lock()
		for c := range r.conns {
			c.Close()
		}
		r.connMu.Unlock()
	}
	if r.httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if serr := r.httpSrv.Shutdown(ctx); serr != nil && err == nil {
			err = serr
		}
	}
	r.loops.Wait()
	// Final rebase folds the latest in-memory ledgers into the base
	// snapshot so a clean shutdown restores exact counts.
	r.mu.RLock()
	counts := make(map[string]int64, len(r.routes))
	for id, rt := range r.routes {
		counts[id] = rt.count.Load()
	}
	r.mu.RUnlock()
	r.rlog.persistCounts(counts)
	r.rlog.close()
	return err
}

// nodeAddr maps a node index to its configured address ("" for -1 / out of
// range) — the journal records addresses, not indices.
func (r *Router) nodeAddr(idx int) string {
	if idx < 0 || idx >= len(r.nodes) {
		return ""
	}
	return r.nodes[idx].addr
}

// checkIdentity admits a node into the cluster identity (algorithm, seed)
// or rejects it: migration correctness depends on every node running the
// same deterministic policy.
func (r *Router) checkIdentity(info server.NodeInfo) error {
	r.identMu.Lock()
	defer r.identMu.Unlock()
	if !r.identSet {
		r.ident.algorithm, r.ident.seed = info.Algorithm, info.Seed
		r.identSet = true
		return nil
	}
	if info.Algorithm != r.ident.algorithm || info.Seed != r.ident.seed {
		return fmt.Errorf("node runs %s/seed=%d, cluster runs %s/seed=%d",
			info.Algorithm, info.Seed, r.ident.algorithm, r.ident.seed)
	}
	return nil
}

// getJSON fetches url and decodes the body into v (non-2xx is an error).
func (r *Router) getJSON(url string, v interface{}) error {
	resp, err := r.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, snippet(resp.Body))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// getRaw fetches url and hands back the raw success-response bytes —
// the GET twin of postRaw, used for tenant exports that must be forwarded
// verbatim.
func (r *Router) getRaw(url string, out *[]byte) error {
	resp, err := r.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, snippet(resp.Body))
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	*out = b
	return nil
}

// postJSON posts v (pre-marshaled when []byte) to url and decodes the
// response into out when non-nil.
func (r *Router) postJSON(url string, v interface{}, out interface{}) error {
	var body []byte
	switch b := v.(type) {
	case nil:
	case []byte:
		body = b
	default:
		var err error
		if body, err = json.Marshal(v); err != nil {
			return err
		}
	}
	resp, err := r.client.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, snippet(resp.Body))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postRaw posts a pre-marshaled JSON body (nil allowed) and hands back the
// raw success-response bytes. Migration uses it for the tenant transfer:
// the bytes extracted from the source are forwarded to the target verbatim,
// never re-encoded by the router.
func (r *Router) postRaw(url string, body []byte, out *[]byte) error {
	resp, err := r.client.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, snippet(resp.Body))
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	*out = b
	return nil
}

// snippet reads a short error-body excerpt for diagnostics.
func snippet(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 256))
	return strings.TrimSpace(string(b))
}
