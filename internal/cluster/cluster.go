// Package cluster turns a fleet of single-node omflp servers into one
// serving surface. A Router fronts N worker nodes (each an ordinary
// internal/server instance) with the same HTTP API and length-prefixed TCP
// op protocol the nodes themselves speak, so clients and load generators
// run unchanged against a cluster.
//
// # Topology and routing
//
// Each tenant lives on exactly one node; the router owns the tenant→node
// map. Creates place the tenant (least-loaded by default, rendezvous
// hashing optionally) and arrivals are forwarded to the owner — raw frames
// over a pooled TCP connection on the framed path, batched JSON on the HTTP
// path. Because a tenant's algorithmic randomness derives from
// workload.NamedSeed(engine seed, tenant name), every node must run the
// same algorithm and seed; the router verifies this at admission and
// refuses mismatched nodes. Under that invariant a tenant's snapshot is
// byte-identical wherever it is served, which is what makes migration and
// recovery testable against single-node goldens.
//
// # The arrival ledger
//
// For every route the router counts arrivals it has forwarded to the owner
// (route.count). The counter is maintained under the routing table's read
// lock, and forwarding I/O happens under that same read lock — so taking
// the write lock is a barrier: once held, no forward is in flight and the
// ledger exactly names the number of arrivals the owner has admitted for
// that tenant. Migration's quiesce step is built on this: the coordinator
// reads the ledger under the write lock and the source node waits until the
// tenant's served count reaches it before capturing state.
//
// # Live migration
//
// Migrate moves one tenant with no arrival loss and no reordering: mark the
// route migrating (new arrivals buffer in the router), flush in-flight
// frames, extract on the source once served equals the ledger, checkpoint
// the source (so a later restart does not resurrect the moved tenant),
// inject on the target, checkpoint the target, replay the buffered tail,
// and flip the route once the buffer drains. Snapshots on the target are
// byte-identical to what the source would have produced.
//
// # Failure model
//
// The router health-checks nodes and stops placing tenants on unreachable
// ones. A worker that dies takes its un-checkpointed tail with it — the
// same contract as a single node — and arrivals routed to it fail until it
// returns. When a restarted worker (restored from its v2 checkpoint)
// rejoins, the router re-syncs the routes and ledgers for its tenants from
// the node's snapshots and traffic resumes. The router itself holds no
// durable state: on restart it rebuilds the routing table by asking every
// node what it hosts, preferring the higher served count when two nodes
// claim one tenant (the footprint of a migration interrupted mid-flight).
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Config configures a Router.
type Config struct {
	// HTTPAddr is the router's HTTP listen address (required).
	HTTPAddr string
	// TCPAddr is the router's framed-op listen address ("" disables TCP).
	TCPAddr string
	// Nodes lists worker HTTP addresses ("host:port"). At least one.
	Nodes []string
	// Placement picks the tenant-placement policy: "leastload" (default)
	// places on the node hosting the fewest tenants, "rendezvous" by
	// highest rendezvous hash (stable as nodes come and go).
	Placement string
	// HealthEvery is the node health-probe period (default 1s).
	HealthEvery time.Duration
	// MigrateThreshold enables automatic rebalancing when > 1: when the
	// busiest node's arrival rate exceeds the idlest's by this factor
	// (measured between health probes), the router migrates the busiest
	// node's hottest tenant to the idlest node. 0 disables.
	MigrateThreshold float64
	// TraceSample samples 1-in-N framed arrivals forwarded over TCP for op
	// tracing: the router stamps a trace id on the upstream frame and the
	// worker records the op under that id, so a cluster-wide flight dump
	// ties a forwarded arrival to the node that served it. Inbound frames
	// that already carry an id keep it. 0 disables router-side sampling
	// (worker-side sampling still applies).
	TraceSample int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the router's
	// HTTP listener.
	EnablePprof bool
	// Logger receives structured router lifecycle events — placements,
	// node up/down/rejoin, migration phases (default: discard).
	Logger *slog.Logger
}

// Router is the cluster front: it owns the tenant→node routing table,
// proxies both protocols, coordinates migrations, and merges node metrics.
type Router struct {
	cfg    Config
	nodes  []*node
	logger *slog.Logger
	// tracer samples forwarded TCP arrivals (nil = off); see
	// Config.TraceSample.
	tracer *obs.Tracer

	// client is used for all node-side HTTP calls. Its timeout must exceed
	// the node's extract quiesce deadline.
	client *http.Client

	// ident is the cluster identity (algorithm, seed) learned from the
	// first admitted node; every other node must match.
	identMu  sync.Mutex
	identSet bool
	ident    struct {
		algorithm string
		seed      int64
	}

	// mu guards routes. Forwarding I/O runs under RLock (see package doc:
	// the write lock is the quiesce barrier).
	mu     sync.RWMutex
	routes map[string]*route

	// upstreams registers every live session's node connections so the
	// migration coordinator can flush frames it did not write.
	upMu      sync.Mutex
	upstreams map[*upstream]struct{}

	// migMu serializes migrations — one tenant moves at a time.
	migMu      sync.Mutex
	migrations atomic.Int64

	httpLn   net.Listener
	tcpLn    net.Listener
	httpSrv  *http.Server
	loops    sync.WaitGroup
	tcpConns sync.WaitGroup
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	stop     chan struct{}
	stopOnce sync.Once
}

// node is the router's view of one worker.
type node struct {
	idx  int
	addr string // host:port as configured
	base string // http://host:port

	mu      sync.Mutex
	healthy bool
	info    server.NodeInfo
	// lastSeq/lastWall are the node's (Metrics.Seq, WallUnixNano) at the
	// previous cluster scrape; an unchanged pair marks the next report
	// stale (see metrics.go).
	lastSeq  int64
	lastWall int64
	// prevServed supports the rebalance window (health.go).
	prevServed int64
	probed     bool // prevServed is meaningful only after one probe
}

func (n *node) tcp() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.info.TCPAddr
}

func (n *node) isHealthy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy
}

// route is one tenant's placement.
type route struct {
	node int
	// count is the arrival ledger: lifetime arrivals the routed node has
	// admitted for this tenant (bootstrap seeds it from the node's served
	// count). Incremented under Router.mu.RLock, read authoritatively
	// under WLock.
	count atomic.Int64
	// lastCount is count at the previous rebalance check. Touched only by
	// the health loop goroutine.
	lastCount int64
	// mig is non-nil while the tenant is migrating; arrivals then buffer
	// in it instead of being forwarded.
	mig *migration
}

// New validates the config and builds a Router. Start brings it up.
func New(cfg Config) (*Router, error) {
	if cfg.HTTPAddr == "" {
		return nil, fmt.Errorf("cluster: config needs an HTTP listen address")
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: config needs at least one node")
	}
	switch cfg.Placement {
	case "", "leastload", "rendezvous":
	default:
		return nil, fmt.Errorf("cluster: unknown placement policy %q", cfg.Placement)
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = time.Second
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.Discard()
	}
	r := &Router{
		cfg:       cfg,
		logger:    logger,
		tracer:    obs.NewTracer(cfg.TraceSample),
		client:    &http.Client{Timeout: 30 * time.Second},
		routes:    make(map[string]*route),
		upstreams: make(map[*upstream]struct{}),
		conns:     make(map[net.Conn]struct{}),
		stop:      make(chan struct{}),
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for i, addr := range cfg.Nodes {
		addr = strings.TrimPrefix(strings.TrimSpace(addr), "http://")
		if addr == "" {
			return nil, fmt.Errorf("cluster: node %d has an empty address", i)
		}
		if seen[addr] {
			return nil, fmt.Errorf("cluster: node address %s listed twice", addr)
		}
		seen[addr] = true
		r.nodes = append(r.nodes, &node{idx: i, addr: addr, base: "http://" + addr})
	}
	return r, nil
}

// Start probes every node once (admitting the reachable ones and
// bootstrapping routes from their snapshots), then opens the listeners and
// begins the health loop. At least one node must be reachable.
func (r *Router) Start() error {
	healthy := 0
	for _, n := range r.nodes {
		if err := r.probe(n); err != nil {
			r.logger.Warn("node not admitted at start", "node", n.addr, "err", err)
			continue
		}
		healthy++
	}
	if healthy == 0 {
		return fmt.Errorf("cluster: no node among %v is reachable", r.cfg.Nodes)
	}

	httpLn, err := net.Listen("tcp", r.cfg.HTTPAddr)
	if err != nil {
		return fmt.Errorf("cluster: listening on %s: %v", r.cfg.HTTPAddr, err)
	}
	r.httpLn = httpLn
	r.httpSrv = &http.Server{Handler: r.handler()}
	r.loops.Add(1)
	go func() {
		defer r.loops.Done()
		r.httpSrv.Serve(httpLn) //nolint:errcheck // ErrServerClosed on shutdown
	}()

	if r.cfg.TCPAddr != "" {
		tcpLn, err := net.Listen("tcp", r.cfg.TCPAddr)
		if err != nil {
			httpLn.Close()
			return fmt.Errorf("cluster: listening on %s: %v", r.cfg.TCPAddr, err)
		}
		r.tcpLn = tcpLn
		r.loops.Add(1)
		go r.acceptLoop(tcpLn)
	}

	r.loops.Add(1)
	go r.healthLoop()
	r.logger.Info("router up",
		"http", r.HTTPAddr(), "tcp", r.TCPAddr(), "nodes", len(r.nodes), "healthy", healthy)
	return nil
}

// HTTPAddr returns the bound HTTP address ("" before Start).
func (r *Router) HTTPAddr() string {
	if r.httpLn == nil {
		return ""
	}
	return r.httpLn.Addr().String()
}

// TCPAddr returns the bound framed-op address ("" when disabled).
func (r *Router) TCPAddr() string {
	if r.tcpLn == nil {
		return ""
	}
	return r.tcpLn.Addr().String()
}

// Shutdown stops the listeners, waits for in-flight sessions, and stops the
// health loop. Worker nodes are not touched — they outlive their router.
func (r *Router) Shutdown(timeout time.Duration) error {
	r.stopOnce.Do(func() { close(r.stop) })
	var err error
	if r.tcpLn != nil {
		r.tcpLn.Close()
	}
	done := make(chan struct{})
	go func() {
		r.tcpConns.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		err = fmt.Errorf("cluster: TCP sessions still open after %v", timeout)
		r.connMu.Lock()
		for c := range r.conns {
			c.Close()
		}
		r.connMu.Unlock()
	}
	if r.httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if serr := r.httpSrv.Shutdown(ctx); serr != nil && err == nil {
			err = serr
		}
	}
	r.loops.Wait()
	return err
}

// checkIdentity admits a node into the cluster identity (algorithm, seed)
// or rejects it: migration correctness depends on every node running the
// same deterministic policy.
func (r *Router) checkIdentity(info server.NodeInfo) error {
	r.identMu.Lock()
	defer r.identMu.Unlock()
	if !r.identSet {
		r.ident.algorithm, r.ident.seed = info.Algorithm, info.Seed
		r.identSet = true
		return nil
	}
	if info.Algorithm != r.ident.algorithm || info.Seed != r.ident.seed {
		return fmt.Errorf("node runs %s/seed=%d, cluster runs %s/seed=%d",
			info.Algorithm, info.Seed, r.ident.algorithm, r.ident.seed)
	}
	return nil
}

// getJSON fetches url and decodes the body into v (non-2xx is an error).
func (r *Router) getJSON(url string, v interface{}) error {
	resp, err := r.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, snippet(resp.Body))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// postJSON posts v (pre-marshaled when []byte) to url and decodes the
// response into out when non-nil.
func (r *Router) postJSON(url string, v interface{}, out interface{}) error {
	var body []byte
	switch b := v.(type) {
	case nil:
	case []byte:
		body = b
	default:
		var err error
		if body, err = json.Marshal(v); err != nil {
			return err
		}
	}
	resp, err := r.client.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, snippet(resp.Body))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postRaw posts a pre-marshaled JSON body (nil allowed) and hands back the
// raw success-response bytes. Migration uses it for the tenant transfer:
// the bytes extracted from the source are forwarded to the target verbatim,
// never re-encoded by the router.
func (r *Router) postRaw(url string, body []byte, out *[]byte) error {
	resp, err := r.client.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, snippet(resp.Body))
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	*out = b
	return nil
}

// snippet reads a short error-body excerpt for diagnostics.
func snippet(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 256))
	return strings.TrimSpace(string(b))
}
