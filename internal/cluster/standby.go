package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/server"
)

// Router failover. A standby router (Config.StandbyOf) is a full Router
// that starts passive: it dials the primary's framed-op listener, sends a
// {"op":"follow"} op, and receives the primary's route log — one frame
// carrying the base doc, then one frame per live journal event. The stream
// keeps the standby's routing table and its own StateDir continuously
// current, and doubles as the health probe: a primary that cannot hold the
// connection up for FailoverAfter consecutive redials is presumed dead and
// the standby promotes itself.
//
// Promotion re-probes the worker nodes and runs the snapshot re-sync as a
// consistency check (the follow stream's ledgers may trail by the
// in-flight window, exactly like a restored route log), then starts the
// health loop and goes active. The old primary is NOT fenced — the
// deployment must ensure clients move with the failover (retry lists) and
// the old primary stays down; two active routers dual-writing the same
// tenants is operator error, and the promote log line says so.

// followLoop runs the standby life cycle: follow, redial on failure,
// promote after FailoverAfter consecutive failures.
func (r *Router) followLoop() {
	defer r.loops.Done()
	fails := 0
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		err := r.followOnce()
		if err == nil {
			// Clean end of stream (primary shut down gracefully): still a
			// failure for failover accounting, but log it differently.
			err = fmt.Errorf("primary closed the follow stream")
		}
		select {
		case <-r.stop:
			return
		default:
		}
		fails++
		r.logger.Warn("follow stream lost", "primary", r.cfg.StandbyOf, "fails", fails,
			"failover_after", r.cfg.FailoverAfter, "err", err)
		if fails >= r.cfg.FailoverAfter {
			r.promote()
			return
		}
		select {
		case <-r.stop:
			return
		case <-time.After(r.cfg.HealthEvery):
		}
	}
}

// followOnce holds one follow connection: install the base, apply events
// until the stream breaks. A successfully installed base resets nothing —
// failure counting lives in followLoop — but every applied frame keeps the
// standby current, so even a flapping primary leaves the standby at most
// one event behind.
func (r *Router) followOnce() error {
	conn, err := net.DialTimeout("tcp", r.cfg.StandbyOf, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	done := make(chan struct{})
	go func() {
		select {
		case <-r.stop:
			conn.Close()
		case <-done:
		}
	}()
	defer close(done)

	op, _ := json.Marshal(map[string]string{"op": "follow"})
	if err := server.WriteFrame(conn, op); err != nil {
		return err
	}
	frame, err := server.ReadFrame(conn, nil)
	if err != nil {
		return fmt.Errorf("reading base: %v", err)
	}
	var base routeBase
	if err := json.Unmarshal(frame, &base); err != nil {
		return fmt.Errorf("decoding base: %v", err)
	}
	r.rlog.installBase(base)
	r.installRoutes(base.Routes)
	r.logger.Info("following primary", "primary", r.cfg.StandbyOf,
		"routes", len(base.Routes), "seq", base.Seq)

	var buf []byte
	for {
		frame, err := server.ReadFrame(conn, buf)
		if err != nil {
			return err
		}
		buf = frame[:0]
		var ev routeEvent
		if err := json.Unmarshal(frame, &ev); err != nil {
			return fmt.Errorf("decoding event: %v", err)
		}
		r.rlog.applyEvent(ev)
		r.applyRouteEvent(ev)
	}
}

// installRoutes replaces the in-memory routing table from a base doc's
// records (addresses → configured node indices; unknown addresses drop the
// route with a warning, as in restoreRoutes).
func (r *Router) installRoutes(records map[string]routeRecord) {
	byAddr := make(map[string]int, len(r.nodes))
	for _, n := range r.nodes {
		byAddr[n.addr] = n.idx
	}
	routes := make(map[string]*route, len(records))
	for tenant, rec := range records {
		idx, ok := byAddr[rec.Node]
		if !ok {
			r.logger.Warn("followed route names an unconfigured node, dropping",
				"tenant", tenant, "node", rec.Node)
			continue
		}
		rt := &route{node: idx, follower: -1, epoch: rec.Epoch}
		if fidx, ok := byAddr[rec.Follower]; ok && rec.Follower != "" {
			rt.follower = fidx
		}
		rt.count.Store(rec.Count)
		routes[tenant] = rt
	}
	r.mu.Lock()
	r.routes = routes
	r.mu.Unlock()
}

// applyRouteEvent folds one followed journal event into the in-memory
// routing table — the standby's mirror of what fold does to the record map.
func (r *Router) applyRouteEvent(ev routeEvent) {
	byAddr := func(addr string) int {
		for _, n := range r.nodes {
			if n.addr == addr {
				return n.idx
			}
		}
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch ev.Op {
	case "place":
		idx := byAddr(ev.Node)
		if idx < 0 {
			r.logger.Warn("followed place names an unconfigured node, dropping",
				"tenant", ev.Tenant, "node", ev.Node)
			return
		}
		rt := &route{node: idx, follower: byAddr(ev.Follower), epoch: ev.Epoch}
		rt.count.Store(ev.Count)
		r.routes[ev.Tenant] = rt
	case "flip", "promote":
		rt := r.routes[ev.Tenant]
		idx := byAddr(ev.Node)
		if rt == nil || idx < 0 {
			return
		}
		rt.node = idx
		rt.follower = byAddr(ev.Follower)
		rt.epoch = ev.Epoch
		rt.count.Store(ev.Count)
	case "drop":
		delete(r.routes, ev.Tenant)
	case "follower":
		if rt := r.routes[ev.Tenant]; rt != nil {
			rt.follower = byAddr(ev.Follower)
		}
	case "counts":
		for id, c := range ev.Counts {
			if rt := r.routes[id]; rt != nil {
				rt.count.Store(c)
			}
		}
	}
}

// promote turns the standby active: probe the nodes, run the snapshot
// re-sync as a consistency check over the followed table, mark every
// ledger unsynced (the stream may trail by the in-flight window), and
// start the health loop. From here the router journals its own events.
func (r *Router) promote() {
	r.logger.Warn("standby promoting — primary presumed dead; ensure it stays down",
		"primary", r.cfg.StandbyOf)
	r.mu.Lock()
	for _, rt := range r.routes {
		rt.synced = false
	}
	routes := len(r.routes)
	r.mu.Unlock()
	// Skip probe-time auto-sync (the followed table is authoritative);
	// run the consistency check explicitly below.
	if routes > 0 && r.routesRestored == 0 {
		r.routesRestored = routes
	}
	healthy := 0
	for _, n := range r.nodes {
		if err := r.probe(n); err != nil {
			r.logger.Warn("node unreachable at promotion", "node", n.addr, "err", err)
			continue
		}
		healthy++
	}
	for _, n := range r.nodes {
		if !n.isHealthy() {
			continue
		}
		if err := r.syncNode(n); err != nil {
			r.logger.Warn("promotion consistency sync failed", "node", n.addr, "err", err)
		}
	}
	r.standby.Store(false)
	r.loops.Add(1)
	go r.healthLoop()
	r.logger.Warn("standby promoted to active",
		"routes", routes, "healthy_nodes", healthy, "nodes", len(r.nodes))
}
