package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
)

// handler builds the router's HTTP surface: the node API verbatim (create,
// arrive, snapshots, metrics, healthz, checkpoint) plus the cluster-only
// verbs (migrate, routes). Routing verbs are gated on the router's role: a
// passive standby answers them 503 with role=standby so clients rotate to
// the active router; observability verbs always answer.
func (r *Router) handler() http.Handler {
	mux := http.NewServeMux()
	active := r.requireActive
	mux.HandleFunc("POST /v1/tenants/{id}", active(r.handleCreate))
	mux.HandleFunc("POST /v1/tenants/{id}/arrive", active(r.handleArrive))
	mux.HandleFunc("GET /v1/tenants/{id}/served", active(r.handleServed))
	mux.HandleFunc("GET /v1/tenants/{id}/snapshot", active(r.handleSnapshot))
	mux.HandleFunc("GET /v1/snapshots", active(r.handleSnapshots))
	mux.HandleFunc("GET /v1/metrics", r.handleMetrics)
	mux.HandleFunc("GET /metrics", r.handleProm)
	mux.HandleFunc("GET /v1/debug/flight", r.handleFlight)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("POST /v1/checkpoint", active(r.handleCheckpoint))
	mux.HandleFunc("POST /v1/migrate", active(r.handleMigrate))
	mux.HandleFunc("GET /v1/routes", r.handleRoutes)
	if r.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// requireActive refuses routing verbs while the router is a passive
// standby. 503 + role=standby is the rotation signal: retrying clients
// (loadgen -retry, the cluster retry policy) move to the next address.
func (r *Router) requireActive(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if r.standby.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{
				"error": "router is a passive standby", "role": "standby", "primary": r.cfg.StandbyOf,
			})
			return
		}
		next(w, req)
	}
}

// clusterStatus maps router errors onto HTTP statuses. A stale or missing
// route answers 421 Misdirected Request — the cluster cousin of the node's
// 404: the tenant may exist, just not where this request went. An
// idempotency-key gap answers 409, matching the node's contract.
func clusterStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrArrivalGap):
		return http.StatusConflict
	case errors.Is(err, engine.ErrUnknownTenant):
		return http.StatusMisdirectedRequest
	case errors.Is(err, engine.ErrDuplicateTenant):
		return http.StatusConflict
	case errors.Is(err, engine.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadGateway
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type createBody struct {
	Universe   int         `json:"universe"`
	Distances  [][]float64 `json:"distances"`
	CostBySize []float64   `json:"cost_by_size"`
}

type arriveBody struct {
	server.Arrival
	Arrivals []server.Arrival `json:"arrivals"`
}

func (r *Router) handleCreate(w http.ResponseWriter, req *http.Request) {
	var body createBody
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding create body: %v", err))
		return
	}
	id := req.PathValue("id")
	if err := r.createTenant(id, body.Universe, body.Distances, body.CostBySize); err != nil {
		writeErr(w, clusterStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"tenant": id, "status": "created"})
}

func (r *Router) handleArrive(w http.ResponseWriter, req *http.Request) {
	var body arriveBody
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding arrive body: %v", err))
		return
	}
	batch := body.Arrivals
	if batch == nil {
		batch = []server.Arrival{body.Arrival}
	}
	// Propagate an inbound trace id, or sample one at the router, so the
	// worker's record carries the cluster-level trace context.
	traceID := obs.ParseTraceID(req.Header.Get(server.TraceHeader))
	if traceID == 0 {
		traceID = r.tracer.Sample()
	}
	// A client idempotency key (stream position of batch[0]) makes the call
	// retry-safe end to end: the router trims the already-routed prefix
	// against its ledger before forwarding, exactly as a node trims against
	// its admitted count.
	clientStart := int64(-1)
	if v := req.Header.Get(server.IdemHeader); v != "" {
		start, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil || start < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad %s %q", server.IdemHeader, v))
			return
		}
		clientStart = start
	}
	accepted, deduped, err := r.forwardArrivalsAt(req.PathValue("id"), batch, traceID, clientStart)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(clusterStatus(err))
		json.NewEncoder(w).Encode(map[string]interface{}{
			"error": err.Error(), "accepted": accepted, "deduped": deduped,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted, "deduped": deduped})
}

// handleServed proxies the owner node's admitted/served counts — what a
// resuming client needs to rebuild its idempotency key after a failover.
// The route is re-synced first so a freshly promoted or restarted router
// answers with the owner's truth, not a restored ledger.
func (r *Router) handleServed(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if err := r.ensureSynced(id); err != nil {
		writeErr(w, clusterStatus(err), err)
		return
	}
	r.mu.RLock()
	rt := r.routes[id]
	var base string
	if rt != nil {
		base = r.nodes[rt.node].base
	}
	r.mu.RUnlock()
	if rt == nil {
		writeErr(w, http.StatusMisdirectedRequest,
			fmt.Errorf("cluster: tenant %q has no route: %w", id, engine.ErrUnknownTenant))
		return
	}
	resp, err := r.client.Get(base + "/v1/tenants/" + id + "/served")
	if err != nil {
		writeErr(w, http.StatusBadGateway, fmt.Errorf("cluster: node served: %v", err))
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client-side failure
}

// handleSnapshot proxies a single-tenant snapshot to the owner node. While
// the tenant migrates there is a window (extracted, not yet injected) in
// which the source answers 404; clients retry, as they would any transient.
func (r *Router) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r.mu.RLock()
	rt := r.routes[id]
	var base string
	if rt != nil {
		base = r.nodes[rt.node].base
	}
	r.mu.RUnlock()
	if rt == nil {
		writeErr(w, http.StatusMisdirectedRequest,
			fmt.Errorf("cluster: tenant %q has no route: %w", id, engine.ErrUnknownTenant))
		return
	}
	url := base + "/v1/tenants/" + id + "/snapshot"
	if q := req.URL.RawQuery; q != "" {
		url += "?" + q
	}
	resp, err := r.client.Get(url)
	if err != nil {
		writeErr(w, http.StatusBadGateway, fmt.Errorf("cluster: node snapshot: %v", err))
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client-side failure
}

// handleSnapshots merges every node's snapshots into the exact artifact a
// single node emits — all tenants sorted by name, indented, trailing
// newline — so cluster goldens diff against single-node goldens. Each
// node's list is filtered by the routing table, which drops ghosts (a
// tenant a node still hosts after its migration away, e.g. because the
// post-extract checkpoint could not be written before a restart).
func (r *Router) handleSnapshots(w http.ResponseWriter, req *http.Request) {
	q := ""
	if v := req.URL.Query().Get("compact"); v != "" {
		if _, err := strconv.ParseBool(v); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("compact=%q is not a boolean", v))
			return
		}
		q = "?compact=" + v
	}

	owned := make(map[string]int)
	r.mu.RLock()
	for id, rt := range r.routes {
		owned[id] = rt.node
	}
	r.mu.RUnlock()

	var merged []*engine.TenantSnapshot
	for _, n := range r.nodes {
		if !n.isHealthy() {
			// An unreachable node makes the artifact incomplete; refuse
			// rather than silently emitting a partial cluster state.
			if nodeOwnsAny(owned, n.idx) {
				writeErr(w, http.StatusServiceUnavailable,
					fmt.Errorf("cluster: node %s (owning tenants) is unreachable", n.addr))
				return
			}
			continue
		}
		var snaps []*engine.TenantSnapshot
		if err := r.getJSON(n.base+"/v1/snapshots"+q, &snaps); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Errorf("cluster: snapshots from %s: %v", n.addr, err))
			return
		}
		for _, s := range snaps {
			if idx, ok := owned[s.Tenant]; ok && idx == n.idx {
				merged = append(merged, s)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Tenant < merged[j].Tenant })
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n')) //nolint:errcheck // client-side failure
}

func nodeOwnsAny(owned map[string]int, idx int) bool {
	for _, n := range owned {
		if n == idx {
			return true
		}
	}
	return false
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Metrics())
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	healthy := 0
	for _, n := range r.nodes {
		if n.isHealthy() {
			healthy++
		}
	}
	r.mu.RLock()
	tenants := len(r.routes)
	replicated := 0
	for _, rt := range r.routes {
		if rt.follower >= 0 {
			replicated++
		}
	}
	r.mu.RUnlock()
	status := "ok"
	if healthy < len(r.nodes) {
		status = "degraded"
	}
	role := "router"
	if r.standby.Load() {
		role = "standby"
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":          status,
		"role":            role,
		"nodes":           len(r.nodes),
		"healthy":         healthy,
		"tenants":         tenants,
		"replicated":      replicated,
		"routes_restored": r.routesRestored,
	})
}

// handleCheckpoint fans the checkpoint verb out to every healthy node, so
// "persist the cluster" is one call — the smoke test's pre-kill step.
func (r *Router) handleCheckpoint(w http.ResponseWriter, req *http.Request) {
	type nodeStatus struct {
		Node  string `json:"node"`
		OK    bool   `json:"ok"`
		Error string `json:"error,omitempty"`
	}
	statuses := make([]nodeStatus, 0, len(r.nodes))
	failed := 0
	for _, n := range r.nodes {
		st := nodeStatus{Node: n.addr}
		if !n.isHealthy() {
			st.Error = "unreachable"
			failed++
		} else if err := r.postJSON(n.base+"/v1/checkpoint", nil, nil); err != nil {
			st.Error = err.Error()
			failed++
		} else {
			st.OK = true
		}
		statuses = append(statuses, st)
	}
	code := http.StatusOK
	if failed > 0 {
		code = http.StatusBadGateway
	}
	writeJSON(w, code, map[string]interface{}{"nodes": statuses, "failed": failed})
}

// migrateBody is the POST /v1/migrate document. Target may be empty: the
// router then picks the healthy node (other than the current owner) with
// the fewest tenants.
type migrateBody struct {
	Tenant string `json:"tenant"`
	Target string `json:"target"`
}

func (r *Router) handleMigrate(w http.ResponseWriter, req *http.Request) {
	var body migrateBody
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding migrate body: %v", err))
		return
	}
	if body.Tenant == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("migrate needs a tenant"))
		return
	}
	target := body.Target
	if target == "" {
		t, err := r.pickMigrateTarget(body.Tenant)
		if err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		target = t
	}
	res, err := r.Migrate(body.Tenant, target)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// pickMigrateTarget chooses where an unspecified migration should land:
// the healthy node with the fewest routed tenants, excluding the current
// owner.
func (r *Router) pickMigrateTarget(tenant string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rt := r.routes[tenant]
	if rt == nil {
		return "", fmt.Errorf("cluster: tenant %q has no route", tenant)
	}
	hosted := make([]int, len(r.nodes))
	for _, other := range r.routes {
		hosted[other.node]++
	}
	best := -1
	for _, n := range r.nodes {
		if n.idx == rt.node || !n.isHealthy() {
			continue
		}
		if best == -1 || hosted[n.idx] < hosted[best] {
			best = n.idx
		}
	}
	if best == -1 {
		return "", fmt.Errorf("cluster: no healthy node other than %s to migrate %q to",
			r.nodes[rt.node].addr, tenant)
	}
	return r.nodes[best].addr, nil
}

// RouteInfo is one tenant's routing entry as reported by GET /v1/routes.
type RouteInfo struct {
	Node      string `json:"node"`
	Follower  string `json:"follower,omitempty"`
	Arrivals  int64  `json:"arrivals"`
	Epoch     int64  `json:"epoch,omitempty"`
	Migrating bool   `json:"migrating"`
}

func (r *Router) handleRoutes(w http.ResponseWriter, req *http.Request) {
	out := make(map[string]RouteInfo)
	r.mu.RLock()
	for id, rt := range r.routes {
		out[id] = RouteInfo{
			Node:      r.nodes[rt.node].addr,
			Follower:  r.nodeAddr(rt.follower),
			Arrivals:  rt.count.Load(),
			Epoch:     rt.epoch,
			Migrating: rt.mig != nil,
		}
	}
	r.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}
