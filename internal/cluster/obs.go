package cluster

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/obs"
	"repro/internal/server"
)

// handleProm serves the router's GET /metrics: the whole cluster in one
// Prometheus exposition. Cluster-level series come from the router's own
// accounting; every fresh node scrape is re-emitted with a node="addr"
// label (HELP/TYPE headers dedupe inside the PromWriter, so N nodes share
// one header per family). A stale scrape (unchanged Seq + wall stamp — see
// NodeReport.Stale) keeps its marker series but is not re-emitted: its
// gauges and rate windows describe a moment already scraped, and summing
// them again would double-count.
func (r *Router) handleProm(w http.ResponseWriter, req *http.Request) {
	cm := r.Metrics()
	w.Header().Set("Content-Type", server.PromContentType)
	p := obs.NewPromWriter(w)

	p.Gauge("omflp_cluster_nodes", "Worker nodes configured.", float64(cm.Nodes))
	p.Gauge("omflp_cluster_healthy_nodes", "Worker nodes currently reachable.", float64(cm.HealthyNodes))
	p.Gauge("omflp_cluster_tenants", "Tenants in the routing table.", float64(cm.Tenants))
	p.Counter("omflp_cluster_served_total", "Arrivals admitted through the cluster (route ledgers).", float64(cm.Served))
	p.Gauge("omflp_cluster_window_arrivals_per_sec", "Summed fresh-node window rates.", cm.WindowArrivalsPerSec)
	p.Counter("omflp_cluster_migrations_total", "Migrations completed since router start.", float64(cm.Migrations))
	p.Gauge("omflp_cluster_replicated_tenants", "Routes with a live follower replica.", float64(cm.ReplicatedTenants))
	p.Counter("omflp_cluster_retries_total", "Forwarding attempts repeated under the retry policy.", float64(cm.Retries))
	p.Counter("omflp_cluster_failovers_total", "Node-down events that triggered follower promotion.", float64(cm.Failovers))
	p.Counter("omflp_cluster_promotions_total", "Tenants promoted onto their follower replica.", float64(cm.Promotions))
	p.Counter("omflp_cluster_replication_degrades_total", "Followers dropped after dual-write or reseed failure.", float64(cm.ReplicationDegrades))
	for _, kind := range [...]string{"dial_fail", "conn_reset", "stall", "partial", "probe_flap"} {
		if n, ok := cm.Faults[kind]; ok {
			p.Counter("omflp_cluster_injected_faults_total", "Injected faults fired, by kind.",
				float64(n), obs.PromLabel{Name: "kind", Value: kind})
		}
	}

	for _, rep := range cm.PerNode {
		nl := obs.PromLabel{Name: "node", Value: rep.Node}
		p.Gauge("omflp_node_healthy", "1 when the node answered this scrape.", b2f(rep.Healthy), nl)
		p.Gauge("omflp_node_stale", "1 when the node's report duplicated the previous scrape (excluded from re-emission).", b2f(rep.Stale), nl)
		p.Gauge("omflp_node_routed", "Tenants the routing table places on the node.", float64(rep.Routed), nl)
		if rep.Metrics != nil && !rep.Stale {
			server.WriteMetricsProm(p, rep.Metrics, nl)
		}
	}
	p.Flush() //nolint:errcheck // client gone mid-scrape
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleFlight serves the router's GET /v1/debug/flight: every healthy
// node's flight dump merged into one timeline, each record stamped with its
// origin node. ?tenant= and ?max= apply to the merged view (and are also
// pushed down to the nodes so no node ships more than the caller can see).
// An unreachable node is skipped — a debugging dump should show what is
// still observable, not fail because one node is not.
func (r *Router) handleFlight(w http.ResponseWriter, req *http.Request) {
	max := 0
	if v := req.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("max=%q is not a count", v))
			return
		}
		max = n
	}
	tenant := req.URL.Query().Get("tenant")

	q := url.Values{}
	if tenant != "" {
		q.Set("tenant", tenant)
	}
	if max > 0 {
		q.Set("max", strconv.Itoa(max))
	}
	suffix := "/v1/debug/flight"
	if len(q) > 0 {
		suffix += "?" + q.Encode()
	}

	doc := server.FlightDumpDoc{Records: []obs.FlightRecord{}}
	for _, n := range r.nodes {
		if !n.isHealthy() {
			continue
		}
		var nd server.FlightDumpDoc
		if err := r.getJSON(n.base+suffix, &nd); err != nil {
			r.logger.Warn("flight dump scrape failed", "node", n.addr, "err", err)
			continue
		}
		doc.Tracing = doc.Tracing || nd.Tracing
		for i := range nd.Records {
			nd.Records[i].Node = n.addr
		}
		doc.Records = append(doc.Records, nd.Records...)
	}
	obs.SortFlight(doc.Records)
	doc.Records = obs.FilterFlight(doc.Records, "", max)
	writeJSON(w, http.StatusOK, doc)
}
