package cluster

import (
	"fmt"
)

// Tenant replication. A replicated tenant is a live second instance on a
// follower node fed the identical arrival stream (see forwardArrivalsAt):
// because tenant state is a pure function of (algorithm, seed, arrivals),
// the two instances' snapshots are byte-identical at every settled point.
// There is no follower read path — the replica exists only to be promoted.
//
// Invariants:
//
//   - An arrival is accounted (acked to the client, counted in the ledger's
//     settled view) only after both instances admitted it. Promotion
//     therefore loses at most the in-flight, unacked window — the same
//     window a single-node crash loses.
//   - A follower that misses a batch the owner admitted has diverged and is
//     degraded immediately (rt.follower = -1, journaled); it is never
//     promoted. The health loop reseeds a fresh follower from the owner's
//     exported state.
//   - Promotion bumps the route's epoch. A promoted route never re-adopts
//     another claimant during snapshot re-sync: the old owner rejoining
//     with stale state is a ghost, not a candidate (health.go).

// degradeFollower drops a tenant's follower after a replication failure:
// the replica missed part of the stream and can no longer be promoted.
// No-op if the follower changed since the caller observed fidx.
func (r *Router) degradeFollower(tenant string, fidx int, cause error) {
	r.mu.Lock()
	rt := r.routes[tenant]
	if rt == nil || rt.follower != fidx {
		r.mu.Unlock()
		return
	}
	rt.follower = -1
	r.mu.Unlock()
	r.replDegrades.Add(1)
	r.rlog.append(routeEvent{Op: "follower", Tenant: tenant, Follower: ""})
	r.logger.Warn("follower degraded",
		"tenant", tenant, "follower", r.nodeAddr(fidx), "err", cause)
}

// failoverNode promotes every route owned by a node just declared down to
// its follower, in one pass under the write lock (the quiesce barrier: no
// forward is mid-flight while routes flip). Routes without a healthy
// follower are left pointing at the dead node — they fail fast until it
// rejoins, the unreplicated contract. Called from the health loop.
func (r *Router) failoverNode(n *node) {
	type promo struct {
		tenant string
		fidx   int
		count  int64
		epoch  int64
	}
	var promos []promo
	r.mu.Lock()
	for id, rt := range r.routes {
		if rt.node != n.idx || rt.mig != nil {
			continue
		}
		if rt.follower < 0 || !r.nodes[rt.follower].isHealthy() {
			continue
		}
		rt.node = rt.follower
		rt.follower = -1
		rt.epoch++
		// The persisted/accounted ledger may lead the follower's admitted
		// count by the in-flight window; reconcile before trusting it.
		rt.synced = false
		promos = append(promos, promo{id, rt.node, rt.count.Load(), rt.epoch})
	}
	r.mu.Unlock()
	if len(promos) == 0 {
		return
	}
	r.failovers.Add(1)
	for _, p := range promos {
		r.promotions.Add(1)
		r.rlog.append(routeEvent{Op: "promote", Tenant: p.tenant,
			Node: r.nodeAddr(p.fidx), Follower: "", Count: p.count, Epoch: p.epoch})
		r.logger.Warn("route promoted to follower",
			"tenant", p.tenant, "dead", n.addr, "owner", r.nodeAddr(p.fidx), "epoch", p.epoch)
	}
	// Adopt each survivor's admitted count as the ledger, then restore
	// redundancy. Both are best-effort: an unsynced route re-syncs lazily
	// on its next forward, an unreplicated one reseeds on a later tick.
	for _, p := range promos {
		if err := r.resyncRoute(p.tenant); err != nil {
			r.logger.Warn("post-promotion ledger re-sync failed", "tenant", p.tenant, "err", err)
		}
		r.reseedFollower(p.tenant)
	}
}

// reseedFollower brings an unreplicated tenant back to owner+follower: the
// route is quiesced exactly like a migration (arrivals buffer), the owner's
// state exported at the precise ledger cut, injected into a freshly placed
// follower node, and the buffered tail replayed to both before the follower
// goes live. The quiesce is what makes the replica's stream gapless — an
// export taken while forwards kept flowing would miss everything between
// the cut and the follower's first dual-write.
func (r *Router) reseedFollower(tenant string) {
	if !r.cfg.Replicate {
		return
	}
	r.migMu.Lock()
	defer r.migMu.Unlock()

	r.mu.Lock()
	rt := r.routes[tenant]
	if rt == nil || rt.follower >= 0 || rt.mig != nil || !rt.synced {
		r.mu.Unlock()
		return
	}
	fidx, err := r.place(tenant, rt.node)
	if err != nil {
		r.mu.Unlock()
		return // no second healthy node; stay unreplicated
	}
	owner := r.nodes[rt.node]
	fnode := r.nodes[fidx]
	mig := &migration{}
	rt.mig = mig
	cut := rt.count.Load()
	r.mu.Unlock()

	r.flushNodeUpstreams(owner.idx)
	var transfer []byte
	if err := r.getRaw(owner.base+"/v1/tenants/"+tenant+"/export?served="+fmt.Sprint(cut), &transfer); err != nil {
		r.logger.Warn("follower reseed export failed", "tenant", tenant, "owner", owner.addr, "err", err)
		r.abortMigration(rt, mig, owner, tenant)
		return
	}
	// A stale replica from an earlier degrade may still live on the chosen
	// node; extract-and-discard clears it so the inject starts clean.
	var discard []byte
	r.postRaw(fnode.base+"/v1/tenants/"+tenant+"/extract", nil, &discard) //nolint:errcheck // 404 = nothing stale
	if err := r.postJSON(fnode.base+"/v1/tenants/"+tenant+"/inject", transfer, nil); err != nil {
		r.logger.Warn("follower reseed inject failed", "tenant", tenant, "follower", fnode.addr, "err", err)
		r.abortMigration(rt, mig, owner, tenant)
		return
	}

	// Drain the buffered tail to both instances, then activate the
	// follower once the buffer is observed empty under the write lock.
	replayed := 0
	for {
		batch := mig.take()
		if len(batch) > 0 {
			n, err := r.replayArrivals(owner, tenant, batch)
			r.mu.RLock()
			rt.count.Add(int64(n))
			r.mu.RUnlock()
			replayed += n
			if err != nil {
				r.logger.Error("follower reseed lost buffered arrivals",
					"tenant", tenant, "lost", len(batch)-n, "err", err)
				r.finishReseed(rt, mig, -1)
				return
			}
			if _, ferr := r.replayArrivals(fnode, tenant, batch); ferr != nil {
				r.logger.Warn("follower reseed replay failed", "tenant", tenant, "follower", fnode.addr, "err", ferr)
				r.finishReseed(rt, mig, -1)
				return
			}
			continue
		}
		r.mu.Lock()
		mig.mu.Lock()
		empty := len(mig.buf) == 0
		mig.mu.Unlock()
		if empty {
			rt.follower = fidx
			rt.mig = nil
			r.mu.Unlock()
			break
		}
		r.mu.Unlock()
	}
	r.rlog.append(routeEvent{Op: "follower", Tenant: tenant, Follower: fnode.addr})
	r.logger.Info("follower reseeded",
		"tenant", tenant, "owner", owner.addr, "follower", fnode.addr,
		"cut", cut, "replayed", replayed)
}

// finishReseed unmarks a failed reseed's quiesce. fidx >= 0 would activate
// the follower; -1 leaves the tenant unreplicated for a later attempt.
func (r *Router) finishReseed(rt *route, mig *migration, fidx int) {
	r.mu.Lock()
	rt.follower = fidx
	rt.mig = nil
	r.mu.Unlock()
	mig.take()
}
