package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// The fixed test workload: a 4-point line metric, universe 3, and an
// arithmetically generated arrival sequence — deterministic without any
// RNG so the single-node reference and the cluster replay byte-compare.
var testCreate = createBody{
	Universe: 3,
	Distances: [][]float64{
		{0, 1, 2, 3},
		{1, 0, 1, 2},
		{2, 1, 0, 1},
		{3, 2, 1, 0},
	},
	CostBySize: []float64{0, 1, 1.5, 1.8},
}

var demandSets = [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}}

func testArrival(i int) server.Arrival {
	return server.Arrival{Point: (i * 5) % 4, Demands: demandSets[i%len(demandSets)]}
}

func tenantName(i int) string { return fmt.Sprintf("tenant-%03d", i) }

func startWorker(t *testing.T, seed int64, ckptDir string) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		HTTPAddr:      "127.0.0.1:0",
		TCPAddr:       "127.0.0.1:0",
		CheckpointDir: ckptDir,
		Engine:        engine.Config{Algorithm: "pd", Shards: 2, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func startRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = 25 * time.Millisecond
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Shutdown(5 * time.Second) })
	return r
}

func httpJSON(t *testing.T, method, url string, body interface{}, wantStatus int) []byte {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d — body %s", method, url, resp.StatusCode, wantStatus, out)
	}
	return out
}

// referenceArtifact serves the full workload on one fresh node and returns
// its /v1/snapshots bytes — the golden every cluster test compares against.
func referenceArtifact(t *testing.T, seed int64, tenants, arrivals int) []byte {
	t.Helper()
	ref := startWorker(t, seed, "")
	base := "http://" + ref.HTTPAddr()
	for i := 0; i < tenants; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i), testCreate, http.StatusCreated)
	}
	for i := 0; i < arrivals; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i%tenants)+"/arrive", testArrival(i), http.StatusOK)
	}
	return httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRouterByteIdentity: tenants created and served through a 2-node
// router produce the exact /v1/snapshots artifact a single node yields for
// the same workload — the cluster determinism contract over HTTP.
func TestRouterByteIdentity(t *testing.T) {
	const tenants, arrivals = 3, 60
	want := referenceArtifact(t, 11, tenants, arrivals)

	w1 := startWorker(t, 11, "")
	w2 := startWorker(t, 11, "")
	r := startRouter(t, Config{Nodes: []string{w1.HTTPAddr(), w2.HTTPAddr()}})
	base := "http://" + r.HTTPAddr()

	for i := 0; i < tenants; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i), testCreate, http.StatusCreated)
	}
	// Least-load placement must actually spread the tenants.
	r.mu.RLock()
	byNode := map[int]int{}
	for _, rt := range r.routes {
		byNode[rt.node]++
	}
	r.mu.RUnlock()
	if len(byNode) != 2 {
		t.Fatalf("placement used %d of 2 nodes", len(byNode))
	}

	// Batched and single arrivals, mixed.
	for i := 0; i < arrivals; i += 2 {
		id := tenantName(i % tenants)
		next := tenantName((i + 1) % tenants)
		if id == next {
			httpJSON(t, "POST", base+"/v1/tenants/"+id+"/arrive", map[string]interface{}{
				"arrivals": []server.Arrival{testArrival(i), testArrival(i + 1)},
			}, http.StatusOK)
			continue
		}
		httpJSON(t, "POST", base+"/v1/tenants/"+id+"/arrive", testArrival(i), http.StatusOK)
		httpJSON(t, "POST", base+"/v1/tenants/"+next+"/arrive", testArrival(i+1), http.StatusOK)
	}

	got := httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("cluster snapshots differ from the single-node artifact")
	}

	var m Metrics
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/metrics", nil, http.StatusOK), &m); err != nil {
		t.Fatal(err)
	}
	if m.Tenants != tenants || m.Served != arrivals || m.HealthyNodes != 2 {
		t.Errorf("cluster metrics %+v, want %d tenants / %d served / 2 healthy", m, tenants, arrivals)
	}
}

// streamFrames writes arrive ops for arrivals [lo, hi) over an open framed
// connection to the router.
func streamFrames(t *testing.T, bw *bufio.Writer, tenants, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		a := testArrival(i)
		op := engine.Op{Op: "arrive", Tenant: tenantName(i % tenants), Point: a.Point, Demands: a.Demands}
		payload, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		if err := server.WriteFrame(bw, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationByteIdentityOverTCP is the live-migration contract end to
// end: a tenant moves between nodes in the middle of an open framed-TCP
// stream — quiescing the in-flight frames the coordinator itself never
// wrote — and the final cluster artifact is byte-identical to the
// single-node reference.
func TestMigrationByteIdentityOverTCP(t *testing.T) {
	const tenants, arrivals, cut = 3, 60, 33
	want := referenceArtifact(t, 13, tenants, arrivals)

	w1 := startWorker(t, 13, "")
	w2 := startWorker(t, 13, "")
	r := startRouter(t, Config{TCPAddr: "127.0.0.1:0", Nodes: []string{w1.HTTPAddr(), w2.HTTPAddr()}})
	base := "http://" + r.HTTPAddr()

	for i := 0; i < tenants; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i), testCreate, http.StatusCreated)
	}

	conn, err := net.Dial("tcp", r.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	streamFrames(t, bw, tenants, 0, cut)

	// Move tenant-001 to whichever node doesn't own it, with the stream
	// still open: Migrate must flush this session's buffered upstream
	// frames to quiesce, then flip. Wait for the router to have forwarded
	// the prefix first — otherwise the move is still correct but the test
	// would see the frames buffered and replayed instead of quiesced.
	const moved = "tenant-001"
	waitFor(t, "prefix to reach the ledger", func() bool {
		r.mu.RLock()
		defer r.mu.RUnlock()
		rt, ok := r.routes[moved]
		return ok && rt.count.Load() == cut/3
	})
	r.mu.RLock()
	owner := r.routes[moved].node
	r.mu.RUnlock()
	target := []string{w1.HTTPAddr(), w2.HTTPAddr()}[1-owner]
	res, err := r.Migrate(moved, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.To != target || res.Served != cut/3 {
		t.Errorf("migrate result %+v, want to=%s served=%d", res, target, cut/3)
	}

	// Same connection keeps serving the suffix, now routed to the new owner.
	streamFrames(t, bw, tenants, cut, arrivals)
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	frame, err := server.ReadFrame(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	var tcpRes server.TCPResult
	if err := json.Unmarshal(frame, &tcpRes); err != nil {
		t.Fatal(err)
	}
	if !tcpRes.OK || tcpRes.Arrivals != arrivals {
		t.Fatalf("TCP result %+v, want ok with %d arrivals", tcpRes, arrivals)
	}

	got := httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("post-migration snapshots differ from the single-node artifact")
	}
	if n := r.migrations.Load(); n != 1 {
		t.Errorf("migrations counter = %d, want 1", n)
	}
}

// TestRecoveryRejoin: a worker restarted from its checkpoint rejoins the
// cluster — the router re-syncs the routes and ledgers from the node's
// snapshots and serving resumes with the reference artifact intact.
func TestRecoveryRejoin(t *testing.T) {
	const tenants, arrivals, cut = 3, 60, 42
	want := referenceArtifact(t, 17, tenants, arrivals)

	w1 := startWorker(t, 17, t.TempDir())
	dir2 := t.TempDir()
	w2 := startWorker(t, 17, dir2)
	w2Addr := w2.HTTPAddr()
	r := startRouter(t, Config{Nodes: []string{w1.HTTPAddr(), w2Addr}})
	base := "http://" + r.HTTPAddr()

	for i := 0; i < tenants; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i), testCreate, http.StatusCreated)
	}
	for i := 0; i < cut; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i%tenants)+"/arrive", testArrival(i), http.StatusOK)
	}
	httpJSON(t, "POST", base+"/v1/checkpoint", nil, http.StatusOK)

	// Take worker 2 down and wait for the router to notice.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	w2.Shutdown(ctx)
	cancel()
	waitFor(t, "router to mark node 2 down", func() bool {
		var m Metrics
		json.Unmarshal(httpJSON(t, "GET", base+"/v1/metrics", nil, http.StatusOK), &m)
		return m.HealthyNodes == 1
	})

	// Arrivals for worker-2 tenants fail while it is down (502), and the
	// creates keep landing on the survivor.
	r.mu.RLock()
	var lostTenant string
	for id, rt := range r.routes {
		if r.nodes[rt.node].addr == w2Addr {
			lostTenant = id
			break
		}
	}
	r.mu.RUnlock()
	if lostTenant == "" {
		t.Fatal("no tenant was routed to worker 2")
	}
	resp, err := http.Post(base+"/v1/tenants/"+lostTenant+"/arrive", "application/json",
		strings.NewReader(`{"point":0,"demands":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("arrive on downed node: status %d, want 502", resp.StatusCode)
	}

	// Restart worker 2 on the same address from its checkpoint; the
	// router's health loop re-admits it and re-syncs its routes.
	w2b, err := server.New(server.Config{
		HTTPAddr:      w2Addr,
		CheckpointDir: dir2,
		Engine:        engine.Config{Algorithm: "pd", Shards: 2, Seed: 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		w2b.Shutdown(ctx)
	})
	waitFor(t, "router to re-admit node 2", func() bool {
		var m Metrics
		json.Unmarshal(httpJSON(t, "GET", base+"/v1/metrics", nil, http.StatusOK), &m)
		return m.HealthyNodes == 2
	})

	// Serving resumes across the whole cluster; the final artifact equals
	// the single-node reference.
	for i := cut; i < arrivals; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i%tenants)+"/arrive", testArrival(i), http.StatusOK)
	}
	got := httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("post-recovery snapshots differ from the single-node artifact")
	}
}

// TestRouterSentinels: the router maps routing failures onto distinct
// statuses — 421 for a tenant no node owns (the request was misdirected at
// the cluster), 409 for duplicate creates — and the framed path reports the
// machine-readable code.
func TestRouterSentinels(t *testing.T) {
	w1 := startWorker(t, 19, "")
	r := startRouter(t, Config{TCPAddr: "127.0.0.1:0", Nodes: []string{w1.HTTPAddr()}})
	base := "http://" + r.HTTPAddr()

	httpJSON(t, "POST", base+"/v1/tenants/a/arrive", server.Arrival{Point: 0, Demands: []int{0}},
		http.StatusMisdirectedRequest)
	httpJSON(t, "GET", base+"/v1/tenants/a/snapshot", nil, http.StatusMisdirectedRequest)
	httpJSON(t, "POST", base+"/v1/tenants/a", testCreate, http.StatusCreated)
	httpJSON(t, "POST", base+"/v1/tenants/a", testCreate, http.StatusConflict)

	conn, err := net.Dial("tcp", r.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	payload, _ := json.Marshal(engine.Op{Op: "arrive", Tenant: "ghost", Point: 0, Demands: []int{0}})
	if err := server.WriteFrame(bw, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	frame, err := server.ReadFrame(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	var res server.TCPResult
	if err := json.Unmarshal(frame, &res); err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Code != server.CodeUnknownTenant {
		t.Errorf("framed unknown-tenant result %+v, want code %q", res, server.CodeUnknownTenant)
	}

	// Migrating to the only node (the current owner) is refused.
	httpJSON(t, "POST", base+"/v1/migrate", migrateBody{Tenant: "a", Target: w1.HTTPAddr()}, http.StatusBadGateway)
}

// TestStaleScrapeExcluded: a node that replays an identical metrics body
// (same Seq and wall stamp — a wedged process or a caching proxy) is
// flagged stale and its window rate is not double-counted.
func TestStaleScrapeExcluded(t *testing.T) {
	fixed := server.Metrics{}
	fixed.Seq = 5
	fixed.WallUnixNano = 123456789
	fixed.Served = 40
	fixed.WindowArrivalsPerSec = 100

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/node", func(w http.ResponseWriter, req *http.Request) {
		json.NewEncoder(w).Encode(server.NodeInfo{Algorithm: "pd", Seed: 1})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, req *http.Request) {
		json.NewEncoder(w).Encode(fixed)
	})
	mux.HandleFunc("GET /v1/snapshots", func(w http.ResponseWriter, req *http.Request) {
		json.NewEncoder(w).Encode([]engine.TenantSnapshot{})
	})
	fake := httptest.NewServer(mux)
	defer fake.Close()

	r := startRouter(t, Config{Nodes: []string{strings.TrimPrefix(fake.URL, "http://")}})

	m1 := r.Metrics()
	if len(m1.PerNode) != 1 || m1.PerNode[0].Stale {
		t.Fatalf("first scrape %+v, want one fresh report", m1.PerNode)
	}
	if m1.WindowArrivalsPerSec != 100 {
		t.Errorf("first scrape window rate %g, want 100", m1.WindowArrivalsPerSec)
	}
	m2 := r.Metrics()
	if !m2.PerNode[0].Stale {
		t.Error("identical rescrape not flagged stale")
	}
	if m2.WindowArrivalsPerSec != 0 {
		t.Errorf("stale scrape window rate %g, want 0 (excluded)", m2.WindowArrivalsPerSec)
	}

	// A restarted node (fresh Seq, new wall stamp) must NOT read as stale.
	fixed.Seq = 1
	fixed.WallUnixNano = 987654321
	m3 := r.Metrics()
	if m3.PerNode[0].Stale {
		t.Error("restarted node flagged stale")
	}
}

// TestRendezvousPlacementStable: rendezvous placement is a pure function of
// (tenant, node set) — the same tenant lands on the same node across calls
// and across router instances.
func TestRendezvousPlacementStable(t *testing.T) {
	nodes := []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000"}
	mk := func() *Router {
		r, err := New(Config{HTTPAddr: "127.0.0.1:0", Nodes: nodes, Placement: "rendezvous"})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range r.nodes {
			n.healthy = true
		}
		return r
	}
	a, b := mk(), mk()
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		id := tenantName(i)
		pa, err := a.placeRendezvous(id, -1)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.placeRendezvous(id, -1)
		if err != nil {
			t.Fatal(err)
		}
		if pa != pb {
			t.Fatalf("%s: placement %d vs %d across identical routers", id, pa, pb)
		}
		seen[pa] = true
	}
	if len(seen) < 2 {
		t.Error("rendezvous placed 20 tenants on a single node")
	}

	if _, err := New(Config{HTTPAddr: ":0", Nodes: nodes, Placement: "roulette"}); err == nil {
		t.Error("unknown placement policy accepted")
	}
	if _, err := New(Config{HTTPAddr: ":0"}); err == nil {
		t.Error("router with no nodes accepted")
	}
	if _, err := New(Config{HTTPAddr: ":0", Nodes: []string{"a:1", "a:1"}}); err == nil {
		t.Error("duplicate node list accepted")
	}
}
