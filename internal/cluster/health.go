package cluster

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// healthLoop probes every node each HealthEvery tick, re-syncing routes
// when a node (re)joins and — when MigrateThreshold is set — rebalancing
// the hottest tenant off the busiest node.
func (r *Router) healthLoop() {
	defer r.loops.Done()
	tick := time.NewTicker(r.cfg.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		for _, n := range r.nodes {
			if err := r.probe(n); err != nil {
				n.mu.Lock()
				was := n.healthy
				n.healthy = false
				n.mu.Unlock()
				if was {
					r.logger.Warn("node down", "node", n.addr, "err", err)
				}
			}
		}
		r.maybeRebalance()
	}
}

// probe asks one node who it is. On the unhealthy→healthy transition
// (first contact and every rejoin) the node's identity is checked against
// the cluster's and its tenants are re-synced into the routing table.
func (r *Router) probe(n *node) error {
	var info server.NodeInfo
	if err := r.getJSON(n.base+"/v1/node", &info); err != nil {
		return err
	}
	if err := r.checkIdentity(info); err != nil {
		return fmt.Errorf("identity mismatch: %v", err)
	}
	n.mu.Lock()
	was := n.healthy
	n.healthy = true
	n.info = info
	n.mu.Unlock()
	if !was {
		if err := r.syncNode(n); err != nil {
			n.mu.Lock()
			n.healthy = false
			n.mu.Unlock()
			return fmt.Errorf("route sync: %v", err)
		}
		r.logger.Info("node joined", "node", n.addr, "tenants", info.Tenants, "served", info.Served)
	}
	return nil
}

// syncNode folds one node's hosted tenants into the routing table — the
// router's only source of route state (it keeps none durably). Routes for
// tenants the table does not know are created; routes already pointing at
// this node have their ledger reset to the node's served count (a node
// restarted from checkpoint may have lost a tail the ledger still counts —
// the node's state is the truth). When another node also claims the
// tenant, the higher served count wins: that is the footprint of a
// migration interrupted between extract and the source's checkpoint, and
// the higher count is the state that includes the move.
func (r *Router) syncNode(n *node) error {
	var snaps []*engine.TenantSnapshot
	if err := r.getJSON(n.base+"/v1/snapshots?compact=true", &snaps); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range snaps {
		rt, ok := r.routes[s.Tenant]
		switch {
		case !ok:
			rt = &route{node: n.idx}
			rt.count.Store(int64(s.Served))
			r.routes[s.Tenant] = rt
		case rt.mig != nil:
			// Mid-migration state is the coordinator's to resolve.
		case rt.node == n.idx:
			if rt.count.Load() != int64(s.Served) {
				r.logger.Warn("ledger reset from node state",
					"tenant", s.Tenant, "ledger", rt.count.Load(), "served", s.Served, "node", n.addr)
			}
			rt.count.Store(int64(s.Served))
		case int64(s.Served) > rt.count.Load():
			r.logger.Warn("tenant rerouted to higher-served claimant",
				"tenant", s.Tenant, "node", n.addr, "served", s.Served,
				"prev_node", r.nodes[rt.node].addr, "ledger", rt.count.Load())
			rt.node = n.idx
			rt.count.Store(int64(s.Served))
		}
	}
	return nil
}

// maybeRebalance moves the hottest tenant off the busiest node when the
// per-probe arrival-rate spread exceeds MigrateThreshold. All inputs are
// the router's own observations — node served counts from probes, route
// ledgers for picking the tenant — so it needs no extra node round trips.
func (r *Router) maybeRebalance() {
	if r.cfg.MigrateThreshold <= 1 {
		return
	}
	// Arrival deltas since the previous probe, per healthy node.
	type load struct {
		n     *node
		delta int64
	}
	var loads []load
	for _, n := range r.nodes {
		n.mu.Lock()
		if !n.healthy {
			n.mu.Unlock()
			continue
		}
		var delta int64 = -1
		if n.probed {
			delta = n.info.Served - n.prevServed
		}
		n.prevServed = n.info.Served
		n.probed = true
		n.mu.Unlock()
		if delta >= 0 {
			loads = append(loads, load{n, delta})
		}
	}
	if len(loads) < 2 {
		return
	}
	hot, cold := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l.delta > hot.delta {
			hot = l
		}
		if l.delta < cold.delta {
			cold = l
		}
	}
	// rebalanceFloor keeps probe-window noise from triggering moves.
	const rebalanceFloor = 64
	if hot.delta < rebalanceFloor || float64(hot.delta) < r.cfg.MigrateThreshold*float64(max64(cold.delta, 1)) {
		return
	}

	// Hottest tenant on the hot node by ledger delta — and only if the hot
	// node hosts more than one tenant (moving its only tenant would just
	// move the hotspot).
	var tenant string
	var tenantDelta int64
	hosted := 0
	r.mu.RLock()
	for id, rt := range r.routes {
		if rt.node != hot.n.idx || rt.mig != nil {
			continue
		}
		hosted++
		d := rt.count.Load() - rt.lastCount
		rt.lastCount = rt.count.Load()
		if tenant == "" || d > tenantDelta {
			tenant, tenantDelta = id, d
		}
	}
	r.mu.RUnlock()
	if hosted < 2 || tenant == "" {
		return
	}
	r.logger.Info("rebalancing",
		"tenant", tenant, "from", hot.n.addr, "hot_delta", hot.delta,
		"to", cold.n.addr, "cold_delta", cold.delta)
	if _, err := r.Migrate(tenant, cold.n.addr); err != nil {
		r.logger.Error("rebalance migration failed", "tenant", tenant, "err", err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
